module pixel

go 1.22
