package pixel

import (
	"fmt"

	"pixel/internal/arch"
)

// PowerSummary is the chip-level power view of a design point (see
// internal/arch.Power for the model).
type PowerSummary struct {
	Network string
	Design  Design
	Lanes   int
	Bits    int
	// DynamicW is the average draw while inferring; StaticW the
	// always-on floor (ring tuning, SRAM and logic leakage); LaserW
	// the laser wall-plug draw; TotalW the provisioning figure.
	DynamicW float64
	StaticW  float64
	LaserW   float64
	TotalW   float64
}

// EvaluatePower returns the power budget of a design point — the
// positional form of Point.Power.
func EvaluatePower(network string, d Design, lanes, bits int) (PowerSummary, error) {
	return Point{Design: d, Lanes: lanes, Bits: bits}.Power(network)
}

// ScheduleSummary is a tile-grid mapping of a network (see
// internal/mapper).
type ScheduleSummary struct {
	Network string
	Rows    int
	Cols    int
	// SequentialS and PipelinedS are the makespans without and with
	// double-buffered weight register files.
	SequentialS float64
	PipelinedS  float64
	// PreloadJ is the weight-movement energy; Utilization the
	// round-weighted mean tile utilization.
	PreloadJ    float64
	Utilization float64
}

// MapToGrid schedules a network onto a rows x cols tile grid with the
// given design point, using photonic weight streaming when
// photonicWeights is set — the positional form of Point.MapToGrid.
func MapToGrid(network string, d Design, lanes, bits, rows, cols int, photonicWeights bool) (ScheduleSummary, error) {
	return Point{Design: d, Lanes: lanes, Bits: bits}.MapToGrid(network, rows, cols, photonicWeights)
}

// Ablations re-runs the six-CNN evaluation under each calibration
// ablation and returns (name, OE improvement, OO improvement) rows.
type AblationRow struct {
	Name          string
	Description   string
	OEImprovement float64
	OOImprovement float64
}

// RunAblations exposes the design-choice sensitivity study.
func RunAblations() ([]AblationRow, error) {
	results, err := arch.RunAblations()
	if err != nil {
		return nil, fmt.Errorf("pixel: %w", err)
	}
	out := make([]AblationRow, len(results))
	for i, r := range results {
		out[i] = AblationRow{
			Name:          r.Name,
			Description:   r.Description,
			OEImprovement: r.OEImprovement,
			OOImprovement: r.OOImprovement,
		}
	}
	return out, nil
}
