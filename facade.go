package pixel

import (
	"context"
	"fmt"

	"pixel/internal/arch"
)

// PowerSummary is the chip-level power view of a design point (see
// internal/arch.Power for the model).
type PowerSummary struct {
	Network string
	Design  Design
	Lanes   int
	Bits    int
	// DynamicW is the average draw while inferring; StaticW the
	// always-on floor (ring tuning, SRAM and logic leakage); LaserW
	// the laser wall-plug draw; TotalW the provisioning figure.
	DynamicW float64
	StaticW  float64
	LaserW   float64
	TotalW   float64
}

// PowerContext returns the chip-level power budget of the named
// network at design point p. It is the canonical power entry point;
// ctx cancellation is honoured before any model work starts.
func PowerContext(ctx context.Context, network string, p Point) (PowerSummary, error) {
	if err := ctx.Err(); err != nil {
		return PowerSummary{}, err
	}
	return p.Power(network)
}

// EvaluatePower returns the power budget of a design point.
//
// Deprecated: use PowerContext (or Point.Power); the positional
// argument list predates the Point-struct API surface.
func EvaluatePower(network string, d Design, lanes, bits int) (PowerSummary, error) {
	return PowerContext(context.Background(), network, Point{Design: d, Lanes: lanes, Bits: bits})
}

// AreaContext returns the MAC-unit ensemble area [m^2] of design
// point p. It is the canonical area entry point; ctx cancellation is
// honoured before any model work starts.
func AreaContext(ctx context.Context, p Point) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return p.Area()
}

// ScheduleSummary is a tile-grid mapping of a network (see
// internal/mapper).
type ScheduleSummary struct {
	Network string
	Rows    int
	Cols    int
	// SequentialS and PipelinedS are the makespans without and with
	// double-buffered weight register files.
	SequentialS float64
	PipelinedS  float64
	// PreloadJ is the weight-movement energy; Utilization the
	// round-weighted mean tile utilization.
	PreloadJ    float64
	Utilization float64
}

// MapSpec describes one tile-grid scheduling request for MapContext.
type MapSpec struct {
	// Network names the CNN to schedule (see Networks).
	Network string
	// Point is the design point each tile is built from.
	Point Point
	// Rows and Cols shape the tile grid.
	Rows, Cols int
	// PhotonicWeights streams weight preloads over the photonic
	// interconnect instead of the electrical one.
	PhotonicWeights bool
}

// MapContext schedules spec.Network onto a spec.Rows x spec.Cols tile
// grid at spec.Point. It is the canonical mapping entry point; ctx
// cancellation is honoured before any model work starts. Unusable grid
// shapes surface ErrBadGrid.
func MapContext(ctx context.Context, spec MapSpec) (ScheduleSummary, error) {
	if err := ctx.Err(); err != nil {
		return ScheduleSummary{}, err
	}
	return spec.Point.MapToGrid(spec.Network, spec.Rows, spec.Cols, spec.PhotonicWeights)
}

// MapToGrid schedules a network onto a rows x cols tile grid with the
// given design point, using photonic weight streaming when
// photonicWeights is set.
//
// Deprecated: use MapContext (or Point.MapToGrid); the positional
// argument list predates the MapSpec API surface.
func MapToGrid(network string, d Design, lanes, bits, rows, cols int, photonicWeights bool) (ScheduleSummary, error) {
	return MapContext(context.Background(), MapSpec{
		Network:         network,
		Point:           Point{Design: d, Lanes: lanes, Bits: bits},
		Rows:            rows,
		Cols:            cols,
		PhotonicWeights: photonicWeights,
	})
}

// Ablations re-runs the six-CNN evaluation under each calibration
// ablation and returns (name, OE improvement, OO improvement) rows.
type AblationRow struct {
	Name          string
	Description   string
	OEImprovement float64
	OOImprovement float64
}

// RunAblations exposes the design-choice sensitivity study.
func RunAblations() ([]AblationRow, error) {
	results, err := arch.RunAblations()
	if err != nil {
		return nil, fmt.Errorf("pixel: %w", err)
	}
	out := make([]AblationRow, len(results))
	for i, r := range results {
		out[i] = AblationRow{
			Name:          r.Name,
			Description:   r.Description,
			OEImprovement: r.OEImprovement,
			OOImprovement: r.OOImprovement,
		}
	}
	return out, nil
}
