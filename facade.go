package pixel

import (
	"fmt"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/interconnect"
	"pixel/internal/mapper"
	"pixel/internal/phy"
)

// PowerSummary is the chip-level power view of a design point (see
// internal/arch.Power for the model).
type PowerSummary struct {
	Network string
	Design  Design
	Lanes   int
	Bits    int
	// DynamicW is the average draw while inferring; StaticW the
	// always-on floor (ring tuning, SRAM and logic leakage); LaserW
	// the laser wall-plug draw; TotalW the provisioning figure.
	DynamicW float64
	StaticW  float64
	LaserW   float64
	TotalW   float64
}

// EvaluatePower returns the power budget of a design point.
func EvaluatePower(network string, d Design, lanes, bits int) (PowerSummary, error) {
	net, err := cnn.ByName(network)
	if err != nil {
		return PowerSummary{}, err
	}
	cfg, err := arch.NewConfig(d.arch(), lanes, bits)
	if err != nil {
		return PowerSummary{}, err
	}
	p, err := arch.Power(net, cfg)
	if err != nil {
		return PowerSummary{}, err
	}
	return PowerSummary{
		Network:  network,
		Design:   d,
		Lanes:    lanes,
		Bits:     bits,
		DynamicW: p.DynamicW.Total(),
		StaticW:  p.TotalStaticW(),
		LaserW:   p.LaserIdleW,
		TotalW:   p.TotalW(),
	}, nil
}

// ScheduleSummary is a tile-grid mapping of a network (see
// internal/mapper).
type ScheduleSummary struct {
	Network string
	Rows    int
	Cols    int
	// SequentialS and PipelinedS are the makespans without and with
	// double-buffered weight register files.
	SequentialS float64
	PipelinedS  float64
	// PreloadJ is the weight-movement energy; Utilization the
	// round-weighted mean tile utilization.
	PreloadJ    float64
	Utilization float64
}

// MapToGrid schedules a network onto a rows x cols tile grid with the
// given design point, using photonic weight streaming when
// photonicWeights is set.
func MapToGrid(network string, d Design, lanes, bits, rows, cols int, photonicWeights bool) (ScheduleSummary, error) {
	net, err := cnn.ByName(network)
	if err != nil {
		return ScheduleSummary{}, err
	}
	cfg, err := arch.NewConfig(d.arch(), lanes, bits)
	if err != nil {
		return ScheduleSummary{}, err
	}
	grid, err := interconnect.NewGrid(rows, cols, lanes, 10*phy.Gigahertz)
	if err != nil {
		return ScheduleSummary{}, err
	}
	transport := mapper.ElectricalPreload
	if photonicWeights {
		transport = mapper.PhotonicPreload
	}
	s, err := mapper.MapNetwork(net, grid, cfg, mapper.Options{Transport: transport})
	if err != nil {
		return ScheduleSummary{}, err
	}
	return ScheduleSummary{
		Network:     network,
		Rows:        rows,
		Cols:        cols,
		SequentialS: s.MakespanS,
		PipelinedS:  s.PipelinedMakespanS,
		PreloadJ:    s.PreloadJ,
		Utilization: s.MeanUtilization(),
	}, nil
}

// Ablations re-runs the six-CNN evaluation under each calibration
// ablation and returns (name, OE improvement, OO improvement) rows.
type AblationRow struct {
	Name          string
	Description   string
	OEImprovement float64
	OOImprovement float64
}

// RunAblations exposes the design-choice sensitivity study.
func RunAblations() ([]AblationRow, error) {
	results, err := arch.RunAblations()
	if err != nil {
		return nil, fmt.Errorf("pixel: %w", err)
	}
	out := make([]AblationRow, len(results))
	for i, r := range results {
		out[i] = AblationRow{
			Name:          r.Name,
			Description:   r.Description,
			OEImprovement: r.OEImprovement,
			OOImprovement: r.OOImprovement,
		}
	}
	return out, nil
}
