package pixel

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"pixel/internal/bitserial"
	"pixel/internal/montecarlo"
	"pixel/internal/qnn"
	"pixel/internal/tensor"
)

// InferSpec configures one batched inference call: a batch of images
// run through a named demo network's quantized pipeline on the batched
// bit-serial engine.
type InferSpec struct {
	// Network names the demo network (see InferNetworks; "lenet" is
	// the golden-test LeNet).
	Network string
	// Images is the batch: each image is the H*W*C activation values
	// in HWC order, within the network's activation range.
	Images [][]int64
	// Workers sizes the per-batch worker pool; <= 0 means GOMAXPROCS.
	// Results are bit-identical at any worker count.
	Workers int
}

// InferResult is one image's inference output.
type InferResult struct {
	// Outputs is the final layer's raw activation vector (class scores
	// for the demo networks).
	Outputs []int64
	// ArgMax is the index of the largest output (first on ties) — the
	// predicted class.
	ArgMax int
}

// InferShape describes a network's expected image geometry.
type InferShape struct {
	H, W, C int
	// MaxValue is the largest admissible activation (2^bits - 1).
	MaxValue int64
}

// InferNetworks lists the demo networks Infer can run.
func InferNetworks() []string { return montecarlo.Networks() }

// inferNet is one cached, ready-to-serve inference network: the model,
// its input geometry, and a shared batched engine sized to its longest
// dot product. All fields are read-only after construction, and both
// the model layers and the engine are safe for concurrent use.
type inferNet struct {
	model *qnn.Model
	shape InferShape
	eng   *bitserial.BatchedStripes
}

var (
	inferMu   sync.Mutex
	inferNets = map[string]*inferNet{}

	// inferArenas recycles whole tensor arenas across Infer calls: each
	// call borrows one arena (arenas are single-threaded by contract),
	// draws its input and inter-layer activation tensors from it, and
	// returns everything before putting the arena back — so
	// steady-state batched inference reuses the previous batch's
	// activation storage instead of allocating.
	inferArenas = sync.Pool{New: func() any { return tensor.NewArena() }}
)

// inferNetwork resolves (and memoizes) a named inference network; the
// per-name build cost — weight generation and engine sizing — is paid
// once per process.
func inferNetwork(name string) (*inferNet, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	inferMu.Lock()
	defer inferMu.Unlock()
	if n, ok := inferNets[key]; ok {
		return n, nil
	}
	net, err := montecarlo.BuildNetwork(key)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownNetwork, name, montecarlo.Networks())
	}
	eng, err := bitserial.NewBatchedStripes(net.Bits, net.Terms)
	if err != nil {
		return nil, err
	}
	n := &inferNet{
		model: net.Model,
		shape: InferShape{
			H:        net.Input.H,
			W:        net.Input.W,
			C:        net.Input.C,
			MaxValue: net.Model.MaxActivation(),
		},
		eng: eng,
	}
	inferNets[key] = n
	return n, nil
}

// InferNetworkShape returns the image geometry the named network
// expects — what a client must send Infer.
func InferNetworkShape(name string) (InferShape, error) {
	n, err := inferNetwork(name)
	if err != nil {
		return InferShape{}, err
	}
	return n.shape, nil
}

// Infer runs a batch of images through a demo network — the
// context-free form of InferContext.
func Infer(spec InferSpec) ([]InferResult, error) {
	return InferContext(context.Background(), spec)
}

// InferContext runs batched quantized inference with cancellation. The
// whole batch executes as one word-parallel pass on the batched
// bit-serial engine (bit-identical to per-image sequential inference);
// spec failures surface ErrUnknownNetwork or ErrBadSpec.
func InferContext(ctx context.Context, spec InferSpec) ([]InferResult, error) {
	n, err := inferNetwork(spec.Network)
	if err != nil {
		return nil, err
	}
	if len(spec.Images) == 0 {
		return nil, fmt.Errorf("%w: empty image batch", ErrBadSpec)
	}
	want := n.shape.H * n.shape.W * n.shape.C
	arena := inferArenas.Get().(*tensor.Arena)
	defer inferArenas.Put(arena)
	ins := make([]*tensor.Tensor, len(spec.Images))
	for b, img := range spec.Images {
		if len(img) != want {
			arena.Put(ins...)
			return nil, fmt.Errorf("%w: image %d has %d values, want %d (%dx%dx%d)",
				ErrBadSpec, b, len(img), want, n.shape.H, n.shape.W, n.shape.C)
		}
		for i, v := range img {
			if v < 0 || v > n.shape.MaxValue {
				arena.Put(ins...)
				return nil, fmt.Errorf("%w: image %d value %d at %d outside [0,%d]",
					ErrBadSpec, b, v, i, n.shape.MaxValue)
			}
		}
		t := arena.Get(n.shape.H, n.shape.W, n.shape.C)
		copy(t.Data, img)
		ins[b] = t
	}
	outs, err := n.model.RunBatch(ctx, ins, n.eng, qnn.RunOptions{Workers: spec.Workers, Arena: arena})
	if err != nil {
		arena.Put(ins...)
		return nil, err
	}
	// Copy the class scores out of the arena tensors (one flat backing
	// array — every image has the same output length), then hand both
	// the inputs and the outputs back for the next batch. RunBatch can
	// return an input tensor as an output (a zero-layer model), so
	// guard against recycling the same tensor twice.
	results := make([]InferResult, len(outs))
	flat := make([]int64, len(outs)*outs[0].Len())
	for b, out := range outs {
		vals := flat[b*out.Len() : (b+1)*out.Len() : (b+1)*out.Len()]
		copy(vals, out.Data)
		results[b] = InferResult{Outputs: vals, ArgMax: tensor.ArgMax(out)}
	}
	arena.Put(ins...)
	for b, out := range outs {
		if out != ins[b] {
			arena.Put(out)
		}
	}
	return results, nil
}
