package pixel

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteResultsJSON serializes sweep/evaluation results as indented
// JSON — the machine-readable companion to the CSV tables, for
// downstream plotting.
func WriteResultsJSON(w io.Writer, results []Result) error {
	if len(results) == 0 {
		return fmt.Errorf("pixel: no results to write")
	}
	type jsonResult struct {
		Network  string             `json:"network"`
		Design   string             `json:"design"`
		Lanes    int                `json:"lanes"`
		Bits     int                `json:"bits"`
		EnergyJ  float64            `json:"energy_j"`
		LatencyS float64            `json:"latency_s"`
		EDP      float64            `json:"edp_js"`
		Energy   map[string]float64 `json:"energy_breakdown_j"`
	}
	out := make([]jsonResult, len(results))
	for i, r := range results {
		out[i] = jsonResult{
			Network:  r.Network,
			Design:   r.Design.String(),
			Lanes:    r.Lanes,
			Bits:     r.Bits,
			EnergyJ:  r.EnergyJ,
			LatencyS: r.LatencyS,
			EDP:      r.EDP,
			Energy:   r.Breakdown,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadResultsJSON parses results written by WriteResultsJSON (the
// design names round-trip back to Design values).
func ReadResultsJSON(r io.Reader) ([]Result, error) {
	type jsonResult struct {
		Network  string             `json:"network"`
		Design   string             `json:"design"`
		Lanes    int                `json:"lanes"`
		Bits     int                `json:"bits"`
		EnergyJ  float64            `json:"energy_j"`
		LatencyS float64            `json:"latency_s"`
		EDP      float64            `json:"edp_js"`
		Energy   map[string]float64 `json:"energy_breakdown_j"`
	}
	var raw []jsonResult
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("pixel: decode results: %w", err)
	}
	out := make([]Result, len(raw))
	for i, jr := range raw {
		d, err := ParseDesign(jr.Design)
		if err != nil {
			return nil, fmt.Errorf("%w in results", err)
		}
		out[i] = Result{
			Network:   jr.Network,
			Design:    d,
			Lanes:     jr.Lanes,
			Bits:      jr.Bits,
			EnergyJ:   jr.EnergyJ,
			LatencyS:  jr.LatencyS,
			EDP:       jr.EDP,
			Breakdown: jr.Energy,
		}
	}
	return out, nil
}
