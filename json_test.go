package pixel

import (
	"strings"
	"testing"
)

func TestResultsJSONRoundTrip(t *testing.T) {
	results, err := Sweep("LeNet", Designs(), []int{4}, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteResultsJSON(&sb, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"design": "OO"`) {
		t.Errorf("JSON missing design names:\n%s", sb.String()[:200])
	}
	back, err := ReadResultsJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("round trip lost results: %d vs %d", len(back), len(results))
	}
	for i := range results {
		if back[i].Design != results[i].Design ||
			back[i].EDP != results[i].EDP ||
			back[i].Breakdown["mul"] != results[i].Breakdown["mul"] {
			t.Errorf("result %d did not round-trip", i)
		}
	}
}

func TestWriteResultsJSONValidation(t *testing.T) {
	var sb strings.Builder
	if err := WriteResultsJSON(&sb, nil); err == nil {
		t.Error("empty results should error")
	}
}

func TestReadResultsJSONErrors(t *testing.T) {
	if _, err := ReadResultsJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage should error")
	}
	bad := `[{"design": "XX", "network": "LeNet"}]`
	if _, err := ReadResultsJSON(strings.NewReader(bad)); err == nil {
		t.Error("unknown design should error")
	}
}
