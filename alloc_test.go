package pixel_test

import (
	"testing"

	"pixel"
)

// TestInferSteadyStateAllocs is the zero-alloc hot-path regression
// guard: once the weight packs are cached and the tensor arenas are
// warm, a 64-image LeNet batch must stay under 100 allocations total
// (the pre-arena pipeline cost ~1500 — a tensor per image per layer
// plus per-call weight packing). Serial workers keep the count
// deterministic; the multi-worker path adds only pool-management
// allocations, covered by the benchmark's allocs/op trend.
func TestInferSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race")
	}
	imgs := benchInferImages(t, "lenet", 64)
	spec := pixel.InferSpec{Network: "lenet", Images: imgs, Workers: 1}
	for i := 0; i < 2; i++ { // warm model cache, weight packs, arenas
		if _, err := pixel.Infer(spec); err != nil {
			t.Fatal(err)
		}
	}
	var runErr error
	avg := testing.AllocsPerRun(5, func() {
		if _, err := pixel.Infer(spec); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if avg >= 100 {
		t.Errorf("steady-state 64-image Infer allocates %.0f per batch, want < 100", avg)
	}
}
