//go:build !race

package pixel_test

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count guards skip.
const raceEnabled = false
