// LeNet-style inference through the simulated all-optical datapath.
//
// A small quantized convolutional network (conv -> requant -> pool ->
// conv -> requant -> flatten -> FC, the LeNet shape scaled to a 12x12
// synthetic digit) is described once with the qnn package and executed
// twice: once on the plain-integer reference, and once with every MAC
// routed through the OO datapath — optical AND in MRR filters,
// cascaded-MZI accumulation, comparator-ladder readback. The outputs
// must agree exactly, and the optical run reports its metered energy.
//
//	go run ./examples/lenet_inference
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pixel/internal/omac"
	"pixel/internal/optsim"
	"pixel/internal/qnn"
	"pixel/internal/tensor"
)

const (
	opBits = 4 // quantized operand precision
	maxVal = 1<<opBits - 1
)

// ooDotter routes qnn MACs through the all-optical unit.
type ooDotter struct {
	unit *omac.OOUnit
	led  *optsim.Ledger
}

func (o ooDotter) DotProduct(a, b []uint64) (uint64, error) {
	return o.unit.DotProduct(a, b, o.led)
}

func buildModel(rng *rand.Rand) *qnn.Model {
	k1 := tensor.NewKernel(4, 3, 1) // conv1: 12x12x1 -> 10x10x4
	for i := range k1.Data {
		k1.Data[i] = rng.Int63n(maxVal + 1)
	}
	k2 := tensor.NewKernel(6, 3, 4) // conv2: 5x5x4 -> 3x3x6
	for i := range k2.Data {
		k2.Data[i] = rng.Int63n(maxVal + 1)
	}
	fcW := make([]int64, 3*3*6*10) // fc: 54 -> 10 classes
	for i := range fcW {
		fcW[i] = rng.Int63n(maxVal + 1)
	}
	return &qnn.Model{
		Label:          "lenet-12",
		ActivationBits: opBits,
		Layers: []qnn.Layer{
			&qnn.Conv{Label: "conv1", Kernel: k1, Stride: 1},
			&qnn.Requant{Label: "rq1", Shift: 4, Max: maxVal},
			&qnn.MaxPool{Label: "pool1", Window: 2},
			&qnn.Conv{Label: "conv2", Kernel: k2, Stride: 1},
			&qnn.Requant{Label: "rq2", Shift: 6, Max: maxVal},
			&qnn.Flatten{Label: "flatten"},
			&qnn.FullyConnected{Label: "fc", Weights: fcW, Out: 10},
		},
	}
}

func main() {
	rng := rand.New(rand.NewSource(7))
	model := buildModel(rng)

	// A synthetic 12x12 "digit".
	input := tensor.New(12, 12, 1)
	for i := range input.Data {
		input.Data[i] = rng.Int63n(maxVal + 1)
	}

	// Reference pass: plain integers, fanned across a worker pool
	// (ReferenceDotter is stateless, so any worker count is safe and
	// bit-identical to the serial run).
	ref, err := model.RunContext(context.Background(), input, qnn.ReferenceDotter{}, qnn.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Optical pass: every MAC through the OO unit.
	unit, err := omac.NewOOUnit(omac.DefaultConfig(4, opBits), 64)
	if err != nil {
		log.Fatal(err)
	}
	led := optsim.NewLedger()
	opt, err := model.Run(input, ooDotter{unit, led})
	if err != nil {
		log.Fatal(err)
	}

	mismatches := 0
	for i := range ref.Data {
		if opt.Data[i] != ref.Data[i] {
			mismatches++
		}
	}
	fmt.Printf("optical logits:   %v\n", opt.Data)
	fmt.Printf("reference logits: %v\n", ref.Data)
	fmt.Printf("mismatches: %d/%d\n", mismatches, ref.Len())
	fmt.Printf("predicted class (optical) = %d, (reference) = %d\n",
		tensor.ArgMax(opt), tensor.ArgMax(ref))
	if mismatches != 0 {
		log.Fatal("optical inference diverged from the integer reference")
	}

	fmt.Println("\nall MACs executed on the simulated OO datapath; metered:")
	for cat, j := range led.Breakdown() {
		fmt.Printf("  %-6s %.4g nJ\n", cat, j*1e9)
	}
	fmt.Printf("  latency %.4g us\n", led.Latency()*1e6)
}
