// Signed weights on unsigned optics. Light carries no sign, so signed
// synapse weights ride the OO datapath offset-binary encoded, with an
// exact electrical correction (two narrow running sums). This example
// runs a small conv->ReLU->pool network with signed weights entirely on
// the simulated all-optical MAC and checks it against plain integers.
//
//	go run ./examples/signed_network
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pixel"
	"pixel/internal/qnn"
	"pixel/internal/tensor"
)

// ooSigned adapts the public MAC to qnn's signed interface.
type ooSigned struct{ mac *pixel.MAC }

func (o ooSigned) SignedDotProduct(a, b []int64) (int64, error) {
	return o.mac.SignedDotProduct(a, b)
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// Signed 5-bit weights in [-7, 7]; unsigned 3-bit activations.
	k := tensor.NewKernel(3, 3, 1)
	for i := range k.Data {
		k.Data[i] = rng.Int63n(15) - 7
	}
	model := &qnn.SignedModel{
		Label: "signed-demo",
		Layers: []any{
			&qnn.SignedConv{Label: "conv", Kernel: k, Stride: 1},
			&qnn.Requant{Label: "relu", Shift: 2, Max: 7}, // clamps negatives: ReLU
			&qnn.MaxPool{Label: "pool", Window: 2},
		},
	}

	in := tensor.New(8, 8, 1)
	for i := range in.Data {
		in.Data[i] = rng.Int63n(8)
	}

	ref, err := model.Run(in, qnn.ReferenceSignedDotter{})
	if err != nil {
		log.Fatal(err)
	}

	mac, err := pixel.NewMAC(pixel.OO, 5, 16)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := model.Run(in, ooSigned{mac})
	if err != nil {
		log.Fatal(err)
	}

	mismatches := 0
	for i := range ref.Data {
		if opt.Data[i] != ref.Data[i] {
			mismatches++
		}
	}
	fmt.Printf("feature map (optical, signed weights): %v\n", opt.Data)
	fmt.Printf("feature map (integer reference):       %v\n", ref.Data)
	fmt.Printf("mismatches: %d/%d\n", mismatches, ref.Len())
	if mismatches != 0 {
		log.Fatal("signed optical inference diverged")
	}
	fmt.Println("\nsigned weights rode the unsigned optics offset-binary encoded;")
	fmt.Println("the electrical correction used two narrow accumulators, metered:")
	for cat, j := range mac.EnergyJ() {
		fmt.Printf("  %-6s %.4g nJ\n", cat, j*1e9)
	}
}
