// Design-space exploration: sweep lanes and bits/lane across all three
// designs and find the crossover the paper reports — the optical
// designs win energy when bits/lane exceeds the lane count, and OO
// holds the best EDP at high bits/lane.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"os"

	"pixel"
	"pixel/internal/report"
)

func main() {
	const network = "AlexNet"
	lanesAxis := []int{2, 4, 8, 16}
	bitsAxis := []int{4, 8, 16, 32}

	tab := report.New(
		fmt.Sprintf("Design space: %s inference, EDP normalized to EE per point", network),
		"Lanes", "Bits", "EE", "OE", "OO", "winner")

	type point struct{ lanes, bits int }
	var crossovers []point
	for _, lanes := range lanesAxis {
		for _, bits := range bitsAxis {
			var edp [3]float64
			for i, d := range pixel.Designs() {
				r, err := pixel.Evaluate(network, d, lanes, bits)
				if err != nil {
					log.Fatal(err)
				}
				edp[i] = r.EDP
			}
			winner := "EE"
			best := edp[0]
			if edp[1] < best {
				winner, best = "OE", edp[1]
			}
			if edp[2] < best {
				winner = "OO"
			}
			if winner != "EE" && bits > lanes {
				crossovers = append(crossovers, point{lanes, bits})
			}
			tab.AddRow(fmt.Sprint(lanes), fmt.Sprint(bits),
				"1",
				report.F(edp[1]/edp[0], 3),
				report.F(edp[2]/edp[0], 3),
				winner)
		}
	}
	tab.AddNote("paper: optical designs outperform EE when bits/lane > lanes")
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npoints with bits/lane > lanes won by an optical design: %d\n", len(crossovers))

	// Area cost of the win (the paper's stated trade-off).
	for _, d := range pixel.Designs() {
		a, err := pixel.Area(d, 4, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MAC-unit area %s (4 lanes, 4 bits/lane): %.4g mm^2\n", d, a*1e6)
	}
}
