// Paper walkthrough: every worked example in the PIXEL paper, computed
// by the corresponding library call. Run it next to the paper to see
// which formula lives where.
//
//	go run ./examples/paper_walkthrough
package main

import (
	"fmt"
	"log"

	"pixel"
	"pixel/internal/cnn"
	"pixel/internal/elec"
	"pixel/internal/photonics"
	"pixel/internal/phy"
)

func main() {
	fmt.Println("== Section II-B: the STR window example ==")
	mac, err := pixel.NewMAC(pixel.EE, 4, 16)
	if err != nil {
		log.Fatal(err)
	}
	partial, err := mac.DotProduct([]uint64{2, 0, 3, 8}, []uint64{6, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle-1 partial sum (2,0,3,8)x(6,1,2,3) = %d   (paper: 42)\n", partial)
	full := uint64(0)
	inputs := [][]uint64{{2, 4, 6, 9}, {0, 1, 3, 4}, {3, 5, 1, 2}, {8, 2, 8, 6}}
	synapses := [][]uint64{{6, 9, 13, 11}, {1, 2, 1, 2}, {2, 3, 4, 5}, {3, 1, 3, 1}}
	for i := range inputs {
		v, err := mac.DotProduct(inputs[i], synapses[i])
		if err != nil {
			log.Fatal(err)
		}
		full += v
	}
	fmt.Printf("full window = %d   (paper prints 368; its own operands give 329)\n\n", full)

	fmt.Println("== Section IV-A1: the CLA model (Eq. 5/6) ==")
	fmt.Printf("GC(8) = %d gates   (paper: 212)\n", elec.CLAGateCount(8))
	fmt.Printf("LD(8) = %d levels  (paper: 10 -> 2.95 ns at 0.295 ns/level)\n", elec.CLALogicDepth(8))
	fmt.Printf("GC(4) = %d gates   (paper: 58)\n\n", elec.CLAGateCount(4))

	fmt.Println("== Section IV-A2: photonic delays (Eq. 7-10) ==")
	mrr := photonics.DefaultMRRParams()
	fmt.Printf("MRR S-path: %.1f um -> %s   (paper: 47.1 um, 0.547 ps)\n",
		mrr.SPathLength()/phy.Micrometer, phy.FormatTime(mrr.SPathDelay()))
	mzi := photonics.DefaultMZIParams()
	d, err := mzi.InterStagePath(10 * phy.Gigahertz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MZI inter-stage path at 10 GHz: %.2f mm   (paper prints 6.77; Eq. 9 with n=3.48 gives this)\n",
		d/phy.Millimeter)
	acc, err := mzi.AccumulationDelay(8, 10*phy.Gigahertz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-stage accumulation: %s   (paper Eq. 10: 0.736 ns)\n\n", phy.FormatTime(acc))

	fmt.Println("== Section IV-B: VGG16 Conv1 (Eq. 11 and the op counts) ==")
	conv1 := cnn.VGG16().Layers[0]
	counts := conv1.Counts(cnn.ModePaper)
	fmt.Printf("E = %d, N_MVM = %.0f (paper: 9633792), N_mul = %.0f (paper: 86704128)\n\n",
		conv1.OutputSize(), counts.MVM, counts.Mul)

	fmt.Println("== Section IV-C: the OE worked energy example ==")
	f := photonics.NewDoubleMRRFilter(0)
	total := 64.0 * 4.0 * f.EnergyPerCycle(4)
	fmt.Printf("128 MRRs x 500 fJ x 4 bits x 4 cycles = %s   (paper: 1.024 nJ)\n\n",
		phy.FormatEnergy(total))

	fmt.Println("== Section V: the headline results ==")
	h := pixel.MeasureHeadlines()
	fmt.Printf("OE EDP improvement: %.1f%% (paper 48.4%%)\n", 100*h.OEEDPImprovement)
	fmt.Printf("OO EDP improvement: %.1f%% (paper 73.9%%)\n", 100*h.OOEDPImprovement)
	fmt.Printf("optical multiply saving: %.1f%% (paper 94.9%%)\n", 100*h.MulSaving)
	fmt.Printf("OO accumulate saving: %.1f%% (paper 53.8%%)\n", 100*h.AddSaving)
}
