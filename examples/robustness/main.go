// Robustness study: the physical failure modes the photonic designs
// must survive, and what the library reports when they bite.
//
//  1. Thermal drift: an uncontrolled ambient swing detunes the MRR
//     filters and corrupts the optical AND; the runtime tuning loop
//     re-locks within a few control steps.
//
//  2. WDM crosstalk: packing more wavelengths per waveguide closes the
//     eye through the ring filters' Lorentzian skirts; the channel-plan
//     checker finds the ceiling.
//
//  3. Receiver noise: launch power buys bit-error rate; the noise model
//     sizes the power for a 1e-12 link.
//
//  4. MZI synchronization: a mis-cut inter-stage waveguide breaks the
//     OO accumulation and is reported, not silently mis-added.
//
//  5. Monte-Carlo yield: all of the above composed — sampled per-part
//     device variation driven through the fault-injecting bit-serial
//     engine and a whole CNN, reported as a yield curve.
//
//  6. Mitigation: the same sweep re-run through a protection scheme —
//     every trial twice from the same random draws — showing the yield
//     a guard-band recovers and the energy it costs.
//
//     go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"pixel"
	"pixel/internal/omac"
	"pixel/internal/photonics"
	"pixel/internal/phy"
	"pixel/internal/thermal"
)

func main() {
	fmt.Println("--- 1. thermal drift and the tuning loop")
	ring, err := thermal.NewRing(thermal.DefaultRingModel(), 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncontrolled lock tolerance: %.1f K\n", ring.Model.LockToleranceKelvin())
	fmt.Printf("ambient +2 K: locked = %v (rides within tolerance)\n", ring.Locked(2))
	fmt.Printf("ambient +5 K: locked = %v (drifted off channel)\n", ring.Locked(5))
	steps, err := ring.LockTime(5, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller re-locks after %d steps; heater now %s\n",
		steps, phy.FormatPower(ring.HeaterPower()))
	if _, err := ring.LockTime(-50, 200); err != nil {
		fmt.Printf("a -50 K swing is out of heater authority: %v\n", err)
	}
	bank, err := thermal.BankTuningPower(thermal.DefaultRingModel(), 128, 10, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady tuning power, 128-ring bank: %s\n\n", phy.FormatPower(bank))

	fmt.Println("--- 2. WDM crosstalk ceiling")
	plan := photonics.DefaultChannelPlan(128)
	pen, err := plan.PowerPenaltyDB()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("100 GHz grid, Q~10k rings, 128 channels: %.2f dB penalty (budget %.1f dB)\n",
		pen, plan.MaxPenaltyDB)
	dense := plan
	dense.Spacing = 0.2 * phy.Nanometer
	dense.RingFWHM = 0.3 * phy.Nanometer
	fmt.Printf("packing 4x denser with broad rings: max usable channels = %d\n", dense.MaxChannels())
	dense.Channels = 64
	fmt.Printf("forcing 64 channels anyway -> %v\n\n", dense.Check())

	fmt.Println("--- 3. receiver noise vs launch power")
	rx := photonics.DefaultReceiverNoise()
	for _, p := range []float64{1 * phy.Microwatt, 5 * phy.Microwatt, 20 * phy.Microwatt} {
		fmt.Printf("received %s -> BER %.2g\n", phy.FormatPower(p), rx.BER(p))
	}
	need, err := rx.RequiredPower(1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power for a 1e-12 link: %s\n\n", phy.FormatPower(need))

	fmt.Println("--- 4. MZI chain synchronization fault")
	unit, err := omac.NewOOUnit(omac.DefaultConfig(4, 8), 1)
	if err != nil {
		log.Fatal(err)
	}
	v, err := unit.Multiply(200, 100, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy chain: 200 x 100 = %d\n", v)
	unit.InjectStageSkew(40 * phy.Picosecond)
	if _, err := unit.Multiply(200, 100, nil); err != nil {
		fmt.Printf("mis-cut inter-stage path -> %v\n", err)
	}

	fmt.Println("\n--- 5. Monte-Carlo yield under device variation")
	// Each trial fabricates one virtual OO part — resonance offset,
	// ambient excursion through the tuning loop above, MZI split error,
	// comparator threshold offset — and runs the tiny CNN through the
	// fault-injecting bit-serial engine. σ scales all four sigmas at
	// once; the run is a pure function of the seed.
	rep, err := pixel.Robustness(pixel.RobustnessSpec{
		Network: "tiny",
		Design:  pixel.OO,
		Sigmas:  []float64{0, 1, 2, 4},
		Trials:  16,
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s, %d trials/point, seed %d:\n",
		rep.Design, rep.Network, rep.Trials, rep.Seed)
	for _, pt := range rep.Points {
		fmt.Printf("  sigma %.1f: yield %.3f  argmax-ok %.3f  mean injected BER %.2g\n",
			pt.Sigma, pt.Yield, pt.ArgmaxRate, pt.MeanInjectedBER)
	}
	fmt.Printf("worst-case yield across the axis: %.3f\n", rep.MinYield())

	fmt.Println("\n--- 6. fault mitigation: unprotected vs guard-banded")
	// The identical sweep with a protection scheme: each trial re-runs
	// through the mitigation from the same fault draws (common random
	// numbers), so the two curves differ only by the protection. The
	// guard-band trims the resonance offset, re-centres the comparator
	// thresholds and deepens the thermal bias — attacking the rates
	// themselves — and its price shows up through the cost model.
	prot, err := pixel.Robustness(pixel.RobustnessSpec{
		Network:    "tiny",
		Design:     pixel.OO,
		Sigmas:     []float64{0, 1, 2, 4},
		Trials:     16,
		Seed:       11,
		Protection: &pixel.ProtectionSpec{Scheme: "guardband"},
	})
	if err != nil {
		log.Fatal(err)
	}
	pr := prot.Protection
	fmt.Printf("scheme %s: energy x%.2f, latency x%.2f, area x%.2f — protection is not free\n",
		pr.Scheme, pr.EnergyOverhead, pr.LatencyOverhead, pr.AreaOverhead)
	for i, pt := range prot.Points {
		fmt.Printf("  sigma %.1f: yield %.3f -> %.3f protected\n",
			pt.Sigma, pt.Yield, pr.Points[i].Yield)
	}
	fmt.Printf("worst-case yield: %.3f unprotected -> %.3f protected\n",
		prot.MinYield(), pr.MinYield())
}
