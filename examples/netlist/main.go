// Programmable photonics: build an optical datapath as an explicit
// netlist instead of fixed code — the field-programmable-photonic-array
// idea the paper's related work surveys (Perez et al., Harris et al.).
//
// The circuit below assembles a 2-tap optical FIR-like structure from
// the library's node catalog (sources, delays, MZI combiners, MRR
// filters), runs it, and probes an intermediate tap.
//
//	go run ./examples/netlist
package main

import (
	"fmt"
	"log"

	"pixel/internal/optsim"
	"pixel/internal/photonics"
	"pixel/internal/phy"
	"pixel/internal/trace"
)

func main() {
	const (
		launch = 1 * phy.Milliwatt
		slot   = 100 * phy.Picosecond
	)

	c := optsim.NewCircuit()

	// A pulse pattern enters the mesh.
	src := c.Add(&optsim.SourceNode{
		Label:  "pattern",
		Signal: optsim.NewOOK([]int{1, 0, 1, 1, 0}, launch, slot, 0),
	})

	// Tap the input for observability.
	tap := c.Add(&optsim.TapNode{Label: "input-probe"})
	must(c.Connect(src, 0, tap, 0))

	// An MRR filter splits the signal: the cross port feeds a delayed
	// branch, the bar port goes straight ahead.
	f := photonics.NewDoubleMRRFilter(0)
	f.On = true
	split := c.Add(&optsim.FilterNode{Label: "split", Filter: f})
	must(c.Connect(tap, 0, split, 0))

	// Delay the cross branch by one slot (the FIR tap).
	dly := c.Add(&optsim.DelayNode{Label: "one-slot", Slots: 1})
	must(c.Connect(split, 1, dly, 0))

	// Recombine: delayed + direct (coherent addition in the MZI).
	mzi := c.Add(&optsim.CombinerNode{
		Label:    "recombine",
		Params:   photonics.DefaultMZIParams(),
		Lossless: true,
	})
	must(c.Connect(dly, 0, mzi, 0))
	must(c.Connect(split, 0, mzi, 1))

	led := optsim.NewLedger()
	out, err := c.Run(led)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("input pattern:   1 0 1 1 0")
	fmt.Print("FIR output slots:")
	result := out[mzi][0]
	for i := 0; i < result.Slots(); i++ {
		fmt.Printf(" %.2g", result.Power(i)/launch)
	}
	fmt.Println(" (power, normalized)")

	sum := trace.Summarize(result, launch/10)
	fmt.Printf("summary: %d slots, %d lit, peak %.2gx launch\n",
		sum.Slots, sum.LitSlots, sum.PeakPower/launch)
	fmt.Printf("metered: mul %s, add %s, latency %s\n",
		phy.FormatEnergy(led.Energy(optsim.CatMul)),
		phy.FormatEnergy(led.Energy(optsim.CatAdd)),
		phy.FormatTime(led.Latency()))

	// Reprogram the same mesh: turn the filter off and the FIR tap
	// goes dark — the "programmable" in programmable photonics.
	f.On = false
	out, err = c.Run(optsim.NewLedger())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\nfilter off ->   ")
	result = out[mzi][0]
	for i := 0; i < result.Slots(); i++ {
		fmt.Printf(" %.2g", result.Power(i)/launch)
	}
	fmt.Println(" (delayed branch dark, direct branch passes)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
