// PIXEL's x/y photonic interconnect (Figure 3): a tile grid of OMACs
// firing neurons on dedicated WDM bands in the MWSR discipline. The
// example sizes the wavelength allocation, checks the comb-laser
// ceiling, closes the worst-case link budget and prices a neuron
// broadcast.
//
//	go run ./examples/interconnect
package main

import (
	"fmt"
	"log"

	"pixel/internal/interconnect"
	"pixel/internal/photonics"
	"pixel/internal/phy"
)

func main() {
	for _, shape := range []struct{ rows, cols, lanes int }{
		{4, 4, 4},
		{4, 4, 8},
		{8, 8, 8},
	} {
		g, err := interconnect.NewGrid(shape.rows, shape.cols, shape.lanes, 10*phy.Gigahertz)
		if err != nil {
			log.Fatal(err)
		}
		launch := g.RequiredLaunchPower()
		laser := photonics.DefaultLaser(g.Lanes, launch)
		fmt.Printf("%dx%d tiles, %d lanes:\n", g.Rows, g.Cols, g.Lanes)
		fmt.Printf("  wavelengths per row waveguide : %d (of %d available)\n",
			g.RowWavelengths(), interconnect.MaxWavelengths)
		lo, hi := g.Band(2)
		fmt.Printf("  tile 2 transmit band          : lambda %d..%d\n", lo, hi-1)
		fmt.Printf("  worst-case launch power       : %s per wavelength\n", phy.FormatPower(launch))
		fmt.Printf("  64-bit neuron broadcast       : %s, %s\n",
			phy.FormatTime(g.BroadcastLatency(64)),
			phy.FormatEnergy(g.BroadcastEnergy(64, laser)))
		fmt.Printf("  waveguide area                : %s\n\n", phy.FormatArea(g.WaveguideArea()))
	}

	// Scalability ceiling: the MWSR discipline runs out of comb-laser
	// wavelengths; the library reports it rather than mis-sizing.
	_, err := interconnect.NewGrid(4, 16, 16, 10*phy.Gigahertz)
	fmt.Printf("16 tiles x 16 lanes per row -> %v\n\n", err)

	// MWSR vs SWMR: the energy/performance trade the paper's related
	// work describes, priced on PIXEL's own fabric.
	g, err := interconnect.NewGrid(4, 8, 4, 10*phy.Gigahertz)
	if err != nil {
		log.Fatal(err)
	}
	laser := photonics.DefaultLaser(g.Lanes, g.RequiredLaunchPower())
	mwsr, swmr, err := g.CompareDisciplines(128, laser)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("128-bit row broadcast, 8 tiles:")
	for _, c := range []interconnect.BroadcastCost{mwsr, swmr} {
		fmt.Printf("  %s: %d transmission(s), %d detector banks, %s, %s, launch %s/lambda\n",
			c.Discipline, c.Transmissions, c.DetectorBanks,
			phy.FormatEnergy(c.Energy), phy.FormatTime(c.Latency),
			phy.FormatPower(c.LaunchPower))
	}
}
