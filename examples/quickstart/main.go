// Quickstart: compute a multiply-accumulate on the all-optical PIXEL
// datapath and read back the metered energy and latency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pixel"
)

func main() {
	// An 8-bit all-optical MAC able to accumulate 4-term dot products:
	// MRR filters do the AND, a cascaded-MZI chain does the
	// shift-accumulate, a comparator ladder digitizes the amplitudes.
	mac, err := pixel.NewMAC(pixel.OO, 8, 4)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Section II-B example operands.
	p, err := mac.Multiply(6, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optical 6 x 13 = %d\n", p)

	dot, err := mac.DotProduct([]uint64{2, 0, 3, 8}, []uint64{6, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optical <(2,0,3,8),(6,1,2,3)> = %d (paper's cycle-1 partial sum: 42)\n", dot)

	fmt.Println("\nmetered by the simulation:")
	for cat, joules := range mac.EnergyJ() {
		fmt.Printf("  %-6s %.3g pJ\n", cat, joules*1e12)
	}
	fmt.Printf("  latency %.3g ns\n", mac.LatencyS()*1e9)

	// The same computation on the electrical baseline gives the same
	// answer — the designs are bit-exact equivalents.
	ee, err := pixel.NewMAC(pixel.EE, 8, 4)
	if err != nil {
		log.Fatal(err)
	}
	check, err := ee.DotProduct([]uint64{2, 0, 3, 8}, []uint64{6, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nelectrical Stripes baseline agrees: %d\n", check)
}
