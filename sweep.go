package pixel

import (
	"context"
	"fmt"
	"sort"

	"pixel/internal/cnn"
	sweepeng "pixel/internal/sweep"
)

// defaultEngine backs every evaluation and sweep entry point of the
// public API: a GOMAXPROCS worker pool with memoized network
// resolution, configuration construction and a bounded LRU of whole
// evaluation results. Repeating a sweep (or overlapping one — the
// EE-normalized figures share reference points) does no pricing work
// for points already in cache.
var defaultEngine = sweepeng.New(sweepeng.Options{})

// SweepOptions tunes one sweep call. The zero value (or a nil
// *SweepOptions) means: one worker per CPU, no progress reporting.
type SweepOptions struct {
	// Workers overrides the worker-pool size; <= 0 keeps GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called after each point completes
	// with the completed and total counts. Calls are serialized; keep
	// the callback fast.
	Progress func(done, total int)
}

func (o *SweepOptions) runOptions() sweepeng.RunOptions {
	if o == nil {
		return sweepeng.RunOptions{}
	}
	return sweepeng.RunOptions{Workers: o.Workers, Progress: o.Progress}
}

// Sweep evaluates a network over a grid of design points — the
// programmatic form of the design-space exploration the paper performs
// across lanes and bits/lane. Results come back in deterministic order
// (design, then lanes, then bits), bit-identical to evaluating each
// point serially, but computed across a worker pool with shared-work
// memoization (see SweepContext).
func Sweep(network string, designs []Design, lanesAxis, bitsAxis []int) ([]Result, error) {
	if len(designs) == 0 || len(lanesAxis) == 0 || len(bitsAxis) == 0 {
		return nil, fmt.Errorf("pixel: sweep axes must be non-empty")
	}
	return SweepContext(context.Background(), network, Grid(designs, lanesAxis, bitsAxis), nil)
}

// SweepContext evaluates a network over explicit design points (see
// Grid) through the concurrent engine. Results come back in point
// order regardless of worker scheduling. On cancellation it returns
// promptly with the context's error; opts may be nil.
func SweepContext(ctx context.Context, network string, points []Point, opts *SweepOptions) ([]Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("pixel: sweep axes must be non-empty")
	}
	if _, err := resolveNetwork(network); err != nil {
		return nil, err
	}
	jobs := make([]sweepeng.Job, len(points))
	for i, p := range points {
		job, err := p.engineJob(network)
		if err != nil {
			return nil, fmt.Errorf("pixel: sweep point %s: %w", p, err)
		}
		jobs[i] = job
	}
	costs, err := defaultEngine.Run(ctx, jobs, opts.runOptions())
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(points))
	for i, p := range points {
		out[i] = resultFromCost(network, p, costs[i])
	}
	return out, nil
}

// SweepNetworks fans one grid of design points out across several
// networks in a single worker-pool run. The result map holds one
// point-ordered slice per network; the total grid is evaluated
// concurrently with shared-work memoization across networks.
func SweepNetworks(ctx context.Context, networks []string, points []Point, opts *SweepOptions) (map[string][]Result, error) {
	if len(networks) == 0 || len(points) == 0 {
		return nil, fmt.Errorf("pixel: sweep axes must be non-empty")
	}
	jobs := make([]sweepeng.Job, 0, len(networks)*len(points))
	for _, name := range networks {
		if _, err := resolveNetwork(name); err != nil {
			return nil, err
		}
		for _, p := range points {
			job, err := p.engineJob(name)
			if err != nil {
				return nil, fmt.Errorf("pixel: sweep point %s: %w", p, err)
			}
			jobs = append(jobs, job)
		}
	}
	costs, err := defaultEngine.Run(ctx, jobs, opts.runOptions())
	if err != nil {
		return nil, err
	}
	out := make(map[string][]Result, len(networks))
	for ni, name := range networks {
		results := make([]Result, len(points))
		for pi, p := range points {
			results[pi] = resultFromCost(name, p, costs[ni*len(points)+pi])
		}
		out[name] = results
	}
	return out, nil
}

// resolveNetwork looks a network up through the engine's memo,
// wrapping misses with ErrUnknownNetwork.
func resolveNetwork(name string) (cnn.Network, error) {
	net, err := defaultEngine.Network(name)
	if err != nil {
		return cnn.Network{}, fmt.Errorf("%w: %v", ErrUnknownNetwork, err)
	}
	return net, nil
}

// BestEDP returns the sweep result with the lowest energy-delay
// product.
func BestEDP(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("pixel: no results")
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.EDP < best.EDP {
			best = r
		}
	}
	return best, nil
}

// RankByEDP returns the results sorted by ascending EDP (a copy; the
// input is untouched).
func RankByEDP(results []Result) []Result {
	out := append([]Result(nil), results...)
	sort.Slice(out, func(i, j int) bool { return out[i].EDP < out[j].EDP })
	return out
}
