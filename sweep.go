package pixel

import (
	"fmt"
	"sort"
)

// Sweep evaluates a network over a grid of design points — the
// programmatic form of the design-space exploration the paper performs
// across lanes and bits/lane. Results come back in deterministic order
// (design, then lanes, then bits).
func Sweep(network string, designs []Design, lanesAxis, bitsAxis []int) ([]Result, error) {
	if len(designs) == 0 || len(lanesAxis) == 0 || len(bitsAxis) == 0 {
		return nil, fmt.Errorf("pixel: sweep axes must be non-empty")
	}
	var out []Result
	for _, d := range designs {
		for _, lanes := range lanesAxis {
			for _, bits := range bitsAxis {
				r, err := Evaluate(network, d, lanes, bits)
				if err != nil {
					return nil, fmt.Errorf("pixel: sweep point %v/%d/%d: %w", d, lanes, bits, err)
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// BestEDP returns the sweep result with the lowest energy-delay
// product.
func BestEDP(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("pixel: no results")
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.EDP < best.EDP {
			best = r
		}
	}
	return best, nil
}

// RankByEDP returns the results sorted by ascending EDP (a copy; the
// input is untouched).
func RankByEDP(results []Result) []Result {
	out := append([]Result(nil), results...)
	sort.Slice(out, func(i, j int) bool { return out[i].EDP < out[j].EDP })
	return out
}
