package pixel

import (
	"context"
	"fmt"
	"sort"

	"pixel/internal/cnn"
	sweepeng "pixel/internal/sweep"
)

// defaultEngine backs every evaluation and sweep entry point of the
// package-level API: a GOMAXPROCS worker pool with memoized network
// resolution, configuration construction and a bounded LRU of whole
// evaluation results. Repeating a sweep (or overlapping one — the
// EE-normalized figures share reference points) does no pricing work
// for points already in cache. Independent engines come from NewEngine.
var defaultEngine = NewEngine(EngineOptions{})

// SweepOptions tunes one sweep call. The zero value (or a nil
// *SweepOptions) means: one worker per CPU, no progress reporting.
type SweepOptions struct {
	// Workers overrides the worker-pool size; <= 0 keeps GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called after each point completes
	// with the completed and total counts. Calls are serialized; keep
	// the callback fast.
	Progress func(done, total int)
	// Cell, when non-nil, is called once per (network, point) grid
	// cell as soon as it is priced, with the point's index on the
	// request grid and the cell's Result. Calls are serialized with
	// each other and with Progress but arrive out of grid order in
	// general; cells restored from a checkpoint are announced up
	// front, in grid order. Keep the callback fast.
	Cell func(network string, index int, r Result)
}

func (o *SweepOptions) runOptions() sweepeng.RunOptions {
	if o == nil {
		return sweepeng.RunOptions{}
	}
	return sweepeng.RunOptions{Workers: o.Workers, Progress: o.Progress}
}

// Sweep evaluates a network over a grid of design points — the
// programmatic form of the design-space exploration the paper performs
// across lanes and bits/lane. Results come back in deterministic order
// (design, then lanes, then bits), bit-identical to evaluating each
// point serially, but computed across a worker pool with shared-work
// memoization (see SweepContext).
func Sweep(network string, designs []Design, lanesAxis, bitsAxis []int) ([]Result, error) {
	if len(designs) == 0 || len(lanesAxis) == 0 || len(bitsAxis) == 0 {
		return nil, fmt.Errorf("pixel: sweep axes must be non-empty")
	}
	return SweepContext(context.Background(), network, Grid(designs, lanesAxis, bitsAxis), nil)
}

// SweepContext evaluates a network over explicit design points (see
// Grid) through the concurrent engine. Results come back in point
// order regardless of worker scheduling. On cancellation it returns
// promptly with the context's error; opts may be nil.
func SweepContext(ctx context.Context, network string, points []Point, opts *SweepOptions) ([]Result, error) {
	return defaultEngine.SweepContext(ctx, network, points, opts)
}

// SweepNetworks fans one grid of design points out across several
// networks in a single worker-pool run. The result map holds one
// point-ordered slice per network; the total grid is evaluated
// concurrently with shared-work memoization across networks.
func SweepNetworks(ctx context.Context, networks []string, points []Point, opts *SweepOptions) (map[string][]Result, error) {
	return defaultEngine.SweepNetworks(ctx, networks, points, opts)
}

// resolveNetwork looks a network up through the default engine's memo,
// wrapping misses with ErrUnknownNetwork.
func resolveNetwork(name string) (cnn.Network, error) {
	return defaultEngine.resolveNetwork(name)
}

// BestEDP returns the sweep result with the lowest energy-delay
// product.
func BestEDP(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("pixel: no results")
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.EDP < best.EDP {
			best = r
		}
	}
	return best, nil
}

// RankByEDP returns the results sorted by ascending EDP (a copy; the
// input is untouched).
func RankByEDP(results []Result) []Result {
	out := append([]Result(nil), results...)
	sort.Slice(out, func(i, j int) bool { return out[i].EDP < out[j].EDP })
	return out
}
