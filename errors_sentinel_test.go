package pixel

import (
	"context"
	"errors"
	"testing"
)

// TestSentinelWrappingAtFacade is the contract pixeld's HTTP status
// mapping relies on: every public evaluation entry point must wrap the
// matching sentinel for every bad-input class, so errors.Is works no
// matter which route a failure took through the engine.
func TestSentinelWrappingAtFacade(t *testing.T) {
	entryPoints := []struct {
		name string
		// call evaluates the given network (ignored for Area) at p.
		call        func(network string, p Point) error
		usesNetwork bool
	}{
		{"Evaluate", func(n string, p Point) error {
			_, err := Evaluate(n, p.Design, p.Lanes, p.Bits)
			return err
		}, true},
		{"EvaluatePower", func(n string, p Point) error {
			_, err := EvaluatePower(n, p.Design, p.Lanes, p.Bits)
			return err
		}, true},
		{"Area", func(n string, p Point) error {
			_, err := Area(p.Design, p.Lanes, p.Bits)
			return err
		}, false},
		{"MapToGrid", func(n string, p Point) error {
			_, err := MapToGrid(n, p.Design, p.Lanes, p.Bits, 4, 4, false)
			return err
		}, true},
		{"SweepContext", func(n string, p Point) error {
			_, err := SweepContext(context.Background(), n, []Point{p}, nil)
			return err
		}, true},
	}

	badInputs := []struct {
		name    string
		network string
		p       Point
		want    error
		// needsNetwork marks classes only reachable through a network
		// argument; they are skipped for network-less entry points.
		needsNetwork bool
	}{
		{"unknown network", "NopeNet", Point{Design: OO, Lanes: 4, Bits: 16}, ErrUnknownNetwork, true},
		{"unknown design", "AlexNet", Point{Design: Design(99), Lanes: 4, Bits: 16}, ErrUnknownDesign, false},
		{"non-positive lanes", "AlexNet", Point{Design: OO, Lanes: 0, Bits: 16}, ErrBadPrecision, false},
		{"out-of-range bits", "AlexNet", Point{Design: OO, Lanes: 4, Bits: 1000}, ErrBadPrecision, false},
	}

	for _, ep := range entryPoints {
		for _, bad := range badInputs {
			if bad.needsNetwork && !ep.usesNetwork {
				continue
			}
			t.Run(ep.name+"/"+bad.name, func(t *testing.T) {
				err := ep.call(bad.network, bad.p)
				if !errors.Is(err, bad.want) {
					t.Errorf("%s(%s, %s) err = %v, want errors.Is(%v)",
						ep.name, bad.network, bad.p, err, bad.want)
				}
			})
		}
	}

	// ErrBadGrid is MapToGrid-specific: an over-budget wavelength plan.
	t.Run("MapToGrid/bad grid", func(t *testing.T) {
		if _, err := MapToGrid("LeNet", OO, 16, 8, 4, 16, false); !errors.Is(err, ErrBadGrid) {
			t.Errorf("err = %v, want errors.Is(ErrBadGrid)", err)
		}
		if _, err := MapToGrid("LeNet", OO, 4, 8, 0, 4, false); !errors.Is(err, ErrBadGrid) {
			t.Errorf("non-positive rows: err = %v, want errors.Is(ErrBadGrid)", err)
		}
	})

	// Validate, the piecewise precheck Points offer, agrees with the
	// entry points on the same classes.
	t.Run("Validate", func(t *testing.T) {
		if err := (Point{Design: Design(99), Lanes: 4, Bits: 16}).Validate(); !errors.Is(err, ErrUnknownDesign) {
			t.Errorf("err = %v, want ErrUnknownDesign", err)
		}
		if err := (Point{Design: OO, Lanes: 0, Bits: 16}).Validate(); !errors.Is(err, ErrBadPrecision) {
			t.Errorf("err = %v, want ErrBadPrecision", err)
		}
	})
}
