package pixel_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"pixel"
)

// TestDeprecatedWrappersMatchContextForms pins the compatibility
// contract of the facade consolidation: every deprecated positional
// wrapper returns exactly what its canonical ...Context counterpart
// returns — same values and same error identity — on both success and
// failure inputs.
func TestDeprecatedWrappersMatchContextForms(t *testing.T) {
	ctx := context.Background()
	good := pixel.Point{Design: pixel.OO, Lanes: 4, Bits: 8}
	bad := pixel.Point{Design: pixel.OO, Lanes: 4, Bits: 1000}

	check := func(t *testing.T, name string, oldV, newV any, oldErr, newErr error) {
		t.Helper()
		if (oldErr == nil) != (newErr == nil) || (oldErr != nil && !errors.Is(oldErr, newErr) && oldErr.Error() != newErr.Error()) {
			t.Fatalf("%s: wrapper err = %v, context form err = %v", name, oldErr, newErr)
		}
		if !reflect.DeepEqual(oldV, newV) {
			t.Errorf("%s: wrapper = %+v, context form = %+v", name, oldV, newV)
		}
	}

	for _, p := range []pixel.Point{good, bad} {
		oldRes, oldErr := pixel.Evaluate("LeNet", p.Design, p.Lanes, p.Bits) //lint:ignore SA1019 pinning the deprecated wrapper
		newRes, newErr := pixel.EvaluateContext(ctx, "LeNet", p)
		check(t, "Evaluate "+p.String(), oldRes, newRes, oldErr, newErr)

		oldPow, oldErr := pixel.EvaluatePower("LeNet", p.Design, p.Lanes, p.Bits) //lint:ignore SA1019 pinning the deprecated wrapper
		newPow, newErr := pixel.PowerContext(ctx, "LeNet", p)
		check(t, "EvaluatePower "+p.String(), oldPow, newPow, oldErr, newErr)

		oldArea, oldErr := pixel.Area(p.Design, p.Lanes, p.Bits) //lint:ignore SA1019 pinning the deprecated wrapper
		newArea, newErr := pixel.AreaContext(ctx, p)
		check(t, "Area "+p.String(), oldArea, newArea, oldErr, newErr)

		oldMap, oldErr := pixel.MapToGrid("LeNet", p.Design, p.Lanes, p.Bits, 4, 4, true) //lint:ignore SA1019 pinning the deprecated wrapper
		newMap, newErr := pixel.MapContext(ctx, pixel.MapSpec{
			Network: "LeNet", Point: p, Rows: 4, Cols: 4, PhotonicWeights: true,
		})
		check(t, "MapToGrid "+p.String(), oldMap, newMap, oldErr, newErr)
	}
}

// TestContextFormsHonourCancellation proves every canonical entry
// point returns the context's error without doing model work when ctx
// is already done.
func TestContextFormsHonourCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := pixel.Point{Design: pixel.OO, Lanes: 4, Bits: 8}

	if _, err := pixel.EvaluateContext(ctx, "LeNet", p); !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateContext err = %v, want context.Canceled", err)
	}
	if _, err := pixel.PowerContext(ctx, "LeNet", p); !errors.Is(err, context.Canceled) {
		t.Errorf("PowerContext err = %v, want context.Canceled", err)
	}
	if _, err := pixel.AreaContext(ctx, p); !errors.Is(err, context.Canceled) {
		t.Errorf("AreaContext err = %v, want context.Canceled", err)
	}
	if _, err := pixel.MapContext(ctx, pixel.MapSpec{Network: "LeNet", Point: p, Rows: 4, Cols: 4}); !errors.Is(err, context.Canceled) {
		t.Errorf("MapContext err = %v, want context.Canceled", err)
	}
	if _, err := pixel.InferContext(ctx, pixel.InferSpec{Network: "tiny", Images: [][]int64{make([]int64, 64)}}); !errors.Is(err, context.Canceled) {
		t.Errorf("InferContext err = %v, want context.Canceled", err)
	}
}
