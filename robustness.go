package pixel

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"pixel/internal/arch"
	"pixel/internal/montecarlo"
	"pixel/internal/protect"
)

// RobustnessSpec configures a Monte-Carlo variation-to-yield sweep: N
// virtual parts are fabricated per σ scale, each samples device-level
// perturbations (MRR resonance offset, ambient excursion through the
// thermal tuning loop, MZI split error, comparator threshold offset),
// and runs a full quantized CNN inference through a fault-injecting
// bit-serial engine. See docs/VARIATION.md.
type RobustnessSpec struct {
	// Network names the demo network to perturb (see
	// RobustnessNetworks; "lenet" is the golden-test LeNet).
	Network string
	// Design selects the exposed datapaths: EE is immune, OE exposes
	// the optical multiply, OO the multiply and the accumulate.
	Design Design
	// Sigmas is the σ-scale axis: each value multiplies every device
	// variation σ of the default model.
	Sigmas []float64
	// Trials is the number of virtual parts per σ point.
	Trials int
	// Seed is the root seed; the whole run is a pure function of
	// (spec, Seed) regardless of Workers.
	Seed int64
	// Workers sizes the trial-level worker pool; <= 0 means
	// GOMAXPROCS.
	Workers int
	// ErrorBudget is the tolerated fraction of output elements
	// differing from the unperturbed baseline for a part to count as
	// yielding; 0 demands bit-exact inference.
	ErrorBudget float64
	// Protection, when non-nil, re-runs every trial through a
	// fault-mitigation scheme (same random draws — common random
	// numbers) and adds the paired protected curve plus its
	// energy/latency/area overhead to the report.
	Protection *ProtectionSpec
}

// ProtectionSpec selects and parameterizes a fault-mitigation scheme
// for a robustness sweep. Unset numeric fields take the scheme's
// default.
type ProtectionSpec struct {
	// Scheme is one of "tmr" (triple-modular redundancy), "dmr",
	// "nmr" (Copies-way redundancy), "parity" (parity-guarded
	// detect-and-retry) or "guardband" (threshold guard-banding +
	// periodic thermal recalibration).
	Scheme string `json:"scheme"`
	// Copies is the redundancy degree for "nmr" (default 3).
	Copies int `json:"copies,omitempty"`
	// Retries is the per-call retry budget for "parity" (default 3).
	Retries int `json:"retries,omitempty"`
	// RecalEvery is the recalibration interval for "guardband"
	// (default 32 inferences).
	RecalEvery int `json:"recal_every,omitempty"`
}

// scheme builds the internal protect.Scheme, or nil for a nil spec.
func (p *ProtectionSpec) scheme() (protect.Scheme, error) {
	if p == nil {
		return nil, nil
	}
	var s protect.Scheme
	switch strings.ToLower(strings.TrimSpace(p.Scheme)) {
	case "tmr":
		s = protect.TMR()
	case "dmr":
		s = protect.Redundancy{Copies: 2}
	case "nmr":
		copies := p.Copies
		if copies == 0 {
			copies = 3
		}
		s = protect.Redundancy{Copies: copies}
	case "parity":
		retries := p.Retries
		if retries <= 0 {
			retries = 3
		}
		s = protect.Parity{Retries: retries}
	case "guardband":
		g := protect.DefaultGuardBand()
		if p.RecalEvery > 0 {
			g.RecalEvery = p.RecalEvery
		}
		s = g
	default:
		return nil, fmt.Errorf("%w: unknown protection scheme %q (have tmr, dmr, nmr, parity, guardband)",
			ErrBadSpec, p.Scheme)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return s, nil
}

// ParseProtection parses a CLI-style protection selector:
// "tmr", "dmr", "nmr:5", "parity", "parity:3", "guardband",
// "guardband:16". An empty string or "none" means no protection. The
// optional ":N" parameterizes the scheme (copies for nmr, retries for
// parity, recalibration interval for guardband).
func ParseProtection(s string) (*ProtectionSpec, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "none" {
		return nil, nil
	}
	name, arg, hasArg := strings.Cut(s, ":")
	spec := &ProtectionSpec{Scheme: name}
	if hasArg {
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("%w: protection parameter %q is not an integer", ErrBadSpec, arg)
		}
		if n <= 0 {
			return nil, fmt.Errorf("%w: protection parameter %d must be positive", ErrBadSpec, n)
		}
		switch name {
		case "nmr":
			spec.Copies = n
		case "parity":
			spec.Retries = n
		case "guardband":
			spec.RecalEvery = n
		default:
			return nil, fmt.Errorf("%w: protection scheme %q takes no parameter", ErrBadSpec, name)
		}
	}
	// Validate eagerly so the flag boundary reports bad schemes.
	if _, err := spec.scheme(); err != nil {
		return nil, err
	}
	return spec, nil
}

// YieldPoint is the aggregate of all trials at one σ scale.
type YieldPoint = montecarlo.SigmaPoint

// ProtectedPoint is one σ point of the protected curve: the usual
// yield statistics plus the scheme's mitigation-work counters.
type ProtectedPoint = montecarlo.ProtectedPoint

// ProtectionReport is the protected half of a paired robustness run:
// the recovered yield curve and what the mitigation costs through the
// arch model — protection is never free.
type ProtectionReport struct {
	// Scheme names the mitigation ("tmr", "parity", "guardband", ...).
	Scheme string `json:"scheme"`
	// Points is the protected yield curve on the same σ axis as the
	// unprotected one, from the same random draws.
	Points []ProtectedPoint `json:"points"`
	// MaxRetryFactor is the worst measured per-call re-execution
	// overhead across the axis (1 + retries/call); it is folded into
	// the energy and latency overheads below.
	MaxRetryFactor float64 `json:"max_retry_factor"`
	// EnergyOverhead, LatencyOverhead and AreaOverhead are
	// protected/unprotected cost ratios of one inference of this
	// network on this design under the arch cost model.
	EnergyOverhead  float64 `json:"energy_overhead"`
	LatencyOverhead float64 `json:"latency_overhead"`
	AreaOverhead    float64 `json:"area_overhead"`
}

// MinYield returns the worst protected yield across the σ axis (1 for
// an empty curve).
func (r *ProtectionReport) MinYield() float64 {
	min := 1.0
	for _, p := range r.Points {
		if p.Yield < min {
			min = p.Yield
		}
	}
	return min
}

// RobustnessReport is a yield curve with its provenance.
type RobustnessReport struct {
	Network string       `json:"network"`
	Design  string       `json:"design"`
	Trials  int          `json:"trials"`
	Seed    int64        `json:"seed"`
	Budget  float64      `json:"error_budget"`
	Points  []YieldPoint `json:"points"`
	// Baseline is the unperturbed inference output the trials are
	// judged against.
	Baseline []int64 `json:"baseline"`
	// Protection is the paired protected curve and its overhead, nil
	// when the spec requested none.
	Protection *ProtectionReport `json:"protection,omitempty"`
}

// MinYield returns the worst yield across the σ axis (1 for an empty
// curve).
func (r RobustnessReport) MinYield() float64 {
	min := 1.0
	for _, p := range r.Points {
		if p.Yield < min {
			min = p.Yield
		}
	}
	return min
}

// RobustnessNetworks lists the demo networks a robustness sweep can
// perturb.
func RobustnessNetworks() []string { return montecarlo.Networks() }

// Robustness runs a Monte-Carlo variation sweep — the positional
// context-free form of RobustnessContext.
func Robustness(spec RobustnessSpec) (RobustnessReport, error) {
	return RobustnessContext(context.Background(), spec)
}

// RobustnessContext runs the sweep with cancellation. Spec failures
// surface ErrUnknownNetwork, ErrUnknownDesign or ErrBadSpec; the
// report is bit-identical for any Workers value. For a resumable run
// with progress hooks, build a RobustnessJob instead — this is the
// one-shot form of the same machinery.
func RobustnessContext(ctx context.Context, spec RobustnessSpec) (RobustnessReport, error) {
	job, err := NewRobustnessJob(spec)
	if err != nil {
		return RobustnessReport{}, err
	}
	return job.Run(ctx, RobustnessHooks{})
}

// protectionCostLanes is the canonical ensemble size protection
// overheads are priced at (the paper's 8-lane, native-precision MAC
// ensemble) — the ratios are what the report carries, and they are
// insensitive to the absolute ensemble scale.
const protectionCostLanes = 8

// protectionReport prices the scheme on this network and design and
// pairs it with the protected curve. The measured worst-case retry
// factor from the run is folded into the a-priori overhead so
// detect-and-retry schemes pay for the re-executions they actually
// performed.
func protectionReport(net montecarlo.Network, ad arch.Design, scheme protect.Scheme, rep *montecarlo.Report) (*ProtectionReport, error) {
	pr := &ProtectionReport{
		Scheme:         rep.Protection,
		Points:         rep.Protected,
		MaxRetryFactor: rep.MaxRetryFactor(),
	}
	cfg, err := arch.NewConfig(ad, protectionCostLanes, arch.NativePrecision)
	if err != nil {
		return nil, err
	}
	cost, err := arch.CostNetwork(net.Cost, cfg)
	if err != nil {
		return nil, err
	}
	pc, err := arch.ApplyProtection(cost, scheme.Overhead(ad).WithExecutions(pr.MaxRetryFactor))
	if err != nil {
		return nil, err
	}
	pr.EnergyOverhead = pc.EnergyOverhead()
	pr.LatencyOverhead = pc.LatencyOverhead()
	pr.AreaOverhead = pc.AreaOverhead()
	return pr, nil
}
