package pixel

import (
	"context"
	"fmt"

	"pixel/internal/montecarlo"
)

// RobustnessSpec configures a Monte-Carlo variation-to-yield sweep: N
// virtual parts are fabricated per σ scale, each samples device-level
// perturbations (MRR resonance offset, ambient excursion through the
// thermal tuning loop, MZI split error, comparator threshold offset),
// and runs a full quantized CNN inference through a fault-injecting
// bit-serial engine. See docs/VARIATION.md.
type RobustnessSpec struct {
	// Network names the demo network to perturb (see
	// RobustnessNetworks; "lenet" is the golden-test LeNet).
	Network string
	// Design selects the exposed datapaths: EE is immune, OE exposes
	// the optical multiply, OO the multiply and the accumulate.
	Design Design
	// Sigmas is the σ-scale axis: each value multiplies every device
	// variation σ of the default model.
	Sigmas []float64
	// Trials is the number of virtual parts per σ point.
	Trials int
	// Seed is the root seed; the whole run is a pure function of
	// (spec, Seed) regardless of Workers.
	Seed int64
	// Workers sizes the trial-level worker pool; <= 0 means
	// GOMAXPROCS.
	Workers int
	// ErrorBudget is the tolerated fraction of output elements
	// differing from the unperturbed baseline for a part to count as
	// yielding; 0 demands bit-exact inference.
	ErrorBudget float64
}

// YieldPoint is the aggregate of all trials at one σ scale.
type YieldPoint = montecarlo.SigmaPoint

// RobustnessReport is a yield curve with its provenance.
type RobustnessReport struct {
	Network string       `json:"network"`
	Design  string       `json:"design"`
	Trials  int          `json:"trials"`
	Seed    int64        `json:"seed"`
	Budget  float64      `json:"error_budget"`
	Points  []YieldPoint `json:"points"`
	// Baseline is the unperturbed inference output the trials are
	// judged against.
	Baseline []int64 `json:"baseline"`
}

// MinYield returns the worst yield across the σ axis (1 for an empty
// curve).
func (r RobustnessReport) MinYield() float64 {
	min := 1.0
	for _, p := range r.Points {
		if p.Yield < min {
			min = p.Yield
		}
	}
	return min
}

// RobustnessNetworks lists the demo networks a robustness sweep can
// perturb.
func RobustnessNetworks() []string { return montecarlo.Networks() }

// Robustness runs a Monte-Carlo variation sweep — the positional
// context-free form of RobustnessContext.
func Robustness(spec RobustnessSpec) (RobustnessReport, error) {
	return RobustnessContext(context.Background(), spec)
}

// RobustnessContext runs the sweep with cancellation. Spec failures
// surface ErrUnknownNetwork, ErrUnknownDesign or ErrBadSpec; the
// report is bit-identical for any Workers value.
func RobustnessContext(ctx context.Context, spec RobustnessSpec) (RobustnessReport, error) {
	ad, err := spec.Design.arch()
	if err != nil {
		return RobustnessReport{}, err
	}
	net, err := montecarlo.BuildNetwork(spec.Network)
	if err != nil {
		return RobustnessReport{}, fmt.Errorf("%w: %q (have %v)", ErrUnknownNetwork, spec.Network, montecarlo.Networks())
	}
	mcSpec := montecarlo.Spec{
		Model:       net.Model,
		Input:       net.Input,
		Design:      ad,
		Bits:        net.Bits,
		Terms:       net.Terms,
		Variation:   montecarlo.DefaultVariationModel(),
		Sigmas:      spec.Sigmas,
		Trials:      spec.Trials,
		Seed:        spec.Seed,
		Workers:     spec.Workers,
		ErrorBudget: spec.ErrorBudget,
	}
	if err := mcSpec.Validate(); err != nil {
		return RobustnessReport{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	rep, err := montecarlo.Run(ctx, mcSpec)
	if err != nil {
		return RobustnessReport{}, err
	}
	return RobustnessReport{
		Network:  spec.Network,
		Design:   rep.Design,
		Trials:   rep.Trials,
		Seed:     rep.Seed,
		Budget:   rep.ErrorBudget,
		Points:   rep.Points,
		Baseline: rep.Baseline,
	}, nil
}
