package pixel

import "testing"

func TestSweepGridComplete(t *testing.T) {
	res, err := Sweep("LeNet", Designs(), []int{2, 4}, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3*2*2 {
		t.Fatalf("sweep points = %d, want 12", len(res))
	}
	// Deterministic order: design-major.
	if res[0].Design != EE || res[len(res)-1].Design != OO {
		t.Error("sweep order wrong")
	}
	for _, r := range res {
		if r.EDP <= 0 {
			t.Errorf("point %+v has non-positive EDP", r)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep("LeNet", nil, []int{4}, []int{8}); err == nil {
		t.Error("empty designs should error")
	}
	if _, err := Sweep("NopeNet", Designs(), []int{4}, []int{8}); err == nil {
		t.Error("unknown network should error")
	}
	if _, err := Sweep("LeNet", Designs(), []int{0}, []int{8}); err == nil {
		t.Error("invalid lanes should error")
	}
}

func TestBestEDPAndRank(t *testing.T) {
	res, err := Sweep("AlexNet", Designs(), []int{4}, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestEDP(res)
	if err != nil {
		t.Fatal(err)
	}
	if best.Design != OO {
		t.Errorf("best design = %v, want OO", best.Design)
	}
	ranked := RankByEDP(res)
	for i := 1; i < len(ranked); i++ {
		if ranked[i].EDP < ranked[i-1].EDP {
			t.Fatal("rank not sorted")
		}
	}
	if ranked[0].EDP != best.EDP {
		t.Error("rank head must equal BestEDP")
	}
	// RankByEDP must not mutate its input.
	if res[0].Design != EE {
		t.Error("input slice mutated")
	}
	if _, err := BestEDP(nil); err == nil {
		t.Error("empty results should error")
	}
}
