package pixel

import (
	"context"
	"errors"
	"testing"

	"pixel/internal/arch"
	"pixel/internal/cnn"
)

func TestSweepGridComplete(t *testing.T) {
	res, err := Sweep("LeNet", Designs(), []int{2, 4}, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3*2*2 {
		t.Fatalf("sweep points = %d, want 12", len(res))
	}
	// Deterministic order: design-major.
	if res[0].Design != EE || res[len(res)-1].Design != OO {
		t.Error("sweep order wrong")
	}
	for _, r := range res {
		if r.EDP <= 0 {
			t.Errorf("point %+v has non-positive EDP", r)
		}
	}
}

// TestSweepMatchesSerialGolden locks the engine-backed Sweep to the
// seed's serial triple loop: same deterministic (design, lanes, bits)
// order, bit-identical values.
func TestSweepMatchesSerialGolden(t *testing.T) {
	designs := Designs()
	lanesAxis := []int{2, 4, 8}
	bitsAxis := []int{4, 8, 16}

	// The seed implementation, verbatim: resolve, configure and price
	// each point from scratch, serially, through internal/arch.
	net, err := cnn.ByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	var want []Result
	for _, d := range designs {
		ad, err := d.arch()
		if err != nil {
			t.Fatal(err)
		}
		for _, lanes := range lanesAxis {
			for _, bits := range bitsAxis {
				cfg, err := arch.NewConfig(ad, lanes, bits)
				if err != nil {
					t.Fatal(err)
				}
				c, err := arch.CostNetwork(net, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, resultFromCost("AlexNet", Point{d, lanes, bits}, c))
			}
		}
	}

	for _, workers := range []int{1, 4} {
		got, err := SweepContext(context.Background(), "AlexNet",
			Grid(designs, lanesAxis, bitsAxis), &SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			g, w := got[i], want[i]
			if g.Design != w.Design || g.Lanes != w.Lanes || g.Bits != w.Bits {
				t.Fatalf("workers=%d order drift at %d: got %v/%d/%d want %v/%d/%d",
					workers, i, g.Design, g.Lanes, g.Bits, w.Design, w.Lanes, w.Bits)
			}
			if g.EnergyJ != w.EnergyJ || g.LatencyS != w.LatencyS || g.EDP != w.EDP {
				t.Errorf("workers=%d point %d: values drifted from serial", workers, i)
			}
			for k, v := range w.Breakdown {
				if g.Breakdown[k] != v {
					t.Errorf("workers=%d point %d: breakdown[%q] drifted", workers, i, k)
				}
			}
		}
	}
}

// TestSweepSecondRunIsCached proves an identical repeat sweep performs
// zero CostNetwork calls, via the engine's counter hook.
func TestSweepSecondRunIsCached(t *testing.T) {
	if _, err := Sweep("GoogLeNet", Designs(), []int{2, 4}, []int{4, 8}); err != nil {
		t.Fatal(err)
	}
	before := defaultEngine.CostCalls()
	if _, err := Sweep("GoogLeNet", Designs(), []int{2, 4}, []int{4, 8}); err != nil {
		t.Fatal(err)
	}
	if calls := defaultEngine.CostCalls() - before; calls != 0 {
		t.Errorf("warm sweep performed %d CostNetwork calls, want 0", calls)
	}
}

func TestSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SweepContext(ctx, "LeNet", Grid(Designs(), []int{2, 4}, []int{4, 8}), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Cancelling mid-sweep from the progress callback returns promptly
	// with the context's error too.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	_, err = SweepContext(ctx2, "LeNet", Grid(Designs(), []int{2, 4, 8}, []int{1, 2, 3}),
		&SweepOptions{Workers: 1, Progress: func(done, total int) {
			if done == 1 {
				cancel2()
			}
		}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sweep cancel: err = %v, want context.Canceled", err)
	}
}

func TestSweepNetworksFanOut(t *testing.T) {
	points := Grid(Designs(), []int{4}, []int{8, 16})
	byNet, err := SweepNetworks(context.Background(),
		[]string{"LeNet", "AlexNet"}, points, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(byNet) != 2 {
		t.Fatalf("networks = %d, want 2", len(byNet))
	}
	for _, name := range []string{"LeNet", "AlexNet"} {
		results := byNet[name]
		if len(results) != len(points) {
			t.Fatalf("%s: %d results, want %d", name, len(results), len(points))
		}
		// Each network's slice must match its single-network sweep.
		single, err := SweepContext(context.Background(), name, points, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single {
			if results[i].EDP != single[i].EDP || results[i].Network != name {
				t.Errorf("%s point %d drifted from single-network sweep", name, i)
			}
		}
	}
	if _, err := SweepNetworks(context.Background(), []string{"NopeNet"}, points, nil); !errors.Is(err, ErrUnknownNetwork) {
		t.Errorf("unknown network: err = %v, want ErrUnknownNetwork", err)
	}
	if _, err := SweepNetworks(context.Background(), nil, points, nil); err == nil {
		t.Error("empty network list should error")
	}
}

func TestSweepProgress(t *testing.T) {
	var last, total int
	points := Grid(Designs(), []int{2}, []int{4, 8})
	_, err := SweepContext(context.Background(), "LeNet", points,
		&SweepOptions{Progress: func(d, tot int) { last, total = d, tot }})
	if err != nil {
		t.Fatal(err)
	}
	if last != len(points) || total != len(points) {
		t.Errorf("progress finished at %d/%d, want %d/%d", last, total, len(points), len(points))
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep("LeNet", nil, []int{4}, []int{8}); err == nil {
		t.Error("empty designs should error")
	}
	if _, err := Sweep("NopeNet", Designs(), []int{4}, []int{8}); !errors.Is(err, ErrUnknownNetwork) {
		t.Error("unknown network should surface ErrUnknownNetwork")
	}
	if _, err := Sweep("LeNet", Designs(), []int{0}, []int{8}); err == nil {
		t.Error("invalid lanes should error")
	}
	if _, err := Sweep("LeNet", []Design{Design(9)}, []int{4}, []int{8}); !errors.Is(err, ErrUnknownDesign) {
		t.Error("unknown design should surface ErrUnknownDesign")
	}
}

func TestBestEDPAndRank(t *testing.T) {
	res, err := Sweep("AlexNet", Designs(), []int{4}, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestEDP(res)
	if err != nil {
		t.Fatal(err)
	}
	if best.Design != OO {
		t.Errorf("best design = %v, want OO", best.Design)
	}
	ranked := RankByEDP(res)
	for i := 1; i < len(ranked); i++ {
		if ranked[i].EDP < ranked[i-1].EDP {
			t.Fatal("rank not sorted")
		}
	}
	if ranked[0].EDP != best.EDP {
		t.Error("rank head must equal BestEDP")
	}
	// RankByEDP must not mutate its input.
	if res[0].Design != EE {
		t.Error("input slice mutated")
	}
	if _, err := BestEDP(nil); err == nil {
		t.Error("empty results should error")
	}
}
