package pixel

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"pixel/internal/montecarlo"
	"pixel/internal/qnn"
	"pixel/internal/tensor"
)

// TestInferMatchesSequentialReference pins the facade to the oracle: a
// batched Infer equals per-image sequential qnn.Run on the reference
// dotter, image for image, at several worker counts.
func TestInferMatchesSequentialReference(t *testing.T) {
	net, err := montecarlo.BuildNetwork("tiny")
	if err != nil {
		t.Fatal(err)
	}
	shape, err := InferNetworkShape("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if shape.H != net.Input.H || shape.W != net.Input.W || shape.C != net.Input.C {
		t.Fatalf("shape %+v != input %dx%dx%d", shape, net.Input.H, net.Input.W, net.Input.C)
	}

	rng := rand.New(rand.NewSource(31))
	const batch = 5
	images := make([][]int64, batch)
	for b := range images {
		img := make([]int64, shape.H*shape.W*shape.C)
		for i := range img {
			img[i] = rng.Int63n(shape.MaxValue + 1)
		}
		images[b] = img
	}

	for _, workers := range []int{1, 0} {
		got, err := InferContext(context.Background(), InferSpec{
			Network: "tiny", Images: images, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != batch {
			t.Fatalf("got %d results, want %d", len(got), batch)
		}
		for b, img := range images {
			in := tensor.New(shape.H, shape.W, shape.C)
			copy(in.Data, img)
			want, err := net.Model.Run(in, qnn.ReferenceDotter{})
			if err != nil {
				t.Fatal(err)
			}
			if len(got[b].Outputs) != want.Len() {
				t.Fatalf("image %d: %d outputs, want %d", b, len(got[b].Outputs), want.Len())
			}
			for i, v := range got[b].Outputs {
				if v != want.Data[i] {
					t.Fatalf("workers %d image %d output %d = %d, want %d", workers, b, i, v, want.Data[i])
				}
			}
			if got[b].ArgMax != tensor.ArgMax(want) {
				t.Fatalf("image %d argmax %d, want %d", b, got[b].ArgMax, tensor.ArgMax(want))
			}
		}
	}
}

// TestInferSpecErrors covers the facade validation sentinels.
func TestInferSpecErrors(t *testing.T) {
	shape, err := InferNetworkShape("tiny")
	if err != nil {
		t.Fatal(err)
	}
	good := make([]int64, shape.H*shape.W*shape.C)

	if _, err := Infer(InferSpec{Network: "nope", Images: [][]int64{good}}); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("unknown network: %v", err)
	}
	if _, err := InferNetworkShape("nope"); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("unknown network shape: %v", err)
	}
	if _, err := Infer(InferSpec{Network: "tiny"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := Infer(InferSpec{Network: "tiny", Images: [][]int64{good[:3]}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("short image: %v", err)
	}
	bad := make([]int64, len(good))
	bad[2] = shape.MaxValue + 1
	if _, err := Infer(InferSpec{Network: "tiny", Images: [][]int64{bad}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("over-range value: %v", err)
	}
	bad[2] = -1
	if _, err := Infer(InferSpec{Network: "tiny", Images: [][]int64{bad}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("negative value: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := InferContext(ctx, InferSpec{Network: "tiny", Images: [][]int64{good}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: %v", err)
	}
}
