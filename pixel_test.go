package pixel

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestDesignsAndStrings(t *testing.T) {
	if len(Designs()) != 3 {
		t.Fatal("expected three designs")
	}
	names := []string{"EE", "OE", "OO"}
	for i, d := range Designs() {
		if d.String() != names[i] {
			t.Errorf("design %d string = %q, want %q", i, d, names[i])
		}
	}
}

func TestNetworksList(t *testing.T) {
	nets := Networks()
	if len(nets) != 6 {
		t.Fatalf("networks = %v", nets)
	}
	want := map[string]bool{"VGG16": true, "AlexNet": true, "ZFNet": true,
		"ResNet-34": true, "LeNet": true, "GoogLeNet": true}
	for _, n := range nets {
		if !want[n] {
			t.Errorf("unexpected network %q", n)
		}
	}
}

func TestEvaluate(t *testing.T) {
	r, err := Evaluate("LeNet", OO, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyJ <= 0 || r.LatencyS <= 0 || r.EDP <= 0 {
		t.Errorf("degenerate result %+v", r)
	}
	if len(r.PerLayer) != 5 {
		t.Errorf("LeNet has 5 layers, got %d", len(r.PerLayer))
	}
	sum := 0.0
	for _, v := range r.Breakdown {
		sum += v
	}
	if diff := sum - r.EnergyJ; diff > 1e-9*r.EnergyJ || diff < -1e-9*r.EnergyJ {
		t.Error("breakdown must sum to the total energy")
	}
	if _, err := Evaluate("NopeNet", EE, 4, 8); !errors.Is(err, ErrUnknownNetwork) {
		t.Errorf("unknown network: err = %v, want ErrUnknownNetwork", err)
	}
	if _, err := Evaluate("LeNet", EE, 0, 8); !errors.Is(err, ErrBadPrecision) {
		t.Errorf("invalid config: err = %v, want ErrBadPrecision", err)
	}
}

func TestAreaOrderingPublic(t *testing.T) {
	ee, err := Area(EE, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	oe, _ := Area(OE, 4, 4)
	oo, _ := Area(OO, 4, 4)
	if !(ee < oe && oe < oo) {
		t.Errorf("area ordering violated: %g %g %g", ee, oe, oo)
	}
	if _, err := Area(EE, 0, 4); !errors.Is(err, ErrBadPrecision) {
		t.Errorf("invalid config: err = %v, want ErrBadPrecision", err)
	}
}

func TestExperimentsRunThroughPublicAPI(t *testing.T) {
	ids := Experiments()
	if len(ids) != 9 {
		t.Fatalf("experiments = %v", ids)
	}
	var sb strings.Builder
	if err := RunExperiment("table1", &sb, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Conv1") {
		t.Error("table1 output missing Conv1")
	}
	sb.Reset()
	if err := RunExperiment("fig10", &sb, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "#") {
		t.Error("CSV output should start with the title comment")
	}
	if err := RunExperiment("nope", &sb, false); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestMeasureHeadlinesPopulated(t *testing.T) {
	h := MeasureHeadlines()
	if h.OOEDPImprovement <= h.OEEDPImprovement {
		t.Error("OO must improve EDP more than OE")
	}
	if h.MulSaving < 0.9 {
		t.Errorf("mul saving = %v, want ~0.95", h.MulSaving)
	}
}

func TestMACAllDesignsAgree(t *testing.T) {
	macs := map[Design]*MAC{}
	for _, d := range Designs() {
		m, err := NewMAC(d, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if m.Design() != d {
			t.Errorf("Design() = %v, want %v", m.Design(), d)
		}
		macs[d] = m
	}
	f := func(a, b uint8) bool {
		want := uint64(a) * uint64(b)
		for _, m := range macs {
			got, err := m.Multiply(uint64(a), uint64(b))
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMACDotProductAndMetering(t *testing.T) {
	m, err := NewMAC(OO, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.DotProduct([]uint64{2, 4, 6, 9}, []uint64{6, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*6+4*1+6*2+9*3 {
		t.Errorf("dot = %d", got)
	}
	e := m.EnergyJ()
	if e["mul"] <= 0 || e["add"] <= 0 || e["laser"] <= 0 {
		t.Errorf("optical MAC should meter energy, got %v", e)
	}
	if m.LatencyS() <= 0 {
		t.Error("latency should be metered")
	}
	// EE adapter meters nothing (documented).
	ee, _ := NewMAC(EE, 8, 4)
	if _, err := ee.DotProduct([]uint64{1, 2}, []uint64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if len(ee.EnergyJ()) != 0 {
		t.Error("EE MAC meters no energy by design")
	}
}

func TestMACSignedDotProductAllDesigns(t *testing.T) {
	a := []int64{-3, 2, -15, 7}
	b := []int64{7, -8, 1, -1}
	want := int64(-3*7 + 2*(-8) + -15 + -7)
	for _, d := range Designs() {
		m, err := NewMAC(d, 6, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.SignedDotProduct(a, b)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if got != want {
			t.Errorf("%v signed dot = %d, want %d", d, got, want)
		}
	}
}

func TestNewMACValidation(t *testing.T) {
	if _, err := NewMAC(EE, 0, 1); !errors.Is(err, ErrBadPrecision) {
		t.Errorf("bits 0: err = %v, want ErrBadPrecision", err)
	}
	if _, err := NewMAC(EE, 17, 1); !errors.Is(err, ErrBadPrecision) {
		t.Errorf("bits 17: err = %v, want ErrBadPrecision", err)
	}
	if _, err := NewMAC(Design(9), 8, 1); !errors.Is(err, ErrUnknownDesign) {
		t.Errorf("unknown design: err = %v, want ErrUnknownDesign", err)
	}
}
