package pixel

import (
	"context"
	"fmt"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	sweepeng "pixel/internal/sweep"
)

// EngineOptions configures an Engine. The zero value is the default the
// package-level API runs on.
type EngineOptions struct {
	// Workers is the sweep worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// CacheSize bounds the result LRU (entries); <= 0 means the engine
	// default (sweep.DefaultCacheSize, 4096).
	CacheSize int
}

// Engine is an independent evaluation engine: a worker pool with
// memoized network resolution, configuration construction and a bounded
// LRU of whole evaluation results. The package-level Evaluate/Sweep
// functions all run on a shared default Engine; construct your own when
// you need an isolated cache or a tuned cache size — a long-running
// server, a test that must not see another sweep's warm cache. An
// Engine is safe for concurrent use.
type Engine struct {
	eng *sweepeng.Engine
}

// NewEngine returns an engine with the given options.
func NewEngine(opts EngineOptions) *Engine {
	return &Engine{eng: sweepeng.New(sweepeng.Options{
		Workers:   opts.Workers,
		CacheSize: opts.CacheSize,
	})}
}

// CostCalls returns how many times the engine has actually priced a
// network (cache hits do not count) — the hook cache tests and serving
// metrics use to prove warm paths do no pricing work.
func (e *Engine) CostCalls() int64 { return e.eng.CostCalls() }

// CacheHits returns how many evaluations the result LRU has absorbed.
func (e *Engine) CacheHits() int64 { return e.eng.CacheHits() }

// resolveNetwork looks a network up through the engine's memo, wrapping
// misses with ErrUnknownNetwork.
func (e *Engine) resolveNetwork(name string) (cnn.Network, error) {
	net, err := e.eng.Network(name)
	if err != nil {
		return cnn.Network{}, fmt.Errorf("%w: %v", ErrUnknownNetwork, err)
	}
	return net, nil
}

// config builds the point's validated arch configuration through the
// engine's memo, wrapping range failures with ErrBadPrecision.
func (e *Engine) config(p Point) (arch.Config, error) {
	ad, err := p.Design.arch()
	if err != nil {
		return arch.Config{}, err
	}
	cfg, err := e.eng.Config(sweepeng.Point{Design: ad, Lanes: p.Lanes, Bits: p.Bits})
	if err != nil {
		return arch.Config{}, fmt.Errorf("%w: %v", ErrBadPrecision, err)
	}
	return cfg, nil
}

// EvaluateContext prices a full inference of the named network at the
// point, consulting the result LRU first. It returns promptly with the
// context's error once ctx is done.
func (e *Engine) EvaluateContext(ctx context.Context, network string, p Point) (Result, error) {
	if _, err := e.resolveNetwork(network); err != nil {
		return Result{}, err
	}
	if _, err := e.config(p); err != nil {
		return Result{}, err
	}
	job, err := p.engineJob(network)
	if err != nil {
		return Result{}, err
	}
	c, err := e.eng.Evaluate(ctx, job)
	if err != nil {
		return Result{}, err
	}
	return resultFromCost(network, p, c), nil
}

// SweepContext evaluates a network over explicit design points (see
// Grid) through the worker pool. Results come back in point order
// regardless of worker scheduling. On cancellation it returns promptly
// with the context's error; opts may be nil.
func (e *Engine) SweepContext(ctx context.Context, network string, points []Point, opts *SweepOptions) ([]Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("pixel: sweep axes must be non-empty")
	}
	if _, err := e.resolveNetwork(network); err != nil {
		return nil, err
	}
	jobs := make([]sweepeng.Job, len(points))
	for i, p := range points {
		job, err := p.engineJob(network)
		if err != nil {
			return nil, fmt.Errorf("pixel: sweep point %s: %w", p, err)
		}
		// Validate up front (memoized) so precision failures surface
		// the sentinel instead of a raw engine error mid-run.
		if _, err := e.config(p); err != nil {
			return nil, fmt.Errorf("pixel: sweep point %s: %w", p, err)
		}
		jobs[i] = job
	}
	ro := opts.runOptions()
	if opts != nil && opts.Cell != nil {
		cell := opts.Cell
		ro.OnJob = func(i int, c arch.NetworkCost) {
			cell(network, i, resultFromCost(network, points[i], c))
		}
	}
	costs, err := e.eng.Run(ctx, jobs, ro)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(points))
	for i, p := range points {
		out[i] = resultFromCost(network, p, costs[i])
	}
	return out, nil
}

// SweepNetworks fans one grid of design points out across several
// networks in a single worker-pool run. The result map holds one
// point-ordered slice per network; the total grid is evaluated
// concurrently with shared-work memoization across networks. For a
// resumable run, build a SweepJob instead — this is the one-shot form
// of the same machinery.
func (e *Engine) SweepNetworks(ctx context.Context, networks []string, points []Point, opts *SweepOptions) (map[string][]Result, error) {
	job, err := e.NewSweepJob(networks, points)
	if err != nil {
		return nil, err
	}
	return job.Run(ctx, opts)
}
