package api

import (
	"context"
	"net/http"
)

// FleetWorkerRequest is the body of POST and DELETE
// /v1/fleet/workers: the worker pixeld address to admit or retire
// ("host:port" or a full base URL, exactly as the coordinator's
// -coordinator list spells them). The address rides in the body, not
// the path — worker addresses are URLs.
type FleetWorkerRequest struct {
	Addr string `json:"addr"`
}

// FleetWorker is one fleet member in GET /v1/fleet/workers: its
// configured address, whether the health prober currently trusts it,
// and its circuit-breaker state ("closed", "open" or "half-open").
type FleetWorker struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker"`
}

// FleetWorkersResponse is the roster returned by GET /v1/fleet/workers
// and echoed (updated) by the POST and DELETE membership calls.
type FleetWorkersResponse struct {
	Workers []FleetWorker `json:"workers"`
}

// FleetWorkers lists the coordinator's current members with health and
// breaker state. Coordinator-only: a worker pixeld has no fleet.
func (c *Client) FleetWorkers(ctx context.Context) (FleetWorkersResponse, error) {
	var out FleetWorkersResponse
	err := c.do(ctx, http.MethodGet, "/v1/fleet/workers", nil, &out)
	return out, err
}

// AddFleetWorker admits a worker into the coordinator's ring at
// runtime and returns the updated roster.
func (c *Client) AddFleetWorker(ctx context.Context, addr string) (FleetWorkersResponse, error) {
	var out FleetWorkersResponse
	err := c.do(ctx, http.MethodPost, "/v1/fleet/workers", FleetWorkerRequest{Addr: addr}, &out)
	return out, err
}

// RemoveFleetWorker retires a worker from the coordinator's ring
// (in-flight shards finish; new shards route to its successors) and
// returns the updated roster.
func (c *Client) RemoveFleetWorker(ctx context.Context, addr string) (FleetWorkersResponse, error) {
	var out FleetWorkersResponse
	err := c.do(ctx, http.MethodDelete, "/v1/fleet/workers", FleetWorkerRequest{Addr: addr}, &out)
	return out, err
}
