package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the wire-shape golden fixture")

// goldenPath is the pinned JSON rendering of every wire type.
const goldenPath = "testdata/wire.golden.json"

// renderGolden marshals every wire sample under its stable name with
// deterministic ordering.
func renderGolden(t *testing.T) []byte {
	t.Helper()
	samples := wireSamples()
	names := make([]string, 0, len(samples))
	for n := range samples {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make(map[string]json.RawMessage, len(samples))
	for _, n := range names {
		buf, err := json.Marshal(samples[n])
		if err != nil {
			t.Fatalf("marshal %s: %v", n, err)
		}
		ordered[n] = buf
	}
	out, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestGoldenWireShapes is the apidiff guard: the JSON shape of every
// /v1 wire type is pinned to testdata/wire.golden.json, so renaming,
// retagging or removing a field fails this test until the fixture is
// deliberately regenerated with -update-golden (an intentional,
// reviewable wire change).
func TestGoldenWireShapes(t *testing.T) {
	got := renderGolden(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run 'go test ./api -run Golden -update-golden' after an intentional wire change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire shapes changed.\n got: %s\nwant: %s\nIf intentional, regenerate with 'go test ./api -run Golden -update-golden' and review the diff.", got, want)
	}
}
