package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTPError is a non-2xx pixeld response decoded from the uniform
// error envelope.
type HTTPError struct {
	// Status is the HTTP status code.
	Status int
	// Code and Message are the envelope's machine and human halves.
	Code    string
	Message string
	// RetryAfterS is the server's retry hint in seconds (429 only).
	RetryAfterS int
}

// Error implements error.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("pixeld: %s (%d): %s", e.Code, e.Status, e.Message)
}

// Temporary reports whether the response is worth retrying: the server
// shed the request (429) or is draining/unavailable (503). Everything
// else — bad requests, unknown networks, internal errors — is not
// fixed by waiting.
func (e *HTTPError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// RetryPolicy configures WithRetry. Every pixeld /v1 route is a pure
// function of its request, so retrying is always safe; the policy only
// decides how patiently.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, the first included;
	// <= 0 means DefaultRetryAttempts.
	MaxAttempts int
	// BaseDelay is the first backoff sleep; it doubles per retry.
	// <= 0 means DefaultRetryBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <= 0 means DefaultRetryMaxDelay. A
	// server Retry-After hint above the cap is honored anyway — the
	// server knows its own drain better than the client's policy does.
	MaxDelay time.Duration
}

// Retry policy defaults.
const (
	DefaultRetryAttempts  = 4
	DefaultRetryBaseDelay = 50 * time.Millisecond
	DefaultRetryMaxDelay  = 2 * time.Second
)

// ClientOption customizes a Client at construction.
type ClientOption func(*Client)

// WithRetry makes every request method retry transport failures and
// retryable statuses (429 with its Retry-After hint honored, and 503)
// with exponential backoff, bounded by the policy's attempt budget and
// the request context. Non-retryable statuses (400, 404, 500, ...)
// fail immediately. JobEvents streams have their own reconnect loop
// (see EventStream.Next) and ignore this policy.
func WithRetry(p RetryPolicy) ClientOption {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMaxDelay
	}
	return func(c *Client) { c.retry = &p }
}

// Client is a thin pixeld client speaking the /v1 wire types. The zero
// value is not usable; construct with NewClient. Methods return
// *HTTPError for non-2xx responses.
type Client struct {
	base  string
	hc    *http.Client
	retry *RetryPolicy
}

// NewClient returns a client for the pixeld instance at baseURL (e.g.
// "http://localhost:8080"). hc may be nil for http.DefaultClient.
func NewClient(baseURL string, hc *http.Client, opts ...ClientOption) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// do issues one request (retried under the client's policy, when set)
// and decodes the response into out (skipped when out is nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if c.retry == nil {
		return c.doOnce(ctx, method, path, in, out)
	}
	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, c.retryDelay(attempt, lastErr)); err != nil {
				return lastErr
			}
		}
		lastErr = c.doOnce(ctx, method, path, in, out)
		if lastErr == nil || !retryable(ctx, lastErr) {
			return lastErr
		}
	}
	return lastErr
}

// retryDelay is the sleep before try `attempt` (1-based over the
// retries): exponential from BaseDelay capped at MaxDelay, overridden
// upward by the server's Retry-After hint.
func (c *Client) retryDelay(attempt int, lastErr error) time.Duration {
	d := c.retry.BaseDelay << (attempt - 1)
	if d > c.retry.MaxDelay || d <= 0 {
		d = c.retry.MaxDelay
	}
	var he *HTTPError
	if errors.As(lastErr, &he) && he.RetryAfterS > 0 {
		if hint := time.Duration(he.RetryAfterS) * time.Second; hint > d {
			d = hint
		}
	}
	return d
}

// retryable classifies an attempt failure: transport errors and
// Temporary HTTP statuses retry; context ends and request-shape
// failures do not.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Temporary()
	}
	// Encode/decode failures are deterministic; everything else from
	// http.Client.Do is a transport-level failure worth retrying.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var decodeErr *clientError
	return !errors.As(err, &decodeErr)
}

// clientError marks deterministic client-side failures (encode/decode)
// that must not be retried.
type clientError struct{ err error }

func (e *clientError) Error() string { return e.err.Error() }
func (e *clientError) Unwrap() error { return e.err }

// sleepCtx blocks for d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doOnce issues one request and decodes the response into out (skipped
// when out is nil). Non-2xx responses decode the error envelope.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return &clientError{fmt.Errorf("api: encode request: %w", err)}
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return &clientError{fmt.Errorf("api: build request: %w", err)}
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		he := &HTTPError{Status: resp.StatusCode}
		var env ErrorEnvelope
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&env); err == nil {
			he.Code = env.Error.Code
			he.Message = env.Error.Message
			he.RetryAfterS = env.Error.RetryAfterS
		} else {
			he.Code = "unknown"
			he.Message = resp.Status
		}
		return he
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &clientError{fmt.Errorf("api: decode response: %w", err)}
	}
	return nil
}

// Evaluate prices one design point of one network.
func (c *Client) Evaluate(ctx context.Context, req EvaluateRequest) (Result, error) {
	var out Result
	err := c.do(ctx, http.MethodPost, "/v1/evaluate", req, &out)
	return out, err
}

// Sweep evaluates a design-point grid across one or more networks.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepResponse, error) {
	var out SweepResponse
	err := c.do(ctx, http.MethodPost, "/v1/sweep", req, &out)
	return out, err
}

// Map schedules a network onto a tile grid.
func (c *Client) Map(ctx context.Context, req MapRequest) (MapResponse, error) {
	var out MapResponse
	err := c.do(ctx, http.MethodPost, "/v1/map", req, &out)
	return out, err
}

// Robustness runs a Monte-Carlo variation-to-yield sweep.
func (c *Client) Robustness(ctx context.Context, req RobustnessRequest) (RobustnessResponse, error) {
	var out RobustnessResponse
	err := c.do(ctx, http.MethodPost, "/v1/robustness", req, &out)
	return out, err
}

// Infer runs a batch of images through a demo network's quantized
// pipeline on the batched bit-serial engine.
func (c *Client) Infer(ctx context.Context, req InferRequest) (InferResponse, error) {
	var out InferResponse
	err := c.do(ctx, http.MethodPost, "/v1/infer", req, &out)
	return out, err
}

// Networks lists the cost-model CNN zoo.
func (c *Client) Networks(ctx context.Context) ([]string, error) {
	var out NetworksResponse
	err := c.do(ctx, http.MethodGet, "/v1/networks", nil, &out)
	return out.Networks, err
}

// Designs lists the MAC designs.
func (c *Client) Designs(ctx context.Context) ([]string, error) {
	var out DesignsResponse
	err := c.do(ctx, http.MethodGet, "/v1/designs", nil, &out)
	return out.Designs, err
}

// Healthz checks liveness: nil only for a 2xx probe. A draining or
// unreachable server is an error, which is what a load balancer wants.
func (c *Client) Healthz(ctx context.Context) error {
	var out HealthResponse
	return c.do(ctx, http.MethodGet, "/healthz", nil, &out)
}

// Health fetches /healthz and reports the server's own status word
// even on non-2xx probes (a draining pixeld answers 503 with status
// "draining"), so health-aware routers can tell "shutting down" from
// "gone". It never retries, whatever the client's policy — a prober
// wants the answer now.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return HealthResponse{}, fmt.Errorf("api: build request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return HealthResponse{}, err
	}
	defer resp.Body.Close()
	var out HealthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return HealthResponse{}, fmt.Errorf("api: decode health response: %w", err)
	}
	return out, nil
}
