package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// HTTPError is a non-2xx pixeld response decoded from the uniform
// error envelope.
type HTTPError struct {
	// Status is the HTTP status code.
	Status int
	// Code and Message are the envelope's machine and human halves.
	Code    string
	Message string
	// RetryAfterS is the server's retry hint in seconds (429 only).
	RetryAfterS int
}

// Error implements error.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("pixeld: %s (%d): %s", e.Code, e.Status, e.Message)
}

// Client is a thin pixeld client speaking the /v1 wire types. The zero
// value is not usable; construct with NewClient. Methods return
// *HTTPError for non-2xx responses.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the pixeld instance at baseURL (e.g.
// "http://localhost:8080"). hc may be nil for http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// do issues one request and decodes the response into out (skipped
// when out is nil). Non-2xx responses decode the error envelope.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("api: encode request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("api: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		he := &HTTPError{Status: resp.StatusCode}
		var env ErrorEnvelope
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&env); err == nil {
			he.Code = env.Error.Code
			he.Message = env.Error.Message
			he.RetryAfterS = env.Error.RetryAfterS
		} else {
			he.Code = "unknown"
			he.Message = resp.Status
		}
		return he
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decode response: %w", err)
	}
	return nil
}

// Evaluate prices one design point of one network.
func (c *Client) Evaluate(ctx context.Context, req EvaluateRequest) (Result, error) {
	var out Result
	err := c.do(ctx, http.MethodPost, "/v1/evaluate", req, &out)
	return out, err
}

// Sweep evaluates a design-point grid across one or more networks.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepResponse, error) {
	var out SweepResponse
	err := c.do(ctx, http.MethodPost, "/v1/sweep", req, &out)
	return out, err
}

// Map schedules a network onto a tile grid.
func (c *Client) Map(ctx context.Context, req MapRequest) (MapResponse, error) {
	var out MapResponse
	err := c.do(ctx, http.MethodPost, "/v1/map", req, &out)
	return out, err
}

// Robustness runs a Monte-Carlo variation-to-yield sweep.
func (c *Client) Robustness(ctx context.Context, req RobustnessRequest) (RobustnessResponse, error) {
	var out RobustnessResponse
	err := c.do(ctx, http.MethodPost, "/v1/robustness", req, &out)
	return out, err
}

// Infer runs a batch of images through a demo network's quantized
// pipeline on the batched bit-serial engine.
func (c *Client) Infer(ctx context.Context, req InferRequest) (InferResponse, error) {
	var out InferResponse
	err := c.do(ctx, http.MethodPost, "/v1/infer", req, &out)
	return out, err
}

// Networks lists the cost-model CNN zoo.
func (c *Client) Networks(ctx context.Context) ([]string, error) {
	var out NetworksResponse
	err := c.do(ctx, http.MethodGet, "/v1/networks", nil, &out)
	return out.Networks, err
}

// Designs lists the MAC designs.
func (c *Client) Designs(ctx context.Context) ([]string, error) {
	var out DesignsResponse
	err := c.do(ctx, http.MethodGet, "/v1/designs", nil, &out)
	return out.Designs, err
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	var out HealthResponse
	return c.do(ctx, http.MethodGet, "/healthz", nil, &out)
}
