// Package api is pixeld's versioned wire surface: the request and
// response types of every /v1 route, the uniform error envelope, and a
// thin HTTP client speaking them. The server marshals exactly these
// types and nothing else, so a client importing this package can never
// drift from the wire format; TestGoldenWireShapes pins the JSON shape
// of every type so accidental field changes fail CI.
package api

import "pixel"

// Result is the wire form of pixel.Result — the cost of one full CNN
// inference under a design point. It is field-compatible with the
// pixelsweep -json output.
type Result struct {
	Network  string             `json:"network"`
	Design   string             `json:"design"`
	Lanes    int                `json:"lanes"`
	Bits     int                `json:"bits"`
	EnergyJ  float64            `json:"energy_j"`
	LatencyS float64            `json:"latency_s"`
	EDP      float64            `json:"edp_js"`
	Energy   map[string]float64 `json:"energy_breakdown_j"`
	PerLayer []LayerResult      `json:"per_layer,omitempty"`
}

// LayerResult is one layer's share of an inference cost.
type LayerResult struct {
	Name     string  `json:"name"`
	EnergyJ  float64 `json:"energy_j"`
	LatencyS float64 `json:"latency_s"`
}

// FromResult converts an engine result to its wire form; per-layer
// rows ride along only when perLayer is set (single-point responses —
// a sweep would multiply the payload by the layer count for data most
// clients aggregate anyway).
func FromResult(r pixel.Result, perLayer bool) Result {
	out := Result{
		Network:  r.Network,
		Design:   r.Design.String(),
		Lanes:    r.Lanes,
		Bits:     r.Bits,
		EnergyJ:  r.EnergyJ,
		LatencyS: r.LatencyS,
		EDP:      r.EDP,
		Energy:   r.Breakdown,
	}
	if perLayer {
		out.PerLayer = make([]LayerResult, len(r.PerLayer))
		for i, l := range r.PerLayer {
			out.PerLayer[i] = LayerResult{Name: l.Name, EnergyJ: l.EnergyJ, LatencyS: l.LatencyS}
		}
	}
	return out
}

// EvaluateRequest is the POST /v1/evaluate body: one design point of
// one network. The response is a Result.
type EvaluateRequest struct {
	Network string `json:"network"`
	Design  string `json:"design"`
	Lanes   int    `json:"lanes"`
	Bits    int    `json:"bits"`
}

// SweepRequest is the POST /v1/sweep body: the cross product of
// designs x lanes x bits evaluated for every listed network. An empty
// designs list means all three.
type SweepRequest struct {
	Networks []string `json:"networks"`
	Designs  []string `json:"designs"`
	Lanes    []int    `json:"lanes"`
	Bits     []int    `json:"bits"`
}

// SweepResponse is the POST /v1/sweep response: per-network result
// rows in point order, plus the grid size.
type SweepResponse struct {
	Points  int                 `json:"points"`
	Results map[string][]Result `json:"results"`
}

// MapRequest is the POST /v1/map body: schedule a network onto a
// rows x cols tile grid at a design point.
type MapRequest struct {
	Network         string `json:"network"`
	Design          string `json:"design"`
	Lanes           int    `json:"lanes"`
	Bits            int    `json:"bits"`
	Rows            int    `json:"rows"`
	Cols            int    `json:"cols"`
	PhotonicWeights bool   `json:"photonic_weights"`
}

// MapResponse is the POST /v1/map response: the schedule summary.
type MapResponse struct {
	Network     string  `json:"network"`
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	SequentialS float64 `json:"sequential_s"`
	PipelinedS  float64 `json:"pipelined_s"`
	PreloadJ    float64 `json:"preload_j"`
	Utilization float64 `json:"utilization"`
}

// ProtectionSpec selects a fault-mitigation scheme for a robustness
// sweep; it is pixel.ProtectionSpec, which is already wire-tagged.
type ProtectionSpec = pixel.ProtectionSpec

// RobustnessRequest is the POST /v1/robustness body. Workers is
// deliberately absent from the wire format: pool sizing is the
// server's resource decision, and the engine's report is bit-identical
// at any width anyway.
type RobustnessRequest struct {
	Network     string          `json:"network"`
	Design      string          `json:"design"`
	Sigmas      []float64       `json:"sigmas"`
	Trials      int             `json:"trials"`
	Seed        int64           `json:"seed"`
	ErrorBudget float64         `json:"error_budget"`
	Protection  *ProtectionSpec `json:"protection,omitempty"`
}

// RobustnessResponse is the POST /v1/robustness response; it is
// pixel.RobustnessReport, which is already wire-tagged.
type RobustnessResponse = pixel.RobustnessReport

// InferRequest is the POST /v1/infer body: a batch of images for one
// named demo network. Each image is the H*W*C activation values in HWC
// order (see GET /v1/networks and pixel.InferNetworkShape for
// geometry). The server may micro-batch several requests into one
// word-parallel engine pass; results are bit-identical either way.
type InferRequest struct {
	Network string    `json:"network"`
	Images  [][]int64 `json:"images"`
}

// InferResult is one image's inference output.
type InferResult struct {
	// Outputs is the final layer's raw activation vector.
	Outputs []int64 `json:"outputs"`
	// ArgMax is the predicted class (index of the largest output,
	// first on ties).
	ArgMax int `json:"argmax"`
}

// InferResponse is the POST /v1/infer response: one result per image,
// in request order. Batched reports how many images the serving batch
// that carried this request executed together (observability for the
// micro-batcher; at least len(results)).
type InferResponse struct {
	Results []InferResult `json:"results"`
	Batched int           `json:"batched"`
}

// NetworksResponse is the GET /v1/networks response.
type NetworksResponse struct {
	Networks []string `json:"networks"`
}

// DesignsResponse is the GET /v1/designs response.
type DesignsResponse struct {
	Designs []string `json:"designs"`
}

// HealthResponse is the GET /healthz response.
type HealthResponse struct {
	Status string `json:"status"`
}

// Error is the uniform error detail every non-2xx pixeld response
// carries, wrapped in ErrorEnvelope. Code is a stable machine-readable
// name (see the server's sentinel table); Message is human-readable
// and may change between versions.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterS, on code "overloaded" (429), is the server's hint in
	// seconds before retrying; it mirrors the Retry-After header.
	RetryAfterS int `json:"retry_after,omitempty"`
}

// ErrorEnvelope is the JSON body of every non-2xx response:
// {"error":{"code","message","retry_after?"}}.
type ErrorEnvelope struct {
	Error Error `json:"error"`
}
