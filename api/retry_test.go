package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedServer answers each request with the next status in script;
// once the script is exhausted it answers 200 with an EvaluateResponse
// body. 429 responses carry a Retry-After of 1s in the envelope.
func scriptedServer(t *testing.T, script []int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= len(script) {
			status := script[n-1]
			w.Header().Set("Content-Type", "application/json")
			if status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(status)
				w.Write([]byte(`{"error":{"code":"overloaded","message":"shed","retry_after":1}}`))
				return
			}
			w.WriteHeader(status)
			w.Write([]byte(`{"error":{"code":"unavailable","message":"draining"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"network":"AlexNet","design":"OO","lanes":4,"bits":16,"edp_js":1}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestRetrySucceedsAfterFlakes(t *testing.T) {
	// 429 then 503 then success: the retrying client must absorb both.
	srv, calls := scriptedServer(t, []int{http.StatusTooManyRequests, http.StatusServiceUnavailable})
	c := NewClient(srv.URL, srv.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	}))
	// The 429 carries Retry-After: 1s, which would stall the test; the
	// hint is a floor, so prove separately (below) that it is honored,
	// and here use a script whose only hinted response is the first.
	start := time.Now()
	res, err := c.Evaluate(context.Background(), EvaluateRequest{Network: "AlexNet", Design: "OO", Lanes: 4, Bits: 16})
	if err != nil {
		t.Fatalf("Evaluate after flakes: %v", err)
	}
	if res.EDP != 1 {
		t.Fatalf("EDP = %v, want 1", res.EDP)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	// The 429's Retry-After: 1s must have been honored as a floor over
	// the millisecond policy delays.
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("elapsed %v, want >= 1s (Retry-After floor ignored)", elapsed)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	// Permanent 503s: the client gives up after MaxAttempts and
	// surfaces the last HTTPError.
	srv, calls := scriptedServer(t, []int{
		http.StatusServiceUnavailable, http.StatusServiceUnavailable,
		http.StatusServiceUnavailable, http.StatusServiceUnavailable,
	})
	c := NewClient(srv.URL, srv.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
	}))
	_, err := c.Evaluate(context.Background(), EvaluateRequest{Network: "AlexNet", Design: "OO", Lanes: 4, Bits: 16})
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 HTTPError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (MaxAttempts)", got)
	}
}

func TestRetryDoesNotRetryPermanentStatus(t *testing.T) {
	// A 404 is not fixed by waiting: exactly one attempt.
	srv, calls := scriptedServer(t, []int{http.StatusNotFound, http.StatusNotFound})
	c := NewClient(srv.URL, srv.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
	}))
	_, err := c.Evaluate(context.Background(), EvaluateRequest{Network: "nope", Design: "OO", Lanes: 4, Bits: 16})
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 HTTPError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 404)", got)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	// Cancelling mid-backoff ends the loop without burning the
	// remaining attempts; the last real error is returned, not the
	// context error, so callers still see what the server said.
	srv, calls := scriptedServer(t, []int{
		http.StatusServiceUnavailable, http.StatusServiceUnavailable,
		http.StatusServiceUnavailable, http.StatusServiceUnavailable,
	})
	c := NewClient(srv.URL, srv.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Hour, // backoff would stall forever without ctx
		MaxDelay:    time.Hour,
	}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Evaluate(ctx, EvaluateRequest{Network: "AlexNet", Design: "OO", Lanes: 4, Bits: 16})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt land
	cancel()
	select {
	case err := <-done:
		var he *HTTPError
		if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
			t.Fatalf("err = %v, want the last 503 HTTPError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop did not stop on context cancel")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (cancelled during backoff)", got)
	}
}

func TestRetryTransportError(t *testing.T) {
	// A connection-refused transport error retries too: point the
	// client at a server that is closed for the first attempts.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"networks":["a"]}`))
	}))
	url := srv.URL
	srv.Close() // now every dial fails
	c := NewClient(url, nil, WithRetry(RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
	}))
	start := time.Now()
	_, err := c.Networks(context.Background())
	if err == nil {
		t.Fatal("Networks against closed server: want error")
	}
	var he *HTTPError
	if errors.As(err, &he) {
		t.Fatalf("err = %v, want transport error, got HTTPError", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("transport retry took implausibly long")
	}
}

func TestHealthReportsDrainingStatus(t *testing.T) {
	// Health must return the server's status word even on a 503 — and
	// must not retry it, even on a retrying client.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"draining"}`))
	}))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
	}))
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "draining" {
		t.Fatalf("Status = %q, want draining", h.Status)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (Health never retries)", got)
	}

	// Healthz (the strict probe) must report the 503 as an error.
	hc := NewClient(srv.URL, srv.Client())
	if err := hc.Healthz(context.Background()); err == nil {
		t.Fatal("Healthz on draining server: want error")
	}
}
