package api

import (
	"encoding/json"
	"reflect"
	"testing"

	"pixel"
)

// wireSamples is one fully-populated instance of every wire type —
// every field set to a non-zero value so both the round-trip and the
// golden-shape tests exercise the full schema. Keys are stable names
// used in the golden fixture.
func wireSamples() map[string]any {
	return map[string]any{
		"evaluate_request": EvaluateRequest{Network: "lenet", Design: "OE", Lanes: 8, Bits: 4},
		"result": Result{
			Network: "lenet", Design: "OE", Lanes: 8, Bits: 4,
			EnergyJ: 0.25, LatencyS: 0.5, EDP: 0.125,
			Energy:   map[string]float64{"mul": 0.1, "laser": 0.15},
			PerLayer: []LayerResult{{Name: "conv1", EnergyJ: 0.1, LatencyS: 0.2}},
		},
		"sweep_request": SweepRequest{
			Networks: []string{"lenet", "vgg16"},
			Designs:  []string{"EE", "OO"},
			Lanes:    []int{4, 8},
			Bits:     []int{2, 4},
		},
		"sweep_response": SweepResponse{
			Points: 2,
			Results: map[string][]Result{
				"lenet": {{Network: "lenet", Design: "EE", Lanes: 4, Bits: 2, EnergyJ: 1, LatencyS: 2, EDP: 2}},
			},
		},
		"map_request": MapRequest{
			Network: "lenet", Design: "OO", Lanes: 8, Bits: 4,
			Rows: 2, Cols: 3, PhotonicWeights: true,
		},
		"map_response": MapResponse{
			Network: "lenet", Rows: 2, Cols: 3,
			SequentialS: 1.5, PipelinedS: 0.75, PreloadJ: 0.01, Utilization: 0.9,
		},
		"robustness_request": RobustnessRequest{
			Network: "lenet", Design: "OE", Sigmas: []float64{0.5, 1},
			Trials: 32, Seed: 7, ErrorBudget: 0.01,
			Protection: &ProtectionSpec{Scheme: "nmr", Copies: 3, Retries: 2, RecalEvery: 16},
		},
		"infer_request": InferRequest{Network: "lenet", Images: [][]int64{{1, 2}, {3, 4}}},
		"infer_response": InferResponse{
			Results: []InferResult{{Outputs: []int64{9, 4, 7}, ArgMax: 0}},
			Batched: 4,
		},
		"job_request": JobRequest{
			Kind: JobKindRobustness,
			Robustness: &RobustnessRequest{
				Network: "lenet", Design: "OO", Sigmas: []float64{1},
				Trials: 16, Seed: 3, ErrorBudget: 0.01,
			},
			Sweep: &SweepRequest{
				Networks: []string{"lenet"}, Designs: []string{"EE"},
				Lanes: []int{4}, Bits: []int{8},
			},
		},
		"job_handle": JobHandle{ID: "a1b2c3d4e5f60718", Kind: JobKindSweep, State: JobStateQueued},
		"job_status_response": JobStatusResponse{
			ID: "a1b2c3d4e5f60718", Kind: JobKindRobustness, State: JobStateRunning,
			Done: 48, Total: 96, CreatedUnix: 1754000000, Adopted: true,
			Error:   "worker exploded",
			Result:  json.RawMessage(`{"network":"lenet"}`),
			Partial: json.RawMessage(`[{"index":0}]`),
		},
		"job_progress": JobProgress{Done: 48, Total: 96, Error: "worker exploded"},
		"job_point": JobPoint{
			Index: 2,
			Point: pixel.YieldPoint{
				Sigma: 1.5, Yield: 0.875, ArgmaxRate: 0.9375,
				MeanMismatch: 0.01, P50Mismatch: 0.005, P95Mismatch: 0.02,
				MaxMismatch: 0.04, MeanInjectedBER: 1e-5, CleanTrials: 3,
			},
			Protected: &pixel.ProtectedPoint{Calls: 48, Retries: 6, Disagreements: 2, GaveUp: 1, RetryFactor: 1.125},
		},
		"job_cell": JobCell{
			Network: "lenet", Index: 3,
			Result: Result{
				Network: "lenet", Design: "OE", Lanes: 8, Bits: 4,
				EnergyJ: 0.25, LatencyS: 0.5, EDP: 0.125,
				Energy: map[string]float64{"mul": 0.1, "laser": 0.15},
			},
		},
		"job_event": JobEvent{
			Seq: 7, Type: JobEventProgress,
			Data: json.RawMessage(`{"done":48,"total":96}`),
		},
		"fleet_worker_request": FleetWorkerRequest{Addr: "http://127.0.0.1:9101"},
		"fleet_worker": FleetWorker{
			Addr: "http://127.0.0.1:9101", Healthy: true, Breaker: "half-open",
		},
		"fleet_workers_response": FleetWorkersResponse{
			Workers: []FleetWorker{{Addr: "http://127.0.0.1:9101", Healthy: true, Breaker: "closed"}},
		},
		"networks_response": NetworksResponse{Networks: []string{"lenet"}},
		"designs_response":  DesignsResponse{Designs: []string{"EE", "OE", "OO"}},
		"health_response":   HealthResponse{Status: "ok"},
		"error_envelope": ErrorEnvelope{Error: Error{
			Code: "overloaded", Message: "queue full", RetryAfterS: 1,
		}},
	}
}

// TestWireRoundTrip proves every wire type survives
// marshal -> unmarshal -> equal, so clients and server can exchange
// them without loss.
func TestWireRoundTrip(t *testing.T) {
	for name, sample := range wireSamples() {
		t.Run(name, func(t *testing.T) {
			buf, err := json.Marshal(sample)
			if err != nil {
				t.Fatal(err)
			}
			back := reflect.New(reflect.TypeOf(sample))
			if err := json.Unmarshal(buf, back.Interface()); err != nil {
				t.Fatal(err)
			}
			if got := back.Elem().Interface(); !reflect.DeepEqual(got, sample) {
				t.Fatalf("round trip changed value:\n got %#v\nwant %#v", got, sample)
			}
		})
	}
}

// TestErrorEnvelopeOmitsRetryAfter pins the optional field contract:
// retry_after appears only when set.
func TestErrorEnvelopeOmitsRetryAfter(t *testing.T) {
	buf, err := json.Marshal(ErrorEnvelope{Error: Error{Code: "bad_request", Message: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"error":{"code":"bad_request","message":"x"}}`; string(buf) != want {
		t.Fatalf("envelope = %s, want %s", buf, want)
	}
}
