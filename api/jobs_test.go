package api

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestEventStreamParsing drives the SSE iterator over a canned stream:
// heartbeat comments are skipped, multi-line data is joined, ids
// propagate to LastSeq, and stream end surfaces io.EOF.
func TestEventStreamParsing(t *testing.T) {
	var gotLastEventID string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotLastEventID = r.Header.Get("Last-Event-ID")
		w.Header().Set("Content-Type", "text/event-stream")
		io.WriteString(w, ": heartbeat\n\n")
		io.WriteString(w, "id: 3\nevent: progress\ndata: {\"done\":1,\ndata: \"total\":2}\n\n")
		io.WriteString(w, ": another heartbeat\n\n")
		io.WriteString(w, "id: 4\nevent: succeeded\ndata: {\"done\":2,\"total\":2}\n\n")
	}))
	defer srv.Close()

	c := NewClient(srv.URL, nil)
	s, err := c.JobEvents(context.Background(), "j1", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if gotLastEventID != "2" {
		t.Fatalf("Last-Event-ID header = %q, want 2", gotLastEventID)
	}

	ev, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 3 || ev.Type != JobEventProgress || ev.Terminal() {
		t.Fatalf("first event = %+v", ev)
	}
	var p JobProgress
	if err := json.Unmarshal(ev.Data, &p); err != nil {
		t.Fatalf("multi-line data %q: %v", ev.Data, err)
	}
	if p.Done != 1 || p.Total != 2 {
		t.Fatalf("progress = %+v", p)
	}

	ev, err = s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 4 || ev.Type != JobEventSucceeded || !ev.Terminal() {
		t.Fatalf("second event = %+v", ev)
	}
	if s.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d, want 4", s.LastSeq())
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("stream end: err = %v, want io.EOF", err)
	}
}

// TestJobEventsErrorEnvelope: a non-2xx stream open decodes the
// uniform error envelope like every other route.
func TestJobEventsErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, `{"error":{"code":"not_found","message":"no such job"}}`)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	_, err := c.JobEvents(context.Background(), "ghost", -1)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusNotFound || he.Code != "not_found" {
		t.Fatalf("err = %v, want not_found HTTPError", err)
	}
}
