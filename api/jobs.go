package api

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"pixel"
)

// Job kinds accepted by POST /v1/jobs.
const (
	JobKindRobustness = "robustness"
	JobKindSweep      = "sweep"
)

// Job states reported by GET /v1/jobs/{id}.
const (
	JobStateQueued    = "queued"
	JobStateRunning   = "running"
	JobStateSucceeded = "succeeded"
	JobStateFailed    = "failed"
	JobStateCancelled = "cancelled"
)

// Job event types on GET /v1/jobs/{id}/events. "progress" carries a
// JobProgress, "point" a JobPoint (robustness jobs only), "adopted" a
// JobProgress (emitted once when a restarted server re-adopts the job
// from its checkpoint), and the three terminal types carry a
// JobProgress plus an error message for "failed".
const (
	JobEventProgress  = "progress"
	JobEventPoint     = "point"
	JobEventAdopted   = "adopted"
	JobEventSucceeded = "succeeded"
	JobEventFailed    = "failed"
	JobEventCancelled = "cancelled"
)

// JobRequest is the POST /v1/jobs body: exactly one spec matching
// Kind. The specs reuse the synchronous routes' request types, so
// anything POST /v1/robustness accepts can also run as a durable job.
type JobRequest struct {
	Kind       string             `json:"kind"`
	Robustness *RobustnessRequest `json:"robustness,omitempty"`
	Sweep      *SweepRequest      `json:"sweep,omitempty"`
}

// JobHandle is the POST /v1/jobs response (202 Accepted): the id to
// poll, stream or cancel with.
type JobHandle struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
}

// JobStatusResponse is the GET /v1/jobs/{id} response. Result is the
// job's final payload once State is "succeeded" (a RobustnessResponse
// or SweepResponse by Kind); Partial carries the work completed so far
// on a running job — a []JobPoint of σ points for a robustness job, a
// []JobCell of priced grid cells for a sweep job. Adopted marks a job
// re-adopted from its checkpoint after a server restart.
type JobStatusResponse struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	State       string          `json:"state"`
	Done        int             `json:"done"`
	Total       int             `json:"total"`
	CreatedUnix int64           `json:"created_unix"`
	Adopted     bool            `json:"adopted,omitempty"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	Partial     json.RawMessage `json:"partial,omitempty"`
}

// JobProgress is the data payload of "progress", "adopted" and
// terminal events: completed and total unit counts (trials for
// robustness jobs, grid cells for sweeps). Error rides along on
// "failed" events.
type JobProgress struct {
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
}

// JobPoint is the data payload of "point" events: one σ point of a
// robustness job's yield curve, delivered as soon as all of its trials
// complete. Index is the point's position on the request's sigma axis.
type JobPoint struct {
	Index     int                   `json:"index"`
	Point     pixel.YieldPoint      `json:"point"`
	Protected *pixel.ProtectedPoint `json:"protected,omitempty"`
}

// JobCell is one priced grid cell of a sweep job, reported in
// GET /v1/jobs/{id}'s partial while the job runs. Index is the cell's
// position on the request's point grid (the row it will occupy in the
// final SweepResponse's per-network slice). Cells are listed sorted by
// network, then index. There is deliberately no per-cell SSE event —
// a sweep can have tens of thousands of cells, which would swamp the
// replayable event log; poll GET /v1/jobs/{id} instead.
type JobCell struct {
	Network string `json:"network"`
	Index   int    `json:"index"`
	Result  Result `json:"result"`
}

// JobEvent is one server-sent event from GET /v1/jobs/{id}/events.
// Seq is the SSE id — pass it as Last-Event-ID (or JobEvents' lastSeq)
// when reconnecting and the stream resumes with no gap.
type JobEvent struct {
	Seq  int64           `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Terminal reports whether the event ends the stream.
func (e JobEvent) Terminal() bool {
	switch e.Type {
	case JobEventSucceeded, JobEventFailed, JobEventCancelled:
		return true
	}
	return false
}

// CreateJob submits a durable job and returns its handle. The work
// runs server-side, survives server restarts via checkpoints, and is
// observed with Job, JobEvents or cancelled with DeleteJob.
func (c *Client) CreateJob(ctx context.Context, req JobRequest) (JobHandle, error) {
	var out JobHandle
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out)
	return out, err
}

// Job fetches a job's status, partial results included.
func (c *Client) Job(ctx context.Context, id string) (JobStatusResponse, error) {
	var out JobStatusResponse
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// DeleteJob cancels a running job (its checkpoint is discarded) or
// forgets a finished one.
func (c *Client) DeleteJob(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil)
}

// JobEvents opens the job's server-sent event stream. lastSeq resumes
// after a previously seen event (pass -1 for the full stream); the
// server replays everything newer, so a client that reconnects with
// its last seq misses nothing. Iterate with Next until a Terminal
// event or error; Close the stream when done.
//
// A stream cut before a terminal event reconnects transparently: Next
// re-opens the stream with the last delivered seq (bounded attempts,
// short exponential backoff, honoring ctx) and the server's replay
// makes the resumed stream gap-free. Only when the attempts are
// exhausted does Next surface the original stream error.
func (c *Client) JobEvents(ctx context.Context, id string, lastSeq int64) (*EventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return nil, fmt.Errorf("api: build request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastSeq >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastSeq, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		he := &HTTPError{Status: resp.StatusCode}
		var env ErrorEnvelope
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&env); err == nil {
			he.Code = env.Error.Code
			he.Message = env.Error.Message
			he.RetryAfterS = env.Error.RetryAfterS
		} else {
			he.Code = "unknown"
			he.Message = resp.Status
		}
		return nil, he
	}
	return &EventStream{
		body: resp.Body, sc: bufio.NewScanner(resp.Body), lastSeq: -1,
		c: c, ctx: ctx, id: id, resume: lastSeq,
	}, nil
}

// Stream-reconnect budget: how many times one silent gap may re-open
// the stream before Next gives up, and the backoff bounds between
// attempts. The counter resets whenever an event is delivered.
const maxStreamReconnects = 5

const (
	streamReconnectBase = 50 * time.Millisecond
	streamReconnectMax  = 1 * time.Second
)

// EventStream iterates a text/event-stream response. It is not safe
// for concurrent use.
type EventStream struct {
	body    io.Closer
	sc      *bufio.Scanner
	lastSeq int64

	// Reconnect state: the owning client, the open context and job id
	// to re-dial with, the seq to resume from (the open's lastSeq until
	// an event is delivered), and the per-gap attempt counter.
	c           *Client
	ctx         context.Context
	id          string
	resume      int64
	reconnects  int
	sawTerminal bool
}

// LastSeq returns the seq of the last event Next delivered (-1 before
// the first) — the value to hand back to JobEvents when reconnecting.
func (s *EventStream) LastSeq() int64 { return s.lastSeq }

// Close releases the underlying connection.
func (s *EventStream) Close() error { return s.body.Close() }

// Next blocks for the next event. Heartbeat comments are skipped
// transparently. A stream cut before a terminal event is re-opened in
// place with the last delivered seq (see JobEvents); Next returns
// io.EOF only when the server ends the stream after a Terminal event,
// and the underlying error once the reconnect budget is spent.
func (s *EventStream) Next() (JobEvent, error) {
	for {
		ev, err := s.scanNext()
		if err == nil {
			s.reconnects = 0
			if ev.Seq >= 0 {
				s.resume = ev.Seq
			}
			if ev.Terminal() {
				s.sawTerminal = true
			}
			return ev, nil
		}
		if s.sawTerminal || s.c == nil || s.ctx == nil || s.ctx.Err() != nil {
			return JobEvent{}, err
		}
		if !s.reconnect() {
			return JobEvent{}, err
		}
	}
}

// reconnect re-opens the stream resuming after the last delivered
// event, with exponential backoff between attempts. It reports whether
// a fresh stream was adopted; the per-gap attempt counter persists
// across calls so a dead server cannot be redialed forever.
func (s *EventStream) reconnect() bool {
	for s.reconnects < maxStreamReconnects {
		s.reconnects++
		d := streamReconnectBase << (s.reconnects - 1)
		if d > streamReconnectMax {
			d = streamReconnectMax
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-s.ctx.Done():
			t.Stop()
			return false
		}
		ns, err := s.c.JobEvents(s.ctx, s.id, s.resume)
		if err != nil {
			continue
		}
		s.body.Close()
		s.body, s.sc = ns.body, ns.sc
		return true
	}
	return false
}

// scanNext parses the next event block off the current connection.
func (s *EventStream) scanNext() (JobEvent, error) {
	ev := JobEvent{Seq: -1}
	var data strings.Builder
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			// Dispatch boundary — but only if the block carried a field;
			// a heartbeat comment followed by a blank line is skipped.
			if ev.Seq >= 0 || ev.Type != "" || data.Len() > 0 {
				if data.Len() > 0 {
					ev.Data = json.RawMessage(data.String())
				}
				if ev.Seq >= 0 {
					s.lastSeq = ev.Seq
				}
				return ev, nil
			}
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "id:"):
			seq, err := strconv.ParseInt(strings.TrimSpace(line[len("id:"):]), 10, 64)
			if err != nil {
				return JobEvent{}, fmt.Errorf("api: bad event id %q", line)
			}
			ev.Seq = seq
		case strings.HasPrefix(line, "event:"):
			ev.Type = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		}
	}
	if err := s.sc.Err(); err != nil {
		return JobEvent{}, err
	}
	return JobEvent{}, io.EOF
}
