// Command pixeltrace dumps the optical waveforms of an all-optical
// multiply, stage by stage: the gated AND outputs per synapse bit, the
// amplitude-coded product train after the cascaded-MZI chain, and the
// recovered digits. Output is CSV on stdout plus a summary on stderr.
//
// Usage:
//
//	pixeltrace -a 6 -b 13 -bits 4
//	pixeltrace -a 200 -b 100 -bits 8 > waveform.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"pixel/internal/optsim"
	"pixel/internal/photonics"
	"pixel/internal/phy"
	"pixel/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pixeltrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pixeltrace", flag.ContinueOnError)
	a := fs.Uint64("a", 6, "neuron operand")
	b := fs.Uint64("b", 13, "synapse operand")
	bits := fs.Int("bits", 4, "operand precision (2..12)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bits < 2 || *bits > 12 {
		return fmt.Errorf("bits %d out of range [2,12]", *bits)
	}
	limit := uint64(1)<<uint(*bits) - 1
	if *a > limit || *b > limit {
		return fmt.Errorf("operands must fit %d bits (max %d)", *bits, limit)
	}

	const (
		launch = 1 * phy.Milliwatt
		slot   = 100 * phy.Picosecond // 10 GHz
	)

	// Build the per-synapse-bit AND outputs, most-significant first.
	led := optsim.NewLedger()
	inputs := make([]*optsim.Signal, *bits)
	for k := 0; k < *bits; k++ {
		train := make([]int, *bits)
		sbit := (*b >> uint(*bits-1-k)) & 1
		for t := 0; t < *bits; t++ {
			if sbit == 1 && (*a>>uint(t))&1 == 1 {
				train[t] = 1
			}
		}
		inputs[k] = optsim.NewOOK(train, launch, slot, 0)
		fmt.Printf("# stage %d (synapse bit %d = %d): AND output\n", k, *bits-1-k, sbit)
		if err := trace.WriteSignalCSV(os.Stdout, inputs[k]); err != nil {
			return err
		}
	}

	out, err := optsim.MZIAccumulate(inputs, optsim.MZIAccumulateOptions{
		Params:   photonics.DefaultMZIParams(),
		BitRate:  1 / slot,
		Lossless: true,
	}, led)
	if err != nil {
		return err
	}
	fmt.Println("# accumulated product train (amplitude-coded)")
	if err := trace.WriteSignalCSV(os.Stdout, out); err != nil {
		return err
	}

	conv, err := photonics.NewAmplitudeConverter(launch, *bits)
	if err != nil {
		return err
	}
	conv.Coherent = true
	digits, err := optsim.DetectAmplitude(out, conv, led)
	if err != nil {
		return err
	}
	value, err := optsim.WeightedValue(digits)
	if err != nil {
		return err
	}

	sum := trace.Summarize(out, launch/4)
	fmt.Fprintf(os.Stderr, "digits (LSB first): %v\n", digits)
	fmt.Fprintf(os.Stderr, "%d x %d = %d (host check: %d)\n", *a, *b, value, *a**b)
	fmt.Fprintf(os.Stderr, "train: %d slots, %d lit, peak %s, extinction %.1f dB\n",
		sum.Slots, sum.LitSlots, phy.FormatPower(sum.PeakPower), sum.ExtinctionDB)
	fmt.Fprintf(os.Stderr, "metered: add %s, o/e %s, latency %s\n",
		phy.FormatEnergy(led.Energy(optsim.CatAdd)),
		phy.FormatEnergy(led.Energy(optsim.CatOE)),
		phy.FormatTime(led.Latency()))
	if uint64(value) != *a**b {
		return fmt.Errorf("optical product mismatch")
	}
	return nil
}
