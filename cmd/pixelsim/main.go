// Command pixelsim regenerates one artifact of the PIXEL paper's
// evaluation (a table or figure) and prints it as an aligned table or
// CSV.
//
// Usage:
//
//	pixelsim -exp fig7            # Figure 7 as an ASCII table
//	pixelsim -exp table2 -csv     # Table II as CSV
//	pixelsim -list                # list available experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"pixel/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pixelsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pixelsim", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment id (table1, fig4..fig10, table2, ext-*)")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	md := fs.Bool("md", false, "emit GitHub-flavored Markdown")
	list := fs.Bool("list", false, "list available experiments")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csv && *md {
		return fmt.Errorf("choose one of -csv and -md")
	}
	if *list {
		for _, e := range eval.AllExperiments() {
			fmt.Printf("%-15s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("missing -exp (or use -list)")
	}
	e, err := eval.ByID(*exp)
	if err != nil {
		return err
	}
	tab, err := e.Run()
	if err != nil {
		return err
	}
	switch {
	case *csv:
		return tab.RenderCSV(os.Stdout)
	case *md:
		return tab.RenderMarkdown(os.Stdout)
	default:
		return tab.Render(os.Stdout)
	}
}
