// Command pixelmap schedules a CNN onto a PIXEL tile grid and prints
// the per-layer assignment, utilization, weight-preload cost and
// makespan, for either weight transport (electrical or photonic).
//
// Usage:
//
//	pixelmap -net VGG16 -rows 4 -cols 4 -lanes 4 -bits 8 -design OO
//	pixelmap -net LeNet -transport photonic
package main

import (
	"flag"
	"fmt"
	"os"

	"pixel/internal/arch"
	"pixel/internal/cliutil"
	"pixel/internal/cnn"
	"pixel/internal/interconnect"
	"pixel/internal/mapper"
	"pixel/internal/phy"
	"pixel/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pixelmap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pixelmap", flag.ContinueOnError)
	netName := fs.String("net", "LeNet", "network (see pixelsim; e.g. VGG16, LeNet)")
	rows := fs.Int("rows", 4, "tile grid rows")
	cols := fs.Int("cols", 4, "tile grid columns")
	lanes := fs.Int("lanes", 4, "wavelengths per tile")
	bits := fs.Int("bits", 8, "bits per lane")
	designStr := fs.String("design", "OO", "MAC design: EE, OE or OO")
	transportStr := fs.String("transport", "electrical", "weight transport: electrical or photonic")
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, err := cnn.ByName(*netName)
	if err != nil {
		return err
	}
	design, err := cliutil.ParseArchDesign(*designStr)
	if err != nil {
		return err
	}
	var transport mapper.WeightTransport
	switch *transportStr {
	case "electrical":
		transport = mapper.ElectricalPreload
	case "photonic":
		transport = mapper.PhotonicPreload
	default:
		return fmt.Errorf("unknown transport %q (electrical, photonic)", *transportStr)
	}

	grid, err := interconnect.NewGrid(*rows, *cols, *lanes, 10*phy.Gigahertz)
	if err != nil {
		return err
	}
	cfg, err := arch.NewConfig(design, *lanes, *bits)
	if err != nil {
		return err
	}
	sched, err := mapper.MapNetwork(net, grid, cfg, mapper.Options{Transport: transport})
	if err != nil {
		return err
	}

	tab := report.New(
		fmt.Sprintf("%s on a %dx%d grid (%d lanes, %d bits/lane, %s, %s weights)",
			net.Name, *rows, *cols, *lanes, *bits, design, transport),
		"Layer", "FilterTiles", "ChanGroups", "Rounds", "Util")
	for _, a := range sched.Assignments {
		tab.AddRow(a.Layer,
			fmt.Sprint(a.FilterTiles),
			fmt.Sprint(a.ChannelGroups),
			report.Sci(a.Rounds),
			report.F(a.Utilization, 3))
	}
	tab.AddNote("compute %s + preload %s = makespan %s; preload energy %s; mean utilization %.1f%%",
		phy.FormatTime(sched.ComputeS), phy.FormatTime(sched.PreloadS),
		phy.FormatTime(sched.MakespanS), phy.FormatEnergy(sched.PreloadJ),
		100*sched.MeanUtilization())
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}

	r, err := arch.Throughput(net, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("\nsingle-ensemble throughput view: %.3g inf/s, %.3g W avg, %.3g inf/J\n",
		r.InferencesPerSecond, r.AvgPowerW, r.InferencesPerJoule)
	return nil
}
