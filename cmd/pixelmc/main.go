// Command pixelmc runs the Monte-Carlo variation engine: it fabricates
// N virtual parts per σ scale, perturbs each at the device level (MRR
// resonance offset, ambient excursion through the thermal tuning loop,
// MZI split error, comparator threshold offset), runs full quantized
// CNN inference through the fault-injecting bit-serial engine, and
// prints the yield curve. The run is a pure function of the spec and
// -seed: any -workers value produces the identical curve.
//
// Usage:
//
//	pixelmc -net lenet -design OO -trials 256 -sigma 0:0.5:5
//	pixelmc -net tiny -design OE -trials 64 -sigma 0,1,2,4 -budget 0.1 -json
//	pixelmc -net lenet -design OO -trials 256 -sigma 0:0.5:5 -protect guardband
//	pixelmc -net lenet -trials 1024 -checkpoint /tmp/mc -progress
//	pixelmc -net lenet -trials 1024 -checkpoint /tmp/mc -resume
//
// With -protect the same trials re-run through a fault-mitigation
// scheme (tmr, dmr, nmr:N, parity[:retries], guardband[:interval]) and
// the paired protected curve prints alongside, with the scheme's
// energy/latency/area overhead from the arch cost model.
//
// With -checkpoint the run snapshots its completed trials to
// <dir>/pixelmc.ckpt periodically and on SIGINT (exit status 3);
// -resume restores the snapshot and finishes only the remaining
// trials, producing the bit-identical report an uninterrupted run
// would have. See docs/JOBS.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"pixel"
	"pixel/internal/cliutil"
	"pixel/internal/jobs"
	"pixel/internal/report"
)

// ckptName is the snapshot file inside the -checkpoint directory.
const ckptName = "pixelmc.ckpt"

// errInterrupted marks a SIGINT exit with the checkpoint flushed —
// main translates it to exit status 3 so scripts can distinguish
// "resume me" from failure.
var errInterrupted = errors.New("interrupted; checkpoint saved, rerun with -resume to finish")

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pixelmc:", err)
		if errors.Is(err, errInterrupted) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pixelmc", flag.ContinueOnError)
	netName := fs.String("net", "lenet", "network to perturb (lenet, tiny)")
	designStr := fs.String("design", "OO", "MAC design: EE, OE or OO")
	trials := fs.Int("trials", 256, "virtual parts per sigma point")
	sigmaStr := fs.String("sigma", "0:0.5:5", "sigma-scale axis: start:step:stop or comma list")
	seed := fs.Int64("seed", 1, "root seed (the whole run is a pure function of spec+seed)")
	workers := fs.Int("workers", 0, "trial worker-pool size (0 = GOMAXPROCS; result is identical at any width)")
	budget := fs.Float64("budget", 0, "tolerated fraction of mismatched outputs per yielding part (0 = bit-exact)")
	protectStr := fs.String("protect", "", "protection scheme: tmr, dmr, nmr:N, parity[:retries], guardband[:interval] (empty = none)")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of a table")
	ckptDir := fs.String("checkpoint", "", "directory for crash-resumable snapshots (empty = none)")
	resume := fs.Bool("resume", false, "restore the -checkpoint snapshot and finish the remaining trials")
	ckptEvery := fs.Duration("checkpoint-every", 5*time.Second, "periodic snapshot cadence while running")
	progress := fs.Bool("progress", false, "report trial progress and ETA on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	design, err := cliutil.ParseDesign(*designStr)
	if err != nil {
		return err
	}
	sigmas, err := cliutil.ParseFloatAxis(*sigmaStr)
	if err != nil {
		return err
	}
	protection, err := pixel.ParseProtection(*protectStr)
	if err != nil {
		return err
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	job, err := pixel.NewRobustnessJob(pixel.RobustnessSpec{
		Network:     *netName,
		Design:      design,
		Sigmas:      sigmas,
		Trials:      *trials,
		Seed:        *seed,
		Workers:     *workers,
		ErrorBudget: *budget,
		Protection:  protection,
	})
	if err != nil {
		return err
	}

	var mgr *jobs.Manager
	if *ckptDir != "" {
		if mgr, err = jobs.NewManager(*ckptDir); err != nil {
			return err
		}
		if *resume {
			switch err := mgr.LoadInto(ckptName, job); {
			case errors.Is(err, jobs.ErrNotFound):
				fmt.Fprintf(os.Stderr, "pixelmc: no checkpoint in %s, starting fresh\n", *ckptDir)
			case err != nil:
				// A mismatched snapshot means the flags changed; a corrupt
				// one means the file is torn. Either way silently redoing
				// everything would betray -resume, so fail loudly.
				return fmt.Errorf("resume: %w", err)
			default:
				done, total := job.Progress()
				fmt.Fprintf(os.Stderr, "pixelmc: resuming at %d/%d trials\n", done, total)
			}
		}
	}

	// Ctrl-C cancels the run; with -checkpoint the completed prefix is
	// flushed so a -resume rerun finishes the rest bit-exactly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := runJob(ctx, job, mgr, *ckptEvery, *progress)
	if err != nil {
		if errors.Is(err, context.Canceled) && mgr != nil {
			if serr := mgr.Save(ckptName, job); serr != nil {
				return fmt.Errorf("interrupted, and the final checkpoint failed: %w", serr)
			}
			done, total := job.Progress()
			fmt.Fprintf(os.Stderr, "pixelmc: %d/%d trials checkpointed to %s\n", done, total, *ckptDir)
			return errInterrupted
		}
		return err
	}
	if mgr != nil {
		// The run is settled; a stale snapshot must not hijack the next
		// -resume of a different experiment in the same directory.
		if err := mgr.Remove(ckptName); err != nil {
			fmt.Fprintf(os.Stderr, "pixelmc: remove checkpoint: %v\n", err)
		}
	}
	return render(rep, *asJSON)
}

// runJob executes the job with periodic checkpoints and optional
// progress reporting.
func runJob(ctx context.Context, job *pixel.RobustnessJob, mgr *jobs.Manager, every time.Duration, progress bool) (pixel.RobustnessReport, error) {
	var hooks pixel.RobustnessHooks
	if progress {
		restored, total := job.Progress()
		start := time.Now()
		lastLine := time.Time{}
		points := 0
		hooks.OnPoint = func(int, pixel.YieldPoint, *pixel.ProtectedPoint) { points++ }
		hooks.OnTrial = func(done, _ int) {
			now := time.Now()
			if now.Sub(lastLine) < 500*time.Millisecond && done != total {
				return
			}
			lastLine = now
			line := fmt.Sprintf("pixelmc: %d/%d trials, %d sigma points done", done, total, points)
			// Rate from this session only: restored trials were free.
			if fresh := done - restored; fresh > 0 && done < total {
				eta := time.Duration(float64(now.Sub(start)) / float64(fresh) * float64(total-done))
				line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}

	if mgr != nil && every > 0 {
		stopSave := make(chan struct{})
		defer close(stopSave)
		go func() {
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := mgr.Save(ckptName, job); err != nil {
						fmt.Fprintf(os.Stderr, "pixelmc: checkpoint failed: %v\n", err)
					}
				case <-stopSave:
					return
				}
			}
		}()
	}
	return job.Run(ctx, hooks)
}

func render(rep pixel.RobustnessReport, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	tab := report.New(
		fmt.Sprintf("%s on %s: %d trials/point, seed %d, error budget %g",
			rep.Design, rep.Network, rep.Trials, rep.Seed, rep.Budget),
		"Sigma", "Yield", "Argmax", "MeanMis", "P95Mis", "MaxMis", "InjBER", "Clean")
	for _, p := range rep.Points {
		tab.AddRow(
			report.F(p.Sigma, 2),
			report.F(p.Yield, 3),
			report.F(p.ArgmaxRate, 3),
			report.F(p.MeanMismatch, 4),
			report.F(p.P95Mismatch, 4),
			report.F(p.MaxMismatch, 4),
			report.Sci(p.MeanInjectedBER),
			fmt.Sprint(p.CleanTrials),
		)
	}
	tab.AddNote("yield = fraction of parts within budget; Clean = trials whose perturbation mapped to zero flip rates")
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}

	if pr := rep.Protection; pr != nil {
		fmt.Println()
		ptab := report.New(
			fmt.Sprintf("protected by %s: energy x%.2f, latency x%.2f, area x%.2f (no free protection)",
				pr.Scheme, pr.EnergyOverhead, pr.LatencyOverhead, pr.AreaOverhead),
			"Sigma", "Yield", "Argmax", "MeanMis", "P95Mis", "Retries", "GaveUp", "Clean")
		for _, p := range pr.Points {
			ptab.AddRow(
				report.F(p.Sigma, 2),
				report.F(p.Yield, 3),
				report.F(p.ArgmaxRate, 3),
				report.F(p.MeanMismatch, 4),
				report.F(p.P95Mismatch, 4),
				fmt.Sprint(p.Retries),
				fmt.Sprint(p.GaveUp),
				fmt.Sprint(p.CleanTrials),
			)
		}
		ptab.AddNote(fmt.Sprintf(
			"same trials, same fault draws (common random numbers); worst retry factor %.3f folded into the overheads",
			pr.MaxRetryFactor))
		if err := ptab.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
