// Command pixelmc runs the Monte-Carlo variation engine: it fabricates
// N virtual parts per σ scale, perturbs each at the device level (MRR
// resonance offset, ambient excursion through the thermal tuning loop,
// MZI split error, comparator threshold offset), runs full quantized
// CNN inference through the fault-injecting bit-serial engine, and
// prints the yield curve. The run is a pure function of the spec and
// -seed: any -workers value produces the identical curve.
//
// Usage:
//
//	pixelmc -net lenet -design OO -trials 256 -sigma 0:0.5:5
//	pixelmc -net tiny -design OE -trials 64 -sigma 0,1,2,4 -budget 0.1 -json
//	pixelmc -net lenet -design OO -trials 256 -sigma 0:0.5:5 -protect guardband
//
// With -protect the same trials re-run through a fault-mitigation
// scheme (tmr, dmr, nmr:N, parity[:retries], guardband[:interval]) and
// the paired protected curve prints alongside, with the scheme's
// energy/latency/area overhead from the arch cost model.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pixel"
	"pixel/internal/cliutil"
	"pixel/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pixelmc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pixelmc", flag.ContinueOnError)
	netName := fs.String("net", "lenet", "network to perturb (lenet, tiny)")
	designStr := fs.String("design", "OO", "MAC design: EE, OE or OO")
	trials := fs.Int("trials", 256, "virtual parts per sigma point")
	sigmaStr := fs.String("sigma", "0:0.5:5", "sigma-scale axis: start:step:stop or comma list")
	seed := fs.Int64("seed", 1, "root seed (the whole run is a pure function of spec+seed)")
	workers := fs.Int("workers", 0, "trial worker-pool size (0 = GOMAXPROCS; result is identical at any width)")
	budget := fs.Float64("budget", 0, "tolerated fraction of mismatched outputs per yielding part (0 = bit-exact)")
	protectStr := fs.String("protect", "", "protection scheme: tmr, dmr, nmr:N, parity[:retries], guardband[:interval] (empty = none)")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	design, err := cliutil.ParseDesign(*designStr)
	if err != nil {
		return err
	}
	sigmas, err := cliutil.ParseFloatAxis(*sigmaStr)
	if err != nil {
		return err
	}
	protection, err := pixel.ParseProtection(*protectStr)
	if err != nil {
		return err
	}

	rep, err := pixel.Robustness(pixel.RobustnessSpec{
		Network:     *netName,
		Design:      design,
		Sigmas:      sigmas,
		Trials:      *trials,
		Seed:        *seed,
		Workers:     *workers,
		ErrorBudget: *budget,
		Protection:  protection,
	})
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	tab := report.New(
		fmt.Sprintf("%s on %s: %d trials/point, seed %d, error budget %g",
			rep.Design, rep.Network, rep.Trials, rep.Seed, rep.Budget),
		"Sigma", "Yield", "Argmax", "MeanMis", "P95Mis", "MaxMis", "InjBER", "Clean")
	for _, p := range rep.Points {
		tab.AddRow(
			report.F(p.Sigma, 2),
			report.F(p.Yield, 3),
			report.F(p.ArgmaxRate, 3),
			report.F(p.MeanMismatch, 4),
			report.F(p.P95Mismatch, 4),
			report.F(p.MaxMismatch, 4),
			report.Sci(p.MeanInjectedBER),
			fmt.Sprint(p.CleanTrials),
		)
	}
	tab.AddNote("yield = fraction of parts within budget; Clean = trials whose perturbation mapped to zero flip rates")
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}

	if pr := rep.Protection; pr != nil {
		fmt.Println()
		ptab := report.New(
			fmt.Sprintf("protected by %s: energy x%.2f, latency x%.2f, area x%.2f (no free protection)",
				pr.Scheme, pr.EnergyOverhead, pr.LatencyOverhead, pr.AreaOverhead),
			"Sigma", "Yield", "Argmax", "MeanMis", "P95Mis", "Retries", "GaveUp", "Clean")
		for _, p := range pr.Points {
			ptab.AddRow(
				report.F(p.Sigma, 2),
				report.F(p.Yield, 3),
				report.F(p.ArgmaxRate, 3),
				report.F(p.MeanMismatch, 4),
				report.F(p.P95Mismatch, 4),
				fmt.Sprint(p.Retries),
				fmt.Sprint(p.GaveUp),
				fmt.Sprint(p.CleanTrials),
			)
		}
		ptab.AddNote(fmt.Sprintf(
			"same trials, same fault draws (common random numbers); worst retry factor %.3f folded into the overheads",
			pr.MaxRetryFactor))
		if err := ptab.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
