// Command pixelexp runs the complete evaluation suite: every table and
// figure of the paper, followed by the paper-vs-measured headline
// summary. Its output is the source of EXPERIMENTS.md.
//
// Usage:
//
//	pixelexp          # everything, aligned tables
//	pixelexp -csv     # everything, CSV blocks
package main

import (
	"flag"
	"fmt"
	"os"

	"pixel/internal/arch"
	"pixel/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pixelexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pixelexp", flag.ContinueOnError)
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	ext := fs.Bool("ext", false, "also run the extension studies (ext-*)")
	workers := fs.Int("workers", 0, "sweep-engine worker-pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eval.SetWorkers(*workers)

	experiments := eval.Experiments()
	if *ext {
		experiments = eval.AllExperiments()
	}
	for _, e := range experiments {
		fmt.Printf("== %s (%s) ==\n", e.Paper, e.ID)
		tab, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			if err := tab.RenderCSV(os.Stdout); err != nil {
				return err
			}
		} else if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	h := eval.MeasureHeadlines()
	fmt.Println("== Headline claims: paper vs measured ==")
	rows := []struct {
		claim           string
		paper, measured float64
	}{
		{"OE geomean EDP improvement over EE (4 lanes, 16 b/lane)", 48.4, 100 * h.OEEDPImprovement},
		{"OO geomean EDP improvement over EE (4 lanes, 16 b/lane)", 73.9, 100 * h.OOEDPImprovement},
		{"optical multiply energy saving over EE", 94.9, 100 * h.MulSaving},
		{"OO accumulate energy saving over OE", 53.8, 100 * h.AddSaving},
		{"ZFNet Conv2: OO latency gain vs EE (8 lanes, 8 b/lane)", 31.9, 100 * h.ZFNetConv2VsEE},
		{"ZFNet Conv2: OO latency gain vs OE (8 lanes, 8 b/lane)", 18.6, 100 * h.ZFNetConv2VsOE},
	}
	for _, r := range rows {
		fmt.Printf("%-58s paper %5.1f%%   measured %5.1f%%\n", r.claim, r.paper, r.measured)
	}
	fmt.Printf("%-58s paper %5.2fx   measured %5.2fx\n",
		"OO/OE laser energy ratio (Table II)", 1.52, h.LaserRatioOOvsOE)

	results, err := arch.RunAblations()
	if err != nil {
		return err
	}
	fmt.Println("\n== Ablations (geomean EDP improvement over EE, 4 lanes / 16 bits-lane) ==")
	for _, r := range results {
		fmt.Printf("%-20s OE %5.1f%%  OO %5.1f%%   %s\n",
			r.Name, 100*r.OEImprovement, 100*r.OOImprovement, r.Description)
	}
	return nil
}
