// Command pixeld serves the PIXEL evaluation API over HTTP: single
// design-point pricing, grid sweeps, tile-grid scheduling,
// Monte-Carlo variation-to-yield sweeps (POST /v1/robustness, capped
// at -max-trials trials per request) and micro-batched quantized
// inference (POST /v1/infer; concurrent requests coalesce into
// word-parallel engine passes of up to -batch-size images collected
// over at most -batch-window), backed by the concurrent memoizing
// sweep engine with request coalescing, admission control and
// Prometheus metrics (see internal/server, docs/SERVER.md and
// docs/SERVING.md).
//
// Long robustness and sweep runs can also be submitted as durable
// asynchronous jobs (POST /v1/jobs; status, SSE progress streaming and
// cancellation under /v1/jobs/{id}). With -jobs-dir the jobs
// checkpoint to disk and a restarted pixeld re-adopts and resumes
// unfinished ones bit-exactly (see docs/JOBS.md).
//
// With -pprof-addr pixeld additionally serves the net/http/pprof
// profiling endpoints (/debug/pprof/...) on a separate listener, off
// by default and intended for loopback only.
//
// With -coordinator pixeld runs as a fleet coordinator instead of a
// worker: it serves the same /v1 surface but fans sweeps and
// robustness runs out across the named worker pixelds, merging shard
// responses byte-identically to a single node. The worker set can
// change at runtime (POST/DELETE /v1/fleet/workers), a worker death
// mid-job costs only its unfinished cells/σ-points (partial-result
// salvage), and -jobs-dir makes coordinator jobs durable across
// coordinator restarts (see docs/FLEET.md).
//
// Usage:
//
//	pixeld -addr :8764
//	pixeld -addr 127.0.0.1:0 -max-inflight 32 -queue-timeout 100ms -cache-size 8192
//	pixeld -addr :8764 -batch-size 64 -batch-window 2ms
//	pixeld -addr :8764 -jobs-dir /var/lib/pixeld/jobs -job-ttl 1h
//	pixeld -addr :8764 -pprof-addr 127.0.0.1:6060
//	pixeld -addr :8765 -coordinator 127.0.0.1:8764,127.0.0.1:8766
//
// pixeld prints "pixeld: listening on <host:port>" once the listener
// is bound (so :0 callers can discover the port) and drains in-flight
// requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only on -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pixel"
	"pixel/fleet"
	"pixel/internal/jobs"
	"pixel/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pixeld:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("pixeld", flag.ContinueOnError)
	addr := fs.String("addr", ":8764", "listen address (host:port; port 0 picks a free port)")
	maxInFlight := fs.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently evaluating requests before shedding")
	queueTimeout := fs.Duration("queue-timeout", server.DefaultQueueTimeout, "how long an over-limit request queues before a 429")
	requestTimeout := fs.Duration("request-timeout", server.DefaultRequestTimeout, "per-request evaluation deadline")
	cacheSize := fs.Int("cache-size", 0, "result-LRU capacity in entries (0 = engine default)")
	workers := fs.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	maxTrials := fs.Int("max-trials", server.DefaultMaxTrials, "max Monte-Carlo trials per /v1/robustness request")
	batchSize := fs.Int("batch-size", server.DefaultBatchSize, "image count that flushes a pending /v1/infer batch early")
	batchWindow := fs.Duration("batch-window", server.DefaultBatchWindow, "max wait for a /v1/infer batch to fill before it executes")
	pprofAddr := fs.String("pprof-addr", "", "listen address for net/http/pprof profiling endpoints on a separate listener (empty = disabled); bind loopback, the endpoints are unauthenticated")
	jobsDir := fs.String("jobs-dir", "", "directory for durable-job checkpoints; restarts re-adopt unfinished jobs (empty = in-memory jobs only)")
	jobTTL := fs.Duration("job-ttl", jobs.DefaultTTL, "how long finished jobs stay queryable before eviction")
	maxJobs := fs.Int("max-jobs", jobs.DefaultMaxJobs, "max jobs tracked before POST /v1/jobs answers 429")
	maxRunningJobs := fs.Int("max-running-jobs", jobs.DefaultMaxRunning, "max concurrently executing jobs; the rest queue")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	coordinator := fs.String("coordinator", "", "run as a fleet coordinator over this comma-separated worker list (host:port,...) instead of evaluating locally")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *coordinator != "" {
		return runCoordinator(*coordinator, *addr, *requestTimeout, *maxTrials, *maxJobs, *maxRunningJobs, *jobTTL, *jobsDir, *drain, stdout)
	}

	var mgr *jobs.Manager
	if *jobsDir != "" {
		var err error
		if mgr, err = jobs.NewManager(*jobsDir); err != nil {
			return err
		}
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	mcWorkers := *workers
	srv := server.New(server.Config{
		Engine: pixel.NewEngine(pixel.EngineOptions{Workers: *workers, CacheSize: *cacheSize}),
		Robust: server.RobustnessFunc(func(ctx context.Context, spec pixel.RobustnessSpec) (pixel.RobustnessReport, error) {
			spec.Workers = mcWorkers
			return pixel.RobustnessContext(ctx, spec)
		}),
		Infer:          server.PixelInfer{},
		BatchSize:      *batchSize,
		BatchWindow:    *batchWindow,
		MaxTrials:      *maxTrials,
		MaxInFlight:    *maxInFlight,
		QueueTimeout:   *queueTimeout,
		RequestTimeout: *requestTimeout,
		Jobs: &server.JobsConfig{
			Manager:    mgr,
			MaxJobs:    *maxJobs,
			MaxRunning: *maxRunningJobs,
			TTL:        *jobTTL,
		},
		Logger: logger,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The profiling listener is separate from the API listener so
	// operational exposure is an explicit choice: the API port can face
	// a load balancer while pprof stays on loopback. DefaultServeMux
	// carries the net/http/pprof handlers via its init registration.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		fmt.Fprintf(stdout, "pixeld: pprof on %s\n", pln.Addr())
		logger.Info("pprof", "addr", pln.Addr().String())
		go func() {
			if err := http.Serve(pln, nil); err != nil && ctx.Err() == nil {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pixeld: listening on %s\n", ln.Addr())
	logger.Info("serving", "addr", ln.Addr().String(),
		"max_inflight", *maxInFlight, "queue_timeout", *queueTimeout,
		"request_timeout", *requestTimeout)
	return srv.Serve(ctx, ln, *drain)
}

// runCoordinator is the -coordinator mode: same listener contract and
// shutdown behavior as a worker, but requests fan out to the named
// workers instead of evaluating locally. -jobs-dir applies here too:
// coordinator jobs checkpoint their shard harvest and a restarted
// coordinator re-adopts them, re-dispatching only unfinished work.
func runCoordinator(workerList, addr string, requestTimeout time.Duration, maxTrials, maxJobs, maxRunningJobs int, jobTTL time.Duration, jobsDir string, drain time.Duration, stdout *os.File) error {
	var workers []string
	for _, w := range strings.Split(workerList, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fl, err := fleet.New(fleet.Options{
		Workers:        workers,
		RequestTimeout: requestTimeout,
		MaxTrials:      maxTrials,
		MaxJobs:        maxJobs,
		MaxRunningJobs: maxRunningJobs,
		JobTTL:         jobTTL,
		JobsDir:        jobsDir,
		Logger:         logger,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pixeld: listening on %s\n", ln.Addr())
	logger.Info("coordinating", "addr", ln.Addr().String(), "workers", workers)
	return fl.Serve(ctx, ln, drain)
}
