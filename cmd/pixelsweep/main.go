// Command pixelsweep runs a design-space sweep for one network and
// emits the results as JSON (for plotting) or a ranked table.
//
// Usage:
//
//	pixelsweep -net AlexNet -lanes 2,4,8,16 -bits 4,8,16,32 -json > sweep.json
//	pixelsweep -net VGG16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pixel"
	"pixel/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pixelsweep:", err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("pixelsweep", flag.ContinueOnError)
	netName := fs.String("net", "AlexNet", "network to sweep")
	lanesStr := fs.String("lanes", "2,4,8,16", "comma-separated lane counts")
	bitsStr := fs.String("bits", "4,8,16,32", "comma-separated bits/lane")
	jsonOut := fs.Bool("json", false, "emit JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lanes, err := parseInts(*lanesStr)
	if err != nil {
		return err
	}
	bits, err := parseInts(*bitsStr)
	if err != nil {
		return err
	}
	results, err := pixel.Sweep(*netName, pixel.Designs(), lanes, bits)
	if err != nil {
		return err
	}
	if *jsonOut {
		return pixel.WriteResultsJSON(os.Stdout, results)
	}
	ranked := pixel.RankByEDP(results)
	tab := report.New(fmt.Sprintf("%s design-space sweep, ranked by EDP", *netName),
		"Rank", "Des", "Lanes", "Bits", "Energy [J]", "Latency [s]", "EDP [J*s]")
	for i, r := range ranked {
		tab.AddRow(fmt.Sprint(i+1), r.Design.String(),
			fmt.Sprint(r.Lanes), fmt.Sprint(r.Bits),
			report.Sci(r.EnergyJ), report.Sci(r.LatencyS), report.Sci(r.EDP))
	}
	best, err := pixel.BestEDP(results)
	if err != nil {
		return err
	}
	tab.AddNote("best point: %s at %d lanes, %d bits/lane", best.Design, best.Lanes, best.Bits)
	return tab.Render(os.Stdout)
}
