// Command pixelsweep runs a design-space sweep for one or more
// networks through the concurrent sweep engine and emits the results
// as JSON (for plotting) or a ranked table per network.
//
// Usage:
//
//	pixelsweep -net AlexNet -lanes 2,4,8,16 -bits 4,8,16,32 -json > sweep.json
//	pixelsweep -net VGG16 -workers 8 -progress
//	pixelsweep -net AlexNet,ZFNet,VGG16 -progress
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"pixel"
	"pixel/internal/cliutil"
	"pixel/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pixelsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pixelsweep", flag.ContinueOnError)
	netNames := fs.String("net", "AlexNet", "comma-separated networks to sweep")
	lanesStr := fs.String("lanes", "2,4,8,16", "comma-separated lane counts")
	bitsStr := fs.String("bits", "4,8,16,32", "comma-separated bits/lane")
	jsonOut := fs.Bool("json", false, "emit JSON instead of a table")
	workers := fs.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report sweep progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lanes, err := cliutil.ParseInts(*lanesStr)
	if err != nil {
		return err
	}
	bits, err := cliutil.ParseInts(*bitsStr)
	if err != nil {
		return err
	}
	networks := cliutil.ParseNames(*netNames)
	if len(networks) == 0 {
		return fmt.Errorf("no networks given")
	}

	// Ctrl-C cancels the sweep promptly instead of leaving the pool
	// grinding through the rest of the grid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := &pixel.SweepOptions{Workers: *workers}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	points := pixel.Grid(pixel.Designs(), lanes, bits)
	byNet, err := pixel.SweepNetworks(ctx, networks, points, opts)
	if err != nil {
		return err
	}

	if *jsonOut {
		var all []pixel.Result
		for _, name := range networks {
			all = append(all, byNet[name]...)
		}
		return pixel.WriteResultsJSON(os.Stdout, all)
	}
	for _, name := range networks {
		results := byNet[name]
		ranked := pixel.RankByEDP(results)
		tab := report.New(fmt.Sprintf("%s design-space sweep, ranked by EDP", name),
			"Rank", "Des", "Lanes", "Bits", "Energy [J]", "Latency [s]", "EDP [J*s]")
		for i, r := range ranked {
			tab.AddRow(fmt.Sprint(i+1), r.Design.String(),
				fmt.Sprint(r.Lanes), fmt.Sprint(r.Bits),
				report.Sci(r.EnergyJ), report.Sci(r.LatencyS), report.Sci(r.EDP))
		}
		best, err := pixel.BestEDP(results)
		if err != nil {
			return err
		}
		tab.AddNote("best point: %s at %d lanes, %d bits/lane", best.Design, best.Lanes, best.Bits)
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		if len(networks) > 1 {
			fmt.Println()
		}
	}
	return nil
}
