// Command pixelsweep runs a design-space sweep for one or more
// networks through the concurrent sweep engine and emits the results
// as JSON (for plotting) or a ranked table per network.
//
// Usage:
//
//	pixelsweep -net AlexNet -lanes 2,4,8,16 -bits 4,8,16,32 -json > sweep.json
//	pixelsweep -net VGG16 -workers 8 -progress
//	pixelsweep -net AlexNet,ZFNet,VGG16 -progress
//	pixelsweep -net VGG16 -checkpoint /tmp/sweep -resume
//
// With -checkpoint the sweep snapshots its completed grid cells to
// <dir>/pixelsweep.ckpt periodically and on SIGINT (exit status 3);
// -resume restores the snapshot and prices only the remaining cells.
// See docs/JOBS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"pixel"
	"pixel/internal/cliutil"
	"pixel/internal/jobs"
	"pixel/internal/report"
)

// ckptName is the snapshot file inside the -checkpoint directory.
const ckptName = "pixelsweep.ckpt"

// errInterrupted marks a SIGINT exit with the checkpoint flushed —
// main translates it to exit status 3 so scripts can distinguish
// "resume me" from failure.
var errInterrupted = errors.New("interrupted; checkpoint saved, rerun with -resume to finish")

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pixelsweep:", err)
		if errors.Is(err, errInterrupted) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pixelsweep", flag.ContinueOnError)
	netNames := fs.String("net", "AlexNet", "comma-separated networks to sweep")
	lanesStr := fs.String("lanes", "2,4,8,16", "comma-separated lane counts")
	bitsStr := fs.String("bits", "4,8,16,32", "comma-separated bits/lane")
	jsonOut := fs.Bool("json", false, "emit JSON instead of a table")
	workers := fs.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report sweep progress on stderr")
	ckptDir := fs.String("checkpoint", "", "directory for crash-resumable snapshots (empty = none)")
	resume := fs.Bool("resume", false, "restore the -checkpoint snapshot and price only the remaining cells")
	ckptEvery := fs.Duration("checkpoint-every", 5*time.Second, "periodic snapshot cadence while running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lanes, err := cliutil.ParseInts(*lanesStr)
	if err != nil {
		return err
	}
	bits, err := cliutil.ParseInts(*bitsStr)
	if err != nil {
		return err
	}
	networks := cliutil.ParseNames(*netNames)
	if len(networks) == 0 {
		return fmt.Errorf("no networks given")
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	points := pixel.Grid(pixel.Designs(), lanes, bits)
	job, err := pixel.NewSweepJob(networks, points)
	if err != nil {
		return err
	}

	var mgr *jobs.Manager
	if *ckptDir != "" {
		if mgr, err = jobs.NewManager(*ckptDir); err != nil {
			return err
		}
		if *resume {
			switch err := mgr.LoadInto(ckptName, job); {
			case errors.Is(err, jobs.ErrNotFound):
				fmt.Fprintf(os.Stderr, "pixelsweep: no checkpoint in %s, starting fresh\n", *ckptDir)
			case err != nil:
				return fmt.Errorf("resume: %w", err)
			default:
				done, total := job.Progress()
				fmt.Fprintf(os.Stderr, "pixelsweep: resuming at %d/%d points\n", done, total)
			}
		}
	}

	// Ctrl-C cancels the sweep promptly instead of leaving the pool
	// grinding through the rest of the grid; with -checkpoint the
	// completed cells are flushed for a later -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := &pixel.SweepOptions{Workers: *workers}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if mgr != nil && *ckptEvery > 0 {
		stopSave := make(chan struct{})
		defer close(stopSave)
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := mgr.Save(ckptName, job); err != nil {
						fmt.Fprintf(os.Stderr, "pixelsweep: checkpoint failed: %v\n", err)
					}
				case <-stopSave:
					return
				}
			}
		}()
	}

	byNet, err := job.Run(ctx, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) && mgr != nil {
			if serr := mgr.Save(ckptName, job); serr != nil {
				return fmt.Errorf("interrupted, and the final checkpoint failed: %w", serr)
			}
			done, total := job.Progress()
			fmt.Fprintf(os.Stderr, "pixelsweep: %d/%d points checkpointed to %s\n", done, total, *ckptDir)
			return errInterrupted
		}
		return err
	}
	if mgr != nil {
		if err := mgr.Remove(ckptName); err != nil {
			fmt.Fprintf(os.Stderr, "pixelsweep: remove checkpoint: %v\n", err)
		}
	}

	if *jsonOut {
		var all []pixel.Result
		for _, name := range networks {
			all = append(all, byNet[name]...)
		}
		return pixel.WriteResultsJSON(os.Stdout, all)
	}
	for _, name := range networks {
		results := byNet[name]
		ranked := pixel.RankByEDP(results)
		tab := report.New(fmt.Sprintf("%s design-space sweep, ranked by EDP", name),
			"Rank", "Des", "Lanes", "Bits", "Energy [J]", "Latency [s]", "EDP [J*s]")
		for i, r := range ranked {
			tab.AddRow(fmt.Sprint(i+1), r.Design.String(),
				fmt.Sprint(r.Lanes), fmt.Sprint(r.Bits),
				report.Sci(r.EnergyJ), report.Sci(r.LatencyS), report.Sci(r.EDP))
		}
		best, err := pixel.BestEDP(results)
		if err != nil {
			return err
		}
		tab.AddNote("best point: %s at %d lanes, %d bits/lane", best.Design, best.Lanes, best.Bits)
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		if len(networks) > 1 {
			fmt.Println()
		}
	}
	return nil
}
