// Package pixel is the public API of the PIXEL photonic neural-network
// accelerator library — a full reproduction of "PIXEL: Photonic Neural
// Network Accelerator" (Shiflett, Wright, Karanth, Louri; HPCA 2020).
//
// The library has two halves, both reachable from this package:
//
//   - A functional simulator: the three MAC designs — EE (electrical
//     Stripes bit-serial), OE (optical multiply, electrical accumulate)
//     and OO (optical multiply and accumulate through cascaded MZIs) —
//     computing real products and dot products, bit-exactly, over a
//     discrete-time optical circuit simulation. See NewMAC.
//
//   - An architectural cost model: energy, latency, area and EDP of a
//     full accelerator running CNN inference (VGG16, AlexNet, ZFNet,
//     ResNet-34, LeNet, GoogLeNet), which regenerates every table and
//     figure of the paper's evaluation. See Evaluate and RunExperiment.
package pixel

import (
	"context"
	"fmt"
	"io"

	"pixel/internal/arch"
	"pixel/internal/bitserial"
	"pixel/internal/cnn"
	"pixel/internal/eval"
	"pixel/internal/omac"
	"pixel/internal/optsim"
)

// Design selects a MAC implementation.
type Design int

const (
	// EE is the all-electrical Stripes baseline.
	EE Design = iota
	// OE multiplies optically and accumulates electrically.
	OE
	// OO multiplies and accumulates optically.
	OO
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case EE:
		return "EE"
	case OE:
		return "OE"
	case OO:
		return "OO"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// arch maps the public enum onto the cost model's, surfacing
// ErrUnknownDesign for values outside it instead of passing garbage
// downstream.
func (d Design) arch() (arch.Design, error) {
	switch d {
	case EE:
		return arch.EE, nil
	case OE:
		return arch.OE, nil
	case OO:
		return arch.OO, nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownDesign, int(d))
	}
}

// Designs lists all three designs in presentation order.
func Designs() []Design { return []Design{EE, OE, OO} }

// ParseDesign maps a design name ("EE", "OE", "OO") back to its enum
// value — the inverse of Design.String. Unrecognized names surface
// ErrUnknownDesign.
func ParseDesign(s string) (Design, error) {
	switch s {
	case "EE":
		return EE, nil
	case "OE":
		return OE, nil
	case "OO":
		return OO, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownDesign, s)
	}
}

// Networks returns the names of the six CNNs of the paper's evaluation.
func Networks() []string {
	nets := cnn.All()
	out := make([]string, len(nets))
	for i, n := range nets {
		out[i] = n.Name
	}
	return out
}

// Result is the cost of one full CNN inference under a design point.
type Result struct {
	Network string
	Design  Design
	Lanes   int
	Bits    int

	// EnergyJ is the total inference energy [J]; Breakdown itemizes it
	// by component (mul, add, act, o/e, comm, laser).
	EnergyJ   float64
	Breakdown map[string]float64
	// LatencyS is the inference latency [s].
	LatencyS float64
	// EDP is the energy-delay product [J*s].
	EDP float64
	// PerLayer lists each layer's latency [s] in network order.
	PerLayer []LayerResult
}

// LayerResult is one layer's share of the inference cost.
type LayerResult struct {
	Name     string
	EnergyJ  float64
	LatencyS float64
}

// Evaluate prices a full inference of the named network (see Networks)
// under the given design, lane count and bits/lane, through the shared
// memoized engine.
//
// Deprecated: use EvaluateContext (or Point.Evaluate); the positional
// argument list predates the Point-struct API surface.
func Evaluate(network string, d Design, lanes, bits int) (Result, error) {
	return EvaluateContext(context.Background(), network, Point{Design: d, Lanes: lanes, Bits: bits})
}

// Area returns the MAC-unit ensemble area [m^2] of a design point.
//
// Deprecated: use AreaContext (or Point.Area); the positional argument
// list predates the Point-struct API surface.
func Area(d Design, lanes, bits int) (float64, error) {
	return AreaContext(context.Background(), Point{Design: d, Lanes: lanes, Bits: bits})
}

// Experiments returns the ids of the paper artifacts this library
// regenerates: "table1", "fig4" .. "fig10", "table2".
func Experiments() []string {
	exps := eval.Experiments()
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

// RunExperiment regenerates one paper artifact by id and writes it to w
// as an aligned ASCII table, or CSV when csv is true.
func RunExperiment(id string, w io.Writer, csv bool) error {
	e, err := eval.ByID(id)
	if err != nil {
		return err
	}
	tab, err := e.Run()
	if err != nil {
		return fmt.Errorf("pixel: experiment %s: %w", id, err)
	}
	if csv {
		return tab.RenderCSV(w)
	}
	return tab.Render(w)
}

// Headlines reports the paper's summary claims next to this library's
// measured values.
type Headlines struct {
	// Improvements are fractions in [0,1]: 0.484 means 48.4% better.
	OEEDPImprovement float64 // paper: 0.484
	OOEDPImprovement float64 // paper: 0.739
	MulSaving        float64 // paper: 0.949
	AddSaving        float64 // paper: 0.538
	ZFNetConv2VsEE   float64 // paper: 0.319
	ZFNetConv2VsOE   float64 // paper: 0.186
}

// MeasureHeadlines computes the headline numbers from the frozen model.
func MeasureHeadlines() Headlines {
	h := eval.MeasureHeadlines()
	return Headlines{
		OEEDPImprovement: h.OEEDPImprovement,
		OOEDPImprovement: h.OOEDPImprovement,
		MulSaving:        h.MulSaving,
		AddSaving:        h.AddSaving,
		ZFNetConv2VsEE:   h.ZFNetConv2VsEE,
		ZFNetConv2VsOE:   h.ZFNetConv2VsOE,
	}
}

// MAC is a functional multiply-accumulate unit of one of the three
// designs: it computes real values through the simulated datapath
// (optical pulse trains, MRR filters, MZI chains for the optical
// designs) and meters the energy and latency it spends.
type MAC struct {
	design Design
	bits   int
	ee     interface {
		Multiply(a, b uint64) (uint64, error)
		Dot(a, b []uint64) (uint64, error)
	}
	oe  *omac.OEUnit
	oo  *omac.OOUnit
	led *optsim.Ledger
}

// NewMAC builds a functional MAC for unsigned operands of the given
// precision (1..16 bits) able to accumulate dot products of up to
// `terms` element pairs.
func NewMAC(d Design, bits, terms int) (*MAC, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("%w: bits %d out of range [1,16]", ErrBadPrecision, bits)
	}
	m := &MAC{design: d, bits: bits, led: optsim.NewLedger()}
	cfg := omac.DefaultConfig(4, bits)
	var err error
	switch d {
	case EE:
		m.ee, err = newEEAdapter(bits, terms)
	case OE:
		m.oe, err = omac.NewOEUnit(cfg, terms)
	case OO:
		m.oo, err = omac.NewOOUnit(cfg, terms)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownDesign, int(d))
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Design returns the MAC's design.
func (m *MAC) Design() Design { return m.design }

// Multiply computes a*b through the design's datapath.
func (m *MAC) Multiply(a, b uint64) (uint64, error) {
	switch m.design {
	case EE:
		return m.ee.Multiply(a, b)
	case OE:
		return m.oe.Multiply(a, b, m.led)
	default:
		return m.oo.Multiply(a, b, m.led)
	}
}

// DotProduct computes the inner product of two equal-length vectors.
func (m *MAC) DotProduct(a, b []uint64) (uint64, error) {
	switch m.design {
	case EE:
		return m.ee.Dot(a, b)
	case OE:
		return m.oe.DotProduct(a, b, m.led)
	default:
		return m.oo.DotProduct(a, b, m.led)
	}
}

// SignedDotProduct computes a signed inner product. Operands must fit
// the MAC's precision as two's-complement values; on the optical
// designs they travel offset-binary encoded (light carries no sign)
// with an exact electrical correction.
func (m *MAC) SignedDotProduct(a, b []int64) (int64, error) {
	switch m.design {
	case EE:
		se, err := bitserial.NewSignedEngine(m.bits, maxInt(len(a), 1))
		if err != nil {
			return 0, err
		}
		v, _, err := se.DotProduct(a, b)
		return v, err
	case OE:
		return m.oe.SignedDotProduct(a, b, m.led)
	default:
		return m.oo.SignedDotProduct(a, b, m.led)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// EnergyJ returns the energy metered so far [J], by component. The EE
// design's functional adapter does not meter energy (use Evaluate for
// EE costs); it returns an empty map.
func (m *MAC) EnergyJ() map[string]float64 {
	if m.led == nil {
		return map[string]float64{}
	}
	return m.led.Breakdown()
}

// LatencyS returns the datapath latency metered so far [s].
func (m *MAC) LatencyS() float64 { return m.led.Latency() }
