// Package montecarlo connects stochastic device variation to
// end-to-end CNN accuracy: a seeded, parallel Monte-Carlo engine that
// samples per-trial physical perturbations (MRR resonance offset,
// ambient-temperature excursion through the thermal tuning loop, MZI
// split-ratio error, comparator threshold offset), maps them to
// per-bit error rates for each PIXEL datapath, injects those errors
// into whole-network bit-serial inference, and aggregates yield curves
// — the fraction of fabricated-and-deployed parts whose inference
// error stays within budget as variation grows. See docs/VARIATION.md.
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"

	"pixel/internal/arch"
	"pixel/internal/bitserial"
	"pixel/internal/photonics"
	"pixel/internal/phy"
	"pixel/internal/protect"
	"pixel/internal/thermal"
)

// MinFlipProb is the floor under which a computed bit-error
// probability is treated as exactly zero. The nominal (unperturbed)
// operating point lands around 1e-21 — far below one error per year of
// inference — so clamping keeps the σ=0 engine bit-identical to the
// electrical ground truth instead of "correct with probability
// 1-1e-21", which is what the paper's functional-correctness claim
// assumes anyway.
const MinFlipProb = 1e-15

// VariationModel describes the stochastic device variation of one
// fabricated-and-deployed part. Each σ is the standard deviation of a
// per-trial Gaussian draw; Scale multiplies all of them, which is the
// σ axis of a yield sweep.
type VariationModel struct {
	// ResonanceSigma is the per-trial MRR resonance offset σ [m]: the
	// post-trim fabrication misalignment between a ring and its WDM
	// channel that the heater bias does not absorb.
	ResonanceSigma float64
	// AmbientSigma is the ambient-temperature excursion σ [K] the
	// thermal tuning loop must ride; the residual after TuningSteps of
	// closed-loop control (heater saturation included) detunes the
	// rings.
	AmbientSigma float64
	// SplitSigma is the per-stage MZI split-ratio error σ (fraction off
	// the nominal 50/50) of the OO design's accumulation chain.
	SplitSigma float64
	// ThresholdSigma is the comparator threshold offset σ of the
	// amplitude ladder, as a fraction of one rung.
	ThresholdSigma float64

	// Ring and BiasKelvin configure the thermal tuning loop: each trial
	// builds a thermal.Ring with the fabrication bias and runs
	// TuningSteps control iterations against the sampled ambient
	// excursion before measuring the residual detuning.
	Ring        thermal.RingModel
	BiasKelvin  float64
	TuningSteps int

	// RingFWHM is the ring drop response's full width at half maximum
	// [m]; detuning rolls the optical AND's "one" level off this
	// Lorentzian (squared — the AND filter is a double ring).
	RingFWHM float64
	// Receiver converts a degraded "one" power into a bit-error rate.
	Receiver photonics.ReceiverNoise
	// OnePower is the nominal received "one" power [W] at the detector.
	OnePower float64
	// AccumStages is the depth of the OO accumulation chain (one MZI
	// stage per operand bit); split error compounds across it.
	AccumStages int
}

// DefaultVariationModel returns literature-class variation constants,
// calibrated so a σ-scale sweep over [0, 5] walks the demo LeNet from
// full yield to near-total loss (the regime of the paper's Section
// II-A1 thermal-sensitivity concern).
func DefaultVariationModel() VariationModel {
	return VariationModel{
		ResonanceSigma: 0.04 * phy.Nanometer,
		AmbientSigma:   2.0,
		SplitSigma:     0.004,
		ThresholdSigma: 0.015,
		Ring:           thermal.DefaultRingModel(),
		BiasKelvin:     10,
		TuningSteps:    8,
		RingFWHM:       0.155 * phy.Nanometer,
		Receiver:       photonics.DefaultReceiverNoise(),
		OnePower:       20 * phy.Microwatt,
		AccumStages:    8,
	}
}

// Validate reports an error for non-physical models. It also requires
// the *nominal* operating point to sit below MinFlipProb, because the
// σ=0 degeneracy (perturbed engine ≡ electrical ground truth) only
// holds when the unperturbed link is error-free.
func (m VariationModel) Validate() error {
	switch {
	case m.ResonanceSigma < 0 || m.AmbientSigma < 0 || m.SplitSigma < 0 || m.ThresholdSigma < 0:
		return fmt.Errorf("montecarlo: variation sigmas must be non-negative")
	case m.RingFWHM <= 0:
		return fmt.Errorf("montecarlo: ring FWHM must be positive")
	case m.OnePower <= 0:
		return fmt.Errorf("montecarlo: one-level power must be positive")
	case m.BiasKelvin < 0:
		return fmt.Errorf("montecarlo: heater bias must be non-negative")
	case m.TuningSteps < 0:
		return fmt.Errorf("montecarlo: tuning steps must be non-negative")
	case m.AccumStages < 1:
		return fmt.Errorf("montecarlo: accumulation depth must be >= 1")
	}
	if err := m.Ring.Validate(); err != nil {
		return err
	}
	if ber := m.Receiver.BER(m.OnePower); ber >= MinFlipProb {
		return fmt.Errorf("montecarlo: nominal BER %.3g at %s is not error-free (>= %g); raise OnePower",
			ber, phy.FormatPower(m.OnePower), MinFlipProb)
	}
	return nil
}

// Scale returns the model with every variation σ multiplied by s —
// the σ axis of a yield sweep. Scale(0) is the σ=0 degenerate model.
func (m VariationModel) Scale(s float64) VariationModel {
	m.ResonanceSigma *= s
	m.AmbientSigma *= s
	m.SplitSigma *= s
	m.ThresholdSigma *= s
	return m
}

// Perturbation is one trial's sampled physical reality.
type Perturbation struct {
	// ResonanceOffset is the ring's resonance misalignment [m].
	ResonanceOffset float64
	// AmbientOffset is the ambient-temperature excursion [K].
	AmbientOffset float64
	// SplitError is the per-stage MZI split-ratio error (fraction).
	SplitError float64
	// ThresholdOffset is the comparator ladder offset (fraction of one
	// rung).
	ThresholdOffset float64
}

// Sample draws one trial's perturbation. It always consumes exactly
// four normal variates, so trials stay stream-aligned across σ scales:
// the same trial index draws the same underlying normals at every σ,
// only scaled — the common-random-numbers coupling that makes yield
// curves degrade monotonically instead of resampling noise.
func (m VariationModel) Sample(rng *rand.Rand) Perturbation {
	return Perturbation{
		ResonanceOffset: m.ResonanceSigma * rng.NormFloat64(),
		AmbientOffset:   m.AmbientSigma * rng.NormFloat64(),
		SplitError:      m.SplitSigma * rng.NormFloat64(),
		ThresholdOffset: m.ThresholdSigma * rng.NormFloat64(),
	}
}

// mulFlipProb maps a perturbation to the per-bit error probability of
// the optical multiply path: thermal residual plus fabrication offset
// detune the MRR AND filters, the double-ring Lorentzian rolls the
// "one" level off, and the receiver turns the degraded eye into a BER.
func (m VariationModel) mulFlipProb(p Perturbation) float64 {
	residual := 0.0
	if m.AmbientSigma > 0 || p.AmbientOffset != 0 {
		ring, err := thermal.NewRing(m.Ring, m.BiasKelvin)
		if err == nil {
			for i := 0; i < m.TuningSteps; i++ {
				ring.Step(p.AmbientOffset)
			}
			residual = math.Abs(ring.Detuning(p.AmbientOffset))
		}
	}
	delta := math.Abs(p.ResonanceOffset) + residual
	x := 2 * delta / m.RingFWHM
	t1 := 1 / (1 + x*x) // single-ring Lorentzian power transmission
	return clampProb(m.Receiver.BER(m.OnePower * t1 * t1))
}

// accFlipProb maps a perturbation to the per-bit error probability of
// the optical accumulate path: comparator threshold offset eats eye
// margin directly, split-ratio error compounds across the MZI chain,
// and the shrunken amplitude margin (squared — coherent power goes as
// amplitude²) prices out as a BER.
func (m VariationModel) accFlipProb(p Perturbation) float64 {
	margin := 1 - 2*math.Abs(p.ThresholdOffset) - float64(m.AccumStages)*math.Abs(p.SplitError)
	if margin <= 0 {
		return clampProb(m.Receiver.BER(0))
	}
	return clampProb(m.Receiver.BER(m.OnePower * margin * margin))
}

// clampProb floors negligible probabilities to exactly zero and caps
// at 0.5 (a channel noisier than that carries no information anyway).
func clampProb(p float64) float64 {
	if math.IsNaN(p) || p < MinFlipProb {
		return 0
	}
	if p > 0.5 {
		return 0.5
	}
	return p
}

// ProtectedRates maps a perturbation to flip rates after a mitigation
// derate: the resonance trim shrinks the sampled fabrication offset,
// extra tuning steps re-converge the thermal loop, the threshold guard
// re-centres the comparator ladder, and the deeper bias widens the
// heater's authority window. The derate acts on this trial's *sampled*
// physical reality — the same underlying normals as the unprotected
// rates — so the protected and unprotected curves share their random
// draws (common random numbers).
func (m VariationModel) ProtectedRates(p Perturbation, d arch.Design, dr protect.Derate) (bitserial.FlipRates, error) {
	if dr.TrimFactor > 0 {
		p.ResonanceOffset *= dr.TrimFactor
	}
	m.TuningSteps += dr.ExtraTuningSteps
	if dr.ThresholdGuard > 1 {
		p.ThresholdOffset /= dr.ThresholdGuard
	}
	m.BiasKelvin += dr.ExtraBiasKelvin
	return m.Rates(p, d)
}

// Rates maps one trial's perturbation to the bit-flip rates of the
// given design — where each datapath is physically exposed, per the
// paper's Figure 2: EE is all-electrical and immune; OE multiplies
// optically (MRR AND + OOK detection) but accumulates electrically;
// OO is exposed on both the multiply and the MZI/amplitude-ladder
// accumulate.
func (m VariationModel) Rates(p Perturbation, d arch.Design) (bitserial.FlipRates, error) {
	switch d {
	case arch.EE:
		return bitserial.FlipRates{}, nil
	case arch.OE:
		return bitserial.FlipRates{Mul: m.mulFlipProb(p)}, nil
	case arch.OO:
		return bitserial.FlipRates{Mul: m.mulFlipProb(p), Acc: m.accFlipProb(p)}, nil
	default:
		return bitserial.FlipRates{}, fmt.Errorf("montecarlo: unknown design %d", int(d))
	}
}
