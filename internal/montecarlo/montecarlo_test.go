package montecarlo

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"pixel/internal/arch"
	"pixel/internal/bitserial"
	"pixel/internal/qnn"
)

// TestSigmaZeroDegeneracyOnLeNet is the ISSUE's first satellite: a
// perturbed engine whose variances are all zero must run the LeNet
// golden network bit-identically to bitserial.FastEngine, end to end
// through the whole model.
func TestSigmaZeroDegeneracyOnLeNet(t *testing.T) {
	net, err := BuildNetwork("lenet")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := bitserial.NewFastEngine(net.Bits, net.Terms)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Model.Run(net.Input, stripesDotter{fast})
	if err != nil {
		t.Fatal(err)
	}

	// Sample a σ=0 perturbation exactly the way Run does, map it to
	// rates, and drive the perturbed engine through the same model.
	model := DefaultVariationModel().Scale(0)
	pert := model.Sample(rand.New(rand.NewSource(trialSeed(1, 0, streamPerturb))))
	rates, err := model.Rates(pert, arch.OO)
	if err != nil {
		t.Fatal(err)
	}
	if !rates.Zero() {
		t.Fatalf("σ=0 rates %+v, want zero", rates)
	}
	pe, err := bitserial.NewPerturbedEngine(net.Bits, net.Terms, rates,
		rand.New(rand.NewSource(2)), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := net.Model.Run(net.Input, stripesDotter{pe})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("σ=0 out[%d] = %d, want %d (perturbed engine not degenerate)",
				i, got.Data[i], want.Data[i])
		}
	}
	if pe.InjectedFlips() != 0 {
		t.Fatalf("σ=0 engine injected %d flips", pe.InjectedFlips())
	}

	// And through the full Monte-Carlo path: every σ=0 trial yields.
	rep, err := Run(context.Background(), Spec{
		Model: net.Model, Input: net.Input, Design: arch.OO,
		Bits: net.Bits, Terms: net.Terms,
		Variation: DefaultVariationModel(),
		Sigmas:    []float64{0},
		Trials:    8,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Points[0]
	if p.Yield != 1 || p.ArgmaxRate != 1 || p.MaxMismatch != 0 || p.CleanTrials != 8 {
		t.Fatalf("σ=0 point %+v, want full yield with 8 clean trials", p)
	}
	if !reflect.DeepEqual(rep.Baseline, want.Data) {
		t.Fatal("report baseline differs from FastEngine output")
	}
}

func tinySpec(t *testing.T) Spec {
	t.Helper()
	net, err := BuildNetwork("tiny")
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Model: net.Model, Input: net.Input, Design: arch.OO,
		Bits: net.Bits, Terms: net.Terms,
		Variation: DefaultVariationModel(),
		Sigmas:    []float64{0, 0.5, 1, 2, 4},
		Trials:    24,
		Seed:      7,
	}
}

// TestDeterministicAcrossWorkers is the ISSUE's second satellite: the
// same root seed must produce the identical report at Workers = 1, 4
// and GOMAXPROCS. Run under -race this also proves the trial pool
// clean.
func TestDeterministicAcrossWorkers(t *testing.T) {
	spec := tinySpec(t)
	var ref *Report
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		spec.Workers = w
		rep, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = rep
			continue
		}
		if !reflect.DeepEqual(rep, ref) {
			t.Fatalf("workers=%d report differs:\n%+v\nwant\n%+v", w, rep.Points, ref.Points)
		}
	}
}

// TestYieldCurveDegradesMonotonically pins the common-random-numbers
// design: for a fixed seed, yield never recovers as σ grows, and the
// curve actually moves (full yield at σ=0, lossy at the top).
func TestYieldCurveDegradesMonotonically(t *testing.T) {
	spec := tinySpec(t)
	spec.Sigmas = []float64{0, 0.5, 1, 1.5, 2, 3, 4, 5}
	spec.Trials = 48
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, p := range rep.Points {
		if p.Yield > prev {
			t.Errorf("yield(σ=%g) = %g > yield at previous σ = %g: curve not monotone", p.Sigma, p.Yield, prev)
		}
		prev = p.Yield
	}
	if rep.Points[0].Yield != 1 {
		t.Errorf("σ=0 yield %g, want 1", rep.Points[0].Yield)
	}
	last := rep.Points[len(rep.Points)-1]
	if last.Yield > 0.5 {
		t.Errorf("σ=%g yield %g; variation model too forgiving for the sweep to mean anything", last.Sigma, last.Yield)
	}
	if last.MeanInjectedBER <= 0 {
		t.Errorf("σ=%g injected BER %g, want > 0", last.Sigma, last.MeanInjectedBER)
	}
}

// TestDesignExposureOrdering: at the same σ the immune EE design must
// out-yield OE, which (weakly) out-yields the doubly exposed OO.
func TestDesignExposureOrdering(t *testing.T) {
	spec := tinySpec(t)
	spec.Sigmas = []float64{3}
	spec.Trials = 32
	yields := map[arch.Design]float64{}
	for _, d := range arch.Designs() {
		spec.Design = d
		rep, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		yields[d] = rep.Points[0].Yield
	}
	if yields[arch.EE] != 1 {
		t.Errorf("EE yield %g, want 1 (immune)", yields[arch.EE])
	}
	if yields[arch.OE] < yields[arch.OO] {
		t.Errorf("OE yield %g < OO yield %g; extra exposure should not help", yields[arch.OE], yields[arch.OO])
	}
	if yields[arch.EE] < yields[arch.OE] {
		t.Errorf("EE yield %g < OE yield %g", yields[arch.EE], yields[arch.OE])
	}
}

// TestRunCancellation: a cancelled context aborts the sweep.
func TestRunCancellation(t *testing.T) {
	spec := tinySpec(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, spec); err == nil {
		t.Fatal("cancelled context should abort the run")
	}
}

// TestSpecValidation covers the rejection paths.
func TestSpecValidation(t *testing.T) {
	good := tinySpec(t)
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"nil model", func(s *Spec) { s.Model = nil }},
		{"nil input", func(s *Spec) { s.Input = nil }},
		{"no trials", func(s *Spec) { s.Trials = 0 }},
		{"no sigmas", func(s *Spec) { s.Sigmas = nil }},
		{"negative sigma", func(s *Spec) { s.Sigmas = []float64{-1} }},
		{"bad budget", func(s *Spec) { s.ErrorBudget = 1.5 }},
		{"bad design", func(s *Spec) { s.Design = arch.Design(9) }},
		{"bad bits", func(s *Spec) { s.Bits = 0 }},
		{"bad variation", func(s *Spec) { s.Variation.RingFWHM = -1 }},
	}
	for _, tc := range cases {
		s := good
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

// TestBuildNetwork covers the registry.
func TestBuildNetwork(t *testing.T) {
	if _, err := BuildNetwork("no-such-net"); err == nil {
		t.Error("unknown network should error")
	}
	for _, name := range Networks() {
		net, err := BuildNetwork(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The advertised geometry must actually run the network.
		fast, err := bitserial.NewFastEngine(net.Bits, net.Terms)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := net.Model.Run(net.Input, stripesDotter{fast}); err != nil {
			t.Fatalf("%s: inference: %v", name, err)
		}
	}
	// Two builds of the same name are the same network (fixed seed).
	a, _ := BuildNetwork("lenet")
	b, _ := BuildNetwork("LeNet")
	if !reflect.DeepEqual(a.Input.Data, b.Input.Data) {
		t.Error("BuildNetwork is not deterministic across calls/case")
	}
}

// TestStripesDotterIsNotBatched guards the determinism contract: if
// the adapter ever grows a DotProducts entry point, conv layers would
// bypass the serial per-window path the stateful engine requires.
func TestStripesDotterIsNotBatched(t *testing.T) {
	var d qnn.Dotter = stripesDotter{}
	if _, ok := d.(qnn.BatchDotter); ok {
		t.Fatal("stripesDotter must stay a plain Dotter")
	}
}
