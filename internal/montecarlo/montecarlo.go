package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"pixel/internal/arch"
	"pixel/internal/bitserial"
	"pixel/internal/protect"
	"pixel/internal/qnn"
	"pixel/internal/tensor"
)

// Spec configures one Monte-Carlo yield run: N independent virtual
// parts are fabricated per σ scale, each samples a Perturbation, maps
// it to the design's bit-flip rates, and runs the whole network
// through a fault-injecting bit-serial engine.
type Spec struct {
	// Model and Input are the network and stimulus; the unperturbed
	// FastEngine run of the pair is the trial-pass baseline.
	Model *qnn.Model
	Input *tensor.Tensor
	// Design selects the exposed datapaths (EE immune, OE multiply
	// only, OO multiply and accumulate).
	Design arch.Design
	// Bits and Terms size the bit-serial engines, as in
	// bitserial.NewFastEngine.
	Bits  int
	Terms int
	// Variation is the base (σ-scale 1) device variation model.
	Variation VariationModel
	// Sigmas is the σ-scale axis of the yield curve; each entry
	// multiplies every variation σ.
	Sigmas []float64
	// Trials is the number of virtual parts per σ point.
	Trials int
	// Seed is the root seed; trial t derives its perturbation and
	// injection streams from (Seed, t) alone, independent of σ index
	// and worker schedule, so runs are bit-identical at any Workers.
	Seed int64
	// Workers sizes the trial-level pool; <= 0 means GOMAXPROCS.
	Workers int
	// ErrorBudget is the largest tolerated fraction of output elements
	// differing from the baseline for a trial to count as yielding;
	// 0 demands bit-exact inference.
	ErrorBudget float64
	// Protection, when non-nil, makes the run produce a second, paired
	// yield curve: every trial re-runs its inference through the scheme
	// — same perturbation draw, same fault-stream seeds (common random
	// numbers) — so the protected and unprotected curves differ only by
	// the mitigation, not by resampling noise.
	Protection protect.Scheme
}

// Validate reports an error for an unrunnable spec.
func (s Spec) Validate() error {
	switch {
	case s.Model == nil || s.Input == nil:
		return errors.New("montecarlo: spec needs a model and an input")
	case s.Trials < 1:
		return fmt.Errorf("montecarlo: trials %d < 1", s.Trials)
	case len(s.Sigmas) == 0:
		return errors.New("montecarlo: empty sigma axis")
	case s.ErrorBudget < 0 || s.ErrorBudget > 1:
		return fmt.Errorf("montecarlo: error budget %v out of [0,1]", s.ErrorBudget)
	}
	for _, sc := range s.Sigmas {
		if sc < 0 {
			return fmt.Errorf("montecarlo: negative sigma scale %v", sc)
		}
	}
	switch s.Design {
	case arch.EE, arch.OE, arch.OO:
	default:
		return fmt.Errorf("montecarlo: unknown design %d", int(s.Design))
	}
	if err := s.Variation.Validate(); err != nil {
		return err
	}
	if s.Protection != nil {
		if err := s.Protection.Validate(); err != nil {
			return err
		}
	}
	// Engine geometry is validated once here rather than per trial.
	if _, err := bitserial.NewFastEngine(s.Bits, s.Terms); err != nil {
		return err
	}
	return nil
}

// SigmaPoint is the aggregate of all trials at one σ scale.
type SigmaPoint struct {
	// Sigma is the σ scale of this point.
	Sigma float64 `json:"sigma"`
	// Yield is the fraction of trials whose output mismatch stayed
	// within the error budget.
	Yield float64 `json:"yield"`
	// ArgmaxRate is the fraction of trials whose output argmax (the
	// classification) matched the baseline.
	ArgmaxRate float64 `json:"argmax_rate"`
	// MeanMismatch, P50Mismatch, P95Mismatch and MaxMismatch summarize
	// the distribution of per-trial output-mismatch fractions.
	MeanMismatch float64 `json:"mean_mismatch"`
	P50Mismatch  float64 `json:"p50_mismatch"`
	P95Mismatch  float64 `json:"p95_mismatch"`
	MaxMismatch  float64 `json:"max_mismatch"`
	// MeanInjectedBER is the realized injected bit-error rate averaged
	// over trials.
	MeanInjectedBER float64 `json:"mean_injected_ber"`
	// CleanTrials counts trials whose sampled perturbation mapped to
	// exactly zero flip rates (no exposure at all).
	CleanTrials int `json:"clean_trials"`
}

// ProtectedPoint is the aggregate of the protected re-runs at one σ
// scale: the same curve statistics as the unprotected SigmaPoint plus
// the mitigation-work counters the scheme accumulated.
type ProtectedPoint struct {
	SigmaPoint
	// Calls, Retries, Disagreements and GaveUp sum the schemes'
	// counters over every trial at this σ (see protect.Counters).
	Calls         int64 `json:"calls"`
	Retries       int64 `json:"retries"`
	Disagreements int64 `json:"disagreements"`
	GaveUp        int64 `json:"gave_up"`
	// RetryFactor is 1 + sequential re-executions per protected call —
	// the measured execution overhead a detect-and-retry scheme feeds
	// into the arch cost model.
	RetryFactor float64 `json:"retry_factor"`
}

// Report is the result of one Monte-Carlo run.
type Report struct {
	// Design, Bits, Trials, Seed and ErrorBudget echo the spec.
	Design      string  `json:"design"`
	Bits        int     `json:"bits"`
	Trials      int     `json:"trials"`
	Seed        int64   `json:"seed"`
	ErrorBudget float64 `json:"error_budget"`
	// Baseline is the unperturbed network output.
	Baseline []int64 `json:"baseline"`
	// Points is the yield curve, one entry per σ scale in spec order.
	Points []SigmaPoint `json:"points"`
	// Protection names the mitigation scheme; Protected is its paired
	// yield curve on the same σ axis. Both empty without a scheme.
	Protection string           `json:"protection,omitempty"`
	Protected  []ProtectedPoint `json:"protected,omitempty"`
}

// MaxRetryFactor returns the largest per-point retry factor of the
// protected curve (1 without one) — the worst-case measured execution
// overhead across the axis.
func (r *Report) MaxRetryFactor() float64 {
	max := 1.0
	for _, p := range r.Protected {
		if p.RetryFactor > max {
			max = p.RetryFactor
		}
	}
	return max
}

// MinYield returns the smallest yield on the curve — the bottom of the
// degradation, usually the largest σ.
func (r *Report) MinYield() float64 {
	min := 1.0
	for _, p := range r.Points {
		if p.Yield < min {
			min = p.Yield
		}
	}
	return min
}

// stripesDotter adapts a Stripes engine into a qnn.Dotter, dropping
// the Stats (yield analysis cares about values, not work counts). It
// deliberately does NOT implement qnn.BatchDotter: the perturbed
// engine is stateful, and the per-window fallback keeps every dot
// product flowing through one serial, deterministic call sequence.
type stripesDotter struct{ e bitserial.Stripes }

func (s stripesDotter) DotProduct(a, b []uint64) (uint64, error) {
	v, _, err := s.e.DotProduct(a, b)
	return v, err
}

// splitmix64 is the SplitMix64 finalizer — a bijective avalanche mix
// used to derive independent per-trial seeds from (root, trial,
// stream) without any stream sharing prefixes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stream indices of a trial's three independent rand streams.
const (
	streamPerturb = iota
	streamMul
	streamAcc
	streamCount
)

// trialSeed derives the seed of stream `stream` for trial `trial`
// from the root seed. σ scale is deliberately absent: the same trial
// draws the same underlying randomness at every σ, the
// common-random-numbers coupling behind monotone yield curves.
func trialSeed(root int64, trial, stream int) int64 {
	return int64(splitmix64(splitmix64(uint64(root)) + uint64(trial)*streamCount + uint64(stream)))
}

// trialResult is one virtual part's outcome — and, when the spec
// carries a protection scheme, the outcome of the same part's
// protected re-run from the same random draws.
type trialResult struct {
	mismatch    float64
	argmaxOK    bool
	injectedBER float64
	clean       bool

	protMismatch    float64
	protArgmaxOK    bool
	protInjectedBER float64
	protClean       bool
	protCounters    protect.Counters
}

// Hooks observes a (resumable) run. All callbacks are serialized —
// they never run concurrently with themselves or each other — and fire
// from worker goroutines, so keep them fast.
type Hooks struct {
	// OnTrial fires after each trial slot completes with the cumulative
	// completed count (restored slots included) and the total.
	OnTrial func(done, total int)
	// OnPoint fires when every trial of one σ slot has completed, with
	// the aggregated point (and the paired protected point when the
	// spec carries a scheme). Rows fully restored from a snapshot are
	// reported up front, in axis order, before any new trial runs.
	OnPoint func(index int, point SigmaPoint, protected *ProtectedPoint)
}

// Run executes the Monte-Carlo sweep: the baseline inference once,
// then Trials×len(Sigmas) perturbed inferences across a worker pool.
// Each trial builds its own PerturbedEngine (stateful, serial within
// the trial) and the flattened (σ, trial) jobs land in fixed slots, so
// the report is bit-identical for any Workers value.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	return RunState(ctx, spec, NewState(spec, ""), Hooks{})
}

// RunState is Run over an explicit slot store: slots already completed
// in st (restored from a checkpoint) are skipped, the rest execute
// across the worker pool, and the final report aggregates both — which
// is why an interrupted-then-resumed run is byte-identical to an
// uninterrupted one at any worker count. st may be snapshotted
// concurrently while RunState is in flight.
func RunState(ctx context.Context, spec Spec, st *State, hooks Hooks) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	nSigma := len(spec.Sigmas)
	jobs := nSigma * spec.Trials
	if st == nil {
		st = NewState(spec, "")
	}
	if st.total != jobs {
		return nil, fmt.Errorf("%w: state has %d slots, spec needs %d", ErrSnapshotMismatch, st.total, jobs)
	}
	fast, err := bitserial.NewFastEngine(spec.Bits, spec.Terms)
	if err != nil {
		return nil, err
	}
	base, err := spec.Model.RunContext(ctx, spec.Input, stripesDotter{fast}, qnn.RunOptions{Workers: spec.Workers})
	if err != nil {
		return nil, fmt.Errorf("montecarlo: baseline inference: %w", err)
	}
	baseline := append([]int64(nil), base.Data...)
	if err := st.setBaseline(baseline); err != nil {
		return nil, err
	}
	baseArgmax := argmax(baseline)

	// Per-σ-row outstanding counts drive OnPoint; rows the snapshot
	// already completed are announced immediately, in axis order.
	var hookMu sync.Mutex
	rowLeft := make([]int, nSigma)
	for i := range rowLeft {
		rowLeft[i] = spec.Trials
		for t := 0; t < spec.Trials; t++ {
			if st.isDone(i*spec.Trials + t) {
				rowLeft[i]--
			}
		}
	}
	emitPoint := func(i int) {
		if hooks.OnPoint == nil {
			return
		}
		row := st.results[i*spec.Trials : (i+1)*spec.Trials]
		var prot *ProtectedPoint
		if spec.Protection != nil {
			p := aggregateProtected(spec.Sigmas[i], row, spec.ErrorBudget)
			prot = &p
		}
		hooks.OnPoint(i, aggregate(spec.Sigmas[i], row, spec.ErrorBudget), prot)
	}
	for i := 0; i < nSigma; i++ {
		if rowLeft[i] == 0 {
			emitPoint(i)
		}
	}
	if done, _ := st.Progress(); done > 0 && hooks.OnTrial != nil {
		hooks.OnTrial(done, jobs)
	}

	workers := spec.Workers
	if workers <= 0 || workers > jobs {
		workers = clampWorkers(workers, jobs)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, jobs)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1))
				if j >= jobs {
					return
				}
				if st.isDone(j) {
					continue // restored from a checkpoint
				}
				if err := runCtx.Err(); err != nil {
					errs[j] = err
					return
				}
				sigmaIdx, trial := j/spec.Trials, j%spec.Trials
				res, err := runTrial(runCtx, spec, spec.Sigmas[sigmaIdx], trial, baseline, baseArgmax)
				if err != nil {
					errs[j] = err
					cancel()
					return
				}
				completed := st.set(j, res)
				if hooks.OnTrial != nil || hooks.OnPoint != nil {
					hookMu.Lock()
					if hooks.OnTrial != nil {
						hooks.OnTrial(completed, jobs)
					}
					rowLeft[sigmaIdx]--
					if rowLeft[sigmaIdx] == 0 {
						emitPoint(sigmaIdx)
					}
					hookMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return nil, err
	}
	if cancelled != nil {
		return nil, cancelled
	}

	rep := &Report{
		Design:      spec.Design.String(),
		Bits:        spec.Bits,
		Trials:      spec.Trials,
		Seed:        spec.Seed,
		ErrorBudget: spec.ErrorBudget,
		Baseline:    baseline,
		Points:      make([]SigmaPoint, nSigma),
	}
	for i := range rep.Points {
		rep.Points[i] = aggregate(spec.Sigmas[i], st.results[i*spec.Trials:(i+1)*spec.Trials], spec.ErrorBudget)
	}
	if spec.Protection != nil {
		rep.Protection = spec.Protection.Name()
		rep.Protected = make([]ProtectedPoint, nSigma)
		for i := range rep.Protected {
			rep.Protected[i] = aggregateProtected(spec.Sigmas[i], st.results[i*spec.Trials:(i+1)*spec.Trials], spec.ErrorBudget)
		}
	}
	return rep, nil
}

// runTrial fabricates one virtual part at one σ scale and measures its
// inference against the baseline. With a protection scheme in the spec
// the same part runs twice — unprotected, then through the scheme —
// reusing the identical perturbation draw and fault-stream seeds, so
// the paired curves are a common-random-numbers comparison.
func runTrial(ctx context.Context, spec Spec, sigma float64, trial int, baseline []int64, baseArgmax int) (trialResult, error) {
	model := spec.Variation.Scale(sigma)
	pertRng := rand.New(rand.NewSource(trialSeed(spec.Seed, trial, streamPerturb)))
	pert := model.Sample(pertRng)
	rates, err := model.Rates(pert, spec.Design)
	if err != nil {
		return trialResult{}, err
	}
	var res trialResult
	if rates.Zero() {
		// No exposed datapath flips a bit, so the inference is
		// bit-identical to the baseline (the σ=0 degeneracy pinned by
		// the engine- and model-level tests) — skip the redundant run.
		res.argmaxOK = true
		res.clean = true
	} else {
		eng, err := newTrialEngine(spec, rates, trial)
		if err != nil {
			return trialResult{}, err
		}
		// The engine consumes its streams in datapath order, so the trial
		// itself must run serially; parallelism lives at the trial level.
		out, err := spec.Model.RunContext(ctx, spec.Input, stripesDotter{eng}, qnn.RunOptions{Workers: 1})
		if err != nil {
			return trialResult{}, fmt.Errorf("montecarlo: trial %d at sigma %v: %w", trial, sigma, err)
		}
		res.mismatch = mismatchFraction(out.Data, baseline)
		res.argmaxOK = argmax(out.Data) == baseArgmax
		res.injectedBER = eng.InjectedBER()
	}
	if spec.Protection == nil {
		return res, nil
	}

	// Protected re-run. The derate may change the rates in either
	// direction per trial (e.g. re-biasing the heater trades cold-side
	// authority for hot-side), so it is computed independently of the
	// unprotected branch.
	pRates, err := model.ProtectedRates(pert, spec.Design, spec.Protection.Derate())
	if err != nil {
		return trialResult{}, err
	}
	if pRates.Zero() {
		res.protArgmaxOK = true
		res.protClean = true
		return res, nil
	}
	eng, err := newTrialEngine(spec, pRates, trial)
	if err != nil {
		return trialResult{}, err
	}
	wrapped, err := spec.Protection.Wrap(eng)
	if err != nil {
		return trialResult{}, err
	}
	out, err := spec.Model.RunContext(ctx, spec.Input, stripesDotter{wrapped}, qnn.RunOptions{Workers: 1})
	if err != nil {
		return trialResult{}, fmt.Errorf("montecarlo: protected trial %d at sigma %v: %w", trial, sigma, err)
	}
	res.protMismatch = mismatchFraction(out.Data, baseline)
	res.protArgmaxOK = argmax(out.Data) == baseArgmax
	res.protInjectedBER = eng.InjectedBER()
	if m, ok := wrapped.(protect.Metered); ok {
		res.protCounters = m.Counters()
	}
	return res, nil
}

// newTrialEngine builds the trial's fault-injecting engine; the
// protected re-run rebuilds it with the same stream seeds, which is
// what makes the paired curves share their fault draws.
func newTrialEngine(spec Spec, rates bitserial.FlipRates, trial int) (*bitserial.PerturbedEngine, error) {
	return bitserial.NewPerturbedEngine(spec.Bits, spec.Terms, rates,
		rand.New(rand.NewSource(trialSeed(spec.Seed, trial, streamMul))),
		rand.New(rand.NewSource(trialSeed(spec.Seed, trial, streamAcc))))
}

// mismatchFraction is the fraction of output elements differing from
// the baseline.
func mismatchFraction(out, baseline []int64) float64 {
	mismatched := 0
	for i, v := range out {
		if v != baseline[i] {
			mismatched++
		}
	}
	return float64(mismatched) / float64(len(baseline))
}

// aggregate folds one σ point's trials into curve statistics.
func aggregate(sigma float64, trials []trialResult, budget float64) SigmaPoint {
	p := SigmaPoint{Sigma: sigma}
	mismatches := make([]float64, len(trials))
	for i, t := range trials {
		mismatches[i] = t.mismatch
		if t.mismatch <= budget {
			p.Yield++
		}
		if t.argmaxOK {
			p.ArgmaxRate++
		}
		if t.clean {
			p.CleanTrials++
		}
		p.MeanMismatch += t.mismatch
		p.MeanInjectedBER += t.injectedBER
		if t.mismatch > p.MaxMismatch {
			p.MaxMismatch = t.mismatch
		}
	}
	n := float64(len(trials))
	p.Yield /= n
	p.ArgmaxRate /= n
	p.MeanMismatch /= n
	p.MeanInjectedBER /= n
	sort.Float64s(mismatches)
	p.P50Mismatch = percentile(mismatches, 0.50)
	p.P95Mismatch = percentile(mismatches, 0.95)
	return p
}

// aggregateProtected folds one σ point's protected re-runs into curve
// statistics plus the summed mitigation counters.
func aggregateProtected(sigma float64, trials []trialResult, budget float64) ProtectedPoint {
	conv := make([]trialResult, len(trials))
	for i, t := range trials {
		conv[i] = trialResult{
			mismatch:    t.protMismatch,
			argmaxOK:    t.protArgmaxOK,
			injectedBER: t.protInjectedBER,
			clean:       t.protClean,
		}
	}
	p := ProtectedPoint{SigmaPoint: aggregate(sigma, conv, budget)}
	for _, t := range trials {
		p.Calls += t.protCounters.Calls
		p.Retries += t.protCounters.Retries
		p.Disagreements += t.protCounters.Disagreements
		p.GaveUp += t.protCounters.GaveUp
	}
	p.RetryFactor = 1
	if p.Calls > 0 {
		p.RetryFactor = 1 + float64(p.Retries)/float64(p.Calls)
	}
	return p
}

// percentile reads the q-quantile from sorted data (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// argmax returns the index of the largest element (first on ties).
func argmax(xs []int64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// clampWorkers mirrors the qnn/sweep idiom locally.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
