package montecarlo

import (
	"math/rand"
	"testing"

	"pixel/internal/arch"
	"pixel/internal/phy"
)

func TestDefaultModelValidates(t *testing.T) {
	if err := DefaultVariationModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*VariationModel)
	}{
		{"negative sigma", func(m *VariationModel) { m.SplitSigma = -1 }},
		{"zero fwhm", func(m *VariationModel) { m.RingFWHM = 0 }},
		{"zero power", func(m *VariationModel) { m.OnePower = 0 }},
		{"negative bias", func(m *VariationModel) { m.BiasKelvin = -1 }},
		{"negative steps", func(m *VariationModel) { m.TuningSteps = -1 }},
		{"zero stages", func(m *VariationModel) { m.AccumStages = 0 }},
		{"noisy nominal", func(m *VariationModel) { m.OnePower = 1 * phy.Nanowatt }},
	}
	for _, tc := range cases {
		m := DefaultVariationModel()
		tc.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

// TestScaleZeroSamplesZero: the σ=0 model must sample the all-zero
// perturbation (and still consume its four normals, keeping streams
// aligned across scales).
func TestScaleZeroSamplesZero(t *testing.T) {
	m := DefaultVariationModel().Scale(0)
	rng := rand.New(rand.NewSource(1))
	p := m.Sample(rng)
	if p != (Perturbation{}) {
		t.Fatalf("σ=0 sample = %+v, want zero", p)
	}
	// Four normals consumed: a fresh stream is now 4 draws ahead.
	ref := rand.New(rand.NewSource(1))
	for i := 0; i < 4; i++ {
		ref.NormFloat64()
	}
	if a, b := rng.NormFloat64(), ref.NormFloat64(); a != b {
		t.Fatalf("stream misaligned after Sample: next draw %v, want %v", a, b)
	}
}

// TestSampleScalesLinearly pins the common-random-numbers coupling:
// the same trial stream at a doubled scale draws exactly the doubled
// perturbation.
func TestSampleScalesLinearly(t *testing.T) {
	m := DefaultVariationModel()
	p1 := m.Sample(rand.New(rand.NewSource(42)))
	p2 := m.Scale(2).Sample(rand.New(rand.NewSource(42)))
	if p2.ResonanceOffset != 2*p1.ResonanceOffset || p2.AmbientOffset != 2*p1.AmbientOffset ||
		p2.SplitError != 2*p1.SplitError || p2.ThresholdOffset != 2*p1.ThresholdOffset {
		t.Fatalf("Scale(2) sample %+v is not 2x %+v", p2, p1)
	}
}

// TestRatesPerDesign: EE is immune, OE is exposed on multiply only, OO
// on both — the paper's Figure 2 exposure map.
func TestRatesPerDesign(t *testing.T) {
	m := DefaultVariationModel()
	// A gross perturbation every exposed path notices.
	p := Perturbation{
		ResonanceOffset: 0.3 * phy.Nanometer,
		AmbientOffset:   15,
		SplitError:      0.05,
		ThresholdOffset: 0.3,
	}
	ee, err := m.Rates(p, arch.EE)
	if err != nil {
		t.Fatal(err)
	}
	if !ee.Zero() {
		t.Errorf("EE rates %+v, want zero (immune)", ee)
	}
	oe, err := m.Rates(p, arch.OE)
	if err != nil {
		t.Fatal(err)
	}
	if oe.Mul <= 0 || oe.Acc != 0 {
		t.Errorf("OE rates %+v, want Mul > 0 and Acc == 0", oe)
	}
	oo, err := m.Rates(p, arch.OO)
	if err != nil {
		t.Fatal(err)
	}
	if oo.Mul != oe.Mul {
		t.Errorf("OO Mul %v != OE Mul %v for the same perturbation", oo.Mul, oe.Mul)
	}
	if oo.Acc <= 0 {
		t.Errorf("OO Acc %v, want > 0", oo.Acc)
	}
	if _, err := m.Rates(p, arch.Design(99)); err == nil {
		t.Error("unknown design should error")
	}
}

// TestZeroPerturbationIsClean: the unperturbed part maps to exactly
// zero rates on every design (the MinFlipProb floor at work).
func TestZeroPerturbationIsClean(t *testing.T) {
	m := DefaultVariationModel()
	for _, d := range arch.Designs() {
		r, err := m.Rates(Perturbation{}, d)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Zero() {
			t.Errorf("%s: zero perturbation rates %+v, want zero", d, r)
		}
	}
}

// TestMulFlipProbMonotoneInOffset: more resonance misalignment can
// only worsen the multiply path.
func TestMulFlipProbMonotoneInOffset(t *testing.T) {
	m := DefaultVariationModel()
	prev := -1.0
	for _, nm := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.5, 1} {
		p := m.mulFlipProb(Perturbation{ResonanceOffset: nm * phy.Nanometer})
		if p < prev {
			t.Errorf("mulFlipProb(%g nm) = %g < previous %g", nm, p, prev)
		}
		prev = p
	}
	if prev <= 0 || prev > 0.5 {
		t.Errorf("worst-case mul prob %g out of (0, 0.5]", prev)
	}
}

// TestAccFlipProbMonotoneInThreshold mirrors the accumulate path.
func TestAccFlipProbMonotoneInThreshold(t *testing.T) {
	m := DefaultVariationModel()
	prev := -1.0
	for _, th := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 1} {
		p := m.accFlipProb(Perturbation{ThresholdOffset: th})
		if p < prev {
			t.Errorf("accFlipProb(threshold %g) = %g < previous %g", th, p, prev)
		}
		prev = p
	}
	if prev != 0.5 {
		t.Errorf("collapsed-margin acc prob %g, want the 0.5 cap", prev)
	}
}

// TestThermalResidualRaisesMulProb: a large ambient excursion the
// tuning loop cannot fully absorb must cost multiply margin even with
// perfect resonance trim.
func TestThermalResidualRaisesMulProb(t *testing.T) {
	m := DefaultVariationModel()
	calm := m.mulFlipProb(Perturbation{})
	hot := m.mulFlipProb(Perturbation{AmbientOffset: 60})
	if hot <= calm {
		t.Errorf("mul prob calm=%g hot=%g; ambient excursion should cost margin", calm, hot)
	}
}
