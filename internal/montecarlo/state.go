package montecarlo

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
)

// ErrSnapshotMismatch reports a snapshot taken under a different spec
// (or a baseline that no longer reproduces) — resuming from it would
// silently mix two different experiments, so it is refused.
var ErrSnapshotMismatch = errors.New("montecarlo: snapshot does not match this spec")

// State is the resumable slot store of one Monte-Carlo run: which
// (σ, trial) slots have completed and their results. Because every
// trial derives its perturbation and fault-stream seeds from
// (spec.Seed, trial) alone — never from scheduling or from other
// trials' RNG consumption — a snapshot needs no engine RNG positions:
// the completed slots plus the spec pin the remaining randomness
// exactly, and a resumed run is bit-identical to an uninterrupted one.
//
// A State is safe to Snapshot concurrently with the RunState that is
// filling it. Construct with NewState.
type State struct {
	fp    [32]byte
	total int

	mu           sync.Mutex
	haveBaseline bool
	baseline     []int64
	done         []bool
	results      []trialResult
	completed    int
}

// NewState allocates the slot store for one run of spec. key is extra
// caller identity folded into the spec fingerprint (the public facade
// passes the network name, which the internal spec cannot see).
func NewState(spec Spec, key string) *State {
	n := len(spec.Sigmas) * spec.Trials
	if n < 0 {
		n = 0
	}
	return &State{
		fp:      spec.fingerprint(key),
		total:   n,
		done:    make([]bool, n),
		results: make([]trialResult, n),
	}
}

// fingerprint hashes every result-determining field of the spec (plus
// the caller's key) so a snapshot can refuse to restore under a
// different experiment. Workers is deliberately absent: the report is
// bit-identical at any pool width, so resuming under a different width
// is legal.
func (s Spec) fingerprint(key string) [32]byte {
	prot := ""
	if s.Protection != nil {
		prot = s.Protection.Name()
	}
	return sha256.Sum256([]byte(fmt.Sprintf(
		"montecarlo-v1|%s|%d|%d|%d|%d|%d|%v|%v|%v|%s",
		key, s.Design, s.Bits, s.Terms, s.Trials, s.Seed,
		s.Sigmas, s.ErrorBudget, s.Variation, prot)))
}

// Progress returns completed and total slot counts.
func (st *State) Progress() (done, total int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.completed, st.total
}

// isDone reports whether slot j already holds a result.
func (st *State) isDone(j int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.done[j]
}

// set records slot j's result and returns the cumulative count.
func (st *State) set(j int, res trialResult) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.done[j] {
		st.done[j] = true
		st.results[j] = res
		st.completed++
	}
	return st.completed
}

// setBaseline installs (or cross-checks) the baseline output. A
// restored snapshot's baseline must match the freshly computed one
// bit-for-bit; anything else means the snapshot belongs to a different
// experiment.
func (st *State) setBaseline(baseline []int64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.haveBaseline {
		if len(st.baseline) != len(baseline) {
			return fmt.Errorf("%w: baseline length %d != %d", ErrSnapshotMismatch, len(st.baseline), len(baseline))
		}
		for i, v := range st.baseline {
			if v != baseline[i] {
				return fmt.Errorf("%w: baseline diverges at output %d", ErrSnapshotMismatch, i)
			}
		}
		return nil
	}
	st.haveBaseline = true
	st.baseline = append([]int64(nil), baseline...)
	return nil
}

// TrialRecord is the exported wire form of one completed trial inside a
// snapshot (the in-memory trialResult keeps its fields private).
type TrialRecord struct {
	Mismatch    float64
	ArgmaxOK    bool
	InjectedBER float64
	Clean       bool

	ProtMismatch      float64
	ProtArgmaxOK      bool
	ProtInjectedBER   float64
	ProtClean         bool
	ProtCalls         int64
	ProtRetries       int64
	ProtDisagreements int64
	ProtGaveUp        int64
}

func toRecord(r trialResult) TrialRecord {
	return TrialRecord{
		Mismatch:    r.mismatch,
		ArgmaxOK:    r.argmaxOK,
		InjectedBER: r.injectedBER,
		Clean:       r.clean,

		ProtMismatch:      r.protMismatch,
		ProtArgmaxOK:      r.protArgmaxOK,
		ProtInjectedBER:   r.protInjectedBER,
		ProtClean:         r.protClean,
		ProtCalls:         r.protCounters.Calls,
		ProtRetries:       r.protCounters.Retries,
		ProtDisagreements: r.protCounters.Disagreements,
		ProtGaveUp:        r.protCounters.GaveUp,
	}
}

func fromRecord(r TrialRecord) trialResult {
	out := trialResult{
		mismatch:    r.Mismatch,
		argmaxOK:    r.ArgmaxOK,
		injectedBER: r.InjectedBER,
		clean:       r.Clean,

		protMismatch:    r.ProtMismatch,
		protArgmaxOK:    r.ProtArgmaxOK,
		protInjectedBER: r.ProtInjectedBER,
		protClean:       r.ProtClean,
	}
	out.protCounters.Calls = r.ProtCalls
	out.protCounters.Retries = r.ProtRetries
	out.protCounters.Disagreements = r.ProtDisagreements
	out.protCounters.GaveUp = r.ProtGaveUp
	return out
}

// snapshotV1 is the gob payload of a State snapshot. Only completed
// slots ship records, so early checkpoints stay small.
type snapshotV1 struct {
	Fingerprint  [32]byte
	Total        int
	HaveBaseline bool
	Baseline     []int64
	DoneSlots    []int
	Records      []TrialRecord
}

// Snapshot encodes the completed slots. Safe to call while a RunState
// on the same State is in flight — it sees a consistent prefix of the
// completed work.
func (st *State) Snapshot() ([]byte, error) {
	st.mu.Lock()
	snap := snapshotV1{
		Fingerprint:  st.fp,
		Total:        st.total,
		HaveBaseline: st.haveBaseline,
		Baseline:     append([]int64(nil), st.baseline...),
	}
	for j, d := range st.done {
		if d {
			snap.DoneSlots = append(snap.DoneSlots, j)
			snap.Records = append(snap.Records, toRecord(st.results[j]))
		}
	}
	st.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("montecarlo: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore reinstalls a snapshot into a freshly constructed State for
// the same spec. Snapshots from a different spec (or a different
// snapshot geometry) are refused with ErrSnapshotMismatch.
func (st *State) Restore(payload []byte) error {
	var snap snapshotV1
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return fmt.Errorf("montecarlo: decode snapshot: %w", err)
	}
	if snap.Fingerprint != st.fp {
		return fmt.Errorf("%w: spec fingerprint differs", ErrSnapshotMismatch)
	}
	if snap.Total != st.total {
		return fmt.Errorf("%w: %d slots, spec has %d", ErrSnapshotMismatch, snap.Total, st.total)
	}
	if len(snap.DoneSlots) != len(snap.Records) {
		return fmt.Errorf("%w: %d done slots but %d records", ErrSnapshotMismatch, len(snap.DoneSlots), len(snap.Records))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.haveBaseline = snap.HaveBaseline
	st.baseline = append([]int64(nil), snap.Baseline...)
	st.done = make([]bool, st.total)
	st.results = make([]trialResult, st.total)
	st.completed = 0
	for i, j := range snap.DoneSlots {
		if j < 0 || j >= st.total {
			return fmt.Errorf("%w: slot %d out of range", ErrSnapshotMismatch, j)
		}
		if st.done[j] {
			return fmt.Errorf("%w: slot %d recorded twice", ErrSnapshotMismatch, j)
		}
		st.done[j] = true
		st.results[j] = fromRecord(snap.Records[i])
		st.completed++
	}
	return nil
}
