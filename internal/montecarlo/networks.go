package montecarlo

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"

	"pixel/internal/cnn"
	"pixel/internal/qnn"
	"pixel/internal/tensor"
)

// demoSeed fixes the weight/input draw of every named network, so any
// process (CLI, server, test) that asks for "lenet" perturbs the very
// same network the qnn golden test pins.
const demoSeed = 23

// Network is a ready-to-perturb model: the net, its stimulus, the
// bit-serial engine geometry that fits it, and the layer-count model
// the arch cost accounting prices protection overhead against.
type Network struct {
	Model *qnn.Model
	Input *tensor.Tensor
	Bits  int
	Terms int
	Cost  cnn.Network
}

// builders maps lower-case network names to constructors.
var builders = map[string]func() Network{
	"lenet": func() Network {
		m, in := qnn.DemoLeNet(rand.New(rand.NewSource(demoSeed)))
		return Network{Model: m, Input: in, Bits: qnn.DemoLeNetBits, Terms: qnn.DemoLeNetTerms, Cost: cnn.LeNet()}
	},
	"tiny": buildTiny,
}

// buildTiny is a two-layer toy net small enough for high-trial-count
// tests and smoke runs (~1% of LeNet's MAC work).
func buildTiny() Network {
	rng := rand.New(rand.NewSource(demoSeed))
	k := tensor.NewKernel(4, 3, 1)
	for i := range k.Data {
		k.Data[i] = rng.Int63n(16)
	}
	fc := make([]int64, 8*8*4*10)
	for i := range fc {
		fc[i] = rng.Int63n(16)
	}
	m := &qnn.Model{
		Label:          "tiny-8",
		ActivationBits: 4,
		Layers: []qnn.Layer{
			&qnn.Conv{Label: "conv", Kernel: k, Stride: 1, Pad: 1}, // 8x8x1 -> 8x8x4
			&qnn.Requant{Label: "rq", Shift: 6, Max: 15},
			&qnn.Flatten{Label: "flat"},
			&qnn.FullyConnected{Label: "fc", Weights: fc, Out: 10},
		},
	}
	in := tensor.New(8, 8, 1)
	for i := range in.Data {
		in.Data[i] = rng.Int63n(16)
	}
	cost := cnn.Network{
		Name: "tiny",
		Layers: []cnn.Layer{
			{Name: "conv", Type: cnn.Conv, H: 8, W: 8, C: 1, Pad: 1, R: 3, U: 1, M: 4},
			{Name: "fc", Type: cnn.FC, In: 256, Out: 10},
		},
	}
	return Network{Model: m, Input: in, Bits: 4, Terms: 256, Cost: cost}
}

// Networks lists the known network names, sorted.
func Networks() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuildNetwork returns the named demo network (case-insensitive).
func BuildNetwork(name string) (Network, error) {
	b, ok := builders[strings.ToLower(name)]
	if !ok {
		return Network{}, fmt.Errorf("montecarlo: unknown network %q (have %s)",
			name, strings.Join(Networks(), ", "))
	}
	return b(), nil
}

// defaultWorkers is the pool width when the spec leaves Workers <= 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
