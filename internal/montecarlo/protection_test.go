package montecarlo

import (
	"context"
	"reflect"
	"testing"

	"pixel/internal/protect"
)

func schemes() []protect.Scheme {
	return []protect.Scheme{
		protect.TMR(),
		protect.Parity{Retries: 3},
		protect.DefaultGuardBand(),
	}
}

// TestProtectedSigmaZeroClean: at σ=0 the derated rates are just as
// degenerate as the nominal ones, so the protected curve must be
// exactly clean for every scheme — full yield, zero mismatch, zero
// mitigation work.
func TestProtectedSigmaZeroClean(t *testing.T) {
	for _, s := range schemes() {
		spec := tinySpec(t)
		spec.Sigmas = []float64{0}
		spec.Trials = 8
		spec.Protection = s
		rep, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if rep.Protection != s.Name() {
			t.Errorf("report names scheme %q, want %q", rep.Protection, s.Name())
		}
		if len(rep.Protected) != 1 {
			t.Fatalf("%s: %d protected points, want 1", s.Name(), len(rep.Protected))
		}
		p := rep.Protected[0]
		if p.Yield != 1 || p.ArgmaxRate != 1 || p.MaxMismatch != 0 || p.CleanTrials != 8 {
			t.Errorf("%s: σ=0 protected point %+v, want fully clean", s.Name(), p)
		}
		if p.Calls != 0 || p.Retries != 0 || p.Disagreements != 0 || p.GaveUp != 0 {
			t.Errorf("%s: σ=0 mitigation counters moved: %+v", s.Name(), p)
		}
		if p.RetryFactor != 1 {
			t.Errorf("%s: σ=0 retry factor %g, want 1", s.Name(), p.RetryFactor)
		}
	}
}

// TestProtectedDeterministicAcrossWorkers extends the determinism
// satellite to the paired curves: with protection enabled the whole
// report — unprotected and protected points, counters included — must
// be bit-identical across worker counts. Under -race this also proves
// the serial protected re-run races with nothing.
func TestProtectedDeterministicAcrossWorkers(t *testing.T) {
	for _, s := range schemes() {
		spec := tinySpec(t)
		spec.Sigmas = []float64{0, 1, 3}
		spec.Trials = 12
		spec.Protection = s
		var ref *Report
		for _, w := range []int{1, 4} {
			spec.Workers = w
			rep, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", s.Name(), w, err)
			}
			if ref == nil {
				ref = rep
				continue
			}
			if !reflect.DeepEqual(rep, ref) {
				t.Errorf("%s: workers=%d report differs:\n%+v\nwant\n%+v",
					s.Name(), w, rep.Protected, ref.Protected)
			}
		}
	}
}

// TestProtectionPairsCurves: the protected curve rides the same σ
// axis as the unprotected one, point for point, and disappears
// entirely when no scheme is set.
func TestProtectionPairsCurves(t *testing.T) {
	spec := tinySpec(t)
	spec.Protection = protect.DefaultGuardBand()
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Protected) != len(rep.Points) {
		t.Fatalf("%d protected points vs %d unprotected", len(rep.Protected), len(rep.Points))
	}
	for i, p := range rep.Protected {
		if p.Sigma != rep.Points[i].Sigma {
			t.Errorf("point %d: protected σ=%g, unprotected σ=%g", i, p.Sigma, rep.Points[i].Sigma)
		}
	}

	spec.Protection = nil
	bare, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Protection != "" || bare.Protected != nil {
		t.Errorf("unprotected run carries protection fields: %q, %d points",
			bare.Protection, len(bare.Protected))
	}
	// The unprotected curve is the same run either way: adding a scheme
	// must not disturb the baseline statistics (common random numbers).
	if !reflect.DeepEqual(bare.Points, rep.Points) {
		t.Error("enabling protection changed the unprotected curve")
	}
}

// TestGuardBandRecoversYield is the acceptance trade-off in miniature:
// at a σ that wrecks the unprotected tiny network, guard-banding must
// lift the yield substantially.
func TestGuardBandRecoversYield(t *testing.T) {
	spec := tinySpec(t)
	spec.Sigmas = []float64{4}
	spec.Trials = 32
	spec.Protection = protect.DefaultGuardBand()
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	un, pr := rep.Points[0], rep.Protected[0]
	if un.Yield > 0.6 {
		t.Fatalf("unprotected σ=4 yield %g too healthy for the test to mean anything", un.Yield)
	}
	if pr.Yield < un.Yield+0.2 {
		t.Errorf("guardband yield %g vs unprotected %g: no meaningful recovery", pr.Yield, un.Yield)
	}
	if pr.CleanTrials <= un.CleanTrials {
		t.Errorf("guardband clean trials %d <= unprotected %d: derate not reducing rates",
			pr.CleanTrials, un.CleanTrials)
	}
}

// TestParityCountersMove: at a high σ the detect-and-retry machinery
// must actually fire — calls counted, retries spent, a measured retry
// factor above 1 — and with a tiny budget some calls must give up.
func TestParityCountersMove(t *testing.T) {
	spec := tinySpec(t)
	spec.Sigmas = []float64{4}
	spec.Trials = 12
	spec.Protection = protect.Parity{Retries: 2}
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Protected[0]
	if p.Calls == 0 {
		t.Fatal("no protected calls counted at σ=4")
	}
	if p.Retries == 0 {
		t.Error("parity never retried at σ=4")
	}
	if p.GaveUp == 0 {
		t.Error("parity never exhausted a 2-retry budget at σ=4")
	}
	if p.RetryFactor <= 1 {
		t.Errorf("retry factor %g, want > 1", p.RetryFactor)
	}
	if got := rep.MaxRetryFactor(); got != p.RetryFactor {
		t.Errorf("MaxRetryFactor %g != single point's %g", got, p.RetryFactor)
	}
}
