package montecarlo

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"

	"pixel/internal/protect"
)

// reportJSON canonicalizes a report for byte-level comparison.
func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// interruptAfter runs spec until roughly k trials have completed, then
// cancels — simulating a crash — and returns a snapshot of the partial
// state. The snapshot may hold more than k slots (in-flight trials
// finish before the pool drains); what matters is that it holds a
// strict, non-empty prefix of the work.
func interruptAfter(t *testing.T, spec Spec, k int) []byte {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st := NewState(spec, "")
	_, err := RunState(ctx, spec, st, Hooks{
		OnTrial: func(done, total int) {
			if done >= k {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	done, total := st.Progress()
	if done == 0 || done >= total {
		t.Fatalf("interrupted at %d/%d slots; need a strict non-empty prefix", done, total)
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestResumeBitExact is the crash-resume property from the ISSUE: kill
// a run after a random prefix, resume from its snapshot — possibly at a
// different worker count — and the final JSON report must be
// byte-identical to an uninterrupted same-seed run.
func TestResumeBitExact(t *testing.T) {
	spec := tinySpec(t)
	spec.Trials = 12
	spec.Sigmas = []float64{0, 1, 3}

	straight, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, straight)

	for _, tc := range []struct {
		name                            string
		cutAt                           int
		interruptWorkers, resumeWorkers int
	}{
		{"serial-to-serial", 5, 1, 1},
		{"parallel-to-parallel", 17, 3, 3},
		{"widen-pool-on-resume", 9, 1, 4},
		{"shrink-pool-on-resume", 23, 4, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := spec
			spec.Workers = tc.interruptWorkers
			snap := interruptAfter(t, spec, tc.cutAt)

			spec.Workers = tc.resumeWorkers
			st := NewState(spec, "")
			if err := st.Restore(snap); err != nil {
				t.Fatal(err)
			}
			restored, _ := st.Progress()
			rep, err := RunState(context.Background(), spec, st, Hooks{})
			if err != nil {
				t.Fatal(err)
			}
			if got := reportJSON(t, rep); !reflect.DeepEqual(got, want) {
				t.Fatalf("resumed report differs from straight run (restored %d slots):\n%s\nwant\n%s",
					restored, got, want)
			}
		})
	}
}

// TestResumeBitExactProtected repeats the property with a protection
// scheme attached, since protected trials carry extra per-trial state
// (counters, retry outcomes) through the snapshot.
func TestResumeBitExactProtected(t *testing.T) {
	spec := tinySpec(t)
	spec.Trials = 8
	spec.Sigmas = []float64{1, 3}
	spec.Protection = protect.TMR()
	spec.Workers = 3

	straight, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, straight)

	snap := interruptAfter(t, spec, 6)
	st := NewState(spec, "")
	if err := st.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rep, err := RunState(context.Background(), spec, st, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed protected report differs:\n%s\nwant\n%s", got, want)
	}
}

// TestRestoreRejectsForeignSnapshot: snapshots refuse to cross specs,
// keys, or geometries.
func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	spec := tinySpec(t)
	spec.Trials = 4
	spec.Sigmas = []float64{0, 1}
	snap := interruptAfter(t, spec, 2)

	otherSeed := spec
	otherSeed.Seed = spec.Seed + 1
	if err := NewState(otherSeed, "").Restore(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("different seed: err = %v, want ErrSnapshotMismatch", err)
	}
	otherProt := spec
	otherProt.Protection = protect.TMR()
	if err := NewState(otherProt, "").Restore(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("different protection: err = %v, want ErrSnapshotMismatch", err)
	}
	if err := NewState(spec, "other-network").Restore(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("different key: err = %v, want ErrSnapshotMismatch", err)
	}
	// A different worker count is NOT a different experiment.
	otherWorkers := spec
	otherWorkers.Workers = 7
	if err := NewState(otherWorkers, "").Restore(snap); err != nil {
		t.Fatalf("different workers must restore cleanly: %v", err)
	}
	if err := NewState(spec, "").Restore(snap[:len(snap)/2]); err == nil {
		t.Fatal("truncated snapshot restored without error")
	}
}

// TestHooksObserveRun pins the hook contract: OnTrial counts reach the
// total exactly once each, OnPoint fires once per σ row with the same
// aggregates the report carries, and a resumed run announces fully
// restored rows up front.
func TestHooksObserveRun(t *testing.T) {
	spec := tinySpec(t)
	spec.Trials = 6
	spec.Sigmas = []float64{0, 1, 2}
	spec.Workers = 3

	var mu sync.Mutex
	var lastDone int
	points := make(map[int]SigmaPoint)
	rep, err := RunState(context.Background(), spec, NewState(spec, ""), Hooks{
		OnTrial: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if done <= lastDone {
				t.Errorf("OnTrial done went %d -> %d; must be strictly increasing", lastDone, done)
			}
			lastDone = done
			if total != len(spec.Sigmas)*spec.Trials {
				t.Errorf("OnTrial total = %d", total)
			}
		},
		OnPoint: func(i int, p SigmaPoint, prot *ProtectedPoint) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := points[i]; dup {
				t.Errorf("OnPoint fired twice for row %d", i)
			}
			if prot != nil {
				t.Errorf("unprotected spec delivered a protected point")
			}
			points[i] = p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != len(spec.Sigmas)*spec.Trials {
		t.Fatalf("final OnTrial done = %d, want %d", lastDone, len(spec.Sigmas)*spec.Trials)
	}
	if len(points) != len(spec.Sigmas) {
		t.Fatalf("OnPoint fired for %d rows, want %d", len(points), len(spec.Sigmas))
	}
	for i, p := range points {
		if !reflect.DeepEqual(p, rep.Points[i]) {
			t.Fatalf("row %d: hook point %+v != report point %+v", i, p, rep.Points[i])
		}
	}

	// Resume from a mid-run snapshot: any row the snapshot completed is
	// re-announced before new work, and every row is announced overall.
	snap := interruptAfter(t, spec, 10)
	st := NewState(spec, "")
	if err := st.Restore(snap); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	var seenMu sync.Mutex
	if _, err := RunState(context.Background(), spec, st, Hooks{
		OnPoint: func(i int, p SigmaPoint, prot *ProtectedPoint) {
			seenMu.Lock()
			seen[i] = true
			seenMu.Unlock()
		},
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(spec.Sigmas) {
		t.Fatalf("resumed run announced %d rows, want %d", len(seen), len(spec.Sigmas))
	}
}
