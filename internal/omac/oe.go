package omac

import (
	"fmt"

	"pixel/internal/elec"
	"pixel/internal/optsim"
	"pixel/internal/photonics"
)

// OEUnit is the hybrid optical-electrical MAC of Figure 2(b): optical
// AND through MRR filters, electrical shift-accumulate.
type OEUnit struct {
	cfg      Config
	budget   photonics.LinkBudget
	mod      *optsim.Modulator
	wg       photonics.Waveguide
	conv     *photonics.OEConverter
	adder    *elec.CLAAdder
	shifter  *elec.BarrelShifterFunc
	accWidth int
	// Gate counts priced once and charged per operation.
	accGates elec.GateCount
	mask     uint64
	// detuned injects a thermal-drift fault into the AND filter bank.
	detuned bool
}

// NewOEUnit builds the hybrid unit for the given configuration. The
// accumulator is sized for `terms` products (use Lanes*elements for a
// window; 1 for a bare multiply).
func NewOEUnit(cfg Config, terms int) (*OEUnit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if terms < 1 {
		return nil, fmt.Errorf("omac: terms must be >= 1")
	}
	budget := cfg.OELinkBudget()
	if err := budget.Check(); err != nil {
		return nil, fmt.Errorf("omac: OE link budget: %w", err)
	}
	// Expected "one" level at the detector: launch power through the
	// full loss stack.
	onePower := budget.ReceivedPower()
	conv, err := photonics.NewOEConverter(onePower)
	if err != nil {
		return nil, fmt.Errorf("omac: OE converter: %w", err)
	}
	accWidth := elec.AccumulatorWidth(cfg.Bits, terms)
	adder, err := elec.NewCLAAdder(accWidth)
	if err != nil {
		return nil, err
	}
	shifter, err := elec.NewBarrelShifter(accWidth)
	if err != nil {
		return nil, err
	}
	return &OEUnit{
		cfg:      cfg,
		budget:   budget,
		mod:      optsim.NewModulator(budget.LaserPowerPerWavelength, cfg.Period()),
		wg:       photonics.DefaultWaveguide(cfg.LinkLength),
		conv:     conv,
		adder:    adder,
		shifter:  shifter,
		accWidth: accWidth,
		accGates: elec.CLA(accWidth).Chain(elec.BarrelShifter(accWidth)).Add(elec.Register(accWidth)),
		mask:     (uint64(1) << uint(cfg.Bits)) - 1,
	}, nil
}

// Config returns the unit's configuration.
func (u *OEUnit) Config() Config { return u.cfg }

// LinkBudget returns the optical link budget the unit was built with.
func (u *OEUnit) LinkBudget() photonics.LinkBudget { return u.budget }

// AccumulatorWidth returns the electrical accumulator width in bits.
func (u *OEUnit) AccumulatorWidth() int { return u.accWidth }

// InjectDetuning drifts the AND filter bank off resonance (an
// uncompensated thermal swing, see package thermal) — the
// failure-injection hook for ring drift.
func (u *OEUnit) InjectDetuning(detuned bool) { u.detuned = detuned }

// Multiply computes neuron*synapse through the hybrid datapath: Bits()
// cycles, each transmitting the full neuron word optically against one
// synapse bit (LSB first) and accumulating electrically.
func (u *OEUnit) Multiply(neuron, synapse uint64, led *optsim.Ledger) (uint64, error) {
	if neuron > u.mask || synapse > u.mask {
		return 0, fmt.Errorf("omac: operand exceeds %d-bit range", u.cfg.Bits)
	}
	bits := u.cfg.Bits
	train := wordBitsLSB(neuron, bits)
	var acc uint64
	for j := 0; j < bits; j++ {
		// E/O: the neuron word is fired on its wavelength.
		sig := u.mod.Modulate(train, sigChannel, led)
		u.cfg.laserEnergy(u.budget.LaserPowerPerWavelength, bits, led)
		// Photonic link to the filter bank.
		sig = optsim.WaveguideRun(sig, u.wg, led)
		// Optical AND: the synapse bit drives the double-MRR filter.
		filter := photonics.DoubleMRRFilter{
			Params:  u.cfg.MRR,
			Channel: sigChannel,
			On:      (synapse>>uint(j))&1 == 1,
			Detuned: u.detuned,
		}
		_, cross := optsim.ANDFilter(sig, &filter, led)
		// O/E: photodiode + shift register recovers the gated word.
		gatedBits := optsim.DetectOOK(cross, u.conv, led)
		var gated uint64
		for t, b := range gatedBits {
			if b == 1 && t < bits {
				gated |= 1 << uint(t)
			}
		}
		// Electrical shift-accumulate (the EP unit).
		shifted := u.shifter.ShiftLeft(gated, j)
		acc, _ = u.adder.Add(acc, shifted, false)
		led.Charge(optsim.CatAdd, u.accGates.Energy(u.cfg.Tech))
		led.AddLatency(u.cfg.Tech.ClockPeriod())
	}
	return acc, nil
}

// sigChannel is the wavelength channel index used for single-MAC
// functional simulations; window simulations assign one channel per lane.
const sigChannel = 0

// DotProduct computes the inner product of two vectors through the
// hybrid datapath. Lanes ride distinct wavelengths in hardware; the
// functional result is identical, so lanes are processed sequentially
// here while energy is charged for all of them.
func (u *OEUnit) DotProduct(neurons, synapses []uint64, led *optsim.Ledger) (uint64, error) {
	if len(neurons) != len(synapses) {
		return 0, fmt.Errorf("omac: vector lengths differ (%d vs %d)", len(neurons), len(synapses))
	}
	var acc uint64
	for i := range neurons {
		p, err := u.Multiply(neurons[i], synapses[i], led)
		if err != nil {
			return 0, fmt.Errorf("omac: lane %d: %w", i, err)
		}
		acc, _ = u.adder.Add(acc, p, false)
		led.Charge(optsim.CatAdd, elec.CLA(u.accWidth).Energy(u.cfg.Tech))
	}
	return acc, nil
}

// Window computes the paper's Figure 2 window (inputs[lane][element],
// synapses[filter][lane][element]) through the hybrid datapath and
// returns one raw accumulation per filter.
func (u *OEUnit) Window(inputs [][]uint64, synapses [][][]uint64, led *optsim.Ledger) ([]uint64, error) {
	out := make([]uint64, len(synapses))
	for k, filter := range synapses {
		if len(filter) != len(inputs) {
			return nil, fmt.Errorf("omac: filter %d has %d lanes, inputs have %d", k, len(filter), len(inputs))
		}
		var acc uint64
		for lane := range filter {
			v, err := u.DotProduct(inputs[lane], filter[lane], led)
			if err != nil {
				return nil, fmt.Errorf("omac: filter %d lane %d: %w", k, lane, err)
			}
			acc, _ = u.adder.Add(acc, v, false)
		}
		out[k] = acc
	}
	return out, nil
}
