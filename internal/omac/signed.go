package omac

import (
	"fmt"

	"pixel/internal/bitserial"
	"pixel/internal/elec"
	"pixel/internal/optsim"
)

// Signed dot products on the optical units. Light carries no sign, so
// operands travel offset-binary encoded (see bitserial.OffsetCodec):
// the unsigned optical datapath computes the encoded inner product, and
// two narrow electrical accumulators (charged to the add category)
// track the operand sums for the algebraic correction.

// unsignedDotter is the unsigned datapath both optical units expose.
type unsignedDotter interface {
	DotProduct(ns, ss []uint64, led *optsim.Ledger) (uint64, error)
}

// signedDot runs the offset-encode / unsigned-dot / correct pipeline on
// any unsigned datapath.
func signedDot(u unsignedDotter, codec *bitserial.OffsetCodec, tech elec.Tech,
	ns, ss []int64, led *optsim.Ledger) (int64, error) {
	if len(ns) != len(ss) {
		return 0, fmt.Errorf("omac: vector lengths differ (%d vs %d)", len(ns), len(ss))
	}
	us, err := codec.EncodeVector(ns)
	if err != nil {
		return 0, err
	}
	ws, err := codec.EncodeVector(ss)
	if err != nil {
		return 0, err
	}
	raw, err := u.DotProduct(us, ws, led)
	if err != nil {
		return 0, err
	}
	var sumU, sumW uint64
	for i := range us {
		sumU += us[i]
		sumW += ws[i]
	}
	// The two correction accumulators: narrow CLAs, one add each per
	// term, plus the final three-term correction.
	corrWidth := codec.Bits() + 8
	corr := elec.CLA(corrWidth)
	led.Charge(optsim.CatAdd, float64(2*len(us)+3)*corr.Energy(tech))
	led.AddLatency(corr.Delay(tech))
	return codec.Correct(raw, sumU, sumW, len(us))
}

// SignedDotProduct computes a signed inner product through the hybrid
// datapath.
func (u *OEUnit) SignedDotProduct(ns, ss []int64, led *optsim.Ledger) (int64, error) {
	codec, err := bitserial.NewOffsetCodec(u.cfg.Bits)
	if err != nil {
		return 0, err
	}
	return signedDot(u, codec, u.cfg.Tech, ns, ss, led)
}

// SignedDotProduct computes a signed inner product through the
// all-optical datapath.
func (u *OOUnit) SignedDotProduct(ns, ss []int64, led *optsim.Ledger) (int64, error) {
	codec, err := bitserial.NewOffsetCodec(u.cfg.Bits)
	if err != nil {
		return 0, err
	}
	return signedDot(u, codec, u.cfg.Tech, ns, ss, led)
}
