package omac

import (
	"testing"
	"testing/quick"

	"pixel/internal/bitserial"
	"pixel/internal/optsim"
	"pixel/internal/phy"
)

func TestDefaultConfigValidates(t *testing.T) {
	for _, lanes := range []int{1, 4, 8, 16} {
		for _, bits := range []int{1, 4, 8, 16} {
			if err := DefaultConfig(lanes, bits).Validate(); err != nil {
				t.Errorf("DefaultConfig(%d,%d): %v", lanes, bits, err)
			}
		}
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	bad := []Config{
		DefaultConfig(0, 4),
		DefaultConfig(65, 4),
		DefaultConfig(4, 0),
		DefaultConfig(4, 25),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	c := DefaultConfig(4, 4)
	c.BitRate = 0
	if err := c.Validate(); err == nil {
		t.Error("zero bit rate should fail")
	}
	c = DefaultConfig(4, 4)
	c.MarginDB = -1
	if err := c.Validate(); err == nil {
		t.Error("negative margin should fail")
	}
}

func TestLinkBudgetsDeriveLaunchPower(t *testing.T) {
	cfg := DefaultConfig(4, 8)
	oe := cfg.OELinkBudget()
	oo := cfg.OOLinkBudget()
	if !oe.Closes() || !oo.Closes() {
		t.Fatal("derived budgets must close")
	}
	// The OO path pays the MZI chain loss and the amplitude-resolution
	// margin, so it needs strictly more laser power — the reason
	// Table II shows OO laser energy ~1.5x OE's.
	if oo.LaserPowerPerWavelength <= oe.LaserPowerPerWavelength {
		t.Errorf("OO launch power %v should exceed OE's %v",
			oo.LaserPowerPerWavelength, oe.LaserPowerPerWavelength)
	}
}

func TestOEMultiplyMatchesInteger(t *testing.T) {
	u, err := NewOEUnit(DefaultConfig(4, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	led := optsim.NewLedger()
	got, err := u.Multiply(6, 13, led)
	if err != nil {
		t.Fatal(err)
	}
	if got != 78 {
		t.Errorf("OE 6*13 = %d, want 78", got)
	}
	for _, cat := range []string{optsim.CatMul, optsim.CatAdd, optsim.CatOE, optsim.CatComm, optsim.CatLaser} {
		if led.Energy(cat) <= 0 {
			t.Errorf("category %q not charged", cat)
		}
	}
	if led.Latency() <= 0 {
		t.Error("latency not charged")
	}
}

func TestOOMultiplyMatchesInteger(t *testing.T) {
	u, err := NewOOUnit(DefaultConfig(4, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	led := optsim.NewLedger()
	got, err := u.Multiply(6, 13, led)
	if err != nil {
		t.Fatal(err)
	}
	if got != 78 {
		t.Errorf("OO 6*13 = %d, want 78", got)
	}
	for _, cat := range []string{optsim.CatMul, optsim.CatAdd, optsim.CatOE, optsim.CatComm, optsim.CatLaser} {
		if led.Energy(cat) <= 0 {
			t.Errorf("category %q not charged", cat)
		}
	}
}

func TestOEMultiplyPropertyVsStripes(t *testing.T) {
	const bits = 8
	u, err := NewOEUnit(DefaultConfig(4, bits), 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bitserial.NewEngine(bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		got, err := u.Multiply(uint64(a), uint64(b), nil)
		if err != nil {
			return false
		}
		want, _, err := ref.Multiply(uint64(a), uint64(b))
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestOOMultiplyPropertyVsStripes(t *testing.T) {
	const bits = 8
	u, err := NewOOUnit(DefaultConfig(4, bits), 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bitserial.NewEngine(bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		got, err := u.Multiply(uint64(a), uint64(b), nil)
		if err != nil {
			return false
		}
		want, _, err := ref.Multiply(uint64(a), uint64(b))
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestThreeDesignsAgreeOnWindow(t *testing.T) {
	// The paper's Section II-B window must come out identical on EE
	// (Stripes), OE and OO.
	inputs := [][]uint64{
		{2, 4, 6, 9},
		{0, 1, 3, 4},
		{3, 5, 1, 2},
		{8, 2, 8, 6},
	}
	filters := [][][]uint64{{
		{6, 9, 13, 11},
		{1, 2, 1, 2},
		{2, 3, 4, 5},
		{3, 1, 3, 1},
	}}
	terms := 16

	ee, err := bitserial.NewEngine(4, terms)
	if err != nil {
		t.Fatal(err)
	}
	eeOut, _, err := ee.Window(inputs, filters)
	if err != nil {
		t.Fatal(err)
	}

	oe, err := NewOEUnit(DefaultConfig(4, 4), terms)
	if err != nil {
		t.Fatal(err)
	}
	oeOut, err := oe.Window(inputs, filters, optsim.NewLedger())
	if err != nil {
		t.Fatal(err)
	}

	oo, err := NewOOUnit(DefaultConfig(4, 4), terms)
	if err != nil {
		t.Fatal(err)
	}
	ooOut, err := oo.Window(inputs, filters, optsim.NewLedger())
	if err != nil {
		t.Fatal(err)
	}

	if eeOut[0] != 329 {
		t.Errorf("EE window = %d, want 329", eeOut[0])
	}
	if oeOut[0] != eeOut[0] {
		t.Errorf("OE window = %d, EE = %d", oeOut[0], eeOut[0])
	}
	if ooOut[0] != eeOut[0] {
		t.Errorf("OO window = %d, EE = %d", ooOut[0], eeOut[0])
	}
}

func TestDotProductDesignsAgreeProperty(t *testing.T) {
	const bits, lanes = 6, 4
	terms := lanes
	oe, err := NewOEUnit(DefaultConfig(lanes, bits), terms)
	if err != nil {
		t.Fatal(err)
	}
	oo, err := NewOOUnit(DefaultConfig(lanes, bits), terms)
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1<<bits - 1)
	f := func(raw [lanes * 2]uint8) bool {
		ns := make([]uint64, lanes)
		ss := make([]uint64, lanes)
		for i := 0; i < lanes; i++ {
			ns[i] = uint64(raw[i]) & mask
			ss[i] = uint64(raw[lanes+i]) & mask
		}
		want := bitserial.ReferenceDot(ns, ss)
		a, err1 := oe.DotProduct(ns, ss, nil)
		b, err2 := oo.DotProduct(ns, ss, nil)
		return err1 == nil && err2 == nil && a == want && b == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOOSkewFaultPropagates(t *testing.T) {
	u, err := NewOOUnit(DefaultConfig(4, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	u.InjectStageSkew(40 * phy.Picosecond) // tolerance is period/4 = 25ps
	if _, err := u.Multiply(200, 100, nil); err == nil {
		t.Error("mis-cut inter-stage paths must surface as an error")
	}
}

func TestOEDetunedRingsCorruptProducts(t *testing.T) {
	// An uncompensated thermal drift (see package thermal) detunes the
	// AND filters: the drop path loses ~3 dB, the received "one" level
	// falls below the OOK threshold, and products silently read low —
	// the failure mode the tuning loop exists to prevent.
	u, err := NewOEUnit(DefaultConfig(4, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := u.Multiply(200, 201, nil)
	if err != nil || healthy != 200*201 {
		t.Fatalf("healthy multiply = %d, %v", healthy, err)
	}
	u.InjectDetuning(true)
	corrupted, err := u.Multiply(200, 201, nil)
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == healthy {
		t.Error("a detuned filter bank should corrupt the product")
	}
	u.InjectDetuning(false)
	if again, _ := u.Multiply(200, 201, nil); again != healthy {
		t.Error("re-locking the rings should restore correctness")
	}
}

func TestOperandRangeChecks(t *testing.T) {
	oe, _ := NewOEUnit(DefaultConfig(4, 4), 1)
	if _, err := oe.Multiply(16, 1, nil); err == nil {
		t.Error("OE out-of-range neuron should error")
	}
	oo, _ := NewOOUnit(DefaultConfig(4, 4), 1)
	if _, err := oo.Multiply(1, 16, nil); err == nil {
		t.Error("OO out-of-range synapse should error")
	}
	if _, err := oe.DotProduct([]uint64{1}, []uint64{1, 2}, nil); err == nil {
		t.Error("OE length mismatch should error")
	}
	if _, err := oo.DotProduct([]uint64{1}, []uint64{1, 2}, nil); err == nil {
		t.Error("OO length mismatch should error")
	}
}

func TestUnitConstructorValidation(t *testing.T) {
	if _, err := NewOEUnit(DefaultConfig(0, 4), 1); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := NewOEUnit(DefaultConfig(4, 4), 0); err == nil {
		t.Error("zero terms should error")
	}
	if _, err := NewOOUnit(DefaultConfig(4, 4), 0); err == nil {
		t.Error("zero terms should error")
	}
}

func TestOOChargesMoreLaserThanOE(t *testing.T) {
	// Table II: OO laser energy exceeds OE's for the same work.
	cfg := DefaultConfig(4, 8)
	oe, err := NewOEUnit(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	oo, err := NewOOUnit(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ledOE, ledOO := optsim.NewLedger(), optsim.NewLedger()
	if _, err := oe.Multiply(123, 45, ledOE); err != nil {
		t.Fatal(err)
	}
	if _, err := oo.Multiply(123, 45, ledOO); err != nil {
		t.Fatal(err)
	}
	if ledOO.Energy(optsim.CatLaser) <= ledOE.Energy(optsim.CatLaser) {
		t.Errorf("OO laser %v should exceed OE laser %v",
			ledOO.Energy(optsim.CatLaser), ledOE.Energy(optsim.CatLaser))
	}
	// And the OO electrical-add energy is lower: the MZI chain replaced
	// the per-cycle CLA+shifter accumulation.
	if ledOO.Energy(optsim.CatAdd) >= ledOE.Energy(optsim.CatAdd) {
		t.Errorf("OO add %v should be below OE add %v",
			ledOO.Energy(optsim.CatAdd), ledOE.Energy(optsim.CatAdd))
	}
}

func TestOOFasterThanOEPerMultiply(t *testing.T) {
	cfg := DefaultConfig(4, 8)
	oe, _ := NewOEUnit(cfg, 1)
	oo, _ := NewOOUnit(cfg, 1)
	ledOE, ledOO := optsim.NewLedger(), optsim.NewLedger()
	if _, err := oe.Multiply(200, 201, ledOE); err != nil {
		t.Fatal(err)
	}
	if _, err := oo.Multiply(200, 201, ledOO); err != nil {
		t.Fatal(err)
	}
	if ledOO.Latency() >= ledOE.Latency() {
		t.Errorf("OO latency %v should be below OE latency %v (single-pass vs per-bit electrical cycles)",
			ledOO.Latency(), ledOE.Latency())
	}
}
