package omac

import (
	"fmt"

	"pixel/internal/elec"
	"pixel/internal/optsim"
	"pixel/internal/photonics"
)

// OOEnsemble is the all-optical counterpart of Ensemble: the Figure
// 2(c) arrangement at bus level. Neuron words broadcast once on the
// WDM bus (as in the OE ensemble); each filter's synapse-bit MRR
// stages gate per-wavelength copies; per-(filter, lane, element) MZI
// chains form the products optically; only the digit-merge across
// products stays electrical.
type OOEnsemble struct {
	cfg     Config
	budget  photonics.LinkBudget
	mod     *optsim.Modulator
	wg      photonics.Waveguide
	conv    *photonics.AmplitudeConverter
	adder   *elec.CLAAdder
	merge   elec.GateCount
	mziOpts optsim.MZIAccumulateOptions
	mask    uint64
}

// NewOOEnsemble builds the L-OMAC all-optical ensemble.
func NewOOEnsemble(cfg Config) (*OOEnsemble, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	budget := cfg.OOLinkBudget()
	if err := budget.Check(); err != nil {
		return nil, fmt.Errorf("omac: OO ensemble link budget: %w", err)
	}
	unit := budget.LaserPowerPerWavelength
	for _, db := range cfg.pathLossDB() {
		unit *= photonics.PowerLoss(db)
	}
	conv, err := photonics.NewAmplitudeConverter(unit, cfg.Bits)
	if err != nil {
		return nil, err
	}
	conv.Coherent = true
	accWidth := elec.AccumulatorWidth(cfg.Bits, cfg.Lanes*cfg.Lanes)
	adder, err := elec.NewCLAAdder(accWidth)
	if err != nil {
		return nil, err
	}
	return &OOEnsemble{
		cfg:    cfg,
		budget: budget,
		mod:    optsim.NewModulator(budget.LaserPowerPerWavelength, cfg.Period()),
		wg:     photonics.DefaultWaveguide(cfg.LinkLength),
		conv:   conv,
		adder:  adder,
		merge:  elec.CLA(accWidth),
		mziOpts: optsim.MZIAccumulateOptions{
			Params:   cfg.MZI,
			BitRate:  cfg.BitRate,
			Lossless: true,
		},
		mask: (uint64(1) << uint(cfg.Bits)) - 1,
	}, nil
}

// Window executes the full window all-optically; indexing matches
// Ensemble.Window. Each (filter, lane, element) product forms in one
// optical pass; the L^2 products per filter merge electrically.
func (e *OOEnsemble) Window(inputs [][]uint64, synapses [][][]uint64, led *optsim.Ledger) ([]uint64, error) {
	l := e.cfg.Lanes
	if len(inputs) != l || len(synapses) != l {
		return nil, fmt.Errorf("omac: OO ensemble needs %d lanes and filters", l)
	}
	bits := e.cfg.Bits

	// One broadcast of every word: modulation and laser charged once
	// per channel for the whole ensemble (the MWSR amortization).
	type key struct{ i, j int }
	gated := make(map[key]*optsim.Signal, l*l)
	for j := 0; j < l; j++ {
		if len(inputs[j]) != l {
			return nil, fmt.Errorf("omac: input lane %d has %d elements, want %d", j, len(inputs[j]), l)
		}
		for i := 0; i < l; i++ {
			if inputs[i][j] > e.mask {
				return nil, fmt.Errorf("omac: input[%d][%d] exceeds range", i, j)
			}
			ch := j*l + i
			sig := e.mod.Modulate(wordBitsLSB(inputs[i][j], bits), ch, led)
			gated[key{i, j}] = optsim.WaveguideRun(sig, e.wg, led)
		}
	}
	e.cfg.laserEnergy(e.budget.LaserPowerPerWavelength, l*l*bits*bits, led)

	out := make([]uint64, l)
	for k, filter := range synapses {
		if len(filter) != l {
			return nil, fmt.Errorf("omac: filter %d has %d lanes, want %d", k, len(filter), l)
		}
		var acc uint64
		for i := 0; i < l; i++ {
			if len(filter[i]) != l {
				return nil, fmt.Errorf("omac: filter %d lane %d has %d elements, want %d", k, i, len(filter[i]), l)
			}
			for j := 0; j < l; j++ {
				s := filter[i][j]
				if s > e.mask {
					return nil, fmt.Errorf("omac: synapse[%d][%d][%d] exceeds range", k, i, j)
				}
				// One MRR AND stage per synapse bit, MSB first, each
				// gating a copy of the broadcast word.
				stages := make([]*optsim.Signal, bits)
				for b := 0; b < bits; b++ {
					sbit := (s >> uint(bits-1-b)) & 1
					f := photonics.DoubleMRRFilter{
						Params:  e.cfg.MRR,
						Channel: gated[key{i, j}].Channel,
						On:      sbit == 1,
					}
					_, cross := optsim.ANDFilter(gated[key{i, j}], &f, led)
					stages[b] = normalizePulses(cross, e.conv.UnitPower)
				}
				train, err := optsim.MZIAccumulate(stages, e.mziOpts, led)
				if err != nil {
					return nil, fmt.Errorf("omac: filter %d chain (%d,%d): %w", k, i, j, err)
				}
				digits, err := optsim.DetectAmplitude(train, e.conv, led)
				if err != nil {
					return nil, err
				}
				v, err := optsim.WeightedValue(digits)
				if err != nil {
					return nil, err
				}
				acc, _ = e.adder.Add(acc, uint64(v), false)
				led.Charge(optsim.CatAdd, e.merge.Energy(e.cfg.Tech))
			}
		}
		out[k] = acc
	}
	return out, nil
}
