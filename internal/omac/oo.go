package omac

import (
	"fmt"
	"math"

	"pixel/internal/elec"
	"pixel/internal/optsim"
	"pixel/internal/photonics"
)

// OOUnit is the all-optical MAC of Figure 2(c): MRR AND stages followed
// by a per-wavelength cascaded-MZI chain that shift-accumulates the
// product optically. Only the final cross-product merge (summing
// already-formed products across wavelengths) is electrical.
type OOUnit struct {
	cfg    Config
	budget photonics.LinkBudget
	mod    *optsim.Modulator
	wg     photonics.Waveguide
	conv   *photonics.AmplitudeConverter
	adder  *elec.CLAAdder
	// mergeGates is the narrow electrical adder that merges
	// per-wavelength products.
	mergeGates elec.GateCount
	accWidth   int
	mask       uint64
	mziOpts    optsim.MZIAccumulateOptions
}

// NewOOUnit builds the all-optical unit. The electrical merge adder is
// sized for `terms` products. The functional optical chain runs with the
// lossless idealization (the paper's assumption); the *link budget* and
// laser energy still pay the full MZI insertion-loss stack, which is why
// OO needs more laser power than OE (Table II).
func NewOOUnit(cfg Config, terms int) (*OOUnit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if terms < 1 {
		return nil, fmt.Errorf("omac: terms must be >= 1")
	}
	budget := cfg.OOLinkBudget()
	if err := budget.Check(); err != nil {
		return nil, fmt.Errorf("omac: OO link budget: %w", err)
	}
	// The amplitude ladder's unit is the single-pulse power at the
	// detector under the lossless-chain idealization: launch through
	// the OE-equivalent loss stack (modulator, waveguide, rings).
	unit := budget.LaserPowerPerWavelength
	for _, db := range cfg.pathLossDB() {
		unit *= photonics.PowerLoss(db)
	}
	conv, err := photonics.NewAmplitudeConverter(unit, cfg.Bits)
	if err != nil {
		return nil, fmt.Errorf("omac: OO amplitude ladder: %w", err)
	}
	conv.Coherent = true

	accWidth := elec.AccumulatorWidth(cfg.Bits, terms)
	adder, err := elec.NewCLAAdder(accWidth)
	if err != nil {
		return nil, err
	}
	return &OOUnit{
		cfg:        cfg,
		budget:     budget,
		mod:        optsim.NewModulator(budget.LaserPowerPerWavelength, cfg.Period()),
		wg:         photonics.DefaultWaveguide(cfg.LinkLength),
		conv:       conv,
		adder:      adder,
		mergeGates: elec.CLA(accWidth),
		accWidth:   accWidth,
		mask:       (uint64(1) << uint(cfg.Bits)) - 1,
		mziOpts: optsim.MZIAccumulateOptions{
			Params:   cfg.MZI,
			BitRate:  cfg.BitRate,
			Lossless: true,
		},
	}, nil
}

// Config returns the unit's configuration.
func (u *OOUnit) Config() Config { return u.cfg }

// LinkBudget returns the optical link budget the unit was built with.
func (u *OOUnit) LinkBudget() photonics.LinkBudget { return u.budget }

// AccumulatorWidth returns the electrical merge-adder width in bits.
func (u *OOUnit) AccumulatorWidth() int { return u.accWidth }

// InjectStageSkew adds a per-stage timing fault [s] to the MZI chain —
// the failure-injection hook for mis-cut inter-stage waveguides.
func (u *OOUnit) InjectStageSkew(dt float64) { u.mziOpts.StageSkewError = dt }

// Multiply computes neuron*synapse through the all-optical datapath in a
// single transmission: the neuron word is fired once per synapse-bit
// filter copy, each filter gates it with its bit, and the MZI chain
// combines the gated trains with one-slot staggering so the product's
// digit convolution appears at the output.
func (u *OOUnit) Multiply(neuron, synapse uint64, led *optsim.Ledger) (uint64, error) {
	if neuron > u.mask || synapse > u.mask {
		return 0, fmt.Errorf("omac: operand exceeds %d-bit range", u.cfg.Bits)
	}
	bits := u.cfg.Bits
	train := wordBitsLSB(neuron, bits)

	// One AND stage per synapse bit, most-significant first (stage 0
	// accumulates the most delay, hence the highest positional weight).
	inputs := make([]*optsim.Signal, bits)
	for k := 0; k < bits; k++ {
		sig := u.mod.Modulate(train, sigChannel, led)
		sig = optsim.WaveguideRun(sig, u.wg, led)
		sbit := (synapse >> uint(bits-1-k)) & 1
		filter := photonics.DoubleMRRFilter{Params: u.cfg.MRR, Channel: sigChannel, On: sbit == 1}
		_, cross := optsim.ANDFilter(sig, &filter, led)
		// Functional idealization: normalize the surviving pulses to
		// unit field so coherent sums land on the ladder's rungs; the
		// lossy reality is exercised by the failure-injection tests.
		cross = normalizePulses(cross, u.conv.UnitPower)
		inputs[k] = cross
	}
	u.cfg.laserEnergy(u.budget.LaserPowerPerWavelength, bits*bits, led)

	out, err := optsim.MZIAccumulate(inputs, u.mziOpts, led)
	if err != nil {
		return 0, fmt.Errorf("omac: MZI chain: %w", err)
	}
	digits, err := optsim.DetectAmplitude(out, u.conv, led)
	if err != nil {
		return 0, fmt.Errorf("omac: amplitude detection: %w", err)
	}
	v, err := optsim.WeightedValue(digits)
	if err != nil {
		return 0, err
	}
	return uint64(v), nil
}

// normalizePulses snaps every non-dark slot to exactly the unit field
// amplitude, keeping dark slots dark. It models the ideal (lossless,
// perfectly levelled) pulse regeneration the paper assumes between the
// AND stage and the accumulation chain.
func normalizePulses(s *optsim.Signal, unitPower float64) *optsim.Signal {
	out := s.Clone()
	unitField := complex(math.Sqrt(unitPower), 0)
	for i := range out.Amps {
		if s.Power(i) >= unitPower/4 {
			out.Amps[i] = unitField
		} else {
			out.Amps[i] = 0
		}
	}
	return out
}

// DotProduct computes the inner product through the all-optical
// datapath: per-wavelength products form optically; the merge across
// wavelengths is the one electrical step the OO design keeps.
func (u *OOUnit) DotProduct(neurons, synapses []uint64, led *optsim.Ledger) (uint64, error) {
	if len(neurons) != len(synapses) {
		return 0, fmt.Errorf("omac: vector lengths differ (%d vs %d)", len(neurons), len(synapses))
	}
	var acc uint64
	for i := range neurons {
		p, err := u.Multiply(neurons[i], synapses[i], led)
		if err != nil {
			return 0, fmt.Errorf("omac: lane %d: %w", i, err)
		}
		acc, _ = u.adder.Add(acc, p, false)
		led.Charge(optsim.CatAdd, u.mergeGates.Energy(u.cfg.Tech))
	}
	return acc, nil
}

// Window computes the Figure 2 window through the all-optical datapath;
// see OEUnit.Window for the indexing convention.
func (u *OOUnit) Window(inputs [][]uint64, synapses [][][]uint64, led *optsim.Ledger) ([]uint64, error) {
	out := make([]uint64, len(synapses))
	for k, filter := range synapses {
		if len(filter) != len(inputs) {
			return nil, fmt.Errorf("omac: filter %d has %d lanes, inputs have %d", k, len(filter), len(inputs))
		}
		var acc uint64
		for lane := range filter {
			v, err := u.DotProduct(inputs[lane], filter[lane], led)
			if err != nil {
				return nil, fmt.Errorf("omac: filter %d lane %d: %w", k, lane, err)
			}
			acc, _ = u.adder.Add(acc, v, false)
		}
		out[k] = acc
	}
	return out, nil
}
