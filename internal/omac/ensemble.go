package omac

import (
	"fmt"

	"pixel/internal/elec"
	"pixel/internal/optsim"
	"pixel/internal/photonics"
)

// Ensemble simulates the full Figure 2 arrangement at the WDM-bus
// level: L OMACs in the multiple-write-single-read discipline. OMAC j
// fires the j-th elements of all L input-neuron lanes on its band of L
// wavelengths (channel j*L+i carries I[i][j]); every OMAC k receives
// the full L^2-channel multiplexed signal and implements filter k, its
// synapse lane i dropping the L wavelengths that carry input lane i.
//
// The point of simulating at this level — beyond the per-pair units —
// is the broadcast economics: each word is modulated and lased ONCE and
// heard by all L filters, so the ensemble's comm and laser energy are
// amortized L ways, exactly the "ease of implementing broadcast"
// advantage the paper claims for photonics.
type Ensemble struct {
	cfg      Config
	budget   photonics.LinkBudget
	mod      *optsim.Modulator
	wg       photonics.Waveguide
	conv     *photonics.OEConverter
	adder    *elec.CLAAdder
	shifter  *elec.BarrelShifterFunc
	accGates elec.GateCount
	accWidth int
	mask     uint64
}

// NewEnsemble builds an L-OMAC hybrid (OE) ensemble for the
// configuration; the window it executes has L lanes x L elements per
// filter, so accumulators are sized for L^2 terms.
func NewEnsemble(cfg Config) (*Ensemble, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	budget := cfg.OELinkBudget()
	if err := budget.Check(); err != nil {
		return nil, fmt.Errorf("omac: ensemble link budget: %w", err)
	}
	conv, err := photonics.NewOEConverter(budget.ReceivedPower())
	if err != nil {
		return nil, err
	}
	accWidth := elec.AccumulatorWidth(cfg.Bits, cfg.Lanes*cfg.Lanes)
	adder, err := elec.NewCLAAdder(accWidth)
	if err != nil {
		return nil, err
	}
	shifter, err := elec.NewBarrelShifter(accWidth)
	if err != nil {
		return nil, err
	}
	return &Ensemble{
		cfg:      cfg,
		budget:   budget,
		mod:      optsim.NewModulator(budget.LaserPowerPerWavelength, cfg.Period()),
		wg:       photonics.DefaultWaveguide(cfg.LinkLength),
		conv:     conv,
		adder:    adder,
		shifter:  shifter,
		accGates: elec.CLA(accWidth).Chain(elec.BarrelShifter(accWidth)).Add(elec.Register(accWidth)),
		accWidth: accWidth,
		mask:     (uint64(1) << uint(cfg.Bits)) - 1,
	}, nil
}

// Lanes returns the ensemble's lane/OMAC count.
func (e *Ensemble) Lanes() int { return e.cfg.Lanes }

// Window executes one full window on the bus:
//
//	inputs[i][j]      — element j of input-neuron lane i
//	synapses[k][i][j] — filter k's weight against that element
//
// and returns filter k's accumulation sum_{i,j} I[i][j]*S[k][i][j].
// inputs must be L x L and synapses L x L x L for lane count L.
func (e *Ensemble) Window(inputs [][]uint64, synapses [][][]uint64, led *optsim.Ledger) ([]uint64, error) {
	l := e.cfg.Lanes
	if len(inputs) != l {
		return nil, fmt.Errorf("omac: ensemble needs %d input lanes, got %d", l, len(inputs))
	}
	for i, lane := range inputs {
		if len(lane) != l {
			return nil, fmt.Errorf("omac: input lane %d has %d elements, want %d", i, len(lane), l)
		}
		for j, v := range lane {
			if v > e.mask {
				return nil, fmt.Errorf("omac: input[%d][%d] exceeds %d-bit range", i, j, e.cfg.Bits)
			}
		}
	}
	if len(synapses) != l {
		return nil, fmt.Errorf("omac: ensemble needs %d filters, got %d", l, len(synapses))
	}
	for k, f := range synapses {
		if len(f) != l {
			return nil, fmt.Errorf("omac: filter %d has %d lanes, want %d", k, len(f), l)
		}
		for i, lane := range f {
			if len(lane) != l {
				return nil, fmt.Errorf("omac: filter %d lane %d has %d elements, want %d", k, i, len(lane), l)
			}
			for j, v := range lane {
				if v > e.mask {
					return nil, fmt.Errorf("omac: synapse[%d][%d][%d] exceeds range", k, i, j)
				}
			}
		}
	}

	bits := e.cfg.Bits
	acc := make([]uint64, l)

	// STR: one synapse bit position per cycle.
	for b := 0; b < bits; b++ {
		// The transmit side: every OMAC j modulates the words I[*][j]
		// on its band — charged once, heard by all filters.
		bus := make(optsim.Bus, l*l)
		for j := 0; j < l; j++ { // writer OMAC j
			for i := 0; i < l; i++ { // input lane i
				ch := j*l + i
				sig := e.mod.Modulate(wordBitsLSB(inputs[i][j], bits), ch, led)
				bus[ch] = optsim.WaveguideRun(sig, e.wg, led)
			}
		}
		e.cfg.laserEnergy(e.budget.LaserPowerPerWavelength, l*l*bits, led)

		// The receive side: filter k's synapse lane i drops channel
		// j*l+i through its double-MRR filter gated by synapse bit b.
		for k := 0; k < l; k++ {
			for i := 0; i < l; i++ {
				for j := 0; j < l; j++ {
					ch := j*l + i
					filter := photonics.DoubleMRRFilter{
						Params:  e.cfg.MRR,
						Channel: ch,
						On:      (synapses[k][i][j]>>uint(b))&1 == 1,
					}
					_, cross := optsim.ANDFilter(bus[ch], &filter, led)
					gatedBits := optsim.DetectOOK(cross, e.conv, led)
					var gated uint64
					for t, bit := range gatedBits {
						if bit == 1 && t < bits {
							gated |= 1 << uint(t)
						}
					}
					shifted := e.shifter.ShiftLeft(gated, b)
					acc[k], _ = e.adder.Add(acc[k], shifted, false)
					led.Charge(optsim.CatAdd, e.accGates.Energy(e.cfg.Tech))
				}
			}
		}
		led.AddLatency(e.cfg.Tech.ClockPeriod())
	}
	return acc, nil
}
