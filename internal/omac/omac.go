// Package omac implements the paper's Optical Multiply-and-Accumulate
// units as *functional* datapaths over the optical circuit simulator:
//
//   - OEUnit — the hybrid design of Figure 2(b): the bitwise AND happens
//     optically (a double-MRR filter gates the neuron pulse train with
//     one synapse bit per cycle), then the gated word is detected, and
//     the shift-accumulate runs electrically (barrel shifter + CLA),
//     exactly as in the Stripes methodology.
//   - OOUnit — the all-optical design of Figure 2(c): every synapse bit
//     has its own MRR AND stage, and a chain of cascaded MZIs with
//     bit-period-matched inter-stage waveguides delays-and-combines the
//     AND outputs so the full product appears as an amplitude- and
//     position-coded pulse train, digitised by a current-comparator
//     ladder.
//
// Both units charge every energy category (mul, add, o/e, comm, laser)
// and the path latency to an optsim.Ledger while they compute, and both
// are proven bit-exact against the electrical Stripes engine of package
// bitserial.
package omac

import (
	"fmt"

	"pixel/internal/elec"
	"pixel/internal/optsim"
	"pixel/internal/photonics"
	"pixel/internal/phy"
)

// Config describes one OMAC's operating point.
type Config struct {
	// Lanes is the number of wavelengths (== input-neuron lanes), the
	// paper's L.
	Lanes int
	// Bits is the operand precision / bits per lane, the paper's p.
	Bits int
	// BitRate is the optical line rate [Hz]; the paper runs 10 GHz.
	BitRate float64
	// LaunchPower is the per-wavelength optical power at the modulator
	// [W]. Zero means "derive from the link budget" (recommended).
	LaunchPower float64
	// LinkLength is the on-chip photonic path length from the firing
	// OMAC to the receiving filter bank [m].
	LinkLength float64
	// MarginDB is the link-budget margin [dB].
	MarginDB float64

	Tech elec.Tech
	MRR  photonics.MRRParams
	MZI  photonics.MZIParams
	PD   photonics.Photodetector
	// Laser's wall-plug efficiency is taken from this template; its
	// wavelength count and power are derived per config.
	Laser photonics.Laser
}

// DefaultConfig returns the paper's operating point for the given lane
// count and precision: 10 GHz optics, 1 GHz electronics, 2 mm on-chip
// link, 3 dB margin, and launch power derived from the link budget.
func DefaultConfig(lanes, bits int) Config {
	return Config{
		Lanes:      lanes,
		Bits:       bits,
		BitRate:    10 * phy.Gigahertz,
		LinkLength: 2 * phy.Millimeter,
		MarginDB:   3,
		Tech:       elec.Bulk22LVT(),
		MRR:        photonics.DefaultMRRParams(),
		MZI:        photonics.DefaultMZIParams(),
		PD:         photonics.DefaultPhotodetector(),
		Laser:      photonics.DefaultLaser(lanes, phy.Milliwatt),
	}
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Lanes < 1 || c.Lanes > 64:
		return fmt.Errorf("omac: lanes %d out of range [1,64]", c.Lanes)
	case c.Bits < 1 || c.Bits > 24:
		return fmt.Errorf("omac: bits %d out of range [1,24]", c.Bits)
	case c.BitRate <= 0:
		return fmt.Errorf("omac: bit rate must be positive")
	case c.LinkLength < 0 || c.MarginDB < 0 || c.LaunchPower < 0:
		return fmt.Errorf("omac: negative link parameter")
	}
	if err := c.Tech.Validate(); err != nil {
		return err
	}
	if err := c.MRR.Validate(); err != nil {
		return err
	}
	if err := c.MZI.Validate(); err != nil {
		return err
	}
	return c.PD.Validate()
}

// Period returns the optical bit-slot duration [s].
func (c Config) Period() float64 { return 1 / c.BitRate }

// pathLossDB returns the optical loss stack [dB] from modulator to
// detector, excluding the MZI accumulation chain (OE path).
func (c Config) pathLossDB() map[string]float64 {
	wg := photonics.DefaultWaveguide(c.LinkLength)
	return map[string]float64{
		"modulator":    1.0,
		"waveguide":    wg.LossDB(),
		"ring-passbys": 2 * c.MRR.ThroughLossDB * float64(c.Lanes),
		"mrr-drop":     c.MRR.DropLossDB,
	}
}

// ooExtraLossDB returns the additional loss [dB] the OO path pays
// through its MZI accumulation chain (worst-case: the pulse entering at
// the first stage traverses every MZI).
func (c Config) ooExtraLossDB() float64 {
	return float64(c.Bits) * c.MZI.InsertionLossDB
}

// OELinkBudget returns the link budget of the OE optical path using the
// configured or derived launch power. The OOK slicer needs the "one"
// level at 2x the detector sensitivity, folded into the margin.
func (c Config) OELinkBudget() photonics.LinkBudget {
	b := photonics.LinkBudget{
		LossesDB: c.pathLossDB(),
		Detector: c.PD,
		MarginDB: c.MarginDB + 3, // +3 dB: threshold sits at half the one level
	}
	b.LaserPowerPerWavelength = c.LaunchPower
	if b.LaserPowerPerWavelength == 0 {
		// 1% headroom over the exact requirement so the derived budget
		// closes despite dB round-trip rounding.
		b.LaserPowerPerWavelength = 1.01 * b.RequiredLaserPower()
	}
	return b
}

// OOLinkBudget returns the link budget of the OO optical path: the OE
// stack plus the MZI chain insertion loss plus the amplitude-resolution
// requirement (the ladder's unit spacing needs 6 dB over sensitivity).
func (c Config) OOLinkBudget() photonics.LinkBudget {
	losses := c.pathLossDB()
	losses["mzi-chain"] = c.ooExtraLossDB()
	b := photonics.LinkBudget{
		LossesDB: losses,
		Detector: c.PD,
		MarginDB: c.MarginDB + 6, // amplitude ladder resolution
	}
	b.LaserPowerPerWavelength = c.LaunchPower
	if b.LaserPowerPerWavelength == 0 {
		b.LaserPowerPerWavelength = 1.01 * b.RequiredLaserPower()
	}
	return b
}

// laserEnergy charges the wall-plug laser energy for `slots` bit slots
// at the given per-wavelength launch power.
func (c Config) laserEnergy(launch float64, slots int, led *optsim.Ledger) {
	opticalEnergy := launch * float64(slots) * c.Period()
	led.Charge(optsim.CatLaser, opticalEnergy/c.Laser.WallPlugEfficiency)
}

// wordBitsLSB returns the LSB-first bit train of a value.
func wordBitsLSB(v uint64, bits int) []int {
	out := make([]int, bits)
	for i := 0; i < bits; i++ {
		out[i] = int((v >> uint(i)) & 1)
	}
	return out
}
