package omac

import (
	"testing"
	"testing/quick"

	"pixel/internal/bitserial"
	"pixel/internal/optsim"
)

// paperWindow returns the Section II-B operands shaped for the
// ensemble: inputs[i][j] = element j of lane i; one filter per OMAC.
func paperWindow() ([][]uint64, [][][]uint64) {
	inputs := [][]uint64{
		{2, 4, 6, 9},
		{0, 1, 3, 4},
		{3, 5, 1, 2},
		{8, 2, 8, 6},
	}
	filter0 := [][]uint64{
		{6, 9, 13, 11},
		{1, 2, 1, 2},
		{2, 3, 4, 5},
		{3, 1, 3, 1},
	}
	// Four OMACs need four filters; replicate filter 0 with small
	// variations so each output is distinct.
	synapses := [][][]uint64{filter0, nil, nil, nil}
	for k := 1; k < 4; k++ {
		f := make([][]uint64, 4)
		for i := range filter0 {
			f[i] = make([]uint64, 4)
			for j := range filter0[i] {
				f[i][j] = (filter0[i][j] + uint64(k)) % 16
			}
		}
		synapses[k] = f
	}
	return inputs, synapses
}

func TestEnsembleWindowMatchesStripes(t *testing.T) {
	e, err := NewEnsemble(DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	inputs, synapses := paperWindow()
	led := optsim.NewLedger()
	got, err := e.Window(inputs, synapses, led)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bitserial.NewEngine(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.Window(inputs, synapses)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("filter %d: ensemble %d, stripes %d", k, got[k], want[k])
		}
	}
	if got[0] != 329 {
		t.Errorf("filter 0 = %d, want 329 (the paper's window, corrected)", got[0])
	}
	if led.Energy(optsim.CatMul) <= 0 || led.Energy(optsim.CatLaser) <= 0 {
		t.Error("ensemble must meter optical energy")
	}
}

func TestEnsembleWindowProperty(t *testing.T) {
	const l, bits = 2, 4
	e, err := NewEnsemble(DefaultConfig(l, bits))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bitserial.NewEngine(bits, l*l)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [l*l + l*l*l]uint8) bool {
		inputs := make([][]uint64, l)
		for i := range inputs {
			inputs[i] = make([]uint64, l)
			for j := range inputs[i] {
				inputs[i][j] = uint64(raw[i*l+j]) % 16
			}
		}
		synapses := make([][][]uint64, l)
		for k := range synapses {
			synapses[k] = make([][]uint64, l)
			for i := range synapses[k] {
				synapses[k][i] = make([]uint64, l)
				for j := range synapses[k][i] {
					synapses[k][i][j] = uint64(raw[l*l+(k*l+i)*l+j]) % 16
				}
			}
		}
		got, err := e.Window(inputs, synapses, nil)
		if err != nil {
			return false
		}
		want, _, err := ref.Window(inputs, synapses)
		if err != nil {
			return false
		}
		for k := range want {
			if got[k] != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEnsembleBroadcastAmortizesTransmitEnergy(t *testing.T) {
	// The bus-level ensemble modulates each word once for all L
	// filters; running the same window as L independent per-pair
	// units retransmits per filter. The ensemble's comm+laser must be
	// well below L times cheaper is the wrong direction: it must be
	// below the independent total by roughly the filter count.
	cfg := DefaultConfig(4, 4)
	e, err := NewEnsemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inputs, synapses := paperWindow()
	ledBus := optsim.NewLedger()
	if _, err := e.Window(inputs, synapses, ledBus); err != nil {
		t.Fatal(err)
	}

	unit, err := NewOEUnit(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	ledUnit := optsim.NewLedger()
	if _, err := unit.Window(inputs, synapses, ledUnit); err != nil {
		t.Fatal(err)
	}

	busTx := ledBus.Energy(optsim.CatComm) + ledBus.Energy(optsim.CatLaser)
	unitTx := ledUnit.Energy(optsim.CatComm) + ledUnit.Energy(optsim.CatLaser)
	if busTx >= unitTx/2 {
		t.Errorf("broadcast should amortize transmission: bus %.3g J vs per-pair %.3g J", busTx, unitTx)
	}
	// The AND work itself is identical in count, so mul energy should
	// agree within a small factor.
	if ratio := ledBus.Energy(optsim.CatMul) / ledUnit.Energy(optsim.CatMul); ratio < 0.5 || ratio > 2 {
		t.Errorf("mul energy ratio bus/per-pair = %.2f, want ~1", ratio)
	}
}

func TestOOEnsembleWindowMatchesStripes(t *testing.T) {
	e, err := NewOOEnsemble(DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	inputs, synapses := paperWindow()
	led := optsim.NewLedger()
	got, err := e.Window(inputs, synapses, led)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bitserial.NewEngine(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.Window(inputs, synapses)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("filter %d: OO ensemble %d, stripes %d", k, got[k], want[k])
		}
	}
	// The MZI chains replace the wide electrical accumulation: the OO
	// ensemble's add energy must be far below the OE ensemble's.
	oe, err := NewEnsemble(DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	ledOE := optsim.NewLedger()
	if _, err := oe.Window(inputs, synapses, ledOE); err != nil {
		t.Fatal(err)
	}
	if led.Energy(optsim.CatAdd) >= ledOE.Energy(optsim.CatAdd) {
		t.Errorf("OO ensemble add %.3g should be below OE ensemble add %.3g",
			led.Energy(optsim.CatAdd), ledOE.Energy(optsim.CatAdd))
	}
}

func TestOOEnsembleValidation(t *testing.T) {
	if _, err := NewOOEnsemble(DefaultConfig(0, 4)); err == nil {
		t.Error("invalid config should error")
	}
	e, err := NewOOEnsemble(DefaultConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	good := [][]uint64{{1, 2}, {3, 4}}
	goodS := [][][]uint64{{{1, 1}, {1, 1}}, {{2, 2}, {2, 2}}}
	if _, err := e.Window(good, goodS, nil); err != nil {
		t.Fatalf("valid window failed: %v", err)
	}
	if _, err := e.Window(good[:1], goodS, nil); err == nil {
		t.Error("short input should error")
	}
	if _, err := e.Window([][]uint64{{99, 2}, {3, 4}}, goodS, nil); err == nil {
		t.Error("oversized operand should error")
	}
	if _, err := e.Window(good, [][][]uint64{{{1, 1}}, {{2, 2}, {2, 2}}}, nil); err == nil {
		t.Error("ragged filter should error")
	}
}

func TestEnsembleShapeValidation(t *testing.T) {
	e, err := NewEnsemble(DefaultConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	good := [][]uint64{{1, 2}, {3, 4}}
	goodS := [][][]uint64{{{1, 1}, {1, 1}}, {{2, 2}, {2, 2}}}
	if _, err := e.Window(good, goodS, nil); err != nil {
		t.Fatalf("valid window failed: %v", err)
	}
	cases := []struct {
		name string
		in   [][]uint64
		sy   [][][]uint64
	}{
		{"too few lanes", [][]uint64{{1, 2}}, goodS},
		{"ragged lane", [][]uint64{{1}, {3, 4}}, goodS},
		{"too few filters", good, goodS[:1]},
		{"ragged filter", good, [][][]uint64{{{1, 1}}, {{2, 2}, {2, 2}}}},
		{"oversized operand", [][]uint64{{99, 2}, {3, 4}}, goodS},
		{"oversized synapse", good, [][][]uint64{{{99, 1}, {1, 1}}, {{2, 2}, {2, 2}}}},
	}
	for _, c := range cases {
		if _, err := e.Window(c.in, c.sy, nil); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNewEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(DefaultConfig(0, 4)); err == nil {
		t.Error("invalid config should error")
	}
}
