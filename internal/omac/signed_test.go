package omac

import (
	"testing"
	"testing/quick"

	"pixel/internal/optsim"
)

func TestSignedDotProductKnown(t *testing.T) {
	oe, err := NewOEUnit(DefaultConfig(4, 6), 8)
	if err != nil {
		t.Fatal(err)
	}
	oo, err := NewOOUnit(DefaultConfig(4, 6), 8)
	if err != nil {
		t.Fatal(err)
	}
	ns := []int64{-3, 2, -15, 7}
	ss := []int64{7, -8, 1, -1}
	want := int64(-3*7 + 2*(-8) + -15*1 + 7*(-1))
	led := optsim.NewLedger()
	got, err := oe.SignedDotProduct(ns, ss, led)
	if err != nil || got != want {
		t.Errorf("OE signed dot = %d, %v; want %d", got, err, want)
	}
	got, err = oo.SignedDotProduct(ns, ss, led)
	if err != nil || got != want {
		t.Errorf("OO signed dot = %d, %v; want %d", got, err, want)
	}
	if led.Energy(optsim.CatAdd) <= 0 {
		t.Error("correction adders must charge energy")
	}
}

func TestSignedDotProductProperty(t *testing.T) {
	const bits, terms = 5, 4
	oo, err := NewOOUnit(DefaultConfig(4, bits), terms)
	if err != nil {
		t.Fatal(err)
	}
	lim := int64(1) << (bits - 1) // values in [-16, 15]
	f := func(raw [terms * 2]int8) bool {
		ns := make([]int64, terms)
		ss := make([]int64, terms)
		var want int64
		for i := 0; i < terms; i++ {
			ns[i] = int64(raw[i]) % lim
			ss[i] = int64(raw[terms+i]) % lim
			want += ns[i] * ss[i]
		}
		got, err := oo.SignedDotProduct(ns, ss, nil)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSignedDotProductValidation(t *testing.T) {
	oe, _ := NewOEUnit(DefaultConfig(4, 6), 4)
	if _, err := oe.SignedDotProduct([]int64{1}, []int64{1, 2}, nil); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := oe.SignedDotProduct([]int64{1000}, []int64{1}, nil); err == nil {
		t.Error("out-of-range value should error")
	}
}
