// Package arch is the architectural cost model of PIXEL: it prices a
// full accelerator — EE, OE or OO, at a given lane count and bits/lane —
// in energy, latency and area, for whole CNN inferences. It is the
// engine behind every figure and table of the paper's evaluation
// (Figures 4-10, Tables I-II).
//
// # Model
//
// One *operation* is a MAC at the native operand precision P0 = 8 bits,
// executed with the Stripes bit-serial discipline (P0 cycles, one
// synapse bit per cycle). The configuration axes are:
//
//   - Lanes (L): wavelengths per OMAC; the ensemble of L OMACs executes
//     L^2 MAC streams concurrently (Figure 2).
//   - Bits/lane (B): how many bit slots each wavelength carries per
//     burst. B > P0 packs B/P0 operands per lane per burst (more
//     parallelism from the same photonics); B < P0 spreads one operand
//     over several bursts.
//
// This reading of "bits/lane" reproduces the paper's observed shapes:
// EE latency falls monotonically with B while its energy grows (wider
// electrical datapaths, superlinear wiring); the optical designs' energy
// per bit stays nearly flat in B (device count depends on L, not B) and
// their latency is U-shaped (bursts longer than the 10 GHz-per-
// electrical-cycle window need extra sub-bursts and deeper
// deserialization).
package arch

import (
	"fmt"

	"pixel/internal/elec"
	"pixel/internal/phy"
)

// Design selects the accelerator implementation.
type Design int

const (
	// EE is the all-electrical Stripes baseline.
	EE Design = iota
	// OE multiplies optically (MRRs) and accumulates electrically.
	OE
	// OO multiplies and accumulates optically (MRRs + MZI chains).
	OO
)

// Designs lists all three in presentation order.
func Designs() []Design { return []Design{EE, OE, OO} }

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case EE:
		return "EE"
	case OE:
		return "OE"
	case OO:
		return "OO"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// NativePrecision is the fixed operand precision P0 [bits] of one MAC
// operation. The paper's STR discipline serializes the synapse at this
// precision regardless of the lane burst width.
const NativePrecision = 8

// Config is one design point.
type Config struct {
	Design Design
	// Lanes is L, the wavelength/lane count.
	Lanes int
	// Bits is B, the bits per lane (burst width).
	Bits int
	// Tech is the electrical technology model.
	Tech elec.Tech
	// Cal holds the calibration constants; zero value means DefaultCal.
	Cal *Calibration
}

// NewConfig returns a validated configuration with default technology
// and calibration.
func NewConfig(d Design, lanes, bits int) (Config, error) {
	c := Config{Design: d, Lanes: lanes, Bits: bits, Tech: elec.Bulk22LVT(), Cal: DefaultCal()}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// MustConfig is NewConfig that panics on error, for tests and tables of
// known-good sweep points.
func MustConfig(d Design, lanes, bits int) Config {
	c, err := NewConfig(d, lanes, bits)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	switch c.Design {
	case EE, OE, OO:
	default:
		return fmt.Errorf("arch: unknown design %d", int(c.Design))
	}
	if c.Lanes < 1 || c.Lanes > 64 {
		return fmt.Errorf("arch: lanes %d out of range [1,64]", c.Lanes)
	}
	if c.Bits < 1 || c.Bits > 64 {
		return fmt.Errorf("arch: bits/lane %d out of range [1,64]", c.Bits)
	}
	if err := c.Tech.Validate(); err != nil {
		return err
	}
	if c.Cal == nil {
		return fmt.Errorf("arch: nil calibration (use NewConfig)")
	}
	return c.Cal.Validate()
}

// OperandsPerBurst returns B/P0: how many native-precision operands one
// lane carries per burst (may be fractional below 1).
func (c Config) OperandsPerBurst() float64 {
	return float64(c.Bits) / NativePrecision
}

// ConcurrentOps returns the number of native MAC operations in flight
// per round: L^2 streams x operands per burst.
func (c Config) ConcurrentOps() float64 {
	return float64(c.Lanes*c.Lanes) * c.OperandsPerBurst()
}

// AccumulatorWidth returns the width of one per-operand electrical
// accumulator: 2*P0 product bits, window-growth headroom for the L^2
// concurrent streams, and merge headroom for the operands packed per
// burst. (Bursts wider than the native precision are accumulated by
// parallel native-width units plus a merge tree, not one monolithic
// wide CLA.)
func (c Config) AccumulatorWidth() int {
	w := 2*NativePrecision + phy.Log2Ceil(c.Lanes*c.Lanes)
	if opb := c.Bits / NativePrecision; opb > 1 {
		w += phy.Log2Ceil(opb)
	}
	return w
}
