package arch

import (
	"pixel/internal/elec"
	"pixel/internal/photonics"
)

// AreaBreakdown itemizes the layout area [m^2] of a MAC-unit ensemble.
type AreaBreakdown struct {
	Electrical float64 // AND arrays, accumulators, activation units
	Rings      float64 // MRR filters and modulators
	MZIs       float64 // MZI accumulation chains
	Waveguides float64 // the chains' bit-period-matched inter-stage paths
	Receivers  float64 // photodiodes and converter front ends
}

// Total returns the summed area [m^2].
func (a AreaBreakdown) Total() float64 {
	return a.Electrical + a.Rings + a.MZIs + a.Waveguides + a.Receivers
}

// Area returns the area breakdown of the configuration's MAC-unit
// ensemble. The orderings the paper reports (Figure 6) emerge from the
// device footprints: 22 nm logic is tiny, rings are tens of micrometers,
// and the 2 mm-armed MZIs dominate everything — EE < OE << OO.
func Area(cfg Config) AreaBreakdown {
	census := DeviceCensus(cfg)
	tech := cfg.Tech
	w := cfg.AccumulatorWidth()

	var a AreaBreakdown

	acc := elec.Accumulator(w).Area(tech)
	act := elec.TanhUnitGates(w).Area(tech)
	andArr := elec.ANDArray(cfg.Bits).Area(tech)
	a.Electrical = float64(census.Accumulators)*acc +
		float64(census.ActUnits)*act +
		float64(census.ANDArrays)*andArr

	ringArea := photonics.DefaultMRRParams().RingArea()
	a.Rings = float64(census.TotalRings()) * ringArea

	mziArea := photonics.DefaultMZIParams().Area()
	a.MZIs = float64(census.MZIs) * mziArea
	if census.MZIs > 0 {
		// Each chain of NativePrecision stages needs NativePrecision-1
		// inter-stage paths cut to one bit period (Eq. 8/9, ~6.6 mm),
		// routed at the standard waveguide pitch — in fact the largest
		// single contributor to OO area.
		if dPath, err := photonics.DefaultMZIParams().InterStagePath(cfg.Cal.OpticalRate); err == nil {
			chains := census.MZIs / NativePrecision
			perChain := float64(NativePrecision-1) * dPath
			pitch := photonics.DefaultWaveguide(0).Pitch
			a.Waveguides = float64(chains) * perChain * pitch
		}
	}

	pd := photonics.DefaultPhotodetector().Area
	ladderExtra := elec.ComparatorLadder(NativePrecision + 1).Area(tech)
	a.Receivers = float64(census.Detectors)*pd + float64(census.Ladders)*ladderExtra

	return a
}
