package arch

// Census counts the devices of a full MAC-unit ensemble (L OMACs, the
// arrangement of Figure 2): L^2 concurrent MAC streams, one filter per
// OMAC.
type Census struct {
	// MRRFilterRings is the number of rings in the AND filter banks.
	// Per the paper's worked example the L-OMAC ensemble has L^3
	// double-ring filters = 2*L^3 rings (128 rings at L = 4).
	MRRFilterRings int
	// ModulatorRings is the number of E/O modulator rings (one per
	// transmitted wavelength per OMAC: L^2 total).
	ModulatorRings int
	// MZIs is the number of Mach-Zehnder stages (OO only): one chain of
	// NativePrecision stages per MAC stream.
	MZIs int
	// Detectors is the number of photodiode receivers.
	Detectors int
	// Ladders is the number of comparator-ladder converters (OO only).
	Ladders int
	// ANDArrays is the number of electrical AND arrays (EE only).
	ANDArrays int
	// Accumulators is the number of electrical shift-accumulate units.
	Accumulators int
	// ActUnits is the number of activation-function units.
	ActUnits int
}

// DeviceCensus returns the device counts for the configuration.
func DeviceCensus(cfg Config) Census {
	l := cfg.Lanes
	streams := l * l
	switch cfg.Design {
	case EE:
		return Census{
			ANDArrays:    streams,
			Accumulators: streams,
			ActUnits:     l,
		}
	case OE:
		return Census{
			MRRFilterRings: 2 * l * l * l,
			ModulatorRings: streams,
			Detectors:      streams,
			Accumulators:   streams,
			ActUnits:       l,
		}
	case OO:
		return Census{
			MRRFilterRings: 2 * l * l * l,
			ModulatorRings: streams,
			MZIs:           streams * NativePrecision,
			Detectors:      streams,
			Ladders:        streams,
			// Only the narrow merge adders remain electrical.
			Accumulators: l,
			ActUnits:     l,
		}
	default:
		return Census{}
	}
}

// TotalRings returns all microrings (filters + modulators).
func (c Census) TotalRings() int {
	return c.MRRFilterRings + c.ModulatorRings
}
