package arch

import (
	"fmt"

	"pixel/internal/phy"
)

// Calibration holds the technology constants the cost model combines
// with the structural formulas. Every constant either comes straight
// from the paper (cited below) or is a free parameter fixed once so the
// paper's own worked examples and headline ratios reproduce; the bands
// are asserted by the headline tests in internal/eval.
//
// Paper-stated constants:
//   - MRR switch energy 500 fJ/bit (Section IV-C worked example:
//     128 MRRs x 500 fJ x 4 bits x 4 cycles = 1.024 nJ).
//   - MZI modulation energy 32.4 fJ/bit (Section IV-A2).
//   - 10 GHz optical clock, 1 GHz electrical clock, 0.295 ns/level
//     (8-bit CLA with LD = 10 -> 2.95 ns).
//
// Fitted constants, each documented with the paper target it was fixed
// against (fitting was done once, at the L = 4, B = 16 calibration
// point of Table II, and the constants are frozen here):
//   - EEMulBitCycle -> optical multiply = ~5.1% of EE multiply.
//   - PDPerBit -> Table II's o/e column (o/e slightly above optical mul).
//   - ElinkPerBit, ModulatorPerBit -> optical comm ~0.85x electrical.
//   - OELaunchPower/OOLaunchPower -> Table II laser column, OO ~1.5x OE.
//   - OEAddOverhead -> OE accumulation slightly above EE's (910 vs 847).
//   - OOResidualAddFraction -> OO accumulation ~46% of OE's.
//   - RoundOverhead, DeserializeQuad, OOLadderQuadFactor -> Figure 8's
//     U-shaped optical latency and Figure 9's ZFNet Conv2 gaps
//     (OO ~32% faster than EE, ~19% than OE at 8 lanes / 8 bits).
type Calibration struct {
	// MRRSwitchPerBit is the per-ring actuation energy per bit [J].
	MRRSwitchPerBit float64
	// MRRTuningPower is the static per-ring thermal tuning power [W].
	MRRTuningPower float64
	// MZIPerBit is the MZI modulation energy per bit slot [J].
	MZIPerBit float64
	// PDPerBit is the receiver energy per detected bit, including TIA,
	// amplification and clock recovery [J].
	PDPerBit float64
	// ModulatorPerBit is the E/O modulator energy per bit [J].
	ModulatorPerBit float64

	// EEMulBitCycle is the electrical multiply-path energy per bit
	// position per bit-serial cycle, broadcast-bus wiring included [J].
	EEMulBitCycle float64
	// EEWireFactorPerBit adds superlinear wiring cost on wide
	// electrical datapaths: multiplier (1 + B*this).
	EEWireFactorPerBit float64
	// EEWireFactorPerLane adds broadcast-bus cost with array size:
	// multiplier (1 + L*this) on the EE multiply path.
	EEWireFactorPerLane float64
	// ElinkPerBit is the electrical link energy per bit moved [J].
	ElinkPerBit float64

	// OEAddOverhead multiplies OE's electrical accumulation relative to
	// EE's (deserialization registers in the EP).
	OEAddOverhead float64
	// OOResidualAddFraction is the share of the native-width electrical
	// accumulation OO still performs (digit-to-binary and window
	// merging stay electrical).
	OOResidualAddFraction float64

	// LaserWallPlug is the laser wall-plug efficiency (0..1].
	LaserWallPlug float64
	// OELaunchPower / OOLaunchPower are per-wavelength launch powers
	// [W]; OO pays the MZI chain loss and the amplitude-ladder margin.
	OELaunchPower float64
	OOLaunchPower float64

	// OpticalRate is the photonic line rate [Hz].
	OpticalRate float64
	// ElectricalCycle is the electrical clock period [s].
	ElectricalCycle float64
	// RoundOverhead is the fixed per-round scheduling/weight-access
	// time [s], identical across designs.
	RoundOverhead float64
	// DeserializeQuad scales the optical designs' conversion time that
	// grows quadratically with burst width: t += this * (B^2/64).
	DeserializeQuad float64
	// OOLadderQuadFactor multiplies DeserializeQuad for the OO design's
	// comparator-ladder settling (deeper analog resolution).
	OOLadderQuadFactor float64

	// TanhPerEval is the activation unit energy per evaluation [J].
	TanhPerEval float64
}

// DefaultCal returns the frozen calibration described above.
func DefaultCal() *Calibration {
	return &Calibration{
		MRRSwitchPerBit: 500 * phy.Femtojoule,
		MRRTuningPower:  2 * phy.Microwatt,
		MZIPerBit:       32.4 * phy.Femtojoule,
		PDPerBit:        500 * phy.Femtojoule,
		ModulatorPerBit: 350 * phy.Femtojoule,

		EEMulBitCycle:       10 * phy.Picojoule,
		EEWireFactorPerBit:  1.0 / 16,
		EEWireFactorPerLane: 1.0 / 16,
		ElinkPerBit:         0.25 * phy.Picojoule,

		OEAddOverhead:         1.075,
		OOResidualAddFraction: 0.29,

		LaserWallPlug: 0.10,
		OELaunchPower: 40 * phy.Microwatt,
		OOLaunchPower: 60 * phy.Microwatt,

		OpticalRate:        10 * phy.Gigahertz,
		ElectricalCycle:    1 * phy.Nanosecond,
		RoundOverhead:      35 * phy.Nanosecond,
		DeserializeQuad:    1.9 * phy.Nanosecond,
		OOLadderQuadFactor: 4.5,

		TanhPerEval: 150 * phy.Femtojoule,
	}
}

// Validate reports an error for non-physical calibrations.
func (c *Calibration) Validate() error {
	switch {
	case c.MRRSwitchPerBit <= 0 || c.MZIPerBit <= 0 || c.PDPerBit <= 0 || c.ModulatorPerBit <= 0:
		return fmt.Errorf("arch: photonic per-bit energies must be positive")
	case c.EEMulBitCycle <= 0 || c.ElinkPerBit <= 0:
		return fmt.Errorf("arch: electrical energies must be positive")
	case c.EEWireFactorPerBit < 0 || c.EEWireFactorPerLane < 0 || c.MRRTuningPower < 0:
		return fmt.Errorf("arch: wire factors / tuning power must be non-negative")
	case c.OEAddOverhead < 1:
		return fmt.Errorf("arch: OE add overhead must be >= 1")
	case c.OOResidualAddFraction < 0 || c.OOResidualAddFraction > 1:
		return fmt.Errorf("arch: OO residual add fraction %v out of [0,1]", c.OOResidualAddFraction)
	case c.LaserWallPlug <= 0 || c.LaserWallPlug > 1:
		return fmt.Errorf("arch: wall-plug efficiency out of (0,1]")
	case c.OELaunchPower <= 0 || c.OOLaunchPower <= c.OELaunchPower:
		return fmt.Errorf("arch: launch powers must be positive with OO > OE")
	case c.OpticalRate <= 0 || c.ElectricalCycle <= 0:
		return fmt.Errorf("arch: clocks must be positive")
	case c.RoundOverhead < 0 || c.DeserializeQuad < 0 || c.OOLadderQuadFactor < 0:
		return fmt.Errorf("arch: timing overheads must be non-negative")
	case c.TanhPerEval <= 0:
		return fmt.Errorf("arch: activation energy must be positive")
	}
	return nil
}

// SlotTime returns the optical bit-slot duration [s].
func (c *Calibration) SlotTime() float64 { return 1 / c.OpticalRate }
