package arch

import (
	"testing"

	"pixel/internal/cnn"
)

func TestParetoFrontierProperties(t *testing.T) {
	frontier, err := ParetoFrontier(cnn.AlexNet(), Designs(), []int{4, 8}, []int{4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) == 0 {
		t.Fatal("frontier must not be empty")
	}
	// Sorted by energy; latency must be non-increasing along a Pareto
	// frontier.
	for i := 1; i < len(frontier); i++ {
		if frontier[i].EnergyJ < frontier[i-1].EnergyJ {
			t.Fatal("frontier not sorted by energy")
		}
		if frontier[i].LatencyS > frontier[i-1].LatencyS {
			t.Errorf("frontier point %d has worse latency AND worse energy", i)
		}
	}
	// No frontier point dominates another.
	for i, p := range frontier {
		for j, q := range frontier {
			if i != j && p.dominates(q) {
				t.Errorf("frontier point %d dominates %d", i, j)
			}
		}
	}
}

func TestParetoFrontierExcludesDominated(t *testing.T) {
	// EE at the headline point is strictly dominated by OO (worse
	// energy, comparable-or-worse EDP); it must not appear on the
	// frontier when OO is swept too.
	frontier, err := ParetoFrontier(cnn.LeNet(), Designs(), []int{4}, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range frontier {
		if p.Design == EE {
			// EE could only survive by being fastest; verify it is.
			for _, q := range frontier {
				if q.Design != EE && q.LatencyS <= p.LatencyS {
					t.Error("EE survived the frontier without a latency edge")
				}
			}
		}
	}
}

func TestParetoFrontierPropagatesErrors(t *testing.T) {
	if _, err := ParetoFrontier(cnn.LeNet(), Designs(), []int{0}, []int{8}); err == nil {
		t.Error("invalid axis should error")
	}
}

func TestDominates(t *testing.T) {
	a := DesignPoint{EnergyJ: 1, LatencyS: 1}
	b := DesignPoint{EnergyJ: 2, LatencyS: 2}
	c := DesignPoint{EnergyJ: 1, LatencyS: 2}
	if !a.dominates(b) || b.dominates(a) {
		t.Error("strict domination wrong")
	}
	if !a.dominates(c) || c.dominates(a) {
		t.Error("one-axis domination wrong")
	}
	if a.dominates(a) {
		t.Error("a point must not dominate itself")
	}
}
