package arch

import (
	"math"
	"testing"

	"pixel/internal/cnn"
)

func lenetCost(t *testing.T, d Design) NetworkCost {
	t.Helper()
	nc, err := CostNetwork(cnn.LeNet(), MustConfig(d, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

// TestApplyProtectionRedundancyOO pins the headline accounting: 3-way
// redundancy on the all-optical design roughly triples the optical
// energy and area while leaving latency alone (the copies ride spare
// wavelengths in parallel).
func TestApplyProtectionRedundancyOO(t *testing.T) {
	nc := lenetCost(t, OO)
	o := ProtectionOverhead{
		Scheme: "tmr", OpticalFactor: 3, ElectricalFactor: 1.05,
		ExecutionFactor: 1, LaserFactor: 1, TuningFactor: 1,
	}
	pc, err := ApplyProtection(nc, o)
	if err != nil {
		t.Fatal(err)
	}
	if e := pc.EnergyOverhead(); e < 2.5 || e > 3.1 {
		t.Errorf("TMR OO energy overhead %.3f, want ~3 (optical-dominated design)", e)
	}
	if l := pc.LatencyOverhead(); l != 1 {
		t.Errorf("TMR OO latency overhead %.3f, want exactly 1 (parallel copies)", l)
	}
	if a := pc.AreaOverhead(); a < 2.5 {
		t.Errorf("TMR OO area overhead %.3f, want ~3", a)
	}
	// The protected breakdown must dominate the base in every category
	// it scales — no free protection.
	if pc.Protected.Energy.Total() <= pc.Base.Energy.Total() {
		t.Error("protected energy not above base")
	}
}

// TestApplyProtectionExecutions pins that a measured retry factor
// scales latency and the per-execution energy together.
func TestApplyProtectionExecutions(t *testing.T) {
	nc := lenetCost(t, OO)
	o := ProtectionOverhead{
		Scheme: "parity", OpticalFactor: 1.125, ElectricalFactor: 1.125,
		ExecutionFactor: 1, LaserFactor: 1, TuningFactor: 1,
	}.WithExecutions(1.4)
	if o.ExecutionFactor != 1.4 {
		t.Fatalf("WithExecutions folded to %v, want 1.4", o.ExecutionFactor)
	}
	pc, err := ApplyProtection(nc, o)
	if err != nil {
		t.Fatal(err)
	}
	if l := pc.LatencyOverhead(); math.Abs(l-1.4) > 1e-9 {
		t.Errorf("latency overhead %.4f, want 1.4 (the retry factor)", l)
	}
	if e := pc.EnergyOverhead(); e <= 1.4 {
		t.Errorf("energy overhead %.4f, want > 1.4 (retries on top of the parity lane)", e)
	}
	// A sub-1 or non-finite measured factor must not discount the cost.
	if got := (ProtectionOverhead{ExecutionFactor: 1}).WithExecutions(0.5).ExecutionFactor; got != 1 {
		t.Errorf("WithExecutions(0.5) = %v, want unchanged 1", got)
	}
	if got := (ProtectionOverhead{ExecutionFactor: 1}).WithExecutions(math.Inf(1)).ExecutionFactor; got != 1 {
		t.Errorf("WithExecutions(+Inf) = %v, want unchanged 1", got)
	}
}

// TestApplyProtectionTuningAndLaser pins the guard-banding price: only
// the laser and the static-tuning slice of the multiply move, so the
// overhead is real but far below a redundancy scheme's.
func TestApplyProtectionTuningAndLaser(t *testing.T) {
	nc := lenetCost(t, OO)
	o := ProtectionOverhead{
		Scheme: "guardband", OpticalFactor: 1, ElectricalFactor: 1.02,
		ExecutionFactor: 1, LaserFactor: 2, TuningFactor: 2,
	}
	pc, err := ApplyProtection(nc, o)
	if err != nil {
		t.Fatal(err)
	}
	e := pc.EnergyOverhead()
	if e <= 1 {
		t.Errorf("guardband energy overhead %.4f, want > 1 (no free protection)", e)
	}
	if e >= 2 {
		t.Errorf("guardband energy overhead %.4f, want < 2 (rate-level, not redundancy)", e)
	}
	if l := pc.LatencyOverhead(); l != 1 {
		t.Errorf("guardband latency overhead %.3f, want 1", l)
	}
	if pc.Protected.Energy.Laser <= 2*nc.Energy.Laser*0.999 || pc.Protected.Energy.Laser > 2*nc.Energy.Laser*1.001 {
		t.Errorf("laser energy %.3g, want exactly doubled from %.3g", pc.Protected.Energy.Laser, nc.Energy.Laser)
	}
}

// TestApplyProtectionEE pins the all-electrical path: optical factors
// are inert, time redundancy carries the cost.
func TestApplyProtectionEE(t *testing.T) {
	nc := lenetCost(t, EE)
	o := ProtectionOverhead{
		Scheme: "tmr", OpticalFactor: 1, ElectricalFactor: 1.05,
		ExecutionFactor: 3, LaserFactor: 1, TuningFactor: 1,
	}
	pc, err := ApplyProtection(nc, o)
	if err != nil {
		t.Fatal(err)
	}
	if l := pc.LatencyOverhead(); math.Abs(l-3) > 1e-9 {
		t.Errorf("EE time-redundancy latency overhead %.3f, want 3", l)
	}
	if e := pc.EnergyOverhead(); e < 2.9 {
		t.Errorf("EE time-redundancy energy overhead %.3f, want ~3", e)
	}
}

// TestProtectionOverheadValidate rejects sub-1 and non-finite factors.
func TestProtectionOverheadValidate(t *testing.T) {
	good := ProtectionOverhead{
		OpticalFactor: 1, ElectricalFactor: 1, ExecutionFactor: 1,
		LaserFactor: 1, TuningFactor: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("all-1 overhead rejected: %v", err)
	}
	for name, mut := range map[string]func(*ProtectionOverhead){
		"optical<1":   func(o *ProtectionOverhead) { o.OpticalFactor = 0.9 },
		"exec zero":   func(o *ProtectionOverhead) { o.ExecutionFactor = 0 },
		"laser NaN":   func(o *ProtectionOverhead) { o.LaserFactor = math.NaN() },
		"tuning +Inf": func(o *ProtectionOverhead) { o.TuningFactor = math.Inf(1) },
	} {
		o := good
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, o)
		}
		if _, err := ApplyProtection(lenetCost(t, OE), o); err == nil {
			t.Errorf("%s: ApplyProtection accepted %+v", name, o)
		}
	}
}
