package arch

import (
	"math"
	"testing"

	"pixel/internal/cnn"
)

func TestThroughputConsistency(t *testing.T) {
	cfg := MustConfig(OO, 4, 8)
	r, err := Throughput(cnn.AlexNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.InferencesPerSecond <= 0 || r.AvgPowerW <= 0 || r.InferencesPerJoule <= 0 {
		t.Fatalf("degenerate report %+v", r)
	}
	// Identities: rate = 1/latency, power = E/t, efficiency = 1/E.
	if math.Abs(r.InferencesPerSecond*r.LatencyPerInferenceS-1) > 1e-12 {
		t.Error("rate * latency != 1")
	}
	if math.Abs(r.AvgPowerW*r.LatencyPerInferenceS-r.EnergyPerInferenceJ) > 1e-12*r.EnergyPerInferenceJ {
		t.Error("power * latency != energy")
	}
	if math.Abs(r.InferencesPerJoule*r.EnergyPerInferenceJ-1) > 1e-12 {
		t.Error("efficiency * energy != 1")
	}
}

func TestThroughputLeNetFasterThanVGG(t *testing.T) {
	cfg := MustConfig(OE, 4, 8)
	small, err := Throughput(cnn.LeNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Throughput(cnn.VGG16(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if small.InferencesPerSecond <= big.InferencesPerSecond {
		t.Error("LeNet must run at a higher rate than VGG16")
	}
	if small.InferencesPerJoule <= big.InferencesPerJoule {
		t.Error("LeNet must be more efficient per inference than VGG16")
	}
}

func TestBestDesignByEfficiencyIsOOAtHighBits(t *testing.T) {
	d, r, err := BestDesignByEfficiency(cnn.AlexNet(), 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d != OO {
		t.Errorf("best design at 4 lanes/16 bits = %v, want OO", d)
	}
	if r.InferencesPerJoule <= 0 {
		t.Error("efficiency must be positive")
	}
}

func TestThroughputRejectsInvalidConfig(t *testing.T) {
	cfg := MustConfig(EE, 4, 8)
	cfg.Lanes = 0
	if _, err := Throughput(cnn.LeNet(), cfg); err == nil {
		t.Error("invalid config should error")
	}
	if _, _, err := BestDesignByEfficiency(cnn.LeNet(), 0, 8); err == nil {
		t.Error("invalid lanes should error")
	}
}
