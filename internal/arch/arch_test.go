package arch

import (
	"math"
	"testing"

	"pixel/internal/cnn"
)

func TestConfigValidation(t *testing.T) {
	if _, err := NewConfig(EE, 4, 8); err != nil {
		t.Fatal(err)
	}
	bad := []struct{ l, b int }{{0, 8}, {65, 8}, {4, 0}, {4, 65}}
	for _, c := range bad {
		if _, err := NewConfig(EE, c.l, c.b); err == nil {
			t.Errorf("lanes=%d bits=%d should fail", c.l, c.b)
		}
	}
	if _, err := NewConfig(Design(9), 4, 8); err == nil {
		t.Error("unknown design should fail")
	}
	c := MustConfig(EE, 4, 8)
	c.Cal = nil
	if err := c.Validate(); err == nil {
		t.Error("nil calibration should fail")
	}
}

func TestMustConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustConfig(EE, 0, 0)
}

func TestDesignString(t *testing.T) {
	if EE.String() != "EE" || OE.String() != "OE" || OO.String() != "OO" {
		t.Error("design names wrong")
	}
	if Design(9).String() == "" {
		t.Error("unknown design should render")
	}
	if len(Designs()) != 3 {
		t.Error("Designs() should list all three")
	}
}

func TestCalibrationValidate(t *testing.T) {
	if err := DefaultCal().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Calibration){
		func(c *Calibration) { c.MRRSwitchPerBit = 0 },
		func(c *Calibration) { c.EEMulBitCycle = 0 },
		func(c *Calibration) { c.OEAddOverhead = 0.9 },
		func(c *Calibration) { c.OOResidualAddFraction = 1.5 },
		func(c *Calibration) { c.LaserWallPlug = 0 },
		func(c *Calibration) { c.OOLaunchPower = c.OELaunchPower / 2 },
		func(c *Calibration) { c.OpticalRate = 0 },
		func(c *Calibration) { c.TanhPerEval = 0 },
	}
	for i, m := range mutations {
		c := *DefaultCal()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestOperandsPerBurstAndConcurrency(t *testing.T) {
	c := MustConfig(EE, 4, 16)
	if c.OperandsPerBurst() != 2 {
		t.Errorf("opb = %v, want 2", c.OperandsPerBurst())
	}
	if c.ConcurrentOps() != 32 {
		t.Errorf("concurrent = %v, want 32", c.ConcurrentOps())
	}
	half := MustConfig(EE, 4, 4)
	if half.OperandsPerBurst() != 0.5 {
		t.Errorf("opb at B=4 = %v, want 0.5", half.OperandsPerBurst())
	}
}

func TestAccumulatorWidth(t *testing.T) {
	// 2*P0 + log2(L^2) + log2(opb): 16 + 4 + 1.
	if w := MustConfig(EE, 4, 16).AccumulatorWidth(); w != 21 {
		t.Errorf("W(4,16) = %d, want 21", w)
	}
	// Narrow bursts have no packing headroom.
	if w := MustConfig(EE, 4, 1).AccumulatorWidth(); w != 20 {
		t.Errorf("W(4,1) = %d, want 20", w)
	}
}

func TestDeviceCensusPaperWorkedExample(t *testing.T) {
	// Section IV-C: the 4-lane ensemble has 128 MRRs (64 double filters).
	c := DeviceCensus(MustConfig(OE, 4, 4))
	if c.MRRFilterRings != 128 {
		t.Errorf("filter rings = %d, want 128", c.MRRFilterRings)
	}
	if c.ModulatorRings != 16 {
		t.Errorf("modulator rings = %d, want 16", c.ModulatorRings)
	}
	if c.MZIs != 0 {
		t.Error("OE has no MZIs")
	}
}

func TestDeviceCensusByDesign(t *testing.T) {
	ee := DeviceCensus(MustConfig(EE, 8, 8))
	if ee.TotalRings() != 0 || ee.ANDArrays != 64 || ee.Accumulators != 64 || ee.ActUnits != 8 {
		t.Errorf("EE census wrong: %+v", ee)
	}
	oo := DeviceCensus(MustConfig(OO, 8, 8))
	if oo.MZIs != 64*NativePrecision {
		t.Errorf("OO MZIs = %d, want %d", oo.MZIs, 64*NativePrecision)
	}
	if oo.Ladders != 64 {
		t.Errorf("OO ladders = %d, want 64", oo.Ladders)
	}
	if oo.Accumulators >= DeviceCensus(MustConfig(OE, 8, 8)).Accumulators {
		t.Error("OO should keep fewer electrical accumulators than OE")
	}
}

// --- Calibration-point assertions (L=4, B=16, the paper's Table II
// operating point). Bands are chosen to contain both the paper's number
// and the frozen model's; a constant change that leaves the band fails.

func TestOpticalMultiplySavingBand(t *testing.T) {
	ee := PerOp(MustConfig(EE, 4, 16))
	oe := PerOp(MustConfig(OE, 4, 16))
	ratio := oe.Mul / ee.Mul
	// Paper: optical mul = 5.1% of EE mul.
	if ratio < 0.035 || ratio > 0.065 {
		t.Errorf("optical/EE multiply ratio = %.3f, want ~0.051 (band [0.035,0.065])", ratio)
	}
}

func TestOOAccumulationSavingBand(t *testing.T) {
	oe := PerOp(MustConfig(OE, 4, 16))
	oo := PerOp(MustConfig(OO, 4, 16))
	ratio := oo.Add / oe.Add
	// Paper: OO accumulation 53.8% cheaper than OE -> ratio ~0.46.
	if ratio < 0.38 || ratio > 0.54 {
		t.Errorf("OO/OE accumulate ratio = %.3f, want ~0.46 (band [0.38,0.54])", ratio)
	}
}

func TestCommAndLaserRatios(t *testing.T) {
	ee := PerOp(MustConfig(EE, 4, 16))
	oe := PerOp(MustConfig(OE, 4, 16))
	oo := PerOp(MustConfig(OO, 4, 16))
	if r := oe.Comm / ee.Comm; r < 0.75 || r > 0.95 {
		t.Errorf("optical/EE comm ratio = %.3f, want ~0.85", r)
	}
	// Table II: OO laser ~1.5x OE laser.
	if r := oo.Laser / oe.Laser; r < 1.3 || r > 1.7 {
		t.Errorf("OO/OE laser ratio = %.3f, want ~1.5", r)
	}
	if ee.Laser != 0 || ee.OtoE != 0 {
		t.Error("EE has no laser or o/e energy")
	}
}

func TestEELatencyMonotoneInBits(t *testing.T) {
	prev := math.Inf(1)
	for _, b := range []int{1, 2, 4, 8, 12, 16, 24, 32} {
		lat := OpLatency(MustConfig(EE, 8, b))
		if lat >= prev {
			t.Errorf("EE per-op latency not decreasing at B=%d: %v >= %v", b, lat, prev)
		}
		prev = lat
	}
}

func TestOpticalLatencyUShaped(t *testing.T) {
	for _, d := range []Design{OE, OO} {
		bits := []int{1, 2, 4, 8, 12, 16, 24, 32}
		lats := make([]float64, len(bits))
		for i, b := range bits {
			lats[i] = OpLatency(MustConfig(d, 8, b))
		}
		minIdx := 0
		for i, v := range lats {
			if v < lats[minIdx] {
				minIdx = i
			}
		}
		if minIdx == 0 || minIdx == len(bits)-1 {
			t.Errorf("%v latency should have an interior minimum, got index %d (%v)", d, minIdx, lats)
		}
		if lats[len(lats)-1] <= lats[minIdx] {
			t.Errorf("%v latency should rise after the minimum", d)
		}
	}
}

func TestZFNetConv2LatencyGaps(t *testing.T) {
	// Paper Figure 9: at 8 lanes / 8 bits, Conv2 is 31.9% faster on OO
	// than EE and 18.6% faster than OE.
	zf := cnn.ZFNet()
	lat := map[Design]float64{}
	for _, d := range Designs() {
		c, err := CostNetwork(zf, MustConfig(d, 8, 8))
		if err != nil {
			t.Fatal(err)
		}
		lat[d] = c.Layers[1].Latency
	}
	vsEE := 1 - lat[OO]/lat[EE]
	vsOE := 1 - lat[OO]/lat[OE]
	if vsEE < 0.25 || vsEE > 0.40 {
		t.Errorf("OO vs EE Conv2 speedup = %.1f%%, want ~31.9%% (band [25,40])", 100*vsEE)
	}
	if vsOE < 0.12 || vsOE > 0.28 {
		t.Errorf("OO vs OE Conv2 speedup = %.1f%%, want ~18.6%% (band [12,28])", 100*vsOE)
	}
}

func TestHeadlineEDPImprovements(t *testing.T) {
	// Paper Section V-B3: at 4 lanes / 16 bits-lane, geomean EDP across
	// the six CNNs improves 48.4% (OE) and 73.9% (OO) over EE.
	geo := func(d Design) float64 {
		cfg := MustConfig(d, 4, 16)
		logSum := 0.0
		for _, net := range cnn.All() {
			c, err := CostNetwork(net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			logSum += math.Log(c.EDP())
		}
		return math.Exp(logSum / 6)
	}
	ee, oe, oo := geo(EE), geo(OE), geo(OO)
	oeImp := 1 - oe/ee
	ooImp := 1 - oo/ee
	if oeImp < 0.42 || oeImp > 0.60 {
		t.Errorf("OE EDP improvement = %.1f%%, want ~48.4%% (band [42,60])", 100*oeImp)
	}
	if ooImp < 0.68 || ooImp > 0.86 {
		t.Errorf("OO EDP improvement = %.1f%%, want ~73.9%% (band [68,86])", 100*ooImp)
	}
	if oo >= oe {
		t.Error("OO must beat OE on EDP at the calibration point")
	}
}

func TestOpticalWinsEnergyWhenBitsExceedLanes(t *testing.T) {
	// Paper Section V-B1: "Both OE and OO designs begin to outperform
	// EE when the number of bits/lane is greater than the number of
	// lanes."
	for _, lanes := range []int{4, 8} {
		highB := 4 * lanes
		ee := PerOp(MustConfig(EE, lanes, highB)).Total()
		oe := PerOp(MustConfig(OE, lanes, highB)).Total()
		oo := PerOp(MustConfig(OO, lanes, highB)).Total()
		if oe >= ee || oo >= ee {
			t.Errorf("lanes=%d bits=%d: optical (%g, %g) should beat EE (%g)", lanes, highB, oe, oo, ee)
		}
		if oo >= oe {
			t.Errorf("lanes=%d bits=%d: OO (%g) should beat OE (%g) at high bits/lane", lanes, highB, oo, oe)
		}
	}
}

func TestAreaOrdering(t *testing.T) {
	// Figure 6: EE smallest, OO much larger than OE (MZI-dominated).
	for _, lanes := range []int{2, 4, 8, 16} {
		ee := Area(MustConfig(EE, lanes, 4)).Total()
		oe := Area(MustConfig(OE, lanes, 4)).Total()
		oo := Area(MustConfig(OO, lanes, 4)).Total()
		if !(ee < oe && oe < oo) {
			t.Errorf("lanes=%d: area ordering EE(%g) < OE(%g) < OO(%g) violated", lanes, ee, oe, oo)
		}
		if oo < 5*oe {
			t.Errorf("lanes=%d: OO area should dwarf OE (MZIs), got %gx", lanes, oo/oe)
		}
	}
}

func TestOOAreaIncludesInterStageWaveguides(t *testing.T) {
	a := Area(MustConfig(OO, 4, 4))
	if a.Waveguides <= 0 {
		t.Fatal("OO area must include the inter-stage waveguide routing")
	}
	// The ~6.6 mm matched paths are a major contributor — at least
	// comparable to the MZI devices themselves.
	if a.Waveguides < a.MZIs/10 {
		t.Errorf("waveguide area %g implausibly small next to MZIs %g", a.Waveguides, a.MZIs)
	}
	// OE has no chains.
	if Area(MustConfig(OE, 4, 4)).Waveguides != 0 {
		t.Error("OE has no accumulation waveguides")
	}
}

func TestAreaGrowsWithLanes(t *testing.T) {
	for _, d := range Designs() {
		prev := 0.0
		for _, lanes := range []int{2, 4, 8, 16} {
			a := Area(MustConfig(d, lanes, 4)).Total()
			if a <= prev {
				t.Errorf("%v: area should grow with lanes", d)
			}
			prev = a
		}
	}
}

func TestEDPFallsWithLanesProperty(t *testing.T) {
	// More lanes mean quadratically more parallel streams; the per-op
	// energy grows only mildly (EE wiring, optical tuning), so network
	// EDP must fall monotonically with the lane count for every design.
	for _, d := range Designs() {
		prev := math.Inf(1)
		for _, lanes := range []int{2, 4, 8, 16} {
			c, err := CostNetwork(cnn.AlexNet(), MustConfig(d, lanes, 8))
			if err != nil {
				t.Fatal(err)
			}
			if c.EDP() >= prev {
				t.Errorf("%v: EDP should fall with lanes at %d", d, lanes)
			}
			prev = c.EDP()
		}
	}
}

func TestBreakdownAlgebra(t *testing.T) {
	a := Breakdown{1, 2, 3, 4, 5, 6}
	b := Breakdown{10, 20, 30, 40, 50, 60}
	sum := a.Plus(b)
	if sum.Total() != 11+22+33+44+55+66 {
		t.Errorf("Plus/Total = %v", sum.Total())
	}
	if s := a.Scale(2); s.Mul != 2 || s.Laser != 12 {
		t.Errorf("Scale = %+v", s)
	}
}

func TestCostNetworkStructure(t *testing.T) {
	net := cnn.LeNet()
	c, err := CostNetwork(net, MustConfig(OO, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Layers) != len(net.Layers) {
		t.Errorf("layer cost count %d != %d", len(c.Layers), len(net.Layers))
	}
	var sumLat float64
	var sumE Breakdown
	for _, lc := range c.Layers {
		sumLat += lc.Latency
		sumE = sumE.Plus(lc.Energy)
		if lc.Rounds < 1 {
			t.Errorf("layer %s rounds %v < 1", lc.Layer, lc.Rounds)
		}
	}
	if math.Abs(sumLat-c.Latency) > 1e-12*c.Latency {
		t.Error("network latency should equal the layer sum")
	}
	if math.Abs(sumE.Total()-c.Energy.Total()) > 1e-9*c.Energy.Total() {
		t.Error("network energy should equal the layer sum")
	}
	if c.EDP() != c.Energy.Total()*c.Latency {
		t.Error("EDP definition violated")
	}
}

func TestCostNetworkRejectsInvalid(t *testing.T) {
	cfg := MustConfig(EE, 4, 8)
	cfg.Lanes = 0
	if _, err := CostNetwork(cnn.LeNet(), cfg); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := CostNetwork(cnn.Network{}, MustConfig(EE, 4, 8)); err == nil {
		t.Error("invalid network should error")
	}
}

func TestEnergyScalesWithWork(t *testing.T) {
	// VGG16 does far more work than LeNet: every design must charge
	// more energy and time for it.
	for _, d := range Designs() {
		cfg := MustConfig(d, 4, 8)
		big, err := CostNetwork(cnn.VGG16(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		small, err := CostNetwork(cnn.LeNet(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if big.Energy.Total() <= small.Energy.Total() || big.Latency <= small.Latency {
			t.Errorf("%v: VGG16 should cost more than LeNet", d)
		}
	}
}
