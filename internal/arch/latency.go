package arch

import (
	"math"

	"pixel/internal/elec"
)

// RoundTime returns the duration [s] of one round: the ensemble
// consuming one burst on every lane (ConcurrentOps() operations).
//
//   - EE: P0 bit-serial cycles, each as long as the wide CLA's critical
//     path (or the clock, whichever dominates). Wider lanes -> deeper
//     carry network, but only logarithmically, so per-op latency falls
//     with B (Figure 8's monotone EE curve).
//   - OE: P0 cycles, each transmitting a B-slot optical burst at
//     10 GHz. Bursts longer than the electrical cycle stall the EP, and
//     the deserialization tree deepens quadratically with B — the
//     source of Figure 8's U shape.
//   - OO: a single optical pass (the MZI chain of Eq. 10) plus the
//     burst, the comparator-ladder settling (steeper in B than OE's
//     slicer) and one electrical merge cycle.
func RoundTime(cfg Config) float64 {
	cal := cfg.Cal
	p0 := float64(NativePrecision)
	b := float64(cfg.Bits)
	burst := b * cal.SlotTime()
	quad := cal.DeserializeQuad * (b * b / 64)

	switch cfg.Design {
	case EE:
		cla := float64(elec.CLALogicDepth(cfg.AccumulatorWidth())) * cfg.Tech.GateDelay
		cycle := math.Max(cal.ElectricalCycle, cla)
		return cal.RoundOverhead + p0*cycle
	case OE:
		cycle := math.Max(cal.ElectricalCycle, burst) + quad
		return cal.RoundOverhead + p0*cycle
	case OO:
		chain := ooChainDelay(cal)
		ladder := cal.OOLadderQuadFactor * quad
		return cal.RoundOverhead + chain + math.Max(cal.ElectricalCycle, burst) + ladder + cal.ElectricalCycle
	default:
		return math.Inf(1)
	}
}

// ooChainDelay returns the propagation delay of the P0-stage MZI
// accumulation chain (paper Eq. 10 structure: stage arms plus
// bit-period-matched inter-stage paths).
func ooChainDelay(cal *Calibration) float64 {
	// 2 mm arms at n_Si, inter-stage paths cut to one bit period: each
	// of the P0 stages contributes its arm flight plus one slot.
	const armDelay = 23.2e-12 // 2 mm * n_Si / c
	return float64(NativePrecision) * (armDelay + cal.SlotTime())
}

// OpLatency returns the effective per-operation latency [s]: the round
// time divided by the operations in flight. This is the quantity whose
// B-dependence Figure 8 plots.
func OpLatency(cfg Config) float64 {
	return RoundTime(cfg) / cfg.ConcurrentOps()
}
