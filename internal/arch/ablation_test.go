package arch

import "testing"

func ablationByName(t *testing.T, results []AblationResult, name string) AblationResult {
	t.Helper()
	for _, r := range results {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("ablation %q missing", name)
	return AblationResult{}
}

func TestRunAblations(t *testing.T) {
	results, err := RunAblations()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("ablation count = %d, want 7", len(results))
	}
	base := ablationByName(t, results, "baseline")

	// Removing the MZI accumulation must shrink OO's advantage while
	// leaving OE's untouched.
	noMZI := ablationByName(t, results, "no-mzi-accumulate")
	if noMZI.OOImprovement >= base.OOImprovement {
		t.Errorf("no-mzi OO improvement %.3f should be below baseline %.3f",
			noMZI.OOImprovement, base.OOImprovement)
	}
	if diff := noMZI.OEImprovement - base.OEImprovement; diff > 1e-9 || diff < -1e-9 {
		t.Error("no-mzi ablation must not move OE")
	}

	// Free EE wiring narrows both optical advantages.
	freeWire := ablationByName(t, results, "free-ee-wiring")
	if freeWire.OOImprovement >= base.OOImprovement || freeWire.OEImprovement >= base.OEImprovement {
		t.Error("free EE wiring should shrink the optical advantage")
	}

	// Expensive rings hurt both optical designs.
	rings := ablationByName(t, results, "expensive-rings")
	if rings.OOImprovement >= base.OOImprovement || rings.OEImprovement >= base.OEImprovement {
		t.Error("4x ring energy should shrink the optical advantage")
	}

	// A slower deserializer hurts optical latency, so EDP advantage
	// shrinks.
	slow := ablationByName(t, results, "slow-deserializer")
	if slow.OOImprovement >= base.OOImprovement || slow.OEImprovement >= base.OEImprovement {
		t.Error("slower deserialization should shrink the optical advantage")
	}

	// An inefficient laser taxes only the optical designs.
	laser := ablationByName(t, results, "inefficient-laser")
	if laser.OOImprovement >= base.OOImprovement {
		t.Error("2% wall plug should shrink OO's advantage")
	}

	// Removing the common round overhead exposes the raw datapath
	// times; at 16 bits/lane the optical designs are past their
	// latency minimum, so their EDP advantage shrinks.
	free := ablationByName(t, results, "free-round-overhead")
	if free.OOImprovement >= base.OOImprovement {
		t.Error("zero round overhead should shrink OO's advantage at 16 bits/lane")
	}

	// Even under every ablation, OO keeps beating EE at the headline
	// point (the paper's conclusion is robust to these knobs).
	for _, r := range results {
		if r.OOImprovement <= 0 {
			t.Errorf("%s: OO should still beat EE, improvement %.3f", r.Name, r.OOImprovement)
		}
	}
}
