package arch

import (
	"fmt"

	"pixel/internal/cnn"
	"pixel/internal/elec"
	"pixel/internal/thermal"
)

// PowerBudget is the chip-level power view of a design point running a
// network: the average dynamic draw split by component, plus the static
// floor (ring tuning, SRAM leakage, logic leakage, laser idle) that is
// burned whether or not useful work flows — the figure of merit a
// deployment actually provisions for.
type PowerBudget struct {
	Network string
	Config  Config

	// DynamicW is the average dynamic power while inferring [W],
	// itemized like the energy breakdown.
	DynamicW Breakdown
	// TuningW is the static MRR thermal-tuning power [W].
	TuningW float64
	// SRAMLeakW is the weight register files' static power [W].
	SRAMLeakW float64
	// LogicLeakW is the electrical logic leakage [W].
	LogicLeakW float64
	// LaserIdleW is the laser's wall-plug draw [W] (on-chip lasers run
	// continuously during a layer; this is the same figure the laser
	// energy column integrates).
	LaserIdleW float64
}

// TotalStaticW returns the static floor [W].
func (p PowerBudget) TotalStaticW() float64 {
	return p.TuningW + p.SRAMLeakW + p.LogicLeakW
}

// TotalW returns the provisioning figure: dynamic average plus the
// static floor.
func (p PowerBudget) TotalW() float64 {
	return p.DynamicW.Total() + p.TotalStaticW()
}

// Power computes the budget for a network at a design point. The
// static terms use the device census, a thermal bank at the default
// ring model holding a 10 K bias, and a per-stream weight register
// file sized for the configuration.
func Power(net cnn.Network, cfg Config) (PowerBudget, error) {
	c, err := CostNetwork(net, cfg)
	if err != nil {
		return PowerBudget{}, err
	}
	out := PowerBudget{Network: net.Name, Config: cfg}
	out.DynamicW = c.Energy.Scale(1 / c.Latency)

	census := DeviceCensus(cfg)

	// Ring tuning: athermal-assisted rings need only a residual trim;
	// the calibration's MRRTuningPower is the per-ring figure.
	out.TuningW = float64(census.TotalRings()) * cfg.Cal.MRRTuningPower

	// One weight RF per accumulator stream, lanes x lanes elements at
	// native precision (the Figure 3 "RF" block).
	if census.Accumulators > 0 {
		rf, err := elec.WeightRF(cfg.Lanes, cfg.Lanes, NativePrecision, false)
		if err != nil {
			return PowerBudget{}, err
		}
		out.SRAMLeakW = float64(census.Accumulators) * rf.Leakage()
	}

	// Logic leakage from the accumulators and activation units.
	w := cfg.AccumulatorWidth()
	logic := elec.Accumulator(w).Scale(census.Accumulators).
		Add(elec.TanhUnitGates(w).Scale(census.ActUnits))
	out.LogicLeakW = logic.Leakage(cfg.Tech)

	// Laser: per-wavelength launch at the design's budgeted power for
	// every wavelength of the ensemble.
	switch cfg.Design {
	case OE:
		out.LaserIdleW = cfg.Cal.OELaunchPower * float64(cfg.Lanes*cfg.Lanes) / cfg.Cal.LaserWallPlug
	case OO:
		out.LaserIdleW = cfg.Cal.OOLaunchPower * float64(cfg.Lanes*cfg.Lanes) / cfg.Cal.LaserWallPlug
	}
	return out, nil
}

// ThermalFeasible checks the tuning budget against a hold requirement:
// whether the census's rings can hold the given fabrication bias at
// the ambient offset within the default heater authority.
func ThermalFeasible(cfg Config, biasKelvin, ambientOffset float64) error {
	census := DeviceCensus(cfg)
	if census.TotalRings() == 0 {
		return nil
	}
	_, err := thermal.BankTuningPower(thermal.DefaultRingModel(), census.TotalRings(), biasKelvin, ambientOffset)
	if err != nil {
		return fmt.Errorf("arch: %v", err)
	}
	return nil
}
