package arch

import (
	"fmt"
	"math"
)

// ProtectionOverhead prices a fault-mitigation scheme as a set of
// multiplicative factors over the unprotected design. Factors are all
// >= 1 — protection is never free — and each one scales a different
// physical resource:
//
//   - OpticalFactor: extra wavelengths / optical device activity per
//     operation (e.g. redundant copies on spare wavelengths, a parity
//     wavelength per word).
//   - ElectricalFactor: extra electrical logic activity (vote trees,
//     parity checkers, duplicated accumulators on EE).
//   - ExecutionFactor: sequential re-executions per protected call —
//     retries and tie-break arbiter runs. Scales latency and every
//     energy category that is paid per execution.
//   - LaserFactor: extra launch power demanded by wider detection
//     margins (guard-banded comparators need proportionally more
//     photons for the same BER).
//   - TuningFactor: extra static ring-tuning power (deeper thermal
//     bias, periodic recalibration duty).
type ProtectionOverhead struct {
	Scheme           string
	OpticalFactor    float64
	ElectricalFactor float64
	ExecutionFactor  float64
	LaserFactor      float64
	TuningFactor     float64
}

// Validate rejects factors below 1 or non-finite: a mitigation scheme
// that claims to cost less than doing nothing is mispriced.
func (o ProtectionOverhead) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"optical", o.OpticalFactor},
		{"electrical", o.ElectricalFactor},
		{"execution", o.ExecutionFactor},
		{"laser", o.LaserFactor},
		{"tuning", o.TuningFactor},
	} {
		if f.v < 1 || math.IsInf(f.v, 0) || math.IsNaN(f.v) {
			return fmt.Errorf("arch: %s overhead factor %v for scheme %q below 1 or not finite", f.name, f.v, o.Scheme)
		}
	}
	return nil
}

// WithExecutions folds a measured re-execution factor (1 + retries and
// arbiter runs per protected call, from a Monte-Carlo run's counters)
// into the a-priori execution overhead.
func (o ProtectionOverhead) WithExecutions(factor float64) ProtectionOverhead {
	if factor > 1 && !math.IsInf(factor, 0) && !math.IsNaN(factor) {
		o.ExecutionFactor *= factor
	}
	return o
}

// ProtectedCost pairs an unprotected NetworkCost with its protected
// counterpart under one overhead model, so a report can show the yield
// recovery and its price side by side.
type ProtectedCost struct {
	Overhead      ProtectionOverhead
	Base          NetworkCost
	Protected     NetworkCost
	BaseArea      AreaBreakdown
	ProtectedArea AreaBreakdown
}

// EnergyOverhead returns protected/unprotected inference energy.
func (p ProtectedCost) EnergyOverhead() float64 {
	return ratio(p.Protected.Energy.Total(), p.Base.Energy.Total())
}

// LatencyOverhead returns protected/unprotected inference latency.
func (p ProtectedCost) LatencyOverhead() float64 {
	return ratio(p.Protected.Latency, p.Base.Latency)
}

// AreaOverhead returns protected/unprotected ensemble area.
func (p ProtectedCost) AreaOverhead() float64 {
	return ratio(p.ProtectedArea.Total(), p.BaseArea.Total())
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 1
	}
	return num / den
}

// tuningShare returns the fraction of the per-op Mul energy that is
// static ring tuning rather than active switching — the slice a
// TuningFactor scales. Zero for the all-electrical design.
func tuningShare(cfg Config) float64 {
	if cfg.Design == EE {
		return 0
	}
	cal := cfg.Cal
	active := 2 * float64(NativePrecision) * cal.MRRSwitchPerBit
	rings := float64(DeviceCensus(cfg).TotalRings())
	tuning := rings * cal.MRRTuningPower * RoundTime(cfg) / cfg.ConcurrentOps()
	if active+tuning <= 0 {
		return 0
	}
	return tuning / (active + tuning)
}

// ApplyProtection prices a protected inference: every energy category
// paid per execution scales by the execution factor, the optically
// implemented categories additionally scale by the optical factor (and
// the electrically implemented ones by the electrical factor), laser
// energy by the margin factor, and the static-tuning slice of the
// multiply by the tuning factor. Latency scales by the execution
// factor — redundant wavelengths ride in parallel, but retries and
// arbiter runs serialize. Area scales the optical and electrical
// categories by their factors. The activation evaluates once, on the
// accepted result, and is left alone.
func ApplyProtection(nc NetworkCost, o ProtectionOverhead) (ProtectedCost, error) {
	if err := o.Validate(); err != nil {
		return ProtectedCost{}, err
	}
	cfg := nc.Config
	if err := cfg.Validate(); err != nil {
		return ProtectedCost{}, err
	}
	optical := cfg.Design != EE
	exec := o.ExecutionFactor
	ts := tuningShare(cfg)

	scale := func(b Breakdown) Breakdown {
		out := b
		if optical {
			// The tuning slice of the multiply is a static power draw: it
			// scales with the tuning factor (and the extra rings), not
			// with re-executions.
			activeMul := b.Mul * (1 - ts) * o.OpticalFactor * exec
			tuningMul := b.Mul * ts * o.OpticalFactor * o.TuningFactor
			out.Mul = activeMul + tuningMul
			out.OtoE = b.OtoE * o.OpticalFactor * exec
			out.Comm = b.Comm * o.OpticalFactor * exec
			out.Laser = b.Laser * o.OpticalFactor * o.LaserFactor * exec
		} else {
			out.Mul = b.Mul * o.ElectricalFactor * exec
			out.OtoE = b.OtoE * o.ElectricalFactor * exec
			out.Comm = b.Comm * o.ElectricalFactor * exec
			out.Laser = b.Laser * exec
		}
		if cfg.Design == OO {
			out.Add = b.Add * o.OpticalFactor * exec
		} else {
			out.Add = b.Add * o.ElectricalFactor * exec
		}
		return out
	}

	prot := nc
	prot.Layers = make([]LayerCost, len(nc.Layers))
	prot.Energy = Breakdown{}
	prot.Latency = 0
	for i, l := range nc.Layers {
		pl := l
		pl.Energy = scale(l.Energy)
		pl.Latency = l.Latency * exec
		pl.Rounds = l.Rounds * exec
		prot.Layers[i] = pl
		prot.Energy = prot.Energy.Plus(pl.Energy)
		prot.Latency += pl.Latency
	}

	baseArea := Area(cfg)
	protArea := baseArea
	protArea.Electrical *= o.ElectricalFactor
	protArea.Rings *= o.OpticalFactor
	protArea.MZIs *= o.OpticalFactor
	protArea.Waveguides *= o.OpticalFactor
	protArea.Receivers *= o.OpticalFactor

	return ProtectedCost{
		Overhead:      o,
		Base:          nc,
		Protected:     prot,
		BaseArea:      baseArea,
		ProtectedArea: protArea,
	}, nil
}
