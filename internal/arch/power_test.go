package arch

import (
	"testing"

	"pixel/internal/cnn"
)

func TestPowerBudgetStructure(t *testing.T) {
	for _, d := range Designs() {
		cfg := MustConfig(d, 4, 8)
		p, err := Power(cnn.AlexNet(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if p.DynamicW.Total() <= 0 {
			t.Errorf("%v: dynamic power must be positive", d)
		}
		if p.LogicLeakW <= 0 {
			t.Errorf("%v: logic leakage must be positive", d)
		}
		if p.TotalW() != p.DynamicW.Total()+p.TotalStaticW() {
			t.Errorf("%v: total identity violated", d)
		}
		switch d {
		case EE:
			if p.TuningW != 0 || p.LaserIdleW != 0 {
				t.Error("EE has no rings or laser")
			}
		default:
			if p.TuningW <= 0 || p.LaserIdleW <= 0 {
				t.Errorf("%v: optical static terms must be positive", d)
			}
		}
	}
}

func TestPowerOOLaserAboveOE(t *testing.T) {
	oe, err := Power(cnn.LeNet(), MustConfig(OE, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	oo, err := Power(cnn.LeNet(), MustConfig(OO, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if oo.LaserIdleW <= oe.LaserIdleW {
		t.Error("OO laser draw should exceed OE's")
	}
}

func TestPowerDynamicMatchesEnergyOverLatency(t *testing.T) {
	cfg := MustConfig(OO, 4, 16)
	c, err := CostNetwork(cnn.ZFNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Power(cnn.ZFNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Energy.Total() / c.Latency
	got := p.DynamicW.Total()
	if d := (got - want) / want; d > 1e-9 || d < -1e-9 {
		t.Errorf("dynamic power %v != energy/latency %v", got, want)
	}
}

func TestPowerRejectsInvalid(t *testing.T) {
	cfg := MustConfig(EE, 4, 8)
	cfg.Bits = 0
	if _, err := Power(cnn.LeNet(), cfg); err == nil {
		t.Error("invalid config should error")
	}
}

func TestThermalFeasible(t *testing.T) {
	cfg := MustConfig(OE, 4, 8)
	if err := ThermalFeasible(cfg, 10, 0); err != nil {
		t.Errorf("nominal bias should be feasible: %v", err)
	}
	// Holding a 100 K bias exceeds the heater authority.
	if err := ThermalFeasible(cfg, 100, 0); err == nil {
		t.Error("out-of-authority bias should be reported")
	}
	// EE has no rings: always feasible.
	if err := ThermalFeasible(MustConfig(EE, 4, 8), 1000, 0); err != nil {
		t.Errorf("EE should be trivially feasible: %v", err)
	}
}
