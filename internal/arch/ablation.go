package arch

import (
	"fmt"
	"math"

	"pixel/internal/cnn"
)

// Ablations quantify how much each design choice contributes to the
// headline result (the OO geomean EDP improvement over EE at 4 lanes,
// 16 bits/lane). Each ablation mutates one calibration knob, re-runs
// the full six-CNN evaluation, and reports the shifted improvements.

// AblationResult is one ablation's outcome.
type AblationResult struct {
	// Name identifies the ablation.
	Name string
	// Description says what was changed and why it matters.
	Description string
	// OEImprovement / OOImprovement are the geomean EDP improvements
	// over EE under the ablated calibration.
	OEImprovement float64
	OOImprovement float64
}

// geomeanEDPImprovements computes (1 - geomean(EDP_d)/geomean(EDP_EE))
// for OE and OO at the headline operating point under cal.
func geomeanEDPImprovements(cal *Calibration) (oe, oo float64, err error) {
	geo := func(d Design) (float64, error) {
		cfg := Config{Design: d, Lanes: 4, Bits: 16, Tech: MustConfig(d, 4, 16).Tech, Cal: cal}
		logSum := 0.0
		for _, net := range cnn.All() {
			c, err := CostNetwork(net, cfg)
			if err != nil {
				return 0, err
			}
			logSum += math.Log(c.EDP())
		}
		return math.Exp(logSum / 6), nil
	}
	ee, err := geo(EE)
	if err != nil {
		return 0, 0, err
	}
	oeV, err := geo(OE)
	if err != nil {
		return 0, 0, err
	}
	ooV, err := geo(OO)
	if err != nil {
		return 0, 0, err
	}
	return 1 - oeV/ee, 1 - ooV/ee, nil
}

// ablation couples a name to a calibration mutation.
type ablation struct {
	name, desc string
	mutate     func(*Calibration)
}

func ablations() []ablation {
	return []ablation{
		{
			name:   "baseline",
			desc:   "frozen calibration, no change",
			mutate: func(*Calibration) {},
		},
		{
			name:   "no-mzi-accumulate",
			desc:   "OO falls back to full electrical accumulation (residual fraction 1, MZI energy still paid): isolates the MZI chain's contribution",
			mutate: func(c *Calibration) { c.OOResidualAddFraction = 1 },
		},
		{
			name: "free-ee-wiring",
			desc: "EE broadcast wiring made free (wire factors 0): how much of the optical win is EE's wire growth",
			mutate: func(c *Calibration) {
				c.EEWireFactorPerBit = 0
				c.EEWireFactorPerLane = 0
			},
		},
		{
			name:   "expensive-rings",
			desc:   "MRR actuation energy x4 (2 pJ/bit devices instead of 500 fJ)",
			mutate: func(c *Calibration) { c.MRRSwitchPerBit *= 4 },
		},
		{
			name:   "slow-deserializer",
			desc:   "optical deserialization/conversion trees x2 slower: steepens the U-shape",
			mutate: func(c *Calibration) { c.DeserializeQuad *= 2 },
		},
		{
			name:   "inefficient-laser",
			desc:   "wall-plug efficiency 2% instead of 10%",
			mutate: func(c *Calibration) { c.LaserWallPlug = 0.02 },
		},
		{
			name:   "free-round-overhead",
			desc:   "per-round scheduling overhead removed: amplifies each design's raw datapath time (at 16 bits/lane the optical designs sit past their latency minimum, so their EDP advantage shrinks)",
			mutate: func(c *Calibration) { c.RoundOverhead = 0 },
		},
	}
}

// RunAblations evaluates every ablation.
func RunAblations() ([]AblationResult, error) {
	var out []AblationResult
	for _, a := range ablations() {
		cal := *DefaultCal()
		a.mutate(&cal)
		if err := cal.Validate(); err != nil {
			return nil, fmt.Errorf("arch: ablation %s: %w", a.name, err)
		}
		oe, oo, err := geomeanEDPImprovements(&cal)
		if err != nil {
			return nil, fmt.Errorf("arch: ablation %s: %w", a.name, err)
		}
		out = append(out, AblationResult{
			Name:          a.name,
			Description:   a.desc,
			OEImprovement: oe,
			OOImprovement: oo,
		})
	}
	return out, nil
}
