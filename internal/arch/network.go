package arch

import (
	"fmt"

	"pixel/internal/cnn"
)

// LayerCost is the energy and latency of one network layer under a
// configuration.
type LayerCost struct {
	Layer   string
	Energy  Breakdown // [J]
	Latency float64   // [s]
	Rounds  float64
}

// LayerEnergy returns the energy breakdown of executing a layer's
// operations: per-op costs scaled by the layer's operation counts
// (multiplies drive the mul/o-e/comm/laser categories, adds the
// accumulation, activations the tanh unit).
func LayerEnergy(counts cnn.Counts, cfg Config) Breakdown {
	per := PerOp(cfg)
	return Breakdown{
		Mul:   counts.Mul * per.Mul,
		Add:   counts.Add * per.Add,
		Act:   counts.Act * per.Act,
		OtoE:  counts.Mul * per.OtoE,
		Comm:  counts.Mul * per.Comm,
		Laser: counts.Mul * per.Laser,
	}
}

// LayerLatency returns the execution time [s] of a layer: the rounds
// needed to stream its multiplies through the ensemble times the round
// time.
func LayerLatency(counts cnn.Counts, cfg Config) (latency float64, rounds float64) {
	rounds = counts.Mul / cfg.ConcurrentOps()
	if rounds < 1 && counts.Mul > 0 {
		rounds = 1
	}
	return rounds * RoundTime(cfg), rounds
}

// CostLayer prices one layer.
func CostLayer(l cnn.Layer, cfg Config) LayerCost {
	counts := l.Counts(cnn.ModePaper)
	lat, rounds := LayerLatency(counts, cfg)
	return LayerCost{
		Layer:   l.Name,
		Energy:  LayerEnergy(counts, cfg),
		Latency: lat,
		Rounds:  rounds,
	}
}

// NetworkCost is the full-inference cost of a network under a
// configuration.
type NetworkCost struct {
	Network string
	Config  Config
	Layers  []LayerCost
	Energy  Breakdown // [J], summed
	Latency float64   // [s], summed
}

// EDP returns the energy-delay product [J*s] of the inference.
func (n NetworkCost) EDP() float64 {
	return n.Energy.Total() * n.Latency
}

// CostNetwork prices a whole network inference. The per-operation
// breakdown, round time and in-flight operation count depend only on
// the configuration, so they are computed once and reused across every
// layer (bit-identical to the per-layer recomputation CostLayer does,
// PerOp being pure float arithmetic).
func CostNetwork(net cnn.Network, cfg Config) (NetworkCost, error) {
	if err := cfg.Validate(); err != nil {
		return NetworkCost{}, err
	}
	if err := net.Validate(); err != nil {
		return NetworkCost{}, err
	}
	per := PerOp(cfg)
	roundTime := RoundTime(cfg)
	concurrent := cfg.ConcurrentOps()
	out := NetworkCost{Network: net.Name, Config: cfg, Layers: make([]LayerCost, 0, len(net.Layers))}
	for _, l := range net.Layers {
		counts := l.Counts(cnn.ModePaper)
		rounds := counts.Mul / concurrent
		if rounds < 1 && counts.Mul > 0 {
			rounds = 1
		}
		lc := LayerCost{
			Layer: l.Name,
			Energy: Breakdown{
				Mul:   counts.Mul * per.Mul,
				Add:   counts.Add * per.Add,
				Act:   counts.Act * per.Act,
				OtoE:  counts.Mul * per.OtoE,
				Comm:  counts.Mul * per.Comm,
				Laser: counts.Mul * per.Laser,
			},
			Latency: rounds * roundTime,
			Rounds:  rounds,
		}
		out.Layers = append(out.Layers, lc)
		out.Energy = out.Energy.Plus(lc.Energy)
		out.Latency += lc.Latency
	}
	if out.Latency <= 0 || out.Energy.Total() <= 0 {
		return NetworkCost{}, fmt.Errorf("arch: degenerate cost for %s under %v", net.Name, cfg.Design)
	}
	return out, nil
}
