package arch

import (
	"sort"

	"pixel/internal/cnn"
)

// DesignPoint couples a configuration with its energy/latency cost for
// Pareto analysis over the (lanes, bits) design space.
type DesignPoint struct {
	Design   Design
	Lanes    int
	Bits     int
	EnergyJ  float64
	LatencyS float64
}

// dominates reports whether a is at least as good as b on both axes
// and strictly better on one.
func (a DesignPoint) dominates(b DesignPoint) bool {
	if a.EnergyJ > b.EnergyJ || a.LatencyS > b.LatencyS {
		return false
	}
	return a.EnergyJ < b.EnergyJ || a.LatencyS < b.LatencyS
}

// ParetoFrontier evaluates the network over every (design, lanes,
// bits) combination and returns the energy/latency-Pareto-optimal
// points, sorted by ascending energy.
func ParetoFrontier(net cnn.Network, designs []Design, lanesAxis, bitsAxis []int) ([]DesignPoint, error) {
	var all []DesignPoint
	for _, d := range designs {
		for _, lanes := range lanesAxis {
			for _, bits := range bitsAxis {
				cfg, err := NewConfig(d, lanes, bits)
				if err != nil {
					return nil, err
				}
				c, err := CostNetwork(net, cfg)
				if err != nil {
					return nil, err
				}
				all = append(all, DesignPoint{
					Design:   d,
					Lanes:    lanes,
					Bits:     bits,
					EnergyJ:  c.Energy.Total(),
					LatencyS: c.Latency,
				})
			}
		}
	}
	var frontier []DesignPoint
	for _, p := range all {
		dominated := false
		for _, q := range all {
			if q.dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, p)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i].EnergyJ != frontier[j].EnergyJ {
			return frontier[i].EnergyJ < frontier[j].EnergyJ
		}
		return frontier[i].LatencyS < frontier[j].LatencyS
	})
	return frontier, nil
}
