package arch

import "pixel/internal/elec"

// Breakdown is a per-component energy account [J], matching the
// categories of the paper's Figure 5 and Table II.
type Breakdown struct {
	Mul   float64 // multiplication (AND stage)
	Add   float64 // accumulation (shift-accumulate / MZI chain)
	Act   float64 // activation function
	OtoE  float64 // optical-to-electrical conversion
	Comm  float64 // data movement in and out
	Laser float64 // laser wall-plug energy
}

// Total returns the summed energy [J].
func (b Breakdown) Total() float64 {
	return b.Mul + b.Add + b.Act + b.OtoE + b.Comm + b.Laser
}

// Plus returns the element-wise sum.
func (b Breakdown) Plus(o Breakdown) Breakdown {
	return Breakdown{
		Mul:   b.Mul + o.Mul,
		Add:   b.Add + o.Add,
		Act:   b.Act + o.Act,
		OtoE:  b.OtoE + o.OtoE,
		Comm:  b.Comm + o.Comm,
		Laser: b.Laser + o.Laser,
	}
}

// Scale returns the breakdown multiplied by k.
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{
		Mul: k * b.Mul, Add: k * b.Add, Act: k * b.Act,
		OtoE: k * b.OtoE, Comm: k * b.Comm, Laser: k * b.Laser,
	}
}

// PerOp returns the energy breakdown of ONE native-precision MAC
// operation under the configuration (the Act field is per activation
// evaluation and is scaled by the workload's N_act, not N_mul — see
// LayerEnergy).
func PerOp(cfg Config) Breakdown {
	cal := cfg.Cal
	p0 := float64(NativePrecision)
	b := float64(cfg.Bits)
	gateE := cfg.Tech.GateEnergy
	w := cfg.AccumulatorWidth()

	// Electrical accumulation: P0 bit-serial accumulate cycles on each
	// operand's own accumulator (parallel native-width units; width
	// grows only logarithmically with the burst packing).
	eAccWide := p0 * float64(elec.CLAGateCount(w)) * gateE
	// Electrical accumulation at native width (what OO's residual
	// electrical merging costs, independent of burst width).
	wNative := 2*NativePrecision + 4
	eAccNative := p0 * float64(elec.CLAGateCount(wNative)) * gateE

	var out Breakdown
	switch cfg.Design {
	case EE:
		wire := (1 + b*cal.EEWireFactorPerBit) * (1 + float64(cfg.Lanes)*cal.EEWireFactorPerLane)
		out.Mul = p0 * cal.EEMulBitCycle * wire
		out.Add = eAccWide
		// Two operand words in, one result word out, all electrical.
		out.Comm = 4 * p0 * cal.ElinkPerBit
	case OE:
		out.Mul = opticalMulPerOp(cfg)
		out.Add = cal.OEAddOverhead * eAccWide
		// The full neuron word is re-detected every one of the P0
		// synapse-bit cycles.
		out.OtoE = p0 * p0 * cal.PDPerBit
		out.Comm = opticalCommPerOp(cfg)
		out.Laser = laserPerOp(cfg, cal.OELaunchPower)
	case OO:
		out.Mul = opticalMulPerOp(cfg)
		// The MZI chain (P0 stages, each live for ~2*P0 slots) replaces
		// the wide electrical accumulate; only native-width merging
		// remains electrical.
		out.Add = 2*p0*p0*cal.MZIPerBit + cal.OOResidualAddFraction*eAccNative
		// One pass of 2*P0-1 amplitude slots through the comparator
		// ladder (levels-1 comparators fire every slot).
		out.OtoE = (2*p0 - 1) * (1 + 0.5*p0) * cal.PDPerBit
		out.Comm = opticalCommPerOp(cfg)
		out.Laser = laserPerOp(cfg, cal.OOLaunchPower)
	}
	out.Act = cal.TanhPerEval
	return out
}

// opticalMulPerOp prices the MRR AND stage: the active double filter
// actuates both rings for the P0 bits of the neuron word, plus the
// ensemble's static ring tuning amortized over the concurrent
// operations.
func opticalMulPerOp(cfg Config) float64 {
	cal := cfg.Cal
	p0 := float64(NativePrecision)
	active := 2 * p0 * cal.MRRSwitchPerBit
	rings := float64(DeviceCensus(cfg).TotalRings())
	tuning := rings * cal.MRRTuningPower * RoundTime(cfg) / cfg.ConcurrentOps()
	return active + tuning
}

// opticalCommPerOp prices data movement for the optical designs: the
// neuron word is modulated once per burst (photonic in); the result
// word leaves electrically.
func opticalCommPerOp(cfg Config) float64 {
	cal := cfg.Cal
	p0 := float64(NativePrecision)
	return p0*cal.ModulatorPerBit + 2*p0*cal.ElinkPerBit
}

// laserPerOp prices the wall-plug laser energy: the wavelength is lit
// for P0^2 slot-equivalents per operation (P0 cycles of a P0-bit word
// for OE; a P0-way filter-bank split of one P0-slot pass for OO — the
// same slot count, at the design's launch power).
func laserPerOp(cfg Config, launch float64) float64 {
	cal := cfg.Cal
	p0 := float64(NativePrecision)
	return launch * p0 * p0 * cal.SlotTime() / cal.LaserWallPlug
}
