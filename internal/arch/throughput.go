package arch

import (
	"fmt"

	"pixel/internal/cnn"
)

// ThroughputReport summarizes a design point's rate metrics for one
// network — the deployment-facing view of the same cost model
// (inferences/s, average power, efficiency).
type ThroughputReport struct {
	Network string
	Config  Config
	// InferencesPerSecond assumes back-to-back inferences (the layer
	// pipeline drains before the next image starts, matching the
	// latency model's serialization).
	InferencesPerSecond float64
	// AvgPowerW is inference energy over inference latency [W].
	AvgPowerW float64
	// InferencesPerJoule is the energy efficiency [1/J].
	InferencesPerJoule float64
	// EnergyPerInferenceJ and LatencyPerInferenceS restate the raw
	// costs.
	EnergyPerInferenceJ  float64
	LatencyPerInferenceS float64
}

// Throughput computes the rate metrics for a network at a design point.
func Throughput(net cnn.Network, cfg Config) (ThroughputReport, error) {
	c, err := CostNetwork(net, cfg)
	if err != nil {
		return ThroughputReport{}, err
	}
	e := c.Energy.Total()
	l := c.Latency
	if e <= 0 || l <= 0 {
		return ThroughputReport{}, fmt.Errorf("arch: degenerate cost for throughput")
	}
	return ThroughputReport{
		Network:              net.Name,
		Config:               cfg,
		InferencesPerSecond:  1 / l,
		AvgPowerW:            e / l,
		InferencesPerJoule:   1 / e,
		EnergyPerInferenceJ:  e,
		LatencyPerInferenceS: l,
	}, nil
}

// BestDesignByEfficiency returns the design with the highest
// inferences-per-joule for the network at the given lane/bit point.
func BestDesignByEfficiency(net cnn.Network, lanes, bits int) (Design, ThroughputReport, error) {
	var best ThroughputReport
	var bestD Design
	found := false
	for _, d := range Designs() {
		cfg, err := NewConfig(d, lanes, bits)
		if err != nil {
			return 0, ThroughputReport{}, err
		}
		r, err := Throughput(net, cfg)
		if err != nil {
			return 0, ThroughputReport{}, err
		}
		if !found || r.InferencesPerJoule > best.InferencesPerJoule {
			best = r
			bestD = d
			found = true
		}
	}
	return bestD, best, nil
}
