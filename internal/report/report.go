// Package report renders experiment results as aligned ASCII tables or
// CSV, the two output formats of the cmd/pixelsim tool.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are printed after the table (provenance, units, caveats).
	Notes []string
}

// New returns a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it panics if the cell count does not match the
// header, which would silently misalign output otherwise.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table %q has %d columns", len(cells), t.Title, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		// Trim trailing padding.
		for b.Len() > 0 && b.String()[b.Len()-1] == ' ' {
			s := b.String()
			b.Reset()
			b.WriteString(strings.TrimRight(s, " "))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as RFC-4180-ish CSV (quotes only where
// needed). Notes are emitted as comment lines prefixed with '#'.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavored Markdown table
// (for embedding experiment output in docs). Notes become a trailing
// blockquote.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with the given precision, trimming trailing zeros.
func F(v float64, prec int) string {
	s := fmt.Sprintf("%.*f", prec, v)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	return s
}

// Sci formats a float in scientific notation with 3 significant digits.
func Sci(v float64) string {
	return fmt.Sprintf("%.3g", v)
}
