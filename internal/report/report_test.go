package report

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tab := New("Demo", "Name", "Value")
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22222")
	tab.AddNote("units are furlongs")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	if !strings.Contains(out, "note: units are furlongs") {
		t.Error("note missing")
	}
	// Columns align: "Value" starts at the same offset in header and rows.
	off := strings.Index(lines[1], "Value")
	if lines[3][off:off+1] != "1" && lines[4][off:] != "22222" {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestAddRowPanicsOnArity(t *testing.T) {
	tab := New("x", "A", "B")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong cell count")
		}
	}()
	tab.AddRow("only-one")
}

func TestRenderCSV(t *testing.T) {
	tab := New("T", "A", "B")
	tab.AddRow("plain", `has,comma`)
	tab.AddRow(`has"quote`, "x")
	tab.AddNote("n1")
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# T\n") {
		t.Error("title comment missing")
	}
	if !strings.Contains(out, `plain,"has,comma"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"has""quote",x`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
	if !strings.Contains(out, "# n1\n") {
		t.Error("note comment missing")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := New("MD", "A", "B")
	tab.AddRow("x|y", "1")
	tab.AddNote("careful with pipes")
	var sb strings.Builder
	if err := tab.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "**MD**") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "| A | B |") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|") {
		t.Error("separator missing")
	}
	if !strings.Contains(out, `x\|y`) {
		t.Error("pipe not escaped")
	}
	if !strings.Contains(out, "> careful with pipes") {
		t.Error("note blockquote missing")
	}
}

func TestFormatF(t *testing.T) {
	cases := []struct {
		v    float64
		prec int
		want string
	}{
		{1.5, 3, "1.5"},
		{1.0, 3, "1"},
		{0.123456, 3, "0.123"},
		{-2.500, 2, "-2.5"},
	}
	for _, c := range cases {
		if got := F(c.v, c.prec); got != c.want {
			t.Errorf("F(%v,%d) = %q, want %q", c.v, c.prec, got, c.want)
		}
	}
}

func TestFormatSci(t *testing.T) {
	if got := Sci(1234.5); got != "1.23e+03" {
		t.Errorf("Sci = %q", got)
	}
	if got := Sci(0.5); got != "0.5" {
		t.Errorf("Sci(0.5) = %q", got)
	}
}
