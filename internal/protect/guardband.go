package protect

import (
	"fmt"

	"pixel/internal/arch"
	"pixel/internal/bitserial"
)

// GuardBand is rate-level mitigation: instead of correcting faults in
// the datapath it spends calibration effort and static tuning power to
// keep the faults from happening. Four knobs, all surfaced through
// Derate into the variation model:
//
//   - a post-fabrication resonance trim absorbs most of the per-part
//     MRR resonance offset (TrimFactor of it survives);
//   - periodic thermal recalibration every RecalEvery inferences
//     re-converges the tuning loop, equivalent to ExtraTuningSteps more
//     control steps at the operating point;
//   - the comparator ladder re-centres its thresholds, dividing the
//     threshold offset by ThresholdGuard, at the price of launching
//     proportionally more optical power into the guarded margins;
//   - ExtraBiasKelvin deepens the thermal bias so the heater holds
//     symmetric authority over hot and cold ambient swings (the stock
//     bias can only cool by backing off, and hot excursions beyond it
//     saturate the loop).
type GuardBand struct {
	TrimFactor       float64
	ExtraTuningSteps int
	ThresholdGuard   float64
	ExtraBiasKelvin  float64
	// RecalEvery is the number of inferences between recalibrations;
	// the recal duty cycle adds to the static tuning power.
	RecalEvery int
}

// DefaultGuardBand returns the calibrated guard-banding recipe: trim
// to 15% residual resonance offset, 8 extra tuning steps, halve the
// threshold excursion, centre the heater authority window (+10 K on
// the stock 10 K bias), recalibrate every 32 inferences.
func DefaultGuardBand() GuardBand {
	return GuardBand{
		TrimFactor:       0.15,
		ExtraTuningSteps: 8,
		ThresholdGuard:   2,
		ExtraBiasKelvin:  10,
		RecalEvery:       32,
	}
}

// Name returns "guardband".
func (g GuardBand) Name() string { return "guardband" }

// Validate bounds the knobs.
func (g GuardBand) Validate() error {
	if g.TrimFactor < 0 || g.TrimFactor > 1 {
		return fmt.Errorf("protect: guardband trim factor %v out of [0, 1]", g.TrimFactor)
	}
	if g.ExtraTuningSteps < 0 || g.ExtraTuningSteps > 64 {
		return fmt.Errorf("protect: guardband extra tuning steps %d out of [0, 64]", g.ExtraTuningSteps)
	}
	if g.ThresholdGuard < 1 || g.ThresholdGuard > 16 {
		return fmt.Errorf("protect: guardband threshold guard %v out of [1, 16]", g.ThresholdGuard)
	}
	if g.ExtraBiasKelvin < 0 || g.ExtraBiasKelvin > 100 {
		return fmt.Errorf("protect: guardband extra bias %v K out of [0, 100]", g.ExtraBiasKelvin)
	}
	if g.RecalEvery < 1 {
		return fmt.Errorf("protect: guardband recal interval %d must be >= 1", g.RecalEvery)
	}
	return nil
}

// Derate maps the knobs onto the variation model.
func (g GuardBand) Derate() Derate {
	return Derate{
		TrimFactor:       g.TrimFactor,
		ExtraTuningSteps: g.ExtraTuningSteps,
		ThresholdGuard:   g.ThresholdGuard,
		ExtraBiasKelvin:  g.ExtraBiasKelvin,
	}
}

// nominalBiasKelvin is the stock thermal bias of the variation model
// (montecarlo.DefaultVariationModel) the extra bias is priced against.
const nominalBiasKelvin = 10

// Overhead prices the scheme: the deeper bias scales the static ring
// heater power roughly linearly, the recalibration duty adds its
// fraction on top, and the guarded comparator margins demand
// proportionally more launch power on the all-optical design. The
// datapath itself is untouched — no extra wavelengths, no retries.
func (g GuardBand) Overhead(d arch.Design) arch.ProtectionOverhead {
	o := arch.ProtectionOverhead{
		Scheme:           g.Name(),
		OpticalFactor:    1,
		ElectricalFactor: 1.02, // recalibration sequencer
		ExecutionFactor:  1,
		LaserFactor:      1,
		TuningFactor:     1,
	}
	if d == arch.EE {
		// Nothing to guard-band on the all-electrical design.
		o.ElectricalFactor = 1
		return o
	}
	o.TuningFactor = 1 + g.ExtraBiasKelvin/nominalBiasKelvin + 1/float64(g.RecalEvery)
	if d == arch.OO {
		o.LaserFactor = g.ThresholdGuard
	}
	return o
}

// Wrap is the identity: guard-banding acts entirely through the
// Derate path, before faults exist.
func (g GuardBand) Wrap(e bitserial.Stripes) (bitserial.Stripes, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}
