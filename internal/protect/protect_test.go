package protect

import (
	"math/rand"
	"reflect"
	"testing"

	"pixel/internal/arch"
	"pixel/internal/bitserial"
)

// scriptedEngine is a Stripes stub that returns a scripted sequence of
// values and optionally moves its odd-flip-word counter on scripted
// calls — a controllable stand-in for a PerturbedEngine.
type scriptedEngine struct {
	vals  []uint64
	dirty []bool
	i     int
	odd   int64
}

func (s *scriptedEngine) Bits() int             { return 8 }
func (s *scriptedEngine) AccumulatorWidth() int { return 20 }
func (s *scriptedEngine) OddFlipWords() int64   { return s.odd }

func (s *scriptedEngine) next() uint64 {
	v := s.vals[s.i%len(s.vals)]
	if len(s.dirty) > 0 && s.dirty[s.i%len(s.dirty)] {
		s.odd++
	}
	s.i++
	return v
}

func (s *scriptedEngine) Multiply(a, b uint64) (uint64, bitserial.Stats, error) {
	return s.next(), bitserial.Stats{Cycles: 1}, nil
}

func (s *scriptedEngine) DotProduct(a, b []uint64) (uint64, bitserial.Stats, error) {
	return s.next(), bitserial.Stats{Cycles: 1}, nil
}

func (s *scriptedEngine) Window(inputs [][]uint64, synapses [][][]uint64) ([]uint64, bitserial.Stats, error) {
	return protectedWindow(s, accMask(s), inputs, synapses)
}

func counters(t *testing.T, e bitserial.Stripes) Counters {
	t.Helper()
	m, ok := e.(Metered)
	if !ok {
		t.Fatalf("%T is not Metered", e)
	}
	return m.Counters()
}

func TestRedundancyVote(t *testing.T) {
	cases := []struct {
		name   string
		copies int
		vals   []uint64
		want   uint64
		wantC  Counters
	}{
		{
			name: "unanimous", copies: 3, vals: []uint64{7, 7, 7}, want: 7,
			wantC: Counters{Calls: 1, Executions: 3},
		},
		{
			name: "majority outvotes one fault", copies: 3, vals: []uint64{5, 9, 5}, want: 5,
			wantC: Counters{Calls: 1, Executions: 3, Disagreements: 1},
		},
		{
			name: "three-way tie arbitrated", copies: 3, vals: []uint64{1, 2, 3, 2}, want: 2,
			wantC: Counters{Calls: 1, Executions: 4, Retries: 1, Disagreements: 1},
		},
		{
			name: "arbiter unmatched ships its own", copies: 4, vals: []uint64{1, 1, 2, 3, 9}, want: 9,
			wantC: Counters{Calls: 1, Executions: 5, Retries: 1, Disagreements: 1},
		},
		{
			name: "dmr agreement", copies: 2, vals: []uint64{6, 6}, want: 6,
			wantC: Counters{Calls: 1, Executions: 2},
		},
		{
			name: "dmr mismatch arbitrated", copies: 2, vals: []uint64{6, 8, 8}, want: 8,
			wantC: Counters{Calls: 1, Executions: 3, Retries: 1, Disagreements: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stub := &scriptedEngine{vals: tc.vals}
			eng, err := Redundancy{Copies: tc.copies}.Wrap(stub)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := eng.DotProduct([]uint64{1}, []uint64{1})
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("voted value = %d, want %d", got, tc.want)
			}
			if c := counters(t, eng); c != tc.wantC {
				t.Errorf("counters = %+v, want %+v", c, tc.wantC)
			}
		})
	}
}

func TestParityDetectAndRetry(t *testing.T) {
	t.Run("retry until clean", func(t *testing.T) {
		// First execution moves the parity counter, the re-run is clean.
		stub := &scriptedEngine{vals: []uint64{11, 22}, dirty: []bool{true, false}}
		eng, err := Parity{Retries: 3}.Wrap(stub)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.DotProduct([]uint64{1}, []uint64{1})
		if err != nil {
			t.Fatal(err)
		}
		if got != 22 {
			t.Errorf("value = %d, want the clean re-run's 22", got)
		}
		want := Counters{Calls: 1, Executions: 2, Retries: 1}
		if c := counters(t, eng); c != want {
			t.Errorf("counters = %+v, want %+v", c, want)
		}
	})
	t.Run("budget exhausted gives up", func(t *testing.T) {
		stub := &scriptedEngine{vals: []uint64{5}, dirty: []bool{true}}
		eng, err := Parity{Retries: 2}.Wrap(stub)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.DotProduct([]uint64{1}, []uint64{1})
		if err != nil {
			t.Fatal(err)
		}
		if got != 5 {
			t.Errorf("value = %d, want the last attempt's 5", got)
		}
		want := Counters{Calls: 1, Executions: 3, Retries: 2, GaveUp: 1}
		if c := counters(t, eng); c != want {
			t.Errorf("counters = %+v, want %+v", c, want)
		}
	})
	t.Run("zero retries is detect-only", func(t *testing.T) {
		stub := &scriptedEngine{vals: []uint64{5}, dirty: []bool{true}}
		eng, err := Parity{Retries: 0}.Wrap(stub)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.DotProduct([]uint64{1}, []uint64{1}); err != nil {
			t.Fatal(err)
		}
		want := Counters{Calls: 1, Executions: 1, GaveUp: 1}
		if c := counters(t, eng); c != want {
			t.Errorf("counters = %+v, want %+v", c, want)
		}
	})
	t.Run("no meter never fires", func(t *testing.T) {
		fast, err := bitserial.NewFastEngine(4, 16)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := Parity{Retries: 3}.Wrap(fast)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.DotProduct([]uint64{3, 5}, []uint64{7, 9}); err != nil {
			t.Fatal(err)
		}
		want := Counters{Calls: 1, Executions: 1}
		if c := counters(t, eng); c != want {
			t.Errorf("counters = %+v, want %+v", c, want)
		}
	})
}

// TestCleanEngineTransparency pins that wrapping the production
// FastEngine changes nothing: every scheme's protected datapath is
// value-identical to the bare engine on a clean channel.
func TestCleanEngineTransparency(t *testing.T) {
	const bits, terms = 4, 16
	rng := rand.New(rand.NewSource(3))
	neurons := make([]uint64, terms)
	synapses := make([]uint64, terms)
	for i := range neurons {
		neurons[i] = uint64(rng.Int63n(16))
		synapses[i] = uint64(rng.Int63n(16))
	}
	inputs := [][]uint64{neurons[:8], neurons[8:]}
	filters := [][][]uint64{{synapses[:8], synapses[8:]}, {synapses[8:], synapses[:8]}}

	ref, err := bitserial.NewFastEngine(bits, terms)
	if err != nil {
		t.Fatal(err)
	}
	wantDP, _, err := ref.DotProduct(neurons, synapses)
	if err != nil {
		t.Fatal(err)
	}
	wantWin, _, err := ref.Window(inputs, filters)
	if err != nil {
		t.Fatal(err)
	}

	for _, scheme := range []Scheme{TMR(), Redundancy{Copies: 2}, Parity{Retries: 3}, DefaultGuardBand()} {
		base, err := bitserial.NewFastEngine(bits, terms)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := scheme.Wrap(base)
		if err != nil {
			t.Fatal(err)
		}
		gotDP, _, err := eng.DotProduct(neurons, synapses)
		if err != nil {
			t.Fatal(err)
		}
		if gotDP != wantDP {
			t.Errorf("%s: DotProduct = %d, want %d", scheme.Name(), gotDP, wantDP)
		}
		gotWin, _, err := eng.Window(inputs, filters)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotWin, wantWin) {
			t.Errorf("%s: Window = %v, want %v", scheme.Name(), gotWin, wantWin)
		}
	}
}

func TestSchemeValidateBounds(t *testing.T) {
	bad := []Scheme{
		Redundancy{Copies: 1},
		Redundancy{Copies: maxCopies + 1},
		Parity{Retries: -1},
		Parity{Retries: maxRetries + 1},
		GuardBand{TrimFactor: -0.1, ThresholdGuard: 2, RecalEvery: 1},
		GuardBand{TrimFactor: 1.5, ThresholdGuard: 2, RecalEvery: 1},
		GuardBand{ThresholdGuard: 0.5, RecalEvery: 1},
		GuardBand{ThresholdGuard: 2, RecalEvery: 0},
		GuardBand{ThresholdGuard: 2, RecalEvery: 1, ExtraTuningSteps: 100},
		GuardBand{ThresholdGuard: 2, RecalEvery: 1, ExtraBiasKelvin: 200},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s %+v: Validate accepted", s.Name(), s)
		}
		if _, err := s.Wrap(&scriptedEngine{vals: []uint64{0}}); err == nil {
			t.Errorf("%s %+v: Wrap accepted", s.Name(), s)
		}
	}
	for _, s := range []Scheme{TMR(), Redundancy{Copies: 2}, Parity{}, Parity{Retries: maxRetries}, DefaultGuardBand()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: Validate rejected the stock recipe: %v", s.Name(), err)
		}
	}
}

// TestOverheadsNeverFree pins the pricing contract: every scheme on
// every design validates, and on the designs where the scheme does
// anything at all, at least one factor is strictly above 1.
func TestOverheadsNeverFree(t *testing.T) {
	designs := []arch.Design{arch.EE, arch.OE, arch.OO}
	for _, s := range []Scheme{TMR(), Redundancy{Copies: 2}, Parity{Retries: 3}, DefaultGuardBand()} {
		for _, d := range designs {
			o := s.Overhead(d)
			if err := o.Validate(); err != nil {
				t.Errorf("%s on %v: %v", s.Name(), d, err)
				continue
			}
			free := o.OpticalFactor == 1 && o.ElectricalFactor == 1 &&
				o.ExecutionFactor == 1 && o.LaserFactor == 1 && o.TuningFactor == 1
			// GuardBand on EE is the one legitimate no-op: nothing to
			// guard-band on an all-electrical design.
			if free && !(s.Name() == "guardband" && d == arch.EE) {
				t.Errorf("%s on %v prices as free: %+v", s.Name(), d, o)
			}
		}
	}
}

func TestGuardBandDerate(t *testing.T) {
	g := DefaultGuardBand()
	dr := g.Derate()
	if dr.Zero() {
		t.Fatal("default guardband derate is zero")
	}
	if dr.TrimFactor != g.TrimFactor || dr.ExtraTuningSteps != g.ExtraTuningSteps ||
		dr.ThresholdGuard != g.ThresholdGuard || dr.ExtraBiasKelvin != g.ExtraBiasKelvin {
		t.Errorf("derate %+v does not mirror the scheme %+v", dr, g)
	}
	for _, s := range []Scheme{TMR(), Parity{Retries: 1}} {
		if !s.Derate().Zero() {
			t.Errorf("%s: datapath scheme has a non-zero derate", s.Name())
		}
	}
	// Wrap is the identity: guardband acts before faults exist.
	stub := &scriptedEngine{vals: []uint64{1}}
	eng, err := g.Wrap(stub)
	if err != nil {
		t.Fatal(err)
	}
	if eng != bitserial.Stripes(stub) {
		t.Error("guardband Wrap is not the identity")
	}
}
