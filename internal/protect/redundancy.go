package protect

import (
	"fmt"

	"pixel/internal/arch"
	"pixel/internal/bitserial"
)

// maxCopies bounds N-modular redundancy: beyond a handful of copies
// the spare-wavelength budget is gone and the vote tree dominates.
const maxCopies = 9

// Redundancy is lane-level N-modular redundancy: every dot product is
// executed Copies times — each copy on its own spare-wavelength lane,
// hence with independent fault draws — and the digitised sums are
// majority-voted. A tie (no strict majority) triggers one sequential
// arbiter re-execution, counted as a retry.
type Redundancy struct {
	// Copies is the number of redundant executions per call; 3 is
	// classic TMR, 2 (DMR) detects but must arbitrate every mismatch.
	Copies int
}

// TMR returns classic triple-modular redundancy.
func TMR() Redundancy { return Redundancy{Copies: 3} }

// Name returns "tmr", "dmr" or "nmr".
func (r Redundancy) Name() string {
	switch r.Copies {
	case 2:
		return "dmr"
	case 3:
		return "tmr"
	default:
		return "nmr"
	}
}

// Validate bounds the copy count to [2, maxCopies].
func (r Redundancy) Validate() error {
	if r.Copies < 2 || r.Copies > maxCopies {
		return fmt.Errorf("protect: redundancy copies %d out of [2, %d]", r.Copies, maxCopies)
	}
	return nil
}

// Derate returns the zero derate: redundancy is purely a datapath
// scheme and leaves the physical flip rates alone.
func (r Redundancy) Derate() Derate { return Derate{} }

// Overhead prices the copies. On the optical designs the copies ride
// spare wavelengths in parallel — optical energy scales by Copies,
// the electrical side adds a small vote tree, latency is untouched
// until a tie forces an arbiter run. On EE there are no spare
// wavelengths: the copies run back to back (time redundancy), so the
// execution factor carries the cost instead.
func (r Redundancy) Overhead(d arch.Design) arch.ProtectionOverhead {
	c := float64(r.Copies)
	o := arch.ProtectionOverhead{
		Scheme:           r.Name(),
		OpticalFactor:    c,
		ElectricalFactor: 1.05, // the majority-vote tree
		ExecutionFactor:  1,
		LaserFactor:      1,
		TuningFactor:     1,
	}
	if d == arch.EE {
		o.OpticalFactor = 1
		o.ExecutionFactor = c
	}
	return o
}

// Wrap returns the voting engine.
func (r Redundancy) Wrap(e bitserial.Stripes) (bitserial.Stripes, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &redundant{base: e, copies: r.Copies, mask: accMask(e)}, nil
}

// redundant is the voting wrapper. It consumes the wrapped engine's
// fault streams sequentially, so each copy sees an independent draw —
// exactly what physically distinct wavelength lanes give.
type redundant struct {
	base   bitserial.Stripes
	copies int
	mask   uint64
	c      Counters
}

var _ bitserial.Stripes = (*redundant)(nil)
var _ Metered = (*redundant)(nil)

func (r *redundant) Bits() int             { return r.base.Bits() }
func (r *redundant) AccumulatorWidth() int { return r.base.AccumulatorWidth() }
func (r *redundant) Counters() Counters    { return r.c }

// vote runs fn Copies times and returns the strict-majority value. If
// no value reaches a strict majority, one arbiter re-execution breaks
// the tie: a prior value the arbiter confirms wins, else the arbiter's
// own result ships. Stats sum over every execution — the honest total
// work.
func (r *redundant) vote(fn func() (uint64, bitserial.Stats, error)) (uint64, bitserial.Stats, error) {
	r.c.Calls++
	var st bitserial.Stats
	var vals [maxCopies]uint64
	for i := 0; i < r.copies; i++ {
		v, s, err := fn()
		if err != nil {
			return 0, bitserial.Stats{}, err
		}
		addStats(&st, s)
		r.c.Executions++
		vals[i] = v
	}
	best, bestCount := vals[0], 0
	for i := 0; i < r.copies; i++ {
		count := 0
		for j := 0; j < r.copies; j++ {
			if vals[j] == vals[i] {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = vals[i], count
		}
	}
	if 2*bestCount > r.copies {
		if bestCount < r.copies {
			r.c.Disagreements++
		}
		return best, st, nil
	}
	// No strict majority: arbitrate with one more execution.
	r.c.Disagreements++
	r.c.Retries++
	r.c.Executions++
	av, as, err := fn()
	if err != nil {
		return 0, bitserial.Stats{}, err
	}
	addStats(&st, as)
	for i := 0; i < r.copies; i++ {
		if vals[i] == av {
			return av, st, nil
		}
	}
	return av, st, nil
}

func (r *redundant) Multiply(neuron, synapse uint64) (uint64, bitserial.Stats, error) {
	return r.vote(func() (uint64, bitserial.Stats, error) {
		return r.base.Multiply(neuron, synapse)
	})
}

func (r *redundant) DotProduct(neurons, synapses []uint64) (uint64, bitserial.Stats, error) {
	return r.vote(func() (uint64, bitserial.Stats, error) {
		return r.base.DotProduct(neurons, synapses)
	})
}

// Window mirrors the engines' Window structure — per-filter, per-lane
// dot products merged electrically — with each lane's dot product
// voted independently; the clean electrical merge needs no protection.
func (r *redundant) Window(inputs [][]uint64, synapses [][][]uint64) ([]uint64, bitserial.Stats, error) {
	return protectedWindow(r, r.mask, inputs, synapses)
}

// protectedWindow is the shared Window implementation of the datapath
// wrappers: every lane dot product goes through the wrapper's
// protected DotProduct, and the cross-lane merge stays electrical and
// clean, mirroring FastEngine.Window.
func protectedWindow(e bitserial.Stripes, mask uint64, inputs [][]uint64, synapses [][][]uint64) ([]uint64, bitserial.Stats, error) {
	var st bitserial.Stats
	out := make([]uint64, len(synapses))
	for k, filter := range synapses {
		if len(filter) != len(inputs) {
			return nil, bitserial.Stats{}, fmt.Errorf("protect: filter %d has %d lanes, inputs have %d", k, len(filter), len(inputs))
		}
		var acc uint64
		for lane := range filter {
			v, vs, err := e.DotProduct(inputs[lane], filter[lane])
			if err != nil {
				return nil, bitserial.Stats{}, fmt.Errorf("protect: filter %d lane %d: %w", k, lane, err)
			}
			acc = (acc + v) & mask
			vs.Adds++
			addStats(&st, vs)
		}
		out[k] = acc
	}
	if len(synapses) > 0 && len(inputs) > 0 {
		st.Cycles = len(inputs[0]) * e.Bits()
	}
	return out, st, nil
}
