// Package protect implements fault-mitigation schemes for the PIXEL
// bit-serial datapath. A Scheme wraps a bitserial.Stripes engine —
// typically a fault-injecting bitserial.PerturbedEngine — behind the
// same interface, so the Monte-Carlo variation engine can run the
// identical inference twice, unprotected and protected, from the same
// seed streams and report the yield recovered by mitigation.
//
// Protection is never free: every scheme also prices itself as an
// arch.ProtectionOverhead so protected designs appear as honest
// energy/latency/area points in the cost model.
package protect

import (
	"pixel/internal/arch"
	"pixel/internal/bitserial"
)

// Scheme is one fault-mitigation strategy.
type Scheme interface {
	// Name is the scheme's stable identifier ("tmr", "parity", ...).
	Name() string
	// Validate rejects out-of-range scheme parameters.
	Validate() error
	// Wrap returns a Stripes engine that runs the wrapped engine's
	// datapath under the scheme's protection. The wrapper inherits the
	// wrapped engine's concurrency contract (a PerturbedEngine is not
	// safe for concurrent use, so neither is its wrapper).
	Wrap(e bitserial.Stripes) (bitserial.Stripes, error)
	// Derate describes how the scheme reduces the physical flip rates
	// themselves (guard-banding, recalibration); datapath-level schemes
	// return the zero Derate.
	Derate() Derate
	// Overhead prices the scheme on a design as multiplicative
	// energy/latency/area factors.
	Overhead(d arch.Design) arch.ProtectionOverhead
}

// Derate is a rate-level mitigation: adjustments applied to the
// variation model and the sampled perturbation before flip rates are
// computed. The zero value changes nothing.
type Derate struct {
	// TrimFactor in (0, 1] scales the static per-part resonance offset:
	// a post-fabrication trim absorbs all but this fraction of the fab
	// excursion. 0 means untrimmed.
	TrimFactor float64
	// ExtraTuningSteps adds control steps to the thermal tuning loop
	// before the part is declared operational (periodic recalibration
	// re-converges the loop, so the steady-state residual matches the
	// longer settle).
	ExtraTuningSteps int
	// ThresholdGuard >= 1 divides the comparator threshold offset: the
	// guard-banded ladder re-centres its thresholds at calibration
	// time, leaving this fraction of the excursion.
	ThresholdGuard float64
	// ExtraBiasKelvin deepens the thermal bias point, buying the heater
	// symmetric authority over hot and cold ambient swings at the price
	// of proportionally more static tuning power.
	ExtraBiasKelvin float64
}

// Zero reports whether the derate changes nothing.
func (d Derate) Zero() bool {
	return d.TrimFactor == 0 && d.ExtraTuningSteps == 0 &&
		d.ThresholdGuard <= 1 && d.ExtraBiasKelvin == 0
}

// Counters is the mitigation work a wrapped engine performed.
type Counters struct {
	// Calls is the number of protected datapath calls (dot products and
	// multiplies).
	Calls int64 `json:"calls"`
	// Executions is how many times the underlying datapath actually
	// ran, including redundant copies, retries and arbiter runs.
	Executions int64 `json:"executions"`
	// Retries counts sequential re-executions: parity-triggered re-runs
	// and redundancy tie-break arbiter runs.
	Retries int64 `json:"retries"`
	// Disagreements counts redundant calls whose copies did not all
	// agree (the votes mitigation actually changed or confirmed).
	Disagreements int64 `json:"disagreements"`
	// GaveUp counts calls that exhausted the retry budget and shipped a
	// still-suspect result.
	GaveUp int64 `json:"gave_up"`
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Calls += o.Calls
	c.Executions += o.Executions
	c.Retries += o.Retries
	c.Disagreements += o.Disagreements
	c.GaveUp += o.GaveUp
}

// Metered is implemented by wrapped engines that track mitigation
// work.
type Metered interface {
	Counters() Counters
}

// FaultMeter is the telemetry surface a detect-and-retry scheme needs
// from the underlying faulty engine: a count of word-level errors its
// detection code can see. bitserial.PerturbedEngine implements it via
// odd-flip-word parity; a clean engine (no meter) never triggers a
// retry.
type FaultMeter interface {
	OddFlipWords() int64
}

// accMask returns the accumulator bit mask of an engine.
func accMask(e bitserial.Stripes) uint64 {
	w := e.AccumulatorWidth()
	if w >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(w) - 1
}

// addStats accumulates s into dst (bitserial.Stats keeps its add
// method unexported).
func addStats(dst *bitserial.Stats, s bitserial.Stats) {
	dst.Cycles += s.Cycles
	dst.BitANDs += s.BitANDs
	dst.Adds += s.Adds
	dst.Shifts += s.Shifts
}
