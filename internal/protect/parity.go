package protect

import (
	"fmt"

	"pixel/internal/arch"
	"pixel/internal/bitserial"
)

// maxRetries bounds the parity retry budget; past a dozen sequential
// re-runs the lane is broken, not unlucky.
const maxRetries = 16

// Parity is parity-guarded detect-and-retry: one parity wavelength
// rides along with every transmitted word, and a call whose parity
// check fires is re-run, up to Retries times. Detection is word-level
// parity, so only odd-weight word errors are seen — an even number of
// flips in one word cancels in the parity bit and escapes, exactly as
// it would in hardware. A call that is still dirty after the budget
// ships its last result and increments GaveUp.
type Parity struct {
	// Retries is the re-run budget per detected call, in [0, 16]; 0
	// detects but never retries (every detection is a GaveUp).
	Retries int
}

// Name returns "parity".
func (p Parity) Name() string { return "parity" }

// Validate bounds the retry budget.
func (p Parity) Validate() error {
	if p.Retries < 0 || p.Retries > maxRetries {
		return fmt.Errorf("protect: parity retries %d out of [0, %d]", p.Retries, maxRetries)
	}
	return nil
}

// Derate returns the zero derate: parity leaves flip rates alone.
func (p Parity) Derate() Derate { return Derate{} }

// Overhead prices the parity lane: one extra wavelength per
// NativePrecision-bit word on the optical side, the parity
// generator/checker on the electrical side. Retries are measured at
// run time and folded in through WithExecutions, so the a-priori
// execution factor is 1.
func (p Parity) Overhead(d arch.Design) arch.ProtectionOverhead {
	frame := (float64(arch.NativePrecision) + 1) / float64(arch.NativePrecision)
	o := arch.ProtectionOverhead{
		Scheme:           p.Name(),
		OpticalFactor:    frame,
		ElectricalFactor: frame,
		ExecutionFactor:  1,
		LaserFactor:      1,
		TuningFactor:     1,
	}
	if d == arch.EE {
		o.OpticalFactor = 1
	}
	return o
}

// Wrap returns the detect-and-retry engine. If the wrapped engine
// exposes no FaultMeter the detector never fires and the wrapper is a
// counted pass-through.
func (p Parity) Wrap(e bitserial.Stripes) (bitserial.Stripes, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &parityGuard{base: e, retries: p.Retries, mask: accMask(e)}
	if m, ok := e.(FaultMeter); ok {
		g.meter = m
	}
	return g, nil
}

// parityGuard re-runs a call while the underlying engine's odd-flip
// word counter moved during it, up to the retry budget.
type parityGuard struct {
	base    bitserial.Stripes
	meter   FaultMeter // nil when the engine exposes no fault telemetry
	retries int
	mask    uint64
	c       Counters
}

var _ bitserial.Stripes = (*parityGuard)(nil)
var _ Metered = (*parityGuard)(nil)

func (g *parityGuard) Bits() int             { return g.base.Bits() }
func (g *parityGuard) AccumulatorWidth() int { return g.base.AccumulatorWidth() }
func (g *parityGuard) Counters() Counters    { return g.c }

// guarded runs fn and retries while the parity detector fired during
// the run. Each retry consumes fresh fault draws from the wrapped
// engine's streams — a re-run is a new transmission, not a replay.
func (g *parityGuard) guarded(fn func() (uint64, bitserial.Stats, error)) (uint64, bitserial.Stats, error) {
	g.c.Calls++
	var st bitserial.Stats
	for attempt := 0; ; attempt++ {
		var before int64
		if g.meter != nil {
			before = g.meter.OddFlipWords()
		}
		v, s, err := fn()
		if err != nil {
			return 0, bitserial.Stats{}, err
		}
		addStats(&st, s)
		g.c.Executions++
		if g.meter == nil || g.meter.OddFlipWords() == before {
			return v, st, nil // no detectable word error during the run
		}
		if attempt == g.retries {
			g.c.GaveUp++
			return v, st, nil // budget exhausted: ship the last attempt
		}
		g.c.Retries++
	}
}

func (g *parityGuard) Multiply(neuron, synapse uint64) (uint64, bitserial.Stats, error) {
	return g.guarded(func() (uint64, bitserial.Stats, error) {
		return g.base.Multiply(neuron, synapse)
	})
}

func (g *parityGuard) DotProduct(neurons, synapses []uint64) (uint64, bitserial.Stats, error) {
	return g.guarded(func() (uint64, bitserial.Stats, error) {
		return g.base.DotProduct(neurons, synapses)
	})
}

// Window routes every lane dot product through the guarded path; see
// protectedWindow.
func (g *parityGuard) Window(inputs [][]uint64, synapses [][][]uint64) ([]uint64, bitserial.Stats, error) {
	return protectedWindow(g, g.mask, inputs, synapses)
}
