package elec

import (
	"math"
	"testing"

	"pixel/internal/phy"
)

func TestPipelineCombinationalFitsOneStage(t *testing.T) {
	tech := Bulk22LVT()
	// A 4-level block at 0.295 ns/level = 1.18 ns needs one stage at a
	// 2 ns clock.
	block := GateCount{Gates: 100, Depth: 4}
	plan, err := Pipeline(block, 16, 2*phy.Nanosecond, tech)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages != 1 || plan.Extra.Flops != 0 {
		t.Errorf("plan = %+v, want single combinational stage", plan)
	}
	if plan.ThroughputGain(block, tech) != 1 {
		t.Error("fitting block has no throughput gain")
	}
}

func TestPipelineDeepBlockAtFastClock(t *testing.T) {
	tech := Bulk22LVT()
	// The 32-bit CLA (depth 14 -> 4.13 ns) at a 1 ns clock: 3 levels
	// per stage -> 5 stages, 4 pipeline registers.
	block := CLA(32)
	plan, err := Pipeline(block, 32, 1*phy.Nanosecond, tech)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages != 5 {
		t.Errorf("stages = %d, want 5", plan.Stages)
	}
	if plan.Extra.Flops != 4*32 {
		t.Errorf("pipeline registers = %d flops, want 128", plan.Extra.Flops)
	}
	gain := plan.ThroughputGain(block, tech)
	if math.Abs(gain-block.Delay(tech)/1e-9) > 1e-9 {
		t.Errorf("throughput gain = %v", gain)
	}
	if gain <= 4 {
		t.Errorf("deep block should gain >4x, got %v", gain)
	}
}

func TestPipelineValidation(t *testing.T) {
	tech := Bulk22LVT()
	if _, err := Pipeline(CLA(8), 0, 1e-9, tech); err == nil {
		t.Error("zero width should error")
	}
	if _, err := Pipeline(CLA(8), 8, 0, tech); err == nil {
		t.Error("zero period should error")
	}
	// A period below one gate delay cannot be met by pipelining.
	if _, err := Pipeline(CLA(8), 8, 0.1*phy.Nanosecond, tech); err == nil {
		t.Error("sub-gate-delay period should error")
	}
	bad := tech
	bad.GateDelay = 0
	if _, err := Pipeline(CLA(8), 8, 1e-9, bad); err == nil {
		t.Error("invalid tech should error")
	}
}
