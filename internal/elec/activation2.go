package elec

import "fmt"

// Additional activation implementations from the approaches the paper
// surveys (Section II-B): piecewise-linear sigmoid (PLAN), plain ReLU,
// and a lookup-table cost model.

// SigmoidUnit is the classic PLAN piecewise-linear sigmoid (Amin et
// al.), fixed point, maximum error ~0.019:
//
//	0    <= x < 1      y = 0.25*x + 0.5
//	1    <= x < 2.375  y = 0.125*x + 0.625
//	2.375<= x < 5      y = 0.03125*x + 0.84375
//	5    <= x          y = 1
//
// with sigma(-x) = 1 - sigma(x).
type SigmoidUnit struct {
	fracBits int
	one      int64
}

// NewSigmoidUnit returns a PLAN sigmoid on Q(x.fracBits) fixed point.
func NewSigmoidUnit(fracBits int) (*SigmoidUnit, error) {
	if fracBits < 5 || fracBits > 30 {
		return nil, fmt.Errorf("elec: sigmoid fracBits %d out of range [5,30]", fracBits)
	}
	return &SigmoidUnit{fracBits: fracBits, one: 1 << uint(fracBits)}, nil
}

// Apply computes the PLAN sigmoid of the fixed-point input using only
// shifts, adds and comparisons.
func (u *SigmoidUnit) Apply(x int64) int64 {
	neg := x < 0
	if neg {
		x = -x
	}
	one := u.one
	b1 := one
	b2 := 2*one + (one >> 2) + (one >> 3) // 2.375
	b3 := 5 * one
	var y int64
	switch {
	case x < b1:
		y = (x >> 2) + (one >> 1) // x/4 + 0.5
	case x < b2:
		y = (x >> 3) + (one >> 1) + (one >> 3) // x/8 + 0.625
	case x < b3:
		y = (x >> 5) + (one >> 1) + (one >> 2) + (one >> 4) + (one >> 5) // x/32 + 0.84375
	default:
		y = one
	}
	if neg {
		return one - y
	}
	return y
}

// ApplyFloat is the float convenience wrapper.
func (u *SigmoidUnit) ApplyFloat(x float64) float64 {
	v := int64(x * float64(u.one))
	return float64(u.Apply(v)) / float64(u.one)
}

// SigmoidUnitGates returns the structural cost (same class as the tanh
// unit: comparators + shift mux + narrow adder).
func SigmoidUnitGates(width int) GateCount {
	return TanhUnitGates(width)
}

// ReLUUnit gates negative values to zero: a sign check and a mux.
type ReLUUnit struct{}

// Apply implements the activation.
func (ReLUUnit) Apply(x int64) int64 {
	if x < 0 {
		return 0
	}
	return x
}

// ReLUUnitGates returns the structural cost: one mux per bit.
func ReLUUnitGates(width int) GateCount {
	if width < 1 {
		panic("elec.ReLUUnitGates: width must be >= 1")
	}
	return GateCount{Gates: 3 * width, Depth: 2}
}

// LUTActivation prices a lookup-table activation of 2^addrBits entries
// by dataBits: the ROM/SRAM dominates; it is the area-hungry
// alternative the paper's survey contrasts with PL approximation.
func LUTActivation(addrBits, dataBits int) (GateCount, error) {
	if addrBits < 1 || addrBits > 16 || dataBits < 1 {
		return GateCount{}, fmt.Errorf("elec: LUT %d/%d out of range", addrBits, dataBits)
	}
	entries := 1 << uint(addrBits)
	// ~1 gate-equivalent per 4 ROM bits plus the decoder.
	romGates := entries * dataBits / 4
	decoder := entries / 2
	return GateCount{Gates: romGates + decoder, Depth: 2 + addrBits/2}, nil
}
