package elec

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestKoggeStoneMatchesNativeAdd(t *testing.T) {
	for _, w := range []int{1, 2, 7, 8, 16, 32, 48, 63, 64} {
		a, err := NewKoggeStoneAdder(w)
		if err != nil {
			t.Fatal(err)
		}
		mask := a.mask
		f := func(x, y uint64, cin bool) bool {
			sum, cout := a.Add(x, y, cin)
			var ci uint64
			if cin {
				ci = 1
			}
			if w == 64 {
				want, wantC := bits.Add64(x, y, ci)
				return sum == want && cout == (wantC == 1)
			}
			full := (x & mask) + (y & mask) + ci
			return sum == full&mask && cout == ((full>>uint(w))&1 == 1)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestKoggeStoneAgreesWithCLA(t *testing.T) {
	ks, _ := NewKoggeStoneAdder(24)
	cla, _ := NewCLAAdder(24)
	f := func(x, y uint64, cin bool) bool {
		s1, c1 := ks.Add(x, y, cin)
		s2, c2 := cla.Add(x, y, cin)
		return s1 == s2 && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKoggeStoneWidthValidation(t *testing.T) {
	if _, err := NewKoggeStoneAdder(0); err == nil {
		t.Error("width 0 should error")
	}
	if _, err := NewKoggeStoneAdder(65); err == nil {
		t.Error("width 65 should error")
	}
	a, _ := NewKoggeStoneAdder(16)
	if a.Width() != 16 {
		t.Error("Width accessor wrong")
	}
}

func TestKoggeStoneShallowerThanCLAAtWidth(t *testing.T) {
	// The prefix adder's depth is logarithmic; the classified CLA's
	// Eq. 6 depth grows 4 + 2*ceil(log2(n-1)). From 8 bits up the
	// prefix network is strictly shallower.
	for _, n := range []int{8, 16, 32, 64} {
		if KoggeStoneLogicDepth(n) >= CLALogicDepth(n) {
			t.Errorf("n=%d: KS depth %d should beat CLA depth %d",
				n, KoggeStoneLogicDepth(n), CLALogicDepth(n))
		}
	}
	// And it pays in gates at small widths but wins at large widths
	// vs the cubic CLA formula.
	if KoggeStoneGateCount(64) >= CLAGateCount(64) {
		t.Error("KS should use fewer gates than the cubic CLA formula at 64 bits")
	}
}

func TestKoggeStonePanics(t *testing.T) {
	for _, f := range []func(){
		func() { KoggeStoneGateCount(0) },
		func() { KoggeStoneLogicDepth(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestArrayMultiplierFuncMatchesNative(t *testing.T) {
	for _, w := range []int{1, 4, 8, 16, 24, 32} {
		m, err := NewArrayMultiplier(w)
		if err != nil {
			t.Fatal(err)
		}
		mask := m.mask
		f := func(x, y uint64) bool {
			x &= mask
			y &= mask
			got, err := m.Multiply(x, y)
			return err == nil && got == x*y
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestArrayMultiplierValidation(t *testing.T) {
	if _, err := NewArrayMultiplier(0); err == nil {
		t.Error("width 0 should error")
	}
	if _, err := NewArrayMultiplier(33); err == nil {
		t.Error("width 33 should error")
	}
	m, _ := NewArrayMultiplier(8)
	if _, err := m.Multiply(256, 1); err == nil {
		t.Error("out-of-range operand should error")
	}
}

func TestMultiplierGateModels(t *testing.T) {
	arr := ArrayMultiplier(8)
	wal := WallaceMultiplier(8)
	if arr.Gates <= 0 || wal.Gates <= 0 {
		t.Fatal("multiplier gates must be positive")
	}
	// Wallace trades a (slightly) larger final adder for much less
	// depth than the linear array.
	if wal.Depth >= arr.Depth {
		t.Errorf("Wallace depth %d should beat array depth %d", wal.Depth, arr.Depth)
	}
	// Quadratic growth: doubling the width should much more than
	// double the gates.
	if ArrayMultiplier(16).Gates <= 3*arr.Gates {
		t.Errorf("16-bit multiplier (%d gates) should exceed 3x the 8-bit (%d)",
			ArrayMultiplier(16).Gates, arr.Gates)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ArrayMultiplier(0)
}

func TestWallacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	WallaceMultiplier(0)
}
