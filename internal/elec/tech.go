// Package elec models the electrical side of the PIXEL accelerator: a
// DSENT-like 22 nm bulk CMOS technology model (the paper's Bulk22LVT) and
// the gate-count, energy, area and delay models for every electrical
// component used by the EE, OE and OO designs (carry-lookahead adders,
// barrel shifters, AND arrays, registers, comparator ladders, and the
// hybrid piecewise-linear hyperbolic-tangent activation unit).
//
// In addition to the cost models, the package contains bit-exact
// *functional* implementations of the datapath components (CLA addition,
// barrel shifting, PL-tanh). These are used by the functional MAC
// simulators to prove that the three designs compute identical results.
package elec

import (
	"fmt"

	"pixel/internal/phy"
)

// Tech describes a CMOS technology node as consumed by the cost models:
// everything is reduced to per-gate (NAND2-equivalent) figures plus wire
// constants, exactly the granularity at which the paper uses DSENT.
type Tech struct {
	// Name identifies the model, e.g. "Bulk22LVT".
	Name string

	// GateEnergy is the switching energy of one NAND2-equivalent gate
	// per clocked transition [J]. DSENT Bulk22LVT-class devices land in
	// the low-femtojoule range per gate toggle.
	GateEnergy float64

	// GateArea is the layout area of one NAND2-equivalent gate
	// including local wiring overhead [m^2].
	GateArea float64

	// GateDelay is the propagation delay of one logic level [s]. The
	// paper derives 2.95 ns for an 8-bit CLA with logic depth 10, i.e.
	// 0.295 ns per level.
	GateDelay float64

	// GateLeakage is the static power of one gate [W]; charged for the
	// duration a component is powered.
	GateLeakage float64

	// WireEnergyPerBitMeter is the electrical interconnect energy to
	// move one bit over one meter of on-chip wire [J/(bit*m)].
	WireEnergyPerBitMeter float64

	// WireDelayPerMeter is the repeated-wire signal velocity [s/m].
	WireDelayPerMeter float64

	// ClockRate is the electrical clock [Hz]; the paper evaluates the
	// electrical processing at 1 GHz.
	ClockRate float64

	// FlopEnergy is the energy of one flip-flop capture [J] and
	// FlopArea its area [m^2]; registers and shift registers are built
	// from these.
	FlopEnergy float64
	FlopArea   float64
}

// Bulk22LVT returns the 22 nm low-Vt bulk technology model used for all
// electrical components in the paper (Section IV-A1).
//
// Where the paper states a figure we keep it: 0.295 ns per logic level
// (from the 8-bit CLA example: LD=10 -> 2.95 ns) and a 1 GHz electrical
// clock. Per-gate energy/area are set to representative 22 nm values
// (DSENT-class): ~1 fJ per gate toggle, ~0.4 um^2 per gate. The paper's
// own printed units for these ("0.07 nm^2", "0.17 uW" for 212 gates) are
// typographically inconsistent; see DESIGN.md section 5.
func Bulk22LVT() Tech {
	return Tech{
		Name:                  "Bulk22LVT",
		GateEnergy:            1.0 * phy.Femtojoule,
		GateArea:              0.4 * phy.SquareMicrometer,
		GateDelay:             0.295 * phy.Nanosecond,
		GateLeakage:           0.8 * phy.Nanowatt,
		WireEnergyPerBitMeter: 0.6 * phy.Picojoule / phy.Millimeter,
		WireDelayPerMeter:     66 * phy.Picosecond / phy.Millimeter,
		ClockRate:             1 * phy.Gigahertz,
		FlopEnergy:            4.0 * phy.Femtojoule,
		FlopArea:              1.6 * phy.SquareMicrometer,
	}
}

// Validate reports an error if the technology parameters are not usable.
func (t Tech) Validate() error {
	switch {
	case t.GateEnergy <= 0:
		return fmt.Errorf("elec: %s: GateEnergy must be positive", t.Name)
	case t.GateArea <= 0:
		return fmt.Errorf("elec: %s: GateArea must be positive", t.Name)
	case t.GateDelay <= 0:
		return fmt.Errorf("elec: %s: GateDelay must be positive", t.Name)
	case t.ClockRate <= 0:
		return fmt.Errorf("elec: %s: ClockRate must be positive", t.Name)
	case t.FlopEnergy <= 0 || t.FlopArea <= 0:
		return fmt.Errorf("elec: %s: flop parameters must be positive", t.Name)
	case t.WireEnergyPerBitMeter < 0 || t.WireDelayPerMeter < 0 || t.GateLeakage < 0:
		return fmt.Errorf("elec: %s: wire/leakage parameters must be non-negative", t.Name)
	}
	return nil
}

// ClockPeriod returns the electrical clock period [s].
func (t Tech) ClockPeriod() float64 { return 1 / t.ClockRate }

// GateCount is a census of NAND2-equivalent gates and flip-flops for a
// component; cost models convert it to energy/area/delay via Tech.
type GateCount struct {
	Gates int // combinational NAND2-equivalents
	Flops int // sequential elements
	Depth int // logic levels on the critical path
}

// Add returns the union of two gate counts; depth is the max (components
// are assumed parallel unless composed explicitly).
func (g GateCount) Add(o GateCount) GateCount {
	d := g.Depth
	if o.Depth > d {
		d = o.Depth
	}
	return GateCount{Gates: g.Gates + o.Gates, Flops: g.Flops + o.Flops, Depth: d}
}

// Chain returns the series composition of two gate counts; depths add.
func (g GateCount) Chain(o GateCount) GateCount {
	return GateCount{Gates: g.Gates + o.Gates, Flops: g.Flops + o.Flops, Depth: g.Depth + o.Depth}
}

// Scale returns the gate count replicated n times (depth unchanged).
func (g GateCount) Scale(n int) GateCount {
	return GateCount{Gates: g.Gates * n, Flops: g.Flops * n, Depth: g.Depth}
}

// Energy returns the switching energy [J] of one activation of the
// component under technology t, assuming an average activity factor of
// one transition per gate per activation (the paper's convention).
func (g GateCount) Energy(t Tech) float64 {
	return float64(g.Gates)*t.GateEnergy + float64(g.Flops)*t.FlopEnergy
}

// Area returns the layout area [m^2] of the component under technology t.
func (g GateCount) Area(t Tech) float64 {
	return float64(g.Gates)*t.GateArea + float64(g.Flops)*t.FlopArea
}

// Delay returns the critical-path propagation delay [s] of the component
// under technology t.
func (g GateCount) Delay(t Tech) float64 {
	return float64(g.Depth) * t.GateDelay
}

// Leakage returns the static power [W] of the component under t.
func (g GateCount) Leakage(t Tech) float64 {
	return float64(g.Gates+g.Flops) * t.GateLeakage
}
