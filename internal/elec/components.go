package elec

import "fmt"

// This file holds structural (gate-count) models for the remaining
// electrical components of the MAC pipelines, and functional models where
// the datapath needs them (barrel shifter).

// ANDArray returns the gate count of an n-bit bitwise AND stage: one gate
// per bit, depth 1. In the EE design this is the "multiplier" of the STR
// methodology — the full neuron word ANDed against one synapse bit.
func ANDArray(n int) GateCount {
	if n < 1 {
		panic("elec.ANDArray: width must be >= 1")
	}
	return GateCount{Gates: n, Depth: 1}
}

// Register returns the gate count of an n-bit register.
func Register(n int) GateCount {
	if n < 1 {
		panic("elec.Register: width must be >= 1")
	}
	return GateCount{Flops: n, Depth: 1}
}

// ShiftRegister returns the gate count of an n-bit serial-in/parallel-out
// shift register, as used by the simple O/E converter to deserialize the
// optical pulse train.
func ShiftRegister(n int) GateCount {
	if n < 1 {
		panic("elec.ShiftRegister: width must be >= 1")
	}
	// One flop plus a small amount of clock-gating logic per stage.
	return GateCount{Flops: n, Gates: n / 2, Depth: 1}
}

// BarrelShifterGateCount returns the gate count of an n-bit logarithmic
// barrel shifter: log2(n) mux stages of n 2:1 muxes, ~3 NAND2 equivalents
// per mux.
func BarrelShifter(n int) GateCount {
	if n < 1 {
		panic("elec.BarrelShifter: width must be >= 1")
	}
	stages := log2ceilAtLeast1(n)
	return GateCount{Gates: 3 * n * stages, Depth: 2 * stages}
}

func log2ceilAtLeast1(n int) int {
	if n <= 1 {
		return 1
	}
	return log2ceil(n)
}

// ComparatorLadder returns the gate count of a current-comparator ladder
// that resolves `levels` distinct optical amplitude levels (levels-1
// comparators plus a thermometer-to-binary encoder). This is the second,
// more complex O/E converter of the paper (Section II-A3), needed by the
// OO design where pulse amplitudes carry sums.
func ComparatorLadder(levels int) GateCount {
	if levels < 2 {
		panic("elec.ComparatorLadder: need at least 2 levels")
	}
	comparators := levels - 1
	// Each analog comparator is priced as ~12 gate-equivalents (DSENT
	// treats small analog blocks via equivalent digital area/energy);
	// the thermometer->binary encoder is ~2 gates per comparator.
	enc := 2 * comparators
	return GateCount{Gates: 12*comparators + enc, Depth: 3 + log2ceilAtLeast1(comparators)}
}

// Accumulator returns the structural model of a width-bit shift-accumulate
// stage: CLA + barrel shifter + result register. This is the electrical
// processing (EP) unit shared by the EE and OE designs.
func Accumulator(width int) GateCount {
	return CLA(width).Chain(BarrelShifter(width)).Add(Register(width))
}

// AccumulatorWidth returns the accumulator width needed to sum `terms`
// products of two `bits`-wide operands without overflow:
// 2*bits for the product plus ceil(log2(terms)) growth.
func AccumulatorWidth(bits, terms int) int {
	if bits < 1 || terms < 1 {
		panic("elec.AccumulatorWidth: bits and terms must be >= 1")
	}
	return 2*bits + log2ceilAtLeast1(terms)
}

// BarrelShifterFunc is a functional logarithmic barrel shifter.
type BarrelShifterFunc struct {
	width int
	mask  uint64
}

// NewBarrelShifter returns a functional barrel shifter for the given
// word width (1..64).
func NewBarrelShifter(width int) (*BarrelShifterFunc, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("elec: barrel shifter width %d out of range [1,64]", width)
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = (1 << uint(width)) - 1
	}
	return &BarrelShifterFunc{width: width, mask: mask}, nil
}

// ShiftLeft shifts v left by n bit positions through log2(width) mux
// stages, dropping bits shifted beyond the word width (as the hardware
// does).
func (b *BarrelShifterFunc) ShiftLeft(v uint64, n int) uint64 {
	if n < 0 {
		panic("elec.BarrelShifterFunc: negative shift")
	}
	if n >= b.width {
		return 0
	}
	v &= b.mask
	// Stage-by-stage conditional shift: stage k shifts by 2^k when the
	// corresponding bit of n is set.
	for k := 0; (1<<uint(k)) <= n || k < 1; k++ {
		if (1<<uint(k))&n != 0 {
			v = (v << uint(1<<uint(k))) & b.mask
		}
		if (1 << uint(k)) > n {
			break
		}
	}
	return v
}

// SerializerEnergy — gate count for a parallel-in/serial-out stage used
// by the E/O driver front end (width flops + mux tree).
func Serializer(width int) GateCount {
	if width < 1 {
		panic("elec.Serializer: width must be >= 1")
	}
	return GateCount{Flops: width, Gates: 2 * width, Depth: 1 + log2ceilAtLeast1(width)}
}
