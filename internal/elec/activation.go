package elec

import "fmt"

// Hybrid piecewise-linear hyperbolic tangent activation unit, after the
// design the paper adopts (Zamanlooy & Mirhassani, TVLSI 2014): a PLAN-
// style piecewise-linear approximation whose segment slopes are powers of
// two, so every multiply is a bit-shift ("bit-level mapping") and the
// datapath is comparator + shifter + adder.
//
// The tanh approximation used (x >= 0; odd symmetry for x < 0):
//
//	0.0 <= x < 0.5    y = x
//	0.5 <= x < 7/6    y = x/2 + 1/4
//	7/6 <= x < 2.5    y = x/8 + 11/16
//	2.5 <= x          y = 1
//
// This is the tanh image of the classic PLAN sigmoid approximation
// (tanh(x) = 2*sigma(2x) - 1), with the middle boundary moved from
// 1.1875 to 7/6 — the point where the two segments actually intersect —
// so the approximation is continuous and monotone. Its maximum absolute
// error stays below 0.04, matching the accuracy class reported for the
// hybrid design.

// TanhSegment describes one piece of the approximation: for
// lower <= |x| < upper, y = |x|>>Shift + Offset (Shift < 0 means slope 0).
type TanhSegment struct {
	Lower  float64
	Upper  float64
	Shift  int     // right-shift amount encoding the power-of-two slope
	Offset float64 // additive constant
}

// TanhSegments returns the segment table of the approximation, exported
// for documentation and for tests that validate continuity and error.
func TanhSegments() []TanhSegment {
	return []TanhSegment{
		{Lower: 0, Upper: 0.5, Shift: 0, Offset: 0},
		{Lower: 0.5, Upper: 7.0 / 6.0, Shift: 1, Offset: 0.25},
		{Lower: 7.0 / 6.0, Upper: 2.5, Shift: 3, Offset: 0.6875},
		{Lower: 2.5, Upper: 0, Shift: -1, Offset: 1}, // saturated
	}
}

// TanhUnit is a functional fixed-point implementation of the activation
// unit. Values are two's-complement fixed point with FracBits fractional
// bits.
type TanhUnit struct {
	fracBits int
	one      int64 // 1.0 in fixed point
}

// NewTanhUnit returns a tanh unit operating on Q(x.FracBits) fixed-point
// values. fracBits must be in [2, 30].
func NewTanhUnit(fracBits int) (*TanhUnit, error) {
	if fracBits < 2 || fracBits > 30 {
		return nil, fmt.Errorf("elec: tanh fracBits %d out of range [2,30]", fracBits)
	}
	return &TanhUnit{fracBits: fracBits, one: 1 << uint(fracBits)}, nil
}

// FracBits returns the number of fractional bits of the unit.
func (u *TanhUnit) FracBits() int { return u.fracBits }

// ToFixed converts a float to the unit's fixed-point representation
// (round to nearest).
func (u *TanhUnit) ToFixed(x float64) int64 {
	v := x * float64(u.one)
	if v >= 0 {
		return int64(v + 0.5)
	}
	return -int64(-v + 0.5)
}

// ToFloat converts a fixed-point value back to float.
func (u *TanhUnit) ToFloat(v int64) float64 {
	return float64(v) / float64(u.one)
}

// Apply computes the piecewise-linear tanh of the fixed-point input,
// using only comparisons, shifts and additions — the exact operations of
// the hardware unit.
func (u *TanhUnit) Apply(x int64) int64 {
	neg := x < 0
	if neg {
		x = -x
	}
	var y int64
	half := u.one >> 1
	b2 := (7 * u.one) / 6     // segment-intersection boundary 7/6
	b3 := (u.one << 1) + half // 2.5
	switch {
	case x < half:
		y = x
	case x < b2:
		y = (x >> 1) + (u.one >> 2) // x/2 + 0.25
	case x < b3:
		y = (x >> 3) + (half + (u.one >> 3) + (u.one >> 4)) // x/8 + 0.6875
	default:
		y = u.one
	}
	if neg {
		return -y
	}
	return y
}

// ApplyFloat is a convenience wrapper: float in, float out, through the
// fixed-point datapath.
func (u *TanhUnit) ApplyFloat(x float64) float64 {
	return u.ToFloat(u.Apply(u.ToFixed(x)))
}

// TanhUnitGates returns the structural gate count of the activation unit
// for a given datapath width: three fixed-bound comparators, a two-level
// shift mux, a narrow adder for the offset, and sign handling. The hybrid
// design's headline is an ultra-low gate count, linear in width.
func TanhUnitGates(width int) GateCount {
	if width < 2 {
		panic("elec.TanhUnitGates: width must be >= 2")
	}
	comparators := GateCount{Gates: 3 * width, Depth: 3}
	shiftMux := GateCount{Gates: 3 * width, Depth: 2}
	offsetAdd := GateCount{Gates: CLAGateCount(width) / 4, Depth: CLALogicDepth(width) / 2}
	sign := GateCount{Gates: 2 * width, Depth: 1}
	return comparators.Chain(shiftMux).Chain(offsetAdd).Add(sign)
}
