package elec

import "testing"

func TestNewSRAMValidation(t *testing.T) {
	if _, err := NewSRAM(0, 8); err == nil {
		t.Error("zero words should error")
	}
	if _, err := NewSRAM(8, 0); err == nil {
		t.Error("zero width should error")
	}
	if _, err := NewSRAM(1<<22, 32); err == nil {
		t.Error("over-capacity array should error")
	}
}

func TestSRAMCosts(t *testing.T) {
	s, err := NewSRAM(256, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bits() != 2048 {
		t.Errorf("Bits = %d", s.Bits())
	}
	if s.Area() <= float64(s.Bits())*s.BitcellArea {
		t.Error("area must include peripheral overhead")
	}
	if s.WriteEnergy() <= s.ReadEnergy()-1e-30 && s.WriteEnergy() <= s.ReadEnergy() {
		t.Error("writes cost more than reads in this model")
	}
	if s.FillEnergy() != 256*s.WriteEnergy() {
		t.Error("fill energy must be words * write energy")
	}
	if s.Leakage() <= 0 {
		t.Error("leakage must be positive")
	}
}

func TestSRAMScalesWithOrganization(t *testing.T) {
	small, _ := NewSRAM(64, 8)
	big, _ := NewSRAM(1024, 8)
	if big.Area() <= small.Area() || big.FillEnergy() <= small.FillEnergy() {
		t.Error("larger arrays must cost more")
	}
}

func TestWeightRF(t *testing.T) {
	single, err := WeightRF(4, 16, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	double, err := WeightRF(4, 16, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if single.Words != 64 || double.Words != 128 {
		t.Errorf("RF words = %d / %d, want 64 / 128", single.Words, double.Words)
	}
	// Double buffering doubles area — the price of the pipelined
	// preload the mapper models.
	if double.Area() <= single.Area() {
		t.Error("double-buffered RF must be larger")
	}
	if _, err := WeightRF(0, 1, 1, false); err == nil {
		t.Error("invalid RF parameters should error")
	}
}
