package elec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTanhUnitMaxError(t *testing.T) {
	u, err := NewTanhUnit(12)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for x := -6.0; x <= 6.0; x += 0.001 {
		got := u.ApplyFloat(x)
		want := math.Tanh(x)
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
	}
	// The PLAN-derived tanh approximation has max error < 0.04 (plus a
	// little fixed-point quantization).
	if maxErr > 0.042 {
		t.Errorf("max |error| = %v, want <= 0.042", maxErr)
	}
}

func TestTanhUnitOddSymmetry(t *testing.T) {
	u, _ := NewTanhUnit(10)
	f := func(raw int16) bool {
		x := int64(raw)
		return u.Apply(-x) == -u.Apply(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTanhUnitMonotone(t *testing.T) {
	u, _ := NewTanhUnit(12)
	prev := int64(math.MinInt64)
	for x := -4 * (1 << 12); x <= 4*(1<<12); x += 7 {
		y := u.Apply(int64(x))
		if y < prev {
			t.Fatalf("tanh approximation not monotone at x=%d: %d < %d", x, y, prev)
		}
		prev = y
	}
}

func TestTanhUnitSaturation(t *testing.T) {
	u, _ := NewTanhUnit(8)
	one := int64(1 << 8)
	if got := u.Apply(100 * one); got != one {
		t.Errorf("tanh(large) = %d, want %d", got, one)
	}
	if got := u.Apply(-100 * one); got != -one {
		t.Errorf("tanh(-large) = %d, want %d", got, -one)
	}
	if got := u.Apply(0); got != 0 {
		t.Errorf("tanh(0) = %d, want 0", got)
	}
}

func TestTanhUnitBounded(t *testing.T) {
	u, _ := NewTanhUnit(14)
	one := int64(1 << 14)
	f := func(raw int32) bool {
		y := u.Apply(int64(raw))
		return y >= -one && y <= one
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTanhFixedConversionRoundTrip(t *testing.T) {
	u, _ := NewTanhUnit(12)
	for _, x := range []float64{0, 0.5, -0.5, 1.25, -3.75, 2.4999} {
		got := u.ToFloat(u.ToFixed(x))
		if math.Abs(got-x) > 1.0/(1<<12) {
			t.Errorf("round trip %v -> %v", x, got)
		}
	}
}

func TestTanhSegmentsContinuity(t *testing.T) {
	segs := TanhSegments()
	if len(segs) != 4 {
		t.Fatalf("expected 4 segments, got %d", len(segs))
	}
	// Adjacent segments must agree at the boundary within the
	// approximation's error budget (the PLAN segments are nearly, not
	// exactly, continuous).
	eval := func(s TanhSegment, x float64) float64 {
		if s.Shift < 0 {
			return s.Offset
		}
		return x/float64(int64(1)<<uint(s.Shift)) + s.Offset
	}
	for i := 0; i+1 < len(segs); i++ {
		b := segs[i].Upper
		y1 := eval(segs[i], b)
		y2 := eval(segs[i+1], b)
		if math.Abs(y1-y2) > 0.05 {
			t.Errorf("discontinuity %v at x=%v (%v vs %v)", y1-y2, b, y1, y2)
		}
	}
}

func TestNewTanhUnitRange(t *testing.T) {
	if _, err := NewTanhUnit(1); err == nil {
		t.Error("fracBits 1 should error")
	}
	if _, err := NewTanhUnit(31); err == nil {
		t.Error("fracBits 31 should error")
	}
	u, err := NewTanhUnit(2)
	if err != nil || u.FracBits() != 2 {
		t.Errorf("fracBits 2 should work, got %v", err)
	}
}

func TestTanhUnitGates(t *testing.T) {
	gc := TanhUnitGates(16)
	if gc.Gates <= 0 || gc.Depth <= 0 {
		t.Errorf("TanhUnitGates(16) = %+v", gc)
	}
	// The hybrid design is far smaller than a full multiplier-based
	// implementation; sanity-bound it under a 16-bit CLA+shifter pair.
	big := CLA(16).Chain(BarrelShifter(16))
	if gc.Gates >= big.Gates {
		t.Errorf("tanh unit (%d gates) should be smaller than CLA+shifter (%d)", gc.Gates, big.Gates)
	}
	defer func() {
		if recover() == nil {
			t.Error("width 1 should panic")
		}
	}()
	TanhUnitGates(1)
}
