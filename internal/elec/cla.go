package elec

import "fmt"

// CLAGateCount returns the gate count GC(n) of an n-bit carry-lookahead
// adder per the paper's Eq. 5:
//
//	GC(n) = (n^3 + 6n^2 + 47n) / 6
//
// Worked examples from the paper: GC(8) = 212, GC(4) = 58.
func CLAGateCount(n int) int {
	if n < 1 {
		panic("elec.CLAGateCount: width must be >= 1")
	}
	return (n*n*n + 6*n*n + 47*n) / 6
}

// CLALogicDepth returns the logic depth LD(n) of an n-bit carry-lookahead
// adder per the paper's Eq. 6:
//
//	LD(n) = 4 + 2*ceil(log2(n-1))
//
// Worked example from the paper: LD(8) = 10. For n <= 2 the lookahead
// network degenerates; we return the Eq. 6 value with the ceil(log2)
// term clamped at zero, i.e. LD = 4.
func CLALogicDepth(n int) int {
	if n < 1 {
		panic("elec.CLALogicDepth: width must be >= 1")
	}
	if n <= 2 {
		return 4
	}
	return 4 + 2*log2ceil(n-1)
}

func log2ceil(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// CLA returns the structural gate count of an n-bit carry-lookahead adder
// (combinational part only; output registers are accounted separately by
// the accumulator models).
func CLA(n int) GateCount {
	return GateCount{Gates: CLAGateCount(n), Depth: CLALogicDepth(n)}
}

// CLAAdder is a bit-exact functional model of a carry-lookahead adder.
// It computes sums the way the hardware does — generate/propagate signals
// feeding a lookahead carry network — rather than delegating to the host
// "+" operator, so the functional simulators exercise the same structure
// that the cost model prices.
type CLAAdder struct {
	width int
	mask  uint64
}

// NewCLAAdder returns an adder for words of the given bit width
// (1..64 bits).
func NewCLAAdder(width int) (*CLAAdder, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("elec: CLA width %d out of range [1,64]", width)
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = (1 << uint(width)) - 1
	}
	return &CLAAdder{width: width, mask: mask}, nil
}

// Width returns the adder word width in bits.
func (a *CLAAdder) Width() int { return a.width }

// Add returns the width-bit sum of x and y plus the incoming carry, along
// with the carry out of the most significant bit. Inputs wider than the
// adder are truncated, as real hardware would.
func (a *CLAAdder) Add(x, y uint64, carryIn bool) (sum uint64, carryOut bool) {
	x &= a.mask
	y &= a.mask

	// Generate and propagate per bit position.
	g := x & y   // bit i generates a carry
	p := x ^ y   // bit i propagates a carry
	var c uint64 // c has bit i set if there is a carry *into* position i
	ci := carryIn
	// Lookahead network: carry into i+1 = g_i | (p_i & carry into i).
	// Computed as a prefix over the width, mirroring a (serialized)
	// lookahead tree evaluation.
	for i := 0; i < a.width; i++ {
		if ci {
			c |= 1 << uint(i)
		}
		gi := (g>>uint(i))&1 == 1
		pi := (p>>uint(i))&1 == 1
		ci = gi || (pi && ci)
	}
	sum = (p ^ c) & a.mask
	return sum, ci
}

// AddSigned adds two signed values through the same carry network,
// interpreting the width-bit result in two's complement.
func (a *CLAAdder) AddSigned(x, y int64) int64 {
	sum, _ := a.Add(uint64(x), uint64(y), false)
	return signExtend(sum, a.width)
}

// signExtend interprets the low `width` bits of v as a two's-complement
// number.
func signExtend(v uint64, width int) int64 {
	if width >= 64 {
		return int64(v)
	}
	sign := uint64(1) << uint(width-1)
	if v&sign != 0 {
		v |= ^uint64(0) << uint(width)
	}
	return int64(v)
}
