package elec

import "testing"

func BenchmarkCLAAdd32(b *testing.B) {
	a, err := NewCLAAdder(32)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(uint64(i), uint64(i)*2654435761, false)
	}
}

func BenchmarkKoggeStoneAdd32(b *testing.B) {
	a, err := NewKoggeStoneAdder(32)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(uint64(i), uint64(i)*2654435761, false)
	}
}

func BenchmarkTanhUnitApply(b *testing.B) {
	u, err := NewTanhUnit(12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Apply(int64(i%20000 - 10000))
	}
}

func BenchmarkArrayMultiplier16(b *testing.B) {
	m, err := NewArrayMultiplier(16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Multiply(uint64(i)&0xFFFF, uint64(i>>4)&0xFFFF); err != nil {
			b.Fatal(err)
		}
	}
}
