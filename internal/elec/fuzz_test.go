package elec

import "testing"

// FuzzAddersAgree cross-checks the two functional adder architectures
// against each other and the host arithmetic on arbitrary operands.
func FuzzAddersAgree(f *testing.F) {
	f.Add(uint64(0), uint64(0), false)
	f.Add(uint64(1)<<63, uint64(1)<<63, true)
	f.Add(^uint64(0), uint64(1), false)
	f.Add(uint64(0xDEADBEEF), uint64(0xFEEDFACE), true)
	cla, err := NewCLAAdder(48)
	if err != nil {
		f.Fatal(err)
	}
	ks, err := NewKoggeStoneAdder(48)
	if err != nil {
		f.Fatal(err)
	}
	mask := uint64(1)<<48 - 1
	f.Fuzz(func(t *testing.T, x, y uint64, cin bool) {
		s1, c1 := cla.Add(x, y, cin)
		s2, c2 := ks.Add(x, y, cin)
		if s1 != s2 || c1 != c2 {
			t.Fatalf("adders disagree on %x+%x cin=%v: CLA (%x,%v) KS (%x,%v)",
				x, y, cin, s1, c1, s2, c2)
		}
		var ci uint64
		if cin {
			ci = 1
		}
		full := (x & mask) + (y & mask) + ci
		if s1 != full&mask || c1 != ((full>>48)&1 == 1) {
			t.Fatalf("adders disagree with arithmetic on %x+%x", x, y)
		}
	})
}

// FuzzTanhProperties checks the activation unit's invariants on
// arbitrary fixed-point inputs: odd symmetry and boundedness.
func FuzzTanhProperties(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1) << 20)
	f.Add(int64(-1) << 20)
	u, err := NewTanhUnit(12)
	if err != nil {
		f.Fatal(err)
	}
	one := int64(1) << 12
	f.Fuzz(func(t *testing.T, x int64) {
		// Keep |x| away from int64 overflow on negation.
		if x == -x {
			return
		}
		y := u.Apply(x)
		if y < -one || y > one {
			t.Fatalf("tanh(%d) = %d out of [-1,1]", x, y)
		}
		if u.Apply(-x) != -y {
			t.Fatalf("tanh not odd at %d", x)
		}
	})
}
