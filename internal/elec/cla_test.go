package elec

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestCLAGateCountPaperExamples(t *testing.T) {
	// Paper Section IV-A1: GC(8) = 212; Section IV-C: 4-bit CLA has 58
	// gates.
	if got := CLAGateCount(8); got != 212 {
		t.Errorf("GC(8) = %d, want 212", got)
	}
	if got := CLAGateCount(4); got != 58 {
		t.Errorf("GC(4) = %d, want 58", got)
	}
}

func TestCLALogicDepthPaperExample(t *testing.T) {
	// Paper: LD(8) = 4 + 2*ceil(log2(7)) = 10.
	if got := CLALogicDepth(8); got != 10 {
		t.Errorf("LD(8) = %d, want 10", got)
	}
	if got := CLALogicDepth(4); got != 8 {
		t.Errorf("LD(4) = %d, want 8", got)
	}
	if got := CLALogicDepth(2); got != 4 {
		t.Errorf("LD(2) = %d, want 4", got)
	}
	if got := CLALogicDepth(16); got != 12 {
		t.Errorf("LD(16) = %d, want 12", got)
	}
	if got := CLALogicDepth(32); got != 14 {
		t.Errorf("LD(32) = %d, want 14", got)
	}
}

func TestCLAGateCountMonotone(t *testing.T) {
	prev := 0
	for n := 1; n <= 64; n++ {
		gc := CLAGateCount(n)
		if gc <= prev {
			t.Fatalf("GC not strictly increasing at n=%d: %d <= %d", n, gc, prev)
		}
		prev = gc
	}
}

func TestCLAGateCountDivisibility(t *testing.T) {
	// n^3 + 6n^2 + 47n is always divisible by 6, so the formula is exact
	// for every n (no truncation).
	for n := 1; n <= 128; n++ {
		num := n*n*n + 6*n*n + 47*n
		if num%6 != 0 {
			t.Fatalf("GC numerator not divisible by 6 at n=%d", n)
		}
	}
}

func TestCLAPanicsOnBadWidth(t *testing.T) {
	for _, f := range []func(){
		func() { CLAGateCount(0) },
		func() { CLALogicDepth(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on width 0")
				}
			}()
			f()
		}()
	}
}

func TestNewCLAAdderRange(t *testing.T) {
	if _, err := NewCLAAdder(0); err == nil {
		t.Error("width 0 should error")
	}
	if _, err := NewCLAAdder(65); err == nil {
		t.Error("width 65 should error")
	}
	for _, w := range []int{1, 8, 32, 64} {
		if _, err := NewCLAAdder(w); err != nil {
			t.Errorf("width %d: unexpected error %v", w, err)
		}
	}
}

func TestCLAAdderKnownSums(t *testing.T) {
	a, _ := NewCLAAdder(4)
	cases := []struct {
		x, y     uint64
		cin      bool
		sum      uint64
		carryOut bool
	}{
		{0, 0, false, 0, false},
		{0b0110, 0b0011, false, 0b1001, false},
		{0b1111, 0b0001, false, 0b0000, true},
		{0b1111, 0b1111, true, 0b1111, true},
		{0b1000, 0b1000, false, 0b0000, true},
		{0b0101, 0b0101, false, 0b1010, false},
	}
	for _, c := range cases {
		sum, cout := a.Add(c.x, c.y, c.cin)
		if sum != c.sum || cout != c.carryOut {
			t.Errorf("Add(%04b,%04b,%v) = (%04b,%v), want (%04b,%v)",
				c.x, c.y, c.cin, sum, cout, c.sum, c.carryOut)
		}
	}
}

func TestCLAAdderMatchesNativeAdd(t *testing.T) {
	for _, w := range []int{1, 3, 8, 16, 24, 32, 48, 63, 64} {
		a, err := NewCLAAdder(w)
		if err != nil {
			t.Fatal(err)
		}
		mask := a.mask
		f := func(x, y uint64, cin bool) bool {
			sum, cout := a.Add(x, y, cin)
			var ci uint64
			if cin {
				ci = 1
			}
			if w == 64 {
				want, wantCout := bits.Add64(x, y, ci)
				return sum == want && cout == (wantCout == 1)
			}
			full := (x & mask) + (y & mask) + ci
			return sum == full&mask && cout == ((full>>uint(w))&1 == 1)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestCLAAdderSigned(t *testing.T) {
	a, _ := NewCLAAdder(16)
	cases := []struct{ x, y, want int64 }{
		{5, -3, 2},
		{-5, -3, -8},
		{32767, 1, -32768}, // wraps like 16-bit hardware
		{-32768, -1, 32767},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := a.AddSigned(c.x, c.y); got != c.want {
			t.Errorf("AddSigned(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestCLAAdderSignedProperty(t *testing.T) {
	a, _ := NewCLAAdder(32)
	f := func(x, y int32) bool {
		got := a.AddSigned(int64(x), int64(y))
		want := int64(int32(x + y)) // 32-bit wrapping semantics
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
		want  int64
	}{
		{0b0111, 4, 7},
		{0b1000, 4, -8},
		{0b1111, 4, -1},
		{0xFF, 8, -1},
		{0x7F, 8, 127},
		{0xFFFFFFFFFFFFFFFF, 64, -1},
	}
	for _, c := range cases {
		if got := signExtend(c.v, c.width); got != c.want {
			t.Errorf("signExtend(%#x,%d) = %d, want %d", c.v, c.width, got, c.want)
		}
	}
}
