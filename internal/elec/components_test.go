package elec

import (
	"testing"
	"testing/quick"
)

func TestANDArray(t *testing.T) {
	gc := ANDArray(8)
	if gc.Gates != 8 || gc.Depth != 1 || gc.Flops != 0 {
		t.Errorf("ANDArray(8) = %+v", gc)
	}
}

func TestRegisterAndShiftRegister(t *testing.T) {
	if gc := Register(16); gc.Flops != 16 || gc.Gates != 0 {
		t.Errorf("Register(16) = %+v", gc)
	}
	if gc := ShiftRegister(16); gc.Flops != 16 || gc.Gates != 8 {
		t.Errorf("ShiftRegister(16) = %+v", gc)
	}
}

func TestBarrelShifterGateCountGrowth(t *testing.T) {
	// n log n growth: 8-bit has 3 stages, 16-bit has 4.
	g8 := BarrelShifter(8)
	g16 := BarrelShifter(16)
	if g8.Gates != 3*8*3 {
		t.Errorf("BarrelShifter(8).Gates = %d, want 72", g8.Gates)
	}
	if g16.Gates != 3*16*4 {
		t.Errorf("BarrelShifter(16).Gates = %d, want 192", g16.Gates)
	}
	if g16.Depth <= g8.Depth {
		t.Error("deeper shifter should have more depth")
	}
}

func TestComparatorLadder(t *testing.T) {
	gc := ComparatorLadder(4) // 3 comparators
	if gc.Gates != 12*3+2*3 {
		t.Errorf("ComparatorLadder(4).Gates = %d, want 42", gc.Gates)
	}
	defer func() {
		if recover() == nil {
			t.Error("ComparatorLadder(1) should panic")
		}
	}()
	ComparatorLadder(1)
}

func TestAccumulatorWidth(t *testing.T) {
	cases := []struct{ bits, terms, want int }{
		{4, 1, 9},   // 8 + ceil(log2(1)) clamped to 1
		{4, 4, 10},  // 8 + 2
		{8, 16, 20}, // 16 + 4
		{8, 9, 20},  // 16 + 4
	}
	for _, c := range cases {
		if got := AccumulatorWidth(c.bits, c.terms); got != c.want {
			t.Errorf("AccumulatorWidth(%d,%d) = %d, want %d", c.bits, c.terms, got, c.want)
		}
	}
}

func TestGateCountComposition(t *testing.T) {
	a := GateCount{Gates: 10, Flops: 2, Depth: 3}
	b := GateCount{Gates: 5, Flops: 1, Depth: 7}
	sum := a.Add(b)
	if sum.Gates != 15 || sum.Flops != 3 || sum.Depth != 7 {
		t.Errorf("Add = %+v", sum)
	}
	chain := a.Chain(b)
	if chain.Depth != 10 || chain.Gates != 15 {
		t.Errorf("Chain = %+v", chain)
	}
	scaled := a.Scale(4)
	if scaled.Gates != 40 || scaled.Flops != 8 || scaled.Depth != 3 {
		t.Errorf("Scale = %+v", scaled)
	}
}

func TestGateCountCostsUnderTech(t *testing.T) {
	tech := Bulk22LVT()
	if err := tech.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper worked example: 8-bit CLA, LD=10 -> 2.95 ns at 0.295 ns/level.
	gc := CLA(8)
	if d := gc.Delay(tech); !within(d, 2.95e-9, 1e-3) {
		t.Errorf("8-bit CLA delay = %v, want 2.95ns", d)
	}
	if e := gc.Energy(tech); e <= 0 {
		t.Error("energy must be positive")
	}
	if a := gc.Area(tech); a <= 0 {
		t.Error("area must be positive")
	}
	if l := gc.Leakage(tech); l <= 0 {
		t.Error("leakage must be positive")
	}
}

func within(got, want, rel float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= rel*want
}

func TestTechValidateCatchesBadParams(t *testing.T) {
	good := Bulk22LVT()
	bad := []func(*Tech){
		func(t *Tech) { t.GateEnergy = 0 },
		func(t *Tech) { t.GateArea = -1 },
		func(t *Tech) { t.GateDelay = 0 },
		func(t *Tech) { t.ClockRate = 0 },
		func(t *Tech) { t.FlopEnergy = 0 },
		func(t *Tech) { t.WireEnergyPerBitMeter = -1 },
	}
	for i, mutate := range bad {
		tech := good
		mutate(&tech)
		if err := tech.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestClockPeriod(t *testing.T) {
	tech := Bulk22LVT()
	if got := tech.ClockPeriod(); !within(got, 1e-9, 1e-12) {
		t.Errorf("ClockPeriod = %v, want 1ns", got)
	}
}

func TestBarrelShifterFuncMatchesNativeShift(t *testing.T) {
	for _, w := range []int{4, 8, 16, 32, 64} {
		bs, err := NewBarrelShifter(w)
		if err != nil {
			t.Fatal(err)
		}
		mask := bs.mask
		f := func(v uint64, nRaw uint8) bool {
			n := int(nRaw) % (w + 4) // sometimes exceed width
			got := bs.ShiftLeft(v, n)
			var want uint64
			if n < w {
				want = (v << uint(n)) & mask
			}
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestBarrelShifterRejectsBadWidth(t *testing.T) {
	if _, err := NewBarrelShifter(0); err == nil {
		t.Error("width 0 should error")
	}
	if _, err := NewBarrelShifter(100); err == nil {
		t.Error("width 100 should error")
	}
}

func TestBarrelShifterNegativePanics(t *testing.T) {
	bs, _ := NewBarrelShifter(8)
	defer func() {
		if recover() == nil {
			t.Error("negative shift should panic")
		}
	}()
	bs.ShiftLeft(1, -1)
}

func TestSerializerGateCount(t *testing.T) {
	gc := Serializer(8)
	if gc.Flops != 8 || gc.Gates != 16 {
		t.Errorf("Serializer(8) = %+v", gc)
	}
}
