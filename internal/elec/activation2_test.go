package elec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSigmoidUnitMaxError(t *testing.T) {
	u, err := NewSigmoidUnit(12)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for x := -8.0; x <= 8.0; x += 0.001 {
		got := u.ApplyFloat(x)
		want := 1 / (1 + math.Exp(-x))
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
	}
	// PLAN's published max error is 0.0189 plus quantization.
	if maxErr > 0.021 {
		t.Errorf("max |error| = %v, want <= 0.021", maxErr)
	}
}

func TestSigmoidComplementSymmetry(t *testing.T) {
	u, _ := NewSigmoidUnit(10)
	one := int64(1 << 10)
	f := func(raw int16) bool {
		x := int64(raw)
		return u.Apply(x)+u.Apply(-x) == one
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmoidBounds(t *testing.T) {
	u, _ := NewSigmoidUnit(12)
	one := int64(1 << 12)
	f := func(raw int32) bool {
		y := u.Apply(int64(raw))
		return y >= 0 && y <= one
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if u.Apply(0) != one>>1 {
		t.Errorf("sigmoid(0) = %d, want %d", u.Apply(0), one>>1)
	}
}

func TestNewSigmoidUnitValidation(t *testing.T) {
	if _, err := NewSigmoidUnit(4); err == nil {
		t.Error("fracBits 4 should error")
	}
	if _, err := NewSigmoidUnit(31); err == nil {
		t.Error("fracBits 31 should error")
	}
}

func TestReLUUnit(t *testing.T) {
	var r ReLUUnit
	if r.Apply(-5) != 0 || r.Apply(0) != 0 || r.Apply(7) != 7 {
		t.Error("ReLU values wrong")
	}
	gc := ReLUUnitGates(16)
	if gc.Gates != 48 || gc.Depth != 2 {
		t.Errorf("ReLU gates = %+v", gc)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ReLUUnitGates(0)
}

func TestLUTActivationCost(t *testing.T) {
	small, err := LUTActivation(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	big, err := LUTActivation(12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if big.Gates <= small.Gates {
		t.Error("bigger LUT must cost more")
	}
	// The PL approximations beat LUTs on area — the reason the paper's
	// chosen design uses them.
	pl := TanhUnitGates(16)
	if small.Gates <= pl.Gates {
		t.Errorf("a 256-entry LUT (%d gates) should exceed the PL unit (%d gates)", small.Gates, pl.Gates)
	}
	if _, err := LUTActivation(0, 8); err == nil {
		t.Error("invalid LUT should error")
	}
	if _, err := LUTActivation(17, 8); err == nil {
		t.Error("oversized LUT should error")
	}
}

func TestSigmoidUnitGatesMatchesTanhClass(t *testing.T) {
	if SigmoidUnitGates(16) != TanhUnitGates(16) {
		t.Error("PLAN sigmoid and tanh units share the structural cost class")
	}
}
