package elec

import "fmt"

// Alternative adder architectures. The paper prices its accumulators
// with the classified-CLA formulas (Eq. 5/6); a Kogge-Stone parallel-
// prefix adder trades more wiring and gates for logarithmic depth —
// the comparison quantifies how sensitive the EE/OE cycle time is to
// the adder choice.

// KoggeStoneGateCount returns the gate count of an n-bit Kogge-Stone
// adder: n half-sum/generate cells, ceil(log2 n) prefix ranks of up to
// n (g,p) merge cells (3 gate-equivalents each), and n sum XORs.
func KoggeStoneGateCount(n int) int {
	if n < 1 {
		panic("elec.KoggeStoneGateCount: width must be >= 1")
	}
	ranks := log2ceilAtLeast1(n)
	merge := 0
	for r := 0; r < ranks; r++ {
		span := 1 << uint(r)
		if span < n {
			merge += n - span
		}
	}
	return 2*n + 3*merge + n
}

// KoggeStoneLogicDepth returns the logic depth: one preprocessing
// level, ceil(log2 n) prefix ranks, one sum level.
func KoggeStoneLogicDepth(n int) int {
	if n < 1 {
		panic("elec.KoggeStoneLogicDepth: width must be >= 1")
	}
	return 2 + log2ceilAtLeast1(n)
}

// KoggeStone returns the structural gate count of an n-bit
// parallel-prefix adder.
func KoggeStone(n int) GateCount {
	return GateCount{Gates: KoggeStoneGateCount(n), Depth: KoggeStoneLogicDepth(n)}
}

// KoggeStoneAdder is a bit-exact functional model: generate/propagate
// pairs merged through the Kogge-Stone prefix network.
type KoggeStoneAdder struct {
	width int
	mask  uint64
}

// NewKoggeStoneAdder returns an adder for 1..64-bit words.
func NewKoggeStoneAdder(width int) (*KoggeStoneAdder, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("elec: Kogge-Stone width %d out of range [1,64]", width)
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = (1 << uint(width)) - 1
	}
	return &KoggeStoneAdder{width: width, mask: mask}, nil
}

// Width returns the word width.
func (a *KoggeStoneAdder) Width() int { return a.width }

// Add computes the width-bit sum with carry in/out through the prefix
// network: rank r merges (g,p) pairs at distance 2^r.
func (a *KoggeStoneAdder) Add(x, y uint64, carryIn bool) (sum uint64, carryOut bool) {
	x &= a.mask
	y &= a.mask
	g := x & y
	p := x ^ y
	// Fold the carry-in as a generate at a virtual position -1 by
	// pre-seeding bit 0.
	if carryIn {
		g |= p & 1
	}
	// Prefix ranks: G = g | (p & G>>d), P = p & P>>d.
	gp, pp := g, p
	for d := 1; d < a.width; d <<= 1 {
		gp = gp | (pp & (gp << uint(d)))
		pp = pp & (pp << uint(d))
	}
	// Carry into position i is the group generate of [0, i-1]; shift
	// left by one. Carry-in handled above for bit 0.
	var c uint64
	c = (gp << 1) & a.mask
	if carryIn {
		c |= 1
	}
	sum = (p ^ c) & a.mask
	if a.width == 64 {
		carryOut = gp>>63 == 1
	} else {
		carryOut = (gp>>(uint(a.width)-1))&1 == 1
	}
	return sum, carryOut
}
