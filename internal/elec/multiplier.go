package elec

import "fmt"

// Bit-parallel multiplier models, for the extension experiment that
// contrasts the paper's bit-serial (Stripes) discipline against a
// conventional parallel MAC.

// ArrayMultiplier returns the gate count of an n x n array multiplier:
// n^2 partial-product AND gates plus (n-1) rows of n-bit carry-save
// adders (~5 gate-equivalents per full adder) and a final n-bit CLA.
func ArrayMultiplier(n int) GateCount {
	if n < 1 {
		panic("elec.ArrayMultiplier: width must be >= 1")
	}
	partial := GateCount{Gates: n * n, Depth: 1}
	csa := GateCount{Gates: 5 * n * (n - 1), Depth: 2 * (n - 1)}
	final := CLA(n)
	return partial.Chain(csa).Chain(final)
}

// WallaceMultiplier returns the gate count of a Wallace-tree multiplier:
// same partial products and adder cells, but the reduction tree is
// logarithmic in depth (~1.7 log2 levels of 3:2 compressors).
func WallaceMultiplier(n int) GateCount {
	if n < 1 {
		panic("elec.WallaceMultiplier: width must be >= 1")
	}
	partial := GateCount{Gates: n * n, Depth: 1}
	levels := 1
	for h := n; h > 2; h = (h*2 + 2) / 3 {
		levels++
	}
	tree := GateCount{Gates: 5 * n * (n - 1), Depth: 2 * levels}
	final := CLA(2 * n)
	return partial.Chain(tree).Chain(final)
}

// ArrayMultiplierFunc is a bit-exact functional model: partial products
// accumulated row by row through a CLA (the carry-save array's
// arithmetic effect).
type ArrayMultiplierFunc struct {
	width int
	mask  uint64
	adder *CLAAdder
}

// NewArrayMultiplier returns a functional multiplier for 1..32-bit
// operands (the 2n-bit product must fit uint64).
func NewArrayMultiplier(width int) (*ArrayMultiplierFunc, error) {
	if width < 1 || width > 32 {
		return nil, fmt.Errorf("elec: array multiplier width %d out of range [1,32]", width)
	}
	adder, err := NewCLAAdder(2 * width)
	if err != nil {
		return nil, err
	}
	return &ArrayMultiplierFunc{
		width: width,
		mask:  (uint64(1) << uint(width)) - 1,
		adder: adder,
	}, nil
}

// Multiply returns x*y computed as the sum of shifted partial products.
func (m *ArrayMultiplierFunc) Multiply(x, y uint64) (uint64, error) {
	if x > m.mask || y > m.mask {
		return 0, fmt.Errorf("elec: operand exceeds %d-bit range", m.width)
	}
	var acc uint64
	for j := 0; j < m.width; j++ {
		if (y>>uint(j))&1 == 1 {
			acc, _ = m.adder.Add(acc, x<<uint(j), false)
		}
	}
	return acc, nil
}
