package elec

import "fmt"

// Pipelining analysis: a combinational block deeper than one clock
// period must either stretch the cycle (the conservative choice the
// frozen cost model makes) or be pipelined with register stages. This
// helper sizes that trade for any GateCount.

// PipelinePlan describes how a combinational block meets a clock.
type PipelinePlan struct {
	// Stages is the number of pipeline segments (1 = combinational).
	Stages int
	// RegisterBits is the width of each inserted pipeline register.
	RegisterBits int
	// CycleTime is the resulting clock period [s].
	CycleTime float64
	// ExtraGates is the added sequential cost.
	Extra GateCount
	// LatencyCycles is the block's result latency in cycles.
	LatencyCycles int
}

// Pipeline sizes the register stages needed for the block to run at
// the target clock period under the technology, with registers of the
// given width at each cut.
func Pipeline(block GateCount, width int, targetPeriod float64, tech Tech) (PipelinePlan, error) {
	if width < 1 {
		return PipelinePlan{}, fmt.Errorf("elec: pipeline register width must be >= 1")
	}
	if targetPeriod <= 0 {
		return PipelinePlan{}, fmt.Errorf("elec: target period must be positive")
	}
	if err := tech.Validate(); err != nil {
		return PipelinePlan{}, err
	}
	levelsPerStage := int(targetPeriod / tech.GateDelay)
	if levelsPerStage < 1 {
		return PipelinePlan{}, fmt.Errorf(
			"elec: target period %.3g s is below one gate delay %.3g s: unreachable",
			targetPeriod, tech.GateDelay)
	}
	stages := (block.Depth + levelsPerStage - 1) / levelsPerStage
	if stages < 1 {
		stages = 1
	}
	plan := PipelinePlan{
		Stages:        stages,
		RegisterBits:  width,
		CycleTime:     targetPeriod,
		LatencyCycles: stages,
	}
	if stages > 1 {
		plan.Extra = Register(width).Scale(stages - 1)
	}
	return plan, nil
}

// ThroughputGain returns how much faster results stream out of the
// pipelined block versus the stretched-cycle alternative: the
// combinational cycle over the pipelined cycle.
func (p PipelinePlan) ThroughputGain(block GateCount, tech Tech) float64 {
	comb := block.Delay(tech)
	if comb < p.CycleTime {
		return 1
	}
	return comb / p.CycleTime
}
