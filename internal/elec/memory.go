package elec

import (
	"fmt"

	"pixel/internal/phy"
)

// SRAM models the per-tile weight register file of Figure 3 (the "RF
// for filter weight storage"): a words x width 6T array with decoder
// and sense amplifiers, priced in the same per-gate terms as the logic.
type SRAM struct {
	// Words and Width give the organization.
	Words, Width int
	// BitcellArea is the 6T cell footprint [m^2] (~0.1 um^2 at 22 nm
	// with array overhead).
	BitcellArea float64
	// ReadEnergyPerBit / WriteEnergyPerBit are the dynamic access
	// energies [J/bit] including bitline and sense-amp switching.
	ReadEnergyPerBit  float64
	WriteEnergyPerBit float64
	// LeakagePerBit is the static power per cell [W].
	LeakagePerBit float64
}

// NewSRAM returns a 22 nm-class array of the given organization.
func NewSRAM(words, width int) (*SRAM, error) {
	if words < 1 || width < 1 {
		return nil, fmt.Errorf("elec: SRAM organization %dx%d invalid", words, width)
	}
	if words*width > 1<<26 {
		return nil, fmt.Errorf("elec: SRAM %dx%d exceeds the 64 Mb single-array bound", words, width)
	}
	return &SRAM{
		Words:             words,
		Width:             width,
		BitcellArea:       0.1 * phy.SquareMicrometer,
		ReadEnergyPerBit:  2 * phy.Femtojoule,
		WriteEnergyPerBit: 3 * phy.Femtojoule,
		LeakagePerBit:     50e-12,
	}, nil
}

// Bits returns the capacity in bits.
func (s *SRAM) Bits() int { return s.Words * s.Width }

// Area returns the array area including decoder/sense overhead [m^2].
func (s *SRAM) Area() float64 {
	array := float64(s.Bits()) * s.BitcellArea
	// Peripheral overhead: decoder (one gate-equivalent per word) and
	// sense amps (4 per column), at standard-cell density.
	tech := Bulk22LVT()
	periph := GateCount{Gates: s.Words + 4*s.Width}.Area(tech)
	return array + periph
}

// ReadEnergy returns the energy of one word read [J].
func (s *SRAM) ReadEnergy() float64 {
	return float64(s.Width) * s.ReadEnergyPerBit
}

// WriteEnergy returns the energy of one word write [J].
func (s *SRAM) WriteEnergy() float64 {
	return float64(s.Width) * s.WriteEnergyPerBit
}

// FillEnergy returns the energy to write the entire array [J] — the
// weight-preload cost the mapper charges per tile.
func (s *SRAM) FillEnergy() float64 {
	return float64(s.Words) * s.WriteEnergy()
}

// Leakage returns the static power of the array [W].
func (s *SRAM) Leakage() float64 {
	return float64(s.Bits()) * s.LeakagePerBit
}

// WeightRF sizes the register file one OMAC tile needs: lanes synapse
// lanes x elements per lane at the given precision, double-buffered if
// requested.
func WeightRF(lanes, elements, bits int, doubleBuffered bool) (*SRAM, error) {
	if lanes < 1 || elements < 1 || bits < 1 {
		return nil, fmt.Errorf("elec: weight RF parameters must be positive")
	}
	words := lanes * elements
	if doubleBuffered {
		words *= 2
	}
	return NewSRAM(words, bits)
}
