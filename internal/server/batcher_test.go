package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pixel"
)

// echoRun is a controllable batch backend: it counts passes, records
// the images of the last pass, and returns one result per image whose
// Outputs echo the image and whose ArgMax is the image's position in
// the serving batch — so tests can check both slicing and order.
type echoRun struct {
	calls  atomic.Int64
	images atomic.Value // [][]int64 of the last pass
	err    error
}

func (e *echoRun) run(ctx context.Context, network string, images [][]int64) ([]pixel.InferResult, error) {
	e.calls.Add(1)
	cp := make([][]int64, len(images))
	for i, img := range images {
		cp[i] = append([]int64(nil), img...)
	}
	e.images.Store(cp)
	if e.err != nil {
		return nil, e.err
	}
	out := make([]pixel.InferResult, len(images))
	for i, img := range images {
		out[i] = pixel.InferResult{Outputs: append([]int64(nil), img...), ArgMax: i}
	}
	return out, nil
}

// pendingImages is the test's window into a batch under collection.
func (b *microBatcher) pendingImages(network string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if pb := b.pending[network]; pb != nil {
		return pb.images
	}
	return 0
}

// TestBatcherFlushOnFull proves a batch executes the moment pending
// images reach batchSize (the window never expires here), that all
// requests ride one engine pass, and that results fan out in arrival
// order.
func TestBatcherFlushOnFull(t *testing.T) {
	e := &echoRun{}
	b := newMicroBatcher(e.run, 4, time.Hour)
	defer b.Close()

	type reply struct {
		idx     int
		results []pixel.InferResult
		batched int
		err     error
	}
	replies := make(chan reply, 4)
	// Submit one image at a time, waiting until each lands in the
	// pending batch, so arrival order is deterministic.
	for i := 0; i < 4; i++ {
		i := i
		go func() {
			res, n, err := b.Submit(context.Background(), "net", [][]int64{{int64(10 + i)}})
			replies <- reply{i, res, n, err}
		}()
		if i < 3 {
			waitFor(t, fmt.Sprintf("request %d pending", i), func() bool {
				return b.pendingImages("net") == i+1
			})
		}
	}

	for range [4]int{} {
		r := <-replies
		if r.err != nil {
			t.Fatalf("request %d: %v", r.idx, r.err)
		}
		if r.batched != 4 {
			t.Errorf("request %d batched = %d, want 4", r.idx, r.batched)
		}
		if len(r.results) != 1 || r.results[0].Outputs[0] != int64(10+r.idx) {
			t.Errorf("request %d got %+v, want its own image back", r.idx, r.results)
		}
		if r.results[0].ArgMax != r.idx {
			t.Errorf("request %d sat at batch position %d, want %d (arrival order)",
				r.idx, r.results[0].ArgMax, r.idx)
		}
	}
	if got := e.calls.Load(); got != 1 {
		t.Errorf("engine passes = %d, want 1", got)
	}
}

// TestBatcherFlushOnTimer proves a partial batch executes when its
// window elapses without filling.
func TestBatcherFlushOnTimer(t *testing.T) {
	e := &echoRun{}
	b := newMicroBatcher(e.run, 100, 20*time.Millisecond)
	defer b.Close()

	type reply struct {
		results []pixel.InferResult
		batched int
		err     error
	}
	replies := make(chan reply, 2)
	go func() {
		res, n, err := b.Submit(context.Background(), "net", [][]int64{{1}, {2}})
		replies <- reply{res, n, err}
	}()
	waitFor(t, "first request pending", func() bool { return b.pendingImages("net") == 2 })
	go func() {
		res, n, err := b.Submit(context.Background(), "net", [][]int64{{3}})
		replies <- reply{res, n, err}
	}()

	for range [2]int{} {
		r := <-replies
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.batched != 3 {
			t.Errorf("batched = %d, want 3 (timer flushed the partial batch)", r.batched)
		}
	}
	if got := e.calls.Load(); got != 1 {
		t.Errorf("engine passes = %d, want 1", got)
	}
}

// TestBatcherCancelRemovesOnlyThatRequest proves cancelling one
// pending request drops its images from the batch without disturbing
// its neighbours, who still execute together.
func TestBatcherCancelRemovesOnlyThatRequest(t *testing.T) {
	e := &echoRun{}
	b := newMicroBatcher(e.run, 3, time.Hour)
	defer b.Close()

	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, _, err := b.Submit(ctxA, "net", [][]int64{{99}}) // the marker that must vanish
		errA <- err
	}()
	waitFor(t, "request A pending", func() bool { return b.pendingImages("net") == 1 })

	type reply struct {
		results []pixel.InferResult
		batched int
		err     error
	}
	replies := make(chan reply, 2)
	go func() {
		res, n, err := b.Submit(context.Background(), "net", [][]int64{{1}})
		replies <- reply{res, n, err}
	}()
	waitFor(t, "request B pending", func() bool { return b.pendingImages("net") == 2 })

	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request err = %v, want context.Canceled", err)
	}
	waitFor(t, "request A removed", func() bool { return b.pendingImages("net") == 1 })

	// Two more images fill the 3-slot batch and trigger the flush.
	go func() {
		res, n, err := b.Submit(context.Background(), "net", [][]int64{{2}, {3}})
		replies <- reply{res, n, err}
	}()

	for range [2]int{} {
		r := <-replies
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.batched != 3 {
			t.Errorf("batched = %d, want 3 (B's one + C's two)", r.batched)
		}
	}
	if got := e.calls.Load(); got != 1 {
		t.Errorf("engine passes = %d, want 1", got)
	}
	for _, img := range e.images.Load().([][]int64) {
		if img[0] == 99 {
			t.Error("cancelled request's image reached the engine pass")
		}
	}
}

// TestBatcherCancelLastDropsBatch proves an all-cancelled batch never
// reaches the engine.
func TestBatcherCancelLastDropsBatch(t *testing.T) {
	e := &echoRun{}
	b := newMicroBatcher(e.run, 3, 20*time.Millisecond)
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := b.Submit(ctx, "net", [][]int64{{1}})
		errc <- err
	}()
	waitFor(t, "request pending", func() bool { return b.pendingImages("net") == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	time.Sleep(50 * time.Millisecond) // past the window
	if got := e.calls.Load(); got != 0 {
		t.Errorf("engine passes = %d, want 0 (batch emptied before its window)", got)
	}
}

// TestBatcherCloseDrainsPartials proves Close executes pending partial
// batches (waiters get results, not errors) and rejects new submits.
func TestBatcherCloseDrainsPartials(t *testing.T) {
	e := &echoRun{}
	b := newMicroBatcher(e.run, 100, time.Hour)

	type reply struct {
		batched int
		err     error
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			_, n, err := b.Submit(context.Background(), "net", [][]int64{{int64(i)}})
			replies <- reply{n, err}
		}()
	}
	waitFor(t, "both requests pending", func() bool { return b.pendingImages("net") == 2 })

	b.Close()
	for range [2]int{} {
		r := <-replies
		if r.err != nil {
			t.Fatalf("drained request failed: %v", r.err)
		}
		if r.batched != 2 {
			t.Errorf("batched = %d, want 2", r.batched)
		}
	}

	_, _, err := b.Submit(context.Background(), "net", [][]int64{{1}})
	var he *httpError
	if !errors.As(err, &he) || he.status != 503 {
		t.Fatalf("post-Close Submit err = %v, want 503 httpError", err)
	}
}

// TestBatcherErrorFansOut proves a failed pass reports the same error
// to every request that rode it.
func TestBatcherErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	e := &echoRun{err: boom}
	b := newMicroBatcher(e.run, 2, time.Hour)
	defer b.Close()

	errs := make(chan error, 2)
	go func() {
		_, _, err := b.Submit(context.Background(), "net", [][]int64{{1}})
		errs <- err
	}()
	waitFor(t, "first request pending", func() bool { return b.pendingImages("net") == 1 })
	go func() {
		_, _, err := b.Submit(context.Background(), "net", [][]int64{{2}})
		errs <- err
	}()

	for range [2]int{} {
		if err := <-errs; !errors.Is(err, boom) {
			t.Errorf("err = %v, want boom", err)
		}
	}
}
