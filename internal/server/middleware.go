package server

import (
	"net/http"
	"time"
)

// statusRecorder captures the status code and body size a handler
// writes, for the request log and the route/code counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards streaming support so SSE handlers can push events
// through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the serving middleware: in-flight
// gauge, per-route request/latency metrics and a structured log line
// per request. route is the metric label (the registration pattern
// without the method).
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)

		elapsed := time.Since(start)
		s.metrics.observe(route, rec.status, elapsed.Seconds())
		s.logger.Info("request",
			"method", r.Method,
			"route", route,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration", elapsed,
			"remote", r.RemoteAddr,
		)
	})
}
