package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"pixel"
	"pixel/api"
	"pixel/internal/jobs"
)

func newJobsManager(t *testing.T, dir string) *jobs.Manager {
	t.Helper()
	m, err := jobs.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// jobsServer builds a server with the durable-job routes enabled and
// the built-in (pixel facade) factory.
func jobsServer(t *testing.T, mgr *jobs.Manager) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{
		Engine: &stubEngine{},
		Logger: discardLogger(),
		Jobs: &JobsConfig{
			Manager:   mgr,
			SaveEvery: 5 * time.Millisecond,
			Heartbeat: 50 * time.Millisecond,
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close() // settle jobs first so SSE handlers unblock
		ts.Close()
	})
	return srv, ts
}

// waitJobState polls until the job reaches a terminal state.
func waitJobState(t *testing.T, c *api.Client, id string) api.JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case api.JobStateSucceeded, api.JobStateFailed, api.JobStateCancelled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q at %d/%d", id, st.State, st.Done, st.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobLifecycle drives a real robustness job end to end over HTTP:
// 202 on create, status polls through to success, the result
// value-identical to the synchronous pixel.Robustness call, and delete
// forgetting the job.
func TestJobLifecycle(t *testing.T) {
	_, ts := jobsServer(t, newJobsManager(t, t.TempDir()))
	c := api.NewClient(ts.URL, nil)
	ctx := context.Background()

	spec := api.RobustnessRequest{Network: "tiny", Design: "OO", Sigmas: []float64{0, 1, 3}, Trials: 8, Seed: 11}
	h, err := c.CreateJob(ctx, api.JobRequest{Kind: api.JobKindRobustness, Robustness: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID == "" || h.Kind != api.JobKindRobustness {
		t.Fatalf("handle = %+v", h)
	}
	st := waitJobState(t, c, h.ID)
	if st.State != api.JobStateSucceeded {
		t.Fatalf("job finished %q (%s), want succeeded", st.State, st.Error)
	}
	if st.Done != st.Total || st.Done == 0 {
		t.Fatalf("finished at %d/%d, want full", st.Done, st.Total)
	}

	var got pixel.RobustnessReport
	if err := json.Unmarshal(st.Result, &got); err != nil {
		t.Fatal(err)
	}
	want, err := pixel.Robustness(pixel.RobustnessSpec{
		Network: "tiny", Design: pixel.OO, Sigmas: []float64{0, 1, 3}, Trials: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("job result differs from synchronous run:\ngot  %+v\nwant %+v", got, want)
	}

	if err := c.DeleteJob(ctx, h.ID); err != nil {
		t.Fatal(err)
	}
	var he *api.HTTPError
	if _, err := c.Job(ctx, h.ID); !errors.As(err, &he) || he.Status != http.StatusNotFound {
		t.Fatalf("deleted job still answers: %v", err)
	}
}

// TestSweepJobLifecycle: the sweep kind works through the same routes.
func TestSweepJobLifecycle(t *testing.T) {
	_, ts := jobsServer(t, newJobsManager(t, t.TempDir()))
	c := api.NewClient(ts.URL, nil)

	h, err := c.CreateJob(context.Background(), api.JobRequest{
		Kind:  api.JobKindSweep,
		Sweep: &api.SweepRequest{Networks: []string{"LeNet"}, Lanes: []int{2}, Bits: []int{4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJobState(t, c, h.ID)
	if st.State != api.JobStateSucceeded {
		t.Fatalf("sweep job finished %q (%s)", st.State, st.Error)
	}
	var resp api.SweepResponse
	if err := json.Unmarshal(st.Result, &resp); err != nil {
		t.Fatal(err)
	}
	if wantPoints := len(pixel.Designs()); resp.Points != wantPoints || len(resp.Results["LeNet"]) != wantPoints {
		t.Fatalf("sweep result = %d points, %d rows; want %d", resp.Points, len(resp.Results["LeNet"]), wantPoints)
	}
}

// TestJobEventsReconnect streams a job's events in two sessions: the
// second reconnects with Last-Event-ID and the combined stream is
// gap-free and duplicate-free from seq 1 through the terminal event.
func TestJobEventsReconnect(t *testing.T) {
	_, ts := jobsServer(t, newJobsManager(t, t.TempDir()))
	c := api.NewClient(ts.URL, nil)
	ctx := context.Background()

	spec := api.RobustnessRequest{Network: "tiny", Design: "OO", Sigmas: []float64{0, 1, 3}, Trials: 64, Seed: 5}
	h, err := c.CreateJob(ctx, api.JobRequest{Kind: api.JobKindRobustness, Robustness: &spec})
	if err != nil {
		t.Fatal(err)
	}

	var events []api.JobEvent
	s1, err := c.JobEvents(ctx, h.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ev, err := s1.Next()
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	lastSeq := s1.LastSeq()
	s1.Close()

	s2, err := c.JobEvents(ctx, h.ID, lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for {
		ev, err := s2.Next()
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
		if ev.Terminal() {
			break
		}
	}

	points := 0
	for i, ev := range events {
		if want := int64(i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (gap or duplicate across reconnect)", i, ev.Seq, want)
		}
		if ev.Type == api.JobEventPoint {
			points++
		}
	}
	if points != len(spec.Sigmas) {
		t.Fatalf("saw %d point events, want %d", points, len(spec.Sigmas))
	}
	if last := events[len(events)-1]; last.Type != api.JobEventSucceeded {
		t.Fatalf("terminal event = %+v, want succeeded", last)
	}
}

// fakeJobTask is a controllable jobs.Task for restart tests: slots
// complete one per step-channel receive (or freely when step is nil),
// and the final result records how many slots THIS process executed —
// distinguishing restored progress from re-executed work.
type fakeJobTask struct {
	total int
	step  chan struct{}

	mu   sync.Mutex
	done int
	ran  int
}

func (f *fakeJobTask) Progress() (int, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done, f.total
}

func (f *fakeJobTask) Snapshot() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return json.Marshal(f.done)
}

func (f *fakeJobTask) Restore(b []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return json.Unmarshal(b, &f.done)
}

func (f *fakeJobTask) Run(ctx context.Context, emit func(string, any)) (any, error) {
	for {
		f.mu.Lock()
		done := f.done
		f.mu.Unlock()
		if done >= f.total {
			break
		}
		if f.step != nil {
			select {
			case <-f.step:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		f.mu.Lock()
		f.done++
		f.ran++
		done = f.done
		f.mu.Unlock()
		emit(api.JobEventProgress, api.JobProgress{Done: done, Total: f.total})
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return map[string]int{"ran": f.ran}, nil
}

// TestJobRestartRecovery is the server-level durability property: stop
// a server mid-job, start a new one on the same directory, and the job
// resumes from its checkpoint — only the unfinished slots execute in
// the second process, the status is marked adopted, and the event
// stream picks up with an "adopted" event at a seq past the first
// process's events.
func TestJobRestartRecovery(t *testing.T) {
	dir := t.TempDir()

	task1 := &fakeJobTask{total: 4, step: make(chan struct{})}
	srv1 := New(Config{
		Engine: &stubEngine{},
		Logger: discardLogger(),
		Jobs: &JobsConfig{
			Manager: newJobsManager(t, dir),
			Factory: func(kind string, spec json.RawMessage) (jobs.Task, error) { return task1, nil },
		},
	})
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := api.NewClient(ts1.URL, nil)
	h, err := c1.CreateJob(context.Background(), api.JobRequest{Kind: api.JobKindRobustness, Robustness: &api.RobustnessRequest{Network: "tiny"}})
	if err != nil {
		t.Fatal(err)
	}
	task1.step <- struct{}{}
	task1.step <- struct{}{}
	for deadline := time.Now().Add(10 * time.Second); ; {
		if done, _ := task1.Progress(); done == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached 2/4")
		}
		time.Sleep(time.Millisecond)
	}
	srv1.Close() // cancels the job; shutdown flushes a final checkpoint
	ts1.Close()

	task2 := &fakeJobTask{total: 4} // free-running: finishes what remains
	srv2 := New(Config{
		Engine: &stubEngine{},
		Logger: discardLogger(),
		Jobs: &JobsConfig{
			Manager: newJobsManager(t, dir),
			Factory: func(kind string, spec json.RawMessage) (jobs.Task, error) { return task2, nil },
		},
	})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		srv2.Close()
		ts2.Close()
	})
	c2 := api.NewClient(ts2.URL, nil)

	st := waitJobState(t, c2, h.ID)
	if st.State != api.JobStateSucceeded || !st.Adopted {
		t.Fatalf("recovered job: state %q adopted %v, want succeeded + adopted", st.State, st.Adopted)
	}
	var result map[string]int
	if err := json.Unmarshal(st.Result, &result); err != nil {
		t.Fatal(err)
	}
	if result["ran"] != 2 {
		t.Fatalf("second process executed %d slots, want exactly the 2 unfinished ones", result["ran"])
	}

	// The replayed stream starts with the adoption marker, and its seqs
	// continue past the first process's events instead of restarting.
	s, err := c2.JobEvents(context.Background(), h.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.Type != api.JobEventAdopted {
		t.Fatalf("first replayed event = %+v, want adopted", first)
	}
	// The first process published progress events at seqs 0 and 1, so
	// adoption must continue at 2 rather than restart numbering.
	if first.Seq != 2 {
		t.Fatalf("adopted event seq %d does not continue the pre-restart log", first.Seq)
	}
	for {
		ev, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Terminal() {
			if ev.Type != api.JobEventSucceeded {
				t.Fatalf("terminal event = %+v", ev)
			}
			break
		}
	}
}

// TestJobValidation pins the request-shape guards: disabled routes
// answer 501, malformed submissions 400, unknown ids 404, and the
// robustness trial cap applies to jobs exactly as it does to the
// synchronous route.
func TestJobValidation(t *testing.T) {
	bare := New(Config{Engine: &stubEngine{}, Logger: discardLogger()})
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	resp, _ := postJSON(t, tsBare.URL+"/v1/jobs", `{"kind":"robustness"}`)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("jobs on a bare server: %d, want 501", resp.StatusCode)
	}

	srv := New(Config{
		Engine:    &stubEngine{},
		Logger:    discardLogger(),
		MaxTrials: 16,
		Jobs:      &JobsConfig{},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})

	for name, body := range map[string]string{
		"unknown kind":    `{"kind":"divination"}`,
		"missing spec":    `{"kind":"robustness"}`,
		"trials over cap": `{"kind":"robustness","robustness":{"network":"tiny","design":"OO","sigmas":[0],"trials":17}}`,
		"empty networks":  `{"kind":"sweep","sweep":{"networks":[],"lanes":[2],"bits":[4]}}`,
		"unknown field":   `{"kind":"robustness","robustness":{"network":"tiny","design":"OO","sigmas":[0],"trials":4,"cheat":true}}`,
	} {
		resp, got := postJSON(t, ts.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, got)
		}
	}

	if resp, _ := getBody(t, ts.URL+"/v1/jobs/no-such-job"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: %d, want 404", resp.StatusCode)
	}
}

// TestSweepJobPartialCells: the sweep task records every priced grid
// cell and reports them sorted (network, then index) with rows equal
// to the final SweepResponse — the /v1/jobs/{id} partial for sweeps.
func TestSweepJobPartialCells(t *testing.T) {
	srv := New(Config{
		Engine: &stubEngine{},
		Logger: discardLogger(),
		Jobs:   &JobsConfig{},
	})
	defer srv.Close()

	spec, err := json.Marshal(api.SweepRequest{
		Networks: []string{"LeNet", "AlexNet"},
		Designs:  []string{"OO"},
		Lanes:    []int{2, 4},
		Bits:     []int{4, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	task, err := srv.buildJobTask(api.JobKindSweep, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := task.(*sweepTask)
	if !ok {
		t.Fatalf("sweep task is %T", task)
	}
	res, err := st.Run(context.Background(), func(string, any) {})
	if err != nil {
		t.Fatal(err)
	}
	resp := res.(api.SweepResponse)

	cells, ok := st.Partial().([]api.JobCell)
	if !ok {
		t.Fatalf("Partial() is %T, want []api.JobCell", st.Partial())
	}
	if want := 2 * resp.Points; len(cells) != want {
		t.Fatalf("partial holds %d cells, want %d", len(cells), want)
	}
	for k, c := range cells {
		if k > 0 {
			prev := cells[k-1]
			if prev.Network > c.Network || (prev.Network == c.Network && prev.Index >= c.Index) {
				t.Fatalf("cells unsorted at %d: %s/%d after %s/%d", k, c.Network, c.Index, prev.Network, prev.Index)
			}
		}
		want := resp.Results[c.Network][c.Index]
		if !reflect.DeepEqual(c.Result, want) {
			t.Fatalf("cell %s/%d differs from final row:\ngot  %+v\nwant %+v", c.Network, c.Index, c.Result, want)
		}
	}
}
