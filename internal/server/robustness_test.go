package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pixel"
)

// stubRobust is a controllable RobustnessEvaluator mirroring
// stubEngine's park protocol.
type stubRobust struct {
	calls   atomic.Int64
	entered chan struct{}
	unblock chan struct{}
	ctxErr  chan error
	specs   chan pixel.RobustnessSpec
}

func (s *stubRobust) RobustnessContext(ctx context.Context, spec pixel.RobustnessSpec) (pixel.RobustnessReport, error) {
	s.calls.Add(1)
	if s.specs != nil {
		s.specs <- spec
	}
	if s.entered != nil {
		s.entered <- struct{}{}
	}
	if s.unblock != nil {
		select {
		case <-s.unblock:
		case <-ctx.Done():
			if s.ctxErr != nil {
				s.ctxErr <- ctx.Err()
			}
			return pixel.RobustnessReport{}, ctx.Err()
		}
	}
	points := make([]pixel.YieldPoint, len(spec.Sigmas))
	for i, sg := range spec.Sigmas {
		points[i] = pixel.YieldPoint{Sigma: sg, Yield: 1}
	}
	return pixel.RobustnessReport{
		Network: spec.Network,
		Design:  spec.Design.String(),
		Trials:  spec.Trials,
		Seed:    spec.Seed,
		Points:  points,
	}, nil
}

const robustBody = `{"network":"lenet","design":"OO","sigmas":[0,1,2],"trials":16,"seed":1}`

// TestRobustnessCoalescing is the acceptance check: two concurrent
// identical POST /v1/robustness requests share one engine run.
func TestRobustnessCoalescing(t *testing.T) {
	stub := &stubRobust{
		entered: make(chan struct{}, 2),
		unblock: make(chan struct{}),
	}
	srv := New(Config{Engine: &stubEngine{}, Robust: stub, Logger: discardLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type reply struct {
		status int
		body   string
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, body := postJSON(t, ts.URL+"/v1/robustness", robustBody)
			replies <- reply{resp.StatusCode, body}
		}()
	}

	<-stub.entered // leader is inside the engine
	key := "lenet|OO|[0 1 2]|16|1|0"
	waitFor(t, "follower to join the flight", func() bool { return srv.robustFlights.waiters(key) == 2 })
	close(stub.unblock)

	var first string
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("status = %d, body %s", r.status, r.body)
		}
		if first == "" {
			first = r.body
		} else if r.body != first {
			t.Error("coalesced replies differ")
		}
	}
	if got := stub.calls.Load(); got != 1 {
		t.Errorf("engine runs = %d, want 1 (coalesced)", got)
	}
	if got := srv.metrics.coalesced.Load(); got != 1 {
		t.Errorf("coalesced counter = %d, want 1", got)
	}
}

// TestRobustnessRequestGuards covers the request-size guard and the
// unconfigured-route response.
func TestRobustnessRequestGuards(t *testing.T) {
	srv := New(Config{
		Engine:    &stubEngine{},
		Robust:    &stubRobust{},
		MaxTrials: 64,
		Logger:    discardLogger(),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Trials above -max-trials: 400 without touching the engine.
	resp, body := postJSON(t, ts.URL+"/v1/robustness",
		`{"network":"lenet","design":"OO","sigmas":[0,1],"trials":65,"seed":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-limit trials: status = %d, body %s; want 400", resp.StatusCode, body)
	}
	if !strings.Contains(body, "64-trial limit") {
		t.Errorf("over-limit body %q should name the limit", body)
	}

	// An oversize sigma axis is rejected the same way.
	sigmas := make([]string, maxSigmaPoints+1)
	for i := range sigmas {
		sigmas[i] = "1"
	}
	resp, body = postJSON(t, ts.URL+"/v1/robustness",
		`{"network":"lenet","design":"OO","sigmas":[`+strings.Join(sigmas, ",")+`],"trials":8,"seed":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize sigma axis: status = %d, body %s; want 400", resp.StatusCode, body)
	}

	// Unknown design still parses at the route boundary.
	resp, _ = postJSON(t, ts.URL+"/v1/robustness",
		`{"network":"lenet","design":"XX","sigmas":[0],"trials":8,"seed":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown design: status = %d, want 400", resp.StatusCode)
	}

	// A server constructed without a robustness engine answers 501.
	bare := New(Config{Engine: &stubEngine{}, Logger: discardLogger()})
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	resp, body = postJSON(t, tsBare.URL+"/v1/robustness", robustBody)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unconfigured route: status = %d, body %s; want 501", resp.StatusCode, body)
	}
}

// TestRobustnessRealEngine runs the real Monte-Carlo engine through
// the route on the tiny network and checks the curve plus the route's
// Prometheus series — requests, latency, shed and coalesced counters
// all move.
func TestRobustnessRealEngine(t *testing.T) {
	srv := New(Config{
		Engine: pixel.NewEngine(pixel.EngineOptions{}),
		Robust: RobustnessFunc(pixel.RobustnessContext),
		Logger: discardLogger(),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/robustness",
		`{"network":"tiny","design":"OO","sigmas":[0,2,4],"trials":12,"seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rep pixel.RobustnessReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Network != "tiny" || rep.Design != "OO" || len(rep.Points) != 3 {
		t.Fatalf("report shape %+v", rep)
	}
	if rep.Points[0].Yield != 1 {
		t.Errorf("σ=0 yield %g, want 1", rep.Points[0].Yield)
	}
	for i := 1; i < len(rep.Points); i++ {
		if rep.Points[i].Yield > rep.Points[i-1].Yield {
			t.Errorf("yield curve not monotone: %+v", rep.Points)
		}
	}

	// Identical repeat: the engine recomputes (no result cache on this
	// route), but the response must be bit-identical — the determinism
	// claim over the wire.
	if _, body2 := postJSON(t, ts.URL+"/v1/robustness",
		`{"network":"tiny","design":"OO","sigmas":[0,2,4],"trials":12,"seed":7}`); body2 != body {
		t.Error("identical robustness request returned a different body")
	}

	// Bad-spec and unknown-network sentinels map to 400/404.
	resp, _ = postJSON(t, ts.URL+"/v1/robustness",
		`{"network":"tiny","design":"OO","sigmas":[],"trials":12,"seed":7}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sigma axis: status = %d, want 400 (ErrBadSpec)", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/robustness",
		`{"network":"nope","design":"OO","sigmas":[0],"trials":4,"seed":1}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown network: status = %d, want 404", resp.StatusCode)
	}

	_, metricsBody := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`pixeld_requests_total{route="/v1/robustness",code="200"} 2`,
		`pixeld_requests_total{route="/v1/robustness",code="400"} 1`,
		`pixeld_requests_total{route="/v1/robustness",code="404"} 1`,
		`pixeld_request_duration_seconds_count{route="/v1/robustness"} 4`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRobustnessShedding proves the route sits behind the shared
// admission control: with the only slot held by a robustness run, a
// different robustness request is shed with 429 and the shed counter
// moves.
func TestRobustnessShedding(t *testing.T) {
	stub := &stubRobust{
		entered: make(chan struct{}, 1),
		unblock: make(chan struct{}),
	}
	srv := New(Config{
		Engine:       &stubEngine{},
		Robust:       stub,
		MaxInFlight:  1,
		QueueTimeout: 30 * time.Millisecond,
		Logger:       discardLogger(),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/robustness", robustBody)
		first <- resp.StatusCode
	}()
	<-stub.entered // the slot is held

	// A different spec (no coalescing possible) must be shed.
	resp, _ := postJSON(t, ts.URL+"/v1/robustness",
		`{"network":"lenet","design":"OO","sigmas":[0,1,2],"trials":8,"seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := srv.metrics.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	close(stub.unblock)
	if status := <-first; status != http.StatusOK {
		t.Fatalf("blocked request finished with %d", status)
	}
}

// TestRobustnessProtectionPassthrough proves the protection object
// reaches the engine spec verbatim, and that a protected request never
// coalesces with its unprotected twin — the flight key includes the
// scheme.
func TestRobustnessProtectionPassthrough(t *testing.T) {
	stub := &stubRobust{
		entered: make(chan struct{}, 2),
		unblock: make(chan struct{}),
		specs:   make(chan pixel.RobustnessSpec, 2),
	}
	srv := New(Config{Engine: &stubEngine{}, Robust: stub, Logger: discardLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	protectedBody := `{"network":"lenet","design":"OO","sigmas":[0,1,2],"trials":16,"seed":1,"protection":{"scheme":"tmr"}}`
	statuses := make(chan int, 2)
	for _, body := range []string{robustBody, protectedBody} {
		body := body
		go func() {
			resp, _ := postJSON(t, ts.URL+"/v1/robustness", body)
			statuses <- resp.StatusCode
		}()
	}
	// Both runs enter the engine: different keys, no shared flight.
	<-stub.entered
	<-stub.entered
	close(stub.unblock)
	for i := 0; i < 2; i++ {
		if status := <-statuses; status != http.StatusOK {
			t.Fatalf("status = %d, want 200", status)
		}
	}
	if got := stub.calls.Load(); got != 2 {
		t.Errorf("engine runs = %d, want 2 (protection must split the key)", got)
	}
	if got := srv.metrics.coalesced.Load(); got != 0 {
		t.Errorf("coalesced counter = %d, want 0", got)
	}
	var protected, bare int
	for i := 0; i < 2; i++ {
		spec := <-stub.specs
		if p := spec.Protection; p != nil {
			protected++
			if p.Scheme != "tmr" {
				t.Errorf("spec protection scheme %q, want tmr", p.Scheme)
			}
		} else {
			bare++
		}
	}
	if protected != 1 || bare != 1 {
		t.Errorf("specs seen: %d protected, %d bare; want 1 and 1", protected, bare)
	}
}

// TestRobustnessClientCancelReleasesSlot proves a client hang-up mid
// Monte-Carlo reaches the engine as context cancellation AND releases
// the admission slot: the very next request on a single-slot server
// must be admitted, not shed.
func TestRobustnessClientCancelReleasesSlot(t *testing.T) {
	stub := &stubRobust{
		entered: make(chan struct{}, 2),
		unblock: make(chan struct{}, 1), // fed one token for the recovery request
		ctxErr:  make(chan error, 1),
	}
	srv := New(Config{
		Engine:      &stubEngine{},
		Robust:      stub,
		MaxInFlight: 1,
		Logger:      discardLogger(),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/robustness",
		strings.NewReader(robustBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	clientErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		clientErr <- err
	}()

	<-stub.entered // the sweep holds the only slot
	cancel()       // client hangs up

	select {
	case err := <-stub.ctxErr:
		if err != context.Canceled {
			t.Errorf("engine ctx err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine never saw the cancellation")
	}
	if err := <-clientErr; err == nil {
		t.Error("client request unexpectedly succeeded")
	}
	waitFor(t, "499 recorded", func() bool {
		return srv.metrics.requestCount("/v1/robustness", statusClientClosedRequest) == 1
	})

	// The slot must be free again: a fresh request is admitted and
	// completes once the stub lets it through.
	stub.unblock <- struct{}{}
	resp, body := postJSON(t, ts.URL+"/v1/robustness",
		`{"network":"lenet","design":"OO","sigmas":[0,1],"trials":8,"seed":9}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel status = %d, body %s; want 200 (slot leaked?)", resp.StatusCode, body)
	}
}
