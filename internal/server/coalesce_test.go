package server

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup[int]()
	var calls atomic.Int64
	block := make(chan struct{})
	fn := func(ctx context.Context) (int, error) {
		calls.Add(1)
		<-block
		return 42, nil
	}

	type outcome struct {
		v      int
		shared bool
		err    error
	}
	results := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			v, shared, err := g.Do(context.Background(), "k", fn)
			results <- outcome{v, shared, err}
		}()
	}
	// Only release once both callers are attached to the same flight.
	waitFor(t, "both waiters joined", func() bool { return g.waiters("k") == 2 })
	close(block)

	var sharedCount int
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil || o.v != 42 {
			t.Fatalf("Do = %d, %v; want 42, nil", o.v, o.err)
		}
		if o.shared {
			sharedCount++
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if sharedCount != 1 {
		t.Errorf("shared callers = %d, want exactly 1 (the follower)", sharedCount)
	}
}

func TestFlightGroupDistinctKeysRunIndependently(t *testing.T) {
	g := newFlightGroup[string]()
	var calls atomic.Int64
	fn := func(ctx context.Context) (string, error) {
		calls.Add(1)
		return "v", nil
	}
	if _, shared, err := g.Do(context.Background(), "a", fn); shared || err != nil {
		t.Fatalf("first key: shared=%v err=%v", shared, err)
	}
	if _, shared, err := g.Do(context.Background(), "b", fn); shared || err != nil {
		t.Fatalf("second key: shared=%v err=%v", shared, err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("fn ran %d times, want 2", got)
	}
}

func TestFlightGroupLastWaiterCancelsTheRun(t *testing.T) {
	g := newFlightGroup[int]()
	fnCtxErr := make(chan error, 1)
	fn := func(ctx context.Context) (int, error) {
		<-ctx.Done()
		fnCtxErr <- ctx.Err()
		return 0, ctx.Err()
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	errs := make(chan error, 2)
	go func() {
		_, _, err := g.Do(ctx1, "k", fn)
		errs <- err
	}()
	waitFor(t, "leader in flight", func() bool { return g.waiters("k") == 1 })
	go func() {
		_, _, err := g.Do(ctx2, "k", fn)
		errs <- err
	}()
	waitFor(t, "follower joined", func() bool { return g.waiters("k") == 2 })

	// The leader hanging up must NOT cancel the computation: the
	// follower still wants it.
	cancel1()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller got %v, want context.Canceled", err)
	}
	select {
	case err := <-fnCtxErr:
		t.Fatalf("run cancelled while a waiter remained: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// The last waiter leaving cancels the run.
	cancel2()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("second caller got %v, want context.Canceled", err)
	}
	select {
	case err := <-fnCtxErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run ctx err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run was never cancelled after all waiters left")
	}
}
