package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"pixel"
)

// InferEvaluator is the optional engine surface behind POST /v1/infer:
// batched quantized inference over the demo networks, plus the shape
// hook the handler validates each request against before it joins a
// batch (so one malformed request cannot poison a shared pass).
// PixelInfer (the pixel facade) implements it; tests substitute
// controllable fakes. A server without one answers the route with 501.
type InferEvaluator interface {
	InferContext(ctx context.Context, spec pixel.InferSpec) ([]pixel.InferResult, error)
	NetworkShape(name string) (pixel.InferShape, error)
}

// PixelInfer is the default InferEvaluator, backed by the pixel
// facade's cached per-network models and batched bit-serial engines.
type PixelInfer struct{}

// InferContext implements InferEvaluator.
func (PixelInfer) InferContext(ctx context.Context, spec pixel.InferSpec) ([]pixel.InferResult, error) {
	return pixel.InferContext(ctx, spec)
}

// NetworkShape implements InferEvaluator.
func (PixelInfer) NetworkShape(name string) (pixel.InferShape, error) {
	return pixel.InferNetworkShape(name)
}

// Defaults for the micro-batching knobs (also the pixeld flag
// defaults). The window is sized well under the cached-model pass
// latency it amortizes: waiting 2ms to fill a batch that then runs
// word-parallel beats running each image alone.
const (
	DefaultBatchSize   = 8
	DefaultBatchWindow = 2 * time.Millisecond
)

// inferReply fans one request's slice of a batched pass back to its
// waiting handler.
type inferReply struct {
	results []pixel.InferResult
	batched int // images in the serving batch this request rode in
	err     error
}

// inferJob is one request waiting in a pending batch.
type inferJob struct {
	images [][]int64
	done   chan inferReply // buffered; execute never blocks on it
}

// pendingBatch collects same-network jobs until the batch fills or its
// window timer fires.
type pendingBatch struct {
	network string
	jobs    []*inferJob // arrival order; results fan out in this order
	images  int
	timer   *time.Timer
}

// microBatcher turns concurrent single-request /v1/infer traffic into
// batched engine passes. The first request for a network opens a
// collection window; the batch executes as one engine call when its
// pending image count reaches batchSize or the window elapses,
// whichever comes first, and per-request result slices fan back out in
// arrival order. Each network batches independently (different
// networks cannot share a pass).
type microBatcher struct {
	run       func(ctx context.Context, network string, images [][]int64) ([]pixel.InferResult, error)
	batchSize int
	window    time.Duration

	mu      sync.Mutex
	pending map[string]*pendingBatch
	closed  bool
	wg      sync.WaitGroup // executing batches, for Close to drain
}

func newMicroBatcher(run func(ctx context.Context, network string, images [][]int64) ([]pixel.InferResult, error), batchSize int, window time.Duration) *microBatcher {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	if window <= 0 {
		window = DefaultBatchWindow
	}
	return &microBatcher{
		run:       run,
		batchSize: batchSize,
		window:    window,
		pending:   map[string]*pendingBatch{},
	}
}

// Submit enqueues one request's images and blocks until its slice of
// the batched results is ready or ctx is cancelled. Cancellation
// removes only this request from its pending batch; jobs already
// handed to an executing pass are unaffected (the caller just stops
// waiting — the buffered reply is dropped).
func (b *microBatcher) Submit(ctx context.Context, network string, images [][]int64) ([]pixel.InferResult, int, error) {
	job := &inferJob{images: images, done: make(chan inferReply, 1)}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, 0, &httpError{
			status: http.StatusServiceUnavailable,
			code:   "shutting_down",
			msg:    "server is draining",
		}
	}
	pb := b.pending[network]
	if pb == nil {
		pb = &pendingBatch{network: network}
		b.pending[network] = pb
		pb.timer = time.AfterFunc(b.window, func() { b.flush(pb) })
	}
	pb.jobs = append(pb.jobs, job)
	pb.images += len(images)
	if pb.images >= b.batchSize {
		b.detachLocked(pb)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.execute(pb)
		}()
	}
	b.mu.Unlock()

	select {
	case rep := <-job.done:
		return rep.results, rep.batched, rep.err
	case <-ctx.Done():
		b.remove(network, job)
		return nil, 0, ctx.Err()
	}
}

// flush is the window-timer path: execute the batch unless a size
// flush or Close already detached it.
func (b *microBatcher) flush(pb *pendingBatch) {
	b.mu.Lock()
	if b.pending[pb.network] != pb {
		b.mu.Unlock()
		return
	}
	b.detachLocked(pb)
	b.wg.Add(1)
	b.mu.Unlock()
	defer b.wg.Done()
	b.execute(pb)
}

// detachLocked removes pb from the pending map (if still there) and
// stops its timer; the caller owns pb exclusively afterwards.
func (b *microBatcher) detachLocked(pb *pendingBatch) {
	if b.pending[pb.network] == pb {
		delete(b.pending, pb.network)
	}
	pb.timer.Stop()
}

// remove drops one cancelled job from its pending batch. If the batch
// is already executing there is nothing to do; if the job was its last
// occupant the batch is detached without running.
func (b *microBatcher) remove(network string, job *inferJob) {
	b.mu.Lock()
	defer b.mu.Unlock()
	pb := b.pending[network]
	if pb == nil {
		return
	}
	for i, j := range pb.jobs {
		if j == job {
			pb.jobs = append(pb.jobs[:i], pb.jobs[i+1:]...)
			pb.images -= len(job.images)
			break
		}
	}
	if len(pb.jobs) == 0 {
		b.detachLocked(pb)
	}
}

// execute runs one detached batch through a single engine pass and
// fans each job's result slice back in arrival order. On error every
// waiting job receives the same failure.
func (b *microBatcher) execute(pb *pendingBatch) {
	if len(pb.jobs) == 0 {
		return
	}
	all := make([][]int64, 0, pb.images)
	for _, j := range pb.jobs {
		all = append(all, j.images...)
	}
	results, err := b.run(context.Background(), pb.network, all)
	off := 0
	for _, j := range pb.jobs {
		n := len(j.images)
		if err != nil {
			j.done <- inferReply{err: err}
		} else {
			j.done <- inferReply{results: results[off : off+n], batched: len(all)}
		}
		off += n
	}
}

// Close stops accepting new work, flushes every pending partial batch,
// and waits for all executing batches to fan out. Jobs still waiting
// get their results; Submit calls after Close fail with 503.
func (b *microBatcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batches := make([]*pendingBatch, 0, len(b.pending))
	for _, pb := range b.pending {
		pb.timer.Stop()
		batches = append(batches, pb)
	}
	b.pending = map[string]*pendingBatch{}
	b.wg.Add(len(batches))
	b.mu.Unlock()

	for _, pb := range batches {
		go func(pb *pendingBatch) {
			defer b.wg.Done()
			b.execute(pb)
		}(pb)
	}
	b.wg.Wait()
}
