// Package server is pixeld's serving layer: an HTTP/JSON facade over
// the sweep engine with the production machinery a shared evaluation
// service needs — request coalescing (identical in-flight requests
// share one engine computation, layered above the engine's result
// LRU), admission control with load shedding (bounded in-flight
// semaphore, queue timeout, 429 + Retry-After), per-request deadlines
// propagated as context, Prometheus-format metrics and structured
// request logging, and graceful drain on shutdown.
//
// Routes:
//
//	POST /v1/evaluate    price one (network, design, lanes, bits) point
//	POST /v1/sweep       evaluate a grid across one or more networks
//	POST /v1/map         schedule a network onto a tile grid
//	POST /v1/robustness  Monte-Carlo variation-to-yield sweep
//	POST /v1/infer       batched quantized inference (micro-batched)
//	POST   /v1/jobs              submit a durable robustness/sweep job
//	GET    /v1/jobs/{id}         job status + partial results
//	GET    /v1/jobs/{id}/events  job progress as server-sent events
//	DELETE /v1/jobs/{id}         cancel or forget a job
//	GET  /v1/networks    the CNN zoo
//	GET  /v1/designs     the MAC designs
//	GET  /healthz        liveness
//	GET  /metrics        Prometheus text exposition
package server

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"pixel"
	"pixel/internal/jobs"
)

// Evaluator is the engine surface the server serves: single-point and
// grid evaluation plus the cache-observability hooks. *pixel.Engine
// implements it; tests substitute controllable fakes.
type Evaluator interface {
	EvaluateContext(ctx context.Context, network string, p pixel.Point) (pixel.Result, error)
	SweepNetworks(ctx context.Context, networks []string, points []pixel.Point, opts *pixel.SweepOptions) (map[string][]pixel.Result, error)
	CostCalls() int64
	CacheHits() int64
}

// RobustnessEvaluator is the optional engine surface behind
// POST /v1/robustness: a Monte-Carlo variation-to-yield sweep.
// pixel.RobustnessContext (wrapped in RobustnessFunc) implements it;
// tests substitute controllable fakes. A server without one answers
// the route with 501.
type RobustnessEvaluator interface {
	RobustnessContext(ctx context.Context, spec pixel.RobustnessSpec) (pixel.RobustnessReport, error)
}

// RobustnessFunc adapts a plain function to RobustnessEvaluator.
type RobustnessFunc func(ctx context.Context, spec pixel.RobustnessSpec) (pixel.RobustnessReport, error)

// RobustnessContext implements RobustnessEvaluator.
func (f RobustnessFunc) RobustnessContext(ctx context.Context, spec pixel.RobustnessSpec) (pixel.RobustnessReport, error) {
	return f(ctx, spec)
}

// Config configures a Server. Engine is required; everything else has
// a serving-sane default.
type Config struct {
	// Engine evaluates requests. Required.
	Engine Evaluator
	// Robust serves POST /v1/robustness; nil disables the route (501).
	Robust RobustnessEvaluator
	// Infer serves POST /v1/infer; nil disables the route (501).
	// PixelInfer{} wires the route to the pixel facade.
	Infer InferEvaluator
	// BatchSize is the image count at which a pending /v1/infer batch
	// executes without waiting out its window; <= 0 means
	// DefaultBatchSize.
	BatchSize int
	// BatchWindow is how long the first request of a /v1/infer batch
	// waits for company before the partial batch executes; <= 0 means
	// DefaultBatchWindow.
	BatchWindow time.Duration
	// MaxTrials bounds the per-request trial count of a robustness
	// sweep; <= 0 means DefaultMaxTrials. Requests above it are
	// rejected with 400 before any work starts.
	MaxTrials int
	// MaxInFlight bounds concurrently evaluating requests (after
	// coalescing — followers of a shared flight do not hold slots);
	// <= 0 means DefaultMaxInFlight.
	MaxInFlight int
	// QueueTimeout is how long an over-limit request waits for a slot
	// before being shed with 429; <= 0 means DefaultQueueTimeout.
	QueueTimeout time.Duration
	// RequestTimeout is the per-request evaluation deadline, enforced
	// via context through the engine; <= 0 means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// Jobs enables the durable asynchronous job routes (/v1/jobs and
	// friends); nil disables them (501). See JobsConfig.
	Jobs *JobsConfig
	// Logger receives structured request logs; nil means slog.Default().
	Logger *slog.Logger
}

// Defaults for the Config knobs (also the pixeld flag defaults).
const (
	DefaultMaxInFlight    = 64
	DefaultQueueTimeout   = 250 * time.Millisecond
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxTrials      = 4096
)

// Server is the HTTP evaluation service. Construct with New; the zero
// value is not usable.
type Server struct {
	engine         Evaluator
	robust         RobustnessEvaluator
	infer          InferEvaluator
	batcher        *microBatcher
	maxTrials      int
	limiter        *limiter
	metrics        *metrics
	logger         *slog.Logger
	requestTimeout time.Duration
	retryAfter     time.Duration

	evalFlights   *flightGroup[pixel.Result]
	sweepFlights  *flightGroup[map[string][]pixel.Result]
	robustFlights *flightGroup[pixel.RobustnessReport]

	registry  *jobs.Registry
	heartbeat time.Duration

	// draining flips once Serve begins its graceful shutdown; /healthz
	// then answers 503 "draining" so routers stop sending new work.
	draining atomic.Bool
}

// New builds a Server from cfg, applying defaults to unset knobs.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	queueTimeout := cfg.QueueTimeout
	if queueTimeout <= 0 {
		queueTimeout = DefaultQueueTimeout
	}
	requestTimeout := cfg.RequestTimeout
	if requestTimeout <= 0 {
		requestTimeout = DefaultRequestTimeout
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	maxTrials := cfg.MaxTrials
	if maxTrials <= 0 {
		maxTrials = DefaultMaxTrials
	}
	s := &Server{
		engine:         cfg.Engine,
		robust:         cfg.Robust,
		infer:          cfg.Infer,
		maxTrials:      maxTrials,
		limiter:        newLimiter(maxInFlight, queueTimeout),
		metrics:        newMetrics(),
		logger:         logger,
		requestTimeout: requestTimeout,
		retryAfter:     queueTimeout,
		evalFlights:    newFlightGroup[pixel.Result](),
		sweepFlights:   newFlightGroup[map[string][]pixel.Result](),
		robustFlights:  newFlightGroup[pixel.RobustnessReport](),
	}
	if s.infer != nil {
		// The batched pass — not each waiting request — holds the
		// admission slot: B coalesced images cost one in-flight unit,
		// which is exactly the point of batching.
		s.batcher = newMicroBatcher(func(ctx context.Context, network string, images [][]int64) ([]pixel.InferResult, error) {
			ctx, cancel := context.WithTimeout(ctx, s.requestTimeout)
			defer cancel()
			if err := s.limiter.acquire(ctx); err != nil {
				return nil, err
			}
			defer s.limiter.release()
			s.metrics.inferBatches.Add(1)
			s.metrics.inferImages.Add(int64(len(images)))
			return s.infer.InferContext(ctx, pixel.InferSpec{Network: network, Images: images})
		}, cfg.BatchSize, cfg.BatchWindow)
	}
	s.setupJobs(cfg.Jobs)
	return s
}

// Handler returns the server's routing tree with logging and metrics
// middleware applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.Handle("GET /v1/networks", s.instrument("/v1/networks", s.handleNetworks))
	mux.Handle("GET /v1/designs", s.instrument("/v1/designs", s.handleDesigns))
	mux.Handle("POST /v1/evaluate", s.instrument("/v1/evaluate", s.handleEvaluate))
	mux.Handle("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.Handle("POST /v1/map", s.instrument("/v1/map", s.handleMap))
	mux.Handle("POST /v1/robustness", s.instrument("/v1/robustness", s.handleRobustness))
	mux.Handle("POST /v1/infer", s.instrument("/v1/infer", s.handleInfer))
	mux.Handle("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJobCreate))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	mux.Handle("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobDelete))
	mux.Handle("GET /v1/jobs/{id}/events", s.instrument("/v1/jobs/{id}/events", s.handleJobEvents))
	return mux
}

// Serve runs the service on ln until ctx is cancelled, then drains
// in-flight requests for at most drain before forcing connections
// closed. It returns once shutdown completes (nil on a clean drain).
func (s *Server) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(s.logger.Handler(), slog.LevelWarn),
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		s.draining.Store(true)
		s.logger.Info("shutting down", "drain", drain)
		dctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		shutdownErr <- hs.Shutdown(dctx)
	}()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	err := <-shutdownErr
	if s.batcher != nil {
		// In-flight /v1/infer handlers finished during the HTTP drain;
		// this flushes any partial batch whose window never filled.
		s.batcher.Close()
	}
	// Running jobs flush a final checkpoint and persist as unfinished,
	// so the next pixeld process re-adopts them.
	s.Close()
	return err
}
