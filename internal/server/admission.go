package server

import (
	"context"
	"errors"
	"time"
)

// errShed is the admission-control rejection: the server is at its
// in-flight bound and the request did not get a slot within the queue
// timeout. Handlers map it to HTTP 429 with a Retry-After hint.
var errShed = errors.New("server: overloaded, request shed")

// limiter is the admission controller: a bounded in-flight semaphore
// with a queue timeout. Rather than letting fan-in stack goroutines
// without bound and collapse tail latency, requests beyond MaxInFlight
// wait at most queueTimeout for a slot and are then shed.
type limiter struct {
	sem          chan struct{}
	queueTimeout time.Duration
}

func newLimiter(maxInFlight int, queueTimeout time.Duration) *limiter {
	return &limiter{
		sem:          make(chan struct{}, maxInFlight),
		queueTimeout: queueTimeout,
	}
}

// acquire takes an in-flight slot, waiting up to the queue timeout.
// It returns errShed on timeout, or ctx's error if the caller gave up
// first. A nil error means the caller owns a slot and must release it.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	default:
	}
	t := time.NewTimer(l.queueTimeout)
	defer t.Stop()
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-t.C:
		return errShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() { <-l.sem }
