package server

import (
	"context"
	"fmt"
	"net/http"

	"pixel"
	"pixel/api"
)

// maxSigmaPoints bounds the σ axis of one robustness request; together
// with the trial cap it bounds the total inference count a single
// caller can queue.
const maxSigmaPoints = 256

func (s *Server) handleRobustness(w http.ResponseWriter, r *http.Request) {
	if s.robust == nil {
		s.writeError(w, &httpError{
			status: http.StatusNotImplemented,
			code:   "not_implemented",
			msg:    "robustness sweeps are not enabled on this server",
		})
		return
	}
	var req api.RobustnessRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	d, err := pixel.ParseDesign(req.Design)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if req.Trials > s.maxTrials {
		s.writeError(w, badRequestf("trials %d exceeds the %d-trial limit", req.Trials, s.maxTrials))
		return
	}
	if len(req.Sigmas) > maxSigmaPoints {
		s.writeError(w, badRequestf("sigma axis of %d points exceeds the %d-point limit", len(req.Sigmas), maxSigmaPoints))
		return
	}
	spec := pixel.RobustnessSpec{
		Network:     req.Network,
		Design:      d,
		Sigmas:      req.Sigmas,
		Trials:      req.Trials,
		Seed:        req.Seed,
		ErrorBudget: req.ErrorBudget,
		Protection:  req.Protection,
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
	defer cancel()

	// The report is a pure function of the spec (Workers excluded), so
	// identical concurrent requests can share one engine run. A
	// protection spec extends the key: differently protected runs must
	// not coalesce.
	key := fmt.Sprintf("%s|%s|%v|%d|%d|%v", req.Network, d, req.Sigmas, req.Trials, req.Seed, req.ErrorBudget)
	if p := req.Protection; p != nil {
		key += fmt.Sprintf("|%s:%d:%d:%d", p.Scheme, p.Copies, p.Retries, p.RecalEvery)
	}
	rep, shared, err := s.robustFlights.Do(ctx, key, func(ctx context.Context) (pixel.RobustnessReport, error) {
		if err := s.limiter.acquire(ctx); err != nil {
			return pixel.RobustnessReport{}, err
		}
		defer s.limiter.release()
		return s.robust.RobustnessContext(ctx, spec)
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
