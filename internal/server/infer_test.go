package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"pixel"
	"pixel/api"
)

// inferServer builds a server with the real pixel facade behind
// /v1/infer.
func inferServer(t *testing.T, batchSize int, window time.Duration) *httptest.Server {
	t.Helper()
	srv := New(Config{
		Engine:      pixel.NewEngine(pixel.EngineOptions{}),
		Infer:       PixelInfer{},
		BatchSize:   batchSize,
		BatchWindow: window,
		Logger:      discardLogger(),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// tinyImages builds deterministic in-range images for the "tiny" demo
// network (8x8x1, 4-bit activations).
func tinyImages(n int) [][]int64 {
	shape, err := pixel.InferNetworkShape("tiny")
	if err != nil {
		panic(err)
	}
	imgs := make([][]int64, n)
	for b := range imgs {
		img := make([]int64, shape.H*shape.W*shape.C)
		for i := range img {
			img[i] = int64((i*7 + b*13) % int(shape.MaxValue+1))
		}
		imgs[b] = img
	}
	return imgs
}

// TestInferEndToEnd drives POST /v1/infer through the api.Client and
// proves a multi-image request returns exactly what the same images
// produce one at a time — batching is a serving optimization, not a
// semantic change.
func TestInferEndToEnd(t *testing.T) {
	ts := inferServer(t, 8, time.Millisecond)
	c := api.NewClient(ts.URL, nil)
	ctx := context.Background()
	imgs := tinyImages(4)

	batch, err := c.Infer(ctx, api.InferRequest{Network: "tiny", Images: imgs})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(batch.Results))
	}
	if batch.Batched < 4 {
		t.Errorf("batched = %d, want >= 4", batch.Batched)
	}
	for i, img := range imgs {
		single, err := c.Infer(ctx, api.InferRequest{Network: "tiny", Images: [][]int64{img}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single.Results[0], batch.Results[i]) {
			t.Errorf("image %d: single = %+v, batched = %+v", i, single.Results[0], batch.Results[i])
		}
	}
}

// TestInferMicroBatchingOverHTTP proves two concurrent single-image
// requests coalesce into one serving batch.
func TestInferMicroBatchingOverHTTP(t *testing.T) {
	ts := inferServer(t, 2, 500*time.Millisecond)
	c := api.NewClient(ts.URL, nil)
	imgs := tinyImages(2)

	var wg sync.WaitGroup
	replies := make([]api.InferResponse, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i], errs[i] = c.Infer(context.Background(),
				api.InferRequest{Network: "tiny", Images: imgs[i : i+1]})
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if replies[i].Batched != 2 {
			t.Errorf("request %d batched = %d, want 2 (coalesced pass)", i, replies[i].Batched)
		}
	}
}

// TestInferValidation proves malformed requests fail with their own
// documented envelope before joining any batch.
func TestInferValidation(t *testing.T) {
	ts := inferServer(t, 8, time.Millisecond)
	c := api.NewClient(ts.URL, nil)
	ctx := context.Background()
	good := tinyImages(1)[0]

	cases := []struct {
		name   string
		req    api.InferRequest
		status int
		code   string
	}{
		{"unknown network", api.InferRequest{Network: "nope", Images: [][]int64{good}}, 404, "unknown_network"},
		{"no images", api.InferRequest{Network: "tiny"}, 400, "bad_request"},
		{"short image", api.InferRequest{Network: "tiny", Images: [][]int64{{1, 2, 3}}}, 400, "bad_request"},
		{"value out of range", api.InferRequest{Network: "tiny", Images: [][]int64{append(append([]int64{}, good...)[:len(good)-1], 1 << 40)}}, 400, "bad_request"},
		{"negative value", api.InferRequest{Network: "tiny", Images: [][]int64{append(append([]int64{}, good...)[:len(good)-1], -1)}}, 400, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Infer(ctx, tc.req)
			var he *api.HTTPError
			if !errors.As(err, &he) || he.Status != tc.status || he.Code != tc.code {
				t.Fatalf("err = %v, want %d/%s", err, tc.status, tc.code)
			}
		})
	}
}
