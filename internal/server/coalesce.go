package server

import (
	"context"
	"sync"
)

// flightGroup coalesces identical in-flight computations: concurrent
// Do calls with the same key share one execution of fn. It is the
// serving-layer complement to the engine's result LRU — the LRU
// absorbs repeats *after* a result lands, the flight group absorbs
// repeats *while* the first computation is still running, so a
// thundering herd of identical requests costs one engine run.
//
// Cancellation is refcounted: the computation runs on a context
// detached from any single caller and is cancelled only when every
// caller waiting on it has gone away. One impatient client cannot
// abort a flight other clients still want; the last one leaving turns
// the lights off.
type flightGroup[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done    chan struct{} // closed when val/err are set
	val     V
	err     error
	waiters int
	cancel  context.CancelFunc
}

func newFlightGroup[V any]() *flightGroup[V] {
	return &flightGroup[V]{calls: map[string]*flightCall[V]{}}
}

// Do runs fn under key, or joins an identical in-flight run. It
// returns fn's result, whether this call shared another's flight, and
// the error. If ctx ends first, Do returns ctx's error immediately;
// the shared computation keeps running for any remaining waiters and
// is cancelled once none remain.
func (g *flightGroup[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, bool, error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return g.wait(ctx, c, true)
	}
	// Detach the run from this caller's cancellation (but keep its
	// values) so followers are not killed by the leader hanging up.
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &flightCall[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		v, err := fn(runCtx)
		g.mu.Lock()
		c.val, c.err = v, err
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		cancel()
	}()
	return g.wait(ctx, c, false)
}

func (g *flightGroup[V]) wait(ctx context.Context, c *flightCall[V], shared bool) (V, bool, error) {
	select {
	case <-c.done:
		return c.val, shared, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		abandoned := c.waiters == 0
		g.mu.Unlock()
		if abandoned {
			c.cancel()
		}
		var zero V
		return zero, shared, ctx.Err()
	}
}

// waiters reports how many callers are attached to key's in-flight
// computation (0 when none is running) — a test hook for proving a
// follower has actually joined a flight before releasing it.
func (g *flightGroup[V]) waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}
