package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"pixel"
	"pixel/api"
)

// TestAPIClientAgainstServer proves the thin api.Client and the server
// agree on the wire contract end to end: typed results on success and
// *api.HTTPError carrying the documented code on failure.
func TestAPIClientAgainstServer(t *testing.T) {
	srv := New(Config{Engine: pixel.NewEngine(pixel.EngineOptions{}), Logger: discardLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := api.NewClient(ts.URL+"/", nil) // trailing slash must be harmless
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	nets, err := c.Networks(ctx)
	if err != nil || len(nets) == 0 {
		t.Fatalf("Networks = %v, %v", nets, err)
	}
	designs, err := c.Designs(ctx)
	if err != nil || len(designs) != 3 {
		t.Fatalf("Designs = %v, %v", designs, err)
	}

	res, err := c.Evaluate(ctx, api.EvaluateRequest{Network: "AlexNet", Design: "OO", Lanes: 4, Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Network != "AlexNet" || res.EnergyJ <= 0 || len(res.PerLayer) == 0 {
		t.Errorf("Evaluate result = %+v, want populated AlexNet result", res)
	}

	sweep, err := c.Sweep(ctx, api.SweepRequest{Networks: []string{"AlexNet"}, Lanes: []int{4}, Bits: []int{8, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sweep.Results["AlexNet"]); sweep.Points == 0 || got != sweep.Points {
		t.Errorf("sweep rows = %d, want %d", got, sweep.Points)
	}

	_, err = c.Evaluate(ctx, api.EvaluateRequest{Network: "NopeNet", Design: "OO", Lanes: 4, Bits: 16})
	var he *api.HTTPError
	if !errors.As(err, &he) || he.Status != 404 || he.Code != "unknown_network" {
		t.Fatalf("Evaluate(NopeNet) err = %v, want 404/unknown_network HTTPError", err)
	}
	_, err = c.Robustness(ctx, api.RobustnessRequest{Network: "lenet", Design: "OO", Sigmas: []float64{0.5}, Trials: 4})
	if !errors.As(err, &he) || he.Status != 501 || he.Code != "not_implemented" {
		t.Fatalf("Robustness err = %v, want 501/not_implemented HTTPError", err)
	}
}
