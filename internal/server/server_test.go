package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pixel"
	"pixel/api"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// stubEngine is a controllable Evaluator: it can block evaluations
// until released (to pin flights open) and records the context error
// it was aborted with.
type stubEngine struct {
	evalCalls  atomic.Int64
	sweepCalls atomic.Int64
	entered    chan struct{} // one receive per engine entry, if non-nil
	unblock    chan struct{} // evaluations park here until closed, if non-nil
	ctxErr     chan error    // receives the ctx error when a run is aborted
}

func (s *stubEngine) park(ctx context.Context) error {
	if s.entered != nil {
		s.entered <- struct{}{}
	}
	if s.unblock == nil {
		return nil
	}
	select {
	case <-s.unblock:
		return nil
	case <-ctx.Done():
		if s.ctxErr != nil {
			s.ctxErr <- ctx.Err()
		}
		return ctx.Err()
	}
}

func (s *stubEngine) EvaluateContext(ctx context.Context, network string, p pixel.Point) (pixel.Result, error) {
	s.evalCalls.Add(1)
	if err := s.park(ctx); err != nil {
		return pixel.Result{}, err
	}
	return pixel.Result{Network: network, Design: p.Design, Lanes: p.Lanes, Bits: p.Bits, EnergyJ: 1}, nil
}

func (s *stubEngine) SweepNetworks(ctx context.Context, networks []string, points []pixel.Point, opts *pixel.SweepOptions) (map[string][]pixel.Result, error) {
	s.sweepCalls.Add(1)
	if err := s.park(ctx); err != nil {
		return nil, err
	}
	out := make(map[string][]pixel.Result, len(networks))
	for _, n := range networks {
		out[n] = make([]pixel.Result, len(points))
	}
	return out, nil
}

func (s *stubEngine) CostCalls() int64 { return s.evalCalls.Load() }
func (s *stubEngine) CacheHits() int64 { return 0 }

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

const evalBody = `{"network":"AlexNet","design":"OO","lanes":4,"bits":16}`

// TestEvaluateCoalescing proves two concurrent identical requests
// perform one engine computation: the follower is held until it has
// demonstrably joined the leader's flight, then both complete off a
// single engine call.
func TestEvaluateCoalescing(t *testing.T) {
	stub := &stubEngine{
		entered: make(chan struct{}, 2),
		unblock: make(chan struct{}),
	}
	srv := New(Config{Engine: stub, Logger: discardLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type reply struct {
		status int
		body   string
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, body := postJSON(t, ts.URL+"/v1/evaluate", evalBody)
			replies <- reply{resp.StatusCode, body}
		}()
	}

	<-stub.entered // leader is inside the engine
	key := "AlexNet|OO/L4/B16"
	waitFor(t, "follower to join the flight", func() bool { return srv.evalFlights.waiters(key) == 2 })
	close(stub.unblock)

	for i := 0; i < 2; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("status = %d, body %s", r.status, r.body)
		}
		if !strings.Contains(r.body, `"network": "AlexNet"`) {
			t.Errorf("unexpected body: %s", r.body)
		}
	}
	if got := stub.evalCalls.Load(); got != 1 {
		t.Errorf("engine computations = %d, want 1 (coalesced)", got)
	}
	if got := srv.metrics.coalesced.Load(); got != 1 {
		t.Errorf("coalesced counter = %d, want 1", got)
	}
}

// TestEvaluateShedding proves requests beyond MaxInFlight are shed
// with 429 + Retry-After within the queue timeout, and that the
// server recovers once the slot frees.
func TestEvaluateShedding(t *testing.T) {
	stub := &stubEngine{
		entered: make(chan struct{}, 1),
		unblock: make(chan struct{}),
	}
	srv := New(Config{
		Engine:       stub,
		MaxInFlight:  1,
		QueueTimeout: 30 * time.Millisecond,
		Logger:       discardLogger(),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/evaluate", evalBody)
		first <- resp.StatusCode
	}()
	<-stub.entered // the slot is held

	// A *different* point (no coalescing possible) must be shed.
	resp, body := postJSON(t, ts.URL+"/v1/evaluate",
		`{"network":"AlexNet","design":"OO","lanes":8,"bits":16}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s; want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var envelope struct {
		Error struct {
			Code       string `json:"code"`
			Message    string `json:"message"`
			RetryAfter int    `json:"retry_after"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &envelope); err != nil || envelope.Error.Code != "overloaded" {
		t.Errorf("error body %q (err %v), want code overloaded envelope", body, err)
	}
	if fmt.Sprint(envelope.Error.RetryAfter) != resp.Header.Get("Retry-After") {
		t.Errorf("envelope retry_after %d != Retry-After header %q",
			envelope.Error.RetryAfter, resp.Header.Get("Retry-After"))
	}
	if got := srv.metrics.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	close(stub.unblock)
	if status := <-first; status != http.StatusOK {
		t.Fatalf("blocked request finished with %d", status)
	}
	// The freed slot admits new work.
	resp, body = postJSON(t, ts.URL+"/v1/evaluate",
		`{"network":"AlexNet","design":"OO","lanes":8,"bits":16}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status = %d, body %s", resp.StatusCode, body)
	}
}

// TestSweepClientCancelAbortsEngine proves a cancelled client context
// reaches the engine as context cancellation.
func TestSweepClientCancelAbortsEngine(t *testing.T) {
	stub := &stubEngine{
		entered: make(chan struct{}, 1),
		unblock: make(chan struct{}), // never closed: only ctx can end the run
		ctxErr:  make(chan error, 1),
	}
	srv := New(Config{Engine: stub, Logger: discardLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep",
		strings.NewReader(`{"networks":["AlexNet"],"lanes":[2,4],"bits":[8]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	clientErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		clientErr <- err
	}()

	<-stub.entered // the sweep is running
	cancel()       // client hangs up

	select {
	case err := <-stub.ctxErr:
		if err != context.Canceled {
			t.Errorf("engine ctx err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine never saw the cancellation")
	}
	if err := <-clientErr; err == nil {
		t.Error("client request unexpectedly succeeded")
	}
	waitFor(t, "499 recorded", func() bool {
		return srv.metrics.requestCount("/v1/sweep", statusClientClosedRequest) == 1
	})
}

// TestSentinelErrorMapping drives the real engine through every
// documented error class and asserts the HTTP status each maps to.
func TestSentinelErrorMapping(t *testing.T) {
	srv := New(Config{Engine: pixel.NewEngine(pixel.EngineOptions{}), Logger: discardLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		path   string
		body   string
		status int
		code   string
	}{
		{"unknown network", "/v1/evaluate", `{"network":"NopeNet","design":"OO","lanes":4,"bits":16}`, 404, "unknown_network"},
		{"unknown design", "/v1/evaluate", `{"network":"AlexNet","design":"XX","lanes":4,"bits":16}`, 400, "unknown_design"},
		{"bad precision lanes", "/v1/evaluate", `{"network":"AlexNet","design":"OO","lanes":0,"bits":16}`, 400, "bad_precision"},
		{"bad precision bits", "/v1/evaluate", `{"network":"AlexNet","design":"OO","lanes":4,"bits":1000}`, 400, "bad_precision"},
		{"malformed body", "/v1/evaluate", `{"network":`, 400, "bad_request"},
		{"unknown field", "/v1/evaluate", `{"network":"AlexNet","design":"OO","lane":4,"bits":16}`, 400, "bad_request"},
		{"sweep no networks", "/v1/sweep", `{"networks":[],"lanes":[4],"bits":[8]}`, 400, "bad_request"},
		{"sweep empty axis", "/v1/sweep", `{"networks":["AlexNet"],"lanes":[],"bits":[8]}`, 400, "bad_request"},
		{"sweep unknown network", "/v1/sweep", `{"networks":["NopeNet"],"lanes":[4],"bits":[8]}`, 404, "unknown_network"},
		{"sweep bad point", "/v1/sweep", `{"networks":["AlexNet"],"lanes":[4],"bits":[1000]}`, 400, "bad_precision"},
		{"map bad grid", "/v1/map", `{"network":"LeNet","design":"OO","lanes":16,"bits":8,"rows":4,"cols":16}`, 400, "bad_grid"},
		{"map unknown network", "/v1/map", `{"network":"NopeNet","design":"OO","lanes":4,"bits":8,"rows":4,"cols":4}`, 404, "unknown_network"},
		{"robustness unconfigured", "/v1/robustness", `{"network":"lenet","design":"OO","sigmas":[0.5],"trials":4}`, 501, "not_implemented"},
		{"infer unconfigured", "/v1/infer", `{"network":"tiny","images":[[1]]}`, 501, "not_implemented"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, body %s; want %d", resp.StatusCode, body, tc.status)
			}
			var envelope struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &envelope); err != nil {
				t.Fatalf("non-JSON error body %q: %v", body, err)
			}
			if envelope.Error.Code != tc.code || envelope.Error.Message == "" {
				t.Errorf("error envelope = %+v, want code %q with message", envelope.Error, tc.code)
			}
		})
	}

	// Method mismatches 405 via the mux patterns.
	resp, _ := getBody(t, ts.URL+"/v1/evaluate")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate = %d, want 405", resp.StatusCode)
	}
}

// TestServeRealEngine exercises the full path against the real sweep
// engine: evaluate twice (second is an LRU hit), a sweep, discovery
// routes, and the /metrics counters the acceptance criteria name.
func TestServeRealEngine(t *testing.T) {
	eng := pixel.NewEngine(pixel.EngineOptions{})
	srv := New(Config{Engine: eng, Logger: discardLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Cold evaluate computes; identical repeat is absorbed by the LRU.
	resp, body = postJSON(t, ts.URL+"/v1/evaluate", evalBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d, body %s", resp.StatusCode, body)
	}
	var res struct {
		Network  string             `json:"network"`
		Design   string             `json:"design"`
		EnergyJ  float64            `json:"energy_j"`
		EDP      float64            `json:"edp_js"`
		Energy   map[string]float64 `json:"energy_breakdown_j"`
		PerLayer []struct {
			Name string `json:"name"`
		} `json:"per_layer"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Network != "AlexNet" || res.Design != "OO" || res.EnergyJ <= 0 || res.EDP <= 0 {
		t.Errorf("degenerate result %+v", res)
	}
	if len(res.PerLayer) == 0 || len(res.Energy) == 0 {
		t.Errorf("missing per-layer/breakdown detail: %s", body)
	}
	if _, body2 := postJSON(t, ts.URL+"/v1/evaluate", evalBody); body2 != body {
		t.Error("identical evaluate returned different bodies")
	}
	if got := eng.CostCalls(); got != 1 {
		t.Errorf("cost calls = %d, want 1 (repeat served from LRU)", got)
	}
	if got := eng.CacheHits(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}

	// A sweep over 1 design x 2 lanes x 2 bits adds 4 points, one of
	// which (OO/L4/B16) is already cached.
	resp, body = postJSON(t, ts.URL+"/v1/sweep",
		`{"networks":["AlexNet"],"designs":["OO"],"lanes":[2,4],"bits":[8,16]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d, body %s", resp.StatusCode, body)
	}
	var sweep struct {
		Points  int `json:"points"`
		Results map[string][]struct {
			EDP float64 `json:"edp_js"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Points != 4 || len(sweep.Results["AlexNet"]) != 4 {
		t.Errorf("sweep shape: points=%d results=%d", sweep.Points, len(sweep.Results["AlexNet"]))
	}
	for _, r := range sweep.Results["AlexNet"] {
		if r.EDP <= 0 {
			t.Error("sweep row with non-positive EDP")
		}
	}

	// Discovery.
	if _, body := getBody(t, ts.URL+"/v1/networks"); !strings.Contains(body, "AlexNet") {
		t.Errorf("networks body %s", body)
	}
	if _, body := getBody(t, ts.URL+"/v1/designs"); !strings.Contains(body, "OO") {
		t.Errorf("designs body %s", body)
	}

	// The metrics the acceptance criteria name, all non-zero.
	_, metricsBody := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`pixeld_requests_total{route="/v1/evaluate",code="200"} 2`,
		`pixeld_requests_total{route="/v1/sweep",code="200"} 1`,
		"pixeld_engine_cost_calls_total 4", // 1 cold evaluate + 3 new sweep points
		"pixeld_engine_cache_hits_total 2", // repeated evaluate + cached sweep point
		"pixeld_shed_total 0",
		"pixeld_coalesced_total 0",
		"pixeld_in_flight 1", // the scrape itself
		`pixeld_request_duration_seconds_count{route="/v1/evaluate"} 2`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
}

// TestGracefulShutdown proves Serve drains an in-flight request after
// its context is cancelled instead of killing it.
func TestGracefulShutdown(t *testing.T) {
	stub := &stubEngine{
		entered: make(chan struct{}, 1),
		unblock: make(chan struct{}),
	}
	srv := New(Config{Engine: stub, Logger: discardLogger()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln, 5*time.Second) }()
	base := fmt.Sprintf("http://%s", ln.Addr())

	status := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, base+"/v1/evaluate", evalBody)
		status <- resp.StatusCode
	}()
	<-stub.entered // request is in flight
	cancel()       // SIGTERM equivalent

	// The listener closes promptly; the in-flight request drains.
	close(stub.unblock)
	if got := <-status; got != http.StatusOK {
		t.Errorf("drained request status = %d, want 200", got)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never returned after shutdown")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
	if !srv.draining.Load() {
		t.Error("Serve shut down without flipping the draining flag")
	}
}

// TestHealthzDraining: a draining server answers /healthz with 503 and
// status "draining" — the signal load balancers and the fleet
// coordinator use to stop routing to a worker that is shutting down.
func TestHealthzDraining(t *testing.T) {
	srv := New(Config{Engine: &stubEngine{}, Logger: discardLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := api.NewClient(ts.URL, nil)

	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("Health before drain = %+v, %v; want ok", h, err)
	}

	srv.draining.Store(true)
	h, err = c.Health(context.Background())
	if err != nil || h.Status != "draining" {
		t.Fatalf("Health during drain = %+v, %v; want draining", h, err)
	}
	var he *api.HTTPError
	if err := c.Healthz(context.Background()); !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("Healthz during drain = %v, want 503 HTTPError", err)
	}
}
