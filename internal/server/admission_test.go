package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLimiterShedsAfterQueueTimeout(t *testing.T) {
	l := newLimiter(1, 20*time.Millisecond)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := l.acquire(context.Background())
	if !errors.Is(err, errShed) {
		t.Fatalf("second acquire err = %v, want errShed", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("shed after %v, before the queue timeout", elapsed)
	}
	l.release()
	if err := l.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLimiterQueuedRequestGetsFreedSlot(t *testing.T) {
	l := newLimiter(1, time.Second)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		l.release()
	}()
	if err := l.acquire(context.Background()); err != nil {
		t.Fatalf("queued acquire err = %v, want slot from release", err)
	}
}

func TestLimiterRespectsCallerContext(t *testing.T) {
	l := newLimiter(1, time.Minute)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := l.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire err = %v, want context.Canceled", err)
	}
}
