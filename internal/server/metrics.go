package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// durationBuckets are the latency histogram bounds [s]: the cached
// engine path is ~55µs, a cold single evaluate a few hundred µs, and a
// large multi-network sweep can run into seconds.
var durationBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics is the server's metric registry, exported on /metrics in
// Prometheus text exposition format. Everything is either an atomic or
// guarded by mu; scrapes see a consistent-enough snapshot (Prometheus
// semantics do not require cross-series atomicity).
type metrics struct {
	inFlight     atomic.Int64 // HTTP requests currently being served
	shed         atomic.Int64 // requests rejected by admission control
	coalesced    atomic.Int64 // requests that shared another's flight
	inferBatches atomic.Int64 // batched /v1/infer engine passes
	inferImages  atomic.Int64 // images served across those passes
	jobsCreated  atomic.Int64 // durable jobs admitted via POST /v1/jobs
	jobsResumed  atomic.Int64 // jobs re-adopted from checkpoints at startup

	mu        sync.Mutex
	requests  map[routeCode]int64       // completed requests by route+status
	durations map[string]*histogram     // request latency by route
}

type routeCode struct {
	route string
	code  int
}

type histogram struct {
	counts []int64 // one per bucket, cumulative at render time only
	sum    float64
	count  int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  map[routeCode]int64{},
		durations: map[string]*histogram{},
	}
}

// observe records one completed request.
func (m *metrics) observe(route string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeCode{route, code}]++
	h, ok := m.durations[route]
	if !ok {
		h = &histogram{counts: make([]int64, len(durationBuckets))}
		m.durations[route] = h
	}
	for i, b := range durationBuckets {
		if seconds <= b {
			h.counts[i]++
			break
		}
	}
	h.sum += seconds
	h.count++
}

// requestCount returns the completed-request count for a route+status —
// the test hook behind the acceptance assertions.
func (m *metrics) requestCount(route string, code int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[routeCode{route, code}]
}

// engineStats is the slice of the engine the scrape reads: the
// cost-call and LRU-hit hooks.
type engineStats interface {
	CostCalls() int64
	CacheHits() int64
}

// write renders the registry in Prometheus text format. Series are
// emitted in sorted label order so scrapes are diffable.
func (m *metrics) write(w io.Writer, eng engineStats) {
	fmt.Fprintln(w, "# HELP pixeld_in_flight HTTP requests currently being served.")
	fmt.Fprintln(w, "# TYPE pixeld_in_flight gauge")
	fmt.Fprintf(w, "pixeld_in_flight %d\n", m.inFlight.Load())

	fmt.Fprintln(w, "# HELP pixeld_shed_total Requests rejected by admission control (HTTP 429).")
	fmt.Fprintln(w, "# TYPE pixeld_shed_total counter")
	fmt.Fprintf(w, "pixeld_shed_total %d\n", m.shed.Load())

	fmt.Fprintln(w, "# HELP pixeld_coalesced_total Requests that shared an identical in-flight computation.")
	fmt.Fprintln(w, "# TYPE pixeld_coalesced_total counter")
	fmt.Fprintf(w, "pixeld_coalesced_total %d\n", m.coalesced.Load())

	fmt.Fprintln(w, "# HELP pixeld_infer_batches_total Batched /v1/infer engine passes.")
	fmt.Fprintln(w, "# TYPE pixeld_infer_batches_total counter")
	fmt.Fprintf(w, "pixeld_infer_batches_total %d\n", m.inferBatches.Load())

	fmt.Fprintln(w, "# HELP pixeld_infer_images_total Images served across batched /v1/infer passes.")
	fmt.Fprintln(w, "# TYPE pixeld_infer_images_total counter")
	fmt.Fprintf(w, "pixeld_infer_images_total %d\n", m.inferImages.Load())

	fmt.Fprintln(w, "# HELP pixeld_jobs_created_total Durable jobs admitted via POST /v1/jobs.")
	fmt.Fprintln(w, "# TYPE pixeld_jobs_created_total counter")
	fmt.Fprintf(w, "pixeld_jobs_created_total %d\n", m.jobsCreated.Load())

	fmt.Fprintln(w, "# HELP pixeld_jobs_resumed_total Jobs re-adopted from checkpoints at startup.")
	fmt.Fprintln(w, "# TYPE pixeld_jobs_resumed_total counter")
	fmt.Fprintf(w, "pixeld_jobs_resumed_total %d\n", m.jobsResumed.Load())

	if eng != nil {
		fmt.Fprintln(w, "# HELP pixeld_engine_cost_calls_total Evaluations actually priced by the engine (result-LRU misses).")
		fmt.Fprintln(w, "# TYPE pixeld_engine_cost_calls_total counter")
		fmt.Fprintf(w, "pixeld_engine_cost_calls_total %d\n", eng.CostCalls())

		fmt.Fprintln(w, "# HELP pixeld_engine_cache_hits_total Evaluations absorbed by the engine result LRU.")
		fmt.Fprintln(w, "# TYPE pixeld_engine_cache_hits_total counter")
		fmt.Fprintf(w, "pixeld_engine_cache_hits_total %d\n", eng.CacheHits())
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP pixeld_requests_total Completed HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE pixeld_requests_total counter")
	keys := make([]routeCode, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "pixeld_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP pixeld_request_duration_seconds HTTP request latency by route.")
	fmt.Fprintln(w, "# TYPE pixeld_request_duration_seconds histogram")
	routes := make([]string, 0, len(m.durations))
	for r := range m.durations {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		h := m.durations[r]
		var cum int64
		for i, b := range durationBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "pixeld_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				r, strconv.FormatFloat(b, 'g', -1, 64), cum)
		}
		fmt.Fprintf(w, "pixeld_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, h.count)
		fmt.Fprintf(w, "pixeld_request_duration_seconds_sum{route=%q} %g\n", r, h.sum)
		fmt.Fprintf(w, "pixeld_request_duration_seconds_count{route=%q} %d\n", r, h.count)
	}
}
