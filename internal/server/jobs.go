package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"pixel"
	"pixel/api"
	"pixel/internal/jobs"
)

// JobsConfig enables the durable asynchronous job routes:
//
//	POST   /v1/jobs              submit a robustness or sweep job
//	GET    /v1/jobs/{id}         status + partial results
//	GET    /v1/jobs/{id}/events  server-sent event stream
//	DELETE /v1/jobs/{id}         cancel / forget
//
// Jobs checkpoint through Manager (when set) so a restarted server
// re-adopts unfinished work and resumes it bit-exactly; see docs/JOBS.md.
type JobsConfig struct {
	// Manager persists job records and checkpoints; nil keeps jobs in
	// memory only (no restart recovery).
	Manager *jobs.Manager
	// MaxJobs bounds tracked jobs; <= 0 means jobs.DefaultMaxJobs.
	MaxJobs int
	// MaxRunning bounds concurrently executing jobs; <= 0 means
	// jobs.DefaultMaxRunning. Excess jobs queue.
	MaxRunning int
	// TTL retains finished jobs for status queries; <= 0 means
	// jobs.DefaultTTL.
	TTL time.Duration
	// SaveEvery is the periodic checkpoint cadence; <= 0 means
	// jobs.DefaultSaveEvery.
	SaveEvery time.Duration
	// Heartbeat is the SSE keep-alive comment cadence; <= 0 means
	// DefaultJobHeartbeat.
	Heartbeat time.Duration
	// Factory overrides the built-in (robustness, sweep) task factory —
	// a test seam. nil means the pixel-facade factory.
	Factory jobs.Factory
}

// DefaultJobHeartbeat is the SSE keep-alive cadence when
// JobsConfig.Heartbeat is unset.
const DefaultJobHeartbeat = 15 * time.Second

// setupJobs builds the registry from cfg and recovers persisted jobs.
func (s *Server) setupJobs(cfg *JobsConfig) {
	if cfg == nil {
		return
	}
	factory := cfg.Factory
	if factory == nil {
		factory = s.buildJobTask
	}
	s.heartbeat = cfg.Heartbeat
	if s.heartbeat <= 0 {
		s.heartbeat = DefaultJobHeartbeat
	}
	s.registry = jobs.NewRegistry(jobs.RegistryOptions{
		Factory:    factory,
		Manager:    cfg.Manager,
		MaxJobs:    cfg.MaxJobs,
		MaxRunning: cfg.MaxRunning,
		TTL:        cfg.TTL,
		SaveEvery:  cfg.SaveEvery,
		Logger:     s.logger,
	})
	resumed, err := s.registry.Recover()
	if err != nil {
		s.logger.Warn("job recovery failed", "err", err)
	}
	if resumed > 0 {
		s.logger.Info("re-adopted unfinished jobs", "resumed", resumed)
		s.metrics.jobsResumed.Add(int64(resumed))
	}
}

// Close releases the server's background machinery (the job registry;
// running jobs flush a final checkpoint and persist as unfinished).
// Serve calls it after drain; call it directly when using Handler with
// your own http.Server.
func (s *Server) Close() {
	if s.registry != nil {
		s.registry.Close()
	}
}

// strictUnmarshal is decodeJSON's body-less twin for job specs: unknown
// fields fail loudly at submission, not at some later re-adoption.
func strictUnmarshal(spec json.RawMessage, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(spec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequestf("bad job spec: %v", err)
	}
	return nil
}

// buildJobTask is the built-in jobs.Factory: it validates the spec with
// the same limits as the synchronous routes (a job must not be a way
// around them) and wraps the pixel facade's resumable jobs.
func (s *Server) buildJobTask(kind string, spec json.RawMessage) (jobs.Task, error) {
	switch kind {
	case api.JobKindRobustness:
		var req api.RobustnessRequest
		if err := strictUnmarshal(spec, &req); err != nil {
			return nil, err
		}
		d, err := pixel.ParseDesign(req.Design)
		if err != nil {
			return nil, err
		}
		if req.Trials > s.maxTrials {
			return nil, badRequestf("trials %d exceeds the %d-trial limit", req.Trials, s.maxTrials)
		}
		if len(req.Sigmas) > maxSigmaPoints {
			return nil, badRequestf("sigma axis of %d points exceeds the %d-point limit", len(req.Sigmas), maxSigmaPoints)
		}
		job, err := pixel.NewRobustnessJob(pixel.RobustnessSpec{
			Network:     req.Network,
			Design:      d,
			Sigmas:      req.Sigmas,
			Trials:      req.Trials,
			Seed:        req.Seed,
			ErrorBudget: req.ErrorBudget,
			Protection:  req.Protection,
		})
		if err != nil {
			return nil, err
		}
		return &robustnessTask{job: job, points: map[int]api.JobPoint{}}, nil

	case api.JobKindSweep:
		var req api.SweepRequest
		if err := strictUnmarshal(spec, &req); err != nil {
			return nil, err
		}
		if len(req.Networks) == 0 {
			return nil, badRequestf("networks must be non-empty")
		}
		if len(req.Lanes) == 0 || len(req.Bits) == 0 {
			return nil, badRequestf("lanes and bits axes must be non-empty")
		}
		designs := pixel.Designs()
		if len(req.Designs) > 0 {
			designs = designs[:0]
			for _, name := range req.Designs {
				d, err := pixel.ParseDesign(name)
				if err != nil {
					return nil, err
				}
				designs = append(designs, d)
			}
		}
		points := pixel.Grid(designs, req.Lanes, req.Bits)
		if n := len(req.Networks) * len(points); n > maxSweepJobs {
			return nil, badRequestf("sweep of %d jobs exceeds the %d-job limit", n, maxSweepJobs)
		}
		var job *pixel.SweepJob
		var err error
		if eng, ok := s.engine.(*pixel.Engine); ok {
			job, err = eng.NewSweepJob(req.Networks, points)
		} else {
			job, err = pixel.NewSweepJob(req.Networks, points)
		}
		if err != nil {
			return nil, err
		}
		return &sweepTask{job: job, points: len(points), cells: map[sweepCellKey]api.JobCell{}}, nil

	default:
		return nil, badRequestf("unknown job kind %q (have %q, %q)", kind, api.JobKindRobustness, api.JobKindSweep)
	}
}

// robustnessTask adapts a pixel.RobustnessJob to jobs.Task: progress
// events at a bounded stride, one "point" event per completed σ point,
// completed points as the poll-time partial result.
type robustnessTask struct {
	job *pixel.RobustnessJob

	mu     sync.Mutex
	points map[int]api.JobPoint
}

func (t *robustnessTask) Snapshot() ([]byte, error) { return t.job.Snapshot() }
func (t *robustnessTask) Restore(b []byte) error    { return t.job.Restore(b) }
func (t *robustnessTask) Progress() (int, int)      { return t.job.Progress() }

// Partial returns the σ points completed so far, in axis order.
func (t *robustnessTask) Partial() any {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]api.JobPoint, 0, len(t.points))
	for _, p := range t.points {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

func (t *robustnessTask) Run(ctx context.Context, emit func(string, any)) (any, error) {
	_, total := t.job.Progress()
	stride := jobs.ProgressStride(total)
	rep, err := t.job.Run(ctx, pixel.RobustnessHooks{
		OnTrial: func(done, total int) {
			if done%stride == 0 || done == total {
				emit(api.JobEventProgress, api.JobProgress{Done: done, Total: total})
			}
		},
		OnPoint: func(i int, p pixel.YieldPoint, prot *pixel.ProtectedPoint) {
			jp := api.JobPoint{Index: i, Point: p, Protected: prot}
			t.mu.Lock()
			t.points[i] = jp
			t.mu.Unlock()
			emit(api.JobEventPoint, jp)
		},
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// sweepTask adapts a pixel.SweepJob to jobs.Task: progress events at a
// bounded stride, priced grid cells as the poll-time partial result.
// Cells deliberately have no SSE event — a sweep can have tens of
// thousands, which would swamp the replayable event log.
type sweepTask struct {
	job    *pixel.SweepJob
	points int

	mu    sync.Mutex
	cells map[sweepCellKey]api.JobCell
}

type sweepCellKey struct {
	network string
	index   int
}

func (t *sweepTask) Snapshot() ([]byte, error) { return t.job.Snapshot() }
func (t *sweepTask) Restore(b []byte) error    { return t.job.Restore(b) }
func (t *sweepTask) Progress() (int, int)      { return t.job.Progress() }

// Partial returns the grid cells priced so far, sorted by network then
// index.
func (t *sweepTask) Partial() any {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]api.JobCell, 0, len(t.cells))
	for _, c := range t.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Network != out[j].Network {
			return out[i].Network < out[j].Network
		}
		return out[i].Index < out[j].Index
	})
	return out
}

func (t *sweepTask) Run(ctx context.Context, emit func(string, any)) (any, error) {
	_, total := t.job.Progress()
	stride := jobs.ProgressStride(total)
	byNet, err := t.job.Run(ctx, &pixel.SweepOptions{
		Progress: func(done, total int) {
			if done%stride == 0 || done == total {
				emit(api.JobEventProgress, api.JobProgress{Done: done, Total: total})
			}
		},
		Cell: func(network string, index int, r pixel.Result) {
			c := api.JobCell{Network: network, Index: index, Result: api.FromResult(r, false)}
			t.mu.Lock()
			t.cells[sweepCellKey{network, index}] = c
			t.mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	resp := api.SweepResponse{Points: t.points, Results: make(map[string][]api.Result, len(byNet))}
	for name, results := range byNet {
		rows := make([]api.Result, len(results))
		for i, res := range results {
			rows[i] = api.FromResult(res, false)
		}
		resp.Results[name] = rows
	}
	return resp, nil
}

// jobsDisabled is the 501 every job route answers when the registry is
// not configured.
func (s *Server) jobsDisabled(w http.ResponseWriter) bool {
	if s.registry != nil {
		return false
	}
	s.writeError(w, &httpError{
		status: http.StatusNotImplemented,
		code:   "not_implemented",
		msg:    "durable jobs are not enabled on this server",
	})
	return true
}

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	if s.jobsDisabled(w) {
		return
	}
	var req api.JobRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	var spec any
	switch req.Kind {
	case api.JobKindRobustness:
		if req.Robustness == nil {
			s.writeError(w, badRequestf("kind %q requires a robustness spec", req.Kind))
			return
		}
		spec = req.Robustness
	case api.JobKindSweep:
		if req.Sweep == nil {
			s.writeError(w, badRequestf("kind %q requires a sweep spec", req.Kind))
			return
		}
		spec = req.Sweep
	default:
		s.writeError(w, badRequestf("unknown job kind %q (have %q, %q)", req.Kind, api.JobKindRobustness, api.JobKindSweep))
		return
	}
	buf, err := json.Marshal(spec)
	if err != nil {
		s.writeError(w, fmt.Errorf("encode job spec: %w", err))
		return
	}
	j, err := s.registry.Create(req.Kind, buf)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.metrics.jobsCreated.Add(1)
	st := s.registry.Snapshot(j)
	writeJSON(w, http.StatusAccepted, api.JobHandle{ID: j.ID, Kind: j.Kind, State: string(st.State)})
}

// jobByPath resolves {id}; a miss writes the 404 and returns nil.
func (s *Server) jobByPath(w http.ResponseWriter, r *http.Request) *jobs.Job {
	id := r.PathValue("id")
	j, ok := s.registry.Get(id)
	if !ok {
		s.writeError(w, &httpError{status: http.StatusNotFound, code: "not_found", msg: fmt.Sprintf("no job %q", id)})
		return nil
	}
	return j
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if s.jobsDisabled(w) {
		return
	}
	j := s.jobByPath(w, r)
	if j == nil {
		return
	}
	st := s.registry.Snapshot(j)
	resp := api.JobStatusResponse{
		ID:          st.ID,
		Kind:        st.Kind,
		State:       string(st.State),
		Done:        st.Done,
		Total:       st.Total,
		CreatedUnix: st.CreatedUnix,
		Adopted:     st.Adopted,
		Error:       st.Error,
		Result:      json.RawMessage(st.Result),
	}
	if st.Partial != nil {
		if buf, err := json.Marshal(st.Partial); err == nil {
			resp.Partial = buf
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	if s.jobsDisabled(w) {
		return
	}
	id := r.PathValue("id")
	if err := s.registry.Delete(id); err != nil {
		s.writeError(w, &httpError{status: http.StatusNotFound, code: "not_found", msg: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleJobEvents streams the job's event log as server-sent events
// via jobs.StreamEvents (shared with the fleet coordinator): replay
// from Last-Event-ID, comment heartbeats, stream closes after the
// terminal event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if s.jobsDisabled(w) {
		return
	}
	j := s.jobByPath(w, r)
	if j == nil {
		return
	}
	err := s.registry.StreamEvents(w, r, j, s.heartbeat, func(st jobs.JobStatus) any {
		return api.JobProgress{Done: st.Done, Total: st.Total, Error: st.Error}
	})
	if err != nil {
		s.writeError(w, err)
	}
}
