package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"

	"pixel"
	"pixel/api"
	"pixel/internal/jobs"
)

// statusClientClosedRequest is the nginx-convention status recorded
// when the client hung up before the response was ready; nothing
// reaches the wire, but logs and counters need a code.
const statusClientClosedRequest = 499

// maxSweepJobs bounds the (networks x points) size of one sweep
// request; grids beyond it are rejected up front instead of tying a
// worker pool up for minutes on one caller.
const maxSweepJobs = 65536

// httpError carries an explicit status and code for request-shape
// failures (bad JSON, missing fields, unconfigured routes) that have
// no engine sentinel.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, code: "bad_request", msg: fmt.Sprintf(format, args...)}
}

// errorTable is the single sentinel -> (HTTP status, wire code)
// mapping every route renders errors through; first errors.Is match
// wins. Codes are part of the versioned wire contract (api.Error).
var errorTable = []struct {
	is     error
	status int
	code   string
}{
	{errShed, http.StatusTooManyRequests, "overloaded"},
	{jobs.ErrRegistryFull, http.StatusTooManyRequests, "overloaded"},
	{jobs.ErrBadLastEventID, http.StatusBadRequest, "bad_request"},
	{pixel.ErrUnknownNetwork, http.StatusNotFound, "unknown_network"},
	{pixel.ErrUnknownDesign, http.StatusBadRequest, "unknown_design"},
	{pixel.ErrBadPrecision, http.StatusBadRequest, "bad_precision"},
	{pixel.ErrBadGrid, http.StatusBadRequest, "bad_grid"},
	{pixel.ErrBadSpec, http.StatusBadRequest, "bad_spec"},
	{context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline_exceeded"},
	{context.Canceled, statusClientClosedRequest, "client_closed_request"},
}

// classify maps an error to its documented HTTP status and wire code:
// explicit httpErrors first, then the sentinel table, else 500.
func classify(err error) (status int, code string) {
	var he *httpError
	if errors.As(err, &he) {
		return he.status, he.code
	}
	for _, e := range errorTable {
		if errors.Is(err, e.is) {
			return e.status, e.code
		}
	}
	return http.StatusInternalServerError, "internal"
}

// writeError renders err as the uniform api.ErrorEnvelope every route
// shares. Shed requests get a Retry-After hint (header and envelope
// field) sized to the queue timeout and count toward the shed metric.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	detail := api.Error{Code: code, Message: err.Error()}
	if status == http.StatusTooManyRequests {
		s.metrics.shed.Add(1)
		detail.RetryAfterS = int(math.Ceil(math.Max(s.retryAfter.Seconds(), 1)))
		w.Header().Set("Retry-After", fmt.Sprint(detail.RetryAfterS))
	}
	writeJSON(w, status, api.ErrorEnvelope{Error: detail})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

// decodeJSON parses a bounded request body strictly: unknown fields
// are rejected so schema typos fail loudly instead of silently
// evaluating defaults.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequestf("bad request body: %v", err)
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// A draining server answers 503 "draining" so load balancers and
	// the fleet coordinator stop routing to it while its in-flight
	// requests finish; the body still carries the status word for
	// probers that want to tell "shutting down" from "gone".
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.HealthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, api.HealthResponse{Status: "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.engine)
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.NetworksResponse{Networks: pixel.Networks()})
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, 3)
	for _, d := range pixel.Designs() {
		names = append(names, d.String())
	}
	writeJSON(w, http.StatusOK, api.DesignsResponse{Designs: names})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req api.EvaluateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	d, err := pixel.ParseDesign(req.Design)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p := pixel.Point{Design: d, Lanes: req.Lanes, Bits: req.Bits}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
	defer cancel()

	key := req.Network + "|" + p.String()
	res, shared, err := s.evalFlights.Do(ctx, key, func(ctx context.Context) (pixel.Result, error) {
		if err := s.limiter.acquire(ctx); err != nil {
			return pixel.Result{}, err
		}
		defer s.limiter.release()
		return s.engine.EvaluateContext(ctx, req.Network, p)
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.FromResult(res, true))
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Networks) == 0 {
		s.writeError(w, badRequestf("networks must be non-empty"))
		return
	}
	if len(req.Lanes) == 0 || len(req.Bits) == 0 {
		s.writeError(w, badRequestf("lanes and bits axes must be non-empty"))
		return
	}
	designs := pixel.Designs()
	if len(req.Designs) > 0 {
		designs = designs[:0]
		for _, name := range req.Designs {
			d, err := pixel.ParseDesign(name)
			if err != nil {
				s.writeError(w, err)
				return
			}
			designs = append(designs, d)
		}
	}
	points := pixel.Grid(designs, req.Lanes, req.Bits)
	if jobs := len(req.Networks) * len(points); jobs > maxSweepJobs {
		s.writeError(w, badRequestf("sweep of %d jobs exceeds the %d-job limit", jobs, maxSweepJobs))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
	defer cancel()

	key := fmt.Sprintf("%q|%v|%v|%v", req.Networks, designs, req.Lanes, req.Bits)
	networks := req.Networks
	byNet, shared, err := s.sweepFlights.Do(ctx, key, func(ctx context.Context) (map[string][]pixel.Result, error) {
		if err := s.limiter.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.limiter.release()
		return s.engine.SweepNetworks(ctx, networks, points, nil)
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := api.SweepResponse{Points: len(points), Results: make(map[string][]api.Result, len(byNet))}
	for name, results := range byNet {
		rows := make([]api.Result, len(results))
		for i, res := range results {
			rows[i] = api.FromResult(res, false)
		}
		resp.Results[name] = rows
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxInferImages bounds the image count of one /v1/infer request;
// callers with more traffic should pipeline requests and let the
// micro-batcher coalesce them.
const maxInferImages = 256

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if s.infer == nil {
		s.writeError(w, &httpError{
			status: http.StatusNotImplemented,
			code:   "not_implemented",
			msg:    "inference serving is not enabled on this server",
		})
		return
	}
	var req api.InferRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Images) == 0 {
		s.writeError(w, badRequestf("images must be non-empty"))
		return
	}
	if len(req.Images) > maxInferImages {
		s.writeError(w, badRequestf("%d images exceeds the %d-image limit", len(req.Images), maxInferImages))
		return
	}
	// Validate shape before joining a batch: a batched pass is shared,
	// so a malformed image must fail its own request here rather than
	// everyone else's downstream.
	network := strings.ToLower(strings.TrimSpace(req.Network))
	shape, err := s.infer.NetworkShape(network)
	if err != nil {
		s.writeError(w, err)
		return
	}
	want := shape.H * shape.W * shape.C
	for i, img := range req.Images {
		if len(img) != want {
			s.writeError(w, badRequestf("image %d has %d values, want %dx%dx%d = %d",
				i, len(img), shape.H, shape.W, shape.C, want))
			return
		}
		for _, v := range img {
			if v < 0 || v > shape.MaxValue {
				s.writeError(w, badRequestf("image %d has value %d outside [0, %d]", i, v, shape.MaxValue))
				return
			}
		}
	}

	results, batched, err := s.batcher.Submit(r.Context(), network, req.Images)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := api.InferResponse{Results: make([]api.InferResult, len(results)), Batched: batched}
	for i, res := range results {
		resp.Results[i] = api.InferResult{Outputs: res.Outputs, ArgMax: res.ArgMax}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	var req api.MapRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	d, err := pixel.ParseDesign(req.Design)
	if err != nil {
		s.writeError(w, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
	defer cancel()
	if err := s.limiter.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.limiter.release()

	sched, err := pixel.MapContext(ctx, pixel.MapSpec{
		Network:         req.Network,
		Point:           pixel.Point{Design: d, Lanes: req.Lanes, Bits: req.Bits},
		Rows:            req.Rows,
		Cols:            req.Cols,
		PhotonicWeights: req.PhotonicWeights,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.MapResponse{
		Network:     sched.Network,
		Rows:        sched.Rows,
		Cols:        sched.Cols,
		SequentialS: sched.SequentialS,
		PipelinedS:  sched.PipelinedS,
		PreloadJ:    sched.PreloadJ,
		Utilization: sched.Utilization,
	})
}
