package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"pixel"
)

// statusClientClosedRequest is the nginx-convention status recorded
// when the client hung up before the response was ready; nothing
// reaches the wire, but logs and counters need a code.
const statusClientClosedRequest = 499

// maxSweepJobs bounds the (networks x points) size of one sweep
// request; grids beyond it are rejected up front instead of tying a
// worker pool up for minutes on one caller.
const maxSweepJobs = 65536

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
}

// httpError carries an explicit status for request-shape failures
// (bad JSON, missing fields) that have no engine sentinel.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// statusFor maps an error to its documented HTTP status: the engine
// sentinels via errors.Is (unknown network 404; unknown design, bad
// precision, bad grid 400), shed requests 429, deadline 504, client
// hang-up 499, anything else 500.
func statusFor(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests
	case errors.Is(err, pixel.ErrUnknownNetwork):
		return http.StatusNotFound
	case errors.Is(err, pixel.ErrUnknownDesign),
		errors.Is(err, pixel.ErrBadPrecision),
		errors.Is(err, pixel.ErrBadGrid),
		errors.Is(err, pixel.ErrBadSpec):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeError renders err as the JSON error envelope. Shed requests get
// a Retry-After hint sized to the queue timeout and count toward the
// shed metric.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests {
		s.metrics.shed.Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(int(math.Ceil(math.Max(s.retryAfter.Seconds(), 1)))))
	}
	writeJSON(w, status, errorBody{Error: errorDetail{Status: status, Message: err.Error()}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

// decodeJSON parses a bounded request body strictly: unknown fields
// are rejected so schema typos fail loudly instead of silently
// evaluating defaults.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequestf("bad request body: %v", err)
	}
	return nil
}

// apiResult is the wire form of pixel.Result, field-compatible with
// the pixelsweep -json output.
type apiResult struct {
	Network  string             `json:"network"`
	Design   string             `json:"design"`
	Lanes    int                `json:"lanes"`
	Bits     int                `json:"bits"`
	EnergyJ  float64            `json:"energy_j"`
	LatencyS float64            `json:"latency_s"`
	EDP      float64            `json:"edp_js"`
	Energy   map[string]float64 `json:"energy_breakdown_j"`
	PerLayer []apiLayer         `json:"per_layer,omitempty"`
}

type apiLayer struct {
	Name     string  `json:"name"`
	EnergyJ  float64 `json:"energy_j"`
	LatencyS float64 `json:"latency_s"`
}

// toAPIResult converts a Result; per-layer rows ride along only on
// single-point responses (a sweep would multiply the payload by the
// layer count for data most clients aggregate anyway).
func toAPIResult(r pixel.Result, perLayer bool) apiResult {
	out := apiResult{
		Network:  r.Network,
		Design:   r.Design.String(),
		Lanes:    r.Lanes,
		Bits:     r.Bits,
		EnergyJ:  r.EnergyJ,
		LatencyS: r.LatencyS,
		EDP:      r.EDP,
		Energy:   r.Breakdown,
	}
	if perLayer {
		out.PerLayer = make([]apiLayer, len(r.PerLayer))
		for i, l := range r.PerLayer {
			out.PerLayer[i] = apiLayer{Name: l.Name, EnergyJ: l.EnergyJ, LatencyS: l.LatencyS}
		}
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.engine)
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"networks": pixel.Networks()})
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, 3)
	for _, d := range pixel.Designs() {
		names = append(names, d.String())
	}
	writeJSON(w, http.StatusOK, map[string][]string{"designs": names})
}

// evaluateRequest is the POST /v1/evaluate body: one design point of
// one network.
type evaluateRequest struct {
	Network string `json:"network"`
	Design  string `json:"design"`
	Lanes   int    `json:"lanes"`
	Bits    int    `json:"bits"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	d, err := pixel.ParseDesign(req.Design)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p := pixel.Point{Design: d, Lanes: req.Lanes, Bits: req.Bits}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
	defer cancel()

	key := req.Network + "|" + p.String()
	res, shared, err := s.evalFlights.Do(ctx, key, func(ctx context.Context) (pixel.Result, error) {
		if err := s.limiter.acquire(ctx); err != nil {
			return pixel.Result{}, err
		}
		defer s.limiter.release()
		return s.engine.EvaluateContext(ctx, req.Network, p)
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toAPIResult(res, true))
}

// sweepRequest is the POST /v1/sweep body: the cross product of
// designs x lanes x bits evaluated for every listed network. An empty
// designs list means all three.
type sweepRequest struct {
	Networks []string `json:"networks"`
	Designs  []string `json:"designs"`
	Lanes    []int    `json:"lanes"`
	Bits     []int    `json:"bits"`
}

type sweepResponse struct {
	Points  int                    `json:"points"`
	Results map[string][]apiResult `json:"results"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Networks) == 0 {
		s.writeError(w, badRequestf("networks must be non-empty"))
		return
	}
	if len(req.Lanes) == 0 || len(req.Bits) == 0 {
		s.writeError(w, badRequestf("lanes and bits axes must be non-empty"))
		return
	}
	designs := pixel.Designs()
	if len(req.Designs) > 0 {
		designs = designs[:0]
		for _, name := range req.Designs {
			d, err := pixel.ParseDesign(name)
			if err != nil {
				s.writeError(w, err)
				return
			}
			designs = append(designs, d)
		}
	}
	points := pixel.Grid(designs, req.Lanes, req.Bits)
	if jobs := len(req.Networks) * len(points); jobs > maxSweepJobs {
		s.writeError(w, badRequestf("sweep of %d jobs exceeds the %d-job limit", jobs, maxSweepJobs))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
	defer cancel()

	key := fmt.Sprintf("%q|%v|%v|%v", req.Networks, designs, req.Lanes, req.Bits)
	networks := req.Networks
	byNet, shared, err := s.sweepFlights.Do(ctx, key, func(ctx context.Context) (map[string][]pixel.Result, error) {
		if err := s.limiter.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.limiter.release()
		return s.engine.SweepNetworks(ctx, networks, points, nil)
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := sweepResponse{Points: len(points), Results: make(map[string][]apiResult, len(byNet))}
	for name, results := range byNet {
		rows := make([]apiResult, len(results))
		for i, res := range results {
			rows[i] = toAPIResult(res, false)
		}
		resp.Results[name] = rows
	}
	writeJSON(w, http.StatusOK, resp)
}

// mapRequest is the POST /v1/map body: schedule a network onto a
// rows x cols tile grid at a design point.
type mapRequest struct {
	Network         string `json:"network"`
	Design          string `json:"design"`
	Lanes           int    `json:"lanes"`
	Bits            int    `json:"bits"`
	Rows            int    `json:"rows"`
	Cols            int    `json:"cols"`
	PhotonicWeights bool   `json:"photonic_weights"`
}

type mapResponse struct {
	Network     string  `json:"network"`
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	SequentialS float64 `json:"sequential_s"`
	PipelinedS  float64 `json:"pipelined_s"`
	PreloadJ    float64 `json:"preload_j"`
	Utilization float64 `json:"utilization"`
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	var req mapRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	d, err := pixel.ParseDesign(req.Design)
	if err != nil {
		s.writeError(w, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
	defer cancel()
	if err := s.limiter.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.limiter.release()

	sched, err := pixel.MapToGrid(req.Network, d, req.Lanes, req.Bits, req.Rows, req.Cols, req.PhotonicWeights)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, mapResponse{
		Network:     sched.Network,
		Rows:        sched.Rows,
		Cols:        sched.Cols,
		SequentialS: sched.SequentialS,
		PipelinedS:  sched.PipelinedS,
		PreloadJ:    sched.PreloadJ,
		Utilization: sched.Utilization,
	})
}
