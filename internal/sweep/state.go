package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"pixel/internal/arch"
)

// ErrSnapshotMismatch reports a snapshot taken over a different job
// list — resuming from it would assign costs to the wrong grid cells,
// so it is refused.
var ErrSnapshotMismatch = errors.New("sweep: snapshot does not match this job list")

// State is the resumable slot store of one sweep run: which jobs have
// been priced and their costs. Every cost is a pure function of its
// (network, point) job, so completed slots plus the job list pin the
// whole run — a resumed sweep returns results bit-identical to an
// uninterrupted one at any worker count.
//
// A State is safe to Snapshot concurrently with the RunState that is
// filling it. Construct with NewState.
type State struct {
	fp    [32]byte
	total int

	mu        sync.Mutex
	done      []bool
	results   []arch.NetworkCost
	completed int
}

// NewState allocates the slot store for one run over jobs.
func NewState(jobs []Job) *State {
	return &State{
		fp:      fingerprintJobs(jobs),
		total:   len(jobs),
		done:    make([]bool, len(jobs)),
		results: make([]arch.NetworkCost, len(jobs)),
	}
}

// fingerprintJobs hashes the ordered job list so a snapshot can refuse
// to restore under a different grid (or the same points reordered —
// slot indices would then point at the wrong cells).
func fingerprintJobs(jobs []Job) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "sweep-v1|%d", len(jobs))
	for _, j := range jobs {
		fmt.Fprintf(h, "|%s|%s/L%d/B%d", j.Network, j.Point.Design, j.Point.Lanes, j.Point.Bits)
	}
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}

// Progress returns completed and total slot counts.
func (st *State) Progress() (done, total int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.completed, st.total
}

// isDone reports whether slot i already holds a cost.
func (st *State) isDone(i int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.done[i]
}

// set records slot i's cost and returns the cumulative count.
func (st *State) set(i int, c arch.NetworkCost) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.done[i] {
		st.done[i] = true
		st.results[i] = c
		st.completed++
	}
	return st.completed
}

// eachDone calls fn for every completed slot, in slot order. The costs
// are copied out under the lock first, so fn runs without holding it.
func (st *State) eachDone(fn func(i int, c arch.NetworkCost)) {
	st.mu.Lock()
	type cell struct {
		i int
		c arch.NetworkCost
	}
	cells := make([]cell, 0, st.completed)
	for i, d := range st.done {
		if d {
			cells = append(cells, cell{i, st.results[i]})
		}
	}
	st.mu.Unlock()
	for _, cl := range cells {
		fn(cl.i, cl.c)
	}
}

// costs returns the filled result slice; callers must only use it once
// every slot is done.
func (st *State) costs() []arch.NetworkCost {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]arch.NetworkCost, len(st.results))
	copy(out, st.results)
	return out
}

// sweepSnapshotV1 is the gob payload of a State snapshot. Only
// completed slots ship costs, so early checkpoints stay small.
type sweepSnapshotV1 struct {
	Fingerprint [32]byte
	Total       int
	DoneSlots   []int
	Costs       []arch.NetworkCost
}

// Snapshot encodes the completed slots. Safe to call while a RunState
// on the same State is in flight — it sees a consistent prefix of the
// completed work.
func (st *State) Snapshot() ([]byte, error) {
	st.mu.Lock()
	snap := sweepSnapshotV1{Fingerprint: st.fp, Total: st.total}
	for i, d := range st.done {
		if d {
			snap.DoneSlots = append(snap.DoneSlots, i)
			snap.Costs = append(snap.Costs, st.results[i])
		}
	}
	st.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("sweep: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore reinstalls a snapshot into a freshly constructed State over
// the same job list. Snapshots from a different job list are refused
// with ErrSnapshotMismatch.
func (st *State) Restore(payload []byte) error {
	var snap sweepSnapshotV1
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return fmt.Errorf("sweep: decode snapshot: %w", err)
	}
	if snap.Fingerprint != st.fp {
		return fmt.Errorf("%w: job-list fingerprint differs", ErrSnapshotMismatch)
	}
	if snap.Total != st.total {
		return fmt.Errorf("%w: %d slots, job list has %d", ErrSnapshotMismatch, snap.Total, st.total)
	}
	if len(snap.DoneSlots) != len(snap.Costs) {
		return fmt.Errorf("%w: %d done slots but %d costs", ErrSnapshotMismatch, len(snap.DoneSlots), len(snap.Costs))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.done = make([]bool, st.total)
	st.results = make([]arch.NetworkCost, st.total)
	st.completed = 0
	for k, i := range snap.DoneSlots {
		if i < 0 || i >= st.total {
			return fmt.Errorf("%w: slot %d out of range", ErrSnapshotMismatch, i)
		}
		if st.done[i] {
			return fmt.Errorf("%w: slot %d recorded twice", ErrSnapshotMismatch, i)
		}
		st.done[i] = true
		st.results[i] = snap.Costs[k]
		st.completed++
	}
	return nil
}
