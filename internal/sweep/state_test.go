package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"pixel/internal/arch"
)

// interruptSweep runs jobs on a fresh engine until about k points have
// been priced, then cancels and snapshots the partial state.
func interruptSweep(t *testing.T, jobs []Job, k, workers int) []byte {
	t.Helper()
	e := New(Options{Workers: workers})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st := NewState(jobs)
	_, err := e.RunState(ctx, jobs, st, RunOptions{
		Progress: func(done, total int) {
			if done >= k {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep: err = %v, want context.Canceled", err)
	}
	done, total := st.Progress()
	if done == 0 || done >= total {
		t.Fatalf("interrupted at %d/%d slots; need a strict non-empty prefix", done, total)
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestSweepResumeBitExact: kill a sweep mid-grid, resume its snapshot
// on a COLD engine (no memoized results to lean on) at a different
// worker count, and the merged output must be byte-identical to an
// uninterrupted run.
func TestSweepResumeBitExact(t *testing.T) {
	jobs := jobsFor("LeNet", grid4x4())

	straight, err := New(Options{Workers: 2}).Run(context.Background(), jobs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(straight)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name                      string
		cutAt                     int
		cutWorkers, resumeWorkers int
	}{
		{"serial", 3, 1, 1},
		{"parallel", 7, 4, 4},
		{"repool", 5, 1, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snap := interruptSweep(t, jobs, tc.cutAt, tc.cutWorkers)
			st := NewState(jobs)
			if err := st.Restore(snap); err != nil {
				t.Fatal(err)
			}
			restored, _ := st.Progress()
			e := New(Options{Workers: tc.resumeWorkers})
			got, err := e.RunState(context.Background(), jobs, st, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			// The restored prefix must not be re-priced.
			if calls := e.CostCalls(); calls != int64(len(jobs)-restored) {
				t.Fatalf("resume priced %d points, want %d (restored %d of %d)",
					calls, len(jobs)-restored, restored, len(jobs))
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotJSON, want) {
				t.Fatalf("resumed sweep differs from straight run:\n%s\nwant\n%s", gotJSON, want)
			}
		})
	}
}

// TestSweepResumeProgressCumulative: a resumed run reports restored
// slots as already done, and the count climbs to the full total.
func TestSweepResumeProgressCumulative(t *testing.T) {
	jobs := jobsFor("LeNet", grid4x4())
	snap := interruptSweep(t, jobs, 4, 2)
	st := NewState(jobs)
	if err := st.Restore(snap); err != nil {
		t.Fatal(err)
	}
	restored, _ := st.Progress()
	var first, last int
	_, err := New(Options{Workers: 1}).RunState(context.Background(), jobs, st, RunOptions{
		Progress: func(done, total int) {
			if first == 0 {
				first = done
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != restored {
		t.Fatalf("first progress report = %d, want restored count %d", first, restored)
	}
	if last != len(jobs) {
		t.Fatalf("final progress report = %d, want %d", last, len(jobs))
	}
}

// TestSweepRestoreRejectsForeignSnapshot: a snapshot refuses a
// different grid, a reordered grid, and torn payloads.
func TestSweepRestoreRejectsForeignSnapshot(t *testing.T) {
	jobs := jobsFor("LeNet", grid4x4())
	snap := interruptSweep(t, jobs, 4, 2)

	if err := NewState(jobs[:len(jobs)-1]).Restore(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("shorter grid: err = %v, want ErrSnapshotMismatch", err)
	}
	reordered := append([]Job(nil), jobs...)
	reordered[0], reordered[1] = reordered[1], reordered[0]
	if err := NewState(reordered).Restore(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("reordered grid: err = %v, want ErrSnapshotMismatch", err)
	}
	otherNet := jobsFor("AlexNet", grid4x4())
	if err := NewState(otherNet).Restore(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("different network: err = %v, want ErrSnapshotMismatch", err)
	}
	if err := NewState(jobs).Restore(snap[:len(snap)/2]); err == nil {
		t.Fatal("truncated snapshot restored without error")
	}
}

// TestRunOnJobHook: every slot fires OnJob exactly once with the cost
// the final slice carries, and a resumed run announces restored slots
// up front in slot order before pricing the remainder.
func TestRunOnJobHook(t *testing.T) {
	jobs := jobsFor("LeNet", grid4x4())

	t.Run("fresh", func(t *testing.T) {
		e := New(Options{Workers: 4})
		seen := make(map[int]arch.NetworkCost)
		costs, err := e.Run(context.Background(), jobs, RunOptions{
			OnJob: func(i int, c arch.NetworkCost) {
				if _, dup := seen[i]; dup {
					t.Errorf("slot %d announced twice", i)
				}
				seen[i] = c
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(jobs) {
			t.Fatalf("OnJob fired for %d slots, want %d", len(seen), len(jobs))
		}
		for i, c := range costs {
			if !reflect.DeepEqual(seen[i], c) {
				t.Fatalf("slot %d: hook cost differs from result slice", i)
			}
		}
	})

	t.Run("resumed", func(t *testing.T) {
		snap := interruptSweep(t, jobs, 5, 2)
		st := NewState(jobs)
		if err := st.Restore(snap); err != nil {
			t.Fatal(err)
		}
		restored, _ := st.Progress()
		var order []int
		seen := make(map[int]bool)
		e := New(Options{Workers: 2})
		if _, err := e.RunState(context.Background(), jobs, st, RunOptions{
			OnJob: func(i int, c arch.NetworkCost) {
				if seen[i] {
					t.Errorf("slot %d announced twice", i)
				}
				seen[i] = true
				order = append(order, i)
			},
		}); err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(jobs) {
			t.Fatalf("OnJob fired for %d slots, want %d", len(seen), len(jobs))
		}
		// The first `restored` announcements are the snapshot's slots in
		// ascending order, before any fresh pricing lands.
		for k := 1; k < restored; k++ {
			if order[k-1] >= order[k] {
				t.Fatalf("restored slots announced out of order: %v (first %d should ascend)", order, restored)
			}
		}
	})
}
