package sweep

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pixel/internal/arch"
	"pixel/internal/cnn"
)

func grid4x4() []Point {
	return Grid(arch.Designs(), []int{2, 4}, []int{4, 8})
}

func jobsFor(network string, points []Point) []Job {
	jobs := make([]Job, len(points))
	for i, p := range points {
		jobs[i] = Job{Network: network, Point: p}
	}
	return jobs
}

// TestRunMatchesSerial locks the engine's output to the serial loop it
// replaced: same order, bit-identical values, whatever the worker
// count.
func TestRunMatchesSerial(t *testing.T) {
	points := grid4x4()
	net := cnn.LeNet()
	want := make([]arch.NetworkCost, len(points))
	for i, p := range points {
		c, err := arch.CostNetwork(net, arch.MustConfig(p.Design, p.Lanes, p.Bits))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = c
	}
	for _, workers := range []int{1, 2, 8} {
		e := New(Options{Workers: workers})
		got, err := e.Run(context.Background(), jobsFor("LeNet", points), RunOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Network != want[i].Network ||
				got[i].Energy != want[i].Energy ||
				got[i].Latency != want[i].Latency {
				t.Errorf("workers=%d point %v: got %+v want %+v",
					workers, points[i], got[i].Energy, want[i].Energy)
			}
		}
	}
}

// TestRunMemoizes proves a warm identical run does zero CostNetwork
// calls, via the counter hook.
func TestRunMemoizes(t *testing.T) {
	e := New(Options{})
	jobs := jobsFor("LeNet", grid4x4())
	if _, err := e.Run(context.Background(), jobs, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	cold := e.CostCalls()
	if cold != int64(len(jobs)) {
		t.Fatalf("cold run cost calls = %d, want %d", cold, len(jobs))
	}
	if _, err := e.Run(context.Background(), jobs, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if warm := e.CostCalls() - cold; warm != 0 {
		t.Errorf("warm run performed %d CostNetwork calls, want 0", warm)
	}
}

// TestRunDedupsWithinOneRun: duplicate jobs in a single run are priced
// at most once each (modulo concurrent duplicates racing; with one
// worker the dedup is exact).
func TestRunDedupsWithinOneRun(t *testing.T) {
	e := New(Options{Workers: 1})
	jobs := append(jobsFor("LeNet", grid4x4()), jobsFor("LeNet", grid4x4())...)
	if _, err := e.Run(context.Background(), jobs, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if calls := e.CostCalls(); calls != int64(len(jobs)/2) {
		t.Errorf("cost calls = %d, want %d (duplicates should hit the cache)", calls, len(jobs)/2)
	}
}

func TestRunCancellation(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Run(ctx, jobsFor("LeNet", grid4x4()), RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: err = %v, want context.Canceled", err)
	}

	// Cancelling mid-run (from the progress callback) must also
	// surface context.Canceled, not a partial result.
	e2 := New(Options{Workers: 1})
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	_, err = e2.Run(ctx2, jobsFor("LeNet", grid4x4()), RunOptions{
		Progress: func(done, total int) {
			if done == 1 {
				cancel2()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
}

func TestRunValidationErrors(t *testing.T) {
	e := New(Options{})
	if _, err := e.Run(context.Background(),
		[]Job{{Network: "NopeNet", Point: Point{Design: arch.EE, Lanes: 4, Bits: 8}}},
		RunOptions{}); err == nil {
		t.Error("unknown network should error")
	}
	if _, err := e.Run(context.Background(),
		[]Job{{Network: "LeNet", Point: Point{Design: arch.EE, Lanes: 0, Bits: 8}}},
		RunOptions{}); err == nil {
		t.Error("invalid lanes should error")
	}
	// Misses are memoized too: the same bad job fails again, cheaply.
	if _, err := e.Network("NopeNet"); err == nil {
		t.Error("memoized miss should still error")
	}
}

func TestProgressReporting(t *testing.T) {
	e := New(Options{})
	var mu sync.Mutex
	var calls []int
	jobs := jobsFor("LeNet", grid4x4())
	_, err := e.Run(context.Background(), jobs, RunOptions{
		Progress: func(done, total int) {
			mu.Lock()
			calls = append(calls, done)
			mu.Unlock()
			if total != len(jobs) {
				t.Errorf("total = %d, want %d", total, len(jobs))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(jobs) {
		t.Fatalf("progress calls = %d, want %d", len(calls), len(jobs))
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("progress out of order: %v", calls)
		}
	}
}

func TestEvaluateNetworkRegistersCustomNetworks(t *testing.T) {
	e := New(Options{})
	custom := cnn.LeNet()
	custom.Name = "CustomNet"
	c, err := e.EvaluateNetwork(context.Background(), custom, Point{Design: arch.OO, Lanes: 4, Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Network != "CustomNet" || c.Latency <= 0 {
		t.Errorf("custom network cost = %+v", c)
	}
	// Now resolvable by name through the engine.
	if _, err := e.Evaluate(context.Background(), Job{Network: "CustomNet", Point: Point{Design: arch.EE, Lanes: 2, Bits: 4}}); err != nil {
		t.Errorf("registered network should resolve: %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	k := func(i int) Job { return Job{Network: "n", Point: Point{Lanes: i}} }
	c.put(k(1), arch.NetworkCost{Latency: 1})
	c.put(k(2), arch.NetworkCost{Latency: 2})
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 should be cached")
	}
	c.put(k(3), arch.NetworkCost{Latency: 3}) // evicts k2 (k1 was refreshed)
	if _, ok := c.get(k(2)); ok {
		t.Error("k2 should have been evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("k1 should survive (recency refreshed)")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Overwriting an existing key must not grow the cache.
	c.put(k(1), arch.NetworkCost{Latency: 10})
	if c.len() != 2 {
		t.Errorf("len after overwrite = %d, want 2", c.len())
	}
	if got, _ := c.get(k(1)); got.Latency != 10 {
		t.Errorf("overwrite lost: %v", got.Latency)
	}
}

func TestPointStringAndValidate(t *testing.T) {
	p := Point{Design: arch.OO, Lanes: 4, Bits: 16}
	if p.String() != "OO/L4/B16" {
		t.Errorf("String() = %q", p.String())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
	if err := (Point{Design: arch.Design(9), Lanes: 4, Bits: 16}).Validate(); err == nil {
		t.Error("unknown design should fail validation")
	}
	if err := (Point{Design: arch.EE, Lanes: 0, Bits: 16}).Validate(); err == nil {
		t.Error("zero lanes should fail validation")
	}
}

func TestGridOrder(t *testing.T) {
	points := Grid([]arch.Design{arch.EE, arch.OO}, []int{2, 4}, []int{8})
	want := []Point{
		{arch.EE, 2, 8}, {arch.EE, 4, 8},
		{arch.OO, 2, 8}, {arch.OO, 4, 8},
	}
	if len(points) != len(want) {
		t.Fatalf("grid = %v", points)
	}
	for i := range want {
		if points[i] != want[i] {
			t.Errorf("grid[%d] = %v, want %v", i, points[i], want[i])
		}
	}
}
