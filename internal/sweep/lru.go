package sweep

import (
	"container/list"
	"sync"

	"pixel/internal/arch"
)

// lruCache is a mutex-guarded bounded LRU of whole evaluation results,
// keyed by Job. Hits refresh recency; inserts beyond capacity evict
// the least recently used entry. A capacity <= 0 disables the cache
// entirely: gets always miss and puts are dropped, instead of the
// degenerate insert-then-immediately-evict churn a zero bound would
// otherwise produce.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[Job]*list.Element
}

type lruEntry struct {
	key  Job
	cost arch.NetworkCost
}

func newLRU(capacity int) *lruCache {
	size := capacity
	if size < 0 {
		size = 0
	}
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[Job]*list.Element, size),
	}
}

func (c *lruCache) get(key Job) (arch.NetworkCost, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return arch.NetworkCost{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).cost, true
}

func (c *lruCache) put(key Job, cost arch.NetworkCost) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).cost = cost
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, cost: cost})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
