package sweep

import (
	"fmt"
	"sync"
	"testing"

	"pixel/internal/arch"
)

func lruKey(i int) Job {
	return Job{Network: fmt.Sprintf("net%d", i), Point: Point{Design: arch.OO, Lanes: 4, Bits: 8}}
}

func lruCost(i int) arch.NetworkCost {
	return arch.NetworkCost{Latency: float64(i)}
}

func TestLRUDisabledCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1, -100} {
		c := newLRU(capacity)
		c.put(lruKey(1), lruCost(1))
		if _, ok := c.get(lruKey(1)); ok {
			t.Errorf("cap %d: get hit on a disabled cache", capacity)
		}
		if n := c.len(); n != 0 {
			t.Errorf("cap %d: len = %d, want 0", capacity, n)
		}
	}
}

func TestLRUCapacityOne(t *testing.T) {
	c := newLRU(1)
	c.put(lruKey(1), lruCost(1))
	if got, ok := c.get(lruKey(1)); !ok || got.Latency != 1 {
		t.Fatalf("get(1) = %v, %v; want hit with latency 1", got.Latency, ok)
	}
	// A second distinct key evicts the first; the cache never exceeds
	// its bound.
	c.put(lruKey(2), lruCost(2))
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}
	if _, ok := c.get(lruKey(1)); ok {
		t.Error("evicted key still resident")
	}
	if got, ok := c.get(lruKey(2)); !ok || got.Latency != 2 {
		t.Errorf("get(2) = %v, %v; want hit with latency 2", got.Latency, ok)
	}
	// Re-putting the resident key updates in place, no eviction.
	c.put(lruKey(2), lruCost(3))
	if got, ok := c.get(lruKey(2)); !ok || got.Latency != 3 {
		t.Errorf("update in place: got %v, %v; want latency 3", got.Latency, ok)
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := newLRU(2)
	c.put(lruKey(1), lruCost(1))
	c.put(lruKey(2), lruCost(2))
	// Touch 1 so 2 becomes the eviction victim.
	if _, ok := c.get(lruKey(1)); !ok {
		t.Fatal("warm key missing")
	}
	c.put(lruKey(3), lruCost(3))
	if _, ok := c.get(lruKey(2)); ok {
		t.Error("least recently used key survived eviction")
	}
	if _, ok := c.get(lruKey(1)); !ok {
		t.Error("recently used key was evicted")
	}
	if _, ok := c.get(lruKey(3)); !ok {
		t.Error("fresh insert missing")
	}
}

// TestLRUConcurrentStress hammers a small cache from many goroutines
// under -race: interleaved gets and puts over a key space larger than
// the capacity, checking the bound holds and hits return the value put
// for that key.
func TestLRUConcurrentStress(t *testing.T) {
	const (
		capacity   = 8
		goroutines = 16
		iters      = 2000
		keySpace   = 32
	)
	c := newLRU(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*31 + i) % keySpace
				if i%3 == 0 {
					c.put(lruKey(k), lruCost(k))
					continue
				}
				if cost, ok := c.get(lruKey(k)); ok && cost.Latency != float64(k) {
					t.Errorf("key %d returned cost %v", k, cost.Latency)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.len(); n > capacity {
		t.Errorf("len = %d exceeds capacity %d", n, capacity)
	}
}
