// Package sweep is the concurrent design-space sweep engine behind the
// public Sweep/SweepContext API and the eval experiment runners. It
// fans (network, design, lanes, bits) evaluation points out across a
// worker pool, deduplicates shared work (per-name cnn.Network
// resolution, per-point arch.Config construction) and memoizes whole
// evaluation results in a bounded LRU, so regenerating the paper's
// grid figures costs one CostNetwork call per distinct point instead
// of one per table cell.
//
// Results come back in input order regardless of worker scheduling, so
// a parallel sweep is bit-identical to the serial loop it replaced.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pixel/internal/arch"
	"pixel/internal/cnn"
)

// Point is one design point of the sweep space: a MAC design, a lane
// (wavelength) count and a bits/lane burst width.
type Point struct {
	Design arch.Design
	Lanes  int
	Bits   int
}

// String renders the point compactly ("OO/L4/B16").
func (p Point) String() string {
	return fmt.Sprintf("%s/L%d/B%d", p.Design, p.Lanes, p.Bits)
}

// Validate reports whether the point names a buildable configuration.
func (p Point) Validate() error {
	_, err := arch.NewConfig(p.Design, p.Lanes, p.Bits)
	return err
}

// Job is one unit of work: price a full inference of the named network
// at the design point.
type Job struct {
	Network string
	Point   Point
}

// Options configures an Engine.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// CacheSize bounds the result LRU (entries); <= 0 means
	// DefaultCacheSize.
	CacheSize int
}

// DefaultCacheSize is the result-LRU capacity when Options.CacheSize
// is unset — large enough to hold every (network x design x lanes x
// bits) point of the paper's figures simultaneously.
const DefaultCacheSize = 4096

// RunOptions tunes one Run call.
type RunOptions struct {
	// Workers overrides the engine's pool size for this run; <= 0
	// keeps the engine default.
	Workers int
	// Progress, when non-nil, is called after each job completes with
	// the completed and total counts. Calls are serialized.
	Progress func(done, total int)
	// OnJob, when non-nil, is called once per job as soon as its cost
	// is known, with the job's slot index. Calls are serialized with
	// each other and with Progress but arrive out of slot order in
	// general; jobs restored from a checkpoint are announced up front,
	// in slot order, before any fresh evaluation. Keep the callback
	// fast — it blocks the pool's completion path.
	OnJob func(i int, c arch.NetworkCost)
}

// Engine evaluates jobs through a worker pool with memoization. The
// zero value is not usable; construct with New. An Engine is safe for
// concurrent use.
type Engine struct {
	workers int

	mu   sync.Mutex
	nets map[string]netEntry
	cfgs map[Point]cfgEntry
	res  *lruCache

	costCalls atomic.Int64
	cacheHits atomic.Int64
}

type netEntry struct {
	net cnn.Network
	err error
}

type cfgEntry struct {
	cfg arch.Config
	err error
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	size := opts.CacheSize
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &Engine{
		workers: w,
		nets:    map[string]netEntry{},
		cfgs:    map[Point]cfgEntry{},
		res:     newLRU(size),
	}
}

// Network resolves a network by name, memoizing both hits and misses.
func (e *Engine) Network(name string) (cnn.Network, error) {
	e.mu.Lock()
	entry, ok := e.nets[name]
	e.mu.Unlock()
	if ok {
		return entry.net, entry.err
	}
	net, err := cnn.ByName(name)
	e.mu.Lock()
	e.nets[name] = netEntry{net, err}
	e.mu.Unlock()
	return net, err
}

// AddNetwork registers a network under its own name, so jobs can refer
// to networks that are not in the built-in zoo.
func (e *Engine) AddNetwork(net cnn.Network) {
	e.mu.Lock()
	e.nets[net.Name] = netEntry{net, nil}
	e.mu.Unlock()
}

// Config builds (or returns the memoized) validated configuration for
// a point.
func (e *Engine) Config(p Point) (arch.Config, error) {
	e.mu.Lock()
	entry, ok := e.cfgs[p]
	e.mu.Unlock()
	if ok {
		return entry.cfg, entry.err
	}
	cfg, err := arch.NewConfig(p.Design, p.Lanes, p.Bits)
	e.mu.Lock()
	e.cfgs[p] = cfgEntry{cfg, err}
	e.mu.Unlock()
	return cfg, err
}

// CostCalls returns how many times the engine has actually invoked
// arch.CostNetwork (cache hits do not count). It is the hook the
// cache tests use to prove a warm sweep does no pricing work.
func (e *Engine) CostCalls() int64 { return e.costCalls.Load() }

// CacheHits returns how many evaluations the result LRU has absorbed —
// the companion hook to CostCalls for serving metrics.
func (e *Engine) CacheHits() int64 { return e.cacheHits.Load() }

// Evaluate prices one job, consulting the result LRU first. The
// returned NetworkCost may be shared with other callers and must be
// treated as read-only.
func (e *Engine) Evaluate(ctx context.Context, job Job) (arch.NetworkCost, error) {
	if err := ctx.Err(); err != nil {
		return arch.NetworkCost{}, err
	}
	if c, ok := e.res.get(job); ok {
		e.cacheHits.Add(1)
		return c, nil
	}
	net, err := e.Network(job.Network)
	if err != nil {
		return arch.NetworkCost{}, err
	}
	cfg, err := e.Config(job.Point)
	if err != nil {
		return arch.NetworkCost{}, err
	}
	e.costCalls.Add(1)
	c, err := arch.CostNetwork(net, cfg)
	if err != nil {
		return arch.NetworkCost{}, err
	}
	e.res.put(job, c)
	return c, nil
}

// EvaluateNetwork is Evaluate for an explicit network value (registered
// under its name for reuse).
func (e *Engine) EvaluateNetwork(ctx context.Context, net cnn.Network, p Point) (arch.NetworkCost, error) {
	e.mu.Lock()
	if _, ok := e.nets[net.Name]; !ok {
		e.nets[net.Name] = netEntry{net, nil}
	}
	e.mu.Unlock()
	return e.Evaluate(ctx, Job{Network: net.Name, Point: p})
}

// Run evaluates every job across the worker pool and returns the costs
// in job order: out[i] is jobs[i]'s cost, whatever the scheduling. The
// jobs are pre-validated serially (memoized, so this is cheap), which
// keeps validation errors deterministic: the first invalid job in
// input order is reported, exactly as the old serial loop did. On
// cancellation Run returns promptly with the context's error.
func (e *Engine) Run(ctx context.Context, jobs []Job, opts RunOptions) ([]arch.NetworkCost, error) {
	return e.RunState(ctx, jobs, NewState(jobs), opts)
}

// RunState is Run over an explicit slot store: jobs already priced in
// st (restored from a checkpoint) are skipped, the rest evaluate
// across the worker pool, and the returned slice merges both — which
// is why an interrupted-then-resumed sweep is bit-identical to an
// uninterrupted one at any worker count. Progress counts restored
// slots as already done. st may be snapshotted concurrently while
// RunState is in flight.
func (e *Engine) RunState(ctx context.Context, jobs []Job, st *State, opts RunOptions) ([]arch.NetworkCost, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if st == nil {
		st = NewState(jobs)
	}
	if st.total != len(jobs) {
		return nil, fmt.Errorf("%w: state has %d slots, run has %d jobs", ErrSnapshotMismatch, st.total, len(jobs))
	}
	for _, j := range jobs {
		if _, err := e.Network(j.Network); err != nil {
			return nil, fmt.Errorf("sweep: point %s %s: %w", j.Network, j.Point, err)
		}
		if _, err := e.Config(j.Point); err != nil {
			return nil, fmt.Errorf("sweep: point %s %s: %w", j.Network, j.Point, err)
		}
	}

	workers := e.workers
	if opts.Workers > 0 {
		workers = opts.Workers
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, len(jobs))
	var next atomic.Int64
	next.Store(-1)
	var progressMu sync.Mutex
	if done, _ := st.Progress(); done > 0 {
		if opts.OnJob != nil {
			st.eachDone(opts.OnJob)
		}
		if opts.Progress != nil {
			opts.Progress(done, len(jobs))
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) {
					return
				}
				if st.isDone(i) {
					continue // restored from a checkpoint
				}
				c, err := e.Evaluate(runCtx, jobs[i])
				if err != nil {
					errs[i] = err
					cancel() // abandon the rest of the grid
					return
				}
				completed := st.set(i, c)
				if opts.Progress != nil || opts.OnJob != nil {
					progressMu.Lock()
					if opts.OnJob != nil {
						opts.OnJob(i, c)
					}
					if opts.Progress != nil {
						opts.Progress(completed, len(jobs))
					}
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Prefer a real evaluation failure over the collateral
	// context.Canceled of jobs that were in flight when it hit.
	var cancelled error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return nil, fmt.Errorf("sweep: point %s %s: %w", jobs[i].Network, jobs[i].Point, err)
	}
	if cancelled != nil {
		return nil, cancelled
	}
	return st.costs(), nil
}

// Grid enumerates the cross product of the axes in the canonical
// deterministic order: design-major, then lanes, then bits.
func Grid(designs []arch.Design, lanesAxis, bitsAxis []int) []Point {
	out := make([]Point, 0, len(designs)*len(lanesAxis)*len(bitsAxis))
	for _, d := range designs {
		for _, lanes := range lanesAxis {
			for _, bits := range bitsAxis {
				out = append(out, Point{Design: d, Lanes: lanes, Bits: bits})
			}
		}
	}
	return out
}
