// Package phy provides physical constants and unit helpers shared by the
// photonic and electrical device models.
//
// All quantities in the simulator are carried in SI base units (seconds,
// joules, watts, meters) as float64. The helpers here exist so that code
// reads in the units the PIXEL paper uses (fJ/bit, ps/mm, dB/cm, GHz)
// while storage stays SI.
package phy

import (
	"fmt"
	"math"
)

// Fundamental constants.
const (
	// C is the speed of light in vacuum [m/s].
	C = 299_792_458.0

	// NSilicon is the refractive index of silicon at 1550 nm used
	// throughout the paper (Section IV-A2).
	NSilicon = 3.48

	// GroupVelocitySi is the propagation speed of light in a silicon
	// waveguide [m/s], C / n_Si.
	GroupVelocitySi = C / NSilicon
)

// Unit multipliers. Multiply a value expressed in the named unit by the
// constant to obtain SI base units.
const (
	// Time.
	Second      = 1.0
	Millisecond = 1e-3
	Microsecond = 1e-6
	Nanosecond  = 1e-9
	Picosecond  = 1e-12
	Femtosecond = 1e-15

	// Energy.
	Joule      = 1.0
	Millijoule = 1e-3
	Microjoule = 1e-6
	Nanojoule  = 1e-9
	Picojoule  = 1e-12
	Femtojoule = 1e-15
	Attojoule  = 1e-18

	// Power.
	Watt      = 1.0
	Milliwatt = 1e-3
	Microwatt = 1e-6
	Nanowatt  = 1e-9

	// Length.
	Meter      = 1.0
	Centimeter = 1e-2
	Millimeter = 1e-3
	Micrometer = 1e-6
	Nanometer  = 1e-9

	// Area.
	SquareMeter      = 1.0
	SquareMillimeter = 1e-6
	SquareMicrometer = 1e-12
	SquareNanometer  = 1e-18

	// Frequency.
	Hertz     = 1.0
	Kilohertz = 1e3
	Megahertz = 1e6
	Gigahertz = 1e9
)

// DB converts a linear power ratio to decibels.
// DB(0.5) ≈ -3.01. The ratio must be positive.
func DB(linear float64) float64 {
	return 10 * math.Log10(linear)
}

// FromDB converts decibels to a linear power ratio.
// FromDB(-3.01) ≈ 0.5.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// DBm converts a power in watts to dBm (decibels referenced to 1 mW).
func DBm(watts float64) float64 {
	return 10 * math.Log10(watts/Milliwatt)
}

// FromDBm converts a power in dBm to watts.
func FromDBm(dbm float64) float64 {
	return Milliwatt * math.Pow(10, dbm/10)
}

// AttenuationLinear returns the linear power transmission of a medium with
// the given attenuation [dB per meter] over the given length [m].
// A loss of 1.3 dB/cm over 1 cm returns FromDB(-1.3) ≈ 0.741.
func AttenuationLinear(dbPerMeter, lengthM float64) float64 {
	return FromDB(-dbPerMeter * lengthM)
}

// PropagationDelay returns the time [s] for light to traverse lengthM
// meters of silicon waveguide (n = NSilicon).
func PropagationDelay(lengthM float64) float64 {
	return lengthM / GroupVelocitySi
}

// PropagationDelayIndex returns the time [s] to traverse lengthM meters of
// a medium with refractive index n.
func PropagationDelayIndex(lengthM, n float64) float64 {
	return lengthM * n / C
}

// BitPeriod returns the duration [s] of one bit slot at the given line
// rate [Hz]. The paper's optical clock is 10 GHz -> 100 ps.
func BitPeriod(rateHz float64) float64 {
	return 1 / rateHz
}

// EnergyAtPower returns the energy [J] consumed by a constant power draw
// [W] over the given duration [s].
func EnergyAtPower(watts, seconds float64) float64 {
	return watts * seconds
}

// FormatTime renders a duration in seconds with an engineering-friendly
// unit (s, ms, us, ns, ps, fs).
func FormatTime(s float64) string {
	return formatEng(s, "s")
}

// FormatEnergy renders an energy in joules with an engineering-friendly
// unit (J, mJ, uJ, nJ, pJ, fJ).
func FormatEnergy(j float64) string {
	return formatEng(j, "J")
}

// FormatPower renders a power in watts with an engineering-friendly unit.
func FormatPower(w float64) string {
	return formatEng(w, "W")
}

// FormatArea renders an area in square meters using mm^2, um^2 or nm^2 as
// appropriate.
func FormatArea(m2 float64) string {
	a := math.Abs(m2)
	switch {
	case a == 0:
		return "0 um^2"
	case a >= 1e-7: // 0.1 mm^2 and up
		return trimFloat(m2/SquareMillimeter) + " mm^2"
	case a >= 1e-14: // 0.01 um^2 and up
		return trimFloat(m2/SquareMicrometer) + " um^2"
	default:
		return trimFloat(m2/SquareNanometer) + " nm^2"
	}
}

var engPrefixes = []struct {
	scale  float64
	prefix string
}{
	{1, ""},
	{1e-3, "m"},
	{1e-6, "u"},
	{1e-9, "n"},
	{1e-12, "p"},
	{1e-15, "f"},
	{1e-18, "a"},
}

func formatEng(v float64, unit string) string {
	if v == 0 {
		return "0 " + unit
	}
	a := math.Abs(v)
	for _, p := range engPrefixes {
		if a >= p.scale {
			return trimFloat(v/p.scale) + " " + p.prefix + unit
		}
	}
	last := engPrefixes[len(engPrefixes)-1]
	return trimFloat(v/last.scale) + " " + last.prefix + unit
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros but keep at least one digit after the point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// GeoMean returns the geometric mean of the values. All values must be
// positive; it returns 0 for an empty slice.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// CeilDiv returns ceil(a/b) for positive integers.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic("phy.CeilDiv: non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Log2Ceil returns ceil(log2(n)) for n >= 1. Log2Ceil(1) == 0.
func Log2Ceil(n int) int {
	if n < 1 {
		panic("phy.Log2Ceil: n must be >= 1")
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
