package phy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDBRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		lin := math.Abs(raw)
		if lin == 0 || math.IsInf(lin, 0) || math.IsNaN(lin) || lin > 1e100 || lin < 1e-100 {
			return true
		}
		return almostEq(FromDB(DB(lin)), lin, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBKnownValues(t *testing.T) {
	if got := DB(10); !almostEq(got, 10, 1e-12) {
		t.Errorf("DB(10) = %v, want 10", got)
	}
	if got := DB(0.5); !almostEq(got, -3.0102999566, 1e-9) {
		t.Errorf("DB(0.5) = %v", got)
	}
	if got := FromDB(3); !almostEq(got, 1.9952623149, 1e-9) {
		t.Errorf("FromDB(3) = %v", got)
	}
}

func TestDBmRoundTrip(t *testing.T) {
	for _, w := range []float64{1e-6, 1e-3, 0.25, 2} {
		if got := FromDBm(DBm(w)); !almostEq(got, w, 1e-12) {
			t.Errorf("FromDBm(DBm(%v)) = %v", w, got)
		}
	}
	if got := DBm(1 * Milliwatt); !almostEq(got, 0, 1e-12) && got != 0 {
		t.Errorf("DBm(1mW) = %v, want 0", got)
	}
}

func TestAttenuationLinear(t *testing.T) {
	// Paper: silicon waveguide loss 1.3 dB/cm.
	dbPerM := 1.3 / Centimeter // 130 dB/m
	got := AttenuationLinear(dbPerM, 1*Centimeter)
	want := FromDB(-1.3)
	if !almostEq(got, want, 1e-12) {
		t.Errorf("1cm @1.3dB/cm: got %v want %v", got, want)
	}
	// Zero length -> no loss.
	if got := AttenuationLinear(dbPerM, 0); got != 1 {
		t.Errorf("zero length attenuation = %v, want 1", got)
	}
	// Attenuation is multiplicative in length.
	a2 := AttenuationLinear(dbPerM, 2*Centimeter)
	if !almostEq(a2, want*want, 1e-12) {
		t.Errorf("2cm attenuation %v != (1cm)^2 %v", a2, want*want)
	}
}

func TestPropagationDelayPaperMRRExample(t *testing.T) {
	// Paper Eq. 7: d = 2*pi*7.5um ~= 47.1um -> t = 0.547 ps.
	d := 2 * math.Pi * 7.5 * Micrometer
	got := PropagationDelay(d)
	if !almostEq(got, 0.547*Picosecond, 0.01) {
		t.Errorf("MRR S-path delay = %v, want ~0.547ps", got)
	}
}

func TestPropagationDelayPaperMZIExample(t *testing.T) {
	// Paper Eq. 10: (8*2mm + 7*6.77mm) * n_Si/c = 0.736 ns.
	d := (8*2 + 7*6.77) * Millimeter
	got := PropagationDelay(d)
	if !almostEq(got, 0.736*Nanosecond, 0.01) {
		t.Errorf("OO 4-bit accumulation delay = %v, want ~0.736ns", got)
	}
}

func TestPropagationDelayIndexMatchesSilicon(t *testing.T) {
	d := 3.3 * Millimeter
	if !almostEq(PropagationDelay(d), PropagationDelayIndex(d, NSilicon), 1e-12) {
		t.Error("PropagationDelay and PropagationDelayIndex(n_Si) disagree")
	}
}

func TestWaveguidePropagationSpeedMatchesPaper(t *testing.T) {
	// Paper: silicon waveguides propagate at 10.45 ps/mm.
	perMM := PropagationDelay(1 * Millimeter)
	if !almostEq(perMM, 10.45*Picosecond, 0.12) {
		t.Errorf("delay per mm = %v, want ~10.45ps (paper uses a slightly higher group index)", perMM)
	}
}

func TestBitPeriod(t *testing.T) {
	if got := BitPeriod(10 * Gigahertz); !almostEq(got, 100*Picosecond, 1e-12) {
		t.Errorf("BitPeriod(10GHz) = %v, want 100ps", got)
	}
}

func TestEnergyAtPower(t *testing.T) {
	if got := EnergyAtPower(2*Milliwatt, 3*Nanosecond); !almostEq(got, 6*Picojoule, 1e-12) {
		t.Errorf("2mW for 3ns = %v, want 6pJ", got)
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{FormatTime(1.5 * Nanosecond), "1.5 ns"},
		{FormatTime(0), "0 s"},
		{FormatEnergy(250 * Femtojoule), "250 fJ"},
		{FormatEnergy(1.024 * Nanojoule), "1.024 nJ"},
		{FormatPower(20 * Milliwatt), "20 mW"},
		{FormatArea(176 * SquareMicrometer), "176 um^2"},
		{FormatArea(2.5 * SquareMillimeter), "2.5 mm^2"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("format: got %q want %q", c.got, c.want)
		}
	}
}

func TestFormatNegativeAndTiny(t *testing.T) {
	if got := FormatEnergy(-3 * Picojoule); got != "-3 pJ" {
		t.Errorf("negative energy format = %q", got)
	}
	if !strings.HasSuffix(FormatEnergy(0.5*Attojoule), "aJ") {
		t.Errorf("sub-attojoule should use aJ, got %q", FormatEnergy(0.5*Attojoule))
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEq(got, 10, 1e-12) {
		t.Errorf("GeoMean(1,100) = %v, want 10", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEq(got, 2, 1e-12) {
		t.Errorf("GeoMean(2,2,2) = %v", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with non-positive value should be NaN")
	}
}

func TestGeoMeanScaleInvariance(t *testing.T) {
	f := func(a, b, c uint16) bool {
		x := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		k := 7.5
		scaled := []float64{k * x[0], k * x[1], k * x[2]}
		return almostEq(GeoMean(scaled), k*GeoMean(x), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3},
		{17, 10, 2}, {-3, 4, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnZeroDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(1,0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLog2CeilProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%4096 + 1
		k := Log2Ceil(n)
		return (1<<k) >= n && (k == 0 || (1<<(k-1)) < n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2CeilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log2Ceil(0) did not panic")
		}
	}()
	Log2Ceil(0)
}
