package optsim

import (
	"fmt"
	"sort"
)

// Circuit is an explicit netlist of photonic elements: nodes with typed
// input/output ports, wired point to point, evaluated in topological
// order. The functional datapaths in package omac compose elements
// directly; Circuit exists for the cases where the topology itself is
// data — programmable photonics, generated layouts, or tests that
// permute structures — and for validating those compositions against
// the direct ones.
type Circuit struct {
	nodes []Node
	// wires maps each (node, input port) to its driving (node, output
	// port).
	wires map[portRef]portRef
	// sources holds externally injected signals per (node, input port).
	sources map[portRef]*Signal
}

// Node is one circuit element.
type Node interface {
	// Name labels the node in errors.
	Name() string
	// Ports returns the input and output port counts.
	Ports() (in, out int)
	// Eval transforms the input signals (one per input port, never
	// nil) into output signals (one per output port), charging the
	// ledger.
	Eval(in []*Signal, led *Ledger) ([]*Signal, error)
}

type portRef struct {
	node int
	port int
}

// NewCircuit returns an empty circuit.
func NewCircuit() *Circuit {
	return &Circuit{
		wires:   make(map[portRef]portRef),
		sources: make(map[portRef]*Signal),
	}
}

// Add inserts a node and returns its id.
func (c *Circuit) Add(n Node) int {
	c.nodes = append(c.nodes, n)
	return len(c.nodes) - 1
}

// checkPort validates a node id and port index.
func (c *Circuit) checkPort(node, port int, wantInput bool) error {
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("optsim: node %d out of range", node)
	}
	in, out := c.nodes[node].Ports()
	limit := out
	kind := "output"
	if wantInput {
		limit = in
		kind = "input"
	}
	if port < 0 || port >= limit {
		return fmt.Errorf("optsim: %s %q has no %s port %d", kind, c.nodes[node].Name(), kind, port)
	}
	return nil
}

// Connect wires srcNode's output port to dstNode's input port.
func (c *Circuit) Connect(srcNode, srcPort, dstNode, dstPort int) error {
	if err := c.checkPort(srcNode, srcPort, false); err != nil {
		return err
	}
	if err := c.checkPort(dstNode, dstPort, true); err != nil {
		return err
	}
	dst := portRef{dstNode, dstPort}
	if _, dup := c.wires[dst]; dup {
		return fmt.Errorf("optsim: input port %d of %q already driven", dstPort, c.nodes[dstNode].Name())
	}
	if _, dup := c.sources[dst]; dup {
		return fmt.Errorf("optsim: input port %d of %q already fed by a source", dstPort, c.nodes[dstNode].Name())
	}
	c.wires[dst] = portRef{srcNode, srcPort}
	return nil
}

// Feed injects an external signal into a node's input port.
func (c *Circuit) Feed(node, port int, s *Signal) error {
	if err := c.checkPort(node, port, true); err != nil {
		return err
	}
	dst := portRef{node, port}
	if _, dup := c.wires[dst]; dup {
		return fmt.Errorf("optsim: input port %d of %q already driven", port, c.nodes[node].Name())
	}
	if s == nil {
		return fmt.Errorf("optsim: nil signal fed to %q", c.nodes[node].Name())
	}
	c.sources[dst] = s
	return nil
}

// topoOrder returns a topological order of the nodes or an error on a
// wiring cycle.
func (c *Circuit) topoOrder() ([]int, error) {
	deps := make(map[int][]int) // node -> upstream nodes
	for dst, src := range c.wires {
		deps[dst.node] = append(deps[dst.node], src.node)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(c.nodes))
	var order []int
	var visit func(n int) error
	visit = func(n int) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("optsim: circuit contains a cycle through %q", c.nodes[n].Name())
		case black:
			return nil
		}
		color[n] = gray
		up := append([]int(nil), deps[n]...)
		sort.Ints(up)
		for _, u := range up {
			if err := visit(u); err != nil {
				return err
			}
		}
		color[n] = black
		order = append(order, n)
		return nil
	}
	for n := range c.nodes {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Run evaluates the circuit and returns every node's output signals,
// indexed [node][port]. Every input port must be driven by a wire or a
// source.
func (c *Circuit) Run(led *Ledger) ([][]*Signal, error) {
	order, err := c.topoOrder()
	if err != nil {
		return nil, err
	}
	outputs := make([][]*Signal, len(c.nodes))
	for _, n := range order {
		in, _ := c.nodes[n].Ports()
		args := make([]*Signal, in)
		for p := 0; p < in; p++ {
			ref := portRef{n, p}
			if s, ok := c.sources[ref]; ok {
				args[p] = s.Clone()
				continue
			}
			src, ok := c.wires[ref]
			if !ok {
				return nil, fmt.Errorf("optsim: input port %d of %q is unconnected", p, c.nodes[n].Name())
			}
			out := outputs[src.node]
			if out == nil || src.port >= len(out) || out[src.port] == nil {
				return nil, fmt.Errorf("optsim: %q produced no signal on port %d", c.nodes[src.node].Name(), src.port)
			}
			args[p] = out[src.port].Clone()
		}
		res, err := c.nodes[n].Eval(args, led)
		if err != nil {
			return nil, fmt.Errorf("optsim: node %q: %w", c.nodes[n].Name(), err)
		}
		_, wantOut := c.nodes[n].Ports()
		if len(res) != wantOut {
			return nil, fmt.Errorf("optsim: node %q returned %d outputs, declared %d", c.nodes[n].Name(), len(res), wantOut)
		}
		outputs[n] = res
	}
	return outputs, nil
}
