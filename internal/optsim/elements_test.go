package optsim

import (
	"math"
	"testing"
	"testing/quick"

	"pixel/internal/photonics"
	"pixel/internal/phy"
)

const launch = 1 * phy.Milliwatt

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger()
	l.Charge(CatMul, 2e-12)
	l.Charge(CatMul, 1e-12)
	l.Charge(CatAdd, 5e-12)
	l.AddLatency(3e-9)
	l.AddLatency(1e-9)
	if got := l.Energy(CatMul); math.Abs(got-3e-12) > 1e-24 {
		t.Errorf("mul energy = %v", got)
	}
	if got := l.TotalEnergy(); math.Abs(got-8e-12) > 1e-24 {
		t.Errorf("total = %v", got)
	}
	if got := l.Latency(); math.Abs(got-4e-9) > 1e-21 {
		t.Errorf("latency = %v", got)
	}
	bd := l.Breakdown()
	if len(bd) != 2 || bd[CatAdd] != 5e-12 {
		t.Errorf("breakdown = %v", bd)
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.Charge(CatMul, 1) // must not panic
	l.AddLatency(1)
	if l.Energy(CatMul) != 0 || l.TotalEnergy() != 0 || l.Latency() != 0 {
		t.Error("nil ledger should read as zero")
	}
}

func TestLedgerRejectsNegative(t *testing.T) {
	l := NewLedger()
	defer func() {
		if recover() == nil {
			t.Error("negative charge should panic")
		}
	}()
	l.Charge(CatMul, -1)
}

func TestModulatorProducesOOKAndCharges(t *testing.T) {
	led := NewLedger()
	m := NewModulator(launch, slot)
	s := m.Modulate([]int{1, 0, 1}, 2, led)
	if s.Channel != 2 || s.Slots() != 3 {
		t.Fatalf("bad signal %+v", s)
	}
	if math.Abs(s.Power(0)-launch) > 1e-12*launch || s.Power(1) != 0 {
		t.Errorf("OOK powers wrong: %v, %v", s.Power(0), s.Power(1))
	}
	if led.Energy(CatComm) <= 0 {
		t.Error("modulation energy must be charged to comm")
	}
}

func TestWaveguideRunDelayLossSkew(t *testing.T) {
	led := NewLedger()
	s := NewOOK([]int{1}, launch, slot, 0)
	// 10 mm at 10.45 ps/mm = 104.5 ps: one whole slot + 4.5 ps skew.
	w := photonics.DefaultWaveguide(10 * phy.Millimeter)
	out := WaveguideRun(s, w, led)
	if out.Slots() != 2 {
		t.Fatalf("expected 1 slot of delay, got %d slots", out.Slots())
	}
	if math.Abs(out.Skew-4.5*phy.Picosecond) > 0.1*phy.Picosecond {
		t.Errorf("skew = %v, want ~4.5ps", out.Skew)
	}
	// 10mm at 1.3 dB/cm = 1.3 dB power loss.
	wantP := launch * phy.FromDB(-1.3)
	if math.Abs(out.Power(1)-wantP) > 1e-9*wantP {
		t.Errorf("power after 10mm = %v, want %v", out.Power(1), wantP)
	}
	if math.Abs(led.Latency()-104.5*phy.Picosecond) > 0.1*phy.Picosecond {
		t.Errorf("ledger latency = %v", led.Latency())
	}
}

func TestANDFilterRouting(t *testing.T) {
	led := NewLedger()
	s := NewOOK([]int{1, 1, 0, 1}, launch, slot, 5)
	f := photonics.NewDoubleMRRFilter(5)
	f.On = true
	_, cross := ANDFilter(s, f, led)
	// On-resonance, actuated: pulses cross with low loss.
	if cross.Power(0) < 0.8*launch {
		t.Errorf("cross power = %v, want near launch", cross.Power(0))
	}
	f.On = false
	_, cross = ANDFilter(s, f, led)
	if cross.Power(0) > 0.02*launch {
		t.Errorf("off filter leaks %v to cross", cross.Power(0))
	}
	if led.Energy(CatMul) <= 0 {
		t.Error("AND energy must be charged to mul")
	}
	if led.Latency() <= 0 {
		t.Error("filter delay must be charged")
	}
}

// mziInputs builds the per-bit AND outputs for a neuron word against each
// synapse bit, most-significant synapse bit first, as the OO chain wires
// them.
func mziInputs(neuron, synapse uint64, bits int) []*Signal {
	inputs := make([]*Signal, bits)
	for k := 0; k < bits; k++ {
		sbit := (synapse >> uint(bits-1-k)) & 1 // MSB first
		train := make([]int, bits)
		for t := 0; t < bits; t++ {
			if sbit == 1 && (neuron>>uint(t))&1 == 1 { // LSB-first slots
				train[t] = 1
			}
		}
		inputs[k] = NewOOK(train, launch, slot, 0)
	}
	return inputs
}

func defaultMZIOpts() MZIAccumulateOptions {
	return MZIAccumulateOptions{
		Params:   photonics.DefaultMZIParams(),
		BitRate:  10 * phy.Gigahertz,
		Lossless: true,
	}
}

func TestMZIAccumulateComputesProduct(t *testing.T) {
	// 6 x 13 = 78 — the paper's Section II-B example operands.
	const bits = 4
	inputs := mziInputs(6, 13, bits)
	led := NewLedger()
	out, err := MZIAccumulate(inputs, defaultMZIOpts(), led)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := photonics.NewAmplitudeConverter(launch, bits)
	if err != nil {
		t.Fatal(err)
	}
	conv.Coherent = true
	digits, err := DetectAmplitude(out, conv, led)
	if err != nil {
		t.Fatal(err)
	}
	got, err := WeightedValue(digits)
	if err != nil {
		t.Fatal(err)
	}
	if got != 78 {
		t.Errorf("optical product = %d, want 78 (digits %v)", got, digits)
	}
	if led.Energy(CatAdd) <= 0 || led.Energy(CatOE) <= 0 {
		t.Error("accumulation and conversion energy must be charged")
	}
	if led.Latency() <= 0 {
		t.Error("chain delay must be charged")
	}
}

func TestMZIAccumulateMatchesIntegerMultiplyProperty(t *testing.T) {
	f := func(nRaw, sRaw uint8) bool {
		const bits = 8
		neuron := uint64(nRaw)
		synapse := uint64(sRaw)
		inputs := mziInputs(neuron, synapse, bits)
		out, err := MZIAccumulate(inputs, defaultMZIOpts(), nil)
		if err != nil {
			return false
		}
		conv, err := photonics.NewAmplitudeConverter(launch, bits)
		if err != nil {
			return false
		}
		conv.Coherent = true
		digits, err := DetectAmplitude(out, conv, nil)
		if err != nil {
			return false
		}
		got, err := WeightedValue(digits)
		if err != nil {
			return false
		}
		return got == int64(neuron*synapse)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMZIAccumulateSkewFaultBreaksChain(t *testing.T) {
	opts := defaultMZIOpts()
	opts.StageSkewError = 40 * phy.Picosecond // mis-cut path
	opts.SkewTolerance = 25 * phy.Picosecond
	inputs := mziInputs(6, 13, 4)
	if _, err := MZIAccumulate(inputs, opts, nil); err == nil {
		t.Error("mis-cut inter-stage path must fail synchronization")
	}
}

func TestMZIAccumulateInsertionLossCorruptsDeepChains(t *testing.T) {
	// With real insertion loss, early pulses are attenuated more than
	// late ones; a ladder calibrated on the unit amplitude misreads
	// deep accumulations. This is the physical reason the OO design
	// needs either loss compensation or higher launch power.
	const bits = 8
	opts := defaultMZIOpts()
	opts.Lossless = false
	opts.Params.InsertionLossDB = 3 // exaggerated per-stage loss
	inputs := mziInputs(255, 255, bits)
	out, err := MZIAccumulate(inputs, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	conv, _ := photonics.NewAmplitudeConverter(launch, bits)
	conv.Coherent = true
	digits := conv.ResolveTrain(out.Powers())
	got, _ := WeightedValue(digits)
	if got == int64(255*255) {
		t.Error("lossy chain unexpectedly produced the exact product")
	}
}

func TestMZIAccumulateSOACompensatesLoss(t *testing.T) {
	// The exact configuration that corrupts products in
	// TestMZIAccumulateInsertionLossCorruptsDeepChains, but with an
	// SOA matched to the per-stage loss: the product comes out exact
	// again, at the cost of pump energy.
	const bits = 8
	soa := photonics.DefaultSOA()
	opts := defaultMZIOpts()
	opts.Lossless = false
	opts.Params.InsertionLossDB = 3
	opts.Amplifier = &soa
	inputs := mziInputs(255, 255, bits)
	led := NewLedger()
	out, err := MZIAccumulate(inputs, opts, led)
	if err != nil {
		t.Fatal(err)
	}
	conv, _ := photonics.NewAmplitudeConverter(launch, bits)
	conv.Coherent = true
	digits, err := DetectAmplitude(out, conv, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := WeightedValue(digits)
	if err != nil {
		t.Fatal(err)
	}
	if got != 255*255 {
		t.Errorf("compensated chain = %d, want %d", got, 255*255)
	}
	// The compensation costs pump energy beyond the bare MZI chain.
	bare := NewLedger()
	bareOpts := defaultMZIOpts()
	if _, err := MZIAccumulate(inputs, bareOpts, bare); err != nil {
		t.Fatal(err)
	}
	if led.Energy(CatAdd) <= bare.Energy(CatAdd) {
		t.Error("SOA compensation must charge pump energy")
	}
}

func TestMZIAccumulateInputValidation(t *testing.T) {
	if _, err := MZIAccumulate(nil, defaultMZIOpts(), nil); err == nil {
		t.Error("no inputs should error")
	}
	opts := defaultMZIOpts()
	opts.BitRate = 0
	if _, err := MZIAccumulate(mziInputs(1, 1, 2), opts, nil); err == nil {
		t.Error("zero bit rate should error")
	}
	opts = defaultMZIOpts()
	opts.BitRate = 60 * phy.Gigahertz // arms longer than a bit of flight
	if _, err := MZIAccumulate(mziInputs(1, 1, 2), opts, nil); err == nil {
		t.Error("unsynchronizable rate should error")
	}
}

func TestDetectOOKRoundTrip(t *testing.T) {
	led := NewLedger()
	bits := []int{1, 0, 1, 1, 0, 0, 1, 0}
	s := NewOOK(bits, launch, slot, 0)
	conv, err := photonics.NewOEConverter(launch)
	if err != nil {
		t.Fatal(err)
	}
	got := DetectOOK(s, conv, led)
	for i := range bits {
		if got[i] != bits[i] {
			t.Errorf("bit %d: got %d want %d", i, got[i], bits[i])
		}
	}
	if led.Energy(CatOE) <= 0 {
		t.Error("detection energy must be charged")
	}
}

func TestDetectAmplitudeSaturationError(t *testing.T) {
	// Five coincident unit pulses on a 4-level ladder must error.
	s := NewDark(1, slot, 0)
	s.Amps[0] = complex(5*math.Sqrt(launch), 0)
	conv, _ := photonics.NewAmplitudeConverter(launch, 3)
	conv.Coherent = true
	if _, err := DetectAmplitude(s, conv, nil); err == nil {
		t.Error("saturating amplitude must error")
	}
}

func TestWeightedValue(t *testing.T) {
	got, err := WeightedValue([]int{0, 1, 1, 0, 2}) // 2 + 4 + 32
	if err != nil || got != 38 {
		t.Errorf("WeightedValue = %d, %v; want 38", got, err)
	}
	if _, err := WeightedValue([]int{-1}); err == nil {
		t.Error("negative digit should error")
	}
	long := make([]int, 70)
	long[69] = 1
	if _, err := WeightedValue(long); err == nil {
		t.Error("overflow should error")
	}
}
