package optsim

import (
	"strings"
	"testing"

	"pixel/internal/photonics"
	"pixel/internal/phy"
)

func TestCircuitLinearChain(t *testing.T) {
	c := NewCircuit()
	src := c.Add(&SourceNode{Label: "in", Signal: NewOOK([]int{1, 0, 1}, launch, slot, 0)})
	tap := c.Add(&TapNode{Label: "probe"})
	dly := c.Add(&DelayNode{Label: "d1", Slots: 2})
	if err := c.Connect(src, 0, tap, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(tap, 0, dly, 0); err != nil {
		t.Fatal(err)
	}
	out, err := c.Run(NewLedger())
	if err != nil {
		t.Fatal(err)
	}
	got := out[dly][0]
	if got.Slots() != 5 || got.Power(2) == 0 || got.Power(0) != 0 {
		t.Errorf("delayed output wrong: %v", got.Powers())
	}
}

func TestCircuitRejectsCycle(t *testing.T) {
	c := NewCircuit()
	a := c.Add(&TapNode{Label: "a"})
	b := c.Add(&TapNode{Label: "b"})
	if err := c.Connect(a, 0, b, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(b, 0, a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(nil); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("expected cycle error, got %v", err)
	}
}

func TestCircuitRejectsUnconnectedInput(t *testing.T) {
	c := NewCircuit()
	c.Add(&TapNode{Label: "floating"})
	if _, err := c.Run(nil); err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Errorf("expected unconnected error, got %v", err)
	}
}

func TestCircuitRejectsDoubleDrive(t *testing.T) {
	c := NewCircuit()
	s1 := c.Add(&SourceNode{Label: "s1", Signal: NewDark(1, slot, 0)})
	s2 := c.Add(&SourceNode{Label: "s2", Signal: NewDark(1, slot, 0)})
	tp := c.Add(&TapNode{Label: "t"})
	if err := c.Connect(s1, 0, tp, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(s2, 0, tp, 0); err == nil {
		t.Error("double-driven input must be rejected")
	}
	if err := c.Feed(tp, 0, NewDark(1, slot, 0)); err == nil {
		t.Error("source on a driven input must be rejected")
	}
}

func TestCircuitPortValidation(t *testing.T) {
	c := NewCircuit()
	tp := c.Add(&TapNode{Label: "t"})
	if err := c.Connect(tp, 1, tp, 0); err == nil {
		t.Error("bad output port must be rejected")
	}
	if err := c.Connect(tp, 0, tp, 3); err == nil {
		t.Error("bad input port must be rejected")
	}
	if err := c.Connect(9, 0, tp, 0); err == nil {
		t.Error("bad node id must be rejected")
	}
	if err := c.Feed(tp, 0, nil); err == nil {
		t.Error("nil source signal must be rejected")
	}
}

func TestCircuitFilterSplitsBarCross(t *testing.T) {
	c := NewCircuit()
	src := c.Add(&SourceNode{Label: "in", Signal: NewOOK([]int{1}, launch, slot, 3)})
	f := photonics.NewDoubleMRRFilter(3)
	f.On = true
	flt := c.Add(&FilterNode{Label: "and", Filter: f})
	if err := c.Connect(src, 0, flt, 0); err != nil {
		t.Fatal(err)
	}
	led := NewLedger()
	out, err := c.Run(led)
	if err != nil {
		t.Fatal(err)
	}
	bar, cross := out[flt][0], out[flt][1]
	if cross.Power(0) < 0.8*launch {
		t.Errorf("cross power = %v", cross.Power(0))
	}
	if bar.Power(0) > 0.02*launch {
		t.Errorf("bar leakage = %v", bar.Power(0))
	}
	if led.Energy(CatMul) <= 0 {
		t.Error("filter node must charge mul energy")
	}
}

// TestCircuitOOChainMatchesDirectComposition rebuilds the OO
// accumulation chain as an explicit netlist — MZI combiners with
// one-slot delay feedback paths unrolled — and checks it produces the
// same product train as MZIAccumulate.
func TestCircuitOOChainMatchesDirectComposition(t *testing.T) {
	const bits = 4
	neuron, synapse := uint64(6), uint64(13)
	inputs := mziInputs(neuron, synapse, bits)

	want, err := MZIAccumulate(inputs, defaultMZIOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCircuit()
	params := photonics.DefaultMZIParams()
	var accNode, accPort int
	for k, in := range inputs {
		src := c.Add(&SourceNode{Label: "lane", Signal: in})
		if k == 0 {
			accNode, accPort = src, 0
			continue
		}
		dly := c.Add(&DelayNode{Label: "slot", Slots: 1})
		if err := c.Connect(accNode, accPort, dly, 0); err != nil {
			t.Fatal(err)
		}
		mzi := c.Add(&CombinerNode{Label: "acc", Params: params, Lossless: true})
		if err := c.Connect(dly, 0, mzi, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Connect(src, 0, mzi, 1); err != nil {
			t.Fatal(err)
		}
		accNode, accPort = mzi, 0
	}
	out, err := c.Run(NewLedger())
	if err != nil {
		t.Fatal(err)
	}
	got := out[accNode][accPort]
	if got.Slots() != want.Slots() {
		t.Fatalf("netlist output %d slots, direct %d", got.Slots(), want.Slots())
	}
	for i := 0; i < want.Slots(); i++ {
		d := got.Power(i) - want.Power(i)
		if d > 1e-15 || d < -1e-15 {
			t.Errorf("slot %d: netlist %v, direct %v", i, got.Power(i), want.Power(i))
		}
	}
	// And the detected product is the integer product.
	conv, err := photonics.NewAmplitudeConverter(launch, bits)
	if err != nil {
		t.Fatal(err)
	}
	conv.Coherent = true
	digits, err := DetectAmplitude(got, conv, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := WeightedValue(digits)
	if err != nil || v != 78 {
		t.Errorf("netlist product = %d, %v; want 78", v, err)
	}
}

func TestCombinerNodeSkewPropagates(t *testing.T) {
	c := NewCircuit()
	a := c.Add(&SourceNode{Label: "a", Signal: NewOOK([]int{1}, launch, slot, 0)})
	skewed := NewOOK([]int{1}, launch, slot, 0).AddSkew(40 * phy.Picosecond)
	b := c.Add(&SourceNode{Label: "b", Signal: skewed})
	m := c.Add(&CombinerNode{Label: "m", Params: photonics.DefaultMZIParams(), Tolerance: 25 * phy.Picosecond})
	if err := c.Connect(a, 0, m, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(b, 0, m, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(NewLedger()); err == nil {
		t.Error("skewed combiner inputs must error through the circuit")
	}
}

func TestCombinerNodeLossApplied(t *testing.T) {
	c := NewCircuit()
	a := c.Add(&SourceNode{Label: "a", Signal: NewOOK([]int{1}, launch, slot, 0)})
	b := c.Add(&SourceNode{Label: "b", Signal: NewDark(1, slot, 0)})
	params := photonics.DefaultMZIParams()
	params.InsertionLossDB = 3.0102999566
	m := c.Add(&CombinerNode{Label: "m", Params: params})
	if err := c.Connect(a, 0, m, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(b, 0, m, 1); err != nil {
		t.Fatal(err)
	}
	out, err := c.Run(NewLedger())
	if err != nil {
		t.Fatal(err)
	}
	got := out[m][0].Power(0)
	if d := got - launch/2; d > 1e-9*launch || d < -1e-9*launch {
		t.Errorf("lossy combiner output = %v, want %v", got, launch/2)
	}
}
