package optsim

import (
	"testing"

	"pixel/internal/photonics"
)

func BenchmarkCombine(b *testing.B) {
	x := NewOOK([]int{1, 0, 1, 1, 0, 1, 0, 1}, 1e-3, slot, 0)
	y := NewOOK([]int{0, 1, 1, 0, 1, 1, 1, 0}, 1e-3, slot, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Combine(x, y, slot/4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMZIAccumulate8(b *testing.B) {
	inputs := mziInputs(173, 201, 8)
	opts := defaultMZIOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MZIAccumulate(inputs, opts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircuitOOChain(b *testing.B) {
	const bits = 8
	params := photonics.DefaultMZIParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inputs := mziInputs(uint64(i)&255, uint64(i>>8)&255, bits)
		c := NewCircuit()
		var accNode int
		for k, in := range inputs {
			src := c.Add(&SourceNode{Label: "lane", Signal: in})
			if k == 0 {
				accNode = src
				continue
			}
			dly := c.Add(&DelayNode{Label: "slot", Slots: 1})
			if err := c.Connect(accNode, 0, dly, 0); err != nil {
				b.Fatal(err)
			}
			mzi := c.Add(&CombinerNode{Label: "acc", Params: params, Lossless: true})
			if err := c.Connect(dly, 0, mzi, 0); err != nil {
				b.Fatal(err)
			}
			if err := c.Connect(src, 0, mzi, 1); err != nil {
				b.Fatal(err)
			}
			accNode = mzi
		}
		if _, err := c.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}
