// Package optsim is a discrete-time simulator for on-chip optical
// datapaths. Optical signals are pulse trains: one complex field
// amplitude per bit slot on one wavelength channel. Photonic elements
// (waveguide delays, MRR filters, MZI couplers, detectors) transform
// pulse trains slot by slot; a Ledger accounts energy and path latency as
// elements are applied, so the same simulation that proves functional
// correctness also produces the costs the architecture model charges.
//
// Timing is handled at two granularities: integer bit-slot delays shift
// trains, and residual sub-slot skew is accumulated per signal. Elements
// that combine two signals (MZI couplers) enforce a skew tolerance — the
// synchronization constraint of the paper's Eq. 8: inter-stage waveguides
// must be cut to the bit period.
package optsim

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Signal is an optical pulse train on a single wavelength channel.
type Signal struct {
	// Amps holds one complex field amplitude per bit slot. Power in a
	// slot is |amp|^2 [W].
	Amps []complex128
	// Period is the bit-slot duration [s].
	Period float64
	// Channel is the WDM channel index the signal rides on.
	Channel int
	// Skew is the accumulated sub-slot timing offset [s]. Integer slot
	// delays do not change it; physical path lengths that are not an
	// exact multiple of the bit period do.
	Skew float64
}

// NewDark returns an all-zero (dark) signal of n slots.
func NewDark(n int, period float64, channel int) *Signal {
	if n < 0 {
		panic("optsim: negative slot count")
	}
	if period <= 0 {
		panic("optsim: non-positive slot period")
	}
	return &Signal{Amps: make([]complex128, n), Period: period, Channel: channel}
}

// NewOOK returns an on-off-keyed pulse train: slot i carries power
// `power` when bits[i] != 0 and is dark otherwise. Bit order is as
// given; callers decide LSB-first vs MSB-first framing.
func NewOOK(bits []int, power, period float64, channel int) *Signal {
	if power < 0 {
		panic("optsim: negative power")
	}
	s := NewDark(len(bits), period, channel)
	amp := complex(math.Sqrt(power), 0)
	for i, b := range bits {
		if b != 0 {
			s.Amps[i] = amp
		}
	}
	return s
}

// Clone returns a deep copy of the signal.
func (s *Signal) Clone() *Signal {
	out := &Signal{
		Amps:    make([]complex128, len(s.Amps)),
		Period:  s.Period,
		Channel: s.Channel,
		Skew:    s.Skew,
	}
	copy(out.Amps, s.Amps)
	return out
}

// Slots returns the number of bit slots.
func (s *Signal) Slots() int { return len(s.Amps) }

// Power returns the optical power [W] in slot i; slots outside the train
// are dark.
func (s *Signal) Power(i int) float64 {
	if i < 0 || i >= len(s.Amps) {
		return 0
	}
	a := s.Amps[i]
	return real(a * cmplx.Conj(a))
}

// Powers returns the per-slot power vector [W].
func (s *Signal) Powers() []float64 {
	out := make([]float64, len(s.Amps))
	for i := range s.Amps {
		out[i] = s.Power(i)
	}
	return out
}

// TotalEnergy returns the optical energy carried by the train [J]:
// sum of slot powers times the slot period.
func (s *Signal) TotalEnergy() float64 {
	total := 0.0
	for i := range s.Amps {
		total += s.Power(i)
	}
	return total * s.Period
}

// Scale multiplies every slot amplitude by the (complex) factor and
// returns the signal for chaining.
func (s *Signal) Scale(f complex128) *Signal {
	for i := range s.Amps {
		s.Amps[i] *= f
	}
	return s
}

// DelaySlots returns a copy of the signal delayed by n whole bit slots:
// n dark slots are prepended and the train grows accordingly.
func (s *Signal) DelaySlots(n int) *Signal {
	if n < 0 {
		panic("optsim: negative slot delay")
	}
	out := &Signal{
		Amps:    make([]complex128, n+len(s.Amps)),
		Period:  s.Period,
		Channel: s.Channel,
		Skew:    s.Skew,
	}
	copy(out.Amps[n:], s.Amps)
	return out
}

// AddSkew returns a copy with the sub-slot timing offset increased by dt
// [s]. Negative dt (early arrival) is allowed.
func (s *Signal) AddSkew(dt float64) *Signal {
	out := s.Clone()
	out.Skew += dt
	return out
}

// PadTo returns a copy extended with dark slots to at least n slots.
func (s *Signal) PadTo(n int) *Signal {
	if n <= len(s.Amps) {
		return s.Clone()
	}
	out := s.Clone()
	pad := make([]complex128, n-len(s.Amps))
	out.Amps = append(out.Amps, pad...)
	return out
}

// SkewError describes two signals whose sub-slot misalignment exceeds the
// combiner tolerance — pulses would smear across slot boundaries instead
// of adding.
type SkewError struct {
	SkewA, SkewB float64
	Tolerance    float64
}

func (e *SkewError) Error() string {
	return fmt.Sprintf("optsim: combiner inputs misaligned: skews %.3g s and %.3g s differ by more than tolerance %.3g s",
		e.SkewA, e.SkewB, e.Tolerance)
}

// Combine coherently adds two pulse trains slot by slot (the physical
// behaviour of a tuned MZI coupler steering both inputs to one output).
// The signals must share the slot period and channel, and their sub-slot
// skews must agree within tol seconds, or a *SkewError is returned.
// The output length is the longer of the two inputs.
func Combine(a, b *Signal, tol float64) (*Signal, error) {
	if a.Period != b.Period {
		return nil, fmt.Errorf("optsim: combining signals with different slot periods (%g vs %g)", a.Period, b.Period)
	}
	if a.Channel != b.Channel {
		return nil, fmt.Errorf("optsim: combining different wavelength channels (%d vs %d)", a.Channel, b.Channel)
	}
	if d := math.Abs(a.Skew - b.Skew); d > tol {
		return nil, &SkewError{SkewA: a.Skew, SkewB: b.Skew, Tolerance: tol}
	}
	n := len(a.Amps)
	if len(b.Amps) > n {
		n = len(b.Amps)
	}
	out := NewDark(n, a.Period, a.Channel)
	out.Skew = (a.Skew + b.Skew) / 2
	for i := 0; i < n; i++ {
		var va, vb complex128
		if i < len(a.Amps) {
			va = a.Amps[i]
		}
		if i < len(b.Amps) {
			vb = b.Amps[i]
		}
		out.Amps[i] = va + vb
	}
	return out, nil
}

// Bus is a WDM bundle: one Signal per wavelength channel sharing a
// waveguide.
type Bus []*Signal

// NewBus returns a bus of `channels` dark signals of n slots.
func NewBus(channels, n int, period float64) Bus {
	if channels < 1 {
		panic("optsim: bus needs at least one channel")
	}
	b := make(Bus, channels)
	for c := range b {
		b[c] = NewDark(n, period, c)
	}
	return b
}

// Channel returns the signal on channel c, or a dark signal if the bus
// has no such channel.
func (b Bus) Channel(c int) *Signal {
	for _, s := range b {
		if s != nil && s.Channel == c {
			return s
		}
	}
	return nil
}

// Clone deep-copies the bus.
func (b Bus) Clone() Bus {
	out := make(Bus, len(b))
	for i, s := range b {
		if s != nil {
			out[i] = s.Clone()
		}
	}
	return out
}

// TotalPower returns the summed power across all channels in slot i —
// what a broadband photodetector at the end of the waveguide would see.
func (b Bus) TotalPower(i int) float64 {
	total := 0.0
	for _, s := range b {
		if s != nil {
			total += s.Power(i)
		}
	}
	return total
}
