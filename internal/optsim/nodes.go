package optsim

import (
	"fmt"

	"pixel/internal/photonics"
)

// Standard Node implementations wrapping the element functions, so
// datapaths can be expressed as netlists.

// SourceNode emits a fixed signal (no inputs, one output).
type SourceNode struct {
	Label  string
	Signal *Signal
}

// Name implements Node.
func (s *SourceNode) Name() string { return "source:" + s.Label }

// Ports implements Node.
func (s *SourceNode) Ports() (int, int) { return 0, 1 }

// Eval implements Node.
func (s *SourceNode) Eval(_ []*Signal, _ *Ledger) ([]*Signal, error) {
	if s.Signal == nil {
		return nil, fmt.Errorf("source %q has no signal", s.Label)
	}
	return []*Signal{s.Signal.Clone()}, nil
}

// WaveguideNode propagates its input through a waveguide run (one in,
// one out).
type WaveguideNode struct {
	Label     string
	Waveguide photonics.Waveguide
}

// Name implements Node.
func (w *WaveguideNode) Name() string { return "waveguide:" + w.Label }

// Ports implements Node.
func (w *WaveguideNode) Ports() (int, int) { return 1, 1 }

// Eval implements Node.
func (w *WaveguideNode) Eval(in []*Signal, led *Ledger) ([]*Signal, error) {
	return []*Signal{WaveguideRun(in[0], w.Waveguide, led)}, nil
}

// FilterNode applies a double-MRR filter (one in; bar and cross out).
type FilterNode struct {
	Label  string
	Filter *photonics.DoubleMRRFilter
}

// Name implements Node.
func (f *FilterNode) Name() string { return "mrr:" + f.Label }

// Ports implements Node.
func (f *FilterNode) Ports() (int, int) { return 1, 2 }

// Eval implements Node.
func (f *FilterNode) Eval(in []*Signal, led *Ledger) ([]*Signal, error) {
	bar, cross := ANDFilter(in[0], f.Filter, led)
	return []*Signal{bar, cross}, nil
}

// DelayNode delays its input by whole bit slots.
type DelayNode struct {
	Label string
	Slots int
}

// Name implements Node.
func (d *DelayNode) Name() string { return "delay:" + d.Label }

// Ports implements Node.
func (d *DelayNode) Ports() (int, int) { return 1, 1 }

// Eval implements Node.
func (d *DelayNode) Eval(in []*Signal, _ *Ledger) ([]*Signal, error) {
	if d.Slots < 0 {
		return nil, fmt.Errorf("delay %q has negative slots", d.Label)
	}
	return []*Signal{in[0].DelaySlots(d.Slots)}, nil
}

// CombinerNode coherently combines two inputs into one output (a tuned
// MZI coupler steering all power to one port), charging per-slot MZI
// energy.
type CombinerNode struct {
	Label string
	// Params prices the stage; Tolerance bounds input skew (zero means
	// a quarter slot).
	Params    photonics.MZIParams
	Tolerance float64
	// Lossless applies the functional idealization.
	Lossless bool
}

// Name implements Node.
func (m *CombinerNode) Name() string { return "mzi:" + m.Label }

// Ports implements Node.
func (m *CombinerNode) Ports() (int, int) { return 2, 1 }

// Eval implements Node.
func (m *CombinerNode) Eval(in []*Signal, led *Ledger) ([]*Signal, error) {
	tol := m.Tolerance
	if tol == 0 {
		tol = in[0].Period / 4
	}
	out, err := Combine(in[0], in[1], tol)
	if err != nil {
		return nil, err
	}
	if !m.Lossless {
		out.Scale(complex(photonics.FieldLoss(m.Params.InsertionLossDB), 0))
	}
	led.Charge(CatAdd, m.Params.ModulationEnergyPerBit*float64(out.Slots()))
	return []*Signal{out}, nil
}

// TapNode passes its input through unchanged; useful as a named probe
// point in generated netlists.
type TapNode struct{ Label string }

// Name implements Node.
func (t *TapNode) Name() string { return "tap:" + t.Label }

// Ports implements Node.
func (t *TapNode) Ports() (int, int) { return 1, 1 }

// Eval implements Node.
func (t *TapNode) Eval(in []*Signal, _ *Ledger) ([]*Signal, error) {
	return []*Signal{in[0].Clone()}, nil
}
