package optsim

import (
	"math"
	"testing"

	"pixel/internal/photonics"
	"pixel/internal/phy"
)

// busWithVictim builds a bus where channel mid is dark on slot 0 and
// every other channel is lit.
func busWithVictim(channels int) Bus {
	b := make(Bus, channels)
	for c := range b {
		bits := []int{1}
		if c == channels/2 {
			bits = []int{0}
		}
		b[c] = NewOOK(bits, launch, slot, c)
	}
	return b
}

func TestApplyCrosstalkCleanPlanKeepsBitsReadable(t *testing.T) {
	// The default 100 GHz / Q~10k plan leaves a dark slot well below
	// the OOK threshold even with 15 lit neighbours.
	b := busWithVictim(16)
	plan := photonics.DefaultChannelPlan(16)
	out := ApplyCrosstalk(b, plan)
	victim := out[8].Power(0)
	if victim >= launch/2 {
		t.Errorf("victim power %v crosses the slicer threshold %v under a clean plan", victim, launch/2)
	}
	if victim == 0 {
		t.Error("crosstalk should add some power to the dark slot")
	}
	// Lit slots keep roughly their power (gain only leakage).
	if out[0].Power(0) < launch {
		t.Error("lit slots must not lose power to crosstalk")
	}
}

func TestApplyCrosstalkDensePlanFlipsBits(t *testing.T) {
	// A 4x denser grid with broad rings: the dark slot collects enough
	// neighbour power to read as a one — the functional counterpart of
	// ChannelPlan.Check failing.
	b := busWithVictim(16)
	plan := photonics.DefaultChannelPlan(16)
	plan.Spacing = 0.2 * phy.Nanometer
	plan.RingFWHM = 0.3 * phy.Nanometer
	if err := plan.Check(); err == nil {
		t.Fatal("precondition: the dense plan should fail its budget")
	}
	out := ApplyCrosstalk(b, plan)
	victim := out[8].Power(0)
	if victim < launch/2 {
		t.Errorf("victim power %v should cross the slicer threshold under the dense plan", victim)
	}
}

func TestApplyCrosstalkPreservesOriginal(t *testing.T) {
	b := busWithVictim(4)
	before := b[2].Power(0)
	_ = ApplyCrosstalk(b, photonics.DefaultChannelPlan(4))
	if b[2].Power(0) != before {
		t.Error("ApplyCrosstalk must not mutate its input")
	}
}

func TestApplyCrosstalkSingleChannelNoop(t *testing.T) {
	b := Bus{NewOOK([]int{1, 0}, launch, slot, 0)}
	out := ApplyCrosstalk(b, photonics.DefaultChannelPlan(1))
	for i := 0; i < 2; i++ {
		if math.Abs(out[0].Power(i)-b[0].Power(i)) > 1e-18 {
			t.Error("single-channel bus must be unchanged")
		}
	}
}

func TestApplyCrosstalkHandlesNilChannels(t *testing.T) {
	b := make(Bus, 3)
	b[0] = NewOOK([]int{1}, launch, slot, 0)
	// b[1], b[2] nil.
	out := ApplyCrosstalk(b, photonics.DefaultChannelPlan(3))
	if out[0] == nil || out[1] != nil {
		t.Error("nil channels should pass through")
	}
}
