package optsim

import (
	"math"
	"math/cmplx"

	"pixel/internal/photonics"
)

// ApplyCrosstalk returns a copy of the bus where every channel's slots
// carry the Lorentzian-weighted leakage from all other channels — the
// functional face of photonics.ChannelPlan's analysis. Leakage from
// distinct wavelengths adds incoherently (in power), so a dark slot
// surrounded by lit neighbours gains real power that a downstream OOK
// slicer may misread: the mechanism behind the plan checker's
// eye-closure penalty.
//
// The plan's Spacing and RingFWHM define the per-channel-offset leakage
// weights; the bus's channel indices are taken as consecutive grid
// positions.
func ApplyCrosstalk(b Bus, plan photonics.ChannelPlan) Bus {
	out := b.Clone()
	if len(b) < 2 {
		return out
	}
	slots := 0
	for _, s := range b {
		if s != nil && s.Slots() > slots {
			slots = s.Slots()
		}
	}
	for ci, dst := range out {
		if dst == nil {
			continue
		}
		dst2 := dst.PadTo(slots)
		for t := 0; t < slots; t++ {
			own := dst2.Power(t)
			leak := 0.0
			for cj, src := range b {
				if cj == ci || src == nil {
					continue
				}
				delta := float64(cj-ci) * plan.Spacing
				leak += plan.DropResponse(delta) * src.Power(t)
			}
			if leak == 0 {
				continue
			}
			// Incoherent power addition; keep the victim's phase (or
			// a reference phase for dark slots).
			total := own + leak
			phase := 0.0
			if own > 0 {
				phase = cmplx.Phase(dst2.Amps[t])
			}
			dst2.Amps[t] = cmplx.Rect(math.Sqrt(total), phase)
		}
		out[ci] = dst2
	}
	return out
}
