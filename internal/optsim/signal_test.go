package optsim

import (
	"math"
	"testing"
	"testing/quick"

	"pixel/internal/phy"
)

const slot = 100 * phy.Picosecond // 10 GHz

func TestNewOOKPowers(t *testing.T) {
	s := NewOOK([]int{1, 0, 1, 1}, 1*phy.Milliwatt, slot, 0)
	want := []float64{1e-3, 0, 1e-3, 1e-3}
	for i, w := range want {
		if math.Abs(s.Power(i)-w) > 1e-12 {
			t.Errorf("slot %d power = %v, want %v", i, s.Power(i), w)
		}
	}
	if s.Slots() != 4 {
		t.Errorf("Slots = %d", s.Slots())
	}
	// Out-of-range slots are dark.
	if s.Power(-1) != 0 || s.Power(99) != 0 {
		t.Error("out-of-range slots must be dark")
	}
}

func TestSignalTotalEnergy(t *testing.T) {
	s := NewOOK([]int{1, 1, 0, 1}, 2*phy.Milliwatt, slot, 0)
	want := 3 * 2e-3 * 100e-12 // three lit slots
	if math.Abs(s.TotalEnergy()-want) > 1e-18 {
		t.Errorf("TotalEnergy = %v, want %v", s.TotalEnergy(), want)
	}
}

func TestDelaySlots(t *testing.T) {
	s := NewOOK([]int{1, 1}, 1e-3, slot, 2)
	d := s.DelaySlots(3)
	if d.Slots() != 5 {
		t.Fatalf("delayed slots = %d, want 5", d.Slots())
	}
	for i := 0; i < 3; i++ {
		if d.Power(i) != 0 {
			t.Errorf("slot %d should be dark", i)
		}
	}
	if d.Power(3) == 0 || d.Power(4) == 0 {
		t.Error("pulses should land at slots 3,4")
	}
	if d.Channel != 2 {
		t.Error("channel must be preserved")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewOOK([]int{1}, 1e-3, slot, 0)
	c := s.Clone()
	c.Amps[0] = 0
	if s.Power(0) == 0 {
		t.Error("mutating the clone changed the original")
	}
}

func TestScaleAndPad(t *testing.T) {
	s := NewOOK([]int{1}, 4e-3, slot, 0)
	s.Scale(complex(0.5, 0))
	if math.Abs(s.Power(0)-1e-3) > 1e-15 {
		t.Errorf("scaled power = %v, want 1e-3 (field halves, power quarters)", s.Power(0))
	}
	p := s.PadTo(5)
	if p.Slots() != 5 || p.Power(4) != 0 {
		t.Error("PadTo should extend with dark slots")
	}
	if q := p.PadTo(2); q.Slots() != 5 {
		t.Error("PadTo smaller than current length should be a no-op copy")
	}
}

func TestCombineAddsAmplitudes(t *testing.T) {
	a := NewOOK([]int{1, 0}, 1e-3, slot, 0)
	b := NewOOK([]int{1, 1}, 1e-3, slot, 0)
	out, err := Combine(a, b, slot/4)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0: both pulses coherent -> field doubles -> power quadruples.
	if math.Abs(out.Power(0)-4e-3) > 1e-12 {
		t.Errorf("slot0 combined power = %v, want 4e-3", out.Power(0))
	}
	// Slot 1: single pulse.
	if math.Abs(out.Power(1)-1e-3) > 1e-12 {
		t.Errorf("slot1 combined power = %v, want 1e-3", out.Power(1))
	}
}

func TestCombineLengthMismatch(t *testing.T) {
	a := NewOOK([]int{1}, 1e-3, slot, 0)
	b := NewOOK([]int{1, 1, 1}, 1e-3, slot, 0)
	out, err := Combine(a, b, slot/4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Slots() != 3 {
		t.Errorf("combined length = %d, want 3", out.Slots())
	}
}

func TestCombineRejectsMismatchedPeriodOrChannel(t *testing.T) {
	a := NewOOK([]int{1}, 1e-3, slot, 0)
	b := NewOOK([]int{1}, 1e-3, 2*slot, 0)
	if _, err := Combine(a, b, slot); err == nil {
		t.Error("different periods must not combine")
	}
	c := NewOOK([]int{1}, 1e-3, slot, 1)
	if _, err := Combine(a, c, slot); err == nil {
		t.Error("different channels must not combine")
	}
}

func TestCombineSkewTolerance(t *testing.T) {
	a := NewOOK([]int{1}, 1e-3, slot, 0)
	b := NewOOK([]int{1}, 1e-3, slot, 0).AddSkew(30 * phy.Picosecond)
	if _, err := Combine(a, b, 25*phy.Picosecond); err == nil {
		t.Error("expected skew error")
	} else if _, ok := err.(*SkewError); !ok {
		t.Errorf("expected *SkewError, got %T: %v", err, err)
	}
	if _, err := Combine(a, b, 35*phy.Picosecond); err != nil {
		t.Errorf("skew within tolerance should combine: %v", err)
	}
}

func TestCombineCommutative(t *testing.T) {
	f := func(bitsA, bitsB []bool) bool {
		ba := make([]int, len(bitsA))
		for i, v := range bitsA {
			if v {
				ba[i] = 1
			}
		}
		bb := make([]int, len(bitsB))
		for i, v := range bitsB {
			if v {
				bb[i] = 1
			}
		}
		a := NewOOK(ba, 1e-3, slot, 0)
		b := NewOOK(bb, 1e-3, slot, 0)
		ab, err1 := Combine(a, b, slot/4)
		ba2, err2 := Combine(b, a, slot/4)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < ab.Slots(); i++ {
			if math.Abs(ab.Power(i)-ba2.Power(i)) > 1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBusChannelLookupAndTotalPower(t *testing.T) {
	b := NewBus(4, 2, slot)
	b[2] = NewOOK([]int{1, 0}, 1e-3, slot, 2)
	b[3] = NewOOK([]int{1, 1}, 1e-3, slot, 3)
	if got := b.Channel(2); got == nil || got.Power(0) == 0 {
		t.Error("Channel(2) lookup failed")
	}
	if got := b.Channel(9); got != nil {
		t.Error("missing channel should be nil")
	}
	// Different wavelengths add in power on a broadband detector.
	if math.Abs(b.TotalPower(0)-2e-3) > 1e-12 {
		t.Errorf("TotalPower(0) = %v, want 2e-3", b.TotalPower(0))
	}
	clone := b.Clone()
	clone[2].Amps[0] = 0
	if b[2].Power(0) == 0 {
		t.Error("bus Clone must be deep")
	}
}

func TestNewDarkAndBusPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative slots": func() { NewDark(-1, slot, 0) },
		"zero period":    func() { NewDark(4, 0, 0) },
		"negative power": func() { NewOOK([]int{1}, -1, slot, 0) },
		"empty bus":      func() { NewBus(0, 4, slot) },
		"negative delay": func() { NewDark(1, slot, 0).DelaySlots(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
