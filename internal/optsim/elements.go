package optsim

import (
	"fmt"
	"math"

	"pixel/internal/photonics"
)

// Energy categories used by the Ledger. They match the component
// breakdown the paper reports in Figure 5 and Table II.
const (
	CatMul   = "mul"   // multiplication (MRR AND array / electrical AND)
	CatAdd   = "add"   // accumulation (CLA+shifter / MZI chain)
	CatAct   = "act"   // activation function
	CatOE    = "o/e"   // optical-to-electrical conversion
	CatComm  = "comm"  // data movement (electrical or photonic link)
	CatLaser = "laser" // laser wall-plug energy
)

// Ledger accumulates energy by category and tracks the critical-path
// latency of a datapath as elements are applied. The same functional
// simulation that computes values therefore also produces the numbers
// the architecture model reports.
type Ledger struct {
	energy  map[string]float64
	latency float64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{energy: make(map[string]float64)}
}

// Charge adds energy [J] to a category.
func (l *Ledger) Charge(category string, joules float64) {
	if l == nil {
		return
	}
	if joules < 0 {
		panic("optsim: negative energy charge")
	}
	l.energy[category] += joules
}

// AddLatency extends the critical path by dt [s].
func (l *Ledger) AddLatency(dt float64) {
	if l == nil {
		return
	}
	if dt < 0 {
		panic("optsim: negative latency")
	}
	l.latency += dt
}

// Energy returns the accumulated energy [J] in a category.
func (l *Ledger) Energy(category string) float64 {
	if l == nil {
		return 0
	}
	return l.energy[category]
}

// TotalEnergy returns the summed energy across categories [J].
func (l *Ledger) TotalEnergy() float64 {
	if l == nil {
		return 0
	}
	total := 0.0
	for _, v := range l.energy {
		total += v
	}
	return total
}

// Latency returns the accumulated critical-path latency [s].
func (l *Ledger) Latency() float64 {
	if l == nil {
		return 0
	}
	return l.latency
}

// Breakdown returns a copy of the per-category energies.
func (l *Ledger) Breakdown() map[string]float64 {
	out := make(map[string]float64, len(l.energy))
	for k, v := range l.energy {
		out[k] = v
	}
	return out
}

// Modulator is an MRR-based electro-optic modulator producing OOK pulse
// trains from bits.
type Modulator struct {
	Params photonics.MRRParams
	// LaunchPower is the optical "one" level produced [W].
	LaunchPower float64
	// Period is the bit-slot duration [s].
	Period float64
}

// NewModulator returns a modulator with default ring parameters.
func NewModulator(launchPower, period float64) *Modulator {
	return &Modulator{
		Params:      photonics.DefaultMRRParams(),
		LaunchPower: launchPower,
		Period:      period,
	}
}

// Modulate produces the OOK train for bits on the given channel,
// charging modulation energy to CatComm (the E/O front end is part of
// bringing data in) on the ledger.
func (m *Modulator) Modulate(bits []int, channel int, led *Ledger) *Signal {
	led.Charge(CatComm, m.Params.SwitchEnergyPerBit*float64(len(bits)))
	return NewOOK(bits, m.LaunchPower, m.Period, channel)
}

// WaveguideRun propagates a signal along a waveguide: applies the
// propagation loss, shifts by the whole number of bit slots the flight
// time covers, and accumulates the sub-slot remainder as skew.
func WaveguideRun(s *Signal, w photonics.Waveguide, led *Ledger) *Signal {
	delay := w.Delay()
	slots := int(delay / s.Period)
	residual := delay - float64(slots)*s.Period
	out := s.DelaySlots(slots).AddSkew(residual)
	out.Scale(complex(w.FieldTransmission(), 0))
	led.AddLatency(delay)
	return out
}

// ANDFilter applies a double-MRR filter to a signal: the filter's
// resonant behaviour splits the train into the bar (continue) and cross
// (drop/AND output) paths. Energy for actuating the rings over the
// train's slots is charged to CatMul.
func ANDFilter(s *Signal, f *photonics.DoubleMRRFilter, led *Ledger) (bar, cross *Signal) {
	led.Charge(CatMul, f.EnergyPerCycle(s.Slots())) // both rings, per slot
	led.AddLatency(f.Delay())
	bar = s.Clone().Scale(complex(f.BarField(s.Channel), 0))
	cross = s.Clone().Scale(complex(f.CrossField(s.Channel), 0))
	return bar, cross
}

// MZIAccumulateOptions configures an MZI accumulation chain.
type MZIAccumulateOptions struct {
	Params photonics.MZIParams
	// BitRate is the optical line rate [Hz] the inter-stage paths are
	// cut for.
	BitRate float64
	// SkewTolerance is the maximum sub-slot misalignment the combiner
	// accepts [s]; defaults to a quarter bit period when zero.
	SkewTolerance float64
	// StageSkewError injects a per-stage timing fault [s] (mis-cut
	// inter-stage waveguide) for failure testing.
	StageSkewError float64
	// Lossless disables insertion loss, the idealization used by the
	// functional-correctness path; the cost model keeps the loss in its
	// link budget regardless.
	Lossless bool
	// Amplifier, when non-nil, inserts a gain stage after every MZI
	// that cancels the stage's insertion loss (an SOA matched to the
	// loss), keeping the amplitude levels readable through deep lossy
	// chains. Its pump energy is charged to CatAdd.
	Amplifier *photonics.SOA
}

// MZIAccumulate implements the OO design's per-wavelength cascaded-MZI
// shift-accumulate (Figure 2c): stage k's running sum is delayed by one
// bit slot and coherently combined with input k+1. With inputs ordered
// most-significant first, input k is effectively delayed by (n-1-k)
// slots, so slot t of the output carries the coherent sum of all bits of
// positional weight 2^t — the digit convolution of the product.
//
// Per-stage MZI actuation energy is charged to CatAdd; the chain's
// propagation delay (paper Eq. 10) is added to the ledger's latency.
func MZIAccumulate(inputs []*Signal, opt MZIAccumulateOptions, led *Ledger) (*Signal, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("optsim: MZIAccumulate needs at least one input")
	}
	if opt.BitRate <= 0 {
		return nil, fmt.Errorf("optsim: MZIAccumulate needs a positive bit rate")
	}
	tol := opt.SkewTolerance
	if tol == 0 {
		tol = inputs[0].Period / 4
	}
	if _, err := opt.Params.InterStagePath(opt.BitRate); err != nil {
		return nil, err
	}

	loss := complex(photonics.FieldLoss(opt.Params.InsertionLossDB), 0)
	if opt.Lossless {
		loss = 1
	}
	var gain complex128 = 1
	if opt.Amplifier != nil && !opt.Lossless {
		soa, err := opt.Amplifier.MatchLoss(opt.Params.InsertionLossDB)
		if err != nil {
			return nil, fmt.Errorf("optsim: loss compensation: %w", err)
		}
		gain = complex(soa.FieldGain(), 0)
	}

	acc := inputs[0].Clone()
	slots := acc.Slots()
	for k := 1; k < len(inputs); k++ {
		in := inputs[k]
		if in.Slots() > slots {
			slots = in.Slots()
		}
		// The running sum is delayed one bit period by the matched
		// inter-stage path; a mis-cut path shows up as skew.
		delayed := acc.DelaySlots(1).AddSkew(opt.StageSkewError)
		combined, err := Combine(delayed, in, tol)
		if err != nil {
			return nil, fmt.Errorf("optsim: MZI stage %d: %w", k, err)
		}
		acc = combined.Scale(loss).Scale(gain)
		led.Charge(CatAdd, opt.Params.ModulationEnergyPerBit*float64(combined.Slots()))
		if opt.Amplifier != nil && !opt.Lossless {
			led.Charge(CatAdd, opt.Amplifier.Energy(float64(combined.Slots())*acc.Period))
		}
	}
	if d, err := opt.Params.AccumulationDelay(len(inputs), opt.BitRate); err == nil {
		led.AddLatency(d)
	}
	return acc, nil
}

// DetectOOK converts a pulse train to bits through the simple
// photodiode + shift-register converter, charging CatOE.
func DetectOOK(s *Signal, conv *photonics.OEConverter, led *Ledger) []int {
	led.Charge(CatOE, conv.Energy(s.Slots()))
	return conv.Slice(s.Powers())
}

// DetectAmplitude converts an amplitude-coded train to integer levels
// through the comparator-ladder converter, charging CatOE. It returns an
// error if any slot saturates the ladder.
func DetectAmplitude(s *Signal, conv *photonics.AmplitudeConverter, led *Ledger) ([]int, error) {
	led.Charge(CatOE, conv.Energy(s.Slots()))
	out := make([]int, s.Slots())
	for i := range out {
		lvl, err := conv.ResolveChecked(s.Power(i))
		if err != nil {
			return nil, fmt.Errorf("optsim: slot %d: %w", i, err)
		}
		out[i] = lvl
	}
	return out, nil
}

// WeightedValue folds an LSB-first digit train into its integer value:
// sum of digit[t] * 2^t. It errors when the value would overflow int64.
func WeightedValue(digits []int) (int64, error) {
	var total int64
	for t, d := range digits {
		if d < 0 {
			return 0, fmt.Errorf("optsim: negative digit %d at slot %d", d, t)
		}
		if t >= 62 && d > 0 {
			return 0, fmt.Errorf("optsim: digit train too long for int64 (slot %d)", t)
		}
		term := int64(d) << uint(t)
		if term < 0 || math.MaxInt64-term < total {
			return 0, fmt.Errorf("optsim: weighted value overflows int64 at slot %d", t)
		}
		total += term
	}
	return total, nil
}
