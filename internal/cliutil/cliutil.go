// Package cliutil holds the flag-parsing helpers the cmd/ tools share:
// comma-separated integer axes, comma-separated name lists and MAC
// design names. Each tool used to carry its own copy; this is the one
// place they live now.
package cliutil

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pixel"
	"pixel/internal/arch"
)

// ParseInts parses a comma-separated list of positive integers — the
// form every axis flag (-lanes, -bits) takes. Non-positive values wrap
// pixel.ErrBadPrecision here, at the flag boundary, instead of passing
// through to fail deep inside the model.
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("%w: value %d in %q must be positive", pixel.ErrBadPrecision, v, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloatAxis parses a numeric axis flag in either of two forms: a
// comma-separated value list ("0,0.5,1") or a start:step:stop range
// ("0:0.5:5", both ends inclusive up to float rounding). Values must
// be non-negative and finite; a range needs a positive step and
// stop >= start.
func ParseFloatAxis(s string) ([]float64, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad range %q: want start:step:stop", s)
		}
		var start, step, stop float64
		for i, dst := range []*float64{&start, &step, &stop} {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
			if err != nil {
				return nil, fmt.Errorf("bad range %q: %w", s, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("bad range %q: non-finite value", s)
			}
			*dst = v
		}
		if step <= 0 {
			return nil, fmt.Errorf("bad range %q: step must be positive", s)
		}
		if stop < start || start < 0 {
			return nil, fmt.Errorf("bad range %q: want 0 <= start <= stop", s)
		}
		var out []float64
		// The epsilon admits a stop that float accumulation lands just
		// past (0:0.5:5 must include 5).
		for i := 0; ; i++ {
			v := start + float64(i)*step
			if v > stop+step*1e-9 {
				break
			}
			out = append(out, v)
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list %q: %w", s, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("bad float list %q: value %v must be finite and non-negative", s, v)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseNames splits a comma-separated name list, trimming whitespace
// and dropping empty entries.
func ParseNames(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if name := strings.TrimSpace(p); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// ParseDesign parses a MAC design name into the public enum
// (pixel.ErrUnknownDesign on anything but EE, OE, OO).
func ParseDesign(s string) (pixel.Design, error) {
	return pixel.ParseDesign(s)
}

// ParseDesigns parses a comma-separated design-name list.
func ParseDesigns(s string) ([]pixel.Design, error) {
	names := ParseNames(s)
	out := make([]pixel.Design, 0, len(names))
	for _, name := range names {
		d, err := pixel.ParseDesign(name)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// ParseArchDesign is ParseDesign for tools that drive the internal
// cost model directly and need the arch-side enum.
func ParseArchDesign(s string) (arch.Design, error) {
	d, err := pixel.ParseDesign(s)
	if err != nil {
		return 0, fmt.Errorf("unknown design %q (EE, OE, OO)", s)
	}
	switch d {
	case pixel.EE:
		return arch.EE, nil
	case pixel.OE:
		return arch.OE, nil
	default:
		return arch.OO, nil
	}
}
