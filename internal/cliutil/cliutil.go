// Package cliutil holds the flag-parsing helpers the cmd/ tools share:
// comma-separated integer axes, comma-separated name lists and MAC
// design names. Each tool used to carry its own copy; this is the one
// place they live now.
package cliutil

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pixel"
	"pixel/internal/arch"
)

// ParseInts parses a comma-separated list of positive integers — the
// form every axis flag (-lanes, -bits) takes. Every failure wraps
// pixel.ErrBadPrecision here, at the flag boundary, instead of passing
// through to fail deep inside the model (pinned by FuzzParseInts:
// error implies the sentinel, success implies all-positive values).
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("%w: bad integer list %q: %v", pixel.ErrBadPrecision, s, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("%w: value %d in %q must be positive", pixel.ErrBadPrecision, v, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// MaxAxisPoints bounds the size of a parsed start:step:stop range: a
// tiny step against a huge stop ("0:1e-300:1") would otherwise expand
// to an astronomically long axis (or, before the bound existed, spin
// the expansion loop effectively forever).
const MaxAxisPoints = 1 << 20

// ParseFloatAxis parses a numeric axis flag in either of two forms: a
// comma-separated value list ("0,0.5,1") or a start:step:stop range
// ("0:0.5:5", both ends inclusive up to float rounding). Values must
// be non-negative and finite; a range needs a positive step, stop >=
// start, and at most MaxAxisPoints points. Every failure wraps
// pixel.ErrBadSpec at the flag boundary; FuzzParseFloatAxis pins that
// malformed axes error with the sentinel and never panic.
func ParseFloatAxis(s string) ([]float64, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("%w: bad range %q: want start:step:stop", pixel.ErrBadSpec, s)
		}
		var start, step, stop float64
		for i, dst := range []*float64{&start, &step, &stop} {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad range %q: %v", pixel.ErrBadSpec, s, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: bad range %q: non-finite value", pixel.ErrBadSpec, s)
			}
			*dst = v
		}
		if step <= 0 {
			return nil, fmt.Errorf("%w: bad range %q: step must be positive", pixel.ErrBadSpec, s)
		}
		if stop < start || start < 0 {
			return nil, fmt.Errorf("%w: bad range %q: want 0 <= start <= stop", pixel.ErrBadSpec, s)
		}
		// The epsilon admits a stop that float accumulation lands just
		// past (0:0.5:5 must include 5). Counting in index space rather
		// than walking values avoids the non-termination trap where
		// start+i*step rounds back to start.
		span := (stop - start) / step
		if !(span <= MaxAxisPoints-1) {
			return nil, fmt.Errorf("%w: range %q spans too many points (max %d)", pixel.ErrBadSpec, s, MaxAxisPoints)
		}
		out := make([]float64, 0, int(span)+1)
		for i := 0; float64(i) <= span+1e-9; i++ {
			out = append(out, start+float64(i)*step)
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad float list %q: %v", pixel.ErrBadSpec, s, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("%w: bad float list %q: value %v must be finite and non-negative", pixel.ErrBadSpec, s, v)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseNames splits a comma-separated name list, trimming whitespace
// and dropping empty entries.
func ParseNames(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if name := strings.TrimSpace(p); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// ParseDesign parses a MAC design name into the public enum
// (pixel.ErrUnknownDesign on anything but EE, OE, OO).
func ParseDesign(s string) (pixel.Design, error) {
	return pixel.ParseDesign(s)
}

// ParseDesigns parses a comma-separated design-name list.
func ParseDesigns(s string) ([]pixel.Design, error) {
	names := ParseNames(s)
	out := make([]pixel.Design, 0, len(names))
	for _, name := range names {
		d, err := pixel.ParseDesign(name)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// ParseArchDesign is ParseDesign for tools that drive the internal
// cost model directly and need the arch-side enum.
func ParseArchDesign(s string) (arch.Design, error) {
	d, err := pixel.ParseDesign(s)
	if err != nil {
		return 0, fmt.Errorf("unknown design %q (EE, OE, OO)", s)
	}
	switch d {
	case pixel.EE:
		return arch.EE, nil
	case pixel.OE:
		return arch.OE, nil
	default:
		return arch.OO, nil
	}
}
