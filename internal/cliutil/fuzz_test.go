package cliutil

import (
	"errors"
	"math"
	"testing"

	"pixel"
)

// FuzzParseFloatAxis pins the axis-flag contract under arbitrary
// input: never panic, never hang, never allocate an unbounded axis;
// every failure wraps pixel.ErrBadSpec and every success is a bounded
// list of finite non-negative values.
func FuzzParseFloatAxis(f *testing.F) {
	for _, seed := range []string{
		"0:0.5:5",
		"0,1,2,4",
		"2:1:2",
		"0:0:5",
		"1e300:1:0",
		"0:1e-300:1",
		"1e16:0.001:1e16",
		":::",
		"0:1:",
		"NaN",
		"-1:1:2",
		"0:1:1e300",
		"+Inf,1",
		" 0 : 0.5 : 2 ",
		"0..5:1:3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		axis, err := ParseFloatAxis(s)
		if err != nil {
			if !errors.Is(err, pixel.ErrBadSpec) {
				t.Fatalf("ParseFloatAxis(%q) error %v does not wrap ErrBadSpec", s, err)
			}
			if axis != nil {
				t.Fatalf("ParseFloatAxis(%q) returned values alongside an error", s)
			}
			return
		}
		if len(axis) == 0 {
			t.Fatalf("ParseFloatAxis(%q) succeeded with an empty axis", s)
		}
		if len(axis) > MaxAxisPoints {
			t.Fatalf("ParseFloatAxis(%q) produced %d points, above the %d cap", s, len(axis), MaxAxisPoints)
		}
		for _, v := range axis {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("ParseFloatAxis(%q) produced bad value %v", s, v)
			}
		}
	})
}

// FuzzParseInts pins the integer-axis contract: never panic, failures
// wrap pixel.ErrBadPrecision, successes hold only positive values.
func FuzzParseInts(f *testing.F) {
	for _, seed := range []string{
		"1,2,3",
		" 2, 4,8 ,16",
		"0",
		"-1",
		"2,x",
		"",
		"99999999999999999999",
		"8",
		"1,,2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		vals, err := ParseInts(s)
		if err != nil {
			if !errors.Is(err, pixel.ErrBadPrecision) {
				t.Fatalf("ParseInts(%q) error %v does not wrap ErrBadPrecision", s, err)
			}
			return
		}
		for _, v := range vals {
			if v <= 0 {
				t.Fatalf("ParseInts(%q) produced non-positive %d", s, v)
			}
		}
	})
}
