package cliutil

import (
	"errors"
	"reflect"
	"testing"

	"pixel"
	"pixel/internal/arch"
)

func TestParseInts(t *testing.T) {
	got, err := ParseInts(" 2, 4,8 ,16")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 4, 8, 16}; !reflect.DeepEqual(got, want) {
		t.Errorf("ParseInts = %v, want %v", got, want)
	}
	if _, err := ParseInts("2,x"); err == nil {
		t.Error("non-integer accepted")
	}
	for _, bad := range []string{"0", "-4", "2,0,8"} {
		if _, err := ParseInts(bad); !errors.Is(err, pixel.ErrBadPrecision) {
			t.Errorf("ParseInts(%q) err = %v, want ErrBadPrecision", bad, err)
		}
	}
}

func TestParseFloatAxis(t *testing.T) {
	got, err := ParseFloatAxis("0:0.5:5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
	if len(got) != len(want) {
		t.Fatalf("ParseFloatAxis(0:0.5:5) = %v, want %v", got, want)
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("axis[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	got, err = ParseFloatAxis(" 0, 1.5,4 ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{0, 1.5, 4}) {
		t.Errorf("comma list = %v", got)
	}

	// A single-value range is just its start.
	got, err = ParseFloatAxis("2:1:2")
	if err != nil || !reflect.DeepEqual(got, []float64{2}) {
		t.Errorf("degenerate range = %v, %v", got, err)
	}

	for _, bad := range []string{
		"0:0.5", "0:0:5", "0:-1:5", "5:1:0", "-1:1:2", "1:1:Inf",
		"a,b", "-1,2", "NaN",
	} {
		if _, err := ParseFloatAxis(bad); err == nil {
			t.Errorf("ParseFloatAxis(%q) accepted", bad)
		}
	}
}

func TestParseNames(t *testing.T) {
	got := ParseNames(" AlexNet, ,VGG16 ,")
	if want := []string{"AlexNet", "VGG16"}; !reflect.DeepEqual(got, want) {
		t.Errorf("ParseNames = %v, want %v", got, want)
	}
	if got := ParseNames(""); len(got) != 0 {
		t.Errorf("ParseNames(\"\") = %v, want empty", got)
	}
}

func TestParseDesigns(t *testing.T) {
	got, err := ParseDesigns("EE,OO")
	if err != nil {
		t.Fatal(err)
	}
	if want := []pixel.Design{pixel.EE, pixel.OO}; !reflect.DeepEqual(got, want) {
		t.Errorf("ParseDesigns = %v, want %v", got, want)
	}
	if _, err := ParseDesigns("EE,XX"); !errors.Is(err, pixel.ErrUnknownDesign) {
		t.Errorf("unknown design err = %v, want ErrUnknownDesign", err)
	}
}

func TestParseArchDesign(t *testing.T) {
	for name, want := range map[string]arch.Design{"EE": arch.EE, "OE": arch.OE, "OO": arch.OO} {
		got, err := ParseArchDesign(name)
		if err != nil || got != want {
			t.Errorf("ParseArchDesign(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseArchDesign("ZZ"); err == nil {
		t.Error("unknown design accepted")
	}
}
