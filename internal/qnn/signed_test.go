package qnn

import (
	"math/rand"
	"testing"

	"pixel/internal/omac"
	"pixel/internal/optsim"
	"pixel/internal/tensor"
)

// ooSignedDotter routes signed MACs through the all-optical unit.
type ooSignedDotter struct {
	u   *omac.OOUnit
	led *optsim.Ledger
}

func (o ooSignedDotter) SignedDotProduct(a, b []int64) (int64, error) {
	return o.u.SignedDotProduct(a, b, o.led)
}

func TestReferenceSignedDotter(t *testing.T) {
	var d ReferenceSignedDotter
	got, err := d.SignedDotProduct([]int64{1, -2}, []int64{3, 4})
	if err != nil || got != -5 {
		t.Errorf("dot = %d, %v", got, err)
	}
	if _, err := d.SignedDotProduct([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

// signedStudyModel: conv with signed weights -> ReLU clamp -> pool.
func signedStudyModel(rng *rand.Rand) *SignedModel {
	k := tensor.NewKernel(2, 3, 1)
	for i := range k.Data {
		k.Data[i] = rng.Int63n(15) - 7 // signed 4-bit-ish weights
	}
	return &SignedModel{
		Label: "signed-study",
		Layers: []any{
			&SignedConv{Label: "sconv", Kernel: k, Stride: 1},
			&Requant{Label: "relu", Shift: 3, Max: 15}, // clamps negatives to 0: ReLU
			&MaxPool{Label: "pool", Window: 2},
		},
	}
}

func TestSignedModelOpticalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := signedStudyModel(rng)
	in := tensor.New(6, 6, 1)
	for i := range in.Data {
		in.Data[i] = rng.Int63n(8) // activations fit the signed range
	}
	ref, err := m.Run(in, ReferenceSignedDotter{})
	if err != nil {
		t.Fatal(err)
	}
	unit, err := omac.NewOOUnit(omac.DefaultConfig(4, 5), 16)
	if err != nil {
		t.Fatal(err)
	}
	led := optsim.NewLedger()
	got, err := m.Run(in, ooSignedDotter{unit, led})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("optical signed output[%d] = %d, reference %d", i, got.Data[i], ref.Data[i])
		}
	}
	if led.Energy(optsim.CatMul) <= 0 {
		t.Error("optical signed inference should meter energy")
	}
}

func TestSignedModelRejectsUnknownLayerType(t *testing.T) {
	m := &SignedModel{Label: "bad", Layers: []any{42}}
	if _, err := m.Run(tensor.New(1, 1, 1), ReferenceSignedDotter{}); err == nil {
		t.Error("unsupported layer type should error")
	}
}

func TestSignedConvValidation(t *testing.T) {
	c := &SignedConv{Label: "c", Kernel: tensor.NewKernel(1, 3, 2), Stride: 1}
	if _, err := c.ApplySigned(tensor.New(4, 4, 1), ReferenceSignedDotter{}); err == nil {
		t.Error("channel mismatch should error")
	}
	c2 := &SignedConv{Label: "c2", Kernel: tensor.NewKernel(1, 3, 1), Stride: 0}
	if _, err := c2.ApplySigned(tensor.New(4, 4, 1), ReferenceSignedDotter{}); err == nil {
		t.Error("zero stride should error")
	}
	c3 := &SignedConv{Label: "c3", Kernel: tensor.NewKernel(1, 5, 1), Stride: 1}
	if _, err := c3.ApplySigned(tensor.New(4, 4, 1), ReferenceSignedDotter{}); err == nil {
		t.Error("oversized kernel should error")
	}
}
