package qnn

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pixel/internal/bitserial"
	"pixel/internal/tensor"
)

// multiDotter adapts BatchedStripes (whose qnn-shaped methods satisfy
// Dotter/BatchDotter/MultiDotter structurally) without importing qnn
// types into bitserial.
type multiDotter struct{ e *bitserial.BatchedStripes }

func (m multiDotter) DotProduct(a, b []uint64) (uint64, error) { return m.e.DotProduct(a, b) }
func (m multiDotter) DotProducts(w [][]uint64, ws []uint64, out []uint64) error {
	return m.e.DotProducts(w, ws, out)
}
func (m multiDotter) DotProductsMulti(w, fs [][]uint64, outs [][]uint64) error {
	return m.e.DotProductsMulti(w, fs, outs)
}

var _ MultiDotter = multiDotter{}

// TestRunBatchEquivalence is the pipeline-level acceptance property:
// RunBatch over B inputs is bit-identical to B sequential Run calls,
// for every engine tier (the plain-Dotter fallback, the BatchDotter
// fallback and the MultiDotter fast path) and any worker count.
func TestRunBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, in0 := DemoLeNet(rng)

	fe, err := bitserial.NewFastEngine(DemoLeNetBits, DemoLeNetTerms)
	if err != nil {
		t.Fatal(err)
	}
	be, err := bitserial.NewBatchedStripes(DemoLeNetBits, DemoLeNetTerms)
	if err != nil {
		t.Fatal(err)
	}
	engines := []struct {
		name string
		d    Dotter
	}{
		{"reference", ReferenceDotter{}},
		{"fast", fastDotter{fe}},
		{"batched", multiDotter{be}},
	}

	for _, batch := range []int{1, 3, 8} {
		ins := make([]*tensor.Tensor, batch)
		for b := range ins {
			in := tensor.New(in0.H, in0.W, in0.C)
			for i := range in.Data {
				in.Data[i] = rng.Int63n(16)
			}
			ins[b] = in
		}
		want := make([]*tensor.Tensor, batch)
		for b := range ins {
			out, err := m.Run(ins[b], ReferenceDotter{})
			if err != nil {
				t.Fatal(err)
			}
			want[b] = out
		}
		for _, eng := range engines {
			for _, workers := range []int{1, 3, 0} {
				t.Run(fmt.Sprintf("B%d/%s/workers%d", batch, eng.name, workers), func(t *testing.T) {
					got, err := m.RunBatch(context.Background(), ins, eng.d, RunOptions{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != batch {
						t.Fatalf("got %d outputs, want %d", len(got), batch)
					}
					for b := range got {
						if got[b].H != want[b].H || got[b].W != want[b].W || got[b].C != want[b].C {
							t.Fatalf("input %d: shape %dx%dx%d, want %dx%dx%d",
								b, got[b].H, got[b].W, got[b].C, want[b].H, want[b].W, want[b].C)
						}
						for i, v := range got[b].Data {
							if v != want[b].Data[i] {
								t.Fatalf("input %d: element %d = %d, want %d", b, i, v, want[b].Data[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestRunBatchErrors covers batch-level validation: empty batches,
// shape mismatches, nil entries and negative activations (reported for
// the right input).
func TestRunBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, in := DemoLeNet(rng)
	ctx := context.Background()

	if _, err := m.RunBatch(ctx, nil, ReferenceDotter{}, RunOptions{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := m.RunBatch(ctx, []*tensor.Tensor{in, nil}, ReferenceDotter{}, RunOptions{}); err == nil {
		t.Fatal("nil input accepted")
	}
	odd := tensor.New(in.H+1, in.W, in.C)
	if _, err := m.RunBatch(ctx, []*tensor.Tensor{in, odd}, ReferenceDotter{}, RunOptions{}); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
	neg := tensor.New(in.H, in.W, in.C)
	neg.Data[7] = -3
	_, err := m.RunBatch(ctx, []*tensor.Tensor{in, neg}, ReferenceDotter{}, RunOptions{})
	if err == nil {
		t.Fatal("negative activation accepted")
	}
	// The failing input is named, and it is the second one.
	if want := "input 1"; !contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}

	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := m.RunBatch(cctx, []*tensor.Tensor{in}, ReferenceDotter{}, RunOptions{}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestLowerIntoReuse pins the pooled-scratch contract: a second
// LowerInto with a large-enough backing store reuses it and matches a
// fresh Lower bit for bit.
func TestLowerIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := tensor.New(10, 10, 3)
	for i := range in.Data {
		in.Data[i] = rng.Int63n(16)
	}
	var p tensor.PatchMatrix
	if err := tensor.LowerInto(&p, in, 3, 1, 1); err != nil {
		t.Fatal(err)
	}
	backing := &p.Data[0]
	// Dirty the store, re-lower a smaller problem, and compare.
	for i := range p.Data {
		p.Data[i] = -99
	}
	small := tensor.New(6, 6, 2)
	for i := range small.Data {
		small.Data[i] = rng.Int63n(16)
	}
	if err := tensor.LowerInto(&p, small, 3, 1, 0); err != nil {
		t.Fatal(err)
	}
	if &p.Data[0] != backing {
		t.Fatal("LowerInto reallocated a large-enough backing store")
	}
	fresh, err := tensor.Lower(small, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows != fresh.Rows || p.Cols != fresh.Cols || p.EH != fresh.EH || p.EW != fresh.EW {
		t.Fatalf("shape %d/%d/%d/%d != fresh %d/%d/%d/%d",
			p.Rows, p.Cols, p.EH, p.EW, fresh.Rows, fresh.Cols, fresh.EH, fresh.EW)
	}
	for i, v := range fresh.Data {
		if p.Data[i] != v {
			t.Fatalf("element %d = %d, want %d", i, p.Data[i], v)
		}
	}
}
