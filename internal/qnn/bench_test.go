package qnn

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pixel/internal/bitserial"
	"pixel/internal/omac"
	"pixel/internal/optsim"
	"pixel/internal/tensor"
)

// benchLeNet is the unpadded LeNet shape the pre-PR pipeline could
// also express, so legacy-vs-new numbers compare like for like:
// 20x20x1 -> conv 5x5x6 -> pool2 -> conv 5x5x16 -> pool2 -> fc40 ->
// fc10, 4-bit operands.
func benchLeNet() (*Model, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(31))
	maxV := int64(15)
	k1 := tensor.NewKernel(6, 5, 1)
	for i := range k1.Data {
		k1.Data[i] = rng.Int63n(maxV + 1)
	}
	k2 := tensor.NewKernel(16, 5, 6)
	for i := range k2.Data {
		k2.Data[i] = rng.Int63n(maxV + 1)
	}
	fc1 := make([]int64, 2*2*16*40)
	for i := range fc1 {
		fc1[i] = rng.Int63n(maxV + 1)
	}
	fc2 := make([]int64, 40*10)
	for i := range fc2 {
		fc2[i] = rng.Int63n(maxV + 1)
	}
	m := &Model{
		Label:          "bench-lenet",
		ActivationBits: 4,
		Layers: []Layer{
			&Conv{Label: "conv1", Kernel: k1, Stride: 1}, // -> 16x16x6
			&Requant{Label: "rq1", Shift: 8, Max: maxV},
			&MaxPool{Label: "pool1", Window: 2}, // -> 8x8x6
			&Conv{Label: "conv2", Kernel: k2, Stride: 1}, // -> 4x4x16
			&Requant{Label: "rq2", Shift: 10, Max: maxV},
			&MaxPool{Label: "pool2", Window: 2}, // -> 2x2x16
			&Flatten{Label: "flat"},
			&FullyConnected{Label: "fc1", Weights: fc1, Out: 40},
			&Requant{Label: "rq3", Shift: 10, Max: maxV},
			&FullyConnected{Label: "fc2", Weights: fc2, Out: 10},
		},
	}
	in := tensor.New(20, 20, 1)
	for i := range in.Data {
		in.Data[i] = rng.Int63n(maxV + 1)
	}
	return m, in
}

// legacyConv replicates the seed Conv.Apply: window AND weights
// re-gathered element by element for every output position, one
// DotProduct per (oy, ox, m), no lowering, no prefetch, no pool.
type legacyConv struct {
	Label  string
	Kernel *tensor.Kernel
	Stride int
}

func (c *legacyConv) Name() string { return c.Label }

func (c *legacyConv) Apply(in *tensor.Tensor, d Dotter) (*tensor.Tensor, error) {
	k := c.Kernel
	if in.C != k.C {
		return nil, fmt.Errorf("qnn: input channels %d != kernel channels %d", in.C, k.C)
	}
	if c.Stride < 1 {
		return nil, fmt.Errorf("qnn: stride %d", c.Stride)
	}
	eh := (in.H-k.R)/c.Stride + 1
	ew := (in.W-k.R)/c.Stride + 1
	out := tensor.New(eh, ew, k.M)
	n := k.R * k.R * k.C
	window := make([]uint64, n)
	weights := make([]uint64, n)
	for oy := 0; oy < eh; oy++ {
		for ox := 0; ox < ew; ox++ {
			i := 0
			for ky := 0; ky < k.R; ky++ {
				for kx := 0; kx < k.R; kx++ {
					for ch := 0; ch < in.C; ch++ {
						window[i] = uint64(in.At(oy*c.Stride+ky, ox*c.Stride+kx, ch))
						i++
					}
				}
			}
			for m := 0; m < k.M; m++ {
				i = 0
				for ky := 0; ky < k.R; ky++ {
					for kx := 0; kx < k.R; kx++ {
						for ch := 0; ch < in.C; ch++ {
							weights[i] = uint64(k.At(m, ky, kx, ch))
							i++
						}
					}
				}
				acc, err := d.DotProduct(window, weights)
				if err != nil {
					return nil, err
				}
				out.Set(oy, ox, m, int64(acc))
			}
		}
	}
	return out, nil
}

// legacyFC replicates the seed FullyConnected.Apply: one weight-row
// gather per output neuron, serial.
type legacyFC struct {
	Label   string
	Weights []int64
	Out     int
}

func (f *legacyFC) Name() string { return f.Label }

func (f *legacyFC) Apply(in *tensor.Tensor, d Dotter) (*tensor.Tensor, error) {
	n := in.Len()
	xs := make([]uint64, n)
	for i, v := range in.Data {
		xs[i] = uint64(v)
	}
	ws := make([]uint64, n)
	out := tensor.New(1, 1, f.Out)
	for o := 0; o < f.Out; o++ {
		for i := 0; i < n; i++ {
			ws[i] = uint64(f.Weights[o*n+i])
		}
		acc, err := d.DotProduct(xs, ws)
		if err != nil {
			return nil, err
		}
		out.Set(0, 0, o, int64(acc))
	}
	return out, nil
}

// legacyModel rebuilds benchLeNet with the pre-PR layer
// implementations.
func legacyModel() (*Model, *tensor.Tensor) {
	m, in := benchLeNet()
	lm := &Model{Label: m.Label, ActivationBits: m.ActivationBits}
	for _, l := range m.Layers {
		switch layer := l.(type) {
		case *Conv:
			lm.Layers = append(lm.Layers, &legacyConv{Label: layer.Label, Kernel: layer.Kernel, Stride: layer.Stride})
		case *FullyConnected:
			lm.Layers = append(lm.Layers, &legacyFC{Label: layer.Label, Weights: layer.Weights, Out: layer.Out})
		default:
			lm.Layers = append(lm.Layers, l)
		}
	}
	return lm, in
}

// BenchmarkLeNetInferenceRefLegacySerial is the pre-PR baseline: the
// seed's per-position gather layers, serial, on the plain-integer
// reference dotter.
func BenchmarkLeNetInferenceRefLegacySerial(b *testing.B) {
	m, in := legacyModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(in, ReferenceDotter{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeNetInferenceRef is the new pipeline on the reference
// dotter: im2col lowering, layer-level weight prefetch, batched dots,
// worker pool.
func BenchmarkLeNetInferenceRef(b *testing.B) {
	m, in := benchLeNet()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunContext(ctx, in, ReferenceDotter{}, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeNetInferenceEE runs every MAC through the word-level
// bit-exact Stripes engine (the fast electrical path).
func BenchmarkLeNetInferenceEE(b *testing.B) {
	m, in := benchLeNet()
	eng, err := bitserial.NewFastEngine(4, 512)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunContext(ctx, in, fastDotter{eng}, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeNetInferenceEEGate is the pre-PR electrical path: the
// gate-model CLA/barrel-shifter engine, one simulated cycle per
// synapse bit, serial.
func BenchmarkLeNetInferenceEEGate(b *testing.B) {
	m, in := benchLeNet()
	eng, err := bitserial.NewEngine(4, 512)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(in, stripesDotter{eng}); err != nil {
			b.Fatal(err)
		}
	}
}

// oeDotter routes MACs through the hybrid optical-electrical unit; the
// shared ledger makes it serial-only.
type oeDotter struct {
	u   *omac.OEUnit
	led *optsim.Ledger
}

func (o oeDotter) DotProduct(a, b []uint64) (uint64, error) {
	return o.u.DotProduct(a, b, o.led)
}

// BenchmarkLeNetInferenceOE runs every MAC through the simulated OE
// datapath (optical AND, electrical shift-accumulate). The optical
// circuit simulation dominates; the pipeline's lowering and prefetch
// still apply but the pool stays at one worker because the unit meters
// a shared energy ledger.
func BenchmarkLeNetInferenceOE(b *testing.B) {
	m, in := benchLeNet()
	unit, err := omac.NewOEUnit(omac.DefaultConfig(4, 4), 512)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		led := optsim.NewLedger()
		if _, err := m.RunContext(ctx, in, oeDotter{unit, led}, RunOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
