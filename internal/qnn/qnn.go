// Package qnn runs quantized CNN inference over any MAC implementation
// — the bridge between the functional datapaths (package omac /
// bitserial) and whole networks. A Model is a sequence of integer
// layers (conv, pool, fully-connected, requantize); Run executes every
// multiply-accumulate through the supplied Dotter, so the same model
// can execute on the electrical Stripes engine, the hybrid OE unit or
// the all-optical OO unit, and the outputs can be compared bit for bit
// against the plain-integer reference.
package qnn

import (
	"fmt"

	"pixel/internal/tensor"
)

// Dotter is the MAC abstraction a model runs on: an unsigned
// dot-product engine of fixed operand precision.
type Dotter interface {
	DotProduct(a, b []uint64) (uint64, error)
}

// ReferenceDotter computes dot products with plain integer arithmetic —
// the oracle implementation.
type ReferenceDotter struct{}

// DotProduct implements Dotter.
func (ReferenceDotter) DotProduct(a, b []uint64) (uint64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("qnn: vector lengths differ (%d vs %d)", len(a), len(b))
	}
	var acc uint64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc, nil
}

// Layer is one step of a quantized model.
type Layer interface {
	// Name labels the layer in errors.
	Name() string
	// Apply transforms the activation tensor using the Dotter for
	// every MAC.
	Apply(in *tensor.Tensor, d Dotter) (*tensor.Tensor, error)
}

// Model is a named sequence of layers with a fixed activation
// precision.
type Model struct {
	// Label names the model.
	Label string
	// ActivationBits bounds the activation values between layers;
	// Requant layers clamp to this range.
	ActivationBits int
	Layers         []Layer
}

// MaxActivation returns the largest representable activation.
func (m *Model) MaxActivation() int64 {
	return int64(1)<<uint(m.ActivationBits) - 1
}

// Run executes the model on the input through the given Dotter.
func (m *Model) Run(in *tensor.Tensor, d Dotter) (*tensor.Tensor, error) {
	if m.ActivationBits < 1 || m.ActivationBits > 16 {
		return nil, fmt.Errorf("qnn: activation bits %d out of range [1,16]", m.ActivationBits)
	}
	x := in
	var err error
	for _, l := range m.Layers {
		x, err = l.Apply(x, d)
		if err != nil {
			return nil, fmt.Errorf("qnn: %s: layer %s: %w", m.Label, l.Name(), err)
		}
	}
	return x, nil
}

// Conv is a quantized convolution layer.
type Conv struct {
	Label  string
	Kernel *tensor.Kernel
	Stride int
}

// Name implements Layer.
func (c *Conv) Name() string { return c.Label }

// Apply implements Layer: every output element is one dot product
// through the Dotter.
func (c *Conv) Apply(in *tensor.Tensor, d Dotter) (*tensor.Tensor, error) {
	k := c.Kernel
	if in.C != k.C {
		return nil, fmt.Errorf("qnn: input channels %d != kernel channels %d", in.C, k.C)
	}
	if c.Stride < 1 {
		return nil, fmt.Errorf("qnn: stride %d", c.Stride)
	}
	eh := (in.H-k.R)/c.Stride + 1
	ew := (in.W-k.R)/c.Stride + 1
	if eh < 1 || ew < 1 {
		return nil, fmt.Errorf("qnn: kernel %d too large for %dx%d input", k.R, in.H, in.W)
	}
	out := tensor.New(eh, ew, k.M)
	n := k.R * k.R * k.C
	window := make([]uint64, n)
	weights := make([]uint64, n)
	for oy := 0; oy < eh; oy++ {
		for ox := 0; ox < ew; ox++ {
			i := 0
			for ky := 0; ky < k.R; ky++ {
				for kx := 0; kx < k.R; kx++ {
					for ch := 0; ch < in.C; ch++ {
						v := in.At(oy*c.Stride+ky, ox*c.Stride+kx, ch)
						if v < 0 {
							return nil, fmt.Errorf("qnn: negative activation %d at (%d,%d,%d)", v, oy, ox, ch)
						}
						window[i] = uint64(v)
						i++
					}
				}
			}
			for mIdx := 0; mIdx < k.M; mIdx++ {
				i = 0
				for ky := 0; ky < k.R; ky++ {
					for kx := 0; kx < k.R; kx++ {
						for ch := 0; ch < in.C; ch++ {
							w := k.At(mIdx, ky, kx, ch)
							if w < 0 {
								return nil, fmt.Errorf("qnn: negative weight %d in %s", w, c.Label)
							}
							weights[i] = uint64(w)
							i++
						}
					}
				}
				acc, err := d.DotProduct(window, weights)
				if err != nil {
					return nil, err
				}
				out.Set(oy, ox, mIdx, int64(acc))
			}
		}
	}
	return out, nil
}

// MaxPool is a pooling layer (no MACs).
type MaxPool struct {
	Label  string
	Window int
}

// Name implements Layer.
func (p *MaxPool) Name() string { return p.Label }

// Apply implements Layer.
func (p *MaxPool) Apply(in *tensor.Tensor, _ Dotter) (*tensor.Tensor, error) {
	return tensor.MaxPool2D(in, p.Window)
}

// FullyConnected is a quantized dense layer.
type FullyConnected struct {
	Label   string
	Weights []int64 // row-major [out][in]
	Out     int
}

// Name implements Layer.
func (f *FullyConnected) Name() string { return f.Label }

// Apply implements Layer.
func (f *FullyConnected) Apply(in *tensor.Tensor, d Dotter) (*tensor.Tensor, error) {
	n := in.Len()
	if len(f.Weights) != n*f.Out {
		return nil, fmt.Errorf("qnn: weight matrix %d != %d x %d", len(f.Weights), f.Out, n)
	}
	xs := make([]uint64, n)
	for i, v := range in.Data {
		if v < 0 {
			return nil, fmt.Errorf("qnn: negative activation %d", v)
		}
		xs[i] = uint64(v)
	}
	ws := make([]uint64, n)
	out := tensor.New(1, 1, f.Out)
	for o := 0; o < f.Out; o++ {
		for i := 0; i < n; i++ {
			w := f.Weights[o*n+i]
			if w < 0 {
				return nil, fmt.Errorf("qnn: negative weight %d in %s", w, f.Label)
			}
			ws[i] = uint64(w)
		}
		acc, err := d.DotProduct(xs, ws)
		if err != nil {
			return nil, err
		}
		out.Set(0, 0, o, int64(acc))
	}
	return out, nil
}

// Requant rescales and clamps activations back into range between MAC
// layers (the fixed-point equivalent of the activation function stage).
type Requant struct {
	Label string
	Shift uint // divide by 2^Shift
	Max   int64
}

// Name implements Layer.
func (r *Requant) Name() string { return r.Label }

// Apply implements Layer.
func (r *Requant) Apply(in *tensor.Tensor, _ Dotter) (*tensor.Tensor, error) {
	if r.Max < 1 {
		return nil, fmt.Errorf("qnn: requant max %d", r.Max)
	}
	out := tensor.New(in.H, in.W, in.C)
	for i, v := range in.Data {
		v >>= r.Shift
		if v < 0 {
			v = 0
		}
		if v > r.Max {
			v = r.Max
		}
		out.Data[i] = v
	}
	return out, nil
}

// Flatten reshapes to a vector (no MACs).
type Flatten struct{ Label string }

// Name implements Layer.
func (f *Flatten) Name() string { return f.Label }

// Apply implements Layer.
func (f *Flatten) Apply(in *tensor.Tensor, _ Dotter) (*tensor.Tensor, error) {
	out := tensor.New(1, 1, in.Len())
	copy(out.Data, in.Data)
	return out, nil
}
