// Package qnn runs quantized CNN inference over any MAC implementation
// — the bridge between the functional datapaths (package omac /
// bitserial) and whole networks. A Model is a sequence of integer
// layers (conv, pool, fully-connected, requantize); Run executes every
// multiply-accumulate through the supplied Dotter, so the same model
// can execute on the electrical Stripes engine, the hybrid OE unit or
// the all-optical OO unit, and the outputs can be compared bit for bit
// against the plain-integer reference.
//
// The MAC layers run as a lowered pipeline: conv inputs become im2col
// patch matrices (tensor.Lower), filter weights are packed once per
// layer, and each output row is one batched dot-product call
// (BatchDotter), optionally fanned across a worker pool via
// RunContext. Every path is bit-identical to the serial per-position
// reference; see docs/INFERENCE.md.
package qnn

import (
	"context"
	"fmt"
	"sync"

	"pixel/internal/tensor"
)

// Dotter is the MAC abstraction a model runs on: an unsigned
// dot-product engine of fixed operand precision.
type Dotter interface {
	DotProduct(a, b []uint64) (uint64, error)
}

// ReferenceDotter computes dot products with plain integer arithmetic —
// the oracle implementation.
type ReferenceDotter struct{}

// DotProduct implements Dotter.
func (ReferenceDotter) DotProduct(a, b []uint64) (uint64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("qnn: vector lengths differ (%d vs %d)", len(a), len(b))
	}
	var acc uint64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc, nil
}

// Layer is one step of a quantized model.
type Layer interface {
	// Name labels the layer in errors.
	Name() string
	// Apply transforms the activation tensor using the Dotter for
	// every MAC.
	Apply(in *tensor.Tensor, d Dotter) (*tensor.Tensor, error)
}

// Model is a named sequence of layers with a fixed activation
// precision.
type Model struct {
	// Label names the model.
	Label string
	// ActivationBits bounds the activation values between layers;
	// Requant layers clamp to this range.
	ActivationBits int
	Layers         []Layer
}

// MaxActivation returns the largest representable activation.
func (m *Model) MaxActivation() int64 {
	return int64(1)<<uint(m.ActivationBits) - 1
}

// RunOptions tunes one RunContext call.
type RunOptions struct {
	// Workers is the worker-pool width the MAC layers fan their output
	// rows (conv) and output neurons (fully-connected) across; <= 0
	// means GOMAXPROCS, 1 is serial. Workers > 1 requires a Dotter
	// that is safe for concurrent use (ReferenceDotter and the
	// word-level bitserial.FastEngine are; the optical units metering
	// a shared optsim.Ledger are not). Output placement is
	// deterministic, so any worker count produces bit-identical
	// results.
	Workers int
	// Arena, when non-nil, supplies and recycles the inter-layer
	// activation tensors of RunBatch, so steady-state batches reuse
	// prior batches' storage instead of allocating. The batch's output
	// tensors come from it too: callers that recycle them (Put after
	// consuming) must do so only after the results are fully copied
	// out. Nil means RunBatch uses a private arena (tensors are still
	// recycled between layers within the batch). An Arena is not safe
	// for concurrent use — concurrent RunBatch calls need separate
	// arenas (pool whole arenas, as pixel.Infer does).
	Arena *tensor.Arena
}

// ctxLayer is the optional layer interface the parallel pipeline uses:
// layers that can fan work across a pool implement it, and plain
// layers keep the serial Apply path.
type ctxLayer interface {
	applyCtx(ctx context.Context, in *tensor.Tensor, d Dotter, workers int) (*tensor.Tensor, error)
}

// Run executes the model on the input through the given Dotter,
// serially — safe for any Dotter. Use RunContext to run the MAC layers
// across a worker pool.
func (m *Model) Run(in *tensor.Tensor, d Dotter) (*tensor.Tensor, error) {
	return m.RunContext(context.Background(), in, d, RunOptions{Workers: 1})
}

// RunContext executes the model with cancellation and a configurable
// worker pool. Results are bit-identical to Run for every worker
// count.
func (m *Model) RunContext(ctx context.Context, in *tensor.Tensor, d Dotter, opts RunOptions) (*tensor.Tensor, error) {
	if m.ActivationBits < 1 || m.ActivationBits > 16 {
		return nil, fmt.Errorf("qnn: activation bits %d out of range [1,16]", m.ActivationBits)
	}
	x := in
	var err error
	for _, l := range m.Layers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cl, ok := l.(ctxLayer); ok {
			x, err = cl.applyCtx(ctx, x, d, opts.Workers)
		} else {
			x, err = l.Apply(x, d)
		}
		if err != nil {
			return nil, fmt.Errorf("qnn: %s: layer %s: %w", m.Label, l.Name(), err)
		}
	}
	return x, nil
}

// Conv is a quantized convolution layer.
type Conv struct {
	Label  string
	Kernel *tensor.Kernel
	Stride int
	// Pad is the zero padding on every side, wired through the im2col
	// lowering (parity with tensor.Conv2D); padded positions
	// contribute zero activations.
	Pad int

	// packOnce caches the engine-operand form of the kernel weights
	// the first time the layer runs (packedFilters); the kernel must
	// not be mutated afterwards.
	packOnce sync.Once
	packed   [][]uint64
	packErr  error
}

// Name implements Layer.
func (c *Conv) Name() string { return c.Label }

// Apply implements Layer, serially. The input is lowered to an im2col
// patch matrix once, each filter's weights are packed once per layer
// (instead of once per output position), and every output row is one
// batched dot-product call.
func (c *Conv) Apply(in *tensor.Tensor, d Dotter) (*tensor.Tensor, error) {
	return c.applyCtx(context.Background(), in, d, 1)
}

// applyCtx implements ctxLayer: output rows fan across the worker
// pool, with each worker writing disjoint rows of the output tensor so
// the result is bit-identical to the serial pass.
func (c *Conv) applyCtx(ctx context.Context, in *tensor.Tensor, d Dotter, workers int) (*tensor.Tensor, error) {
	k := c.Kernel
	if in.C != k.C {
		return nil, fmt.Errorf("qnn: input channels %d != kernel channels %d", in.C, k.C)
	}
	if c.Stride < 1 {
		return nil, fmt.Errorf("qnn: stride %d", c.Stride)
	}
	if c.Pad < 0 {
		return nil, fmt.Errorf("qnn: pad %d", c.Pad)
	}
	eh := (in.H+2*c.Pad-k.R)/c.Stride + 1
	ew := (in.W+2*c.Pad-k.R)/c.Stride + 1
	if eh < 1 || ew < 1 {
		return nil, fmt.Errorf("qnn: kernel %d too large for %dx%d input with pad %d", k.R, in.H, in.W, c.Pad)
	}
	for i, v := range in.Data {
		if v < 0 {
			return nil, fmt.Errorf("qnn: negative activation %d at (%d,%d,%d)",
				v, i/(in.W*in.C), (i/in.C)%in.W, i%in.C)
		}
	}

	p, err := tensor.Lower(in, k.R, c.Stride, c.Pad)
	if err != nil {
		return nil, fmt.Errorf("qnn: %s: %w", c.Label, err)
	}
	// One backing allocation for every window; activations were
	// validated non-negative above and padding contributes zeros.
	wbuf := make([]uint64, p.Rows*p.Cols)
	windows := make([][]uint64, p.Rows)
	for i := range windows {
		dst := wbuf[i*p.Cols : (i+1)*p.Cols : (i+1)*p.Cols]
		for j, v := range p.Row(i) {
			dst[j] = uint64(v)
		}
		windows[i] = dst
	}
	// The engine-operand filter weights, packed once per process and
	// cached on the layer.
	filters, err := c.packedFilters()
	if err != nil {
		return nil, err
	}

	out := tensor.New(p.EH, p.EW, k.M)
	workers = clampWorkers(workers, p.EH)
	scratch := make([]uint64, workers*p.EW)
	err = parallelFor(ctx, p.EH, workers, func(worker, oy int) error {
		rowOut := scratch[worker*p.EW : (worker+1)*p.EW]
		rowWins := windows[oy*p.EW : (oy+1)*p.EW]
		for m := 0; m < k.M; m++ {
			if err := dotBatch(d, rowWins, filters[m], rowOut); err != nil {
				return err
			}
			base := oy * p.EW * k.M
			for ox := 0; ox < p.EW; ox++ {
				out.Data[base+ox*k.M+m] = int64(rowOut[ox])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MaxPool is a pooling layer (no MACs).
type MaxPool struct {
	Label  string
	Window int
}

// Name implements Layer.
func (p *MaxPool) Name() string { return p.Label }

// Apply implements Layer.
func (p *MaxPool) Apply(in *tensor.Tensor, _ Dotter) (*tensor.Tensor, error) {
	return tensor.MaxPool2D(in, p.Window)
}

// FullyConnected is a quantized dense layer.
type FullyConnected struct {
	Label   string
	Weights []int64 // row-major [out][in]
	Out     int

	// packOnce caches the engine-operand form of the weight matrix the
	// first time the layer runs (packedWeights); the weights must not
	// be mutated afterwards.
	packOnce sync.Once
	packed   [][]uint64
	packErr  error
}

// Name implements Layer.
func (f *FullyConnected) Name() string { return f.Label }

// Apply implements Layer, serially.
func (f *FullyConnected) Apply(in *tensor.Tensor, d Dotter) (*tensor.Tensor, error) {
	return f.applyCtx(context.Background(), in, d, 1)
}

// applyCtx implements ctxLayer: the whole weight matrix is packed once
// up front and output neurons fan across the worker pool, each writing
// its own slot.
func (f *FullyConnected) applyCtx(ctx context.Context, in *tensor.Tensor, d Dotter, workers int) (*tensor.Tensor, error) {
	n := in.Len()
	if f.Out < 1 {
		return nil, fmt.Errorf("qnn: output size %d", f.Out)
	}
	if len(f.Weights) != n*f.Out {
		return nil, fmt.Errorf("qnn: weight matrix %d != %d x %d", len(f.Weights), f.Out, n)
	}
	xs := make([]uint64, n)
	for i, v := range in.Data {
		if v < 0 {
			return nil, fmt.Errorf("qnn: negative activation %d", v)
		}
		xs[i] = uint64(v)
	}
	ws, err := f.packedWeights()
	if err != nil {
		return nil, err
	}
	out := tensor.New(1, 1, f.Out)
	err = parallelFor(ctx, f.Out, workers, func(_, o int) error {
		acc, err := d.DotProduct(xs, ws[o])
		if err != nil {
			return err
		}
		out.Data[o] = int64(acc)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Requant rescales and clamps activations back into range between MAC
// layers (the fixed-point equivalent of the activation function stage).
type Requant struct {
	Label string
	Shift uint // divide by 2^Shift
	Max   int64
}

// Name implements Layer.
func (r *Requant) Name() string { return r.Label }

// Apply implements Layer.
func (r *Requant) Apply(in *tensor.Tensor, _ Dotter) (*tensor.Tensor, error) {
	if r.Max < 1 {
		return nil, fmt.Errorf("qnn: requant max %d", r.Max)
	}
	out := tensor.New(in.H, in.W, in.C)
	for i, v := range in.Data {
		v >>= r.Shift
		if v < 0 {
			v = 0
		}
		if v > r.Max {
			v = r.Max
		}
		out.Data[i] = v
	}
	return out, nil
}

// Flatten reshapes to a vector (no MACs).
type Flatten struct{ Label string }

// Name implements Layer.
func (f *Flatten) Name() string { return f.Label }

// Apply implements Layer.
func (f *Flatten) Apply(in *tensor.Tensor, _ Dotter) (*tensor.Tensor, error) {
	out := tensor.New(1, 1, in.Len())
	copy(out.Data, in.Data)
	return out, nil
}
