package qnn

import (
	"math/rand"
	"testing"

	"pixel/internal/bitserial"
	"pixel/internal/omac"
	"pixel/internal/optsim"
	"pixel/internal/tensor"
)

// stripesDotter adapts the bit-serial engine to the Dotter interface.
type stripesDotter struct{ e *bitserial.Engine }

func (s stripesDotter) DotProduct(a, b []uint64) (uint64, error) {
	v, _, err := s.e.DotProduct(a, b)
	return v, err
}

// ooDotter adapts the all-optical unit.
type ooDotter struct {
	u   *omac.OOUnit
	led *optsim.Ledger
}

func (o ooDotter) DotProduct(a, b []uint64) (uint64, error) {
	return o.u.DotProduct(a, b, o.led)
}

// tinyModel builds a small conv->pool->requant->flatten->fc model with
// deterministic pseudo-random weights in [0, 2^bits).
func tinyModel(bits int, rng *rand.Rand) *Model {
	maxW := int64(1)<<uint(bits) - 1
	k := tensor.NewKernel(3, 3, 1)
	for i := range k.Data {
		k.Data[i] = rng.Int63n(maxW + 1)
	}
	fcIn := 2 * 2 * 3
	fcW := make([]int64, fcIn*4)
	for i := range fcW {
		fcW[i] = rng.Int63n(maxW + 1)
	}
	return &Model{
		Label:          "tiny",
		ActivationBits: bits,
		Layers: []Layer{
			&Conv{Label: "conv1", Kernel: k, Stride: 1},
			&Requant{Label: "rq1", Shift: 4, Max: maxW},
			&MaxPool{Label: "pool1", Window: 2},
			&Flatten{Label: "flat"},
			&FullyConnected{Label: "fc", Weights: fcW, Out: 4},
		},
	}
}

func tinyInput(bits int, rng *rand.Rand) *tensor.Tensor {
	in := tensor.New(6, 6, 1)
	maxV := int64(1)<<uint(bits) - 1
	for i := range in.Data {
		in.Data[i] = rng.Int63n(maxV + 1)
	}
	return in
}

func TestReferenceDotter(t *testing.T) {
	var d ReferenceDotter
	got, err := d.DotProduct([]uint64{1, 2, 3}, []uint64{4, 5, 6})
	if err != nil || got != 32 {
		t.Errorf("dot = %d, %v", got, err)
	}
	if _, err := d.DotProduct([]uint64{1}, []uint64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestModelRunsOnReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tinyModel(4, rng)
	in := tinyInput(4, rng)
	out, err := m.Run(in, ReferenceDotter{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("output len = %d", out.Len())
	}
}

func TestStripesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := tinyModel(4, rng)
	in := tinyInput(4, rng)
	ref, err := m.Run(in, ReferenceDotter{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := bitserial.NewEngine(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Run(in, stripesDotter{eng})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("stripes output[%d] = %d, reference %d", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestOpticalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := tinyModel(4, rng)
	in := tinyInput(4, rng)
	ref, err := m.Run(in, ReferenceDotter{})
	if err != nil {
		t.Fatal(err)
	}
	unit, err := omac.NewOOUnit(omac.DefaultConfig(4, 4), 64)
	if err != nil {
		t.Fatal(err)
	}
	led := optsim.NewLedger()
	got, err := m.Run(in, ooDotter{unit, led})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("optical output[%d] = %d, reference %d", i, got.Data[i], ref.Data[i])
		}
	}
	if led.Energy(optsim.CatMul) <= 0 {
		t.Error("optical inference should meter energy")
	}
}

func TestModelValidation(t *testing.T) {
	m := &Model{Label: "bad", ActivationBits: 0}
	if _, err := m.Run(tensor.New(1, 1, 1), ReferenceDotter{}); err == nil {
		t.Error("activation bits 0 should error")
	}
}

func TestConvValidation(t *testing.T) {
	k := tensor.NewKernel(1, 3, 2)
	c := &Conv{Label: "c", Kernel: k, Stride: 1}
	if _, err := c.Apply(tensor.New(4, 4, 1), ReferenceDotter{}); err == nil {
		t.Error("channel mismatch should error")
	}
	c2 := &Conv{Label: "c2", Kernel: tensor.NewKernel(1, 3, 1), Stride: 0}
	if _, err := c2.Apply(tensor.New(4, 4, 1), ReferenceDotter{}); err == nil {
		t.Error("zero stride should error")
	}
	neg := tensor.New(4, 4, 1)
	neg.Data[0] = -1
	c3 := &Conv{Label: "c3", Kernel: tensor.NewKernel(1, 3, 1), Stride: 1}
	if _, err := c3.Apply(neg, ReferenceDotter{}); err == nil {
		t.Error("negative activation should error")
	}
	badK := tensor.NewKernel(1, 3, 1)
	badK.Data[0] = -1
	c4 := &Conv{Label: "c4", Kernel: badK, Stride: 1}
	if _, err := c4.Apply(tensor.New(4, 4, 1), ReferenceDotter{}); err == nil {
		t.Error("negative weight should error")
	}
}

func TestFullyConnectedValidation(t *testing.T) {
	fc := &FullyConnected{Label: "fc", Weights: []int64{1, 2, 3}, Out: 2}
	if _, err := fc.Apply(tensor.New(1, 1, 2), ReferenceDotter{}); err == nil {
		t.Error("weight shape mismatch should error")
	}
}

func TestRequantClampsAndShifts(t *testing.T) {
	r := &Requant{Label: "rq", Shift: 2, Max: 15}
	in := tensor.NewVector([]int64{64, 3, 100, -8})
	out, err := r.Apply(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{15, 0, 15, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("requant[%d] = %d, want %d", i, out.Data[i], want[i])
		}
	}
	bad := &Requant{Label: "bad", Max: 0}
	if _, err := bad.Apply(in, nil); err == nil {
		t.Error("max 0 should error")
	}
}

func TestFlattenPreservesValues(t *testing.T) {
	in := tensor.New(2, 2, 1)
	for i := range in.Data {
		in.Data[i] = int64(i * 3)
	}
	f := &Flatten{Label: "f"}
	out, err := f.Apply(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 1 || out.W != 1 || out.C != 4 {
		t.Errorf("flatten shape %dx%dx%d", out.H, out.W, out.C)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Error("flatten changed values")
		}
	}
}
