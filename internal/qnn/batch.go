package qnn

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchDotter is the layer-level MAC abstraction: one packed weight
// vector evaluated against many activation windows in a single call.
// Engines that can amortize per-call overhead (or batch in hardware,
// as the photonic PE does across its wavelength lanes) implement it;
// plain Dotter implementations are adapted via dotBatch.
type BatchDotter interface {
	Dotter
	// DotProducts writes the dot product of each window against
	// weights into out[i]. len(out) must equal len(windows).
	DotProducts(windows [][]uint64, weights []uint64, out []uint64) error
}

// DotProducts implements BatchDotter with a single validated pass —
// the batched form of the oracle avoids one interface dispatch and one
// length check per window.
func (ReferenceDotter) DotProducts(windows [][]uint64, weights []uint64, out []uint64) error {
	if len(out) != len(windows) {
		return fmt.Errorf("qnn: out length %d != %d windows", len(out), len(windows))
	}
	for i, w := range windows {
		if len(w) != len(weights) {
			return fmt.Errorf("qnn: vector lengths differ (%d vs %d)", len(w), len(weights))
		}
		ws := weights[:len(w)] // elide the bounds check in the MAC loop
		var acc uint64
		for j, v := range w {
			acc += v * ws[j]
		}
		out[i] = acc
	}
	return nil
}

// MultiDotter is the layer-against-batch MAC abstraction: every filter
// of a layer evaluated against every window of a batch in one call, so
// the engine can hoist per-batch setup (transposes, validation) across
// the whole filter sweep. bitserial.BatchedStripes implements it;
// everything else is adapted via dotMulti.
type MultiDotter interface {
	BatchDotter
	// DotProductsMulti writes windows[w] · filters[f] into outs[f][w].
	// len(outs) must equal len(filters) and each row must have
	// len(windows) slots.
	DotProductsMulti(windows [][]uint64, filters [][]uint64, outs [][]uint64) error
}

// dotMulti evaluates every filter against every window, through the
// engine's multi-filter entry point when it has one and per-filter
// dotBatch sweeps otherwise.
func dotMulti(d Dotter, windows [][]uint64, filters [][]uint64, outs [][]uint64) error {
	if md, ok := d.(MultiDotter); ok {
		return md.DotProductsMulti(windows, filters, outs)
	}
	if len(outs) != len(filters) {
		return fmt.Errorf("qnn: %d output rows != %d filters", len(outs), len(filters))
	}
	for f := range filters {
		if err := dotBatch(d, windows, filters[f], outs[f]); err != nil {
			return err
		}
	}
	return nil
}

// dotBatch evaluates weights against every window, through the
// engine's batched entry point when it has one and per-window
// DotProduct calls otherwise.
func dotBatch(d Dotter, windows [][]uint64, weights []uint64, out []uint64) error {
	if bd, ok := d.(BatchDotter); ok {
		return bd.DotProducts(windows, weights, out)
	}
	if len(out) != len(windows) {
		return fmt.Errorf("qnn: out length %d != %d windows", len(out), len(windows))
	}
	for i, w := range windows {
		v, err := d.DotProduct(w, weights)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// clampWorkers resolves a requested pool width against n work items:
// <= 0 means GOMAXPROCS, and the pool never exceeds the work count.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelFor runs fn(worker, i) for every i in [0, n) across a worker
// pool, following the internal/sweep idiom: an atomic work counter, a
// cancel on first failure, and per-index error slots so the reported
// error is deterministic (the lowest failing index, exactly what a
// serial loop would have hit first). workers <= 0 means GOMAXPROCS;
// the worker argument lets callers reuse per-worker scratch buffers.
func parallelFor(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = clampWorkers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := runCtx.Err(); err != nil {
					errs[i] = err
					return
				}
				if err := fn(worker, i); err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	// Report the first real failure in index order; collateral
	// cancellations of in-flight indices lose to it.
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return err
	}
	return cancelled
}
