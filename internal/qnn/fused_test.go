package qnn

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pixel/internal/bitserial"
	"pixel/internal/tensor"
)

// plusOne is a deliberately batch-unaware layer: it forces the
// per-image Apply fallback between fused stages, so the plan mixes
// owned arena tensors with plain heap tensors.
type plusOne struct{ max int64 }

func (plusOne) Name() string { return "plusone" }
func (p plusOne) Apply(in *tensor.Tensor, _ Dotter) (*tensor.Tensor, error) {
	out := tensor.New(in.H, in.W, in.C)
	for i, v := range in.Data {
		v++
		if v > p.max {
			v = p.max
		}
		out.Data[i] = v
	}
	return out, nil
}

// fusedCase is one randomly shaped pipeline exercising a specific
// fusion pattern of the batched plan.
type fusedCase struct {
	name    string
	model   *Model
	h, w, c int
}

// buildFusedCases assembles pipelines covering every stage shape the
// planner can produce: fully fused Conv→Requant→MaxPool, the partial
// fusions (conv+rq, conv+pool), standalone Requant / MaxPool / Flatten
// stages (fed by a fallback layer so they see borrowed and owned
// tensors both), double requant, and FC with and without a fused
// requant.
func buildFusedCases(rng *rand.Rand, maxAct int64) []fusedCase {
	conv := func(label string, m, r, c int) *Conv {
		k := tensor.NewKernel(m, r, c)
		for i := range k.Data {
			k.Data[i] = rng.Int63n(maxAct + 1)
		}
		return &Conv{Label: label, Kernel: k, Stride: 1, Pad: rng.Intn(2)}
	}
	fc := func(label string, in, out int) *FullyConnected {
		ws := make([]int64, in*out)
		for i := range ws {
			ws[i] = rng.Int63n(maxAct + 1)
		}
		return &FullyConnected{Label: label, Weights: ws, Out: out}
	}
	rq := func(label string) *Requant {
		return &Requant{Label: label, Shift: uint(3 + rng.Intn(4)), Max: maxAct}
	}

	cases := []fusedCase{}
	// Fully fused: conv+rq+pool twice, flatten, fc+rq, fc.
	{
		c1 := conv("c1", 4, 3, 2) // 8x8 -> 8x8 (pad 1 so both pools tile)
		c1.Pad = 1
		eh := 8 + 2*c1.Pad - 2
		c2 := conv("c2", 3, 3, 4) // on pooled eh/2
		e2 := eh/2 + 2*c2.Pad - 2
		flatLen := (e2 / 2) * (e2 / 2) * 3
		cases = append(cases, fusedCase{
			name: "conv_rq_pool_x2_fc_rq",
			model: &Model{Label: "f1", ActivationBits: 4, Layers: []Layer{
				c1, rq("r1"), &MaxPool{Label: "p1", Window: 2},
				c2, rq("r2"), &MaxPool{Label: "p2", Window: 2},
				&Flatten{Label: "fl"},
				fc("fc1", flatLen, 6), rq("r3"),
				fc("fc2", 6, 5),
			}},
			h: 8, w: 8, c: 2,
		})
	}
	// Partial fusions and standalone element stages: conv+pool (no rq),
	// standalone rq on an owned tensor, fallback layer forcing borrowed
	// rq/pool/flatten paths, double requant.
	{
		c1 := conv("c1", 2, 3, 1) // pad p: 6x6 -> (4+2p)x(4+2p)
		eh := 6 + 2*c1.Pad - 2
		if eh%2 != 0 {
			c1.Pad = 1 - c1.Pad
			eh = 6 + 2*c1.Pad - 2
		}
		flatLen := (eh / 2) * (eh / 2) * 2
		cases = append(cases, fusedCase{
			name: "conv_pool_standalone_rq",
			model: &Model{Label: "f2", ActivationBits: 4, Layers: []Layer{
				c1, &MaxPool{Label: "p1", Window: 2},
				rq("r1"), rq("r2"),
				plusOne{max: 15},
				&Flatten{Label: "fl"},
				fc("fc1", flatLen, 4),
				rq("r3"),
			}},
			h: 6, w: 6, c: 1,
		})
	}
	// Fallback layer first, so every batched stage sees borrowed-like
	// fresh tensors; pool without a preceding MAC stage.
	{
		cases = append(cases, fusedCase{
			name: "borrowed_rq_pool_flatten",
			model: &Model{Label: "f3", ActivationBits: 4, Layers: []Layer{
				rq("r0"), // borrowed inputs: must not be mutated
				&MaxPool{Label: "p0", Window: 2},
				&Flatten{Label: "fl"},
				fc("fc1", 2*2*3, 7), rq("r1"),
			}},
			h: 4, w: 4, c: 3,
		})
	}
	return cases
}

// TestFusedBatchEquivalence is the fusion acceptance property: for
// random pipelines covering every fused and standalone stage shape,
// RunBatch (fused epilogues, arena recycling) is bit-identical to the
// unfused per-image chain — sequential RunContext calls running each
// layer standalone — for every engine tier and worker count, and the
// caller's input tensors come back untouched. The CI race leg runs
// this with -race, so the multi-worker cases double as a data-race
// probe over the shared arena coordination.
func TestFusedBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const maxAct = 15

	be, err := bitserial.NewBatchedStripes(4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	fe := be.Fast()
	engines := []struct {
		name string
		d    Dotter
	}{
		{"reference", ReferenceDotter{}},
		{"fast", fastDotter{fe}},
		{"batched", multiDotter{be}},
	}

	for _, tc := range buildFusedCases(rng, maxAct) {
		for _, batch := range []int{1, 3, 5} {
			ins := make([]*tensor.Tensor, batch)
			snapshot := make([][]int64, batch)
			for b := range ins {
				in := tensor.New(tc.h, tc.w, tc.c)
				for i := range in.Data {
					in.Data[i] = rng.Int63n(maxAct + 1)
				}
				ins[b] = in
				snapshot[b] = append([]int64(nil), in.Data...)
			}
			// The unfused reference: each image through the serial
			// per-layer chain.
			want := make([]*tensor.Tensor, batch)
			for b := range ins {
				out, err := tc.model.RunContext(context.Background(), ins[b], ReferenceDotter{}, RunOptions{Workers: 1})
				if err != nil {
					t.Fatalf("%s: reference: %v", tc.name, err)
				}
				want[b] = out
			}
			for _, eng := range engines {
				for _, workers := range []int{1, 2, 4, 0} {
					name := fmt.Sprintf("%s/B%d/%s/workers%d", tc.name, batch, eng.name, workers)
					t.Run(name, func(t *testing.T) {
						arena := tensor.NewArena()
						got, err := tc.model.RunBatch(context.Background(), ins, eng.d,
							RunOptions{Workers: workers, Arena: arena})
						if err != nil {
							t.Fatal(err)
						}
						for b := range got {
							if got[b].H != want[b].H || got[b].W != want[b].W || got[b].C != want[b].C {
								t.Fatalf("input %d: shape %dx%dx%d, want %dx%dx%d",
									b, got[b].H, got[b].W, got[b].C, want[b].H, want[b].W, want[b].C)
							}
							for i, v := range got[b].Data {
								if v != want[b].Data[i] {
									t.Fatalf("input %d element %d: %d != %d", b, i, v, want[b].Data[i])
								}
							}
						}
						for b := range ins {
							for i, v := range ins[b].Data {
								if v != snapshot[b][i] {
									t.Fatalf("caller input %d mutated at %d: %d != %d", b, i, v, snapshot[b][i])
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestFusedBatchErrors pins the failure surface of fused stages: the
// error names the layer actually at fault, whether it is the MAC head
// or a fused epilogue layer.
func TestFusedBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := tensor.NewKernel(2, 3, 1)
	for i := range k.Data {
		k.Data[i] = rng.Int63n(4)
	}
	ctx := context.Background()
	in := tensor.New(6, 6, 1)

	// Fused requant with a bad clamp blames the requant layer.
	m := &Model{Label: "m", ActivationBits: 4, Layers: []Layer{
		&Conv{Label: "c", Kernel: k, Stride: 1},
		&Requant{Label: "badrq", Shift: 2, Max: 0},
	}}
	_, err := m.RunBatch(ctx, []*tensor.Tensor{in}, ReferenceDotter{}, RunOptions{})
	if err == nil || !contains(err.Error(), "layer badrq") {
		t.Fatalf("fused requant error = %v, want layer badrq blamed", err)
	}

	// Fused pool that does not tile the conv output blames the pool.
	m = &Model{Label: "m", ActivationBits: 4, Layers: []Layer{
		&Conv{Label: "c", Kernel: k, Stride: 1}, // 6x6 -> 4x4
		&Requant{Label: "rq", Shift: 2, Max: 15},
		&MaxPool{Label: "badpool", Window: 3},
	}}
	_, err = m.RunBatch(ctx, []*tensor.Tensor{in}, ReferenceDotter{}, RunOptions{})
	if err == nil || !contains(err.Error(), "layer badpool") || !contains(err.Error(), "does not tile") {
		t.Fatalf("fused pool error = %v, want layer badpool blamed", err)
	}

	// A standalone pool that does not tile reports the same way.
	m = &Model{Label: "m", ActivationBits: 4, Layers: []Layer{
		&MaxPool{Label: "solopool", Window: 4},
	}}
	_, err = m.RunBatch(ctx, []*tensor.Tensor{in}, ReferenceDotter{}, RunOptions{})
	if err == nil || !contains(err.Error(), "layer solopool") || !contains(err.Error(), "does not tile") {
		t.Fatalf("standalone pool error = %v, want layer solopool blamed", err)
	}
}
