package qnn

import (
	"math/rand"

	"pixel/internal/tensor"
)

// DemoLeNet builds the padded LeNet-5-shaped quantized model (with a
// matching 20x20 input) that anchors the repo's end-to-end correctness
// claims: the four-path golden test (serial reference, parallel
// reference, fast Stripes, gate-model Stripes) runs it, and the
// Monte-Carlo variation engine perturbs it. Weights and input are
// drawn from rng, so a fixed seed names a fixed network; activations
// are 4-bit and no dot product exceeds DemoLeNetTerms elements.
func DemoLeNet(rng *rand.Rand) (*Model, *tensor.Tensor) {
	maxV := int64(15)
	k1 := tensor.NewKernel(6, 5, 1)
	for i := range k1.Data {
		k1.Data[i] = rng.Int63n(maxV + 1)
	}
	k2 := tensor.NewKernel(16, 5, 6)
	for i := range k2.Data {
		k2.Data[i] = rng.Int63n(maxV + 1)
	}
	fc1 := make([]int64, 4*4*16*40)
	for i := range fc1 {
		fc1[i] = rng.Int63n(maxV + 1)
	}
	fc2 := make([]int64, 40*10)
	for i := range fc2 {
		fc2[i] = rng.Int63n(maxV + 1)
	}
	m := &Model{
		Label:          "lenet-20",
		ActivationBits: 4,
		Layers: []Layer{
			&Conv{Label: "conv1", Kernel: k1, Stride: 1, Pad: 2}, // 20x20x1 -> 20x20x6
			&Requant{Label: "rq1", Shift: 8, Max: maxV},
			&MaxPool{Label: "pool1", Window: 2},                  // -> 10x10x6
			&Conv{Label: "conv2", Kernel: k2, Stride: 1, Pad: 1}, // -> 8x8x16
			&Requant{Label: "rq2", Shift: 10, Max: maxV},
			&MaxPool{Label: "pool2", Window: 2}, // -> 4x4x16
			&Flatten{Label: "flat"},
			&FullyConnected{Label: "fc1", Weights: fc1, Out: 40},
			&Requant{Label: "rq3", Shift: 10, Max: maxV},
			&FullyConnected{Label: "fc2", Weights: fc2, Out: 10},
		},
	}
	in := tensor.New(20, 20, 1)
	for i := range in.Data {
		in.Data[i] = rng.Int63n(maxV + 1)
	}
	return m, in
}

// DemoLeNetBits is DemoLeNet's operand precision: activations and
// weights both fit 4 bits.
const DemoLeNetBits = 4

// DemoLeNetTerms bounds the longest dot product in DemoLeNet (fc1's
// 256-element rows), for sizing bit-serial accumulators.
const DemoLeNetTerms = 512
