package qnn

import (
	"context"
	"fmt"
	"sync"

	"pixel/internal/tensor"
)

// batchLayer is the optional layer interface the batched pipeline uses:
// MAC layers that can amortize per-layer work (weight packing, im2col
// scratch) across a whole batch of inputs implement it; other layers
// run their serial Apply per input.
type batchLayer interface {
	applyBatch(ctx context.Context, ins []*tensor.Tensor, d Dotter, workers int) ([]*tensor.Tensor, error)
}

// RunBatch executes the model on a batch of same-shape inputs,
// bit-identical to len(ins) sequential RunContext calls at any worker
// count. Conv layers pack filter weights once for the whole batch and
// fan per-image im2col + MAC work across the pool; fully-connected
// layers pack the weight matrix once and sweep it against all inputs
// word-parallel. Per-image scratch (im2col patch matrices, operand
// buffers) comes from a shared pool, so steady-state batches do not
// allocate on the MAC hot path.
func (m *Model) RunBatch(ctx context.Context, ins []*tensor.Tensor, d Dotter, opts RunOptions) ([]*tensor.Tensor, error) {
	if m.ActivationBits < 1 || m.ActivationBits > 16 {
		return nil, fmt.Errorf("qnn: activation bits %d out of range [1,16]", m.ActivationBits)
	}
	if len(ins) == 0 {
		return nil, fmt.Errorf("qnn: empty batch")
	}
	for b, in := range ins {
		if in == nil {
			return nil, fmt.Errorf("qnn: batch input %d is nil", b)
		}
		if in.H != ins[0].H || in.W != ins[0].W || in.C != ins[0].C {
			return nil, fmt.Errorf("qnn: batch input %d shape %dx%dx%d != %dx%dx%d",
				b, in.H, in.W, in.C, ins[0].H, ins[0].W, ins[0].C)
		}
	}
	xs := make([]*tensor.Tensor, len(ins))
	copy(xs, ins)
	var err error
	for _, l := range m.Layers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if bl, ok := l.(batchLayer); ok {
			xs, err = bl.applyBatch(ctx, xs, d, opts.Workers)
		} else {
			for b := range xs {
				xs[b], err = l.Apply(xs[b], d)
				if err != nil {
					err = fmt.Errorf("input %d: %w", b, err)
					break
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("qnn: %s: layer %s: %w", m.Label, l.Name(), err)
		}
	}
	return xs, nil
}

// runScratch is the pooled per-image (conv) / per-call (fc) working
// set: the im2col patch matrix, the activation operands as engine
// words, window headers into them, and the engine's output rows.
type runScratch struct {
	pm      tensor.PatchMatrix
	u64     []uint64
	windows [][]uint64
	out     []uint64
	outHdrs [][]uint64
}

var runScratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// growRows carves flat (cap-grown to rows*cols) into per-row headers
// in hdrs, returning the header slice; both backing stores live in the
// pooled scratch, so steady-state calls reuse them.
func growRows(flat *[]uint64, hdrs *[][]uint64, rows, cols int) [][]uint64 {
	if cap(*flat) < rows*cols {
		*flat = make([]uint64, rows*cols)
	}
	*flat = (*flat)[:rows*cols]
	if cap(*hdrs) < rows {
		*hdrs = make([][]uint64, rows)
	}
	*hdrs = (*hdrs)[:rows]
	for i := range *hdrs {
		(*hdrs)[i] = (*flat)[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return *hdrs
}

// packFilters converts a layer's weight matrix to engine operands once
// per batch, validating non-negativity — the per-layer packing every
// image in the batch reuses.
func packFilters(weights []int64, rows, cols int, label string) ([][]uint64, error) {
	flat := make([]uint64, rows*cols)
	hdrs := make([][]uint64, rows)
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("qnn: negative weight %d in %s", w, label)
		}
		flat[i] = uint64(w)
	}
	for m := range hdrs {
		hdrs[m] = flat[m*cols : (m+1)*cols : (m+1)*cols]
	}
	return hdrs, nil
}

// applyBatch implements batchLayer for Conv: filters are packed once
// for the whole batch, then each input's im2col lowering and filter
// sweep is one work item on the pool, running on pooled scratch and
// writing its own output tensor — bit-identical to per-image applyCtx.
func (c *Conv) applyBatch(ctx context.Context, ins []*tensor.Tensor, d Dotter, workers int) ([]*tensor.Tensor, error) {
	k := c.Kernel
	in0 := ins[0]
	if in0.C != k.C {
		return nil, fmt.Errorf("qnn: input channels %d != kernel channels %d", in0.C, k.C)
	}
	if c.Stride < 1 {
		return nil, fmt.Errorf("qnn: stride %d", c.Stride)
	}
	if c.Pad < 0 {
		return nil, fmt.Errorf("qnn: pad %d", c.Pad)
	}
	eh := (in0.H+2*c.Pad-k.R)/c.Stride + 1
	ew := (in0.W+2*c.Pad-k.R)/c.Stride + 1
	if eh < 1 || ew < 1 {
		return nil, fmt.Errorf("qnn: kernel %d too large for %dx%d input with pad %d", k.R, in0.H, in0.W, c.Pad)
	}
	cols := k.R * k.R * k.C
	filters, err := packFilters(k.Data, k.M, cols, c.Label)
	if err != nil {
		return nil, err
	}

	outs := make([]*tensor.Tensor, len(ins))
	err = parallelFor(ctx, len(ins), workers, func(_, b int) error {
		in := ins[b]
		for i, v := range in.Data {
			if v < 0 {
				return fmt.Errorf("qnn: input %d: negative activation %d at (%d,%d,%d)",
					b, v, i/(in.W*in.C), (i/in.C)%in.W, i%in.C)
			}
		}
		sc := runScratchPool.Get().(*runScratch)
		defer runScratchPool.Put(sc)
		if err := tensor.LowerInto(&sc.pm, in, k.R, c.Stride, c.Pad); err != nil {
			return fmt.Errorf("qnn: input %d: %w", b, err)
		}
		p := &sc.pm
		windows := growRows(&sc.u64, &sc.windows, p.Rows, p.Cols)
		for i, v := range p.Data {
			sc.u64[i] = uint64(v)
		}
		outRows := growRows(&sc.out, &sc.outHdrs, k.M, p.Rows)
		if err := dotMulti(d, windows, filters, outRows); err != nil {
			return fmt.Errorf("input %d: %w", b, err)
		}
		out := tensor.New(p.EH, p.EW, k.M)
		for m := 0; m < k.M; m++ {
			row := outRows[m]
			for pos, v := range row {
				out.Data[pos*k.M+m] = int64(v)
			}
		}
		outs[b] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// applyBatch implements batchLayer for FullyConnected: the weight
// matrix is packed once, all inputs become the window batch, and
// output-neuron chunks fan across the pool, each sweeping its filters
// against every input word-parallel.
func (f *FullyConnected) applyBatch(ctx context.Context, ins []*tensor.Tensor, d Dotter, workers int) ([]*tensor.Tensor, error) {
	n := ins[0].Len()
	if f.Out < 1 {
		return nil, fmt.Errorf("qnn: output size %d", f.Out)
	}
	if len(f.Weights) != n*f.Out {
		return nil, fmt.Errorf("qnn: weight matrix %d != %d x %d", len(f.Weights), f.Out, n)
	}
	filters, err := packFilters(f.Weights, f.Out, n, f.Label)
	if err != nil {
		return nil, err
	}

	sc := runScratchPool.Get().(*runScratch)
	defer runScratchPool.Put(sc)
	windows := growRows(&sc.u64, &sc.windows, len(ins), n)
	for b, in := range ins {
		dst := windows[b]
		for i, v := range in.Data {
			if v < 0 {
				return nil, fmt.Errorf("qnn: input %d: negative activation %d", b, v)
			}
			dst[i] = uint64(v)
		}
	}
	outRows := growRows(&sc.out, &sc.outHdrs, f.Out, len(ins))

	// Chunk output neurons contiguously across the pool; the chunk
	// boundaries vary with the worker count but every (neuron, input)
	// product is the same call either way, so results are placement-
	// deterministic and bit-identical.
	chunks := clampWorkers(workers, f.Out)
	err = parallelFor(ctx, chunks, workers, func(_, ci int) error {
		lo := ci * f.Out / chunks
		hi := (ci + 1) * f.Out / chunks
		return dotMulti(d, windows, filters[lo:hi], outRows[lo:hi])
	})
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(ins))
	for b := range ins {
		out := tensor.New(1, 1, f.Out)
		for o := 0; o < f.Out; o++ {
			out.Data[o] = int64(outRows[o][b])
		}
		outs[b] = out
	}
	return outs, nil
}
