package qnn

import (
	"context"
	"fmt"
	"sync"

	"pixel/internal/tensor"
)

// batchRun is the shared state of one RunBatch pass: the current
// per-image activations, which of them the pipeline owns (stage
// outputs, safe to mutate in place and recycle) versus borrowed caller
// inputs (never touched), and the arena stage outputs come from.
// Stages acquire and recycle tensors only on the serial coordination
// path — worker goroutines just fill tensors handed to them — so the
// arena needs no locking.
type batchRun struct {
	xs    []*tensor.Tensor
	owned []bool
	arena *tensor.Arena
}

// replace installs y as image b's activation, recycling the tensor it
// replaces when the pipeline owns it. Installing the same tensor
// (in-place stages) keeps its ownership unchanged.
func (r *batchRun) replace(b int, y *tensor.Tensor) {
	if r.xs[b] == y {
		return
	}
	if r.owned[b] {
		r.arena.Put(r.xs[b])
	}
	r.xs[b] = y
	r.owned[b] = true
}

// batchLayer is the optional layer interface the batched pipeline
// uses: layers that can process the whole batch in one pass — MAC
// layers amortizing weight packing and im2col scratch, element layers
// rewriting owned tensors in place — implement it; other layers run
// their serial Apply per input.
type batchLayer interface {
	applyBatch(ctx context.Context, run *batchRun, d Dotter, workers int) error
}

// batchStage is one step of the batched execution plan: a layer plus
// any Requant/MaxPool epilogue fused into it. Fusion never changes
// results — the epilogue applies the exact per-layer arithmetic to
// each raw MAC value as it is stored, so the intermediate tensors the
// standalone chain would materialize are simply never built (requant
// then pool, in chain order; max pooling commutes with the element
// order either way).
type batchStage struct {
	layer Layer
	rq    *Requant
	pool  *MaxPool
}

// batchPlan folds the layer list into fused stages:
// Conv→Requant→MaxPool (either epilogue optional) and
// FullyConnected→Requant chains collapse into single stages; every
// other layer is a stage of its own.
func (m *Model) batchPlan() []batchStage {
	plan := make([]batchStage, 0, len(m.Layers))
	for i := 0; i < len(m.Layers); i++ {
		st := batchStage{layer: m.Layers[i]}
		switch m.Layers[i].(type) {
		case *Conv:
			if i+1 < len(m.Layers) {
				if rq, ok := m.Layers[i+1].(*Requant); ok {
					st.rq = rq
					i++
				}
			}
			if i+1 < len(m.Layers) {
				if p, ok := m.Layers[i+1].(*MaxPool); ok {
					st.pool = p
					i++
				}
			}
		case *FullyConnected:
			if i+1 < len(m.Layers) {
				if rq, ok := m.Layers[i+1].(*Requant); ok {
					st.rq = rq
					i++
				}
			}
		}
		plan = append(plan, st)
	}
	return plan
}

// run executes one stage, returning the label of the layer to blame
// for any error (fused stages can fail in their epilogue layers).
func (st *batchStage) run(ctx context.Context, run *batchRun, d Dotter, workers int) (string, error) {
	switch l := st.layer.(type) {
	case *Conv:
		return l.applyBatchFused(ctx, run, d, workers, st.rq, st.pool)
	case *FullyConnected:
		return l.applyBatchFused(ctx, run, d, workers, st.rq)
	}
	if bl, ok := st.layer.(batchLayer); ok {
		return st.layer.Name(), bl.applyBatch(ctx, run, d, workers)
	}
	// Per-image fallback for layers without a batched form.
	for b := range run.xs {
		y, err := st.layer.Apply(run.xs[b], d)
		if err != nil {
			return st.layer.Name(), fmt.Errorf("input %d: %w", b, err)
		}
		run.replace(b, y)
	}
	return st.layer.Name(), nil
}

// RunBatch executes the model on a batch of same-shape inputs,
// bit-identical to len(ins) sequential RunContext calls at any worker
// count. The layer list runs as a fused stage plan: Conv and
// FullyConnected layers pack their weights once per process (cached on
// the layer; see Conv.packedFilters) and absorb trailing Requant /
// MaxPool layers into their store epilogue, so the chain's
// intermediate activation tensors are never materialized. Inter-layer
// activations come from a tensor.Arena (opts.Arena, or a private one)
// and are recycled as soon as the next stage has consumed them;
// per-image scratch (im2col patch matrices, operand buffers) comes
// from a shared pool — so a steady-state batch allocates near-zero on
// the MAC hot path. The caller's input tensors are never mutated or
// recycled.
func (m *Model) RunBatch(ctx context.Context, ins []*tensor.Tensor, d Dotter, opts RunOptions) ([]*tensor.Tensor, error) {
	if m.ActivationBits < 1 || m.ActivationBits > 16 {
		return nil, fmt.Errorf("qnn: activation bits %d out of range [1,16]", m.ActivationBits)
	}
	if len(ins) == 0 {
		return nil, fmt.Errorf("qnn: empty batch")
	}
	for b, in := range ins {
		if in == nil {
			return nil, fmt.Errorf("qnn: batch input %d is nil", b)
		}
		if in.H != ins[0].H || in.W != ins[0].W || in.C != ins[0].C {
			return nil, fmt.Errorf("qnn: batch input %d shape %dx%dx%d != %dx%dx%d",
				b, in.H, in.W, in.C, ins[0].H, ins[0].W, ins[0].C)
		}
	}
	arena := opts.Arena
	if arena == nil {
		arena = tensor.NewArena()
	}
	run := &batchRun{
		xs:    make([]*tensor.Tensor, len(ins)),
		owned: make([]bool, len(ins)),
		arena: arena,
	}
	copy(run.xs, ins)
	for _, st := range m.batchPlan() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name, err := st.run(ctx, run, d, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("qnn: %s: layer %s: %w", m.Label, name, err)
		}
	}
	return run.xs, nil
}

// runScratch is the pooled per-image (conv) / per-call (fc) working
// set: the im2col patch matrix, the activation operands as engine
// words, window headers into them, and the engine's output rows.
type runScratch struct {
	pm      tensor.PatchMatrix
	u64     []uint64
	windows [][]uint64
	out     []uint64
	outHdrs [][]uint64
}

var runScratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// growRows carves flat (cap-grown to rows*cols) into per-row headers
// in hdrs, returning the header slice; both backing stores live in the
// pooled scratch, so steady-state calls reuse them.
func growRows(flat *[]uint64, hdrs *[][]uint64, rows, cols int) [][]uint64 {
	if cap(*flat) < rows*cols {
		*flat = make([]uint64, rows*cols)
	}
	*flat = (*flat)[:rows*cols]
	if cap(*hdrs) < rows {
		*hdrs = make([][]uint64, rows)
	}
	*hdrs = (*hdrs)[:rows]
	for i := range *hdrs {
		(*hdrs)[i] = (*flat)[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return *hdrs
}

// packFilters converts a layer's weight matrix to engine operands,
// validating non-negativity — the packing every image of every batch
// reuses (cached per layer by packedFilters / packedWeights).
func packFilters(weights []int64, rows, cols int, label string) ([][]uint64, error) {
	flat := make([]uint64, rows*cols)
	hdrs := make([][]uint64, rows)
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("qnn: negative weight %d in %s", w, label)
		}
		flat[i] = uint64(w)
	}
	for m := range hdrs {
		hdrs[m] = flat[m*cols : (m+1)*cols : (m+1)*cols]
	}
	return hdrs, nil
}

// packedFilters returns the engine-operand form of the kernel weights,
// packing them on first use and caching the result on the layer (the
// kernel must not be mutated after the layer first runs).
func (c *Conv) packedFilters() ([][]uint64, error) {
	c.packOnce.Do(func() {
		k := c.Kernel
		c.packed, c.packErr = packFilters(k.Data, k.M, k.R*k.R*k.C, c.Label)
	})
	return c.packed, c.packErr
}

// packedWeights is packedFilters for the dense weight matrix (the
// weights must not be mutated after the layer first runs).
func (f *FullyConnected) packedWeights() ([][]uint64, error) {
	f.packOnce.Do(func() {
		if f.Out < 1 || len(f.Weights)%f.Out != 0 {
			f.packErr = fmt.Errorf("qnn: weight matrix %d not divisible into %d outputs", len(f.Weights), f.Out)
			return
		}
		f.packed, f.packErr = packFilters(f.Weights, f.Out, len(f.Weights)/f.Out, f.Label)
	})
	return f.packed, f.packErr
}

// requantVal applies a fused Requant epilogue to one raw MAC value —
// exactly Requant.Apply's per-element arithmetic, identity when rq is
// nil.
func requantVal(v int64, rq *Requant) int64 {
	if rq == nil {
		return v
	}
	v >>= rq.Shift
	if v < 0 {
		v = 0
	}
	if v > rq.Max {
		v = rq.Max
	}
	return v
}

// fuseConvEpilogue scatters a conv's raw MAC rows (outRows[m][pos],
// pos = oy*ew+ox) into the output tensor, applying the fused requant
// and max-pool in the same pass — elementwise identical to running the
// standalone layers on a materialized conv output, but without ever
// building it.
func fuseConvEpilogue(out *tensor.Tensor, outRows [][]uint64, ew int, rq *Requant, pool *MaxPool) {
	m := len(outRows)
	if pool == nil {
		for f, row := range outRows {
			for pos, v := range row {
				out.Data[pos*m+f] = requantVal(int64(v), rq)
			}
		}
		return
	}
	win := pool.Window
	for f, row := range outRows {
		for py := 0; py < out.H; py++ {
			for px := 0; px < out.W; px++ {
				best := requantVal(int64(row[py*win*ew+px*win]), rq)
				for ky := 0; ky < win; ky++ {
					base := (py*win+ky)*ew + px*win
					for kx := 0; kx < win; kx++ {
						if v := requantVal(int64(row[base+kx]), rq); v > best {
							best = v
						}
					}
				}
				out.Data[(py*out.W+px)*m+f] = best
			}
		}
	}
}

// applyBatch implements batchLayer for Conv (the unfused form).
func (c *Conv) applyBatch(ctx context.Context, run *batchRun, d Dotter, workers int) error {
	_, err := c.applyBatchFused(ctx, run, d, workers, nil, nil)
	return err
}

// applyBatchFused runs the conv over the whole batch with an optional
// fused Requant/MaxPool epilogue: filters are packed once per process,
// each input's im2col lowering and filter sweep is one work item on
// the pool running on pooled scratch, and the epilogue requantizes and
// pools directly out of the engine's MAC rows into an arena tensor —
// bit-identical to the standalone layer chain. Returns the label of
// the layer responsible for any error.
func (c *Conv) applyBatchFused(ctx context.Context, run *batchRun, d Dotter, workers int, rq *Requant, pool *MaxPool) (string, error) {
	k := c.Kernel
	ins := run.xs
	in0 := ins[0]
	if in0.C != k.C {
		return c.Label, fmt.Errorf("qnn: input channels %d != kernel channels %d", in0.C, k.C)
	}
	if c.Stride < 1 {
		return c.Label, fmt.Errorf("qnn: stride %d", c.Stride)
	}
	if c.Pad < 0 {
		return c.Label, fmt.Errorf("qnn: pad %d", c.Pad)
	}
	eh := (in0.H+2*c.Pad-k.R)/c.Stride + 1
	ew := (in0.W+2*c.Pad-k.R)/c.Stride + 1
	if eh < 1 || ew < 1 {
		return c.Label, fmt.Errorf("qnn: kernel %d too large for %dx%d input with pad %d", k.R, in0.H, in0.W, c.Pad)
	}
	filters, err := c.packedFilters()
	if err != nil {
		return c.Label, err
	}
	if rq != nil && rq.Max < 1 {
		return rq.Label, fmt.Errorf("qnn: requant max %d", rq.Max)
	}
	outH, outW := eh, ew
	if pool != nil {
		if pool.Window < 1 || eh%pool.Window != 0 || ew%pool.Window != 0 {
			return pool.Label, fmt.Errorf("tensor: pool window %d does not tile %dx%d", pool.Window, eh, ew)
		}
		outH /= pool.Window
		outW /= pool.Window
	}

	outs := make([]*tensor.Tensor, len(ins))
	for b := range outs {
		outs[b] = run.arena.Get(outH, outW, k.M)
	}
	err = parallelFor(ctx, len(ins), workers, func(_, b int) error {
		in := ins[b]
		for i, v := range in.Data {
			if v < 0 {
				return fmt.Errorf("qnn: input %d: negative activation %d at (%d,%d,%d)",
					b, v, i/(in.W*in.C), (i/in.C)%in.W, i%in.C)
			}
		}
		sc := runScratchPool.Get().(*runScratch)
		defer runScratchPool.Put(sc)
		if err := tensor.LowerInto(&sc.pm, in, k.R, c.Stride, c.Pad); err != nil {
			return fmt.Errorf("qnn: input %d: %w", b, err)
		}
		p := &sc.pm
		windows := growRows(&sc.u64, &sc.windows, p.Rows, p.Cols)
		for i, v := range p.Data {
			sc.u64[i] = uint64(v)
		}
		outRows := growRows(&sc.out, &sc.outHdrs, k.M, p.Rows)
		if err := dotMulti(d, windows, filters, outRows); err != nil {
			return fmt.Errorf("input %d: %w", b, err)
		}
		fuseConvEpilogue(outs[b], outRows, p.EW, rq, pool)
		return nil
	})
	if err != nil {
		run.arena.Put(outs...)
		return c.Label, err
	}
	for b := range outs {
		run.replace(b, outs[b])
	}
	return c.Label, nil
}

// applyBatch implements batchLayer for FullyConnected (the unfused
// form).
func (f *FullyConnected) applyBatch(ctx context.Context, run *batchRun, d Dotter, workers int) error {
	_, err := f.applyBatchFused(ctx, run, d, workers, nil)
	return err
}

// applyBatchFused runs the dense layer over the whole batch with an
// optional fused Requant epilogue: the weight matrix is packed once
// per process, all inputs become the window batch, and output-neuron
// chunks fan across the pool, each sweeping its filters against every
// input word-parallel; outputs are requantized directly out of the MAC
// rows into arena tensors.
func (f *FullyConnected) applyBatchFused(ctx context.Context, run *batchRun, d Dotter, workers int, rq *Requant) (string, error) {
	ins := run.xs
	n := ins[0].Len()
	if f.Out < 1 {
		return f.Label, fmt.Errorf("qnn: output size %d", f.Out)
	}
	if len(f.Weights) != n*f.Out {
		return f.Label, fmt.Errorf("qnn: weight matrix %d != %d x %d", len(f.Weights), f.Out, n)
	}
	filters, err := f.packedWeights()
	if err != nil {
		return f.Label, err
	}
	if rq != nil && rq.Max < 1 {
		return rq.Label, fmt.Errorf("qnn: requant max %d", rq.Max)
	}

	sc := runScratchPool.Get().(*runScratch)
	defer runScratchPool.Put(sc)
	windows := growRows(&sc.u64, &sc.windows, len(ins), n)
	for b, in := range ins {
		dst := windows[b]
		for i, v := range in.Data {
			if v < 0 {
				return f.Label, fmt.Errorf("qnn: input %d: negative activation %d", b, v)
			}
			dst[i] = uint64(v)
		}
	}
	outRows := growRows(&sc.out, &sc.outHdrs, f.Out, len(ins))

	// Chunk output neurons contiguously across the pool; the chunk
	// boundaries vary with the worker count but every (neuron, input)
	// product is the same call either way, so results are placement-
	// deterministic and bit-identical.
	chunks := clampWorkers(workers, f.Out)
	err = parallelFor(ctx, chunks, workers, func(_, ci int) error {
		lo := ci * f.Out / chunks
		hi := (ci + 1) * f.Out / chunks
		return dotMulti(d, windows, filters[lo:hi], outRows[lo:hi])
	})
	if err != nil {
		return f.Label, err
	}
	for b := range ins {
		out := run.arena.Get(1, 1, f.Out)
		for o := 0; o < f.Out; o++ {
			out.Data[o] = requantVal(int64(outRows[o][b]), rq)
		}
		run.replace(b, out)
	}
	return f.Label, nil
}

// applyBatch implements batchLayer for standalone Requant stages:
// owned activations are requantized in place, borrowed ones into fresh
// arena tensors.
func (r *Requant) applyBatch(_ context.Context, run *batchRun, _ Dotter, _ int) error {
	if r.Max < 1 {
		return fmt.Errorf("qnn: requant max %d", r.Max)
	}
	for b, in := range run.xs {
		out := in
		if !run.owned[b] {
			out = run.arena.Get(in.H, in.W, in.C)
		}
		for i, v := range in.Data {
			out.Data[i] = requantVal(v, r)
		}
		run.replace(b, out)
	}
	return nil
}

// applyBatch implements batchLayer for standalone MaxPool stages,
// pooling into arena tensors and recycling owned inputs.
func (p *MaxPool) applyBatch(_ context.Context, run *batchRun, _ Dotter, _ int) error {
	for b, in := range run.xs {
		if p.Window < 1 || in.H%p.Window != 0 || in.W%p.Window != 0 {
			return fmt.Errorf("input %d: tensor: pool window %d does not tile %dx%d", b, p.Window, in.H, in.W)
		}
		out := run.arena.Get(in.H/p.Window, in.W/p.Window, in.C)
		tensor.MaxPoolInto(out, in, p.Window)
		run.replace(b, out)
	}
	return nil
}

// applyBatch implements batchLayer for Flatten: owned activations are
// reshaped in place (HWC order already matches the flattened vector),
// borrowed ones copied into arena tensors.
func (f *Flatten) applyBatch(_ context.Context, run *batchRun, _ Dotter, _ int) error {
	for b, in := range run.xs {
		if run.owned[b] {
			in.H, in.W, in.C = 1, 1, in.Len()
			continue
		}
		out := run.arena.Get(1, 1, in.Len())
		copy(out.Data, in.Data)
		run.replace(b, out)
	}
	return nil
}
