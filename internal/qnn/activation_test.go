package qnn

import (
	"math"
	"testing"

	"pixel/internal/tensor"
)

func TestNewTanhActivationValidation(t *testing.T) {
	if _, err := NewTanhActivation("a", 12, 0, 0); err == nil {
		t.Error("zero output scale should error")
	}
	if _, err := NewTanhActivation("a", 0, 0, 15); err == nil {
		t.Error("bad fracBits should error")
	}
}

func TestTanhActivationSaturatesAndSigns(t *testing.T) {
	a, err := NewTanhActivation("act", 10, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	one := int64(1) << 10
	in := tensor.NewVector([]int64{0, 10 * one, -10 * one})
	out, err := a.Apply(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 0 {
		t.Errorf("tanh(0) scaled = %d", out.Data[0])
	}
	if out.Data[1] != 100 || out.Data[2] != -100 {
		t.Errorf("saturation = %v, want +-100", out.Data[1:])
	}
}

func TestTanhActivationTracksMathTanh(t *testing.T) {
	a, err := NewTanhActivation("act", 12, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	one := int64(1) << 12
	for _, x := range []float64{-2, -0.7, -0.2, 0.3, 0.9, 1.8} {
		in := tensor.NewVector([]int64{int64(x * float64(one))})
		out, err := a.Apply(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(out.Data[0]) / 1000
		if math.Abs(got-math.Tanh(x)) > 0.05 {
			t.Errorf("tanh(%v) = %v, want ~%v", x, got, math.Tanh(x))
		}
	}
}

func TestTanhActivationInModel(t *testing.T) {
	// A model ending in the activation hardware runs end to end.
	k := tensor.NewKernel(1, 2, 1)
	for i := range k.Data {
		k.Data[i] = 3
	}
	a, err := NewTanhActivation("act", 10, 4, 15)
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{
		Label:          "with-tanh",
		ActivationBits: 8,
		Layers: []Layer{
			&Conv{Label: "conv", Kernel: k, Stride: 1},
			a,
		},
	}
	in := tensor.New(3, 3, 1)
	for i := range in.Data {
		in.Data[i] = int64(i)
	}
	out, err := m.Run(in, ReferenceDotter{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data {
		if v < -15 || v > 15 {
			t.Errorf("activation output %d out of [-15,15]", v)
		}
	}
}
