package qnn

import (
	"fmt"

	"pixel/internal/tensor"
)

// Signed-weight layers. Real quantized CNNs keep non-negative
// activations (post-ReLU) but signed weights; the optical datapaths
// support this through offset encoding (see internal/bitserial), which
// SignedDotter abstracts.

// SignedDotter computes signed inner products (activations are still
// passed as int64 but must be non-negative and in range).
type SignedDotter interface {
	SignedDotProduct(a, b []int64) (int64, error)
}

// ReferenceSignedDotter is the plain-integer oracle.
type ReferenceSignedDotter struct{}

// SignedDotProduct implements SignedDotter.
func (ReferenceSignedDotter) SignedDotProduct(a, b []int64) (int64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("qnn: vector lengths differ (%d vs %d)", len(a), len(b))
	}
	var acc int64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc, nil
}

// SignedLayer is a layer whose MACs need signed weights.
type SignedLayer interface {
	Name() string
	ApplySigned(in *tensor.Tensor, d SignedDotter) (*tensor.Tensor, error)
}

// SignedConv is a convolution with signed weights.
type SignedConv struct {
	Label  string
	Kernel *tensor.Kernel
	Stride int
}

// Name implements SignedLayer.
func (c *SignedConv) Name() string { return c.Label }

// ApplySigned implements SignedLayer.
func (c *SignedConv) ApplySigned(in *tensor.Tensor, d SignedDotter) (*tensor.Tensor, error) {
	k := c.Kernel
	if in.C != k.C {
		return nil, fmt.Errorf("qnn: input channels %d != kernel channels %d", in.C, k.C)
	}
	if c.Stride < 1 {
		return nil, fmt.Errorf("qnn: stride %d", c.Stride)
	}
	eh := (in.H-k.R)/c.Stride + 1
	ew := (in.W-k.R)/c.Stride + 1
	if eh < 1 || ew < 1 {
		return nil, fmt.Errorf("qnn: kernel %d too large for %dx%d input", k.R, in.H, in.W)
	}
	out := tensor.New(eh, ew, k.M)
	n := k.R * k.R * k.C
	window := make([]int64, n)
	weights := make([]int64, n)
	for oy := 0; oy < eh; oy++ {
		for ox := 0; ox < ew; ox++ {
			i := 0
			for ky := 0; ky < k.R; ky++ {
				for kx := 0; kx < k.R; kx++ {
					for ch := 0; ch < in.C; ch++ {
						window[i] = in.At(oy*c.Stride+ky, ox*c.Stride+kx, ch)
						i++
					}
				}
			}
			for m := 0; m < k.M; m++ {
				i = 0
				for ky := 0; ky < k.R; ky++ {
					for kx := 0; kx < k.R; kx++ {
						for ch := 0; ch < in.C; ch++ {
							weights[i] = k.At(m, ky, kx, ch)
							i++
						}
					}
				}
				acc, err := d.SignedDotProduct(window, weights)
				if err != nil {
					return nil, fmt.Errorf("qnn: %s: %w", c.Label, err)
				}
				out.Set(oy, ox, m, acc)
			}
		}
	}
	return out, nil
}

// SignedModel is a sequence mixing signed MAC layers with the plain
// (Dotter-free) transforms of Model: pooling, requant+ReLU, flatten.
type SignedModel struct {
	Label  string
	Layers []any // SignedLayer or Layer entries with nil-Dotter Apply
}

// Run executes the model: SignedLayer entries use the SignedDotter;
// plain Layer entries (MaxPool, Requant, Flatten) run directly.
func (m *SignedModel) Run(in *tensor.Tensor, d SignedDotter) (*tensor.Tensor, error) {
	x := in
	var err error
	for _, l := range m.Layers {
		switch layer := l.(type) {
		case SignedLayer:
			x, err = layer.ApplySigned(x, d)
		case Layer:
			x, err = layer.Apply(x, nil)
		default:
			return nil, fmt.Errorf("qnn: %s: unsupported layer type %T", m.Label, l)
		}
		if err != nil {
			return nil, fmt.Errorf("qnn: %s: %w", m.Label, err)
		}
	}
	return x, nil
}
