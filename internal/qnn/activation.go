package qnn

import (
	"fmt"

	"pixel/internal/elec"
	"pixel/internal/tensor"
)

// TanhActivation runs the accelerator's actual activation hardware —
// the hybrid piecewise-linear tanh unit of elec — over the tensor,
// completing the Figure 3 pipeline (MAC accumulation -> activation ->
// output neuron lane) at the functional level.
//
// Accumulator values are interpreted as fixed point with InputFracBits
// fractional bits; outputs are tanh values re-scaled to OutputScale
// (so downstream quantized layers keep integer activations).
type TanhActivation struct {
	Label string
	// Unit is the functional hardware model.
	Unit *elec.TanhUnit
	// InputShift right-shifts accumulator values into the unit's
	// fixed-point range before applying tanh.
	InputShift uint
	// OutputScale multiplies the [-1,1] tanh output back into integer
	// range (e.g. 15 for 4-bit activations).
	OutputScale int64
}

// NewTanhActivation builds the layer with a fresh hardware unit.
func NewTanhActivation(label string, fracBits int, inputShift uint, outputScale int64) (*TanhActivation, error) {
	if outputScale < 1 {
		return nil, fmt.Errorf("qnn: output scale must be >= 1")
	}
	u, err := elec.NewTanhUnit(fracBits)
	if err != nil {
		return nil, err
	}
	return &TanhActivation{
		Label:       label,
		Unit:        u,
		InputShift:  inputShift,
		OutputScale: outputScale,
	}, nil
}

// Name implements Layer.
func (a *TanhActivation) Name() string { return a.Label }

// Apply implements Layer.
func (a *TanhActivation) Apply(in *tensor.Tensor, _ Dotter) (*tensor.Tensor, error) {
	if a.Unit == nil {
		return nil, fmt.Errorf("qnn: %s: nil tanh unit", a.Label)
	}
	one := int64(1) << uint(a.Unit.FracBits())
	out := tensor.New(in.H, in.W, in.C)
	for i, v := range in.Data {
		y := a.Unit.Apply(v >> a.InputShift)
		// y is in [-one, one]; rescale to the integer activation range
		// (rounding toward zero, as the hardware's truncation does).
		out.Data[i] = y * a.OutputScale / one
	}
	return out, nil
}
