package qnn

import (
	"context"
	"math/rand"
	"testing"

	"pixel/internal/bitserial"
	"pixel/internal/tensor"
)

// fastDotter adapts the word-level Stripes engine; it is stateless and
// safe for any worker count.
type fastDotter struct{ e *bitserial.FastEngine }

func (f fastDotter) DotProduct(a, b []uint64) (uint64, error) {
	v, _, err := f.e.DotProduct(a, b)
	return v, err
}

// TestConvParallelMatchesReference is the randomized property test of
// the issue: over random shapes, strides, paddings and worker counts,
// the parallel im2col conv layer must be bit-identical to the seed
// serial tensor.Conv2DReference. Run it under -race to also prove the
// pool writes disjoint output slots.
func TestConvParallelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		h := 3 + rng.Intn(10)
		w := 3 + rng.Intn(10)
		c := 1 + rng.Intn(3)
		r := 1 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		workers := 1 + rng.Intn(8)
		if h+2*pad < r || w+2*pad < r {
			continue
		}
		in := tensor.New(h, w, c)
		for i := range in.Data {
			in.Data[i] = rng.Int63n(16)
		}
		k := tensor.NewKernel(m, r, c)
		for i := range k.Data {
			k.Data[i] = rng.Int63n(16)
		}
		want, err := tensor.Conv2DReference(in, k, stride, pad)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		conv := &Conv{Label: "c", Kernel: k, Stride: stride, Pad: pad}
		got, err := conv.applyCtx(context.Background(), in, ReferenceDotter{}, workers)
		if err != nil {
			t.Fatalf("trial %d (h%d w%d c%d r%d m%d s%d p%d wk%d): %v", trial, h, w, c, r, m, stride, pad, workers, err)
		}
		if got.H != want.H || got.W != want.W || got.C != want.C {
			t.Fatalf("trial %d: shape %dx%dx%d, want %dx%dx%d", trial, got.H, got.W, got.C, want.H, want.W, want.C)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d (h%d w%d c%d r%d m%d s%d p%d wk%d): out[%d] = %d, want %d",
					trial, h, w, c, r, m, stride, pad, workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestConvPadMatchesTensorConv checks the new Pad field end to end
// against tensor.Conv2D's padded output.
func TestConvPadMatchesTensorConv(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	in := tensor.New(5, 5, 2)
	for i := range in.Data {
		in.Data[i] = rng.Int63n(8)
	}
	k := tensor.NewKernel(3, 3, 2)
	for i := range k.Data {
		k.Data[i] = rng.Int63n(8)
	}
	want, err := tensor.Conv2D(in, k, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	conv := &Conv{Label: "padded", Kernel: k, Stride: 1, Pad: 1}
	got, err := conv.Apply(in, ReferenceDotter{})
	if err != nil {
		t.Fatal(err)
	}
	if got.H != 5 || got.W != 5 || got.C != 3 {
		t.Fatalf("padded shape %dx%dx%d, want 5x5x3 (same-conv)", got.H, got.W, got.C)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got.Data[i], want.Data[i])
		}
	}
	bad := &Conv{Label: "bad", Kernel: k, Stride: 1, Pad: -1}
	if _, err := bad.Apply(in, ReferenceDotter{}); err == nil {
		t.Error("negative pad should error")
	}
}

// lenetModel is the shared demo LeNet (see demo.go); the golden test
// and the Monte-Carlo σ=0 degeneracy test perturb the same network.
func lenetModel(rng *rand.Rand) (*Model, *tensor.Tensor) {
	return DemoLeNet(rng)
}

// TestLeNetGolden proves the whole pipeline bit-identical across the
// serial reference, the parallel reference, the fast word-level
// Stripes engine (parallel) and the gate-model Stripes oracle
// (serial) — the paper's correctness claim, end to end.
func TestLeNetGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, in := lenetModel(rng)

	ref, err := m.Run(in, ReferenceDotter{})
	if err != nil {
		t.Fatal(err)
	}

	par, err := m.RunContext(context.Background(), in, ReferenceDotter{}, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	fastEng, err := bitserial.NewFastEngine(4, 512)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.RunContext(context.Background(), in, fastDotter{fastEng}, RunOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	gateEng, err := bitserial.NewEngine(4, 512)
	if err != nil {
		t.Fatal(err)
	}
	gate, err := m.Run(in, stripesDotter{gateEng})
	if err != nil {
		t.Fatal(err)
	}

	for i := range ref.Data {
		if par.Data[i] != ref.Data[i] {
			t.Fatalf("parallel ref out[%d] = %d, want %d", i, par.Data[i], ref.Data[i])
		}
		if fast.Data[i] != ref.Data[i] {
			t.Fatalf("fast stripes out[%d] = %d, want %d", i, fast.Data[i], ref.Data[i])
		}
		if gate.Data[i] != ref.Data[i] {
			t.Fatalf("gate stripes out[%d] = %d, want %d", i, gate.Data[i], ref.Data[i])
		}
	}
}

// TestRunContextCancellation checks a cancelled context aborts the
// pipeline promptly with the context's error.
func TestRunContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m, in := lenetModel(rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunContext(ctx, in, ReferenceDotter{}, RunOptions{Workers: 4}); err == nil {
		t.Error("cancelled context should abort the run")
	}
}

// TestFullyConnectedParallelMatchesSerial pins FC's pool to its serial
// output.
func TestFullyConnectedParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n, outDim := 37, 23
	ws := make([]int64, n*outDim)
	for i := range ws {
		ws[i] = rng.Int63n(16)
	}
	in := tensor.New(1, 1, n)
	for i := range in.Data {
		in.Data[i] = rng.Int63n(16)
	}
	fc := &FullyConnected{Label: "fc", Weights: ws, Out: outDim}
	want, err := fc.Apply(in, ReferenceDotter{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		got, err := fc.applyCtx(context.Background(), in, ReferenceDotter{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestBatchDotterFallback checks that a Dotter without a batched entry
// point goes through the per-window adapter and still matches.
func TestBatchDotterFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	in := tensor.New(6, 6, 2)
	for i := range in.Data {
		in.Data[i] = rng.Int63n(16)
	}
	k := tensor.NewKernel(3, 3, 2)
	for i := range k.Data {
		k.Data[i] = rng.Int63n(16)
	}
	conv := &Conv{Label: "c", Kernel: k, Stride: 1}
	want, err := conv.Apply(in, ReferenceDotter{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := bitserial.NewFastEngine(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	// fastDotter implements only Dotter, so this exercises dotBatch's
	// fallback loop.
	var d Dotter = fastDotter{eng}
	if _, ok := d.(BatchDotter); ok {
		t.Fatal("fastDotter unexpectedly implements BatchDotter; test needs a plain Dotter")
	}
	got, err := conv.Apply(in, d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got.Data[i], want.Data[i])
		}
	}
}
