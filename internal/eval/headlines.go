package eval

import (
	"math"

	"pixel/internal/arch"
	"pixel/internal/cnn"
)

// Headlines are the paper's summary claims with our measured values —
// the paper-vs-measured record EXPERIMENTS.md reports.
type Headlines struct {
	// OEEDPImprovement / OOEDPImprovement: geomean EDP gain over EE at
	// 4 lanes, 16 bits/lane (paper: 48.4% and 73.9%).
	OEEDPImprovement float64
	OOEDPImprovement float64
	// MulSaving: 1 - optical/EE multiplication energy (paper: 94.9%).
	MulSaving float64
	// AddSaving: 1 - OO/OE accumulation energy (paper: 53.8%).
	AddSaving float64
	// ZFNetConv2VsEE / VsOE: OO latency gain on ZFNet Conv2 at 8
	// lanes, 8 bits/lane (paper: 31.9% and 18.6%).
	ZFNetConv2VsEE float64
	ZFNetConv2VsOE float64
	// LaserRatioOOvsOE: OO laser energy over OE's (paper Table II:
	// ~1.52x).
	LaserRatioOOvsOE float64
}

// MeasureHeadlines computes every headline from the frozen model.
func MeasureHeadlines() Headlines {
	var h Headlines

	geoEDP := func(d arch.Design) float64 {
		logSum := 0.0
		for _, net := range cnn.All() {
			c, err := costOf(net, d, 4, 16)
			if err != nil {
				panic(err) // configurations are static and validated
			}
			logSum += math.Log(c.EDP())
		}
		return math.Exp(logSum / 6)
	}
	ee, oe, oo := geoEDP(arch.EE), geoEDP(arch.OE), geoEDP(arch.OO)
	h.OEEDPImprovement = 1 - oe/ee
	h.OOEDPImprovement = 1 - oo/ee

	pEE := arch.PerOp(arch.MustConfig(arch.EE, 4, 16))
	pOE := arch.PerOp(arch.MustConfig(arch.OE, 4, 16))
	pOO := arch.PerOp(arch.MustConfig(arch.OO, 4, 16))
	h.MulSaving = 1 - pOE.Mul/pEE.Mul
	h.AddSaving = 1 - pOO.Add/pOE.Add
	h.LaserRatioOOvsOE = pOO.Laser / pOE.Laser

	lat := map[arch.Design]float64{}
	for _, d := range arch.Designs() {
		c, err := costOf(cnn.ZFNet(), d, 8, 8)
		if err != nil {
			panic(err)
		}
		lat[d] = c.Layers[1].Latency
	}
	h.ZFNetConv2VsEE = 1 - lat[arch.OO]/lat[arch.EE]
	h.ZFNetConv2VsOE = 1 - lat[arch.OO]/lat[arch.OE]
	return h
}
