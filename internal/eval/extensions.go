package eval

import (
	"fmt"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/elec"
	"pixel/internal/interconnect"
	"pixel/internal/mapper"
	"pixel/internal/photonics"
	"pixel/internal/phy"
	"pixel/internal/report"
	"pixel/internal/sim"
)

// Extensions are studies beyond the paper's published artifacts:
// ablations of the calibration's design choices, throughput views,
// the MWSR/SWMR interconnect trade, tile-grid scheduling and
// adder-architecture comparisons. They run through the same -exp
// interface as the paper experiments, under "ext-" ids.
func Extensions() []Experiment {
	return []Experiment{
		{ID: "ext-ablation", Paper: "extension", Title: "EDP sensitivity to the calibration's design choices", Run: ExtAblation},
		{ID: "ext-throughput", Paper: "extension", Title: "Throughput and efficiency, six CNNs (4 lanes, 16 bits/lane)", Run: ExtThroughput},
		{ID: "ext-discipline", Paper: "extension", Title: "MWSR vs SWMR row broadcast on the tile fabric", Run: ExtDiscipline},
		{ID: "ext-mapper", Paper: "extension", Title: "Tile-grid schedules with electrical vs photonic weight preload", Run: ExtMapper},
		{ID: "ext-adders", Paper: "extension", Title: "Adder and multiplier architecture comparison (gate models)", Run: ExtAdders},
		{ID: "ext-power", Paper: "extension", Title: "Chip-level power budgets: dynamic + static floors", Run: ExtPower},
		{ID: "ext-pareto", Paper: "extension", Title: "Energy/latency Pareto frontier over the design space", Run: ExtPareto},
		{ID: "ext-sim", Paper: "extension", Title: "Discrete-event pipeline simulation of ZFNet on the tile grid", Run: ExtSim},
		{ID: "ext-accuracy", Paper: "extension", Title: "Weight precision vs computation fidelity", Run: ExtAccuracy},
		{ID: "ext-workloads", Paper: "extension", Title: "Workload summary: parameters and operation counts, all six CNNs", Run: ExtWorkloads},
		{ID: "ext-idle", Paper: "extension", Title: "Energy proportionality: per-inference energy vs duty cycle", Run: ExtIdle},
	}
}

// AllExperiments returns the paper artifacts followed by the
// extensions.
func AllExperiments() []Experiment {
	return append(Experiments(), Extensions()...)
}

// ExtAblation renders the ablation study.
func ExtAblation() (*report.Table, error) {
	results, err := arch.RunAblations()
	if err != nil {
		return nil, err
	}
	t := report.New("Extension: EDP-improvement sensitivity (geomean over six CNNs, 4 lanes / 16 bits-lane)",
		"Ablation", "OE vs EE", "OO vs EE", "What changed")
	for _, r := range results {
		t.AddRow(r.Name,
			fmt.Sprintf("%.1f%%", 100*r.OEImprovement),
			fmt.Sprintf("%.1f%%", 100*r.OOImprovement),
			r.Description)
	}
	return t, nil
}

// ExtThroughput renders the rate metrics for every network.
func ExtThroughput() (*report.Table, error) {
	t := report.New("Extension: throughput and efficiency (4 lanes, 16 bits/lane)",
		"CNN", "Des", "inf/s", "avg W", "inf/J")
	for _, net := range cnn.All() {
		for _, d := range arch.Designs() {
			r, err := arch.Throughput(net, arch.MustConfig(d, 4, 16))
			if err != nil {
				return nil, err
			}
			t.AddRow(net.Name, d.String(),
				report.Sci(r.InferencesPerSecond),
				report.Sci(r.AvgPowerW),
				report.Sci(r.InferencesPerJoule))
		}
	}
	return t, nil
}

// ExtDiscipline renders the MWSR/SWMR broadcast comparison across row
// sizes.
func ExtDiscipline() (*report.Table, error) {
	t := report.New("Extension: 128-bit row broadcast, MWSR vs SWMR",
		"Tiles/row", "Discipline", "Transmissions", "Detector banks", "Energy", "Latency", "Launch/lambda")
	for _, cols := range []int{2, 4, 8, 16} {
		g, err := interconnect.NewGrid(2, cols, 4, 10*phy.Gigahertz)
		if err != nil {
			return nil, err
		}
		laser := photonics.DefaultLaser(g.Lanes, g.RequiredLaunchPower())
		mwsr, swmr, err := g.CompareDisciplines(128, laser)
		if err != nil {
			return nil, err
		}
		for _, c := range []interconnect.BroadcastCost{mwsr, swmr} {
			t.AddRow(fmt.Sprint(cols), c.Discipline.String(),
				fmt.Sprint(c.Transmissions), fmt.Sprint(c.DetectorBanks),
				phy.FormatEnergy(c.Energy), phy.FormatTime(c.Latency),
				phy.FormatPower(c.LaunchPower))
		}
	}
	t.AddNote("SWMR buys broadcast latency with receiver hardware and split laser power; MWSR (PIXEL's choice) keeps the launch power flat")
	return t, nil
}

// ExtMapper renders the tile-grid schedules for every network under
// both weight transports.
func ExtMapper() (*report.Table, error) {
	g, err := interconnect.NewGrid(4, 4, 4, 10*phy.Gigahertz)
	if err != nil {
		return nil, err
	}
	cfg := arch.MustConfig(arch.OO, 4, 8)
	t := report.New("Extension: 4x4 tile-grid schedules (OO, 4 lanes, 8 bits/lane)",
		"CNN", "Weights", "Compute", "Preload", "Sequential", "Pipelined", "Preload E", "Util")
	for _, net := range cnn.All() {
		for _, tr := range []mapper.WeightTransport{mapper.ElectricalPreload, mapper.PhotonicPreload} {
			s, err := mapper.MapNetwork(net, g, cfg, mapper.Options{Transport: tr})
			if err != nil {
				return nil, err
			}
			t.AddRow(net.Name, tr.String(),
				phy.FormatTime(s.ComputeS), phy.FormatTime(s.PreloadS),
				phy.FormatTime(s.MakespanS), phy.FormatTime(s.PipelinedMakespanS),
				phy.FormatEnergy(s.PreloadJ),
				fmt.Sprintf("%.0f%%", 100*s.MeanUtilization()))
		}
	}
	t.AddNote("pipelined = double-buffered register files: layer i+1's weights stream during layer i's compute")
	return t, nil
}

// ExtPower renders the chip-level power budgets for AlexNet at the
// headline point.
func ExtPower() (*report.Table, error) {
	t := report.New("Extension: power budgets, AlexNet (4 lanes, 16 bits/lane)",
		"Des", "Dynamic", "Tuning", "SRAM leak", "Logic leak", "Laser", "Total")
	net := cnn.AlexNet()
	for _, d := range arch.Designs() {
		p, err := arch.Power(net, arch.MustConfig(d, 4, 16))
		if err != nil {
			return nil, err
		}
		t.AddRow(d.String(),
			phy.FormatPower(p.DynamicW.Total()),
			phy.FormatPower(p.TuningW),
			phy.FormatPower(p.SRAMLeakW),
			phy.FormatPower(p.LogicLeakW),
			phy.FormatPower(p.LaserIdleW),
			phy.FormatPower(p.TotalW()))
	}
	t.AddNote("static floor = tuning + SRAM leak + logic leak; laser draw already integrates into the dynamic laser column")
	return t, nil
}

// ExtPareto renders the energy/latency Pareto frontier for AlexNet
// over the full sweep space.
func ExtPareto() (*report.Table, error) {
	frontier, err := arch.ParetoFrontier(cnn.AlexNet(), arch.Designs(),
		[]int{2, 4, 8, 16}, []int{4, 8, 16, 32})
	if err != nil {
		return nil, err
	}
	t := report.New("Extension: AlexNet energy/latency Pareto frontier",
		"Des", "Lanes", "Bits", "Energy", "Latency")
	for _, p := range frontier {
		t.AddRow(p.Design.String(), fmt.Sprint(p.Lanes), fmt.Sprint(p.Bits),
			phy.FormatEnergy(p.EnergyJ), phy.FormatTime(p.LatencyS))
	}
	t.AddNote("%d of %d sweep points are Pareto-optimal", len(frontier), 3*4*4)
	return t, nil
}

// IdleEnergyPerInference returns the per-inference energy [J] at the
// given duty cycle: the dynamic inference energy plus the static floor
// (including the laser, which on-chip designs keep lit) burned over the
// idle gap between inferences.
func IdleEnergyPerInference(net cnn.Network, cfg arch.Config, duty float64) (float64, error) {
	if duty <= 0 || duty > 1 {
		return 0, fmt.Errorf("eval: duty cycle %v out of (0,1]", duty)
	}
	c, err := arch.CostNetwork(net, cfg)
	if err != nil {
		return 0, err
	}
	p, err := arch.Power(net, cfg)
	if err != nil {
		return 0, err
	}
	idleTime := c.Latency * (1 - duty) / duty
	idlePower := p.TotalStaticW() + p.LaserIdleW
	return c.Energy.Total() + idlePower*idleTime, nil
}

// ExtIdle renders the energy-proportionality study: AlexNet energy per
// inference as the accelerator's duty cycle falls. The optical designs'
// always-on lasers erode their advantage at low utilization — the
// "race-to-idle" consideration the paper does not discuss.
func ExtIdle() (*report.Table, error) {
	net := cnn.AlexNet()
	duties := []float64{1, 0.5, 0.1, 0.01}
	t := report.New("Extension: AlexNet energy per inference vs duty cycle (4 lanes, 16 bits/lane)",
		"Des", "100%", "50%", "10%", "1%")
	for _, d := range arch.Designs() {
		cfg := arch.MustConfig(d, 4, 16)
		row := []string{d.String()}
		for _, duty := range duties {
			e, err := IdleEnergyPerInference(net, cfg, duty)
			if err != nil {
				return nil, err
			}
			row = append(row, phy.FormatEnergy(e))
		}
		t.AddRow(row...)
	}
	t.AddNote("idle power = static floor + laser; lasers that stay lit erode the optical advantage at low utilization")
	return t, nil
}

// ExtWorkloads renders the six networks' storage and compute volumes.
func ExtWorkloads() (*report.Table, error) {
	t := report.New("Extension: workload summary (paper-mode op counts)",
		"CNN", "Layers", "Params [M]", "Weights@8b [MB]", "MVM [M]", "Mul [G]", "Add [G]", "Act [M]")
	for _, net := range cnn.All() {
		c := net.TotalCounts(cnn.ModePaper)
		t.AddRow(net.Name,
			fmt.Sprint(len(net.Layers)),
			report.F(float64(net.Params())/1e6, 1),
			report.F(float64(net.WeightBits(8))/8/1e6, 1),
			report.F(c.MVM/1e6, 1),
			report.F(c.Mul/1e9, 2),
			report.F(c.Add/1e9, 2),
			report.F(c.Act/1e6, 1))
	}
	return t, nil
}

// ExtSim renders the discrete-event simulation of ZFNet: per-layer
// makespan, resource occupancy and bottleneck on a 4x4 grid.
func ExtSim() (*report.Table, error) {
	g, err := interconnect.NewGrid(4, 4, 4, 10*phy.Gigahertz)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(g, arch.MustConfig(arch.OO, 4, 8), sim.Options{})
	if err != nil {
		return nil, err
	}
	stats, total, err := s.RunNetwork(cnn.ZFNet())
	if err != nil {
		return nil, err
	}
	t := report.New("Extension: event-simulated ZFNet on a 4x4 grid (OO, 4 lanes, 8 bits/lane)",
		"Layer", "Rounds", "Makespan", "Broadcast busy", "Compute busy", "Bottleneck")
	for _, st := range stats {
		t.AddRow(st.Layer, report.Sci(st.Rounds), phy.FormatTime(st.MakespanS),
			fmt.Sprintf("%.0f%%", 100*st.BroadcastBusyFrac),
			fmt.Sprintf("%.0f%%", 100*st.ComputeBusyFrac),
			st.Bottleneck)
	}
	t.AddNote("network makespan %s; double-buffered inputs, batched rounds where needed", phy.FormatTime(total))
	return t, nil
}

// ExtAdders renders the adder/multiplier architecture comparison under
// the 22 nm model.
func ExtAdders() (*report.Table, error) {
	tech := elec.Bulk22LVT()
	t := report.New("Extension: adder and multiplier architectures (Bulk22LVT)",
		"Component", "Width", "Gates", "Depth", "Delay", "Energy/op")
	for _, w := range []int{8, 16, 32, 64} {
		for _, row := range []struct {
			name string
			gc   elec.GateCount
		}{
			{"CLA (paper Eq. 5/6)", elec.CLA(w)},
			{"Kogge-Stone", elec.KoggeStone(w)},
		} {
			t.AddRow(row.name, fmt.Sprint(w),
				fmt.Sprint(row.gc.Gates), fmt.Sprint(row.gc.Depth),
				phy.FormatTime(row.gc.Delay(tech)), phy.FormatEnergy(row.gc.Energy(tech)))
		}
	}
	for _, w := range []int{8, 16} {
		for _, row := range []struct {
			name string
			gc   elec.GateCount
		}{
			{"array multiplier", elec.ArrayMultiplier(w)},
			{"Wallace multiplier", elec.WallaceMultiplier(w)},
		} {
			t.AddRow(row.name, fmt.Sprint(w),
				fmt.Sprint(row.gc.Gates), fmt.Sprint(row.gc.Depth),
				phy.FormatTime(row.gc.Delay(tech)), phy.FormatEnergy(row.gc.Energy(tech)))
		}
	}
	t.AddNote("the Kogge-Stone option would shorten the EE/OE accumulate cycle at wide widths; the paper's Eq. 5/6 CLA is kept as the default for fidelity")
	return t, nil
}
