package eval

import (
	"fmt"
	"math"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/phy"
	"pixel/internal/report"
	"pixel/internal/sweep"
)

// Sweep axes used by the figures, matching the paper.
var (
	// Fig4Lanes / Fig4Bits are the single-MAC-unit sweep axes.
	Fig4Lanes = []int{2, 4, 8, 16}
	Fig4Bits  = []int{2, 4, 8, 16, 32}
	// FigBits is the 4/8/16/32 bits-per-wavelength axis of Figs 5/7/10.
	FigBits = []int{4, 8, 16, 32}
	// Fig8Bits is the latency sweep (the paper plots 1-32).
	Fig8Bits = []int{1, 2, 4, 8, 12, 16, 24, 32}
)

// Table1 regenerates the paper's Table I: VGG16 per-layer operation
// counts in millions.
func Table1() (*report.Table, error) {
	t := report.New("Table I: VGG16 computations [millions]",
		"Layer", "MVM", "Mul", "Add", "Act", "Input Shape")
	for _, l := range cnn.VGG16().Layers {
		c := l.Counts(cnn.ModePaper)
		mvm := report.Sci(c.MVM / 1e6)
		if l.Type == cnn.FC {
			mvm = "1e-06" // the paper prints 10^-6 million = one MVM
		}
		t.AddRow(l.Name, mvm, report.Sci(c.Mul/1e6), report.Sci(c.Add/1e6),
			report.Sci(c.Act/1e6), l.InputShape())
	}
	t.AddNote("paper prints Conv1's input unpadded ([224,224,3]); all rows here show the padded extent Eq. 11 uses")
	return t, nil
}

// Fig4 regenerates Figure 4: energy per bit of a single MAC unit for
// every (lanes, bits/lane) point and design.
func Fig4() (*report.Table, error) {
	t := report.New("Figure 4: energy/bit of a single MAC unit [pJ/bit]",
		"Lanes", "Bits/lane", "EE", "OE", "OO")
	for _, lanes := range Fig4Lanes {
		for _, bits := range Fig4Bits {
			row := []string{fmt.Sprint(lanes), fmt.Sprint(bits)}
			for _, d := range arch.Designs() {
				e, err := EnergyPerBit(d, lanes, bits)
				if err != nil {
					return nil, err
				}
				row = append(row, report.F(e/phy.Picojoule, 2))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// EnergyPerBit returns the per-bit energy [J] of one MAC operation under
// the design point — Figure 4's quantity. Configurations come from the
// engine's memo, so the grid sweep builds each one once.
func EnergyPerBit(d arch.Design, lanes, bits int) (float64, error) {
	cfg, err := engine.Config(sweep.Point{Design: d, Lanes: lanes, Bits: bits})
	if err != nil {
		return 0, err
	}
	return arch.PerOp(cfg).Total() / arch.NativePrecision, nil
}

// Fig5 regenerates Figure 5: per-component energy for AlexNet, LeNet
// and VGG16 at 4 lanes with 4/8/16 bits/lane.
func Fig5() (*report.Table, error) {
	t := report.New("Figure 5: energy per component [mJ] (4 lanes)",
		"CNN", "Des", "Bits", "Mul", "Add", "Act", "o/e", "Comm", "Laser")
	nets := []cnn.Network{cnn.AlexNet(), cnn.LeNet(), cnn.VGG16()}
	if err := prefetch(nets, gridPoints(arch.Designs(), 4, []int{4, 8, 16})); err != nil {
		return nil, err
	}
	for _, net := range nets {
		for _, bits := range []int{4, 8, 16} {
			for _, d := range arch.Designs() {
				c, err := costOf(net, d, 4, bits)
				if err != nil {
					return nil, err
				}
				b := c.Energy
				mj := func(v float64) string { return report.Sci(v / phy.Millijoule) }
				t.AddRow(net.Name, d.String(), fmt.Sprint(bits),
					mj(b.Mul), mj(b.Add), mj(b.Act), mj(b.OtoE), mj(b.Comm), mj(b.Laser))
			}
		}
	}
	return t, nil
}

// Fig6 regenerates Figure 6: MAC-unit area vs lanes at 4 bits/lane.
func Fig6() (*report.Table, error) {
	t := report.New("Figure 6: MAC-unit area at 4 bits/lane [mm^2]",
		"Lanes", "EE", "OE", "OO")
	for _, lanes := range []int{2, 4, 8, 16, 32} {
		row := []string{fmt.Sprint(lanes)}
		for _, d := range arch.Designs() {
			a := arch.Area(arch.MustConfig(d, lanes, 4)).Total()
			row = append(row, report.Sci(a/phy.SquareMillimeter))
		}
		t.AddRow(row...)
	}
	t.AddNote("ordering EE < OE << OO; the OO curve is MZI-dominated (2 mm arms)")
	return t, nil
}

// NormalizedEnergy returns E(design)/E(EE) for one network at the
// design point — Figure 7's quantity. Both evaluations go through the
// engine's memo, so the EE reference is priced once per (lanes, bits)
// however many designs are normalized against it.
func NormalizedEnergy(net cnn.Network, d arch.Design, lanes, bits int) (float64, error) {
	ref, err := costOf(net, arch.EE, lanes, bits)
	if err != nil {
		return 0, err
	}
	c, err := costOf(net, d, lanes, bits)
	if err != nil {
		return 0, err
	}
	return c.Energy.Total() / ref.Energy.Total(), nil
}

// Fig7 regenerates Figure 7: normalized inference energy for the six
// CNNs at 8 lanes across 4/8/16/32 bits/lane. The full grid is warmed
// through the worker pool before the rows are assembled.
func Fig7() (*report.Table, error) {
	t := report.New("Figure 7: normalized energy (8 lanes, EE = 1 per group)",
		"CNN", "Bits", "EE", "OE", "OO")
	if err := prefetch(cnn.All(), gridPoints(arch.Designs(), 8, FigBits)); err != nil {
		return nil, err
	}
	for _, net := range cnn.All() {
		for _, bits := range FigBits {
			row := []string{net.Name, fmt.Sprint(bits)}
			for _, d := range arch.Designs() {
				v, err := NormalizedEnergy(net, d, 8, bits)
				if err != nil {
					return nil, err
				}
				row = append(row, report.F(v, 3))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// GeomeanLatency returns the geometric-mean inference latency [s]
// across the six CNNs — Figure 8's quantity.
func GeomeanLatency(d arch.Design, lanes, bits int) (float64, error) {
	logSum := 0.0
	nets := cnn.All()
	for _, net := range nets {
		c, err := costOf(net, d, lanes, bits)
		if err != nil {
			return 0, err
		}
		logSum += math.Log(c.Latency)
	}
	return math.Exp(logSum / float64(len(nets))), nil
}

// Fig8 regenerates Figure 8: geomean latency across the six CNNs at 8
// lanes for bits/lane 1-32.
func Fig8() (*report.Table, error) {
	t := report.New("Figure 8: geomean latency across CNNs (8 lanes) [ms]",
		"Bits/lane", "EE", "OE", "OO")
	if err := prefetch(cnn.All(), gridPoints(arch.Designs(), 8, Fig8Bits)); err != nil {
		return nil, err
	}
	for _, bits := range Fig8Bits {
		row := []string{fmt.Sprint(bits)}
		for _, d := range arch.Designs() {
			v, err := GeomeanLatency(d, 8, bits)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(v/phy.Millisecond, 3))
		}
		t.AddRow(row...)
	}
	t.AddNote("EE falls monotonically; OE/OO are U-shaped (burst > 10 GHz x electrical cycle)")
	return t, nil
}

// Fig9 regenerates Figure 9: ZFNet per-layer latency at 8 lanes,
// 8 bits/lane.
func Fig9() (*report.Table, error) {
	t := report.New("Figure 9: ZFNet per-layer latency (8 lanes, 8 bits/lane) [ms]",
		"Layer", "EE", "OE", "OO")
	costs := map[arch.Design]arch.NetworkCost{}
	for _, d := range arch.Designs() {
		c, err := costOf(cnn.ZFNet(), d, 8, 8)
		if err != nil {
			return nil, err
		}
		costs[d] = c
	}
	for i, l := range cnn.ZFNet().Layers {
		t.AddRow(l.Name,
			report.F(costs[arch.EE].Layers[i].Latency/phy.Millisecond, 3),
			report.F(costs[arch.OE].Layers[i].Latency/phy.Millisecond, 3),
			report.F(costs[arch.OO].Layers[i].Latency/phy.Millisecond, 3))
	}
	conv2 := 1 - costs[arch.OO].Layers[1].Latency/costs[arch.EE].Layers[1].Latency
	t.AddNote("Conv2: OO is %.1f%% faster than EE (paper: 31.9%%)", 100*conv2)
	return t, nil
}

// NormalizedEDP returns EDP(design)/EDP(EE) for one network at the
// design point — Figure 10's quantity.
func NormalizedEDP(net cnn.Network, d arch.Design, lanes, bits int) (float64, error) {
	ref, err := costOf(net, arch.EE, lanes, bits)
	if err != nil {
		return 0, err
	}
	c, err := costOf(net, d, lanes, bits)
	if err != nil {
		return 0, err
	}
	return c.EDP() / ref.EDP(), nil
}

// Fig10 regenerates Figure 10: normalized EDP for the six CNNs at 4
// lanes across 4/8/16/32 bits/lane.
func Fig10() (*report.Table, error) {
	t := report.New("Figure 10: normalized EDP (4 lanes, EE = 1 per group)",
		"CNN", "Bits", "EE", "OE", "OO")
	if err := prefetch(cnn.All(), gridPoints(arch.Designs(), 4, FigBits)); err != nil {
		return nil, err
	}
	for _, net := range cnn.All() {
		for _, bits := range FigBits {
			row := []string{net.Name, fmt.Sprint(bits)}
			for _, d := range arch.Designs() {
				v, err := NormalizedEDP(net, d, 4, bits)
				if err != nil {
					return nil, err
				}
				row = append(row, report.F(v, 3))
			}
			t.AddRow(row...)
		}
	}
	h := MeasureHeadlines()
	t.AddNote("geomean at 16 bits/lane: OE %.1f%% better than EE (paper 48.4%%), OO %.1f%% (paper 73.9%%)",
		100*h.OEEDPImprovement, 100*h.OOEDPImprovement)
	return t, nil
}

// Table2 regenerates Table II: the component energy breakdown at 4
// lanes, 16 bits/lane for ResNet-34, GoogLeNet and ZFNet [mJ].
func Table2() (*report.Table, error) {
	t := report.New("Table II: energy breakdown [mJ] (4 lanes, 16 bits/lane)",
		"CNN", "Des", "Mul", "Add", "Act", "o/e", "Comm", "Laser")
	nets := []string{"ResNet-34", "GoogLeNet", "ZFNet"}
	for _, name := range nets {
		net, err := cnn.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, d := range arch.Designs() {
			c, err := costOf(net, d, 4, 16)
			if err != nil {
				return nil, err
			}
			b := c.Energy
			mj := func(v float64) string { return report.Sci(v / phy.Millijoule) }
			t.AddRow(net.Name, d.String(), mj(b.Mul), mj(b.Add), mj(b.Act), mj(b.OtoE), mj(b.Comm), mj(b.Laser))
		}
	}
	return t, nil
}
