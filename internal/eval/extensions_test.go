package eval

import (
	"strings"
	"testing"

	"pixel/internal/arch"
	"pixel/internal/cnn"
)

func TestAllExtensionsRun(t *testing.T) {
	exts := Extensions()
	if len(exts) != 11 {
		t.Fatalf("extension count = %d, want 11", len(exts))
	}
	for _, e := range exts {
		if !strings.HasPrefix(e.ID, "ext-") {
			t.Errorf("extension id %q must carry the ext- prefix", e.ID)
		}
		tab, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
	}
}

func TestAllExperimentsIncludesBoth(t *testing.T) {
	all := AllExperiments()
	if len(all) != len(Experiments())+len(Extensions()) {
		t.Error("AllExperiments must concatenate artifacts and extensions")
	}
	if _, err := ByID("ext-ablation"); err != nil {
		t.Errorf("ByID should resolve extensions: %v", err)
	}
}

func TestExtAblationHasBaselineRow(t *testing.T) {
	tab, err := ExtAblation()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][0] != "baseline" {
		t.Errorf("first ablation row = %v, want baseline", tab.Rows[0])
	}
}

func TestExtThroughputRowCount(t *testing.T) {
	tab, err := ExtThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6*3 {
		t.Errorf("throughput rows = %d, want 18", len(tab.Rows))
	}
}

func TestExtDisciplinePairsPerRowSize(t *testing.T) {
	tab, err := ExtDiscipline()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4*2 {
		t.Errorf("discipline rows = %d, want 8", len(tab.Rows))
	}
}

func TestExtMapperCoversTransports(t *testing.T) {
	tab, err := ExtMapper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6*2 {
		t.Errorf("mapper rows = %d, want 12", len(tab.Rows))
	}
	elec, photonic := false, false
	for _, r := range tab.Rows {
		switch r[1] {
		case "electrical":
			elec = true
		case "photonic":
			photonic = true
		}
	}
	if !elec || !photonic {
		t.Error("both transports must appear")
	}
}

func TestIdleEnergyMonotoneInDuty(t *testing.T) {
	cfg := arch.MustConfig(arch.OO, 4, 16)
	net := cnn.AlexNet()
	prev := 0.0
	for i, duty := range []float64{1, 0.5, 0.1, 0.01} {
		e, err := IdleEnergyPerInference(net, cfg, duty)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && e <= prev {
			t.Errorf("per-inference energy should grow as duty falls: %v -> %v", prev, e)
		}
		prev = e
	}
	if _, err := IdleEnergyPerInference(net, cfg, 0); err == nil {
		t.Error("zero duty should error")
	}
	if _, err := IdleEnergyPerInference(net, cfg, 1.5); err == nil {
		t.Error("duty above 1 should error")
	}
}

func TestIdleErodesOpticalAdvantage(t *testing.T) {
	// At full duty the optical designs win energy outright; at 1% duty
	// the lasers' idle burn must visibly shrink the gap.
	net := cnn.AlexNet()
	gap := func(duty float64) float64 {
		ee, err := IdleEnergyPerInference(net, arch.MustConfig(arch.EE, 4, 16), duty)
		if err != nil {
			t.Fatal(err)
		}
		oo, err := IdleEnergyPerInference(net, arch.MustConfig(arch.OO, 4, 16), duty)
		if err != nil {
			t.Fatal(err)
		}
		return oo / ee
	}
	if g := gap(1); g >= 1 {
		t.Errorf("OO should win at full duty, ratio %v", g)
	}
	if gap(0.01) <= gap(1) {
		t.Error("idling should erode the optical advantage")
	}
}

func TestExtAddersMentionsBothFamilies(t *testing.T) {
	tab, err := ExtAdders()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"CLA", "Kogge-Stone", "array multiplier", "Wallace"} {
		if !strings.Contains(out, want) {
			t.Errorf("adders table missing %q", want)
		}
	}
}
