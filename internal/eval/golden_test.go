package eval

import (
	"strings"
	"testing"
)

// TestTable1Golden locks the exact rendering of the Table I
// reproduction: the numbers are deterministic (pure arithmetic on the
// layer specs), so any drift means the workload model changed.
func TestTable1Golden(t *testing.T) {
	const want = `Table I: VGG16 computations [millions]
Layer   MVM    Mul       Add       Act    Input Shape
-------------------------------------------------------
Conv1   9.63   86.7      89.9      3.21   [226,226,3]
Conv2   206    1.85e+03  1.85e+03  3.21   [226,226,64]
Conv3   103    925       926       1.61   [114,114,64]
Conv4   206    1.85e+03  1.85e+03  1.61   [114,114,128]
Conv5   103    925       926       0.803  [58,58,128]
Conv6   206    1.85e+03  1.85e+03  0.803  [58,58,256]
Conv7   103    925       925       0.401  [30,30,256]
Conv8   206    1.85e+03  1.85e+03  0.401  [30,30,512]
Conv9   51.4   462       463       0.1    [16,16,512]
Conv10  51.4   462       463       0.1    [16,16,512]
FC1     1e-06  629       1.26e+03  629    [25088]
FC2     1e-06  16.8      33.6      16.8   [4096]
FC3     1e-06  16.8      33.6      16.8   [4096]
note: paper prints Conv1's input unpadded ([224,224,3]); all rows here show the padded extent Eq. 11 uses
`
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("Table I rendering drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWorkloadsGolden locks the workload inventory (pure arithmetic on
// the layer tables — parameter counts and op counts).
func TestWorkloadsGolden(t *testing.T) {
	const want = `Extension: workload summary (paper-mode op counts)
CNN        Layers  Params [M]  Weights@8b [MB]  MVM [M]  Mul [G]  Add [G]  Act [M]
----------------------------------------------------------------------------------
VGG16      13      133         133              1242.8   11.85    12.52    675.2
AlexNet    8       62.4        62.4             76.9     1.2      1.31     119.1
ZFNet      8       62.4        62.3             78.2     1.23     1.35     120
ResNet-34  37      21.8        21.8             413.5    3.66     3.67     4
LeNet      5       0.1         0.1              0        0        0        0.2
GoogLeNet  58      7           7                483.8    1.58     1.59     4.3
`
	tab, err := ExtWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("workload inventory drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
