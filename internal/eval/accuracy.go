package eval

import (
	"fmt"
	"math"
	"math/rand"

	"pixel/internal/qnn"
	"pixel/internal/report"
	"pixel/internal/tensor"
)

// Precision study: the paper sweeps bits/lane for cost; this extension
// closes the loop on what reduced precision does to the *computation*.
// A reference model runs at 8-bit weights/activations; quantized
// variants drop weight LSBs down to the target precision and the study
// measures logit deviation and top-1 agreement against the 8-bit
// reference over a batch of random inputs.

// AccuracyPoint is the outcome at one precision.
type AccuracyPoint struct {
	Bits int
	// Top1Agreement is the fraction of inputs whose argmax matches the
	// 8-bit reference.
	Top1Agreement float64
	// MeanRelLogitError is the mean relative L1 deviation of the
	// logits.
	MeanRelLogitError float64
}

// accuracyWeights builds the fixed random 8-bit study weights.
func accuracyWeights(rng *rand.Rand) (*tensor.Kernel, []int64) {
	k := tensor.NewKernel(4, 3, 1)
	for i := range k.Data {
		k.Data[i] = rng.Int63n(256)
	}
	fcW := make([]int64, 5*5*4*8)
	for i := range fcW {
		fcW[i] = rng.Int63n(256)
	}
	return k, fcW
}

// quantizeTo returns a copy of w with the low (8-p) bits dropped and
// rescaled back, the standard uniform-quantization projection.
func quantizeTo(w []int64, bits int) []int64 {
	shift := uint(8 - bits)
	out := make([]int64, len(w))
	for i, v := range w {
		out[i] = (v >> shift) << shift
	}
	return out
}

// buildQuantizedModel assembles the study model with weights quantized
// to the given precision.
func buildQuantizedModel(k *tensor.Kernel, fcW []int64, bits int) *qnn.Model {
	qk := tensor.NewKernel(k.M, k.R, k.C)
	copy(qk.Data, quantizeTo(k.Data, bits))
	qfc := quantizeTo(fcW, bits)
	return &qnn.Model{
		Label:          fmt.Sprintf("acc-%db", bits),
		ActivationBits: 16,
		Layers: []qnn.Layer{
			&qnn.Conv{Label: "conv", Kernel: qk, Stride: 1},
			&qnn.Requant{Label: "rq", Shift: 8, Max: 255},
			&qnn.MaxPool{Label: "pool", Window: 2},
			&qnn.Flatten{Label: "flat"},
			&qnn.FullyConnected{Label: "fc", Weights: qfc, Out: 8},
		},
	}
}

// MeasureAccuracy runs the study over `inputs` random 12x12 images and
// returns one point per precision in [2, 8].
func MeasureAccuracy(inputs int) ([]AccuracyPoint, error) {
	if inputs < 1 {
		return nil, fmt.Errorf("eval: need at least one input")
	}
	rng := rand.New(rand.NewSource(99))
	k, fcW := accuracyWeights(rng)
	ref := buildQuantizedModel(k, fcW, 8)

	images := make([]*tensor.Tensor, inputs)
	for i := range images {
		img := tensor.New(12, 12, 1)
		for j := range img.Data {
			img.Data[j] = rng.Int63n(256)
		}
		images[i] = img
	}

	refOut := make([]*tensor.Tensor, inputs)
	for i, img := range images {
		out, err := ref.Run(img, qnn.ReferenceDotter{})
		if err != nil {
			return nil, err
		}
		refOut[i] = out
	}

	var points []AccuracyPoint
	for bits := 2; bits <= 8; bits++ {
		m := buildQuantizedModel(k, fcW, bits)
		agree := 0
		var relErr float64
		for i, img := range images {
			out, err := m.Run(img, qnn.ReferenceDotter{})
			if err != nil {
				return nil, err
			}
			if tensor.ArgMax(out) == tensor.ArgMax(refOut[i]) {
				agree++
			}
			var num, den float64
			for j := range out.Data {
				num += math.Abs(float64(out.Data[j] - refOut[i].Data[j]))
				den += math.Abs(float64(refOut[i].Data[j]))
			}
			if den > 0 {
				relErr += num / den
			}
		}
		points = append(points, AccuracyPoint{
			Bits:              bits,
			Top1Agreement:     float64(agree) / float64(inputs),
			MeanRelLogitError: relErr / float64(inputs),
		})
	}
	return points, nil
}

// ExtAccuracy renders the precision study.
func ExtAccuracy() (*report.Table, error) {
	points, err := MeasureAccuracy(64)
	if err != nil {
		return nil, err
	}
	t := report.New("Extension: weight precision vs computation fidelity (64 random inputs, 8-bit reference)",
		"Weight bits", "Top-1 agreement", "Mean rel logit error")
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.Bits),
			fmt.Sprintf("%.0f%%", 100*p.Top1Agreement),
			fmt.Sprintf("%.4f", p.MeanRelLogitError))
	}
	t.AddNote("quantization: drop-and-rescale of weight LSBs; activations stay 8-bit")
	return t, nil
}
