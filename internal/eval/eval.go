// Package eval contains one experiment runner per figure and table of
// the paper's evaluation (Table I, Figures 4-10, Table II). Each
// experiment regenerates the same rows/series the paper reports, using
// the cost model of internal/arch and the workloads of internal/cnn.
package eval

import (
	"fmt"
	"sort"

	"pixel/internal/report"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the stable identifier used by cmd/pixelsim (-exp flag) and
	// the bench harness: "table1", "fig4" ... "fig10", "table2".
	ID string
	// Paper names the artifact in the paper ("Figure 7").
	Paper string
	// Title is a one-line description.
	Title string
	// Run computes the experiment and renders its table.
	Run func() (*report.Table, error)
}

// Experiments returns all experiments in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Paper: "Table I", Title: "VGG16 per-layer computations [millions]", Run: Table1},
		{ID: "fig4", Paper: "Figure 4", Title: "Energy/bit of a single MAC unit vs lanes and bits/lane", Run: Fig4},
		{ID: "fig5", Paper: "Figure 5", Title: "Energy per component for AlexNet, LeNet, VGG16 (4 lanes)", Run: Fig5},
		{ID: "fig6", Paper: "Figure 6", Title: "MAC-unit area vs lanes at 4 bits/lane", Run: Fig6},
		{ID: "fig7", Paper: "Figure 7", Title: "Normalized energy, six CNNs x bits/lane (8 lanes)", Run: Fig7},
		{ID: "fig8", Paper: "Figure 8", Title: "Geomean inference latency vs bits/lane (8 lanes)", Run: Fig8},
		{ID: "fig9", Paper: "Figure 9", Title: "ZFNet per-layer latency (8 lanes, 8 bits/lane)", Run: Fig9},
		{ID: "fig10", Paper: "Figure 10", Title: "Normalized EDP, six CNNs x bits/lane (4 lanes)", Run: Fig10},
		{ID: "table2", Paper: "Table II", Title: "Component energy breakdown [mJ] (4 lanes, 16 bits/lane)", Run: Table2},
	}
}

// ByID returns the experiment with the given id, searching the paper
// artifacts and the extensions.
func ByID(id string) (Experiment, error) {
	ids := make([]string, 0, 16)
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("eval: unknown experiment %q (valid: %v)", id, ids)
}
