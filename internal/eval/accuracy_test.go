package eval

import "testing"

func TestMeasureAccuracyShapes(t *testing.T) {
	points, err := MeasureAccuracy(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 { // 2..8 bits
		t.Fatalf("points = %d, want 7", len(points))
	}
	// The 8-bit point IS the reference: perfect agreement, zero error.
	last := points[len(points)-1]
	if last.Bits != 8 || last.Top1Agreement != 1 || last.MeanRelLogitError != 0 {
		t.Errorf("8-bit point should be exact: %+v", last)
	}
	// Fidelity must not degrade as precision grows (weak monotonicity
	// on the logit error).
	for i := 1; i < len(points); i++ {
		if points[i].MeanRelLogitError > points[i-1].MeanRelLogitError+1e-12 {
			t.Errorf("logit error should not grow with precision: %v -> %v at %d bits",
				points[i-1].MeanRelLogitError, points[i].MeanRelLogitError, points[i].Bits)
		}
	}
	// 2-bit weights must hurt noticeably more than 6-bit weights.
	if points[0].MeanRelLogitError <= points[4].MeanRelLogitError {
		t.Error("2-bit quantization should deviate more than 6-bit")
	}
}

func TestMeasureAccuracyValidation(t *testing.T) {
	if _, err := MeasureAccuracy(0); err == nil {
		t.Error("zero inputs should error")
	}
}

func TestExtAccuracyRuns(t *testing.T) {
	tab, err := ExtAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Errorf("accuracy rows = %d, want 7", len(tab.Rows))
	}
}
