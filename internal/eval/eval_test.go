package eval

import (
	"strings"
	"testing"

	"pixel/internal/arch"
	"pixel/internal/cnn"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Experiments() {
		tab, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		var sb strings.Builder
		if err := tab.Render(&sb); err != nil {
			t.Errorf("%s: render: %v", e.ID, err)
		}
		if !strings.Contains(sb.String(), tab.Columns[0]) {
			t.Errorf("%s: rendered output missing header", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table2"} {
		e, err := ByID(id)
		if err != nil || e.ID != id {
			t.Errorf("ByID(%q): %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestExperimentCount(t *testing.T) {
	// One per published artifact: Table I, Figures 4-10, Table II.
	if got := len(Experiments()); got != 9 {
		t.Errorf("experiment count = %d, want 9", got)
	}
}

func TestTable1RowCount(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Errorf("Table I rows = %d, want 13 (10 conv + 3 FC)", len(tab.Rows))
	}
	// Spot-check the worked-example row.
	if tab.Rows[0][0] != "Conv1" || tab.Rows[0][2] != "86.7" {
		t.Errorf("Conv1 row = %v", tab.Rows[0])
	}
}

func TestFig4GridComplete(t *testing.T) {
	tab, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	want := len(Fig4Lanes) * len(Fig4Bits)
	if len(tab.Rows) != want {
		t.Errorf("Fig4 rows = %d, want %d", len(tab.Rows), want)
	}
}

func TestFig4EnergyPerBitShapes(t *testing.T) {
	// EE energy/bit grows with bits/lane; optical stays nearly flat.
	eeLow, err := EnergyPerBit(arch.EE, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	eeHigh, _ := EnergyPerBit(arch.EE, 8, 32)
	if eeHigh <= eeLow {
		t.Error("EE energy/bit should grow with bits/lane")
	}
	oeLow, _ := EnergyPerBit(arch.OE, 8, 4)
	oeHigh, _ := EnergyPerBit(arch.OE, 8, 32)
	if oeHigh > 1.5*oeLow {
		t.Errorf("OE energy/bit should be nearly flat in bits/lane: %v -> %v", oeLow, oeHigh)
	}
	// And EE grows with lanes (broadcast wiring).
	eeL2, _ := EnergyPerBit(arch.EE, 2, 8)
	eeL16, _ := EnergyPerBit(arch.EE, 16, 8)
	if eeL16 <= eeL2 {
		t.Error("EE energy/bit should grow with lanes")
	}
}

func TestFig7NormalizationAnchorsEE(t *testing.T) {
	tab, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[2] != "1" {
			t.Errorf("EE column must be 1 (normalized), got %q in %v", row[2], row)
		}
	}
}

func TestFig7OpticalWinsAtHighBits(t *testing.T) {
	for _, net := range cnn.All() {
		oo, err := NormalizedEnergy(net, arch.OO, 8, 32)
		if err != nil {
			t.Fatal(err)
		}
		if oo >= 0.5 {
			t.Errorf("%s: OO normalized energy at 32 bits = %.3f, want < 0.5 (paper: OO tiny at 32b/8 lanes)", net.Name, oo)
		}
	}
}

func TestFig8SeriesComplete(t *testing.T) {
	tab, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Fig8Bits) {
		t.Errorf("Fig8 rows = %d, want %d", len(tab.Rows), len(Fig8Bits))
	}
}

func TestFig9CoversAllLayers(t *testing.T) {
	tab, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(cnn.ZFNet().Layers) {
		t.Errorf("Fig9 rows = %d, want %d", len(tab.Rows), len(cnn.ZFNet().Layers))
	}
}

func TestFig10GeomeanNoteMatchesHeadlines(t *testing.T) {
	tab, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "paper 48.4%") {
		t.Errorf("Fig10 should carry the headline note, got %v", tab.Notes)
	}
}

func TestTable2RowsAndOrdering(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 { // 3 CNNs x 3 designs
		t.Errorf("Table II rows = %d, want 9", len(tab.Rows))
	}
	if tab.Rows[0][0] != "ResNet-34" || tab.Rows[0][1] != "EE" {
		t.Errorf("first row = %v", tab.Rows[0])
	}
}

func TestHeadlinesWithinPaperBands(t *testing.T) {
	h := MeasureHeadlines()
	checks := []struct {
		name     string
		got      float64
		lo, hi   float64
		paperVal float64
	}{
		{"OE EDP improvement", h.OEEDPImprovement, 0.42, 0.60, 0.484},
		{"OO EDP improvement", h.OOEDPImprovement, 0.68, 0.86, 0.739},
		{"multiply saving", h.MulSaving, 0.935, 0.965, 0.949},
		{"accumulate saving", h.AddSaving, 0.46, 0.62, 0.538},
		{"ZFNet Conv2 vs EE", h.ZFNetConv2VsEE, 0.25, 0.40, 0.319},
		{"ZFNet Conv2 vs OE", h.ZFNetConv2VsOE, 0.12, 0.28, 0.186},
		{"OO/OE laser ratio", h.LaserRatioOOvsOE, 1.3, 1.7, 1.52},
	}
	for _, c := range checks {
		if c.got < c.lo || c.got > c.hi {
			t.Errorf("%s = %.3f outside band [%.3f,%.3f] (paper %.3f)", c.name, c.got, c.lo, c.hi, c.paperVal)
		}
	}
}
