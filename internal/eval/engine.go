package eval

import (
	"context"
	"sync"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/sweep"
)

// The experiment runners share one sweep engine: the EE-normalized
// figures (7, 10), the geomean latency sweep (8) and the headline
// measurements all revisit the same (network, design, lanes, bits)
// points, so memoizing whole evaluations removes most of the pricing
// work, and grid figures fan their cells out across the worker pool.
var (
	engineMu   sync.Mutex
	engine     = sweep.New(sweep.Options{})
	engWorkers int
)

// SetWorkers overrides the per-run worker count of the shared engine
// (<= 0 restores the GOMAXPROCS default). cmd/pixelexp's -workers flag
// lands here.
func SetWorkers(n int) {
	engineMu.Lock()
	engWorkers = n
	engineMu.Unlock()
}

func runWorkers() int {
	engineMu.Lock()
	defer engineMu.Unlock()
	return engWorkers
}

// costOf prices one network at a design point through the shared
// memoized engine.
func costOf(net cnn.Network, d arch.Design, lanes, bits int) (arch.NetworkCost, error) {
	return engine.EvaluateNetwork(context.Background(),
		net, sweep.Point{Design: d, Lanes: lanes, Bits: bits})
}

// prefetch warms the engine's result cache for every (network, design
// point) cell of a figure in one parallel run, so the serial
// row-assembly loops that follow are pure cache hits. Networks are
// registered by value, keeping the runners independent of zoo lookup.
func prefetch(nets []cnn.Network, points []sweep.Point) error {
	jobs := make([]sweep.Job, 0, len(nets)*len(points))
	for _, net := range nets {
		engine.AddNetwork(net)
		for _, p := range points {
			jobs = append(jobs, sweep.Job{Network: net.Name, Point: p})
		}
	}
	_, err := engine.Run(context.Background(), jobs, sweep.RunOptions{Workers: runWorkers()})
	return err
}

// gridPoints enumerates design-major points over one lanes value and a
// bits axis — the shape of the bits/lane figures.
func gridPoints(designs []arch.Design, lanes int, bitsAxis []int) []sweep.Point {
	return sweep.Grid(designs, []int{lanes}, bitsAxis)
}
