package photonics

import (
	"math"
	"strings"
	"testing"

	"pixel/internal/phy"
)

func TestFSRKnownValue(t *testing.T) {
	// 7.5 um ring at 1550 nm with n_g = 4.2:
	// FSR = (1.55e-6)^2 / (4.2 * 2*pi*7.5e-6) ~= 12.1 nm.
	got := FSR(7.5*phy.Micrometer, 1550*phy.Nanometer)
	if math.Abs(got-12.1e-9) > 0.3e-9 {
		t.Errorf("FSR = %v, want ~12.1nm", got)
	}
	// Smaller rings have wider FSRs.
	small := FSR(3*phy.Micrometer, 1550*phy.Nanometer)
	if small <= got {
		t.Error("smaller ring should have a larger FSR")
	}
}

func TestFSRPanics(t *testing.T) {
	for _, f := range []func(){
		func() { FSR(0, 1550*phy.Nanometer) },
		func() { FSR(7.5*phy.Micrometer, 0) },
		func() { MaxUnambiguousChannels(7.5*phy.Micrometer, 1550*phy.Nanometer, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMaxUnambiguousChannels(t *testing.T) {
	// ~12.1 nm FSR / 0.8 nm spacing = 15 channels.
	got := MaxUnambiguousChannels(7.5*phy.Micrometer, 1550*phy.Nanometer, 0.8*phy.Nanometer)
	if got != 15 {
		t.Errorf("unambiguous channels = %d, want 15", got)
	}
	// Degenerate case floors at 1.
	if MaxUnambiguousChannels(1*phy.Millimeter, 1550*phy.Nanometer, 0.8*phy.Nanometer) != 1 {
		t.Error("giant ring should floor at 1 channel")
	}
}

func TestCheckFSRFindsPaperTension(t *testing.T) {
	// The paper assumes up to 128 wavelengths per waveguide with
	// 7.5 um rings — more than 8x the single-ring unambiguous range.
	// The reproduction surfaces this rather than silently allowing it.
	plan := DefaultChannelPlan(128)
	err := plan.CheckFSR(7.5 * phy.Micrometer)
	if err == nil {
		t.Fatal("128 channels should exceed the 7.5um ring FSR")
	}
	if !strings.Contains(err.Error(), "aliases") {
		t.Errorf("error should explain aliasing: %v", err)
	}
	// A 15-channel plan fits.
	if err := DefaultChannelPlan(15).CheckFSR(7.5 * phy.Micrometer); err != nil {
		t.Errorf("15 channels should fit one FSR: %v", err)
	}
	// PIXEL's own 4-lane and 8-lane OMAC groups (16/64 wavelengths for
	// L^2) are near or past the edge; the 4-lane point fits.
	if err := DefaultChannelPlan(4).CheckFSR(7.5 * phy.Micrometer); err != nil {
		t.Errorf("4 channels must fit: %v", err)
	}
	// Invalid plans propagate their validation error.
	bad := DefaultChannelPlan(8)
	bad.Spacing = 0
	if err := bad.CheckFSR(7.5 * phy.Micrometer); err == nil {
		t.Error("invalid plan should error")
	}
}
