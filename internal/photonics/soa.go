package photonics

import (
	"fmt"

	"pixel/internal/phy"
)

// SOA models a semiconductor optical amplifier — the gain element that
// makes deep OO accumulation chains practical. The failure-injection
// tests show that per-stage MZI insertion loss skews the amplitude
// levels of long chains until the comparator ladder misreads them; an
// SOA inserted in the chain restores the levels at the cost of
// electrical pump power (and, in reality, ASE noise, modeled as a
// noise-figure bookkeeping entry for link budgets).
type SOA struct {
	// GainDB is the optical power gain [dB].
	GainDB float64
	// NoiseFigureDB degrades the link budget margin [dB].
	NoiseFigureDB float64
	// PumpPower is the electrical drive [W].
	PumpPower float64
	// Area is the device footprint [m^2].
	Area float64
}

// DefaultSOA returns a 10 dB on-chip SOA.
func DefaultSOA() SOA {
	return SOA{
		GainDB:        10,
		NoiseFigureDB: 6,
		PumpPower:     20 * phy.Milliwatt,
		Area:          500 * phy.Micrometer * 2 * phy.Micrometer,
	}
}

// Validate reports an error for non-physical parameters.
func (s SOA) Validate() error {
	switch {
	case s.GainDB <= 0:
		return fmt.Errorf("photonics: SOA gain must be positive")
	case s.NoiseFigureDB < 3:
		return fmt.Errorf("photonics: SOA noise figure below the 3 dB quantum limit")
	case s.PumpPower <= 0 || s.Area <= 0:
		return fmt.Errorf("photonics: SOA pump/area must be positive")
	}
	return nil
}

// FieldGain returns the multiplicative field amplitude factor.
func (s SOA) FieldGain() float64 {
	return 1 / FieldLoss(s.GainDB) // sqrt of the linear power gain
}

// Energy returns the pump energy over a duration [J].
func (s SOA) Energy(duration float64) float64 {
	return s.PumpPower * duration
}

// MatchLoss returns an SOA whose gain exactly cancels the given loss
// [dB] (the per-stage compensation the OO chain uses), based on the
// template's pump scaling: pump power scales linearly with gain.
func (s SOA) MatchLoss(lossDB float64) (SOA, error) {
	if lossDB <= 0 {
		return SOA{}, fmt.Errorf("photonics: loss to match must be positive")
	}
	out := s
	out.GainDB = lossDB
	out.PumpPower = s.PumpPower * lossDB / s.GainDB
	if err := out.Validate(); err != nil {
		return SOA{}, err
	}
	return out, nil
}
