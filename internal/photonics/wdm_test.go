package photonics

import (
	"math"
	"testing"

	"pixel/internal/phy"
)

func TestChannelPlanValidate(t *testing.T) {
	if err := DefaultChannelPlan(16).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ChannelPlan{
		DefaultChannelPlan(0),
		DefaultChannelPlan(200),
		{Channels: 8, Spacing: 0, RingFWHM: 1e-10, MaxPenaltyDB: 1},
		{Channels: 8, Spacing: 1e-9, RingFWHM: 1e-10, MaxPenaltyDB: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestDropResponseShape(t *testing.T) {
	p := DefaultChannelPlan(8)
	if got := p.DropResponse(0); got != 1 {
		t.Errorf("on-resonance response = %v, want 1", got)
	}
	// Half maximum at half the FWHM.
	if got := p.DropResponse(p.RingFWHM / 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("response at FWHM/2 = %v, want 0.5", got)
	}
	// Monotone falling with offset.
	if p.DropResponse(p.Spacing) >= p.DropResponse(p.Spacing/2) {
		t.Error("response must fall with offset")
	}
	// Symmetric.
	if p.DropResponse(1e-10) != p.DropResponse(-1e-10) {
		t.Error("response must be symmetric")
	}
}

func TestWorstCrosstalkGrowsWithChannels(t *testing.T) {
	if got := DefaultChannelPlan(1).WorstCrosstalk(); got != 0 {
		t.Errorf("single channel crosstalk = %v, want 0", got)
	}
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		x := DefaultChannelPlan(n).WorstCrosstalk()
		if x <= prev {
			t.Errorf("crosstalk should grow with channels: %d -> %v", n, x)
		}
		prev = x
	}
}

func TestDefaultPlanCloses128Channels(t *testing.T) {
	// The paper's comb laser supports 128 wavelengths; the default
	// 100 GHz / Q~10k plan must stay within its 1 dB budget there.
	p := DefaultChannelPlan(128)
	if err := p.Check(); err != nil {
		t.Errorf("128-channel default plan should pass: %v", err)
	}
	pen, err := p.PowerPenaltyDB()
	if err != nil {
		t.Fatal(err)
	}
	if pen <= 0 || pen > 1 {
		t.Errorf("penalty = %v dB, want (0,1]", pen)
	}
}

func TestDenseGridFailsBudget(t *testing.T) {
	// Halving the spacing twice with broad rings must blow the budget.
	p := DefaultChannelPlan(64)
	p.Spacing = 0.2 * phy.Nanometer
	p.RingFWHM = 0.3 * phy.Nanometer
	if err := p.Check(); err == nil {
		t.Error("dense plan with broad rings should fail the budget")
	}
}

func TestMaxChannels(t *testing.T) {
	p := DefaultChannelPlan(1)
	if got := p.MaxChannels(); got != 128 {
		t.Errorf("default plan MaxChannels = %d, want 128", got)
	}
	tight := p
	tight.Spacing = 0.2 * phy.Nanometer
	tight.RingFWHM = 0.3 * phy.Nanometer
	got := tight.MaxChannels()
	if got >= 64 || got < 1 {
		t.Errorf("tight plan MaxChannels = %d, want a small count", got)
	}
}

func TestEyeFullyClosedReported(t *testing.T) {
	p := DefaultChannelPlan(128)
	p.RingFWHM = 3 * phy.Nanometer // rings wider than the whole grid
	if _, err := p.PowerPenaltyDB(); err == nil {
		t.Error("total eye closure must be reported")
	}
}

func TestQFactorAndBERMonotone(t *testing.T) {
	r := DefaultReceiverNoise()
	q1 := r.QFactor(10 * phy.Microwatt)
	q2 := r.QFactor(100 * phy.Microwatt)
	if q2 <= q1 || q1 <= 0 {
		t.Errorf("Q must grow with power: %v -> %v", q1, q2)
	}
	b1 := r.BER(10 * phy.Microwatt)
	b2 := r.BER(100 * phy.Microwatt)
	if b2 >= b1 {
		t.Errorf("BER must fall with power: %v -> %v", b1, b2)
	}
	if r.QFactor(0) != 0 || r.BER(0) != 0.5 {
		t.Error("dark input: Q=0, BER=0.5")
	}
}

func TestRequiredPowerHitsTargetBER(t *testing.T) {
	r := DefaultReceiverNoise()
	p, err := r.RequiredPower(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.BER(p); got > 1.1e-12 {
		t.Errorf("BER at required power = %v, want <= 1e-12", got)
	}
	// Just below the required power the BER misses the target.
	if got := r.BER(p * 0.8); got < 1e-12 {
		t.Errorf("BER below required power = %v, should exceed target", got)
	}
	// The -20 dBm-class sensitivity should correspond to a practical
	// 1e-12 requirement within an order of magnitude.
	if p < phy.Microwatt || p > 100*phy.Microwatt {
		t.Errorf("required power = %v, want uW-class", p)
	}
}

func TestRequiredPowerValidation(t *testing.T) {
	r := DefaultReceiverNoise()
	if _, err := r.RequiredPower(0); err == nil {
		t.Error("BER 0 should error")
	}
	if _, err := r.RequiredPower(0.6); err == nil {
		t.Error("BER 0.6 should error")
	}
}
