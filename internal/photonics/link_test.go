package photonics

import (
	"strings"
	"testing"

	"pixel/internal/phy"
)

func TestWaveguideModel(t *testing.T) {
	w := DefaultWaveguide(1 * phy.Millimeter)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if !relEq(w.Delay(), 10.45*phy.Picosecond, 1e-9) {
		t.Errorf("1mm delay = %v, want 10.45ps", w.Delay())
	}
	if !relEq(w.LossDB(), 0.13, 1e-9) {
		t.Errorf("1mm loss = %v dB, want 0.13", w.LossDB())
	}
	if w.FieldTransmission() >= 1 || w.FieldTransmission() <= 0 {
		t.Errorf("field transmission = %v out of (0,1)", w.FieldTransmission())
	}
	if !relEq(w.Area(), 1*phy.Millimeter*5.5*phy.Micrometer, 1e-12) {
		t.Errorf("area = %v", w.Area())
	}
	bad := w
	bad.Pitch = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero pitch should fail validation")
	}
}

func TestLaserModel(t *testing.T) {
	l := DefaultLaser(16, 1*phy.Milliwatt)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if !relEq(l.OpticalPower(), 16*phy.Milliwatt, 1e-12) {
		t.Errorf("optical power = %v", l.OpticalPower())
	}
	// 10% wall-plug: 16 mW optical needs 160 mW electrical.
	if !relEq(l.ElectricalPower(), 160*phy.Milliwatt, 1e-12) {
		t.Errorf("electrical power = %v", l.ElectricalPower())
	}
	if !relEq(l.Energy(10*phy.Nanosecond), 1.6*phy.Nanojoule, 1e-12) {
		t.Errorf("energy over 10ns = %v", l.Energy(10*phy.Nanosecond))
	}
}

func TestLaserValidate(t *testing.T) {
	cases := []Laser{
		DefaultLaser(0, phy.Milliwatt),   // no channels
		DefaultLaser(200, phy.Milliwatt), // beyond 128 channels
		DefaultLaser(8, 0),               // no power
		{Wavelengths: 8, PowerPerWavelength: phy.Milliwatt, WallPlugEfficiency: 1.5,
			Footprint: phy.SquareMicrometer}, // impossible efficiency
	}
	for i, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPhotodetector(t *testing.T) {
	pd := DefaultPhotodetector()
	if err := pd.Validate(); err != nil {
		t.Fatal(err)
	}
	// -20 dBm sensitivity = 10 uW.
	if !relEq(pd.Sensitivity, 10*phy.Microwatt, 1e-9) {
		t.Errorf("sensitivity = %v, want 10uW", pd.Sensitivity)
	}
	if !pd.Detects(100 * phy.Microwatt) {
		t.Error("should detect 100uW")
	}
	if pd.Detects(1 * phy.Microwatt) {
		t.Error("should not detect 1uW")
	}
	if !relEq(pd.Current(1*phy.Milliwatt), 1.1e-3, 1e-9) {
		t.Errorf("current at 1mW = %v, want 1.1mA", pd.Current(1*phy.Milliwatt))
	}
	if pd.Current(-1) != 0 {
		t.Error("negative power must give zero current")
	}
}

func TestLinkBudgetCloses(t *testing.T) {
	b := LinkBudget{
		LaserPowerPerWavelength: 1 * phy.Milliwatt,
		LossesDB: map[string]float64{
			"coupler":   1.0,
			"waveguide": 1.3,
			"rings":     0.5,
		},
		Detector: DefaultPhotodetector(),
		MarginDB: 3,
	}
	if !relEq(b.TotalLossDB(), 2.8, 1e-12) {
		t.Errorf("total loss = %v", b.TotalLossDB())
	}
	if !b.Closes() {
		t.Errorf("budget should close: received %v", b.ReceivedPower())
	}
	if err := b.Check(); err != nil {
		t.Error(err)
	}
	// Required launch power must be <= the configured launch power when
	// the budget closes.
	if b.RequiredLaserPower() > b.LaserPowerPerWavelength {
		t.Error("required power should not exceed available power for a closing budget")
	}
}

func TestLinkBudgetFails(t *testing.T) {
	b := LinkBudget{
		LaserPowerPerWavelength: 100 * phy.Microwatt,
		LossesDB:                map[string]float64{"path": 25},
		Detector:                DefaultPhotodetector(),
		MarginDB:                3,
	}
	if b.Closes() {
		t.Error("budget should not close")
	}
	err := b.Check()
	if err == nil {
		t.Fatal("Check should error")
	}
	if !strings.Contains(err.Error(), "does not close") {
		t.Errorf("unhelpful error: %v", err)
	}
	// And the required power is what would fix it (with an epsilon for
	// the dB round trip).
	b.LaserPowerPerWavelength = b.RequiredLaserPower() * (1 + 1e-9)
	if !b.Closes() {
		t.Error("budget should close at the required power")
	}
}

func TestOEConverterSlicing(t *testing.T) {
	one := 1 * phy.Milliwatt
	c, err := NewOEConverter(one)
	if err != nil {
		t.Fatal(err)
	}
	powers := []float64{0, one, 0.9 * one, 0.1 * one, one}
	got := c.Slice(powers)
	want := []int{0, 1, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slot %d: got %d want %d", i, got[i], want[i])
		}
	}
	if c.Energy(8) <= 0 {
		t.Error("conversion energy must be positive")
	}
}

func TestOEConverterRejectsWeakSignal(t *testing.T) {
	if _, err := NewOEConverter(1 * phy.Microwatt); err == nil {
		t.Error("one-level below sensitivity should error")
	}
}

func TestAmplitudeConverterResolve(t *testing.T) {
	unit := 100 * phy.Microwatt
	a, err := NewAmplitudeConverter(unit, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		power float64
		want  int
	}{
		{0, 0},
		{0.4 * unit, 0},
		{0.6 * unit, 1},
		{1 * unit, 1},
		{2.2 * unit, 2},
		{3.9 * unit, 4},
		{4 * unit, 4},
		{9 * unit, 4}, // saturates
	}
	for _, c := range cases {
		if got := a.Resolve(c.power); got != c.want {
			t.Errorf("Resolve(%v) = %d, want %d", c.power, got, c.want)
		}
	}
}

func TestAmplitudeConverterCheckedSaturation(t *testing.T) {
	unit := 100 * phy.Microwatt
	a, _ := NewAmplitudeConverter(unit, 3)
	if _, err := a.ResolveChecked(3 * unit); err != nil {
		t.Errorf("level 3 should be fine: %v", err)
	}
	if _, err := a.ResolveChecked(5 * unit); err == nil {
		t.Error("level 5 on a 3-level ladder should error")
	}
}

func TestAmplitudeConverterResolutionLimit(t *testing.T) {
	// Unit spacing below 2x detector sensitivity is not resolvable.
	if _, err := NewAmplitudeConverter(5*phy.Microwatt, 4); err == nil {
		t.Error("sub-resolution ladder should be rejected")
	}
	if _, err := NewAmplitudeConverter(100*phy.Microwatt, 0); err == nil {
		t.Error("maxLevel 0 should be rejected")
	}
}

func TestAmplitudeConverterTrainAndEnergy(t *testing.T) {
	unit := 200 * phy.Microwatt
	a, _ := NewAmplitudeConverter(unit, 7)
	levels := a.ResolveTrain([]float64{0, unit, 3 * unit, 7 * unit})
	want := []int{0, 1, 3, 7}
	for i := range want {
		if levels[i] != want[i] {
			t.Errorf("train slot %d = %d, want %d", i, levels[i], want[i])
		}
	}
	// The ladder costs more than the simple OOK converter per slot.
	simple, _ := NewOEConverter(unit)
	if a.Energy(10) <= simple.Energy(10) {
		t.Error("amplitude converter should cost more than simple OOK converter")
	}
}
