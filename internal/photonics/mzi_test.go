package photonics

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"pixel/internal/phy"
)

func TestMZIInterStagePathMatchesPaper(t *testing.T) {
	p := DefaultMZIParams()
	// Paper Eq. 9: d = c/(n_Si * 10GHz) - 2mm, printed as 6.77 mm. The
	// expression with n_Si = 3.48 actually gives 6.61 mm; we accept a
	// 3% band around the printed value (the paper's constant choice is
	// slightly inconsistent with its own Eq. 9).
	d, err := p.InterStagePath(10 * phy.Gigahertz)
	if err != nil {
		t.Fatal(err)
	}
	if !relEq(d, 6.77*phy.Millimeter, 0.03) {
		t.Errorf("inter-stage path = %v, want ~6.77mm", d)
	}
}

func TestMZIAccumulationDelayMatchesPaper(t *testing.T) {
	p := DefaultMZIParams()
	// Paper Eq. 10: (8*2mm + 7*6.77mm)*n_Si/c = 0.736 ns — the worked
	// example evaluates 8 stages. 3% band (see InterStagePath test).
	got, err := p.AccumulationDelay(8, 10*phy.Gigahertz)
	if err != nil {
		t.Fatal(err)
	}
	if !relEq(got, 0.736*phy.Nanosecond, 0.03) {
		t.Errorf("8-stage accumulation delay = %v, want ~0.736ns", got)
	}
}

func TestMZIInterStagePathErrors(t *testing.T) {
	p := DefaultMZIParams()
	if _, err := p.InterStagePath(0); err == nil {
		t.Error("zero bit rate should error")
	}
	// At a high enough rate the arm itself exceeds a bit period of
	// flight: 2mm of silicon is ~23ps, so beyond ~43 GHz sync fails.
	if _, err := p.InterStagePath(60 * phy.Gigahertz); err == nil {
		t.Error("expected synchronization failure at 60 GHz with 2mm arms")
	}
	if _, err := p.AccumulationDelay(0, 10*phy.Gigahertz); err == nil {
		t.Error("zero stages should error")
	}
}

func TestMZITransferUnitary(t *testing.T) {
	// |h x|^2 == |x|^2 for every phase setting: the ideal device
	// conserves energy.
	f := func(phiURaw, phiLRaw uint16, re0, im0, re1, im1 int8) bool {
		m := NewMZI()
		m.Params.InsertionLossDB = 0
		m.PhiUpper = float64(phiURaw) / 65535 * 2 * math.Pi
		m.PhiLower = float64(phiLRaw) / 65535 * 2 * math.Pi
		i0 := complex(float64(re0)/127, float64(im0)/127)
		i1 := complex(float64(re1)/127, float64(im1)/127)
		o0, o1 := m.Propagate(i0, i1)
		inP := real(i0*cmplx.Conj(i0) + i1*cmplx.Conj(i1))
		outP := real(o0*cmplx.Conj(o0) + o1*cmplx.Conj(o1))
		return math.Abs(inP-outP) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMZIBarState(t *testing.T) {
	m := NewMZI()
	m.Params.InsertionLossDB = 0
	m.SetBar()
	o0, o1 := m.Propagate(1, 0)
	if !relEq(cmplx.Abs(o0), 1, 1e-9) || cmplx.Abs(o1) > 1e-9 {
		t.Errorf("bar state: |o0|=%v |o1|=%v, want 1,0", cmplx.Abs(o0), cmplx.Abs(o1))
	}
	o0, o1 = m.Propagate(0, 1)
	if cmplx.Abs(o0) > 1e-9 || !relEq(cmplx.Abs(o1), 1, 1e-9) {
		t.Errorf("bar state i1: |o0|=%v |o1|=%v, want 0,1", cmplx.Abs(o0), cmplx.Abs(o1))
	}
}

func TestMZICrossState(t *testing.T) {
	m := NewMZI()
	m.Params.InsertionLossDB = 0
	m.SetCross()
	o0, o1 := m.Propagate(1, 0)
	if cmplx.Abs(o0) > 1e-9 || !relEq(cmplx.Abs(o1), 1, 1e-9) {
		t.Errorf("cross state: |o0|=%v |o1|=%v, want 0,1", cmplx.Abs(o0), cmplx.Abs(o1))
	}
}

func TestMZICouplerCombines(t *testing.T) {
	// Balanced coupler: two equal in-phase inputs combine; with
	// theta = pi/4 all power can emerge from one port.
	m := NewMZI()
	m.Params.InsertionLossDB = 0
	if err := m.SetCoupler(math.Pi / 4); err != nil {
		t.Fatal(err)
	}
	o0, o1 := m.Propagate(complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0))
	p0 := real(o0 * cmplx.Conj(o0))
	p1 := real(o1 * cmplx.Conj(o1))
	if !relEq(p0, 1, 1e-9) || p1 > 1e-9 {
		t.Errorf("coupler: p0=%v p1=%v, want all power at o0", p0, p1)
	}
}

func TestMZISetCouplerRange(t *testing.T) {
	m := NewMZI()
	if err := m.SetCoupler(0); err == nil {
		t.Error("theta=0 should error")
	}
	if err := m.SetCoupler(math.Pi / 2); err == nil {
		t.Error("theta=pi/2 should error")
	}
}

func TestMZIInsertionLossApplied(t *testing.T) {
	m := NewMZI()
	m.Params.InsertionLossDB = 3.0102999566 // halves power
	m.SetCross()
	_, o1 := m.Propagate(1, 0)
	if !relEq(real(o1*cmplx.Conj(o1)), 0.5, 1e-6) {
		t.Errorf("lossy cross output power = %v, want 0.5", real(o1*cmplx.Conj(o1)))
	}
}

func TestMZIPhaseErrorBreaksSwitching(t *testing.T) {
	m := NewMZI()
	m.Params.InsertionLossDB = 0
	m.SetCross()
	m.PhaseError = 0.4 // radians of drift
	o0, _ := m.Propagate(1, 0)
	// A perfect cross sends nothing to o0; a drifted device leaks.
	if cmplx.Abs(o0) < 1e-3 {
		t.Error("phase error should leak power to the wrong port")
	}
}

func TestMZIParamsCostModel(t *testing.T) {
	p := DefaultMZIParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !relEq(p.Delay(), phy.PropagationDelay(2*phy.Millimeter), 1e-12) {
		t.Errorf("arm delay = %v", p.Delay())
	}
	if p.Area() <= 0 {
		t.Error("area must be positive")
	}
	bad := p
	bad.ArmLength = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero arm length should fail validation")
	}
	m := NewMZI()
	if m.EnergyPerSlot() != p.ModulationEnergyPerBit {
		t.Error("EnergyPerSlot should return the configured per-bit energy")
	}
}
