package photonics

import (
	"fmt"
	"math"

	"pixel/internal/phy"
)

// MRRParams holds the physical and cost parameters of one microring
// resonator, defaulting to the devices the paper builds on (7.5 um
// radius, 100 fJ/bit-class modulation, thermally tuned).
type MRRParams struct {
	// Radius of the ring [m].
	Radius float64
	// SwitchEnergyPerBit is the dynamic energy to actuate the ring for
	// one bit time [J]. The paper's device citations demonstrate
	// <100 fJ/bit; its worked OE energy example charges 500 fJ per MRR
	// per bit, which folds in driver and thermal overheads. We default
	// to the worked-example value so the paper's arithmetic reproduces.
	SwitchEnergyPerBit float64
	// TuningPower is the static ring-heater power to hold resonance [W].
	TuningPower float64
	// DropLossDB is the insertion loss of the drop (resonant) path [dB].
	DropLossDB float64
	// ThroughLossDB is the per-ring loss of the off-resonance through
	// path [dB].
	ThroughLossDB float64
	// ExtinctionDB is the suppression of the blocked path [dB]: how much
	// light leaks to the drop port when the ring is off resonance.
	ExtinctionDB float64
}

// DefaultMRRParams returns the paper-calibrated ring parameters.
func DefaultMRRParams() MRRParams {
	return MRRParams{
		Radius:             7.5 * phy.Micrometer,
		SwitchEnergyPerBit: 500 * phy.Femtojoule,
		TuningPower:        20 * phy.Microwatt,
		DropLossDB:         0.5,
		ThroughLossDB:      0.05,
		ExtinctionDB:       20,
	}
}

// Validate reports an error for non-physical parameters.
func (p MRRParams) Validate() error {
	switch {
	case p.Radius <= 0:
		return fmt.Errorf("photonics: MRR radius must be positive")
	case p.SwitchEnergyPerBit < 0 || p.TuningPower < 0:
		return fmt.Errorf("photonics: MRR energies must be non-negative")
	case p.DropLossDB < 0 || p.ThroughLossDB < 0 || p.ExtinctionDB <= 0:
		return fmt.Errorf("photonics: MRR losses must be non-negative (extinction positive)")
	}
	return nil
}

// SPathLength returns the length of the S-shaped path a resonant signal
// travels through a cascaded double-MRR filter: two half circumferences,
// i.e. one full circumference 2*pi*r (paper Section IV-A2).
func (p MRRParams) SPathLength() float64 {
	return 2 * math.Pi * p.Radius
}

// SPathDelay returns the propagation delay through the double-ring
// resonant path (paper Eq. 7: 0.547 ps for r = 7.5 um).
func (p MRRParams) SPathDelay() float64 {
	return phy.PropagationDelay(p.SPathLength())
}

// RingArea returns the layout footprint of a single ring including tuning
// and drive overhead: a square of side 2r plus 30% overhead.
func (p MRRParams) RingArea() float64 {
	side := 2 * p.Radius
	return 1.3 * side * side
}

// DoubleMRRFilter is the cascaded double microring of Figure 1: a 2x2
// optical switch for its resonant wavelength, used as the optical AND
// stage. When the filter is actuated (Von, synapse bit = 1) the resonant
// wavelength couples from input I0 across both rings to output O1
// (cross); when idle (Voff, synapse bit = 0) the wavelength continues on
// its input waveguide to O0 (bar) and only extinction-level leakage
// reaches O1.
type DoubleMRRFilter struct {
	Params MRRParams
	// Channel is the WDM channel index this filter is tuned to.
	Channel int
	// On is the actuation state (the synapse bit).
	On bool
	// Detuned injects a thermal-drift fault: a detuned ring neither
	// couples its channel cleanly nor passes it cleanly. Used by the
	// failure-injection tests.
	Detuned bool
}

// NewDoubleMRRFilter returns a filter tuned to the given channel with
// default parameters.
func NewDoubleMRRFilter(channel int) *DoubleMRRFilter {
	return &DoubleMRRFilter{Params: DefaultMRRParams(), Channel: channel}
}

// CrossField returns the field amplitude factor from input I0 to output
// O1 (the AND output) for a signal on the given channel.
func (f *DoubleMRRFilter) CrossField(channel int) float64 {
	if channel != f.Channel {
		// Other wavelengths never resonate; only leakage crosses.
		return FieldLoss(f.Params.ExtinctionDB)
	}
	switch {
	case f.Detuned:
		// A drifted ring couples a fraction of the power: model as
		// 3 dB worse than the nominal drop path, which corrupts
		// amplitude-coded values downstream.
		return FieldLoss(f.Params.DropLossDB + 3)
	case f.On:
		return FieldLoss(f.Params.DropLossDB)
	default:
		return FieldLoss(f.Params.ExtinctionDB)
	}
}

// BarField returns the field amplitude factor from input I0 to output O0
// (the continue-on path) for a signal on the given channel.
func (f *DoubleMRRFilter) BarField(channel int) float64 {
	if channel != f.Channel {
		return FieldLoss(2 * f.Params.ThroughLossDB) // passes both rings
	}
	switch {
	case f.Detuned:
		return FieldLoss(2*f.Params.ThroughLossDB + 3)
	case f.On:
		// Resonant light has been dropped; only extinction remains.
		return FieldLoss(f.Params.ExtinctionDB)
	default:
		return FieldLoss(2 * f.Params.ThroughLossDB)
	}
}

// AND computes the logical AND the filter implements for its resonant
// channel: output power at O1 is (input power) x (cross transmission)^2.
// The boolean result applies standard OOK slicing: the decision
// threshold is half the nominal "one" level (the input power through the
// drop path), clamped below by the photodetector sensitivity.
func (f *DoubleMRRFilter) AND(inputPower float64, pd Photodetector) bool {
	field := f.CrossField(f.Channel)
	outPower := inputPower * field * field
	drop := FieldLoss(f.Params.DropLossDB)
	threshold := inputPower * drop * drop / 2
	if threshold < pd.Sensitivity {
		threshold = pd.Sensitivity
	}
	return outPower >= threshold
}

// EnergyPerCycle returns the dynamic energy charged to this filter for
// transmitting `bits` bit slots in one cycle: both rings actuate.
func (f *DoubleMRRFilter) EnergyPerCycle(bits int) float64 {
	if bits < 0 {
		panic("photonics: negative bit count")
	}
	return 2 * f.Params.SwitchEnergyPerBit * float64(bits)
}

// Area returns the footprint of the double-ring filter [m^2].
func (f *DoubleMRRFilter) Area() float64 {
	return 2 * f.Params.RingArea()
}

// Delay returns the worst-case propagation delay through the filter: the
// resonant S-path (cross) is longer than the through path.
func (f *DoubleMRRFilter) Delay() float64 {
	return f.Params.SPathDelay()
}
