package photonics

import (
	"fmt"
	"math"

	"pixel/internal/phy"
)

// LinkBudget computes whether an optical path closes: whether the laser
// power per wavelength, after every loss element on the worst-case path,
// still clears the detector sensitivity with the required margin.
type LinkBudget struct {
	// LaserPowerPerWavelength is the per-channel launch power [W].
	LaserPowerPerWavelength float64
	// LossesDB is the itemized loss stack [dB]: coupler, waveguide
	// propagation, ring pass-bys, drop paths, MZI insertion, splitters.
	LossesDB map[string]float64
	// Detector is the receiving photodiode.
	Detector Photodetector
	// MarginDB is the required safety margin [dB].
	MarginDB float64
}

// TotalLossDB returns the summed path loss [dB].
func (b LinkBudget) TotalLossDB() float64 {
	total := 0.0
	for _, v := range b.LossesDB {
		total += v
	}
	return total
}

// ReceivedPower returns the optical power arriving at the detector [W].
func (b LinkBudget) ReceivedPower() float64 {
	return b.LaserPowerPerWavelength * PowerLoss(b.TotalLossDB())
}

// Closes reports whether the link budget closes with margin.
func (b LinkBudget) Closes() bool {
	required := b.Detector.Sensitivity * phy.FromDB(b.MarginDB)
	return b.ReceivedPower() >= required
}

// RequiredLaserPower returns the minimum per-wavelength launch power [W]
// for the budget to close.
func (b LinkBudget) RequiredLaserPower() float64 {
	return b.Detector.Sensitivity * phy.FromDB(b.MarginDB+b.TotalLossDB())
}

// Check returns a descriptive error when the budget does not close.
func (b LinkBudget) Check() error {
	if b.Closes() {
		return nil
	}
	return fmt.Errorf(
		"photonics: link budget does not close: launch %s, path loss %.2f dB, received %s < required %s (sensitivity %s + margin %.1f dB)",
		phy.FormatPower(b.LaserPowerPerWavelength), b.TotalLossDB(),
		phy.FormatPower(b.ReceivedPower()),
		phy.FormatPower(b.Detector.Sensitivity*phy.FromDB(b.MarginDB)),
		phy.FormatPower(b.Detector.Sensitivity), b.MarginDB)
}

// OEConverter is the simple optical-to-electrical converter of the paper
// (Section II-A3, first design): a photodiode thresholding each bit slot
// and a shift register deserializing the pulse train. It recovers binary
// (on-off keyed) data only.
type OEConverter struct {
	Detector Photodetector
	// Threshold is the decision level [W]: slots at or above it are 1.
	Threshold float64
}

// NewOEConverter returns a converter with the decision threshold placed
// at half the expected "one" power (standard OOK slicing).
func NewOEConverter(onePower float64) (*OEConverter, error) {
	pd := DefaultPhotodetector()
	if onePower < pd.Sensitivity {
		return nil, fmt.Errorf("photonics: OOK 'one' level %s below detector sensitivity %s",
			phy.FormatPower(onePower), phy.FormatPower(pd.Sensitivity))
	}
	return &OEConverter{Detector: pd, Threshold: onePower / 2}, nil
}

// Slice converts a pulse-train of optical powers [W] into bits.
func (c *OEConverter) Slice(powers []float64) []int {
	bits := make([]int, len(powers))
	for i, p := range powers {
		if p >= c.Threshold {
			bits[i] = 1
		}
	}
	return bits
}

// Energy returns the conversion energy for n bit slots.
func (c *OEConverter) Energy(n int) float64 {
	return float64(n) * c.Detector.EnergyPerBit
}

// AmplitudeConverter is the second, more complex O/E converter: a
// photodiode feeding a ladder of current comparators that resolves
// multi-level pulse amplitudes into small integers (Section II-A3). The
// OO design needs it because cascaded-MZI accumulation encodes sums in
// optical amplitude.
type AmplitudeConverter struct {
	Detector Photodetector
	// UnitPower is the optical power of a single unit-amplitude pulse
	// [W]; level k nominally arrives as k*UnitPower.
	UnitPower float64
	// Levels is the number of distinguishable levels (0..Levels-1),
	// i.e. the ladder has Levels-1 comparators.
	Levels int
	// NoiseFloor is additive power uncertainty [W] the ladder must
	// tolerate; decision thresholds sit at (k-0.5)*UnitPower.
	NoiseFloor float64
	// Coherent selects the ladder calibration. Pulses that combine on
	// the SAME wavelength (the OO design's per-wavelength MZI chains)
	// add in *field amplitude*, so k coincident unit pulses arrive as
	// power k^2 * UnitPower and the comparator rungs are spaced
	// quadratically. Incoherent combining (distinct wavelengths on a
	// broadband detector) adds in power and uses linear rungs.
	Coherent bool
}

// NewAmplitudeConverter builds a ladder for sums up to maxLevel given the
// unit pulse power. It errors when adjacent levels are separated by less
// than the detector can resolve (unit power below 2x sensitivity) — the
// resolution limit the failure-injection tests exercise.
func NewAmplitudeConverter(unitPower float64, maxLevel int) (*AmplitudeConverter, error) {
	if maxLevel < 1 {
		return nil, fmt.Errorf("photonics: maxLevel must be >= 1")
	}
	pd := DefaultPhotodetector()
	if unitPower < 2*pd.Sensitivity {
		return nil, fmt.Errorf(
			"photonics: amplitude unit %s below resolvable spacing (2x sensitivity = %s): %d-level ladder infeasible",
			phy.FormatPower(unitPower), phy.FormatPower(2*pd.Sensitivity), maxLevel+1)
	}
	return &AmplitudeConverter{
		Detector:  pd,
		UnitPower: unitPower,
		Levels:    maxLevel + 1,
	}, nil
}

// rawLevel converts a slot power to an unclamped fractional level under
// the ladder's calibration.
func (a *AmplitudeConverter) rawLevel(power float64) float64 {
	if power <= 0 {
		return 0
	}
	if a.Coherent {
		return math.Sqrt(power / a.UnitPower)
	}
	return power / a.UnitPower
}

// Resolve converts one slot's optical power into its integer level by
// walking the comparator ladder. Powers beyond the top rung saturate at
// Levels-1 (and are reported as an error by ResolveChecked).
func (a *AmplitudeConverter) Resolve(power float64) int {
	level := int(math.Floor(a.rawLevel(power) + 0.5))
	if level < 0 {
		level = 0
	}
	if level > a.Levels-1 {
		level = a.Levels - 1
	}
	return level
}

// ResolveChecked is Resolve but errors when the power exceeds the top
// comparator rung — a sum larger than the ladder was built for, which in
// hardware would silently saturate and corrupt the accumulation.
func (a *AmplitudeConverter) ResolveChecked(power float64) (int, error) {
	if int(math.Floor(a.rawLevel(power)+0.5)) > a.Levels-1 {
		return a.Levels - 1, fmt.Errorf(
			"photonics: amplitude %.3g W exceeds %d-level ladder (unit %.3g W): saturated",
			power, a.Levels, a.UnitPower)
	}
	return a.Resolve(power), nil
}

// ResolveTrain converts a pulse train of powers into integer levels.
func (a *AmplitudeConverter) ResolveTrain(powers []float64) []int {
	out := make([]int, len(powers))
	for i, p := range powers {
		out[i] = a.Resolve(p)
	}
	return out
}

// Energy returns the conversion energy for n slots: the ladder fires all
// comparators every slot.
func (a *AmplitudeConverter) Energy(n int) float64 {
	perSlot := a.Detector.EnergyPerBit * (1 + 0.25*float64(a.Levels-1))
	return float64(n) * perSlot
}
