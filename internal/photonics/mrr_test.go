package photonics

import (
	"math"
	"testing"

	"pixel/internal/phy"
)

func relEq(got, want, rel float64) bool {
	if want == 0 {
		return math.Abs(got) < 1e-15
	}
	return math.Abs(got-want) <= rel*math.Abs(want)
}

func TestMRRSPathMatchesPaper(t *testing.T) {
	p := DefaultMRRParams()
	// Paper: 2*pi*7.5um ~= 47.1 um.
	if !relEq(p.SPathLength(), 47.1*phy.Micrometer, 0.01) {
		t.Errorf("S-path length = %v, want ~47.1um", p.SPathLength())
	}
	// Paper Eq. 7: 0.547 ps.
	if !relEq(p.SPathDelay(), 0.547*phy.Picosecond, 0.01) {
		t.Errorf("S-path delay = %v, want ~0.547ps", p.SPathDelay())
	}
}

func TestMRRParamsValidate(t *testing.T) {
	good := DefaultMRRParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Radius = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero radius should fail validation")
	}
	bad = good
	bad.ExtinctionDB = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero extinction should fail validation")
	}
}

func TestDoubleMRRFilterANDTruthTable(t *testing.T) {
	pd := DefaultPhotodetector()
	inputOn := 1 * phy.Milliwatt // healthy received power
	f := NewDoubleMRRFilter(3)

	// A=1 (light present), B=1 (ring on) -> output 1.
	f.On = true
	if !f.AND(inputOn, pd) {
		t.Error("AND(1,1) = 0, want 1")
	}
	// A=1, B=0 -> extinction-level leakage only -> 0.
	f.On = false
	if f.AND(inputOn, pd) {
		t.Error("AND(1,0) = 1, want 0")
	}
	// A=0 (no light) -> 0 regardless of B.
	f.On = true
	if f.AND(0, pd) {
		t.Error("AND(0,1) = 1, want 0")
	}
	f.On = false
	if f.AND(0, pd) {
		t.Error("AND(0,0) = 1, want 0")
	}
}

func TestDoubleMRRFilterWavelengthSelectivity(t *testing.T) {
	f := NewDoubleMRRFilter(2)
	f.On = true
	// The resonant channel crosses with low loss...
	cross := f.CrossField(2)
	if cross < FieldLoss(1.0) {
		t.Errorf("resonant cross field %v too lossy", cross)
	}
	// ...while other channels see only extinction-level leakage.
	leak := f.CrossField(5)
	if leak > FieldLoss(19) {
		t.Errorf("non-resonant leakage field %v too strong", leak)
	}
	// Off-resonance channels continue on the bar path nearly unattenuated.
	bar := f.BarField(5)
	if bar < FieldLoss(0.2) {
		t.Errorf("non-resonant bar field %v too lossy", bar)
	}
}

func TestDoubleMRRFilterEnergyConservationBound(t *testing.T) {
	// Passive device: cross^2 + bar^2 <= 1 for every state and channel.
	for _, on := range []bool{true, false} {
		for _, detuned := range []bool{true, false} {
			f := NewDoubleMRRFilter(0)
			f.On = on
			f.Detuned = detuned
			for ch := 0; ch < 3; ch++ {
				c, b := f.CrossField(ch), f.BarField(ch)
				if c*c+b*b > 1.0+1e-12 {
					t.Errorf("on=%v detuned=%v ch=%d: cross^2+bar^2 = %v > 1",
						on, detuned, ch, c*c+b*b)
				}
			}
		}
	}
}

func TestDoubleMRRFilterDetunedDegrades(t *testing.T) {
	healthy := NewDoubleMRRFilter(0)
	healthy.On = true
	drifted := NewDoubleMRRFilter(0)
	drifted.On = true
	drifted.Detuned = true
	if drifted.CrossField(0) >= healthy.CrossField(0) {
		t.Error("detuned ring should couple less power than a tuned ring")
	}
}

func TestDoubleMRRFilterEnergyAndArea(t *testing.T) {
	f := NewDoubleMRRFilter(0)
	// Paper worked example: one double filter, 4 bits -> 2 rings * 500 fJ * 4.
	if got := f.EnergyPerCycle(4); !relEq(got, 4*phy.Nanojoule/1000, 1e-9) {
		t.Errorf("EnergyPerCycle(4) = %v, want 4pJ", got)
	}
	if f.Area() <= 0 {
		t.Error("area must be positive")
	}
	if f.Delay() <= 0 {
		t.Error("delay must be positive")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative bits should panic")
		}
	}()
	f.EnergyPerCycle(-1)
}

func TestPaperOEWorkedExampleMRREnergy(t *testing.T) {
	// Paper Section IV-C: 128 MRRs x 500 fJ x 4 bits x 4 cycles = 1.024 nJ.
	// 128 MRRs = 64 double filters; per double filter per cycle:
	// EnergyPerCycle(4 bits) = 2*500fJ*4 = 4 pJ; 64 filters * 4 cycles.
	f := NewDoubleMRRFilter(0)
	total := 64.0 * 4.0 * f.EnergyPerCycle(4)
	if !relEq(total, 1.024*phy.Nanojoule, 1e-9) {
		t.Errorf("worked example = %v, want 1.024 nJ", total)
	}
}

func TestFieldAndPowerLoss(t *testing.T) {
	// 3 dB power loss halves power; field factor is sqrt(1/2).
	if !relEq(PowerLoss(3.0102999566), 0.5, 1e-9) {
		t.Errorf("PowerLoss(3dB) = %v", PowerLoss(3.0102999566))
	}
	if !relEq(FieldLoss(3.0102999566), math.Sqrt(0.5), 1e-9) {
		t.Errorf("FieldLoss(3dB) = %v", FieldLoss(3.0102999566))
	}
	if PowerLoss(0) != 1 || FieldLoss(0) != 1 {
		t.Error("0 dB loss must be unity")
	}
}
