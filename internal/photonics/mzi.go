package photonics

import (
	"fmt"
	"math"
	"math/cmplx"

	"pixel/internal/phy"
)

// MZIParams holds the physical and cost parameters of a Mach-Zehnder
// interferometer with 2 mm phase-shifting arms (Section IV-A2).
type MZIParams struct {
	// ArmLength is the phase-shifter arm length [m].
	ArmLength float64
	// ModulationEnergyPerBit is the dynamic energy per bit slot to hold
	// the configured phases [J]; the paper cites 32.4 fJ/bit devices.
	ModulationEnergyPerBit float64
	// InsertionLossDB is the total device insertion loss [dB].
	InsertionLossDB float64
	// Width is the transverse footprint of the device [m]; with the arm
	// length it defines the area.
	Width float64
}

// DefaultMZIParams returns the paper-calibrated MZI parameters.
func DefaultMZIParams() MZIParams {
	return MZIParams{
		ArmLength:              2 * phy.Millimeter,
		ModulationEnergyPerBit: 32.4 * phy.Femtojoule,
		InsertionLossDB:        0.8,
		Width:                  50 * phy.Micrometer,
	}
}

// Validate reports an error for non-physical parameters.
func (p MZIParams) Validate() error {
	if p.ArmLength <= 0 || p.ModulationEnergyPerBit < 0 || p.InsertionLossDB < 0 || p.Width <= 0 {
		return fmt.Errorf("photonics: invalid MZI params %+v", p)
	}
	return nil
}

// Delay returns the propagation delay through the MZI arms [s].
func (p MZIParams) Delay() float64 {
	return phy.PropagationDelay(p.ArmLength)
}

// Area returns the device footprint [m^2].
func (p MZIParams) Area() float64 {
	return p.ArmLength * p.Width
}

// InterStagePath returns the waveguide length [m] between the output of
// one MZI and the input of the next so that cascaded stages are
// synchronized to the optical bit period (paper Eq. 8/9):
//
//	d_path = c/(n_Si * f_o) - d_MZI
//
// At 10 GHz with 2 mm arms this is ~6.77 mm.
func (p MZIParams) InterStagePath(bitRate float64) (float64, error) {
	if bitRate <= 0 {
		return 0, fmt.Errorf("photonics: bit rate must be positive")
	}
	d := phy.C/(phy.NSilicon*bitRate) - p.ArmLength
	if d < 0 {
		return 0, fmt.Errorf("photonics: MZI arm (%v m) longer than one bit period of flight (%v Hz): cannot synchronize",
			p.ArmLength, bitRate)
	}
	return d, nil
}

// AccumulationDelay returns the total propagation delay through a chain
// of n MZI stages with synchronized inter-stage paths:
//
//	d_tot = n*d_MZI + (n-1)*d_path
//
// This is the paper's accumulation-length formula. Its Eq. 10 worked
// example evaluates it at n = 8 stages for "4-bit optical pulses"
// (two 4-bit operands' pulses in flight) giving ~0.736 ns at 10 GHz.
func (p MZIParams) AccumulationDelay(n int, bitRate float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("photonics: need at least one MZI stage")
	}
	dPath, err := p.InterStagePath(bitRate)
	if err != nil {
		return 0, err
	}
	total := float64(n)*p.ArmLength + float64(n-1)*dPath
	return phy.PropagationDelay(total), nil
}

// MZI is the functional model: a 2x2 unitary coupler set by the phases of
// its two arms. Its ideal transfer matrix (paper Eq. 1) is
//
//	h = j * e^{jDelta} * | sin(theta)  cos(theta) |
//	                     | cos(theta) -sin(theta) |
//
// with theta = (phi_upper - phi_lower)/2 and Delta = (phi_upper +
// phi_lower)/2. (The paper's Eq. 3 prints Delta with a minus sign — a
// typo; the average phase is what the common-mode term must be for h to
// be unitary and to reproduce the bar/cross states of Figure 1.)
type MZI struct {
	Params   MZIParams
	PhiUpper float64
	PhiLower float64
	// PhaseError adds a differential phase fault [rad] for
	// failure-injection tests.
	PhaseError float64
}

// NewMZI returns an MZI with default parameters in the cross state.
func NewMZI() *MZI {
	m := &MZI{Params: DefaultMZIParams()}
	m.SetCross()
	return m
}

// Theta returns the differential phase (phi_u - phi_l)/2 including any
// injected phase error.
func (m *MZI) Theta() float64 {
	return (m.PhiUpper - m.PhiLower + m.PhaseError) / 2
}

// Delta returns the common-mode phase (phi_u + phi_l)/2.
func (m *MZI) Delta() float64 {
	return (m.PhiUpper + m.PhiLower) / 2
}

// SetBar configures the switch so each input exits the same-side output
// (phi_u = 0, phi_l = pi per Figure 1d).
func (m *MZI) SetBar() { m.PhiUpper, m.PhiLower = 0, math.Pi }

// SetCross configures the switch so inputs exchange outputs
// (phi_u = phi_l = pi/2 per Figure 1e).
func (m *MZI) SetCross() { m.PhiUpper, m.PhiLower = math.Pi/2, math.Pi/2 }

// SetCoupler configures the device as a tunable coupler with the given
// theta in (0, pi/2): both inputs combine toward output o0 with weights
// sin(theta) and cos(theta) (Figure 1f). theta = pi/4 is the balanced
// 50/50 combiner.
func (m *MZI) SetCoupler(theta float64) error {
	if theta <= 0 || theta >= math.Pi/2 {
		return fmt.Errorf("photonics: coupler theta %v out of (0, pi/2)", theta)
	}
	m.PhiUpper, m.PhiLower = theta, -theta
	return nil
}

// Transfer returns the ideal 2x2 transfer matrix (unitary, before
// insertion loss).
func (m *MZI) Transfer() [2][2]complex128 {
	theta, delta := m.Theta(), m.Delta()
	pre := complex(0, 1) * cmplx.Exp(complex(0, delta))
	s := complex(math.Sin(theta), 0)
	c := complex(math.Cos(theta), 0)
	return [2][2]complex128{
		{pre * s, pre * c},
		{pre * c, -pre * s},
	}
}

// Propagate applies the transfer matrix and insertion loss to the two
// input fields, returning the two output fields.
func (m *MZI) Propagate(i0, i1 complex128) (o0, o1 complex128) {
	h := m.Transfer()
	loss := complex(FieldLoss(m.Params.InsertionLossDB), 0)
	o0 = loss * (h[0][0]*i0 + h[0][1]*i1)
	o1 = loss * (h[1][0]*i0 + h[1][1]*i1)
	return o0, o1
}

// EnergyPerSlot returns the dynamic energy charged per bit slot the MZI
// is actively configured.
func (m *MZI) EnergyPerSlot() float64 {
	return m.Params.ModulationEnergyPerBit
}
