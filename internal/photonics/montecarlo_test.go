package photonics

import (
	"math"
	"math/rand"
	"testing"
)

func TestMonteCarloMatchesAnalyticBER(t *testing.T) {
	rx := DefaultReceiverNoise()
	// Operating point with a high enough BER that 400k trials resolve
	// it tightly: target 1e-2.
	p, err := rx.PowerForBER(1e-2)
	if err != nil {
		t.Fatal(err)
	}
	analytic := rx.BER(p)
	rng := rand.New(rand.NewSource(42))
	const trials = 400_000
	measured, err := rx.MonteCarloBER(p, trials, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Binomial 3-sigma band around the analytic value.
	sigma := math.Sqrt(analytic * (1 - analytic) / trials)
	if diff := math.Abs(measured - analytic); diff > 3*sigma+1e-4 {
		t.Errorf("measured BER %.4g vs analytic %.4g (3-sigma %.4g)", measured, analytic, 3*sigma)
	}
}

func TestMonteCarloBERFallsWithPower(t *testing.T) {
	rx := DefaultReceiverNoise()
	rng := rand.New(rand.NewSource(7))
	low, err := rx.MonteCarloBER(2e-6, 100_000, rng)
	if err != nil {
		t.Fatal(err)
	}
	high, err := rx.MonteCarloBER(8e-6, 100_000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if high >= low {
		t.Errorf("BER should fall with power: %v -> %v", low, high)
	}
}

func TestMonteCarloBERValidation(t *testing.T) {
	rx := DefaultReceiverNoise()
	rng := rand.New(rand.NewSource(1))
	if _, err := rx.MonteCarloBER(0, 100, rng); err == nil {
		t.Error("zero power should error")
	}
	if _, err := rx.MonteCarloBER(1e-6, 1, rng); err == nil {
		t.Error("one trial should error")
	}
	if _, err := rx.MonteCarloBER(1e-6, 100, nil); err == nil {
		t.Error("nil RNG should error")
	}
}
