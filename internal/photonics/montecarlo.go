package photonics

import (
	"fmt"
	"math"
	"math/rand"
)

// Monte-Carlo validation of the analytic receiver model: simulate OOK
// decisions with per-bit Gaussian noise (the shot + thermal model of
// ReceiverNoise) and count errors. Used by tests to confirm the closed
// form and by studies that need error positions, not just rates.

// MonteCarloBER simulates `trials` bit decisions (half ones, half
// zeros) at the given received "one" power [W] and returns the
// measured error rate. The decision threshold sits at the
// noise-weighted midpoint, matching the Q-factor derivation.
func (r ReceiverNoise) MonteCarloBER(onePower float64, trials int, rng *rand.Rand) (float64, error) {
	if onePower <= 0 {
		return 0, fmt.Errorf("photonics: one power must be positive")
	}
	if trials < 2 {
		return 0, fmt.Errorf("photonics: need at least 2 trials")
	}
	if rng == nil {
		return 0, fmt.Errorf("photonics: nil RNG")
	}
	i1 := r.Detector.Current(onePower)
	shot := math.Sqrt(2 * electronCharge * i1 * r.Bandwidth)
	thermal := r.ThermalCurrent * math.Sqrt(r.Bandwidth)
	sigma1 := math.Sqrt(shot*shot + thermal*thermal)
	sigma0 := thermal
	// Optimal threshold for unequal variances (Q-factor convention):
	// the level where both error probabilities match.
	threshold := (sigma0*i1 + sigma1*0) / (sigma0 + sigma1)

	errors := 0
	for t := 0; t < trials; t++ {
		if t%2 == 0 {
			// Transmit a one.
			sample := i1 + sigma1*rng.NormFloat64()
			if sample < threshold {
				errors++
			}
		} else {
			// Transmit a zero (dark).
			sample := sigma0 * rng.NormFloat64()
			if sample >= threshold {
				errors++
			}
		}
	}
	return float64(errors) / float64(trials), nil
}

// PowerForBER returns the received power [W] whose *analytic* BER
// equals the target — a convenience wrapper over RequiredPower for
// studies that then Monte-Carlo that operating point.
func (r ReceiverNoise) PowerForBER(target float64) (float64, error) {
	return r.RequiredPower(target)
}
