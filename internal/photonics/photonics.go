// Package photonics models the silicon-photonic devices PIXEL is built
// from: microring resonators (MRRs) and cascaded double-MRR filters,
// Mach-Zehnder interferometers (MZIs), waveguides, on-chip Fabry-Perot
// lasers, germanium photodetectors and the two optical-to-electrical
// converter front ends of the paper.
//
// Each device carries both a *functional* model (how optical field
// amplitudes move through its ports) and a *cost* model (energy per bit,
// static tuning power, area, propagation delay). The functional models
// are composed into circuits by package optsim; the cost models are
// consumed by package arch.
//
// Conventions: optical signals are complex field amplitudes per
// wavelength channel; optical *power* is |amplitude|^2 in watts. Losses
// are kept in dB in the parameter structs (as datasheets quote them) and
// converted to linear field factors on use.
package photonics

import (
	"fmt"
	"math"

	"pixel/internal/phy"
)

// FieldLoss converts a power loss in dB (positive number, e.g. 0.5 for
// "0.5 dB insertion loss") into a multiplicative *field* amplitude factor
// (sqrt of the linear power transmission).
func FieldLoss(db float64) float64 {
	return math.Sqrt(phy.FromDB(-db))
}

// PowerLoss converts a power loss in dB into a linear power transmission
// factor.
func PowerLoss(db float64) float64 {
	return phy.FromDB(-db)
}

// Waveguide models a silicon strip waveguide segment.
type Waveguide struct {
	// Length of the segment [m].
	Length float64
	// PropagationPS is the group delay [s/m]; the paper quotes
	// 10.45 ps/mm for silicon waveguides.
	DelayPerMeter float64
	// LossDBPerMeter is the propagation loss [dB/m]; the paper quotes
	// 1.3 dB/cm.
	LossDBPerMeter float64
	// Pitch is the minimum center-to-center spacing [m]; the paper
	// quotes 5.5 um. Used for area estimates of waveguide bundles.
	Pitch float64
}

// DefaultWaveguide returns a waveguide of the given length with the
// paper's silicon parameters (10.45 ps/mm, 1.3 dB/cm, 5.5 um pitch).
func DefaultWaveguide(length float64) Waveguide {
	return Waveguide{
		Length:         length,
		DelayPerMeter:  10.45 * phy.Picosecond / phy.Millimeter,
		LossDBPerMeter: 1.3 / phy.Centimeter,
		Pitch:          5.5 * phy.Micrometer,
	}
}

// Delay returns the propagation delay of the segment [s].
func (w Waveguide) Delay() float64 { return w.Length * w.DelayPerMeter }

// LossDB returns the total propagation loss of the segment [dB].
func (w Waveguide) LossDB() float64 { return w.Length * w.LossDBPerMeter }

// FieldTransmission returns the field amplitude factor of the segment.
func (w Waveguide) FieldTransmission() float64 { return FieldLoss(w.LossDB()) }

// Area returns the footprint of the routed segment [m^2] assuming the
// standard pitch.
func (w Waveguide) Area() float64 { return w.Length * w.Pitch }

// Validate reports an error for non-physical parameters.
func (w Waveguide) Validate() error {
	if w.Length < 0 || w.DelayPerMeter <= 0 || w.LossDBPerMeter < 0 || w.Pitch <= 0 {
		return fmt.Errorf("photonics: invalid waveguide %+v", w)
	}
	return nil
}

// Laser models an on-chip InP Fabry-Perot comb laser (Section II-A3:
// 50 um x 300 um x 5 um, up to 128 wavelengths per channel).
type Laser struct {
	// Wavelengths is the number of WDM channels the laser emits.
	Wavelengths int
	// PowerPerWavelength is the optical output power per channel [W].
	PowerPerWavelength float64
	// WallPlugEfficiency is optical-out / electrical-in (0..1].
	WallPlugEfficiency float64
	// TurnOnDelay is the time from enable to stable output [s].
	TurnOnDelay float64
	// Footprint is the die area [m^2].
	Footprint float64
}

// DefaultLaser returns the paper's on-chip FP laser: 50x300 um footprint,
// short turn-on delay, 128-wavelength capability.
func DefaultLaser(wavelengths int, powerPerWavelength float64) Laser {
	return Laser{
		Wavelengths:        wavelengths,
		PowerPerWavelength: powerPerWavelength,
		WallPlugEfficiency: 0.10,
		TurnOnDelay:        1 * phy.Nanosecond,
		Footprint:          50 * phy.Micrometer * 300 * phy.Micrometer,
	}
}

// OpticalPower returns the total emitted optical power [W].
func (l Laser) OpticalPower() float64 {
	return float64(l.Wavelengths) * l.PowerPerWavelength
}

// ElectricalPower returns the wall-plug electrical power draw [W].
func (l Laser) ElectricalPower() float64 {
	return l.OpticalPower() / l.WallPlugEfficiency
}

// Energy returns the electrical energy consumed over a duration [J].
func (l Laser) Energy(duration float64) float64 {
	return l.ElectricalPower() * duration
}

// Validate reports an error for non-physical parameters.
func (l Laser) Validate() error {
	switch {
	case l.Wavelengths < 1 || l.Wavelengths > 128:
		return fmt.Errorf("photonics: laser wavelengths %d out of range [1,128]", l.Wavelengths)
	case l.PowerPerWavelength <= 0:
		return fmt.Errorf("photonics: laser power must be positive")
	case l.WallPlugEfficiency <= 0 || l.WallPlugEfficiency > 1:
		return fmt.Errorf("photonics: wall-plug efficiency %v out of (0,1]", l.WallPlugEfficiency)
	case l.TurnOnDelay < 0 || l.Footprint <= 0:
		return fmt.Errorf("photonics: invalid laser timing/area")
	}
	return nil
}

// Photodetector models a germanium-doped photodiode with its TIA
// back end.
type Photodetector struct {
	// Responsivity converts optical power to photocurrent [A/W].
	Responsivity float64
	// Sensitivity is the minimum detectable optical power [W] for the
	// target BER at the line rate.
	Sensitivity float64
	// EnergyPerBit is the receiver (PD + TIA + amplifier) energy [J/bit].
	EnergyPerBit float64
	// Area is the receiver footprint [m^2].
	Area float64
}

// DefaultPhotodetector returns a 10 GHz-class Ge receiver: 1.1 A/W,
// -20 dBm sensitivity, 50 fJ/bit.
func DefaultPhotodetector() Photodetector {
	return Photodetector{
		Responsivity: 1.1,
		Sensitivity:  phy.FromDBm(-20),
		EnergyPerBit: 50 * phy.Femtojoule,
		Area:         20 * phy.SquareMicrometer,
	}
}

// Current returns the photocurrent [A] produced by the given optical
// power [W].
func (p Photodetector) Current(opticalPower float64) float64 {
	if opticalPower <= 0 {
		return 0
	}
	return p.Responsivity * opticalPower
}

// Detects reports whether the given optical power is above the receiver
// sensitivity floor.
func (p Photodetector) Detects(opticalPower float64) bool {
	return opticalPower >= p.Sensitivity
}

// Validate reports an error for non-physical parameters.
func (p Photodetector) Validate() error {
	if p.Responsivity <= 0 || p.Sensitivity <= 0 || p.EnergyPerBit < 0 || p.Area <= 0 {
		return fmt.Errorf("photonics: invalid photodetector %+v", p)
	}
	return nil
}
