package photonics

import (
	"fmt"
	"math"

	"pixel/internal/phy"
)

// Free-spectral-range analysis. A microring resonates at every
// wavelength where an integer number of waves fits its circumference,
// so its resonances repeat every FSR:
//
//	FSR = lambda^2 / (n_g * 2*pi*R)
//
// A ring filter can only address channels unambiguously within one
// FSR: a ring tuned to channel k also drops channel k + FSR/spacing.
// This bounds how many *distinct* channels a bank of single rings can
// demultiplex — a physical ceiling the paper's 128-wavelength comb
// assumption runs into with 7.5 um rings (the reproduction documents
// it; see EXPERIMENTS.md).

// GroupIndexSi is the group index of a silicon strip waveguide around
// 1550 nm (higher than the phase index n = 3.48 because of
// dispersion).
const GroupIndexSi = 4.2

// FSR returns the free spectral range [m] of a ring of the given
// radius at the given center wavelength.
func FSR(radius, lambda float64) float64 {
	if radius <= 0 || lambda <= 0 {
		panic("photonics: FSR needs positive radius and wavelength")
	}
	return lambda * lambda / (GroupIndexSi * 2 * math.Pi * radius)
}

// MaxUnambiguousChannels returns how many channels of the given
// spacing fit within one FSR of a ring of the given radius — the
// largest bank a single-ring-per-channel design can address without
// aliasing.
func MaxUnambiguousChannels(radius, lambda, spacing float64) int {
	if spacing <= 0 {
		panic("photonics: spacing must be positive")
	}
	n := int(FSR(radius, lambda) / spacing)
	if n < 1 {
		n = 1
	}
	return n
}

// CheckFSR reports an error when a channel plan exceeds the
// unambiguous range of rings with the given radius, naming the alias
// distance. Designs that need more channels must use higher-order
// (e.g. double-ring Vernier) filters or interleavers.
func (p ChannelPlan) CheckFSR(radius float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	const lambda = 1550 * phy.Nanometer
	limit := MaxUnambiguousChannels(radius, lambda, p.Spacing)
	if p.Channels > limit {
		return fmt.Errorf(
			"photonics: %d channels exceed one FSR of a %.2g um ring (%.2f nm -> %d unambiguous channels at %.2g nm spacing): channel k aliases with k+%d",
			p.Channels, radius/phy.Micrometer,
			FSR(radius, lambda)/phy.Nanometer, limit, p.Spacing/phy.Nanometer, limit)
	}
	return nil
}
