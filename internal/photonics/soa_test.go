package photonics

import (
	"math"
	"testing"

	"pixel/internal/phy"
)

func TestSOAValidate(t *testing.T) {
	if err := DefaultSOA().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultSOA()
	bad.GainDB = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero gain should fail")
	}
	bad = DefaultSOA()
	bad.NoiseFigureDB = 2
	if err := bad.Validate(); err == nil {
		t.Error("sub-quantum noise figure should fail")
	}
	bad = DefaultSOA()
	bad.PumpPower = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero pump should fail")
	}
}

func TestSOAFieldGain(t *testing.T) {
	s := DefaultSOA() // 10 dB power gain = 10x power = sqrt(10) field
	if got := s.FieldGain(); math.Abs(got-math.Sqrt(10)) > 1e-12 {
		t.Errorf("field gain = %v, want sqrt(10)", got)
	}
	// Gain exactly cancels an equal loss.
	if got := s.FieldGain() * FieldLoss(10); math.Abs(got-1) > 1e-12 {
		t.Errorf("gain*loss = %v, want 1", got)
	}
}

func TestSOAEnergy(t *testing.T) {
	s := DefaultSOA()
	if got := s.Energy(1 * phy.Nanosecond); math.Abs(got-20*phy.Picojoule) > 1e-18 {
		t.Errorf("1ns pump energy = %v, want 20pJ", got)
	}
}

func TestSOAMatchLoss(t *testing.T) {
	s := DefaultSOA()
	m, err := s.MatchLoss(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if m.GainDB != 0.8 {
		t.Errorf("matched gain = %v", m.GainDB)
	}
	// Pump scales with gain: 0.8/10 of the template.
	if math.Abs(m.PumpPower-1.6*phy.Milliwatt) > 1e-12 {
		t.Errorf("matched pump = %v, want 1.6mW", m.PumpPower)
	}
	if _, err := s.MatchLoss(0); err == nil {
		t.Error("zero loss should error")
	}
}
