package photonics

import (
	"fmt"
	"math"

	"pixel/internal/phy"
)

// WDM channel-plan analysis: how many lanes can share a waveguide
// before inter-channel crosstalk through the ring filters closes the
// eye. A ring's drop response is modeled as a Lorentzian of the given
// FWHM; every other channel on the grid leaks into the drop port
// attenuated by that response.

// ChannelPlan describes a WDM grid feeding ring filter banks.
type ChannelPlan struct {
	// Channels is the number of wavelengths on the waveguide.
	Channels int
	// Spacing is the grid pitch [m]; 0.8 nm = 100 GHz at 1550 nm.
	Spacing float64
	// RingFWHM is the ring drop response's full width at half maximum
	// [m]; FWHM = lambda / Q (about 0.16 nm for Q = 10k at 1550 nm).
	RingFWHM float64
	// MaxPenaltyDB is the crosstalk power-penalty budget [dB].
	MaxPenaltyDB float64
}

// DefaultChannelPlan returns a 100 GHz grid with Q~10k rings and a 1 dB
// crosstalk budget.
func DefaultChannelPlan(channels int) ChannelPlan {
	return ChannelPlan{
		Channels:     channels,
		Spacing:      0.8 * phy.Nanometer,
		RingFWHM:     0.155 * phy.Nanometer,
		MaxPenaltyDB: 1.0,
	}
}

// Validate reports an error for non-physical plans.
func (p ChannelPlan) Validate() error {
	switch {
	case p.Channels < 1 || p.Channels > 128:
		return fmt.Errorf("photonics: channel count %d out of range [1,128]", p.Channels)
	case p.Spacing <= 0 || p.RingFWHM <= 0:
		return fmt.Errorf("photonics: spacing and FWHM must be positive")
	case p.MaxPenaltyDB <= 0:
		return fmt.Errorf("photonics: penalty budget must be positive")
	}
	return nil
}

// DropResponse returns the ring's power transmission at a wavelength
// offset delta [m] from resonance (Lorentzian).
func (p ChannelPlan) DropResponse(delta float64) float64 {
	x := 2 * delta / p.RingFWHM
	return 1 / (1 + x*x)
}

// WorstCrosstalk returns the worst-case aggregate crosstalk-to-signal
// power ratio at any drop port: the middle channel collects leakage
// from every neighbour at multiples of the spacing.
func (p ChannelPlan) WorstCrosstalk() float64 {
	if p.Channels == 1 {
		return 0
	}
	mid := p.Channels / 2
	total := 0.0
	for c := 0; c < p.Channels; c++ {
		if c == mid {
			continue
		}
		delta := float64(c-mid) * p.Spacing
		total += p.DropResponse(delta)
	}
	return total
}

// PowerPenaltyDB returns the eye-closure power penalty [dB] from the
// worst-case crosstalk: penalty = -10*log10(1 - 2*X) for crosstalk
// ratio X (standard incoherent-crosstalk bound).
func (p ChannelPlan) PowerPenaltyDB() (float64, error) {
	x := p.WorstCrosstalk()
	if x >= 0.5 {
		return math.Inf(1), fmt.Errorf("photonics: crosstalk ratio %.3f closes the eye completely", x)
	}
	return -10 * math.Log10(1-2*x), nil
}

// Check reports an error when the plan exceeds its crosstalk budget.
func (p ChannelPlan) Check() error {
	if err := p.Validate(); err != nil {
		return err
	}
	pen, err := p.PowerPenaltyDB()
	if err != nil {
		return err
	}
	if pen > p.MaxPenaltyDB {
		return fmt.Errorf(
			"photonics: WDM plan with %d channels at %.2g nm spacing incurs %.2f dB crosstalk penalty (budget %.2f dB)",
			p.Channels, p.Spacing/phy.Nanometer, pen, p.MaxPenaltyDB)
	}
	return nil
}

// MaxChannels returns the largest channel count that stays within the
// plan's penalty budget at its spacing and ring linewidth.
func (p ChannelPlan) MaxChannels() int {
	for n := 128; n >= 1; n-- {
		trial := p
		trial.Channels = n
		if trial.Check() == nil {
			return n
		}
	}
	return 0
}

// ReceiverNoise models the photodiode front end's noise for BER
// estimation.
type ReceiverNoise struct {
	Detector Photodetector
	// ThermalCurrent is the input-referred thermal noise current
	// [A/sqrt(Hz)] of the TIA.
	ThermalCurrent float64
	// Bandwidth is the receiver bandwidth [Hz].
	Bandwidth float64
}

// DefaultReceiverNoise returns a 10 GHz-class receiver noise model.
func DefaultReceiverNoise() ReceiverNoise {
	return ReceiverNoise{
		Detector:       DefaultPhotodetector(),
		ThermalCurrent: 10e-12, // 10 pA/sqrt(Hz)
		Bandwidth:      7 * phy.Gigahertz,
	}
}

// electronCharge [C].
const electronCharge = 1.602176634e-19

// QFactor returns the OOK Q factor at the given received "one" power
// [W] with an ideally dark zero level.
func (r ReceiverNoise) QFactor(onePower float64) float64 {
	if onePower <= 0 {
		return 0
	}
	i1 := r.Detector.Current(onePower)
	shot := math.Sqrt(2 * electronCharge * i1 * r.Bandwidth)
	thermal := r.ThermalCurrent * math.Sqrt(r.Bandwidth)
	sigma1 := math.Sqrt(shot*shot + thermal*thermal)
	sigma0 := thermal
	return i1 / (sigma1 + sigma0)
}

// BER returns the OOK bit-error rate at the given received power via
// BER = 0.5*erfc(Q/sqrt(2)).
func (r ReceiverNoise) BER(onePower float64) float64 {
	q := r.QFactor(onePower)
	return 0.5 * math.Erfc(q/math.Sqrt2)
}

// RequiredPower returns the received "one" power [W] for the target
// BER, found by bisection over a realistic power range.
func (r ReceiverNoise) RequiredPower(targetBER float64) (float64, error) {
	if targetBER <= 0 || targetBER >= 0.5 {
		return 0, fmt.Errorf("photonics: target BER %g out of (0, 0.5)", targetBER)
	}
	lo, hi := 1e-9, 1e-1 // 1 nW .. 100 mW
	if r.BER(hi) > targetBER {
		return 0, fmt.Errorf("photonics: target BER %g unreachable below 100 mW", targetBER)
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if r.BER(mid) > targetBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
