// Package cnn describes the six convolutional networks the paper
// evaluates (VGG16, AlexNet, ZFNet, ResNet-34, LeNet, GoogLeNet) layer by
// layer, and computes the per-layer operation counts of Section IV-B:
//
//	E      = (H - R + U)/U          (Eq. 11, padded input)
//	N_MVM  = E^2 * M * C
//	N_mul  = R^2 * N_MVM
//	N_add  = N_mul + E^2 * M
//	N_act  = E^2 * M
//
// Two counting modes are provided. ModePaper replicates the paper's
// Table I exactly, including its fully-connected-layer convention
// (N_mul = In^2 rather than In*Out — visible in the printed FC1/FC3
// rows); ModeExact uses the standard In*Out accounting. The evaluation
// harness uses ModePaper so every downstream figure is consistent with
// the paper's own workload numbers.
package cnn

import "fmt"

// LayerType discriminates convolutional from fully-connected layers.
// Pooling layers carry no MACs and are not modeled, matching the paper.
type LayerType int

const (
	// Conv is a 2-D convolution layer.
	Conv LayerType = iota
	// FC is a fully-connected layer.
	FC
)

// String implements fmt.Stringer.
func (t LayerType) String() string {
	switch t {
	case Conv:
		return "conv"
	case FC:
		return "fc"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// CountMode selects the operation-count convention.
type CountMode int

const (
	// ModePaper replicates the paper's Table I formulas verbatim,
	// including the FC convention N_mul = In^2.
	ModePaper CountMode = iota
	// ModeExact uses the standard FC accounting N_mul = In*Out.
	ModeExact
)

// Layer is one parameterized network layer.
type Layer struct {
	// Name is the paper-style layer label ("Conv3", "FC1", ...).
	Name string
	Type LayerType

	// Convolution parameters (Type == Conv). H and W are the unpadded
	// input feature size, C the input channels, Pad the per-side
	// padding, R the square kernel size, U the stride, M the filter
	// count.
	H, W, C int
	Pad     int
	R, U    int
	M       int

	// Fully-connected parameters (Type == FC).
	In, Out int
}

// Validate reports an error for inconsistent layer parameters.
func (l Layer) Validate() error {
	switch l.Type {
	case Conv:
		switch {
		case l.H < 1 || l.W < 1 || l.C < 1:
			return fmt.Errorf("cnn: %s: non-positive input shape [%d,%d,%d]", l.Name, l.H, l.W, l.C)
		case l.R < 1 || l.U < 1 || l.M < 1:
			return fmt.Errorf("cnn: %s: non-positive kernel/stride/filters", l.Name)
		case l.Pad < 0:
			return fmt.Errorf("cnn: %s: negative padding", l.Name)
		case l.H+2*l.Pad < l.R || l.W+2*l.Pad < l.R:
			return fmt.Errorf("cnn: %s: kernel %d larger than padded input %d", l.Name, l.R, l.H+2*l.Pad)
		}
	case FC:
		if l.In < 1 || l.Out < 1 {
			return fmt.Errorf("cnn: %s: non-positive FC dims %dx%d", l.Name, l.In, l.Out)
		}
	default:
		return fmt.Errorf("cnn: %s: unknown layer type %d", l.Name, int(l.Type))
	}
	return nil
}

// OutputSize returns the output feature size E for a convolution layer
// via the paper's Eq. 11 applied to the padded input:
// E = (H + 2*Pad - R + U) / U.
func (l Layer) OutputSize() int {
	if l.Type != Conv {
		return 1
	}
	return (l.H + 2*l.Pad - l.R + l.U) / l.U
}

// InputShape returns the padded input shape string the paper's Table I
// style uses, e.g. "[226,226,64]".
func (l Layer) InputShape() string {
	if l.Type == FC {
		return fmt.Sprintf("[%d]", l.In)
	}
	return fmt.Sprintf("[%d,%d,%d]", l.H+2*l.Pad, l.W+2*l.Pad, l.C)
}

// Counts holds absolute operation counts for one layer or network (not
// millions; render with /1e6 for the paper's units).
type Counts struct {
	MVM float64 // matrix-vector multiplications
	Mul float64 // scalar multiplications
	Add float64 // scalar additions
	Act float64 // activation-function evaluations
}

// Plus returns the element-wise sum of two Counts.
func (c Counts) Plus(o Counts) Counts {
	return Counts{
		MVM: c.MVM + o.MVM,
		Mul: c.Mul + o.Mul,
		Add: c.Add + o.Add,
		Act: c.Act + o.Act,
	}
}

// Counts returns the layer's operation counts under the given mode.
func (l Layer) Counts(mode CountMode) Counts {
	switch l.Type {
	case Conv:
		e := float64(l.OutputSize())
		mvm := e * e * float64(l.M) * float64(l.C)
		mul := float64(l.R*l.R) * mvm
		act := e * e * float64(l.M)
		return Counts{MVM: mvm, Mul: mul, Add: mul + act, Act: act}
	case FC:
		in := float64(l.In)
		out := float64(l.Out)
		if mode == ModePaper {
			// The paper's Table I FC rows follow N_mul = In^2,
			// N_add = 2*In^2, N_act = In^2, N_MVM = 1.
			return Counts{MVM: 1, Mul: in * in, Add: 2 * in * in, Act: in * in}
		}
		return Counts{MVM: 1, Mul: in * out, Add: in*out + out, Act: out}
	default:
		return Counts{}
	}
}

// Network is a named sequence of layers.
type Network struct {
	Name   string
	Layers []Layer
}

// Validate validates every layer.
func (n Network) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("cnn: network without a name")
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("cnn: %s: no layers", n.Name)
	}
	for _, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalCounts sums the operation counts across all layers.
func (n Network) TotalCounts(mode CountMode) Counts {
	var total Counts
	for _, l := range n.Layers {
		total = total.Plus(l.Counts(mode))
	}
	return total
}

// ConvLayers returns only the convolutional layers.
func (n Network) ConvLayers() []Layer {
	var out []Layer
	for _, l := range n.Layers {
		if l.Type == Conv {
			out = append(out, l)
		}
	}
	return out
}
