package cnn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOutputSizeEq11(t *testing.T) {
	cases := []struct {
		l    Layer
		want int
	}{
		// VGG-style same-padded 3x3.
		{conv("x", 224, 3, 1, 3, 1, 64), 224},
		// AlexNet Conv1: (227-11+4)/4 = 55.
		{conv("x", 227, 3, 0, 11, 4, 96), 55},
		// ZFNet Conv1: (226-7+2)/2 = 110.
		{conv("x", 224, 3, 1, 7, 2, 96), 110},
		// LeNet Conv1: 32-5+1 = 28.
		{conv("x", 32, 1, 0, 5, 1, 6), 28},
		// ResNet Conv1: (230-7+2)/2 = 112.
		{conv("x", 224, 3, 3, 7, 2, 64), 112},
	}
	for _, c := range cases {
		if got := c.l.OutputSize(); got != c.want {
			t.Errorf("%+v: OutputSize = %d, want %d", c.l, got, c.want)
		}
	}
}

// bruteForceWindows counts the positions a kernel of size R fits in a
// padded 1-D extent of size H+2P with stride U — the independent oracle
// for Eq. 11.
func bruteForceWindows(h, pad, r, u int) int {
	extent := h + 2*pad
	count := 0
	for start := 0; start+r <= extent; start += u {
		count++
	}
	return count
}

func TestOutputSizeMatchesBruteForce(t *testing.T) {
	f := func(hRaw, padRaw, rRaw, uRaw uint8) bool {
		h := int(hRaw)%64 + 8
		pad := int(padRaw) % 4
		r := int(rRaw)%5 + 1
		u := int(uRaw)%3 + 1
		if h+2*pad < r {
			return true
		}
		l := conv("t", h, 1, pad, r, u, 1)
		return l.OutputSize() == bruteForceWindows(h, pad, r, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLayerValidate(t *testing.T) {
	good := conv("ok", 8, 3, 1, 3, 1, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Layer{
		conv("b1", 0, 3, 1, 3, 1, 4),     // no input
		conv("b2", 8, 3, 1, 0, 1, 4),     // no kernel
		conv("b3", 8, 3, -1, 3, 1, 4),    // negative pad
		conv("b4", 2, 3, 0, 5, 1, 4),     // kernel larger than input
		fc("b5", 0, 10),                  // no FC input
		{Name: "b6", Type: LayerType(9)}, // unknown type
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("%s should fail validation", l.Name)
		}
	}
}

func TestCountsConvFormulas(t *testing.T) {
	// The paper's worked example: VGG16 Conv1.
	l := conv("Conv1", 224, 3, 1, 3, 1, 64)
	c := l.Counts(ModePaper)
	if c.MVM != 9633792 {
		t.Errorf("N_MVM = %v, want 9633792", c.MVM)
	}
	if c.Mul != 86704128 {
		t.Errorf("N_mul = %v, want 86704128", c.Mul)
	}
	wantAct := 224.0 * 224 * 64
	if c.Act != wantAct {
		t.Errorf("N_act = %v, want %v", c.Act, wantAct)
	}
	if c.Add != c.Mul+wantAct {
		t.Errorf("N_add = %v, want %v", c.Add, c.Mul+wantAct)
	}
	// Conv counts are mode-independent.
	if c != l.Counts(ModeExact) {
		t.Error("conv counts should not depend on mode")
	}
}

func TestCountsFCModes(t *testing.T) {
	l := fc("FC2", 4096, 4096)
	p := l.Counts(ModePaper)
	if p.Mul != 4096*4096 || p.Add != 2*4096*4096 || p.Act != 4096*4096 || p.MVM != 1 {
		t.Errorf("paper-mode FC counts wrong: %+v", p)
	}
	l2 := fc("FC3", 4096, 1000)
	e := l2.Counts(ModeExact)
	if e.Mul != 4096*1000 {
		t.Errorf("exact-mode FC mul = %v, want %v", e.Mul, 4096*1000)
	}
	if e.Act != 1000 {
		t.Errorf("exact-mode FC act = %v, want 1000", e.Act)
	}
	// The paper-mode FC3 row uses In^2 (the printed 16.8M), not In*Out.
	p3 := l2.Counts(ModePaper)
	if p3.Mul != 4096*4096 {
		t.Errorf("paper-mode FC3 mul = %v, want 4096^2", p3.Mul)
	}
}

func TestCountsPlusCombines(t *testing.T) {
	a := Counts{1, 2, 3, 4}
	b := Counts{10, 20, 30, 40}
	got := a.Plus(b)
	want := Counts{11, 22, 33, 44}
	if got != want {
		t.Errorf("Plus = %+v", got)
	}
}

func TestLayerTypeString(t *testing.T) {
	if Conv.String() != "conv" || FC.String() != "fc" {
		t.Error("LayerType strings wrong")
	}
	if LayerType(7).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestInputShapeStrings(t *testing.T) {
	if got := conv("x", 224, 64, 1, 3, 1, 64).InputShape(); got != "[226,226,64]" {
		t.Errorf("InputShape = %q", got)
	}
	if got := fc("x", 25088, 4096).InputShape(); got != "[25088]" {
		t.Errorf("FC InputShape = %q", got)
	}
}

func almostMillions(got float64, wantMillions float64, tolFrac float64) bool {
	return math.Abs(got/1e6-wantMillions) <= tolFrac*wantMillions
}
