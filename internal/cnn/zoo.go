package cnn

import "fmt"

// Builders for the six CNN architectures of the paper's evaluation.
// Pooling layers carry no MACs and are represented only through the
// reduced input sizes of the layers that follow them, matching the
// paper's accounting.

func conv(name string, h, c, pad, r, u, m int) Layer {
	return Layer{Name: name, Type: Conv, H: h, W: h, C: c, Pad: pad, R: r, U: u, M: m}
}

func fc(name string, in, out int) Layer {
	return Layer{Name: name, Type: FC, In: in, Out: out}
}

// VGG16 returns the VGG16 model exactly as the paper's Table I
// parameterizes it: ten convolution rows (the paper folds the
// three-conv blocks of the canonical VGG16 into two rows each, giving
// the VGG-13 convolution structure) and three fully-connected layers.
func VGG16() Network {
	return Network{
		Name: "VGG16",
		Layers: []Layer{
			conv("Conv1", 224, 3, 1, 3, 1, 64),
			conv("Conv2", 224, 64, 1, 3, 1, 64),
			conv("Conv3", 112, 64, 1, 3, 1, 128),
			conv("Conv4", 112, 128, 1, 3, 1, 128),
			conv("Conv5", 56, 128, 1, 3, 1, 256),
			conv("Conv6", 56, 256, 1, 3, 1, 256),
			conv("Conv7", 28, 256, 1, 3, 1, 512),
			conv("Conv8", 28, 512, 1, 3, 1, 512),
			conv("Conv9", 14, 512, 1, 3, 1, 512),
			conv("Conv10", 14, 512, 1, 3, 1, 512),
			fc("FC1", 25088, 4096),
			fc("FC2", 4096, 4096),
			fc("FC3", 4096, 1000),
		},
	}
}

// AlexNet returns the canonical single-tower AlexNet.
func AlexNet() Network {
	return Network{
		Name: "AlexNet",
		Layers: []Layer{
			conv("Conv1", 227, 3, 0, 11, 4, 96),
			conv("Conv2", 27, 96, 2, 5, 1, 256),
			conv("Conv3", 13, 256, 1, 3, 1, 384),
			conv("Conv4", 13, 384, 1, 3, 1, 384),
			conv("Conv5", 13, 384, 1, 3, 1, 256),
			fc("FC1", 9216, 4096),
			fc("FC2", 4096, 4096),
			fc("FC3", 4096, 1000),
		},
	}
}

// ZFNet returns ZFNet (Zeiler & Fergus): AlexNet with a 7x7/2 first
// layer and 5x5/2 second layer.
func ZFNet() Network {
	return Network{
		Name: "ZFNet",
		Layers: []Layer{
			conv("Conv1", 224, 3, 1, 7, 2, 96),
			conv("Conv2", 55, 96, 0, 5, 2, 256),
			conv("Conv3", 13, 256, 1, 3, 1, 384),
			conv("Conv4", 13, 384, 1, 3, 1, 384),
			conv("Conv5", 13, 384, 1, 3, 1, 256),
			fc("FC1", 9216, 4096),
			fc("FC2", 4096, 4096),
			fc("FC3", 4096, 1000),
		},
	}
}

// LeNet returns LeNet-5 on 32x32 single-channel input.
func LeNet() Network {
	return Network{
		Name: "LeNet",
		Layers: []Layer{
			conv("Conv1", 32, 1, 0, 5, 1, 6),
			conv("Conv2", 14, 6, 0, 5, 1, 16),
			fc("FC1", 400, 120),
			fc("FC2", 120, 84),
			fc("FC3", 84, 10),
		},
	}
}

// ResNet34 returns ResNet-34 with projection shortcuts at the stage
// boundaries (the 1x1 stride-2 downsample convolutions are included in
// the op counts).
func ResNet34() Network {
	layers := []Layer{
		conv("Conv1", 224, 3, 3, 7, 2, 64),
	}
	idx := 2
	stage := func(size, inC, outC, blocks int) {
		for b := 0; b < blocks; b++ {
			c := outC
			stride := 1
			h := size
			if b == 0 && inC != outC {
				// First block of a new stage: stride-2 3x3 from the
				// previous stage's channels, plus the 1x1 projection.
				layers = append(layers, conv(fmt.Sprintf("Conv%d", idx), size*2, inC, 1, 3, 2, outC))
				idx++
				layers = append(layers, conv(fmt.Sprintf("Conv%d-proj", idx-1), size*2, inC, 0, 1, 2, outC))
				layers = append(layers, conv(fmt.Sprintf("Conv%d", idx), size, outC, 1, 3, 1, outC))
				idx++
				continue
			}
			layers = append(layers,
				conv(fmt.Sprintf("Conv%d", idx), h, c, 1, 3, stride, outC))
			idx++
			layers = append(layers,
				conv(fmt.Sprintf("Conv%d", idx), h, outC, 1, 3, 1, outC))
			idx++
		}
	}
	stage(56, 64, 64, 3)
	stage(28, 64, 128, 4)
	stage(14, 128, 256, 6)
	stage(7, 256, 512, 3)
	layers = append(layers, fc("FC1", 512, 1000))
	return Network{Name: "ResNet-34", Layers: layers}
}

// inceptionParams parameterizes one GoogLeNet inception module.
type inceptionParams struct {
	name                      string
	size, in                  int
	c1, r3, c3, r5, c5, pproj int
}

func (p inceptionParams) layers() []Layer {
	return []Layer{
		conv(p.name+"/1x1", p.size, p.in, 0, 1, 1, p.c1),
		conv(p.name+"/3x3r", p.size, p.in, 0, 1, 1, p.r3),
		conv(p.name+"/3x3", p.size, p.r3, 1, 3, 1, p.c3),
		conv(p.name+"/5x5r", p.size, p.in, 0, 1, 1, p.r5),
		conv(p.name+"/5x5", p.size, p.r5, 2, 5, 1, p.c5),
		conv(p.name+"/pool", p.size, p.in, 0, 1, 1, p.pproj),
	}
}

// GoogLeNet returns Inception-v1 with all nine inception modules.
func GoogLeNet() Network {
	layers := []Layer{
		conv("Conv1", 224, 3, 3, 7, 2, 64),
		conv("Conv2r", 56, 64, 0, 1, 1, 64),
		conv("Conv2", 56, 64, 1, 3, 1, 192),
	}
	modules := []inceptionParams{
		{"Inc3a", 28, 192, 64, 96, 128, 16, 32, 32},
		{"Inc3b", 28, 256, 128, 128, 192, 32, 96, 64},
		{"Inc4a", 14, 480, 192, 96, 208, 16, 48, 64},
		{"Inc4b", 14, 512, 160, 112, 224, 24, 64, 64},
		{"Inc4c", 14, 512, 128, 128, 256, 24, 64, 64},
		{"Inc4d", 14, 512, 112, 144, 288, 32, 64, 64},
		{"Inc4e", 14, 528, 256, 160, 320, 32, 128, 128},
		{"Inc5a", 7, 832, 256, 160, 320, 32, 128, 128},
		{"Inc5b", 7, 832, 384, 192, 384, 48, 128, 128},
	}
	for _, m := range modules {
		layers = append(layers, m.layers()...)
	}
	layers = append(layers, fc("FC1", 1024, 1000))
	return Network{Name: "GoogLeNet", Layers: layers}
}

// All returns the six networks of the paper's evaluation, in the order
// Figure 7 lists them.
func All() []Network {
	return []Network{VGG16(), AlexNet(), ZFNet(), ResNet34(), LeNet(), GoogLeNet()}
}

// ByName returns the named network (case-sensitive, as produced by the
// builders) or an error listing the valid names.
func ByName(name string) (Network, error) {
	for _, n := range All() {
		if n.Name == name {
			return n, nil
		}
	}
	valid := make([]string, 0, 6)
	for _, n := range All() {
		valid = append(valid, n.Name)
	}
	return Network{}, fmt.Errorf("cnn: unknown network %q (valid: %v)", name, valid)
}
