package cnn

import "testing"

func TestLeNetParamsCanonical(t *testing.T) {
	// LeNet-5's canonical parameter count with biases: conv1 156,
	// conv2 2416, fc1 48120, fc2 10164, fc3 850 = 61,706.
	net := LeNet()
	perLayer := []int64{156, 2416, 48120, 10164, 850}
	for i, want := range perLayer {
		if got := net.Layers[i].Params(); got != want {
			t.Errorf("%s params = %d, want %d", net.Layers[i].Name, got, want)
		}
	}
	if got := net.Params(); got != 61706 {
		t.Errorf("LeNet params = %d, want 61706", got)
	}
}

func TestVGG16ParamsClass(t *testing.T) {
	// The paper's 10-conv VGG variant (VGG-13 conv structure) carries
	// ~133M parameters (9.4M conv + 124M FC).
	got := VGG16().Params()
	if got < 130e6 || got > 136e6 {
		t.Errorf("VGG16 params = %d, want ~133M", got)
	}
}

func TestAlexNetParamsClass(t *testing.T) {
	// Single-tower AlexNet: ~62M (the grouped two-GPU original is 61M).
	got := AlexNet().Params()
	if got < 58e6 || got > 66e6 {
		t.Errorf("AlexNet params = %d, want ~62M", got)
	}
}

func TestResNet34ParamsClass(t *testing.T) {
	// ResNet-34 is ~21.8M parameters.
	got := ResNet34().Params()
	if got < 20e6 || got > 24e6 {
		t.Errorf("ResNet-34 params = %d, want ~21.8M", got)
	}
}

func TestGoogLeNetParamsClass(t *testing.T) {
	// Inception-v1 is famously small: ~7M (6.6M weights + aux heads we
	// don't model).
	got := GoogLeNet().Params()
	if got < 5.5e6 || got > 8e6 {
		t.Errorf("GoogLeNet params = %d, want ~7M", got)
	}
}

func TestWeightBitsScalesWithPrecision(t *testing.T) {
	net := LeNet()
	b8 := net.WeightBits(8)
	b4 := net.WeightBits(4)
	if b8 != 2*b4 {
		t.Errorf("weight bits must scale linearly: %d vs %d", b8, b4)
	}
	// Weight bits exclude biases: 61706 params - 236 biases = 61470
	// weights; at 8 bits that is 491,760 bits.
	if b8 != 61470*8 {
		t.Errorf("LeNet 8-bit weights = %d, want %d", b8, 61470*8)
	}
}

func TestWeightBitsPanicsOnBadPrecision(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	LeNet().Layers[0].WeightBits(0)
}
