package cnn

import "testing"

func TestAllNetworksValidate(t *testing.T) {
	nets := All()
	if len(nets) != 6 {
		t.Fatalf("expected 6 networks, got %d", len(nets))
	}
	for _, n := range nets {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

// TestVGG16TableI checks every row of the paper's Table I (values in
// millions as printed; 1% tolerance for the paper's rounding).
func TestVGG16TableI(t *testing.T) {
	rows := []struct {
		name               string
		mvm, mul, add, act float64 // millions, as printed
		shape              string
	}{
		{"Conv1", 9.63, 86.7, 89.9, 3.21, "[226,226,3]"}, // paper prints [224,224,3]; see note
		{"Conv2", 206, 1850, 1853, 3.21, "[226,226,64]"},
		{"Conv3", 103, 925, 926, 1.61, "[114,114,64]"},
		{"Conv4", 206, 1850, 1850, 1.61, "[114,114,128]"},
		{"Conv5", 103, 926, 926, 0.803, "[58,58,128]"},
		{"Conv6", 206, 1850, 1850, 0.803, "[58,58,256]"},
		{"Conv7", 103, 925, 925, 0.401, "[30,30,256]"},
		{"Conv8", 206, 1850, 1850, 0.401, "[30,30,512]"},
		{"Conv9", 51.4, 462, 463, 0.100, "[16,16,512]"},
		{"Conv10", 51.4, 462, 463, 0.100, "[16,16,512]"},
		{"FC1", 1e-6, 629, 1259, 629, "[25088]"},
		{"FC2", 1e-6, 16.8, 33.6, 16.8, "[4096]"},
		{"FC3", 1e-6, 16.8, 33.6, 16.8, "[4096]"},
	}
	net := VGG16()
	if len(net.Layers) != len(rows) {
		t.Fatalf("VGG16 has %d layers, want %d", len(net.Layers), len(rows))
	}
	for i, want := range rows {
		l := net.Layers[i]
		if l.Name != want.name {
			t.Errorf("layer %d name = %s, want %s", i, l.Name, want.name)
		}
		c := l.Counts(ModePaper)
		if l.Type == FC {
			// The paper prints MVM = 10^-6 million, i.e. one MVM.
			if c.MVM != 1 {
				t.Errorf("%s: MVM = %v, want 1", l.Name, c.MVM)
			}
		} else if !almostMillions(c.MVM, want.mvm, 0.01) {
			t.Errorf("%s: MVM = %.3gM, want %vM", l.Name, c.MVM/1e6, want.mvm)
		}
		if !almostMillions(c.Mul, want.mul, 0.01) {
			t.Errorf("%s: Mul = %.4gM, want %vM", l.Name, c.Mul/1e6, want.mul)
		}
		if !almostMillions(c.Add, want.add, 0.01) {
			t.Errorf("%s: Add = %.4gM, want %vM", l.Name, c.Add/1e6, want.add)
		}
		if !almostMillions(c.Act, want.act, 0.01) {
			t.Errorf("%s: Act = %.4gM, want %vM", l.Name, c.Act/1e6, want.act)
		}
		if l.InputShape() != want.shape {
			t.Errorf("%s: shape = %s, want %s", l.Name, l.InputShape(), want.shape)
		}
	}
}

func TestAlexNetKnownMACs(t *testing.T) {
	// Single-tower (ungrouped) AlexNet is ~1.08 GMACs of convolution;
	// the historical 0.66 G figure is for the two-GPU grouped variant.
	net := AlexNet()
	var convMul float64
	for _, l := range net.ConvLayers() {
		convMul += l.Counts(ModePaper).Mul
	}
	if convMul < 0.95e9 || convMul > 1.2e9 {
		t.Errorf("AlexNet conv multiplies = %.3g, want ~1.08e9", convMul)
	}
	// And the first layer is the canonical 105.4M MACs.
	if got := net.Layers[0].Counts(ModePaper).Mul; got != 11*11*55*55*96*3 {
		t.Errorf("AlexNet Conv1 mul = %v", got)
	}
}

func TestResNet34Structure(t *testing.T) {
	net := ResNet34()
	convs := net.ConvLayers()
	// 33 main convolutions + 3 projection shortcuts.
	if len(convs) != 36 {
		t.Errorf("ResNet-34 conv layers = %d, want 36 (33 + 3 projections)", len(convs))
	}
	// He et al. report 3.6 billion multiply-adds for ResNet-34.
	var mul float64
	for _, l := range convs {
		mul += l.Counts(ModePaper).Mul
	}
	if mul < 3.2e9 || mul > 4.2e9 {
		t.Errorf("ResNet-34 conv multiplies = %.3g, want ~3.6e9", mul)
	}
}

func TestGoogLeNetStructure(t *testing.T) {
	net := GoogLeNet()
	// 3 stem convs + 9 modules x 6 convs + FC.
	if got := len(net.ConvLayers()); got != 3+9*6 {
		t.Errorf("GoogLeNet conv layers = %d, want 57", got)
	}
	// ~1.5 GMACs published for Inception-v1.
	var mul float64
	for _, l := range net.ConvLayers() {
		mul += l.Counts(ModePaper).Mul
	}
	if mul < 1.0e9 || mul > 1.8e9 {
		t.Errorf("GoogLeNet conv multiplies = %.3g, want ~1.4e9", mul)
	}
}

func TestLeNetStructure(t *testing.T) {
	net := LeNet()
	convs := net.ConvLayers()
	if len(convs) != 2 {
		t.Fatalf("LeNet conv layers = %d, want 2", len(convs))
	}
	// Conv1: 28^2 * 6 * 1 * 25 = 117,600 multiplies.
	if got := convs[0].Counts(ModePaper).Mul; got != 117600 {
		t.Errorf("LeNet Conv1 mul = %v, want 117600", got)
	}
	// Conv2: 10^2 * 16 * 6 * 25 = 240,000 multiplies.
	if got := convs[1].Counts(ModePaper).Mul; got != 240000 {
		t.Errorf("LeNet Conv2 mul = %v, want 240000", got)
	}
}

func TestZFNetFirstLayers(t *testing.T) {
	net := ZFNet()
	if got := net.Layers[0].OutputSize(); got != 110 {
		t.Errorf("ZFNet Conv1 E = %d, want 110", got)
	}
	if got := net.Layers[1].OutputSize(); got != 26 {
		t.Errorf("ZFNet Conv2 E = %d, want 26", got)
	}
}

func TestTotalCountsAccumulate(t *testing.T) {
	net := LeNet()
	total := net.TotalCounts(ModePaper)
	if total.Mul <= 0 || total.Add <= total.Mul || total.Act <= 0 || total.MVM <= 0 {
		t.Errorf("implausible totals %+v", total)
	}
	// Exact mode differs from paper mode on the FC layers.
	exact := net.TotalCounts(ModeExact)
	if exact.Mul >= total.Mul {
		t.Error("LeNet exact FC accounting (In*Out) should be below paper mode (In^2)")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"VGG16", "AlexNet", "ZFNet", "ResNet-34", "LeNet", "GoogLeNet"} {
		n, err := ByName(name)
		if err != nil || n.Name != name {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("NopeNet"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestNetworkValidateRejectsBroken(t *testing.T) {
	if err := (Network{}).Validate(); err == nil {
		t.Error("empty network should fail")
	}
	n := Network{Name: "x", Layers: []Layer{conv("bad", 0, 1, 0, 1, 1, 1)}}
	if err := n.Validate(); err == nil {
		t.Error("broken layer should fail network validation")
	}
}
