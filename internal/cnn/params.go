package cnn

// Parameter (weight) counting — the storage side of the workload, used
// by the mapper's preload model and the memory sizing.

// Params returns the layer's learnable parameter count (weights plus
// one bias per filter/output).
func (l Layer) Params() int64 {
	switch l.Type {
	case Conv:
		return int64(l.M)*int64(l.R)*int64(l.R)*int64(l.C) + int64(l.M)
	case FC:
		return int64(l.In)*int64(l.Out) + int64(l.Out)
	default:
		return 0
	}
}

// WeightBits returns the layer's weight storage at the given precision
// [bits], excluding biases (which stay at accumulator precision in the
// tiles).
func (l Layer) WeightBits(precision int) int64 {
	if precision < 1 {
		panic("cnn: non-positive precision")
	}
	switch l.Type {
	case Conv:
		return int64(l.M) * int64(l.R) * int64(l.R) * int64(l.C) * int64(precision)
	case FC:
		return int64(l.In) * int64(l.Out) * int64(precision)
	default:
		return 0
	}
}

// Params returns the network's total parameter count.
func (n Network) Params() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.Params()
	}
	return total
}

// WeightBits returns the network's total weight storage at the given
// precision [bits].
func (n Network) WeightBits(precision int) int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.WeightBits(precision)
	}
	return total
}
