package fleet

import (
	"context"
	"sync"
	"time"
)

// prober owns worker health: it hits every worker's /healthz on a
// fixed cadence and flips the shared healthy bits that candidate
// ordering reads. A worker is evicted — it stops receiving new shards;
// in-flight shards fail over to its ring successors, which is the
// re-queue — after ProbeFailThreshold consecutive bad probes, or
// immediately when it reports "draining" (the worker itself asking for
// no more work). One good probe revives it.
type prober struct {
	c     *Coordinator
	stop  chan struct{}
	done  chan struct{}
	fails []int // consecutive bad probes per worker; element i touched only by worker i's probe goroutine per sweep
}

func startProber(c *Coordinator) *prober {
	p := &prober{
		c:     c,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		fails: make([]int, len(c.workers)),
	}
	go p.run()
	return p
}

func (p *prober) shutdown() {
	close(p.stop)
	<-p.done
}

func (p *prober) run() {
	defer close(p.done)
	t := time.NewTicker(p.c.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.sweep()
		case <-p.stop:
			return
		}
	}
}

// sweep probes all workers concurrently so one black-holed worker's
// timeout does not delay the others' verdicts.
func (p *prober) sweep() {
	var wg sync.WaitGroup
	for i := range p.c.workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.probe(i)
		}(i)
	}
	wg.Wait()
}

func (p *prober) probe(i int) {
	w := p.c.workers[i]
	ctx, cancel := context.WithTimeout(context.Background(), p.c.opts.ProbeTimeout)
	defer cancel()
	h, err := w.client.Health(ctx)
	if err == nil && h.Status == "ok" {
		p.fails[i] = 0
		if !w.healthy.Swap(true) {
			p.c.metrics.revivals.Add(1)
			p.c.logger.Info("fleet: worker revived", "worker", w.name)
		}
		return
	}
	p.fails[i]++
	draining := err == nil && h.Status == "draining"
	if draining || p.fails[i] >= p.c.opts.ProbeFailThreshold {
		if w.healthy.Swap(false) {
			p.c.metrics.evictions.Add(1)
			p.c.logger.Warn("fleet: worker evicted",
				"worker", w.name, "consecutive_fails", p.fails[i], "draining", draining, "err", err)
		}
	}
}
