package fleet

import (
	"context"
	"sync"
	"time"
)

// prober owns worker health: it hits every member's /healthz on a
// jittered cadence and flips the shared healthy bits that candidate
// ordering reads. A worker is evicted — it stops receiving new shards;
// in-flight shards fail over to its ring successors, which is the
// re-queue — after ProbeFailThreshold consecutive bad probes, or
// immediately when it reports "draining" (the worker itself asking for
// no more work). One good probe revives it. Each sweep snapshots the
// membership, so workers added or removed at runtime join or leave the
// probe rotation on the next tick.
type prober struct {
	c    *Coordinator
	stop chan struct{}
	done chan struct{}
}

func startProber(c *Coordinator) *prober {
	p := &prober{
		c:    c,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *prober) shutdown() {
	close(p.stop)
	<-p.done
}

func (p *prober) run() {
	defer close(p.done)
	t := time.NewTimer(jitter(p.c.opts.ProbeInterval))
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.sweep()
			t.Reset(jitter(p.c.opts.ProbeInterval))
		case <-p.stop:
			return
		}
	}
}

// sweep probes the current membership concurrently so one black-holed
// worker's timeout does not delay the others' verdicts.
func (p *prober) sweep() {
	members, _ := p.c.membership()
	var wg sync.WaitGroup
	for _, w := range members {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			p.probe(w)
		}(w)
	}
	wg.Wait()
}

func (p *prober) probe(w *worker) {
	ctx, cancel := context.WithTimeout(context.Background(), p.c.opts.ProbeTimeout)
	defer cancel()
	h, err := w.client.Health(ctx)
	if err == nil && h.Status == "ok" {
		w.probeFails.Store(0)
		if !w.healthy.Swap(true) {
			p.c.metrics.revivals.Add(1)
			p.c.logger.Info("fleet: worker revived", "worker", w.name)
		}
		return
	}
	fails := w.probeFails.Add(1)
	draining := err == nil && h.Status == "draining"
	if draining || int(fails) >= p.c.opts.ProbeFailThreshold {
		if w.healthy.Swap(false) {
			p.c.metrics.evictions.Add(1)
			p.c.logger.Warn("fleet: worker evicted",
				"worker", w.name, "consecutive_fails", fails, "draining", draining, "err", err)
		}
	}
}
