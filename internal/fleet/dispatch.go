package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pixel/api"
)

// errJobsUnsupported marks a worker fleet that cannot run jobs (an
// older pixeld without the routes, or one started without -jobs):
// the caller falls back to the synchronous shard path.
var errJobsUnsupported = errors.New("fleet: worker does not support jobs")

// jobsUnsupported classifies a worker-job control failure as "this
// worker has no job API" rather than a fault: 501 from a jobs-disabled
// pixeld, 404/405 from a build predating the routes.
func jobsUnsupported(err error) bool {
	var he *api.HTTPError
	if errors.As(err, &he) {
		switch he.Status {
		case http.StatusNotImplemented, http.StatusNotFound, http.StatusMethodNotAllowed:
			return true
		}
	}
	return false
}

// runShardJob dispatches one shard sub-request as a job on the shard
// key's ring worker and follows it to completion. Events from the
// worker's SSE stream feed onEvent as they arrive (the stream
// auto-reconnects with Last-Event-ID, see api.EventStream); the job's
// chunked partial is polled on JobPollInterval and fed to onStatus, so
// units the worker already computed are harvested even if it dies
// before finishing — that harvest is what partial-result salvage
// re-plans around. On success the worker job's final Result is
// returned; the worker job is deleted best-effort either way, which is
// also how a cancelled coordinator job propagates its cancellation.
func (c *Coordinator) runShardJob(ctx context.Context, key string, jreq api.JobRequest, onEvent func(api.JobEvent), onStatus func(api.JobStatusResponse)) (json.RawMessage, error) {
	order := c.candidates(key)
	h, w, err := runArm(ctx, c, order, func(ctx context.Context, cl *api.Client) (api.JobHandle, error) {
		cctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
		return cl.CreateJob(cctx, jreq)
	})
	if err != nil {
		if jobsUnsupported(err) {
			return nil, errJobsUnsupported
		}
		return nil, err
	}
	defer func() {
		// Best-effort cleanup on the worker: frees its registry slot on
		// success, cancels the remote work when our ctx died first. Runs
		// on a detached context — the whole point is surviving ctx.
		dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
		defer cancel()
		_ = w.client.DeleteJob(dctx, h.ID)
	}()

	fetch := func() (api.JobStatusResponse, error) {
		pctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
		return w.client.Job(pctx, h.ID)
	}
	finish := func(st api.JobStatusResponse) (json.RawMessage, error) {
		if onStatus != nil {
			onStatus(st)
		}
		switch st.State {
		case api.JobStateSucceeded:
			w.br.onSuccess()
			return st.Result, nil
		default:
			msg := st.Error
			if msg == "" {
				msg = "worker job state " + st.State
			}
			return nil, fmt.Errorf("fleet: job %s on %s: %s", h.ID, w.name, msg)
		}
	}

	// The stream reader pushes events and its terminal error through
	// channels; the main loop multiplexes them with the partial poll.
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	events := make(chan api.JobEvent, 64)
	streamErr := make(chan error, 1)
	go func() {
		st, err := w.client.JobEvents(sctx, h.ID, -1)
		if err != nil {
			streamErr <- err
			return
		}
		defer st.Close()
		for {
			ev, err := st.Next()
			if err != nil {
				streamErr <- err
				return
			}
			select {
			case events <- ev:
			case <-sctx.Done():
				streamErr <- sctx.Err()
				return
			}
		}
	}()

	poll := time.NewTicker(c.opts.JobPollInterval)
	defer poll.Stop()
	for {
		select {
		case ev := <-events:
			if onEvent != nil {
				onEvent(ev)
			}
			if ev.Terminal() {
				st, err := fetch()
				if err != nil {
					return nil, err
				}
				return finish(st)
			}
		case err := <-streamErr:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// The stream died past its reconnect budget. One last poll:
			// the job may have finished while the stream was down.
			if st, ferr := fetch(); ferr == nil && st.State == api.JobStateSucceeded {
				return finish(st)
			}
			if workerFault(ctx, err) {
				if w.br.onFailure(time.Now()) {
					c.metrics.breakerOpens.Add(1)
					c.logger.Warn("fleet: breaker opened", "worker", w.name, "err", err)
				}
			}
			return nil, fmt.Errorf("fleet: job %s event stream from %s: %w", h.ID, w.name, err)
		case <-poll.C:
			st, err := fetch()
			if err != nil {
				// A dead worker surfaces through the stream watcher; a
				// transient poll failure is not worth more than skipping.
				continue
			}
			if onStatus != nil {
				onStatus(st)
			}
			switch st.State {
			case api.JobStateSucceeded, api.JobStateFailed, api.JobStateCancelled:
				return finish(st)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// fanAll runs fn for every index concurrently and waits for all of
// them — no cancellation on first error, unlike fanOut: the salvage
// path wants every sibling shard's partial harvest even when one dies.
// It returns the first error, or nil when every shard landed.
func fanAll(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n == 1 {
		return fn(ctx, 0)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fn(ctx, i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// waitHealthy parks a fleet job while no member is healthy: the job
// stays running and keeps waiting for the prober to revive someone (or
// for a worker to be added) instead of failing — a temporarily dark
// fleet is an operational state, not a job error.
func (c *Coordinator) waitHealthy(ctx context.Context) error {
	if c.healthyCount() > 0 {
		return nil
	}
	c.metrics.jobsParked.Add(1)
	c.logger.Warn("fleet: job parked, no healthy workers")
	interval := c.opts.ProbeInterval / 2
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	for {
		if err := sleepCtx(ctx, jitter(interval)); err != nil {
			return err
		}
		if c.healthyCount() > 0 {
			c.logger.Info("fleet: job unparked, workers healthy again")
			return nil
		}
	}
}
