// Package fleet is pixeld's scale-out layer: a coordinator that
// splits sweep grids and Monte-Carlo robustness runs into shards,
// fans the shards across a fleet of worker pixelds over the public
// /v1 wire API (pixel/api), and merges the shard responses into a
// payload byte-identical to what a single pixeld would have produced.
//
// Determinism is the contract. Sweep shards are contiguous,
// cross-product-expressible blocks of the canonical design-major grid,
// so every shard sub-request is itself a valid /v1/sweep body and each
// worker prices exactly its rows of the full grid in the full grid's
// order. Robustness shards are contiguous σ-axis chunks: the engine's
// trial seeds deliberately exclude σ (see internal/montecarlo), so a
// worker running a σ subset samples exactly the draws the full axis
// would, and the unperturbed baseline is σ-independent and merely
// cross-checked at merge time.
//
// Operationally the coordinator brings what a fan-out needs: per-shard
// retry with exponential backoff honoring Retry-After, ring-successor
// failover, straggler hedging once a latency window knows what "slow"
// means, /healthz probing with eviction and revival, consistent-hash
// routing that keeps each design point hot in exactly one worker's
// result LRU, and Prometheus metrics under the pixelfleet_ prefix.
//
// The coordinator serves the same /v1 routes as a worker — clients
// cannot tell them apart — and is surfaced as `pixeld -coordinator`
// and the pixel/fleet facade. See docs/FLEET.md.
package fleet

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pixel/api"
	"pixel/internal/jobs"
)

// Defaults for the Options knobs.
const (
	DefaultShardsPerWorker    = 2
	DefaultMaxAttempts        = 4
	DefaultRetryBaseDelay     = 25 * time.Millisecond
	DefaultRetryMaxDelay      = 1 * time.Second
	DefaultHedgePercentile    = 0.95
	DefaultHedgeMinSamples    = 8
	DefaultHedgeMinDelay      = 50 * time.Millisecond
	DefaultProbeInterval      = 1 * time.Second
	DefaultProbeTimeout       = 2 * time.Second
	DefaultProbeFailThreshold = 3
	DefaultRequestTimeout     = 30 * time.Second
	DefaultMaxTrials          = 4096
)

// Options configures a Coordinator. Workers is required; everything
// else has a serving-sane default.
type Options struct {
	// Workers are the worker pixeld addresses ("host:port" or full
	// base URLs). Required, at least one.
	Workers []string
	// HTTPClient carries shard requests; nil means http.DefaultClient.
	// Per-request deadlines ride on contexts, not the client.
	HTTPClient *http.Client
	// ShardsPerWorker scales the shard target: a request splits into
	// about healthy-workers x ShardsPerWorker shards; <= 0 means
	// DefaultShardsPerWorker.
	ShardsPerWorker int
	// MaxAttempts is the per-arm attempt budget of one shard, the first
	// try included; successive attempts walk the shard key's ring
	// successors. <= 0 means DefaultMaxAttempts.
	MaxAttempts int
	// RetryBaseDelay is the first backoff sleep; it doubles per retry
	// up to RetryMaxDelay. A worker Retry-After hint above the cap is
	// honored anyway. <= 0 means the defaults.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// HedgePercentile is the shard-latency quantile that arms the
	// straggler deadline; a primary still running past it gets one
	// duplicate arm on a rotated worker order, first result wins.
	// <= 0 means DefaultHedgePercentile.
	HedgePercentile float64
	// HedgeMinSamples is how many shard latencies a route must have
	// observed before hedging arms at all; <= 0 means
	// DefaultHedgeMinSamples.
	HedgeMinSamples int
	// HedgeMinDelay floors the hedge deadline so naturally-fast routes
	// do not hedge on scheduling noise; <= 0 means DefaultHedgeMinDelay.
	HedgeMinDelay time.Duration
	// ProbeInterval, ProbeTimeout and ProbeFailThreshold tune the
	// /healthz prober: a worker is evicted after ProbeFailThreshold
	// consecutive bad probes (immediately when it reports "draining"),
	// and one good probe revives it. <= 0 means the defaults.
	ProbeInterval      time.Duration
	ProbeTimeout       time.Duration
	ProbeFailThreshold int
	// RequestTimeout bounds one synchronous coordinator request end to
	// end, shard fan-out included; <= 0 means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxTrials bounds the per-request trial count of a robustness
	// sweep, mirroring the worker-side cap; <= 0 means DefaultMaxTrials.
	MaxTrials int
	// MaxJobs, MaxRunningJobs, JobTTL and Heartbeat configure the
	// coordinator's job registry (see jobs.RegistryOptions and the
	// server's JobsConfig). Coordinator jobs are in-memory only: the
	// expensive state lives in the workers' result caches, so a
	// restarted coordinator simply re-runs and the workers re-serve.
	MaxJobs        int
	MaxRunningJobs int
	JobTTL         time.Duration
	Heartbeat      time.Duration
	// Logger receives structured logs; nil means slog.Default().
	Logger *slog.Logger
}

// withDefaults returns o with every unset knob defaulted.
func (o Options) withDefaults() Options {
	if o.ShardsPerWorker <= 0 {
		o.ShardsPerWorker = DefaultShardsPerWorker
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = DefaultRetryBaseDelay
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = DefaultRetryMaxDelay
	}
	if o.HedgePercentile <= 0 || o.HedgePercentile > 1 {
		o.HedgePercentile = DefaultHedgePercentile
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = DefaultHedgeMinSamples
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = DefaultHedgeMinDelay
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	if o.ProbeFailThreshold <= 0 {
		o.ProbeFailThreshold = DefaultProbeFailThreshold
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.MaxTrials <= 0 {
		o.MaxTrials = DefaultMaxTrials
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 15 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// worker is one fleet member: its configured name (the metric label),
// a non-retrying API client (the coordinator's executor owns retry and
// failover so it can count them and fail over between workers), and
// the health bit the prober flips and the candidate ordering reads.
type worker struct {
	name    string
	client  *api.Client
	healthy atomic.Bool
}

// Coordinator fans /v1 requests across a worker fleet. Construct with
// New; Close releases its background machinery.
type Coordinator struct {
	opts    Options
	workers []*worker
	ring    *ring
	metrics *metrics
	prober  *prober
	reg     *jobs.Registry
	logger  *slog.Logger

	latMu sync.Mutex
	lat   map[string]*latencyWindow

	draining  atomic.Bool
	closeOnce sync.Once
}

// New builds a Coordinator over the given workers. Workers start
// healthy (optimistically — requests flow before the first probe) and
// the prober starts immediately.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("fleet: Options.Workers must name at least one worker")
	}
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:    opts,
		workers: make([]*worker, len(opts.Workers)),
		ring:    newRing(opts.Workers),
		metrics: newMetrics(),
		logger:  opts.Logger,
		lat:     map[string]*latencyWindow{},
	}
	for i, addr := range opts.Workers {
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		w := &worker{name: addr, client: api.NewClient(base, opts.HTTPClient)}
		w.healthy.Store(true)
		c.workers[i] = w
	}
	c.reg = jobs.NewRegistry(jobs.RegistryOptions{
		Factory:    c.buildJobTask,
		MaxJobs:    opts.MaxJobs,
		MaxRunning: opts.MaxRunningJobs,
		TTL:        opts.JobTTL,
		Logger:     opts.Logger,
	})
	c.prober = startProber(c)
	return c, nil
}

// Close stops the prober and the job registry (running coordinator
// jobs are cancelled; they hold no durable state).
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		c.prober.shutdown()
		c.reg.Close()
	})
}

// Serve runs the coordinator on ln until ctx is cancelled, then drains
// in-flight requests for at most drain — the same lifecycle as a
// worker pixeld, /healthz "draining" included.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	hs := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(c.logger.Handler(), slog.LevelWarn),
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		c.draining.Store(true)
		c.logger.Info("fleet: shutting down", "drain", drain)
		dctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		shutdownErr <- hs.Shutdown(dctx)
	}()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	err := <-shutdownErr
	c.Close()
	return err
}

// healthyCount returns how many workers the prober currently trusts.
func (c *Coordinator) healthyCount() int {
	n := 0
	for _, w := range c.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// shardTarget is how many shards the next fan-out should aim for:
// enough to keep every healthy worker busy with a little over-split
// for balance. A fully-dark fleet still plans against the nominal
// size — the executor will surface the real transport errors.
func (c *Coordinator) shardTarget() int {
	n := c.healthyCount()
	if n == 0 {
		n = len(c.workers)
	}
	return n * c.opts.ShardsPerWorker
}

// candidates orders the shard key's ring sequence healthy-first: the
// owner (or its first healthy successor) serves the shard, and
// unhealthy workers stay at the tail as a last resort so a fully-dark
// fleet surfaces the real error instead of "no workers".
func (c *Coordinator) candidates(key string) []*worker {
	seq := c.ring.sequence(key)
	up := make([]*worker, 0, len(seq))
	var down []*worker
	for _, wi := range seq {
		w := c.workers[wi]
		if w.healthy.Load() {
			up = append(up, w)
		} else {
			down = append(down, w)
		}
	}
	return append(up, down...)
}

// latencyWindowSize bounds the per-route shard-latency history the
// hedge deadline is computed from.
const latencyWindowSize = 128

// window returns the route's latency window, creating it on first use.
func (c *Coordinator) window(route string) *latencyWindow {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	w, ok := c.lat[route]
	if !ok {
		w = newLatencyWindow(latencyWindowSize)
		c.lat[route] = w
	}
	return w
}

// hedgeDelay is how long a shard's primary arm may run before a
// duplicate launches: the route's observed latency percentile, floored
// by HedgeMinDelay. No deadline exists until the window has seen
// HedgeMinSamples shards — hedging without a baseline would just
// double every request.
func (c *Coordinator) hedgeDelay(route string) (time.Duration, bool) {
	w := c.window(route)
	if w.count() < c.opts.HedgeMinSamples {
		return 0, false
	}
	d := w.percentile(c.opts.HedgePercentile)
	if d < c.opts.HedgeMinDelay {
		d = c.opts.HedgeMinDelay
	}
	return d, true
}
