// Package fleet is pixeld's scale-out layer: a coordinator that
// splits sweep grids and Monte-Carlo robustness runs into shards,
// fans the shards across a fleet of worker pixelds over the public
// /v1 wire API (pixel/api), and merges the shard responses into a
// payload byte-identical to what a single pixeld would have produced.
//
// Determinism is the contract. Sweep shards are contiguous,
// cross-product-expressible blocks of the canonical design-major grid,
// so every shard sub-request is itself a valid /v1/sweep body and each
// worker prices exactly its rows of the full grid in the full grid's
// order. Robustness shards are σ-axis slices: the engine's trial seeds
// deliberately exclude σ (see internal/montecarlo), so a worker running
// a σ subset samples exactly the draws the full axis would, and the
// unperturbed baseline is σ-independent and merely cross-checked at
// merge time.
//
// Operationally the coordinator brings what a fan-out needs: per-shard
// retry with jittered exponential backoff honoring Retry-After,
// ring-successor failover, a per-worker circuit breaker in front of the
// retry path, straggler hedging once a latency window knows what "slow"
// means, /healthz probing with eviction and revival, dynamic membership
// (POST/DELETE /v1/fleet/workers rebuilds the ring without dropping
// in-flight shards), consistent-hash routing that keeps each design
// point hot in exactly one worker's result LRU, and Prometheus metrics
// under the pixelfleet_ prefix. Coordinator jobs dispatch shards as
// worker jobs and harvest their partial streams, so a worker death
// re-plans only the missing cells/σ-points (partial-result salvage),
// and with JobsDir set the coordinator's own job registry is durable —
// a restarted coordinator re-adopts fleet jobs and re-dispatches only
// unfinished work.
//
// The coordinator serves the same /v1 routes as a worker — clients
// cannot tell them apart — and is surfaced as `pixeld -coordinator`
// and the pixel/fleet facade. See docs/FLEET.md.
package fleet

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pixel/api"
	"pixel/internal/jobs"
)

// Defaults for the Options knobs.
const (
	DefaultShardsPerWorker    = 2
	DefaultMaxAttempts        = 4
	DefaultRetryBaseDelay     = 25 * time.Millisecond
	DefaultRetryMaxDelay      = 1 * time.Second
	DefaultHedgePercentile    = 0.95
	DefaultHedgeMinSamples    = 8
	DefaultHedgeMinDelay      = 50 * time.Millisecond
	DefaultProbeInterval      = 1 * time.Second
	DefaultProbeTimeout       = 2 * time.Second
	DefaultProbeFailThreshold = 3
	DefaultRequestTimeout     = 30 * time.Second
	DefaultMaxTrials          = 4096
	DefaultBreakerThreshold   = 5
	DefaultBreakerCooldown    = 5 * time.Second
	DefaultJobPollInterval    = 250 * time.Millisecond
	DefaultMaxSalvageRounds   = 5
)

// Options configures a Coordinator. Workers is required; everything
// else has a serving-sane default.
type Options struct {
	// Workers are the initial worker pixeld addresses ("host:port" or
	// full base URLs). Required, at least one; the set can change at
	// runtime through POST/DELETE /v1/fleet/workers.
	Workers []string
	// HTTPClient carries shard requests; nil means http.DefaultClient.
	// Per-request deadlines ride on contexts, not the client.
	HTTPClient *http.Client
	// ShardsPerWorker scales the shard target: a request splits into
	// about healthy-workers x ShardsPerWorker shards; <= 0 means
	// DefaultShardsPerWorker.
	ShardsPerWorker int
	// MaxAttempts is the per-arm attempt budget of one shard, the first
	// try included; successive attempts walk the shard key's ring
	// successors. <= 0 means DefaultMaxAttempts.
	MaxAttempts int
	// RetryBaseDelay is the first backoff sleep; it doubles per retry
	// up to RetryMaxDelay (each sleep jittered ±10% so a fleet of
	// coordinators cannot synchronize retries). A worker Retry-After
	// hint above the cap is honored anyway. <= 0 means the defaults.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// HedgePercentile is the shard-latency quantile that arms the
	// straggler deadline; a primary still running past it gets one
	// duplicate arm on a rotated worker order, first result wins.
	// <= 0 means DefaultHedgePercentile.
	HedgePercentile float64
	// HedgeMinSamples is how many shard latencies a route must have
	// observed before hedging arms at all; <= 0 means
	// DefaultHedgeMinSamples.
	HedgeMinSamples int
	// HedgeMinDelay floors the hedge deadline so naturally-fast routes
	// do not hedge on scheduling noise; <= 0 means DefaultHedgeMinDelay.
	HedgeMinDelay time.Duration
	// ProbeInterval, ProbeTimeout and ProbeFailThreshold tune the
	// /healthz prober: a worker is evicted after ProbeFailThreshold
	// consecutive bad probes (immediately when it reports "draining"),
	// and one good probe revives it. The interval is jittered ±10%.
	// <= 0 means the defaults.
	ProbeInterval      time.Duration
	ProbeTimeout       time.Duration
	ProbeFailThreshold int
	// BreakerThreshold is how many consecutive worker-attributable
	// shard failures open a worker's circuit breaker; BreakerCooldown
	// is how long it stays open before a half-open probe call is
	// allowed through. <= 0 means the defaults.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RequestTimeout bounds one synchronous coordinator request end to
	// end, shard fan-out included; <= 0 means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxTrials bounds the per-request trial count of a robustness
	// sweep, mirroring the worker-side cap; <= 0 means DefaultMaxTrials.
	MaxTrials int
	// MaxJobs, MaxRunningJobs, JobTTL and Heartbeat configure the
	// coordinator's job registry (see jobs.RegistryOptions and the
	// server's JobsConfig).
	MaxJobs        int
	MaxRunningJobs int
	JobTTL         time.Duration
	Heartbeat      time.Duration
	// JobsDir makes the coordinator's job registry durable: fleet jobs
	// snapshot their shard plan and received partials there, and a
	// restarted coordinator re-adopts them and re-dispatches only the
	// still-missing work. Empty keeps jobs in memory only.
	JobsDir string
	// JobSaveEvery is the periodic checkpoint cadence of durable fleet
	// jobs; <= 0 means jobs.DefaultSaveEvery. Ignored without JobsDir.
	JobSaveEvery time.Duration
	// JobPollInterval throttles how often a fleet job polls a worker
	// job's status for partial sweep cells while its event stream is
	// quiet; <= 0 means DefaultJobPollInterval.
	JobPollInterval time.Duration
	// MaxSalvageRounds bounds how many consecutive no-progress salvage
	// rounds a fleet job tolerates before it fails with the last shard
	// error; <= 0 means DefaultMaxSalvageRounds.
	MaxSalvageRounds int
	// Logger receives structured logs; nil means slog.Default().
	Logger *slog.Logger
}

// withDefaults returns o with every unset knob defaulted.
func (o Options) withDefaults() Options {
	if o.ShardsPerWorker <= 0 {
		o.ShardsPerWorker = DefaultShardsPerWorker
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = DefaultRetryBaseDelay
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = DefaultRetryMaxDelay
	}
	if o.HedgePercentile <= 0 || o.HedgePercentile > 1 {
		o.HedgePercentile = DefaultHedgePercentile
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = DefaultHedgeMinSamples
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = DefaultHedgeMinDelay
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	if o.ProbeFailThreshold <= 0 {
		o.ProbeFailThreshold = DefaultProbeFailThreshold
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.MaxTrials <= 0 {
		o.MaxTrials = DefaultMaxTrials
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 15 * time.Second
	}
	if o.JobPollInterval <= 0 {
		o.JobPollInterval = DefaultJobPollInterval
	}
	if o.MaxSalvageRounds <= 0 {
		o.MaxSalvageRounds = DefaultMaxSalvageRounds
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// worker is one fleet member: its configured name (the metric label and
// membership key), a non-retrying API client (the coordinator's
// executor owns retry and failover so it can count them and fail over
// between workers), the health bit the prober flips, the prober's
// consecutive-failure count, and the circuit breaker in front of the
// retry path.
type worker struct {
	name       string
	client     *api.Client
	healthy    atomic.Bool
	probeFails atomic.Int32
	br         breaker
}

// Coordinator fans /v1 requests across a worker fleet. Construct with
// New; Close releases its background machinery.
type Coordinator struct {
	opts    Options
	metrics *metrics
	prober  *prober
	reg     *jobs.Registry
	logger  *slog.Logger

	// Membership is copy-on-write behind memMu: members and ring are
	// replaced together, never mutated in place, so in-flight shards
	// keep their candidate snapshots across reconfiguration.
	memMu   sync.RWMutex
	members []*worker
	ring    *ring

	latMu sync.Mutex
	lat   map[string]*latencyWindow

	draining  atomic.Bool
	closeOnce sync.Once
}

// New builds a Coordinator over the given workers. Workers start
// healthy (optimistically — requests flow before the first probe) and
// the prober starts immediately. With JobsDir set, persisted fleet
// jobs are re-adopted and resume before New returns.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("fleet: Options.Workers must name at least one worker")
	}
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:    opts,
		metrics: newMetrics(),
		logger:  opts.Logger,
		lat:     map[string]*latencyWindow{},
	}
	members := make([]*worker, 0, len(opts.Workers))
	for _, addr := range opts.Workers {
		members = append(members, c.newWorker(addr))
	}
	c.members = members
	c.ring = newRing(opts.Workers)

	var mgr *jobs.Manager
	if opts.JobsDir != "" {
		var err error
		if mgr, err = jobs.NewManager(opts.JobsDir); err != nil {
			return nil, err
		}
	}
	c.reg = jobs.NewRegistry(jobs.RegistryOptions{
		Factory:    c.buildJobTask,
		Manager:    mgr,
		MaxJobs:    opts.MaxJobs,
		MaxRunning: opts.MaxRunningJobs,
		TTL:        opts.JobTTL,
		SaveEvery:  opts.JobSaveEvery,
		Logger:     opts.Logger,
	})
	if mgr != nil {
		resumed, err := c.reg.Recover()
		if err != nil {
			c.logger.Warn("fleet: job recovery failed", "err", err)
		}
		if resumed > 0 {
			c.logger.Info("fleet: re-adopted unfinished jobs", "resumed", resumed)
		}
	}
	c.prober = startProber(c)
	return c, nil
}

// newWorker builds a fleet member from its configured address.
func (c *Coordinator) newWorker(addr string) *worker {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	w := &worker{
		name:   addr,
		client: api.NewClient(base, c.opts.HTTPClient),
		br: breaker{
			threshold: c.opts.BreakerThreshold,
			cooldown:  c.opts.BreakerCooldown,
		},
	}
	w.healthy.Store(true)
	return w
}

// membership returns the current copy-on-write member set and ring.
// The returned slice is never mutated after publication, so callers
// may hold it across blocking work.
func (c *Coordinator) membership() ([]*worker, *ring) {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.members, c.ring
}

// Close stops the prober and the job registry. Running coordinator
// jobs are cancelled; with JobsDir they flush a final checkpoint and
// stay persisted as unfinished, so the next coordinator re-adopts them
// and re-dispatches only the still-missing work.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		c.prober.shutdown()
		c.reg.Close()
	})
}

// Serve runs the coordinator on ln until ctx is cancelled, then drains
// in-flight requests for at most drain — the same lifecycle as a
// worker pixeld, /healthz "draining" included.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	hs := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(c.logger.Handler(), slog.LevelWarn),
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		c.draining.Store(true)
		c.logger.Info("fleet: shutting down", "drain", drain)
		dctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		shutdownErr <- hs.Shutdown(dctx)
	}()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	err := <-shutdownErr
	c.Close()
	return err
}

// healthyCount returns how many members the prober currently trusts.
func (c *Coordinator) healthyCount() int {
	members, _ := c.membership()
	n := 0
	for _, w := range members {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// shardTarget is how many shards the next fan-out should aim for:
// enough to keep every healthy worker busy with a little over-split
// for balance. A fully-dark fleet still plans against the nominal
// size — the executor will surface the real transport errors.
func (c *Coordinator) shardTarget() int {
	n := c.healthyCount()
	if n == 0 {
		members, _ := c.membership()
		n = len(members)
	}
	return n * c.opts.ShardsPerWorker
}

// candidates orders the shard key's ring sequence healthy-first: the
// owner (or its first healthy successor) serves the shard, and
// unhealthy workers stay at the tail as a last resort so a fully-dark
// fleet surfaces the real error instead of "no workers". The slice is
// a snapshot — membership changes do not disturb shards in flight.
func (c *Coordinator) candidates(key string) []*worker {
	members, ring := c.membership()
	seq := ring.sequence(key)
	up := make([]*worker, 0, len(seq))
	var down []*worker
	for _, wi := range seq {
		w := members[wi]
		if w.healthy.Load() {
			up = append(up, w)
		} else {
			down = append(down, w)
		}
	}
	return append(up, down...)
}

// latencyWindowSize bounds the per-route shard-latency history the
// hedge deadline is computed from.
const latencyWindowSize = 128

// window returns the route's latency window, creating it on first use.
func (c *Coordinator) window(route string) *latencyWindow {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	w, ok := c.lat[route]
	if !ok {
		w = newLatencyWindow(latencyWindowSize)
		c.lat[route] = w
	}
	return w
}

// hedgeDelay is how long a shard's primary arm may run before a
// duplicate launches: the route's observed latency percentile, floored
// by HedgeMinDelay. No deadline exists until the window has seen
// HedgeMinSamples shards — hedging without a baseline would just
// double every request.
func (c *Coordinator) hedgeDelay(route string) (time.Duration, bool) {
	w := c.window(route)
	if w.count() < c.opts.HedgeMinSamples {
		return 0, false
	}
	d := w.percentile(c.opts.HedgePercentile)
	if d < c.opts.HedgeMinDelay {
		d = c.opts.HedgeMinDelay
	}
	return d, true
}
