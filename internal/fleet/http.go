package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pixel"
	"pixel/api"
	"pixel/internal/jobs"
)

// statusClientClosedRequest is the nginx-convention status recorded
// when the client hung up before the response was ready.
const statusClientClosedRequest = 499

// httpError carries an explicit status and code for request-shape
// failures the coordinator detects itself (bad JSON, missing fields).
type httpError struct {
	status      int
	code        string
	msg         string
	retryAfterS int
}

func (e *httpError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, code: "bad_request", msg: fmt.Sprintf(format, args...)}
}

// errNoHealthyWorkers is the uniform refusal for synchronous fan-out
// when every fleet member is evicted: a 503 with its own wire code (not
// a generic 502 from whichever shard happened to fail first) and a
// Retry-After hint, so clients can tell "fleet temporarily empty" from
// a worker-side failure. Fleet jobs never surface this — they park and
// wait for the prober to revive somebody.
func errNoHealthyWorkers() error {
	return &httpError{
		status:      http.StatusServiceUnavailable,
		code:        "no_healthy_workers",
		msg:         "no healthy workers in the fleet; retry shortly",
		retryAfterS: 1,
	}
}

// errorTable maps the sentinels the coordinator can surface locally
// (validation before fan-out, registry admission, context ends) onto
// the same statuses and wire codes a worker uses; first match wins.
var errorTable = []struct {
	is     error
	status int
	code   string
}{
	{jobs.ErrRegistryFull, http.StatusTooManyRequests, "overloaded"},
	{jobs.ErrBadLastEventID, http.StatusBadRequest, "bad_request"},
	{pixel.ErrUnknownNetwork, http.StatusNotFound, "unknown_network"},
	{pixel.ErrUnknownDesign, http.StatusBadRequest, "unknown_design"},
	{pixel.ErrBadPrecision, http.StatusBadRequest, "bad_precision"},
	{pixel.ErrBadGrid, http.StatusBadRequest, "bad_grid"},
	{pixel.ErrBadSpec, http.StatusBadRequest, "bad_spec"},
	{context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline_exceeded"},
	{context.Canceled, statusClientClosedRequest, "client_closed_request"},
}

// classify maps an error onto (status, wire detail). Worker-reported
// HTTP errors pass through with their original status, code and retry
// hint — a 404 unknown_network from a shard is a 404 unknown_network
// from the fleet, so clients cannot tell a coordinator from a single
// node by its failures.
func classify(err error) (int, api.Error) {
	var he *api.HTTPError
	if errors.As(err, &he) {
		return he.Status, api.Error{Code: he.Code, Message: he.Message, RetryAfterS: he.RetryAfterS}
	}
	var le *httpError
	if errors.As(err, &le) {
		return le.status, api.Error{Code: le.code, Message: le.msg, RetryAfterS: le.retryAfterS}
	}
	for _, e := range errorTable {
		if errors.Is(err, e.is) {
			detail := api.Error{Code: e.code, Message: err.Error()}
			if e.status == http.StatusTooManyRequests {
				detail.RetryAfterS = 1
			}
			return e.status, detail
		}
	}
	return http.StatusInternalServerError, api.Error{Code: "internal", Message: err.Error()}
}

// writeError renders err through the same envelope a worker uses.
func writeError(w http.ResponseWriter, err error) {
	status, detail := classify(err)
	if detail.RetryAfterS > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(detail.RetryAfterS))
	}
	writeJSON(w, status, api.ErrorEnvelope{Error: detail})
}

// writeJSON matches the worker's encoder settings exactly (two-space
// indent) — merged fleet responses must be byte-identical to
// single-node ones, and the framing is part of that.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

// decodeJSON parses a bounded request body strictly, mirroring the
// worker's limits and message.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequestf("bad request body: %v", err)
	}
	return nil
}

// statusRecorder captures the status and body size a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards streaming support so the SSE job route works through
// the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with per-route request metrics and a
// structured log line.
func (c *Coordinator) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		c.metrics.observeRequest(route, rec.status)
		c.logger.Info("fleet request",
			"method", r.Method,
			"route", route,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration", elapsed,
			"remote", r.RemoteAddr,
		)
	})
}
