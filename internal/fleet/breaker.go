package fleet

import (
	"sync"
	"time"
)

// breaker states. Closed admits every call; open admits none until the
// cooldown elapses; half-open admits exactly one probe call whose
// outcome decides between closing and re-opening.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-worker circuit breaker sitting in front of the
// retry/backoff path: a worker that fails threshold consecutive shard
// calls is skipped by the candidate scan until its cooldown elapses, so
// a flapping worker cannot absorb every arm's attempt budget with
// backoff sleeps. Only worker-attributable failures count (transport
// errors, 5xx, 429) — a cancelled hedge loser or a caller's bad request
// says nothing about the worker.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int
	fails    int  // consecutive worker-attributable failures
	probing  bool // a half-open probe call is in flight
	openedAt time.Time
}

// allow reports whether a call may proceed now. In the open state the
// first allow after the cooldown transitions to half-open and claims
// the single probe slot; callers that are refused should try the next
// candidate instead of sleeping on this one.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess closes the breaker: any successful call proves the worker
// serves again.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// onFailure records a worker-attributable failure and reports whether
// this call opened the breaker (a closed->open or half-open->open
// transition, for the metrics counter). A failed half-open probe
// re-opens immediately and restarts the cooldown.
func (b *breaker) onFailure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = now
		return true
	}
	if b.state == breakerOpen {
		// A last-resort call through an open breaker failed again: keep
		// it open and restart the cooldown.
		b.openedAt = now
	}
	return false
}

// status renders the state for /v1/fleet/workers and logs.
func (b *breaker) status() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// isOpen reports whether the breaker currently refuses calls (the
// /metrics gauge; half-open counts as open until its probe settles).
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerClosed
}
