package fleet

import (
	"context"
	"net/http"

	"pixel"
	"pixel/api"
)

// Handler returns the coordinator's routing tree: the same routes with
// the same envelopes as a worker pixeld, so clients point at a
// coordinator with zero changes. Catalog routes (/v1/networks,
// /v1/designs) answer locally — the coordinator links the same model
// zoo and design table as its workers.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", c.instrument("/healthz", c.handleHealthz))
	mux.Handle("GET /metrics", c.instrument("/metrics", c.handleMetrics))
	mux.Handle("GET /v1/networks", c.instrument("/v1/networks", c.handleNetworks))
	mux.Handle("GET /v1/designs", c.instrument("/v1/designs", c.handleDesigns))
	mux.Handle("POST /v1/evaluate", c.instrument("/v1/evaluate", c.handleEvaluate))
	mux.Handle("POST /v1/sweep", c.instrument("/v1/sweep", c.handleSweep))
	mux.Handle("POST /v1/map", c.instrument("/v1/map", c.handleMap))
	mux.Handle("POST /v1/robustness", c.instrument("/v1/robustness", c.handleRobustness))
	mux.Handle("POST /v1/infer", c.instrument("/v1/infer", c.handleInfer))
	mux.Handle("POST /v1/jobs", c.instrument("/v1/jobs", c.handleJobCreate))
	mux.Handle("GET /v1/jobs/{id}", c.instrument("/v1/jobs/{id}", c.handleJobGet))
	mux.Handle("DELETE /v1/jobs/{id}", c.instrument("/v1/jobs/{id}", c.handleJobDelete))
	mux.Handle("GET /v1/jobs/{id}/events", c.instrument("/v1/jobs/{id}/events", c.handleJobEvents))
	mux.Handle("GET /v1/fleet/workers", c.instrument("/v1/fleet/workers", c.handleWorkersList))
	mux.Handle("POST /v1/fleet/workers", c.instrument("/v1/fleet/workers", c.handleWorkerAdd))
	mux.Handle("DELETE /v1/fleet/workers", c.instrument("/v1/fleet/workers", c.handleWorkerRemove))
	return mux
}

// preflight refuses a synchronous fan-out up front when the fleet has
// no healthy member — a uniform 503 no_healthy_workers instead of
// whatever transport error the first doomed shard would produce.
func (c *Coordinator) preflight(w http.ResponseWriter) bool {
	if c.healthyCount() == 0 {
		writeError(w, errNoHealthyWorkers())
		return false
	}
	return true
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.HealthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, api.HealthResponse{Status: "ok"})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	members, _ := c.membership()
	c.metrics.write(w, c.healthyCount(), len(members), c.breakersOpen())
}

func (c *Coordinator) handleNetworks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.NetworksResponse{Networks: pixel.Networks()})
}

func (c *Coordinator) handleDesigns(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, 3)
	for _, d := range pixel.Designs() {
		names = append(names, d.String())
	}
	writeJSON(w, http.StatusOK, api.DesignsResponse{Designs: names})
}

// requestCtx bounds one synchronous fan-out end to end.
func (c *Coordinator) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), c.opts.RequestTimeout)
}

func (c *Coordinator) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req api.EvaluateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !c.preflight(w) {
		return
	}
	ctx, cancel := c.requestCtx(r)
	defer cancel()
	res, err := c.Evaluate(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !c.preflight(w) {
		return
	}
	ctx, cancel := c.requestCtx(r)
	defer cancel()
	resp, err := c.Sweep(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleRobustness(w http.ResponseWriter, r *http.Request) {
	var req api.RobustnessRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !c.preflight(w) {
		return
	}
	ctx, cancel := c.requestCtx(r)
	defer cancel()
	resp, err := c.Robustness(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleMap(w http.ResponseWriter, r *http.Request) {
	var req api.MapRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !c.preflight(w) {
		return
	}
	ctx, cancel := c.requestCtx(r)
	defer cancel()
	resp, err := c.Map(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleInfer(w http.ResponseWriter, r *http.Request) {
	var req api.InferRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !c.preflight(w) {
		return
	}
	ctx, cancel := c.requestCtx(r)
	defer cancel()
	resp, err := c.Infer(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
